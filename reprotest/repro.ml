module Hir = Hostir.Hir
module A = Hostir.Absint
module Ef = Hostir.Effects

let v n = Hir.Vreg n

let () =
  let stream =
    [|
      Hir.Label 0;
      Hir.Mov (v 0, Hir.Imm 5L);        (* promoted vreg gets a constant -> dirty *)
      Hir.Strf (8, v 0);                (* promoter's flush before the call *)
      Hir.Call (Ef.h_coproc_read, [||], Some (v 5)); (* C_read barrier *)
      Hir.Ldrf (v 0, 8);                (* promoter's reload *)
      Hir.Call (Ef.h_coproc_read, [||], Some (v 6)); (* second barrier; v0 clean, no flush *)
      Hir.Ldrf (v 0, 8);
      Hir.Exit 0;
      Hir.Label 1;
      Hir.Wbmap [| (v 0, 8) |];
    |]
  in
  let promoted = [ (0, 8) ] in
  let fs0 = A.check_wb ~classify:Ef.classify ~promoted stream in
  Printf.printf "original findings: %d\n" (List.length fs0);
  List.iter (fun f -> print_endline ("  " ^ A.finding_to_string f)) fs0;
  let out, ss = A.simplify ~classify:Ef.classify stream in
  Printf.printf "consts folded: %d\n" ss.A.consts_folded;
  let fs1 = A.check_wb ~classify:Ef.classify ~promoted out in
  Printf.printf "simplified findings: %d\n" (List.length fs1);
  List.iter (fun f -> print_endline ("  " ^ A.finding_to_string f)) fs1
