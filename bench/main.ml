(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 3).  See EXPERIMENTS.md for paper-vs-
   measured numbers, and DESIGN.md for the experiment index.

   Usage:  dune exec bench/main.exe [-- section ...]
   Sections: table1 table2 table5 fig17 fig18 fig19 fig20 fig21 fig22
             sec34 sec361 sec362 ablations bechamel
   (default: all of the above except bechamel). *)

module CE = Captive.Engine
module QE = Qemu_ref.Qemu_engine
module K = Workloads.Kernel
module Spec = Workloads.Spec
module Table = Dbt_util.Table
module Stats = Dbt_util.Stats

let scale = try int_of_string (Sys.getenv "BENCH_SCALE") with _ -> 1
let header title = Printf.printf "\n=== %s ===\n\n" title

(* --- shared runners ----------------------------------------------------------- *)

type run_result = {
  cycles : int;
  exit_code : int;
  guest_instrs_exec : int; (* dynamically executed guest instructions *)
  host_per_guest : float; (* emitted host instrs per translated guest instr *)
  bytes_per_guest : float;
  blocks_translated : int;
  phases : float * float * float * float; (* decode/translate/ra/encode seconds *)
  tiers : float * float * float; (* translate split: template/tier-0/region seconds *)
  block_stats : (int64 * int * int * int * int * int) list;
}

let exec_guest_instrs stats =
  List.fold_left (fun acc (_, ng, _, ex, _, _) -> acc + (ng * ex)) 0 stats

let run_captive ?(config = CE.default_config) ?ops user =
  let guest = match ops with Some o -> o | None -> Guest_arm.Arm.ops () in
  let e = CE.create ~config guest in
  K.install (K.captive_target e) ~user;
  let exit_code = match CE.run ~max_cycles:20_000_000_000 e with CE.Poweroff c -> c | _ -> -1 in
  let s = e.CE.stats in
  let bs = CE.block_stats e in
  {
    cycles = CE.cycles e;
    exit_code;
    guest_instrs_exec = exec_guest_instrs bs;
    host_per_guest = float_of_int s.CE.host_instrs_emitted /. float_of_int (max 1 s.CE.guest_instrs_translated);
    bytes_per_guest = float_of_int s.CE.host_bytes_emitted /. float_of_int (max 1 s.CE.guest_instrs_translated);
    blocks_translated = s.CE.blocks_translated;
    phases = (s.CE.t_decode, s.CE.t_translate, s.CE.t_regalloc, s.CE.t_encode);
    tiers = (s.CE.t_template, s.CE.t_tier0, s.CE.t_region);
    block_stats = bs;
  }

let run_qemu ?(config = QE.default_config) user =
  let guest = Guest_arm.Arm.ops () in
  let e = QE.create ~config guest in
  K.install (K.qemu_target e) ~user;
  let exit_code = match QE.run ~max_cycles:20_000_000_000 e with QE.Poweroff c -> c | _ -> -1 in
  let s = e.QE.stats in
  let bs = QE.block_stats e in
  {
    cycles = QE.cycles e;
    exit_code;
    guest_instrs_exec = exec_guest_instrs bs;
    host_per_guest = float_of_int s.QE.host_instrs_emitted /. float_of_int (max 1 s.QE.guest_instrs_translated);
    bytes_per_guest = float_of_int s.QE.host_bytes_emitted /. float_of_int (max 1 s.QE.guest_instrs_translated);
    blocks_translated = s.QE.blocks_translated;
    phases = (s.QE.t_decode, s.QE.t_translate, s.QE.t_regalloc, s.QE.t_encode);
    tiers = (0., 0., 0.); (* the QEMU-style engine has one tier *)
    block_stats = bs;
  }

(* Cache: fig17/18/20/22 share the SPEC runs. *)
let spec_cache : (string, run_result * run_result) Hashtbl.t = Hashtbl.create 32

let spec_run (b : Spec.benchmark) =
  match Hashtbl.find_opt spec_cache b.Spec.name with
  | Some r -> r
  | None ->
    let user = b.Spec.build ~scale in
    let c = run_captive user in
    let q = run_qemu user in
    if c.exit_code <> q.exit_code then
      Printf.printf "!! %s: exit codes diverge (captive %d, qemu %d)\n" b.Spec.name c.exit_code
        q.exit_code;
    Hashtbl.replace spec_cache b.Spec.name (c, q);
    (c, q)

let seconds cycles = Workloads.Native_model.dbt_seconds cycles

(* --- Table 1: feature comparison ------------------------------------------------ *)

let table1 () =
  header "Table 1: DBT system features (this reproduction)";
  Table.print
    ~header:[ "Feature"; "QEMU-style baseline"; "Captive" ]
    [
      [ "System-level"; "yes"; "yes" ];
      [ "Retargetable (ADL)"; "yes (same ADL)"; "yes" ];
      [ "Hypervisor (bare-metal HVM)"; "no (user process)"; "yes" ];
      [ "Host FP support"; "no (softfloat helpers)"; "yes (inline host FPU)" ];
      [ "FP bit-accurate"; "yes"; "yes (inline fix-ups)" ];
      [ "64-bit guest support"; "yes"; "yes (split VA handling)" ];
      [ "Code cache index"; "guest virtual"; "guest physical" ];
      [ "TLB-flush invalidation"; "all translations"; "host mappings only" ];
      [ "Guest user/kernel isolation"; "software checks"; "host rings 3/0" ];
    ]

(* --- Table 2: sqrt NaN semantics --------------------------------------------------- *)

let table2 () =
  header "Table 2: x86 SQRTSD vs ARMv8 FSQRT (via softfloat + engine fix-up)";
  let rows =
    List.map
      (fun (name, bits) ->
        let x86 = Softfloat.Archfp.x86_sqrtsd bits in
        let arm = Softfloat.Archfp.arm_fsqrt bits in
        let fixed = Softfloat.Archfp.fixup_sqrt_result ~input:bits x86 in
        [
          name;
          Softfloat.Archfp.describe x86;
          Softfloat.Archfp.describe arm;
          (if x86 = arm then "-" else "sign-bit differs");
          (if fixed = arm then "ok" else "BROKEN");
        ])
      Softfloat.Archfp.table2_inputs
  in
  Table.print ~header:[ "Input"; "x86 (SQRTSD)"; "ARMv8 (FSQRT)"; "Difference"; "fix-up" ] rows

(* --- Table 5: supported guest architectures ------------------------------------------ *)

let table5 () =
  header "Table 5: guest architectures in this reproduction";
  let arm = Guest_arm.Arm.ops () in
  let rv = Guest_riscv.Riscv.ops () in
  let row (ops : Guest.Ops.ops) ~system ~notes =
    let m = ops.Guest.Ops.model in
    (* Sec. 2.2.2 meta-information, aggregated over all actions. *)
    let fixed = ref 0 and dyn = ref 0 in
    Hashtbl.iter
      (fun _ a ->
        let f, d, _, _ = Ssa.Analysis.stats a in
        fixed := !fixed + f;
        dyn := !dyn + d)
      m.Ssa.Offline.actions;
    [
      ops.Guest.Ops.name;
      string_of_int (List.length m.Ssa.Offline.arch.Adl.Ast.a_decodes);
      string_of_int (Ssa.Offline.total_size m);
      Printf.sprintf "%d/%d" !fixed !dyn;
      system;
      notes;
    ]
  in
  Table.print
    ~header:[ "Guest"; "decode entries"; "SSA stmts (O4)"; "fixed/dynamic"; "full-system"; "notes" ]
    [
      row arm ~system:"yes" ~notes:"MMU, EL0/EL1, IRQs, dual address spaces";
      row rv ~system:"user-level" ~notes:"as in the paper: system support pending";
    ];
  Printf.printf "\nARMv8-A description: %d lines of ADL (paper: 8,100 for the full model).\n"
    Guest_arm.Arm.adl_lines

(* --- Fig 17: SPEC integer --------------------------------------------------------------- *)

let fig_spec ~title benchmarks =
  header title;
  let rows = ref [] in
  let speedups = ref [] in
  List.iter
    (fun (b : Spec.benchmark) ->
      let c, q = spec_run b in
      let sp = float_of_int q.cycles /. float_of_int c.cycles in
      speedups := sp :: !speedups;
      rows :=
        [
          b.Spec.name;
          Printf.sprintf "%.3f" (seconds q.cycles);
          Printf.sprintf "%.3f" (seconds c.cycles);
          Table.fmt_speedup sp;
        ]
        :: !rows)
    benchmarks;
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Benchmark"; "QEMU-style (sim s)"; "Captive (sim s)"; "Speed-up" ]
    (List.rev !rows);
  Printf.printf "\nGeometric mean speed-up: %.2fx\n" (Stats.geomean !speedups)

let fig17 () =
  fig_spec ~title:"Fig 17: SPEC CPU2006 integer (proxy kernels)" Spec.integer_benchmarks

let fig18 () =
  fig_spec ~title:"Fig 18: SPEC CPU2006 C++ floating point (proxy kernels)" Spec.fp_benchmarks

(* --- Fig 19: SimBench ---------------------------------------------------------------------- *)

let fig19 () =
  header "Fig 19: SimBench micro-benchmarks (speed-up of Captive over QEMU-style)";
  let results = Simbench.run_all () in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Category"; "Captive (kcycles)"; "QEMU-style (kcycles)"; "Speed-up" ]
    (List.map
       (fun r ->
         [
           r.Simbench.bench;
           string_of_int (r.Simbench.captive_cycles / 1000);
           string_of_int (r.Simbench.qemu_cycles / 1000);
           Table.fmt_speedup r.Simbench.speedup;
         ])
       results);
  print_newline ();
  print_endline
    "Expected shape (paper): large wins on Mem-*, wins on control flow and";
  print_endline
    "TLB maintenance, slow-downs on Small-Blocks/Large-Blocks (translation";
  print_endline "speed) and Data-Fault."

(* --- Fig 20: JIT phase breakdown --------------------------------------------------------------- *)

let fig20 () =
  header "Fig 20: time per JIT compilation phase (Captive, across SPECint)";
  (* Aggregate the wall-clock phase timers over the SPECint runs. *)
  let d = ref 0. and t = ref 0. and r = ref 0. and en = ref 0. in
  let tt = ref 0. and t0 = ref 0. and tr = ref 0. in
  List.iter
    (fun b ->
      let c, _ = spec_run b in
      let pd, pt, pr, pe = c.phases in
      d := !d +. pd;
      t := !t +. pt;
      r := !r +. pr;
      en := !en +. pe;
      let wt, w0, wr = c.tiers in
      tt := !tt +. wt;
      t0 := !t0 +. w0;
      tr := !tr +. wr)
    Spec.integer_benchmarks;
  let total = !d +. !t +. !r +. !en in
  let pct x = Printf.sprintf "%.2f%%" (100. *. x /. total) in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ "Phase"; "time (ms)"; "share" ]
    [
      [ "Decode"; Printf.sprintf "%.1f" (1000. *. !d); pct !d ];
      [ "Translate"; Printf.sprintf "%.1f" (1000. *. !t); pct !t ];
      [ "  of which template tier"; Printf.sprintf "%.1f" (1000. *. !tt); pct !tt ];
      [ "  of which tier-0 pipeline"; Printf.sprintf "%.1f" (1000. *. !t0); pct !t0 ];
      [ "  of which region formation"; Printf.sprintf "%.1f" (1000. *. !tr); pct !tr ];
      [ "Register allocation"; Printf.sprintf "%.1f" (1000. *. !r); pct !r ];
      [ "Encode"; Printf.sprintf "%.1f" (1000. *. !en); pct !en ];
    ];
  Printf.printf "\nPaper: decode 2.75%%, translate 54.54%%, regalloc 25.63%%, encode 17.08%%.\n"

(* --- Fig 21: per-block code quality --------------------------------------------------------------- *)

let fig21 () =
  header "Fig 21: per-block execution times (block chaining disabled)";
  (* The paper plots 429.mcf; our proxy is small, so blocks from several
     proxies are aggregated to populate the scatter. *)
  let pairs = ref [] in
  let hpg = ref (0., 0.) in
  List.iter
    (fun name ->
      let user = (Spec.find name).Spec.build ~scale in
      let c = run_captive ~config:{ CE.default_config with CE.chaining = false } user in
      let q = run_qemu ~config:{ QE.default_config with QE.chaining = false } user in
      hpg := (c.host_per_guest, q.host_per_guest);
      let qtbl = Hashtbl.create 256 in
      List.iter
        (fun (va, _, _, ex, cyc, _) ->
          if ex > 0 then Hashtbl.replace qtbl va (float_of_int cyc /. float_of_int ex))
        q.block_stats;
      List.iter
        (fun (va, _, _, ex, cyc, _) ->
          if ex >= 5 then
            match Hashtbl.find_opt qtbl va with
            | Some qc when qc > 0. -> pairs := (float_of_int cyc /. float_of_int ex, qc) :: !pairs
            | _ -> ())
        c.block_stats)
    [ "429.mcf"; "400.perlbench"; "445.gobmk"; "483.xalancbmk"; "471.omnetpp" ];
  let pairs = !pairs in
  let c_hpg, q_hpg = !hpg in
  let ratios = List.map (fun (cc, qc) -> qc /. cc) pairs in
  let faster = List.length (List.filter (fun r -> r > 1.0) ratios) in
  Printf.printf "blocks compared: %d (executed >= 10 times under both engines)\n" (List.length pairs);
  Printf.printf "blocks faster under Captive: %d (%.0f%%)\n" faster
    (100. *. float_of_int faster /. float_of_int (max 1 (List.length pairs)));
  Printf.printf "geometric-mean per-block speed-up (regression-line shift): %.2fx\n"
    (Stats.geomean ratios);
  let logpairs = List.map (fun (cc, qc) -> (log cc, log qc)) pairs in
  (if List.length logpairs >= 2 then
     let a, b = Stats.linear_regression logpairs in
     Printf.printf "log-log regression: log(qemu) = %.2f + %.2f * log(captive)\n" a b);
  Printf.printf "host instructions per guest instruction: Captive %.1f, QEMU-style %.1f\n"
    c_hpg q_hpg;
  Printf.printf "(paper: 3.44x shift, ~10 host instructions per guest instruction)\n"

(* --- Fig 22: comparison against native platforms ------------------------------------------------------ *)

let fig22 () =
  header "Fig 22: Captive vs native ARMv8 platforms (all SPEC proxies)";
  let total_c = ref 0 and total_q = ref 0 and total_gi = ref 0 in
  List.iter
    (fun b ->
      let c, q = spec_run b in
      total_c := !total_c + c.cycles;
      total_q := !total_q + q.cycles;
      total_gi := !total_gi + c.guest_instrs_exec)
    Spec.all;
  let qemu_s = seconds !total_q in
  let captive_s = seconds !total_c in
  let pi_s = Workloads.Native_model.(native_seconds raspberry_pi3 !total_gi) in
  let a1170_s = Workloads.Native_model.(native_seconds opteron_a1170 !total_gi) in
  let speedup s = qemu_s /. s in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ "Platform"; "time (sim s)"; "speed-up vs QEMU-style" ]
    [
      [ "QEMU-style DBT"; Printf.sprintf "%.3f" qemu_s; "1.00x" ];
      [ "Raspberry Pi 3 (A53 1.2GHz, model)"; Printf.sprintf "%.3f" pi_s; Table.fmt_speedup (speedup pi_s) ];
      [ "Captive (this work)"; Printf.sprintf "%.3f" captive_s; Table.fmt_speedup (speedup captive_s) ];
      [ "AMD A1170 (A57 2.0GHz, model)"; Printf.sprintf "%.3f" a1170_s; Table.fmt_speedup (speedup a1170_s) ];
    ];
  Printf.printf "\nCaptive vs Pi 3: %.2fx;  Captive vs A1170: %.2fx (paper: ~2x and ~0.4x)\n"
    (pi_s /. captive_s) (a1170_s /. captive_s)

(* --- Sec 3.4: JIT compilation performance ---------------------------------------------------------------- *)

let sec34 () =
  header "Sec 3.4: JIT compilation performance (429.mcf)";
  let c, q = spec_run (Spec.find "429.mcf") in
  let sum (a, b, c', d) = a +. b +. c' +. d in
  let c_per = sum c.phases /. float_of_int (max 1 c.blocks_translated) in
  let q_per = sum q.phases /. float_of_int (max 1 q.blocks_translated) in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ "Metric"; "Captive"; "QEMU-style" ]
    [
      [ "blocks translated"; string_of_int c.blocks_translated; string_of_int q.blocks_translated ];
      [
        "wall-clock per block (us)";
        Printf.sprintf "%.1f" (1e6 *. c_per);
        Printf.sprintf "%.1f" (1e6 *. q_per);
      ];
      [
        "host instrs / guest instr";
        Printf.sprintf "%.2f" c.host_per_guest;
        Printf.sprintf "%.2f" q.host_per_guest;
      ];
      [
        "host bytes / guest instr";
        Printf.sprintf "%.2f" c.bytes_per_guest;
        Printf.sprintf "%.2f" q.bytes_per_guest;
      ];
    ];
  Printf.printf "\ntranslation slowdown (wall-clock, Captive/QEMU-style): %.2fx (paper: 2.6x)\n"
    (c_per /. q_per);
  Printf.printf "modeled translation cycles ratio at the mcf mix: %.2fx\n"
    ((1400. +. (260. *. c.host_per_guest)) /. (550. +. (90. *. q.host_per_guest)))

(* --- Sec 3.6.1: impact of offline optimization ------------------------------------------------------------- *)

let sec361 () =
  header "Sec 3.6.1: offline optimization levels (ARMv8-A model)";
  let rows =
    List.map
      (fun level ->
        let t0 = Unix.gettimeofday () in
        let m = Guest_arm.Arm.model_at_level level in
        let dt = Unix.gettimeofday () -. t0 in
        (level, Ssa.Offline.total_size m, dt))
      [ 1; 2; 3; 4 ]
  in
  let o1 = match rows with (_, s, _) :: _ -> float_of_int s | [] -> 1. in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Level"; "SSA statements"; "vs O1"; "offline build (s)" ]
    (List.map
       (fun (l, s, dt) ->
         [
           Printf.sprintf "O%d" l;
           string_of_int s;
           Printf.sprintf "%.0f%%" (100. *. float_of_int s /. o1);
           Printf.sprintf "%.2f" dt;
         ])
       rows);
  Printf.printf "\n(paper: O4 output is 56%% smaller than O1)\n"

(* --- Sec 3.6.2: hardware vs software floating point ----------------------------------------------------------- *)

let sec362 () =
  header "Sec 3.6.2: FP microbenchmark, hardware FP vs softfloat";
  let user = (Spec.find "444.namd").Spec.build ~scale in
  let hw = run_captive user in
  let sw = run_captive ~config:{ CE.default_config with CE.hw_fp = false } user in
  let q = run_qemu user in
  if hw.exit_code <> sw.exit_code then
    Printf.printf "!! hw/soft FP disagree: %d vs %d\n" hw.exit_code sw.exit_code;
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ "Configuration"; "cycles (M)"; "speed-up vs QEMU-style" ]
    [
      [ "QEMU-style (softfloat)"; string_of_int (q.cycles / 1000000); "1.00x" ];
      [
        "Captive, softfloat helpers";
        string_of_int (sw.cycles / 1000000);
        Table.fmt_speedup (float_of_int q.cycles /. float_of_int sw.cycles);
      ];
      [
        "Captive, hardware FP";
        string_of_int (hw.cycles / 1000000);
        Table.fmt_speedup (float_of_int q.cycles /. float_of_int hw.cycles);
      ];
    ];
  Printf.printf "\nhardware FP vs softfloat within Captive: %.2fx (paper: 1.3x)\n"
    (float_of_int sw.cycles /. float_of_int hw.cycles);
  Printf.printf "(paper: hw-FP Captive 2.17x over QEMU, softfloat Captive 1.68x)\n"

(* --- ablations ---------------------------------------------------------------------------------------------------- *)

let ablations () =
  header "Ablations: Captive design-choice studies";
  let bench = Spec.find "445.gobmk" in
  let user = bench.Spec.build ~scale in
  let base = run_captive user in
  let no_chain = run_captive ~config:{ CE.default_config with CE.chaining = false } user in
  let no_pcid = run_captive ~config:{ CE.default_config with CE.pcid = false } user in
  let o1 = run_captive ~ops:(Guest_arm.Arm.ops ~opt_level:1 ()) user in
  let row name (r : run_result) =
    [
      name;
      string_of_int (r.cycles / 1_000_000);
      Printf.sprintf "%+.1f%%" (100. *. (float_of_int r.cycles /. float_of_int base.cycles -. 1.));
      Printf.sprintf "%.1f" r.host_per_guest;
    ]
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Configuration (445.gobmk)"; "cycles (M)"; "vs baseline"; "host/guest instrs" ]
    [
      row "baseline (O4, chaining, PCID)" base;
      row "no block chaining" no_chain;
      row "no PCIDs (flush on AS switch)" no_pcid;
      row "offline opt at O1" o1;
    ];
  (* The syscall-heavy SimBench category stresses the user/kernel address
     space alternation, where PCIDs matter most. *)
  let sb = List.find (fun b -> b.Simbench.name = "Syscall") (Simbench.all ()) in
  let run_cfg config =
    let guest = Guest_arm.Arm.ops () in
    let e = CE.create ~config guest in
    K.install ~enable_timer:false (K.captive_target e) ~user:sb.Simbench.image;
    (match CE.run ~max_cycles:2_000_000_000 e with CE.Poweroff _ -> () | _ -> ());
    CE.cycles e
  in
  let with_pcid = run_cfg CE.default_config in
  let without = run_cfg { CE.default_config with CE.pcid = false } in
  Printf.printf "\nSyscall microbenchmark: with PCIDs %dk cycles, without %dk (%.2fx)\n"
    (with_pcid / 1000) (without / 1000)
    (float_of_int without /. float_of_int with_pcid)

(* --- bechamel microbenchmarks -------------------------------------------------------------------------------------- *)

let bechamel_section () =
  header "Bechamel microbenchmarks (real wall-clock, not simulated cycles)";
  let open Bechamel in
  let open Toolkit in
  let guest = Guest_arm.Arm.ops () in
  let model = guest.Guest.Ops.model in
  let word = 0x8B020020L (* add x0,x1,x2 *) in
  let decode_test =
    Test.make ~name:"decode one AArch64 instruction" (Staged.stage (fun () -> Ssa.Offline.decode model word))
  in
  let sf = Softfloat.F64.of_float 1.5 in
  let sf2 = Softfloat.F64.of_float 3.7 in
  let flags = Softfloat.Sf_types.new_flags () in
  let softfloat_test =
    Test.make ~name:"softfloat f64 multiply" (Staged.stage (fun () -> Softfloat.F64.mul flags sf sf2))
  in
  let action = Ssa.Offline.action model "add_sub_shreg" in
  let d = Option.get (Ssa.Offline.decode model word) in
  let field n = if n = "__el" then 1L else List.assoc n d.Adl.Decode.field_values in
  let translate_test =
    Test.make ~name:"generator: translate add (DAG+regalloc+encode)"
      (Staged.stage (fun () ->
           let cfg =
             {
               Hostir.Dag.bank_offset = guest.Guest.Ops.bank_offset;
               slot_offset = guest.Guest.Ops.slot_offset;
               lower_intrinsic = (fun _ -> Hostir.Dag.L_inline);
               effect_helper = Captive.Common.effect_helper_index;
               coproc_read_helper = 0;
               coproc_write_helper = 1;
               split_va_check = false;
               as_switch_helper = 9;
             }
           in
           let dag = Hostir.Dag.create cfg in
           Ssa.Gen.translate (Hostir.Dag.emitter dag) action ~field ~inc_pc:(Some 4);
           Hostir.Dag.raw dag (Hostir.Hir.Exit 0);
           let ra = Hostir.Regalloc.run (Hostir.Dag.finish dag) in
           Hostir.Encode.encode ra))
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:(Some 300) () in
    let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
    let ols =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Instance.monotonic_clock results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-48s %10.1f ns/op\n" name est
        | _ -> Printf.printf "  %-48s (no estimate)\n" name)
      ols
  in
  List.iter benchmark [ decode_test; softfloat_test; translate_test ]

(* --- driver ---------------------------------------------------------------------------------------------------------- *)

let sections : (string * (unit -> unit)) list =
  [
    ("table1", table1);
    ("table2", table2);
    ("table5", table5);
    ("fig17", fig17);
    ("fig18", fig18);
    ("fig19", fig19);
    ("fig20", fig20);
    ("fig21", fig21);
    ("fig22", fig22);
    ("sec34", sec34);
    ("sec361", sec361);
    ("sec362", sec362);
    ("ablations", ablations);
    ("bechamel", bechamel_section);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let requested = List.filter (fun s -> s <> "--") requested in
  let to_run =
    if requested = [] then List.filter (fun (n, _) -> n <> "bechamel") sections
    else
      List.map
        (fun n ->
          match List.assoc_opt n sections with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown section %s (available: %s)\n" n
              (String.concat " " (List.map fst sections));
            exit 1)
        requested
  in
  Printf.printf "Captive reproduction benchmark harness (BENCH_SCALE=%d)\n" scale;
  List.iter (fun (_, f) -> f ()) to_run
