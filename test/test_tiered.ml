(* Tiered-translation tests: hot-block promotion fires exactly once,
   regions are invalidated (and re-formed) on self-modifying code, the
   tier-0-only path is cycle-identical with tiering compiled out, and a
   randomised property checks region units are observationally equivalent
   to per-block translation. *)

module A = Guest_arm.Arm_asm
module CE = Captive.Engine

let guest () = Guest_arm.Arm.ops ()

let syscon = 0x0930_0000L

let bare_metal body =
  let a = A.create ~base:0x80000L () in
  body a;
  A.mov_const a A.x25 syscon;
  A.str a A.x0 A.x25;
  A.label a "__hang";
  A.b a "__hang";
  A.assemble a

let run ?config image =
  let e = CE.create ?config (guest ()) in
  CE.load_image e ~addr:0x80000L image;
  CE.set_entry e 0x80000L;
  let code = match CE.run ~max_cycles:200_000_000 e with CE.Poweroff c -> c | _ -> -1 in
  (code, e)

let untiered = { CE.default_config with tiering = false }

(* A single self-looping block: the hot-path shape SPEC-style kernels
   reduce to, and the one that exercises self-loop region formation. *)
let counted_loop iters =
  bare_metal (fun a ->
      A.movz a A.x0 0;
      A.mov_const a A.x19 (Int64.of_int iters);
      A.label a "loop";
      A.add_imm a A.x0 A.x0 1;
      A.subs_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "loop")

let test_promotion_exactly_once () =
  let image = counted_loop 2000 in
  let config = { CE.default_config with hot_threshold = 8 } in
  let code, e = run ~config image in
  let code_u, _ = run ~config:untiered image in
  Alcotest.(check int) "tiered exit matches untiered" code_u code;
  Alcotest.(check int) "loop counted to completion" (2000 land 0xFF) code;
  (* Only the loop body crosses the threshold, and once promoted its
     tier-1 region must never be re-promoted. *)
  Alcotest.(check int) "exactly one promotion" 1 e.CE.stats.CE.promotions;
  Alcotest.(check int) "exactly one region formed" 1 e.CE.stats.CE.regions_formed;
  Alcotest.(check bool) "region actually entered" true (e.CE.stats.CE.region_entries > 0);
  Alcotest.(check bool)
    "region executed member blocks" true
    (e.CE.stats.CE.region_block_execs >= 1000)

(* A call-snippet made hot enough to sit inside a region, patched in
   place, then run hot again: the write must demote the region (SMC
   invalidation) and the re-formed region must execute the new code. *)
let smc_image () =
  bare_metal (fun a ->
        A.movz a A.x20 0;
        A.adr a A.x21 "snippet";
        A.movz a A.x19 8;
        A.label a "phase1";
        A.bl a "snippet";
        A.add_reg a A.x20 A.x20 A.x0;
        A.subs_imm a A.x19 A.x19 1;
        A.cbnz a A.x19 "phase1";
        (* patch: rewrite snippet's first instruction to movz x0,#2 *)
        (let w = (0b110100101 lsl 23) lor (2 lsl 5) lor 0 in
         A.mov_const a A.x22 (Int64.of_int w));
        A.str32 a A.x22 A.x21;
        A.movz a A.x19 8;
        A.label a "phase2";
        A.bl a "snippet";
        A.add_reg a A.x20 A.x20 A.x0;
        A.subs_imm a A.x19 A.x19 1;
        A.cbnz a A.x19 "phase2";
        A.mov_reg a A.x0 A.x20;
        A.b a "done";
        A.label a "snippet";
        A.movz a A.x0 1;
        A.ret a;
        A.label a "done")

let test_smc_invalidates_region () =
  let image = smc_image () in
  let config = { CE.default_config with hot_threshold = 2 } in
  let code, e = run ~config image in
  Alcotest.(check int) "patched snippet observed hot (8*1 + 8*2)" 24 code;
  Alcotest.(check bool) "SMC invalidation fired" true (e.CE.stats.CE.smc_invalidations > 0);
  Alcotest.(check bool)
    "demoted code re-promoted after the patch" true
    (e.CE.stats.CE.promotions >= 2);
  let code_u, _ = run ~config:untiered image in
  Alcotest.(check int) "untiered agrees" code_u code

let test_smc_reanalysis () =
  (* Staleness audit for the analysis layer: abstract facts are consumed
     at translate time and never cached per-translation, so an SMC
     invalidation has nothing to drop — the demoted code's re-formed
     region must be re-analyzed from scratch (the region counter keeps
     growing past the first formation) and every obligation must still
     prove. *)
  let config =
    { CE.default_config with hot_threshold = 2; analyze_translations = true }
  in
  let code, e = run ~config (smc_image ()) in
  Alcotest.(check int) "exit unchanged under analysis" 24 code;
  Alcotest.(check bool) "SMC invalidation fired" true (e.CE.stats.CE.smc_invalidations > 0);
  Alcotest.(check bool) "re-formed region re-analyzed" true (e.CE.stats.CE.regions_analyzed >= 2);
  Alcotest.(check bool) "tier-0 blocks analyzed" true (e.CE.stats.CE.blocks_analyzed > 0);
  Alcotest.(check int) "no obligation findings across demote/re-form" 0
    e.CE.stats.CE.obligation_findings

let test_tier0_cycle_identity () =
  (* With the threshold unreachable and the template tier disabled, the
     tiering machinery must be free: identical cycle counts to a build
     with tiering off.  (Templates are switched off because the template
     tier deliberately changes translate cost — and slightly changes
     emitted code — below the threshold; test_template.ml covers its
     equivalence.) *)
  let image = counted_loop 5000 in
  let cold =
    { CE.default_config with tiering = true; templates = false; hot_threshold = max_int }
  in
  let code_c, e_c = run ~config:cold image in
  let code_u, e_u = run ~config:untiered image in
  Alcotest.(check int) "exit codes agree" code_u code_c;
  Alcotest.(check int)
    "cycle-identical when no block ever gets hot"
    (CE.cycles e_u) (CE.cycles e_c);
  Alcotest.(check int) "no promotions below threshold" 0 e_c.CE.stats.CE.promotions

(* Randomised loop bodies, sometimes multi-block (a data-dependent forward
   skip), executed hot: region translation must be observationally
   equivalent to per-block tier-0 translation. *)
let random_loop_program seed =
  let prng = Dbt_util.Prng.create (if seed = 0L then 77L else seed) in
  let r n = Dbt_util.Prng.int prng n in
  let reg () = r 8 in
  let a = A.create ~base:0x80000L () in
  A.mov_const a A.x20 0x200000L;
  for i = 0 to 7 do
    A.mov_const a i (Dbt_util.Prng.int64 prng)
  done;
  A.movz a A.x19 40;
  A.label a "loop";
  let body n =
    for _ = 1 to n do
      match r 12 with
      | 0 -> A.add_reg a (reg ()) (reg ()) (reg ())
      | 1 -> A.subs_reg a (reg ()) (reg ()) (reg ())
      | 2 -> A.eor_reg a (reg ()) (reg ()) (reg ())
      | 3 -> A.and_reg a (reg ()) (reg ()) (reg ())
      | 4 -> A.orr_reg a (reg ()) (reg ()) (reg ())
      | 5 -> A.mul a (reg ()) (reg ()) (reg ())
      | 6 -> A.udiv a (reg ()) (reg ()) (reg ())
      | 7 -> A.add_imm a (reg ()) (reg ()) (r 4096)
      | 8 -> A.csel a (reg ()) (reg ()) (reg ()) (List.nth [ A.EQ; A.LT; A.HI; A.VS ] (r 4))
      | 9 -> A.clz a (reg ()) (reg ())
      | 10 -> A.str ~off:(8 * r 32) a (reg ()) A.x20
      | _ -> A.ldr ~off:(8 * r 32) a (reg ()) A.x20
    done
  in
  body (2 + r 5);
  (* data-dependent forward skip: makes the loop multi-block and gives the
     region's side exits something to do *)
  A.tbz a (reg ()) (r 8) "skip";
  body (1 + r 4);
  A.label a "skip";
  body (1 + r 3);
  A.subs_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop";
  (* dump x0..x7 *)
  A.mov_const a A.x21 0x300000L;
  for i = 0 to 7 do
    A.str ~off:(8 * i) a i A.x21
  done;
  A.cset a A.x22 A.EQ;
  A.cset a A.x23 A.CS;
  A.str ~off:64 a A.x22 A.x21;
  A.str ~off:72 a A.x23 A.x21;
  A.mov_const a A.x28 syscon;
  A.str a A.xzr A.x28;
  A.label a "hang";
  A.b a "hang";
  A.assemble a

let dump mem = List.init 10 (fun i -> Hvm.Mem.read64 mem (Int64.of_int (0x300000 + (8 * i))))

let prop_region_vs_block =
  QCheck2.Test.make ~name:"random hot loops: region unit = per-block translation" ~count:20
    QCheck2.Gen.int64 (fun seed ->
      let image = random_loop_program seed in
      let hot = { CE.default_config with hot_threshold = 2 } in
      let run_dump config =
        let e = CE.create ~config (guest ()) in
        CE.load_image e ~addr:0x80000L image;
        CE.set_entry e 0x80000L;
        match CE.run ~max_cycles:100_000_000 e with
        | CE.Poweroff _ -> (dump e.CE.machine.Hvm.Machine.mem, e)
        | _ -> ([], e)
      in
      let d_t, e_t = run_dump hot in
      let d_u, _ = run_dump untiered in
      d_t <> [] && d_t = d_u && e_t.CE.stats.CE.regions_formed >= 1)

let suite =
  ( "tiered",
    [
      Alcotest.test_case "promotion exactly once" `Quick test_promotion_exactly_once;
      Alcotest.test_case "SMC demotes and re-forms regions" `Quick test_smc_invalidates_region;
      Alcotest.test_case "SMC re-translation re-analyzes, no stale facts" `Quick
        test_smc_reanalysis;
      Alcotest.test_case "tier-0-only cycle identity" `Quick test_tier0_cycle_identity;
      QCheck_alcotest.to_alcotest prop_region_vs_block;
    ] )
