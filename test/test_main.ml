let () =
  Alcotest.run "captive_repro"
    [
      Test_bits.suite;
      Test_softfloat.suite;
      Test_adl.suite;
      Test_ssa.suite;
      Test_absint.suite;
      Test_verify.suite;
      Test_hvm.suite;
      Test_hostir.suite;
      Test_reloc.suite;
      Test_arm.suite;
      Test_engine.suite;
      Test_tiered.suite;
      Test_template.suite;
      Test_promote.suite;
      Test_symexec.suite;
      Test_hostir_absint.suite;
      Test_workloads.suite;
      Test_sanitize.suite;
      Test_concurrent.suite;
    ]
