(* Concurrent JIT and sharded code cache tests.

   Cache-level: a QCheck model test checks random publish / lookup /
   invalidate / conditional-publish sequences against a reference model
   — in particular that [publish_if] with a generation token taken
   before an [invalidate_page] is always refused (the SMC tombstone),
   and that no lookup ever serves a tombstoned entry.  A multi-domain
   test hammers one page from writer domains while the main domain
   invalidates, and asserts the linearizability invariant: any entry
   found after an invalidation was published with a generation token at
   least as new as that invalidation.

   Engine-level: SMC between job capture and install must reject the
   install (both the generation-tombstone path and the guest-byte-hash
   path); a multi-domain run of the MMU-stress workload must be
   guest-visibly equivalent to a single-domain run with zero sanitizer
   findings; and a single-domain engine must stay cycle-deterministic.

   Stats: the per-domain Counters shards must merge to exact totals. *)

module CC = Captive.Codecache
module CE = Captive.Engine
module K = Workloads.Kernel
module MS = Workloads.Mmu_stress
module San = Hvm.Sanitize

(* --- model-based cache property ---------------------------------------- *)

(* Reference model: association table plus per-page generation counters.
   Keys live on 4 pages x 4 slots; each op is decoded from one int. *)
let test_cache_model =
  QCheck2.Test.make ~name:"sharded cache matches sequential model" ~count:300
    QCheck2.Gen.(pair (int_range 0 5) (list_size (int_range 1 150) (int_range 0 100_000)))
    (fun (shard_sel, ops) ->
      let cc = CC.create ~shards:(1 lsl shard_sel) () in
      let model : (CC.key, int) Hashtbl.t = Hashtbl.create 16 in
      let page_addr p = Int64.of_int (0x10000 + (p * 4096)) in
      let key_of p s = (Int64.add (page_addr p) (Int64.of_int (s * 64)), 1, false) in
      let model_drop_page p =
        let pg = page_addr p in
        Hashtbl.iter
          (fun ((pa, _, _) as k) _ ->
            if Int64.equal (Int64.logand pa (Int64.lognot 0xFFFL)) pg then
              Hashtbl.remove model k)
          (Hashtbl.copy model)
      in
      List.iter
        (fun x ->
          let p = x / 5 mod 4 and s = x / 20 mod 4 in
          let k = key_of p s in
          match x mod 5 with
          | 0 ->
            CC.publish cc k x;
            Hashtbl.replace model k x
          | 1 ->
            let n_model =
              Hashtbl.fold
                (fun ((pa, _, _) : CC.key) _ n ->
                  if Int64.equal (Int64.logand pa (Int64.lognot 0xFFFL)) (page_addr p) then
                    n + 1
                  else n)
                model 0
            in
            let removed = CC.invalidate_page cc (page_addr p) in
            if List.length removed <> n_model then
              QCheck2.Test.fail_report "invalidate removed wrong count";
            model_drop_page p
          | 2 ->
            if CC.lookup cc k <> Hashtbl.find_opt model k then
              QCheck2.Test.fail_report "lookup disagrees with model"
          | 3 ->
            (* fresh token: taken now, used now — must install *)
            let g = CC.page_gen cc (page_addr p) in
            if not (CC.publish_if cc k ~gen:g x) then
              QCheck2.Test.fail_report "fresh publish_if refused";
            Hashtbl.replace model k x
          | _ ->
            (* stale token: page invalidated between take and use — the
               SMC tombstone must refuse the install *)
            let g = CC.page_gen cc (page_addr p) in
            ignore (CC.invalidate_page cc (page_addr p));
            model_drop_page p;
            if CC.publish_if cc k ~gen:g x then
              QCheck2.Test.fail_report "stale publish_if installed";
            if CC.lookup cc k <> None then
              QCheck2.Test.fail_report "tombstoned entry served")
        ops;
      if CC.length cc <> Hashtbl.length model then
        QCheck2.Test.fail_report "length disagrees with model";
      Hashtbl.iter
        (fun k v ->
          if CC.lookup cc k <> Some v then
            QCheck2.Test.fail_report "final lookup disagrees with model")
        model;
      true)

(* --- multi-domain cache interleavings ----------------------------------- *)

(* Writer domains race [page_gen]+[publish_if] against the main domain's
   [invalidate_page]; each published value is the generation token it
   was installed under.  Because the token check and the map update are
   one CAS, any entry observed after an invalidation that bumped the
   generation to G must carry a token >= G — i.e. no interleaving
   publishes pre-invalidation (pre-SMC) code past the tombstone.  One
   shard maximizes contention. *)
let test_cache_domains () =
  let cc : int CC.t = CC.create ~shards:1 () in
  let page = 0x7000L in
  let key = (Int64.add page 0x40L, 1, false) in
  let stop = Atomic.make false in
  let writers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              let g = CC.page_gen cc page in
              ignore (CC.publish_if cc key ~gen:g g)
            done))
  in
  let violations = ref 0 in
  for _ = 1 to 20_000 do
    let g_before = CC.page_gen cc page in
    ignore (CC.invalidate_page cc page);
    (* generation is now at least g_before + 1 *)
    match CC.lookup cc key with
    | Some token when token < g_before + 1 -> incr violations
    | _ -> ()
  done;
  Atomic.set stop true;
  List.iter Domain.join writers;
  Alcotest.(check int) "no pre-invalidation token ever served" 0 !violations

(* --- engine: SMC between job capture and install ------------------------ *)

let run_arm_stress config =
  let e = CE.create ~config (Guest_arm.Arm.ops ()) in
  K.install (K.captive_target e) ~user:(MS.arm_user ());
  let code = match CE.run ~max_cycles:2_000_000_000 e with CE.Poweroff c -> c | _ -> -1 in
  (e, code)

(* A populated engine plus one plain tier-0 block to build a job from. *)
let engine_with_head () =
  let e, code = run_arm_stress CE.default_config in
  Alcotest.(check int) "workload ran" MS.arm_expected_exit code;
  let head =
    CC.fold
      (fun _ tr acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if tr.CE.t_n_guest > 1 && tr.CE.t_members = 1 && Array.length tr.CE.t_exits = 0
          then Some tr
          else None)
      e.CE.cache None
  in
  match head with
  | Some head -> (e, head)
  | None -> Alcotest.fail "no tier-0 block in cache"

(* Generation path: the page is invalidated (SMC) while the job is
   notionally on a worker; the install must be refused by the
   [publish_if] tombstone even though the bytes were restored
   identically (the generation, not the content, is authoritative for
   entries removed from the cache). *)
let test_smc_in_flight_generation () =
  let e, head = engine_with_head () in
  let members, _ = CE.select_members e head in
  let job = CE.make_region_job e ~head ~members in
  let pa_page = job.CE.j_req.CE.rq_pa_page in
  let stale0 = e.CE.stats.CE.jobs_stale in
  CE.invalidate_page e pa_page;
  let res = CE.run_region_job e.CE.jenv job.CE.j_req in
  CE.install_region ~async:true e job res;
  Alcotest.(check int) "install counted stale" (stale0 + 1) e.CE.stats.CE.jobs_stale;
  Alcotest.(check bool) "stale region not served" true
    (CC.lookup e.CE.cache head.CE.t_key = None);
  Alcotest.(check int) "head demoted for re-profiling" 0 head.CE.t_tier

(* Hash path: the guest bytes under the job change without an
   invalidation reaching the cache (generation unchanged), so only the
   enqueue-time guest-byte hash can catch it — a translation of pre-SMC
   bytes must never install. *)
let test_smc_in_flight_hash () =
  let e, head = engine_with_head () in
  let members, _ = CE.select_members e head in
  let job = CE.make_region_job e ~head ~members in
  let res = CE.run_region_job e.CE.jenv job.CE.j_req in
  let pa_head, _, _ = head.CE.t_key in
  (* raw write: bypasses phys_write and thus the invalidate hook *)
  let mem = e.CE.machine.Hvm.Machine.mem in
  Hvm.Mem.write8 mem pa_head (Int64.logxor (Hvm.Mem.read8 mem pa_head) 0xFFL);
  let stale0 = e.CE.stats.CE.jobs_stale in
  CE.install_region ~async:true e job res;
  Alcotest.(check int) "install counted stale" (stale0 + 1) e.CE.stats.CE.jobs_stale

(* Control: with neither SMC path triggered, the same job installs. *)
let test_in_flight_clean_installs () =
  let e, head = engine_with_head () in
  let members, _ = CE.select_members e head in
  let job = CE.make_region_job e ~head ~members in
  let res = CE.run_region_job e.CE.jenv job.CE.j_req in
  let installed0 = e.CE.stats.CE.jobs_installed in
  CE.install_region ~async:true e job res;
  Alcotest.(check int) "install counted" (installed0 + 1) e.CE.stats.CE.jobs_installed;
  (match CC.lookup e.CE.cache head.CE.t_key with
  | Some tr -> Alcotest.(check int) "region published" (List.length members) tr.CE.t_members
  | None -> Alcotest.fail "region not published")

(* --- engine: multi-domain equivalence and determinism ------------------- *)

let stress_config ~domains ~seed =
  {
    CE.default_config with
    CE.sanitize = true;
    sanitize_every = 32;
    hot_threshold = 4;
    domains;
    stress_seed = seed;
  }

let test_multi_domain_equivalence () =
  let e1, code1 = run_arm_stress (stress_config ~domains:1 ~seed:None) in
  List.iter
    (fun seed ->
      let e3, code3 =
        run_arm_stress (stress_config ~domains:3 ~seed:(Some (Int64.of_int seed)))
      in
      Fun.protect
        ~finally:(fun () -> CE.shutdown e3)
        (fun () ->
          Alcotest.(check int) "same exit code" code1 code3;
          Alcotest.(check string) "same uart output" (CE.uart_output e1) (CE.uart_output e3);
          CE.sanitize_check e3 ~reason:"final";
          match e3.CE.sanitizer with
          | Some s ->
            List.iter (fun f -> print_endline (San.string_of_finding f)) (San.findings s);
            Alcotest.(check bool) "no sanitizer findings" true (San.ok s)
          | None -> Alcotest.fail "sanitizer missing"))
    [ 1; 2; 3 ]

let test_single_domain_determinism () =
  let e_a, code_a = run_arm_stress CE.default_config in
  let e_b, code_b = run_arm_stress CE.default_config in
  Alcotest.(check int) "same exit" code_a code_b;
  Alcotest.(check int) "same cycles" (CE.cycles e_a) (CE.cycles e_b);
  Alcotest.(check int) "same exec cycles" (CE.exec_cycles e_a) (CE.exec_cycles e_b);
  Alcotest.(check int) "same jit cycles" (CE.jit_cycles e_a) (CE.jit_cycles e_b);
  Alcotest.(check int) "no async jit cycles at domains=1" 0 (CE.async_jit_cycles e_a)

(* --- stats: per-domain counter shards merge exactly --------------------- *)

let test_counters_merge () =
  let c = Dbt_util.Stats.Counters.create () in
  Dbt_util.Stats.Counters.bump c "hits";
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Dbt_util.Stats.Counters.bump c "hits"
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "merged total" 40_001 (Dbt_util.Stats.Counters.get c "hits")

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "concurrent",
    [
      q test_cache_model;
      Alcotest.test_case "cache under domain contention" `Slow test_cache_domains;
      Alcotest.test_case "SMC in flight: generation tombstone" `Slow
        test_smc_in_flight_generation;
      Alcotest.test_case "SMC in flight: guest-byte hash" `Slow test_smc_in_flight_hash;
      Alcotest.test_case "clean in-flight install" `Slow test_in_flight_clean_installs;
      Alcotest.test_case "multi-domain equivalence" `Slow test_multi_domain_equivalence;
      Alcotest.test_case "single-domain determinism" `Slow test_single_domain_determinism;
      Alcotest.test_case "counters merge across domains" `Quick test_counters_merge;
    ] )
