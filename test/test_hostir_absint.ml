(* HostIR abstract-interpretation tests.

   The load-bearing property: on the same random branchy HostIR
   programs test_symexec uses, every concrete execution (Exec) from a
   random initial state lands inside the abstract facts computed by
   Absint from that state's exact constants — registers, register-file
   qwords and PC at the exit are all contained in the join of the
   abstract states at the reachable Exit sites.  An unsound transfer
   function fails this in a handful of the 1000 cases.

   Then the obligation checker: seeded violations of each class — an
   out-of-bounds register-file access, a misaligned one, a spill slot
   outside the frame, a dirty promoted register live across a helper
   call, an uncovered dirty register at an exit, a writeback map naming
   a non-promoted register — are each rejected with the named finding,
   and Verify.check_wb reports the identical messages (it delegates
   here).  The shared helper-effect classification is pinned to its
   semantic anchors, and the absint-simplify rewrites are exercised one
   by one. *)

module Hir = Hostir.Hir
module A = Hostir.Absint
module Ef = Hostir.Effects
module Exec = Hostir.Exec
module Prng = Dbt_util.Prng

let v n = Hir.Vreg n

(* --- soundness: abstract facts contain concrete execution ----------------------- *)

let prop_absint_contains_concrete =
  QCheck2.Test.make ~name:"absint facts contain concrete execution" ~count:1000
    QCheck2.Gen.int64 (fun seed ->
      let prng = Prng.create (if seed = 0L then 1L else seed) in
      let prog = Test_symexec.gen_program prng in
      (* random concrete initial state *)
      let pc0 = Int64.logand (Prng.int64 prng) 0xFFFF_FFFF_FFF0L in
      let preg0 = Array.init 16 (fun _ -> Prng.int64 prng) in
      let rf0 = Array.init Test_symexec.n_offs (fun _ -> Prng.int64 prng) in
      let ctx = Test_symexec.mk_ctx () in
      ctx.Exec.pc <- pc0;
      Array.iteri (fun i x -> ctx.Exec.regs.(i) <- x) preg0;
      Array.iteri (fun i x -> Exec.rf_write ctx (8 * i) x) rf0;
      ignore (Exec.run ctx (Test_symexec.indexify prog));
      (* abstract run from the same state's exact constants *)
      let entry =
        let s = ref A.state_top in
        Array.iteri (fun i x -> s := A.write !s (Hir.Preg i) (A.const x)) preg0;
        Array.iteri (fun i x -> s := A.rf_write !s (8 * i) (A.const x)) rf0;
        { !s with A.s_pc = A.const pc0 }
      in
      let facts = A.analyze ~entry prog in
      (* The concrete run stopped at some Exit; soundness means its
         pre-state — hence the join over all reachable Exit sites —
         contains the concrete finals. *)
      let exits = ref [] in
      A.iter_facts facts (fun _ s ins ->
          match ins with Hir.Exit _ -> exits := s :: !exits | _ -> ());
      let joined =
        match !exits with
        | [] -> failwith "no abstractly-reachable exit on an always-exiting program"
        | s :: tl -> List.fold_left A.state_join s tl
      in
      let chk what value x =
        if not (A.contains value x) then
          failwith
            (Printf.sprintf "%s: concrete %Ld outside abstract %s" what x
               (A.value_to_string value))
      in
      for g = 0 to 15 do
        chk (Printf.sprintf "r%d" g) (A.read joined (Hir.Preg g)) ctx.Exec.regs.(g)
      done;
      for i = 0 to Test_symexec.n_offs - 1 do
        chk (Printf.sprintf "rf[%d]" (8 * i)) (A.rf_read joined (8 * i))
          (Exec.rf_read ctx (8 * i))
      done;
      chk "pc" joined.A.s_pc ctx.Exec.pc;
      true)

(* --- seeded obligation violations ----------------------------------------------- *)

let has cls fs = List.exists (fun (f : A.finding) -> f.A.f_class = cls) fs

let check_has what cls fs =
  if not (has cls fs) then
    Alcotest.failf "%s: no %s finding in [%s]" what (A.obligation_name cls)
      (String.concat "; " (List.map A.finding_to_string fs))

let test_ob_rf_oob () =
  check_has "oob rf offset" A.Ob_rf_oob
    (A.check_translation [| Hir.Label 0; Hir.Ldrf (v 0, A.rf_bytes); Hir.Exit 0 |]);
  check_has "negative rf offset" A.Ob_rf_oob
    (A.check_translation [| Hir.Label 0; Hir.Strf (-8, Hir.Imm 0L); Hir.Exit 0 |]);
  check_has "oob wbmap offset" A.Ob_rf_oob
    (A.check_translation [| Hir.Label 0; Hir.Wbmap [| (v 0, A.rf_bytes + 8) |]; Hir.Exit 0 |])

let test_ob_rf_align () =
  check_has "misaligned rf offset" A.Ob_rf_align
    (A.check_translation [| Hir.Label 0; Hir.Strf (12, Hir.Imm 0L); Hir.Exit 0 |]);
  (* a clean stream has no findings at all *)
  Alcotest.(check int) "clean stream" 0
    (List.length
       (A.check_translation
          [| Hir.Label 0; Hir.Ldrf (v 0, 8); Hir.Strf (16, v 0); Hir.Exit 0 |]))

let test_ob_frame_oob () =
  check_has "slot outside frame" A.Ob_frame_oob
    (A.check_frame ~n_slots:2 [| Hir.Label 0; Hir.Mov (Hir.Slot 3, Hir.Imm 1L); Hir.Exit 0 |]);
  Alcotest.(check int) "slot inside frame" 0
    (List.length
       (A.check_frame ~n_slots:2 [| Hir.Label 0; Hir.Mov (Hir.Slot 1, Hir.Imm 1L); Hir.Exit 0 |]))

(* Dirty promoted register live across a clobbering helper call. *)
let test_ob_dirty_call () =
  let fs =
    A.check_wb ~promoted:[ (0, 8) ]
      [|
        Hir.Label 0;
        Hir.Ldrf (v 0, 8);
        Hir.Alu (Aadd, v 0, v 0, Imm 1L);
        Hir.Call (1, [||], None);
        Hir.Strf (8, v 0);
        Hir.Exit 0;
      |]
  in
  check_has "dirty across call" A.Ob_dirty_call fs

(* Dirty promoted register reaching an exit with no writeback entry. *)
let test_ob_wb_coverage () =
  let fs =
    A.check_wb ~promoted:[ (0, 8) ]
      [| Hir.Label 0; Hir.Ldrf (v 0, 8); Hir.Alu (Aadd, v 0, v 0, Imm 1L); Hir.Exit 0 |]
  in
  check_has "uncovered dirty exit" A.Ob_wb_coverage fs

(* Writeback map naming a register that was never promoted. *)
let test_ob_wb_shape () =
  let fs =
    A.check_wb ~promoted:[ (0, 8) ]
      [|
        Hir.Label 0;
        Hir.Ldrf (v 0, 8);
        Hir.Wbmap [| (v 9, 8) |];
        Hir.Exit 0;
      |]
  in
  check_has "non-promoted wbmap entry" A.Ob_wb_shape fs

(* Verify.check_wb is a thin front door over Absint.check_wb: same
   stream, same violations, identical message strings. *)
let test_verify_delegates () =
  let stream =
    [|
      Hir.Label 0;
      Hir.Ldrf (v 0, 8);
      Hir.Alu (Aadd, v 0, v 0, Imm 1L);
      Hir.Call (1, [||], None);
      Hir.Exit 0;
    |]
  in
  let promoted = [ (0, 8) ] in
  let from_verify =
    List.map (fun (x : Hostir.Verify.violation) -> x.Hostir.Verify.v_msg)
      (Hostir.Verify.check_wb ~promoted stream)
  in
  let from_absint =
    List.map (fun (f : A.finding) -> f.A.f_msg) (A.check_wb ~promoted stream)
  in
  Alcotest.(check (list string)) "identical messages" from_absint from_verify;
  Alcotest.(check bool) "violations found" true (from_verify <> [])

(* --- one source of truth for helper effects ------------------------------------- *)

let kind = Alcotest.testable (fun fmt k -> Format.pp_print_string fmt (Ef.kind_to_string k)) ( = )

let test_effects_single_source () =
  (* Common.helper_kind (the engine's classifier, fed to Symexec, Promote
     and the analyzer) is Effects.classify, not a re-implementation. *)
  for h = 0 to 63 do
    Alcotest.check kind
      (Printf.sprintf "helper %d" h)
      (Ef.classify h) (Captive.Common.helper_kind h)
  done;
  (* the semantic anchors *)
  Alcotest.check kind "coproc read" Ef.C_read (Ef.classify Ef.h_coproc_read);
  Alcotest.check kind "as switch" Ef.C_as_switch (Ef.classify Ef.h_as_switch);
  Alcotest.check kind "halt is an event" Ef.C_event (Ef.classify Ef.h_halt);
  Alcotest.check kind "softfloat is pure" Ef.C_pure (Ef.classify Ef.first_softfloat);
  Alcotest.check kind "coproc write clobbers" Ef.C_clobber (Ef.classify Ef.h_coproc_write)

(* A pure helper is transparent to the writeback discipline: a dirty
   promoted register may stay live across it (flushed before the exit),
   which the default everything-clobbers classification rejects. *)
let test_pure_call_transparent () =
  let stream =
    [|
      Hir.Label 0;
      Hir.Ldrf (v 0, 8);
      Hir.Alu (Aadd, v 0, v 0, Imm 1L);
      Hir.Call (Ef.first_softfloat, [| Hir.Preg 0 |], Some (v 5));
      Hir.Strf (8, v 0);
      Hir.Exit 0;
    |]
  in
  let promoted = [ (0, 8) ] in
  Alcotest.(check int) "accepted with effect classification" 0
    (List.length (A.check_wb ~classify:Ef.classify ~promoted stream));
  Alcotest.(check bool) "rejected when every helper clobbers" true
    (A.check_wb ~promoted stream <> [])

(* --- the absint-simplify pass ---------------------------------------------------- *)

let simplify = A.simplify ~classify:Ef.classify

let test_simplify_folds_branch () =
  let out, ss =
    simplify
      [|
        Hir.Label 0;
        Hir.Mov (v 0, Imm 0L);
        Hir.Br (v 0, 1, 2);
        Hir.Label 1;
        Hir.Strf (0, Hir.Imm 1L);
        Hir.Exit 0;
        Hir.Label 2;
        Hir.Strf (0, Hir.Imm 2L);
        Hir.Exit 0;
      |]
  in
  Alcotest.(check int) "branch folded" 1 ss.A.branches_folded;
  Alcotest.(check bool) "no Br remains" false
    (Array.exists (function Hir.Br _ -> true | _ -> false) out);
  Alcotest.(check bool) "taken arm survives" true
    (Array.exists (( = ) (Hir.Strf (0, Hir.Imm 2L))) out);
  Alcotest.(check bool) "dead arm pruned" false
    (Array.exists (( = ) (Hir.Strf (0, Hir.Imm 1L))) out)

let test_simplify_folds_consts () =
  let out, ss =
    simplify
      [| Hir.Label 0; Hir.Alu (Aadd, v 0, Imm 2L, Imm 3L); Hir.Strf (0, v 0); Hir.Exit 0 |]
  in
  Alcotest.(check int) "const folded" 1 ss.A.consts_folded;
  Alcotest.(check bool) "rewritten to a move" true
    (Array.exists (( = ) (Hir.Mov (v 0, Hir.Imm 5L))) out)

let test_simplify_drops_masks () =
  let out, ss =
    simplify
      [|
        Hir.Label 0;
        Hir.Ext (false, 8, v 0, Hir.Preg 0);
        Hir.Alu (Aand, v 1, v 0, Imm 0xFFL);
        Hir.Strf (0, v 1);
        Hir.Exit 0;
      |]
  in
  Alcotest.(check int) "mask dropped" 1 ss.A.masks_dropped;
  Alcotest.(check bool) "mask became a move" true
    (Array.exists (( = ) (Hir.Mov (v 1, v 0))) out)

let test_simplify_reduces_division () =
  let out, ss =
    simplify
      [|
        Hir.Label 0;
        Hir.Divrem (false, false, v 0, Hir.Preg 0, Imm 8L);
        Hir.Strf (0, v 0);
        Hir.Divrem (false, true, v 1, Hir.Preg 1, Imm 8L);
        Hir.Strf (8, v 1);
        Hir.Exit 0;
      |]
  in
  Alcotest.(check int) "both reduced" 2 ss.A.divs_reduced;
  Alcotest.(check bool) "div became a shift" true
    (Array.exists (( = ) (Hir.Alu (Ashr, v 0, Hir.Preg 0, Hir.Imm 3L))) out);
  Alcotest.(check bool) "rem became a mask" true
    (Array.exists (( = ) (Hir.Alu (Aand, v 1, Hir.Preg 1, Hir.Imm 7L))) out);
  Alcotest.(check bool) "no division remains" false
    (Array.exists (function Hir.Divrem _ -> true | _ -> false) out)

let test_simplify_deletes_dead_keeps_wbmap () =
  let out, ss =
    simplify
      [|
        Hir.Label 0;
        Hir.Alu (Aadd, v 0, Hir.Preg 0, Imm 1L);
        (* dead: never used *)
        Hir.Mov (v 1, Imm 7L);
        (* named by the writeback map: must survive *)
        Hir.Strf (0, Hir.Preg 1);
        Hir.Wbmap [| (v 1, 8) |];
        Hir.Exit 0;
      |]
  in
  Alcotest.(check bool) "dead def deleted" true (ss.A.dead_deleted >= 1);
  Alcotest.(check bool) "dead def gone" false
    (Array.exists (( = ) (Hir.Alu (Aadd, v 0, Hir.Preg 0, Hir.Imm 1L))) out);
  Alcotest.(check bool) "wbmap-named def survives" true
    (Array.exists (( = ) (Hir.Mov (v 1, Hir.Imm 7L))) out);
  Alcotest.(check bool) "wbmap survives" true
    (Array.exists (function Hir.Wbmap _ -> true | _ -> false) out)

(* Simplification preserves concrete behaviour on random programs: run
   the original and the simplified stream from the same state, compare
   exit slot, PC, registers and register file. *)
let prop_simplify_preserves_execution =
  QCheck2.Test.make ~name:"simplify preserves concrete execution" ~count:500
    QCheck2.Gen.int64 (fun seed ->
      let prng = Prng.create (if seed = 0L then 1L else seed) in
      let prog = Test_symexec.gen_program prng in
      let out, _ = simplify prog in
      let pc0 = Int64.logand (Prng.int64 prng) 0xFFFF_FFFF_FFF0L in
      let preg0 = Array.init 16 (fun _ -> Prng.int64 prng) in
      let rf0 = Array.init Test_symexec.n_offs (fun _ -> Prng.int64 prng) in
      let run p =
        let ctx = Test_symexec.mk_ctx () in
        ctx.Exec.pc <- pc0;
        Array.iteri (fun i x -> ctx.Exec.regs.(i) <- x) preg0;
        Array.iteri (fun i x -> Exec.rf_write ctx (8 * i) x) rf0;
        let slot = Exec.run ctx (Test_symexec.indexify p) in
        (slot, ctx)
      in
      let slot_a, ctx_a = run prog and slot_b, ctx_b = run out in
      if slot_a <> slot_b then
        failwith (Printf.sprintf "exit slot %d <> %d after simplify" slot_a slot_b);
      if ctx_a.Exec.pc <> ctx_b.Exec.pc then
        failwith (Printf.sprintf "pc %Ld <> %Ld after simplify" ctx_a.Exec.pc ctx_b.Exec.pc);
      for g = 0 to Test_symexec.n_pregs - 1 do
        (* simplify only rewrites vreg destinations, so every preg must
           agree (dead vreg defs cannot change them) *)
        if ctx_a.Exec.regs.(g) <> ctx_b.Exec.regs.(g) then
          failwith (Printf.sprintf "r%d diverged after simplify" g)
      done;
      for i = 0 to Test_symexec.n_offs - 1 do
        if Exec.rf_read ctx_a (8 * i) <> Exec.rf_read ctx_b (8 * i) then
          failwith (Printf.sprintf "rf[%d] diverged after simplify" (8 * i))
      done;
      true)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "hostir-absint",
    [
      q prop_absint_contains_concrete;
      q prop_simplify_preserves_execution;
      Alcotest.test_case "oob register-file access rejected" `Quick test_ob_rf_oob;
      Alcotest.test_case "misaligned register-file access rejected" `Quick test_ob_rf_align;
      Alcotest.test_case "spill slot outside frame rejected" `Quick test_ob_frame_oob;
      Alcotest.test_case "dirty register across helper call rejected" `Quick test_ob_dirty_call;
      Alcotest.test_case "uncovered dirty exit rejected" `Quick test_ob_wb_coverage;
      Alcotest.test_case "malformed writeback map rejected" `Quick test_ob_wb_shape;
      Alcotest.test_case "Verify.check_wb delegates to Absint" `Quick test_verify_delegates;
      Alcotest.test_case "helper effects have one source of truth" `Quick
        test_effects_single_source;
      Alcotest.test_case "pure helper transparent to writeback discipline" `Quick
        test_pure_call_transparent;
      Alcotest.test_case "simplify folds decided branches" `Quick test_simplify_folds_branch;
      Alcotest.test_case "simplify folds constants" `Quick test_simplify_folds_consts;
      Alcotest.test_case "simplify drops redundant masks" `Quick test_simplify_drops_masks;
      Alcotest.test_case "simplify strength-reduces division" `Quick
        test_simplify_reduces_division;
      Alcotest.test_case "simplify deletes dead defs, keeps the writeback map" `Quick
        test_simplify_deletes_dead_keeps_wbmap;
    ] )
