(* Relocation-cleanliness analyzer (Hostir.Reloc) and persistent AOT
   cache (Captive.Aotcache + the engine's warm-boot path) tests:

   - QCheck properties: encode -> decode_program -> re-encode is
     byte-identical on randomized allocated streams, and encoding the
     same stream twice reproduces the bytes (the determinism the
     content-keyed cache relies on);
   - one seeded-violation fixture per finding class, each rejected by
     [Reloc.certify] with exactly the expected class;
   - the [Encode.Encode_error] payload (instruction index + byte
     offset) on both the encode and decode sides;
   - Aotcache serialization roundtrip, corruption rejection, and
     disk-backed store/reload;
   - a mini warm-boot determinism check: the ARM MMU-stress workload
     cold then warm against the same cache directory must agree on the
     exit code and guest-visible execution cycles bit-for-bit, with the
     warm boot translating a fraction of the cold boot's cycles. *)

open Hostir
module Hir = Hostir.Hir
module R = Reloc
module AC = Captive.Aotcache
module CE = Captive.Engine
module MS = Workloads.Mmu_stress
module K = Workloads.Kernel

let env ?(n_exits = 0) ?(n_helpers = 8) ?(n_slots = 4) ?(rf_bytes = 1024) () =
  { R.n_exits; n_helpers; n_slots; rf_bytes }

let ra_of instrs =
  { Regalloc.instrs;
    dead = Array.make (Array.length instrs) false;
    n_slots = 4;
    n_spilled = 0;
    n_dead = 0
  }

let classes_of = function
  | Ok _ -> []
  | Error fs -> List.sort_uniq compare (List.map (fun f -> f.R.f_class) fs)

let check_rejected what expected result =
  match result with
  | Ok _ -> Alcotest.failf "%s: certified clean, expected %s" what (R.class_name expected)
  | Error fs ->
    if not (List.exists (fun f -> f.R.f_class = expected) fs) then
      Alcotest.failf "%s: findings %s lack %s" what
        (String.concat "; " (List.map R.finding_to_string fs))
        (R.class_name expected)

(* --- seeded violations: one fixture per finding class ----------------------- *)

let test_seeded_abs_host_addr () =
  let open Hir in
  (* A window value dereferenced is a leaked host pointer... *)
  let code = Encode.encode (ra_of [| Mem_ld (64, Preg 0, Imm 0x7F00_0000_0000_0000L); Exit 0 |]) in
  check_rejected "window load" R.Abs_host_addr (R.certify ~env:(env ()) code);
  let code = Encode.encode (ra_of [| Mem_st (64, Imm 0x7FFF_0000_0000_0000L, Preg 1); Exit 0 |]) in
  check_rejected "window store" R.Abs_host_addr (R.certify ~env:(env ()) code);
  (* ...but the same numeric range as plain data pins nothing: INT64_MAX
     is a legitimate guest constant (perlbench uses it). *)
  let code = Encode.encode (ra_of [| Mov (Preg 0, Imm Int64.max_int); Exit 0 |]) in
  (match R.certify ~env:(env ()) code with
  | Ok _ -> ()
  | Error fs ->
    Alcotest.failf "data immediate INT64_MAX flagged: %s"
      (String.concat "; " (List.map R.finding_to_string fs)))

let test_seeded_unnumbered_exit () =
  let open Hir in
  (* Chain slot above everything the installer binds. *)
  let code = Encode.encode (ra_of [| Exit 3 |]) in
  check_rejected "exit slot 3 of 0" R.Unnumbered_exit (R.certify ~env:(env ~n_exits:0 ()) code);
  (* Control falls off the end with no site to re-bind. *)
  let code = Encode.encode (ra_of [| Mov (Preg 0, Imm 1L) |]) in
  check_rejected "fall off the end" R.Unnumbered_exit (R.certify ~env:(env ()) code);
  (* A reachable branch to the very end is the same hole. *)
  let code =
    Encode.encode_stream [| Br (Preg 0, 0, 1); Label 0; Exit 0; Label 1 |]
  in
  check_rejected "branch past the end" R.Unnumbered_exit (R.certify ~env:(env ()) code)

let test_seeded_env_immediate () =
  let open Hir in
  let code = Encode.encode (ra_of [| Strf (4096, Preg 0); Exit 0 |]) in
  check_rejected "register-file store out of bounds" R.Env_immediate
    (R.certify ~env:(env ~rf_bytes:1024 ()) code);
  let code = Encode.encode (ra_of [| Strf (12, Preg 0); Exit 0 |]) in
  check_rejected "misaligned register-file store" R.Env_immediate
    (R.certify ~env:(env ()) code);
  let code = Encode.encode (ra_of [| Mov (Slot 9, Preg 0); Exit 0 |]) in
  check_rejected "frame slot outside the frame" R.Env_immediate
    (R.certify ~env:(env ~n_slots:4 ()) code);
  let code = Encode.encode (ra_of [| Mov (Preg 17, Imm 0L); Exit 0 |]) in
  check_rejected "host register outside the file" R.Env_immediate
    (R.certify ~env:(env ()) code)

let test_seeded_helper_by_addr () =
  let open Hir in
  let code = Encode.encode (ra_of [| Call (999, [||], None); Exit 0 |]) in
  check_rejected "helper index 999 of 8" R.Helper_by_addr
    (R.certify ~env:(env ~n_helpers:8 ()) code)

let test_seeded_nondet_encoding () =
  (* Hand-built non-canonical stream: Mov (Preg 0, Imm 5) with the
     immediate carried as imm32 (tag 2) where the canonical encoder
     picks imm8 (tag 1), then Exit 0.  It decodes fine but re-encodes
     shorter, so the content key would not be a function of the
     program. *)
  let non_canonical =
    Bytes.of_string "\x01\x00\x00\x02\x05\x00\x00\x00\x1B\x00\x00"
  in
  check_rejected "non-canonical imm width" R.Nondet_encoding
    (R.certify ~env:(env ()) non_canonical);
  (* An undecodable stream can never be audited, so it is flagged too. *)
  check_rejected "undecodable stream" R.Nondet_encoding
    (R.certify ~env:(env ()) (Bytes.of_string "\xFF"))

(* --- certificates on clean programs ----------------------------------------- *)

let test_certificate_shape () =
  let open Hir in
  let instrs =
    [| Ldrf (Preg 0, 16);
       Alu (Aadd, Preg 0, Preg 0, Imm 1L);
       Strf (16, Preg 0);
       Poll 1;
       Exit 2
    |]
  in
  let ra = ra_of instrs in
  let code = Encode.encode ra in
  match R.certify ~env:(env ~n_exits:2 ()) ~ra code with
  | Error fs ->
    Alcotest.failf "clean program rejected: %s"
      (String.concat "; " (List.map R.finding_to_string fs))
  | Ok cert ->
    Alcotest.(check int64) "content hash" (R.hash64 code) cert.R.c_hash;
    Alcotest.(check int) "byte size" (Bytes.length code) cert.R.c_byte_size;
    Alcotest.(check int) "exit sites" 2 (Array.length cert.R.c_sites);
    let s0 = cert.R.c_sites.(0) and s1 = cert.R.c_sites.(1) in
    Alcotest.(check bool) "first site is the poll" true (s0.R.s_kind = R.S_poll);
    Alcotest.(check int) "poll slot" 1 s0.R.s_slot;
    Alcotest.(check bool) "second site is the exit" true (s1.R.s_kind = R.S_exit);
    Alcotest.(check int) "exit slot" 2 s1.R.s_slot;
    Alcotest.(check bool) "site offsets ascend" true (s0.R.s_offset < s1.R.s_offset)

(* --- Encode_error payload ---------------------------------------------------- *)

let test_encode_error_payload () =
  let open Hir in
  (* Mov (Preg 0, Imm 1) is 5 bytes; the Vreg is hit after the second
     Mov's opcode and dest operand, 3 bytes further in. *)
  let instrs = [| Mov (Preg 0, Imm 1L); Mov (Preg 1, Vreg 3) |] in
  (match Encode.encode (ra_of instrs) with
  | exception Encode.Encode_error { index; offset; _ } ->
    Alcotest.(check int) "faulting instruction index" 1 index;
    Alcotest.(check int) "faulting byte offset" 8 offset
  | _ -> Alcotest.fail "Vreg reached the encoder without an error");
  match Encode.decode_program (Bytes.of_string "\xFF") with
  | exception Encode.Encode_error { index; offset; msg } ->
    Alcotest.(check int) "decode index" 0 index;
    Alcotest.(check int) "decode offset" 0 offset;
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "mentions the opcode" true (contains msg "opcode")
  | _ -> Alcotest.fail "bad opcode decoded without an error"

(* --- QCheck: encoding is canonical and deterministic -------------------------- *)

let gen_operand =
  QCheck2.Gen.(
    oneof
      [ map (fun r -> Hir.Preg r) (int_range 0 15);
        map (fun v -> Hir.Imm (Int64.of_int v)) (int_range (-200) 200);
        map (fun v -> Hir.Imm v) (map Int64.of_int int);
        map (fun v -> Hir.Imm (Int64.of_int32 (Int32.of_int v))) (int_range (-70000) 70000);
        map (fun s -> Hir.Slot s) (int_range 0 3)
      ])

let gen_instr =
  QCheck2.Gen.(
    let op2 f = map2 f gen_operand gen_operand in
    let op3 f = map3 f gen_operand gen_operand gen_operand in
    oneof
      [ op2 (fun d s -> Hir.Mov (d, s));
        map2
          (fun k (d, a, b) -> Hir.Alu (k, d, a, b))
          (oneofl Hir.[ Aadd; Asub; Aand; Aor; Axor; Ashl; Ashr; Asar; Amul ])
          (triple gen_operand gen_operand gen_operand);
        map2
          (fun k (d, a, b) -> Hir.Setcc (k, d, a, b))
          (oneofl Hir.[ Ceq; Cne; Cult; Cslt; Csge ])
          (triple gen_operand gen_operand gen_operand);
        map3 (fun s (d, src) bits -> Hir.Ext (s, bits, d, src)) bool
          (pair gen_operand gen_operand) (oneofl [ 8; 16; 32 ]);
        op2 (fun d s -> Hir.Neg (d, s));
        map2
          (fun k (d, s) -> Hir.Bit1 (k, d, s))
          (oneofl Hir.[ Bclz32; Bclz64; Bpopcnt; Bswap64 ])
          (pair gen_operand gen_operand);
        op3 (fun d c a -> Hir.Cmov (d, c, a, Hir.Preg 0));
        map2 (fun d off -> Hir.Ldrf (d, 8 * off)) gen_operand (int_range 0 63);
        map2 (fun s off -> Hir.Strf (8 * off, s)) gen_operand (int_range 0 63);
        map2 (fun w (d, a) -> Hir.Mem_ld (w, d, a)) (oneofl [ 8; 16; 32; 64 ])
          (pair gen_operand gen_operand);
        map2 (fun w (a, v) -> Hir.Mem_st (w, a, v)) (oneofl [ 8; 16; 32; 64 ])
          (pair gen_operand gen_operand);
        map (fun n -> Hir.Inc_pc n) (int_range 0 64);
        map2
          (fun h args -> Hir.Call (h, Array.of_list args, Some (Hir.Preg 1)))
          (int_range 0 7)
          (list_size (int_range 0 3) gen_operand)
      ])

let gen_program =
  QCheck2.Gen.(
    map2
      (fun body deads ->
        let instrs = Array.of_list (body @ [ Hir.Exit 0 ]) in
        let dead = Array.make (Array.length instrs) false in
        List.iteri (fun i d -> if i < Array.length dead - 1 then dead.(i) <- d) deads;
        { Regalloc.instrs; dead; n_slots = 4; n_spilled = 0; n_dead = 0 })
      (list_size (int_range 1 24) gen_instr)
      (list_size (int_range 0 24) bool))

let prop_roundtrip_canonical =
  QCheck2.Test.make ~name:"encode -> decode -> re-encode is byte-identical" ~count:300
    gen_program (fun ra ->
      let code = Encode.encode ra in
      let p = Encode.decode_program ~n_slots:ra.Regalloc.n_slots code in
      Bytes.equal code (R.reencode p))

let prop_encode_deterministic =
  QCheck2.Test.make ~name:"encoding the same allocated stream twice is identical" ~count:300
    gen_program (fun ra -> Bytes.equal (Encode.encode ra) (Encode.encode ra))

let prop_clean_certifies =
  (* The generated streams only use in-env operands, so certification
     must succeed and the audits must find nothing. *)
  QCheck2.Test.make ~name:"canonical in-env streams certify clean" ~count:150 gen_program
    (fun ra ->
      let code = Encode.encode ra in
      match R.certify ~env:(env ~n_slots:4 ~rf_bytes:1024 ()) ~ra code with
      | Ok cert -> Int64.equal cert.R.c_hash (R.hash64 code)
      | Error _ -> false)

(* --- Aotcache ----------------------------------------------------------------- *)

let mk_entry () =
  let code = Encode.encode (ra_of [| Hir.Mov (Hir.Preg 0, Hir.Imm 7L); Hir.Exit 0 |]) in
  { AC.e_kind = 0;
    e_va = 0x400000L;
    e_pa = 0x2000000L;
    e_el = 0;
    e_mmu = true;
    e_cfg = 0xDEADBEEFL;
    e_members = [| (0x400000L, 8) |];
    e_guest = Bytes.make 8 'g';
    e_n_slots = 2;
    e_n_exits = 0;
    e_n_guest = 2;
    e_n_host = 2;
    e_code = code;
    e_hash = R.hash64 code
  }

let temp_dir () =
  let f = Filename.temp_file "captive_aot_test" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_aotcache_roundtrip () =
  let e = mk_entry () in
  let buf = Buffer.create 64 in
  AC.write_entry buf e;
  let e' = AC.read_entry (Buffer.to_bytes buf) in
  Alcotest.(check bool) "roundtrip preserves the entry" true (e = e')

let test_aotcache_corruption () =
  let e = mk_entry () in
  let buf = Buffer.create 64 in
  AC.write_entry buf e;
  let b = Buffer.to_bytes buf in
  (* Flip a byte inside the stored host code: the content hash no longer
     matches and the entry must be refused, not installed. *)
  let pos = Bytes.length b - 10 in
  Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor 0xFF);
  (match AC.read_entry b with
  | _ -> Alcotest.fail "corrupted entry parsed"
  | exception AC.Malformed _ -> ());
  (* Truncation is refused too. *)
  match AC.read_entry (Bytes.sub b 0 (Bytes.length b / 2)) with
  | _ -> Alcotest.fail "truncated entry parsed"
  | exception AC.Malformed _ -> ()

let test_aotcache_store_reload () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let t = AC.open_dir dir in
      Alcotest.(check int) "fresh cache is empty" 0 (AC.entry_count t);
      let e = mk_entry () in
      AC.store t e;
      AC.store t e;
      Alcotest.(check int) "store is idempotent" 1 (AC.entry_count t);
      (* A second open sees the persisted entry... *)
      let t2 = AC.open_dir dir in
      Alcotest.(check int) "reloaded" 1 (AC.stats t2).AC.loaded;
      (match
         AC.candidates t2 ~kind:0 ~va:e.AC.e_va ~pa:e.AC.e_pa ~el:0 ~mmu:true
           ~cfg:e.AC.e_cfg
       with
      | [ e' ] -> Alcotest.(check bool) "same entry" true (e = e')
      | l -> Alcotest.failf "expected 1 candidate, got %d" (List.length l));
      (* ...a different config signature misses... *)
      Alcotest.(check int) "other config misses" 0
        (List.length
           (AC.candidates t2 ~kind:0 ~va:e.AC.e_va ~pa:e.AC.e_pa ~el:0 ~mmu:true ~cfg:1L));
      (* ...and garbage on disk is counted malformed, never loaded. *)
      let oc = open_out_bin (Filename.concat dir "junk.aot") in
      output_string oc "not an entry";
      close_out oc;
      let t3 = AC.open_dir dir in
      Alcotest.(check int) "garbage counted malformed" 1 (AC.stats t3).AC.malformed;
      Alcotest.(check int) "garbage not loaded" 1 (AC.stats t3).AC.loaded)

(* --- warm boot: the payoff, in miniature -------------------------------------- *)

let test_aot_warm_boot () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config = { CE.default_config with CE.aot_dir = Some dir } in
      let boot () =
        let e = CE.create ~config (Guest_arm.Arm.ops ()) in
        K.install (K.captive_target e) ~user:(MS.arm_user ());
        let code = match CE.run ~max_cycles:2_000_000_000 e with CE.Poweroff c -> c | _ -> -1 in
        (e, code)
      in
      let e_c, code_c = boot () in
      let e_w, code_w = boot () in
      Alcotest.(check int) "cold exit" MS.arm_expected_exit code_c;
      Alcotest.(check int) "warm exit" MS.arm_expected_exit code_w;
      (* Where the code came from must be invisible to the guest. *)
      Alcotest.(check int) "guest execution cycles bit-identical"
        (CE.exec_cycles e_c) (CE.exec_cycles e_w);
      let sc = e_c.CE.stats and sw = e_w.CE.stats in
      Alcotest.(check int) "no relocation findings (cold)" 0 sc.CE.reloc_findings;
      Alcotest.(check int) "no relocation findings (warm)" 0 sw.CE.reloc_findings;
      Alcotest.(check int) "warm boot rejects nothing" 0 sw.CE.aot_rejects;
      Alcotest.(check bool) "cold boot stored translations" true (sc.CE.aot_stores > 0);
      Alcotest.(check bool) "warm boot reloaded translations" true (sw.CE.aot_hits > 0);
      if sw.CE.translate_cycles * 4 > sc.CE.translate_cycles then
        Alcotest.failf "warm boot translated too much: %d vs cold %d" sw.CE.translate_cycles
          sc.CE.translate_cycles)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "reloc",
    [ Alcotest.test_case "seeded abs-host-addr" `Quick test_seeded_abs_host_addr;
      Alcotest.test_case "seeded unnumbered-exit" `Quick test_seeded_unnumbered_exit;
      Alcotest.test_case "seeded env-immediate" `Quick test_seeded_env_immediate;
      Alcotest.test_case "seeded helper-by-addr" `Quick test_seeded_helper_by_addr;
      Alcotest.test_case "seeded nondet-encoding" `Quick test_seeded_nondet_encoding;
      Alcotest.test_case "certificate shape" `Quick test_certificate_shape;
      Alcotest.test_case "Encode_error payload" `Quick test_encode_error_payload;
      q prop_roundtrip_canonical;
      q prop_encode_deterministic;
      q prop_clean_certifies;
      Alcotest.test_case "aotcache roundtrip" `Quick test_aotcache_roundtrip;
      Alcotest.test_case "aotcache corruption" `Quick test_aotcache_corruption;
      Alcotest.test_case "aotcache store/reload" `Quick test_aotcache_store_reload;
      Alcotest.test_case "warm boot determinism" `Slow test_aot_warm_boot
    ] )
