(* Symbolic-executor and translation-validation tests.

   The load-bearing property: on random branchy HostIR programs, the
   exit state Symexec predicts symbolically — chain slot, PC, register
   file, host registers — matches what the concrete executor (Exec)
   computes from a random initial state, with the symbolic terms
   evaluated under that same state.  This pins the smart constructors'
   constant folding and normalization to the concrete semantics.

   Then Equiv itself: normalization equates intentionally-different but
   equivalent programs (commuted adds, mask-vs-zext), a promoted loop
   validates against its unpromoted original, and three seeded
   miscompiles — swapped compare operands, a dropped writeback-map
   entry, a widened store — are each rejected with findings. *)

module Hir = Hostir.Hir
module S = Hostir.Symexec
module E = Hostir.Equiv
module P = Hostir.Promote
module Exec = Hostir.Exec
module Encode = Hostir.Encode
module Prng = Dbt_util.Prng

let v n = Hir.Vreg n

(* --- random program generation ------------------------------------------------ *)

let conds =
  [| Hir.Ceq; Cne; Cult; Cule; Cugt; Cuge; Cslt; Csle; Csgt; Csge |]

let alus = [| Hir.Aadd; Asub; Aand; Aor; Axor; Ashl; Ashr; Asar; Amul |]

let bit1s =
  [| Hir.Bclz32; Bclz64; Bpopcnt; Bswap16; Bswap32; Bswap64; Brbit32; Brbit64 |]

let bit2s = [| Hir.Bror32; Bror64 |]
let n_pregs = 6
let n_offs = 5

(* A random label-form program: [nb] blocks over Preg 0..5 and rf
   offsets 0..32, branches and jumps strictly forward (no loops, so the
   symbolic run is complete and exactly one path matches any concrete
   state), last block exits. *)
let gen_program prng =
  let nb = 2 + Prng.int prng 4 in
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  let preg () = Hir.Preg (Prng.int prng n_pregs) in
  let operand () =
    match Prng.int prng 3 with
    | 0 -> Hir.Imm (Int64.of_int (Prng.int prng 2000 - 1000))
    | 1 -> Hir.Imm (Prng.int64 prng)
    | _ -> preg ()
  in
  let off () = 8 * Prng.int prng n_offs in
  let fwd b = b + 1 + Prng.int prng (nb - 1 - b) in
  for b = 0 to nb - 1 do
    emit (Hir.Label b);
    for _ = 1 to 2 + Prng.int prng 6 do
      match Prng.int prng 16 with
      | 0 -> emit (Hir.Mov (preg (), operand ()))
      | 1 | 2 -> emit (Hir.Alu (alus.(Prng.int prng 9), preg (), operand (), operand ()))
      | 3 -> emit (Hir.Setcc (conds.(Prng.int prng 10), preg (), operand (), operand ()))
      | 4 -> emit (Hir.Cmov (preg (), operand (), operand (), operand ()))
      | 5 ->
        emit (Hir.Ext (Prng.bool prng, [| 8; 16; 32 |].(Prng.int prng 3), preg (), operand ()))
      | 6 -> emit (Hir.Neg (preg (), operand ()))
      | 7 -> emit (Hir.Not (preg (), operand ()))
      | 8 -> emit (Hir.Bit1 (bit1s.(Prng.int prng 8), preg (), operand ()))
      | 9 -> emit (Hir.Bit2 (bit2s.(Prng.int prng 2), preg (), operand (), operand ()))
      | 10 -> emit (Hir.Mulhi (Prng.bool prng, preg (), operand (), operand ()))
      | 11 -> emit (Hir.Divrem (Prng.bool prng, Prng.bool prng, preg (), operand (), operand ()))
      | 12 -> emit (Hir.Strf (off (), operand ()))
      | 13 -> emit (Hir.Ldrf (preg (), off ()))
      | 14 ->
        emit
          (Hir.Flags_add
             ((if Prng.bool prng then 32 else 64), preg (), operand (), operand (), operand ()))
      | _ -> (
        match Prng.int prng 3 with
        | 0 -> emit (Hir.Flags_logic ((if Prng.bool prng then 32 else 64), preg (), operand ()))
        | 1 -> emit (Hir.Load_pc (preg ()))
        | _ -> emit (Hir.Inc_pc (4 * (1 + Prng.int prng 4))))
    done;
    if b = nb - 1 then emit (Hir.Exit (Prng.int prng 4))
    else
      match Prng.int prng 4 with
      | 0 -> emit (Hir.Exit (Prng.int prng 4))
      | 1 -> emit (Hir.Jmp (fwd b))
      | 2 -> emit (Hir.Br (preg (), fwd b, b + 1))
      | _ -> () (* fall through into the next block *)
  done;
  Array.of_list (List.rev !instrs)

(* Label form -> index form (what Encode.decode_program produces), so the
   concrete executor can run the same program. *)
let indexify (prog : Hir.instr array) : Encode.program =
  let label_at = Hashtbl.create 8 in
  Array.iteri
    (fun i ins ->
      match ins with
      | Hir.Label l -> if not (Hashtbl.mem label_at l) then Hashtbl.add label_at l i
      | _ -> ())
    prog;
  let code =
    Array.map
      (function
        | Hir.Jmp l -> Hir.Jmp (Hashtbl.find label_at l)
        | Hir.Br (c, t, f) -> Hir.Br (c, Hashtbl.find label_at t, Hashtbl.find label_at f)
        | i -> i)
      prog
  in
  { Encode.code;
    offsets = Array.init (Array.length code) (fun i -> 4 * i);
    byte_size = 4 * Array.length code;
    n_slots = 0;
    wb_map = [||]
  }

let mk_ctx () =
  let machine = Hvm.Machine.create ~mem_size:(4 * 1024 * 1024) () in
  Exec.create ~machine ~helpers:[||] ~fault_handler:(fun _ _ _ ~bits:_ ~value:_ -> Exec.Retry)

(* --- soundness: symbolic exit state = concrete execution ----------------------- *)

let prop_symexec_matches_concrete =
  QCheck2.Test.make ~name:"symexec exit state matches concrete execution" ~count:1000
    QCheck2.Gen.int64 (fun seed ->
      let prng = Prng.create (if seed = 0L then 1L else seed) in
      let prog = gen_program prng in
      (* random concrete initial state *)
      let pc0 = Int64.logand (Prng.int64 prng) 0xFFFF_FFFF_FFF0L in
      let preg0 = Array.init 16 (fun _ -> Prng.int64 prng) in
      let rf0 = Array.init n_offs (fun _ -> Prng.int64 prng) in
      let ctx = mk_ctx () in
      ctx.Exec.pc <- pc0;
      Array.iteri (fun i x -> ctx.Exec.regs.(i) <- x) preg0;
      Array.iteri (fun i x -> Exec.rf_write ctx (8 * i) x) rf0;
      let slot = Exec.run ctx (indexify prog) in
      (* symbolic run from the fully symbolic initial state *)
      let r = S.run ~init_pc:(S.Atom S.A_pc) prog in
      if not r.S.complete then failwith "bounded run on a loop-free program";
      let env =
        {
          S.e_pc = pc0;
          e_preg = (fun i -> preg0.(i));
          e_rf = (fun off -> if off / 8 < n_offs && off mod 8 = 0 then rf0.(off / 8) else 0L);
          e_slot = (fun _ -> 0L);
        }
      in
      let holds (t, b) = S.eval env t <> 0L = b in
      (* exactly one symbolic path is consistent with the concrete state *)
      let x =
        match List.filter (fun x -> List.for_all holds x.S.x_lits) r.S.exits with
        | [ x ] -> x
        | l -> failwith (Printf.sprintf "%d consistent paths" (List.length l))
      in
      let check what a b =
        if a <> b then failwith (Printf.sprintf "%s: symbolic %Ld <> concrete %Ld" what a b)
      in
      if x.S.x_slot <> slot then
        failwith (Printf.sprintf "exit slot: symbolic %d <> concrete %d" x.S.x_slot slot);
      check "pc" (S.eval env x.S.x_pc) ctx.Exec.pc;
      List.iter (fun (off, t) -> check (Printf.sprintf "rf[%d]" off) (S.eval env t) (Exec.rf_read ctx off)) x.S.x_rf;
      (* offsets absent from the canonical exit rf must be untouched *)
      for i = 0 to n_offs - 1 do
        if not (List.mem_assoc (8 * i) x.S.x_rf) then
          check (Printf.sprintf "rf[%d] untouched" (8 * i)) rf0.(i) (Exec.rf_read ctx (8 * i))
      done;
      List.iter (fun (g, t) -> check (Printf.sprintf "r%d" g) (S.eval env t) ctx.Exec.regs.(g)) x.S.x_pregs;
      for g = 0 to n_pregs - 1 do
        if not (List.mem_assoc g x.S.x_pregs) then
          check (Printf.sprintf "r%d untouched" g) preg0.(g) ctx.Exec.regs.(g)
      done;
      true)

(* --- Equiv: normalization equates equivalent programs -------------------------- *)

let check_equiv ~opt ~reference =
  E.check ~init_pc:(S.Const 0x1000L) ~opt ~reference ()

let test_normalization_equates () =
  (* commuted add *)
  let r =
    check_equiv
      ~opt:[| Hir.Alu (Aadd, v 0, Preg 0, Preg 1); Strf (0, v 0); Exit 0 |]
      ~reference:[| Hir.Alu (Aadd, v 5, Preg 1, Preg 0); Strf (0, v 5); Exit 0 |]
  in
  Alcotest.(check bool) "a+b = b+a" true r.E.ok;
  (* mask vs zero-extension *)
  let r =
    check_equiv
      ~opt:[| Hir.Alu (Aand, v 0, Preg 0, Imm 0xFFL); Strf (0, v 0); Exit 0 |]
      ~reference:[| Hir.Ext (false, 8, v 0, Preg 0); Strf (0, v 0); Exit 0 |]
  in
  Alcotest.(check bool) "x & 0xFF = zext8 x" true r.E.ok;
  (* reassociation with constant folding *)
  let r =
    check_equiv
      ~opt:
        [|
          Hir.Alu (Aadd, v 0, Preg 0, Imm 3L);
          Hir.Alu (Aadd, v 1, v 0, Preg 1);
          Hir.Alu (Aadd, v 2, v 1, Imm 4L);
          Strf (0, v 2);
          Exit 0;
        |]
      ~reference:
        [|
          Hir.Alu (Aadd, v 0, Preg 1, Imm 7L);
          Hir.Alu (Aadd, v 1, v 0, Preg 0);
          Strf (0, v 1);
          Exit 0;
        |]
  in
  Alcotest.(check bool) "(a+3)+b+4 = (b+7)+a" true r.E.ok;
  (* and a genuinely different program is rejected *)
  let r =
    check_equiv
      ~opt:[| Hir.Alu (Asub, v 0, Preg 0, Preg 1); Strf (0, v 0); Exit 0 |]
      ~reference:[| Hir.Alu (Asub, v 0, Preg 1, Preg 0); Strf (0, v 0); Exit 0 |]
  in
  Alcotest.(check bool) "a-b <> b-a" false r.E.ok

(* --- Equiv vs the optimizer, and seeded miscompiles ---------------------------- *)

(* A promotable two-counter loop with a store and a compare; Promote
   caches both rf offsets and emits a writeback map. *)
let promo_stream =
  [|
    Hir.Label 0;
    Hir.Ldrf (v 0, 8);
    Hir.Alu (Aadd, v 0, v 0, Imm 1L);
    Hir.Strf (8, v 0);
    Hir.Ldrf (v 1, 16);
    Hir.Alu (Asub, v 1, v 1, Imm 3L);
    Hir.Strf (16, v 1);
    Hir.Setcc (Cult, v 3, v 0, Imm 100L);
    Hir.Strf (24, v 3);
    Hir.Mem_st (32, v 0, v 1);
    Hir.Br (v 1, 0, 1);
    Hir.Label 1;
    Hir.Exit 1;
  |]

let promoted_stream () =
  let out, promoted, _ = P.run promo_stream in
  Alcotest.(check bool) "promotion happened" true (promoted <> []);
  out

let test_equiv_accepts_promotion () =
  let out = promoted_stream () in
  let r = check_equiv ~opt:out ~reference:promo_stream in
  if not r.E.ok then
    Alcotest.failf "promoted loop rejected: %s"
      (String.concat "\n" (List.map (fun f -> f.E.f_name ^ ": " ^ f.E.f_detail) r.E.findings));
  (* the loop is k-bounded, so the run is incomplete but the explored
     iterations all matched *)
  Alcotest.(check bool) "k-bounded" false r.E.complete

let mutate1 what f out =
  let hit = ref false in
  let out =
    Array.map
      (fun i ->
        match f i with
        | Some i' when not !hit ->
          hit := true;
          i'
        | _ -> i)
      out
  in
  Alcotest.(check bool) (what ^ " mutation applied") true !hit;
  out

let expect_rejected what out =
  let r = check_equiv ~opt:out ~reference:promo_stream in
  Alcotest.(check bool) (what ^ " rejected") false r.E.ok;
  Alcotest.(check bool) (what ^ " has findings") true (r.E.findings <> [])

let test_rejects_swapped_compare () =
  (* swap the operands of the unsigned compare: v < 100 becomes 100 < v *)
  promoted_stream ()
  |> mutate1 "setcc-swap" (function
       | Hir.Setcc (Cult, d, a, b) -> Some (Hir.Setcc (Cult, d, b, a))
       | _ -> None)
  |> expect_rejected "swapped compare"

let test_rejects_dropped_wbmap_entry () =
  promoted_stream ()
  |> mutate1 "wbmap-drop" (function
       | Hir.Wbmap m when Array.length m > 0 -> Some (Hir.Wbmap (Array.sub m 0 (Array.length m - 1)))
       | _ -> None)
  |> expect_rejected "dropped writeback entry"

let test_rejects_widened_store () =
  promoted_stream ()
  |> mutate1 "store-widen" (function
       | Hir.Mem_st (32, a, s) -> Some (Hir.Mem_st (64, a, s))
       | _ -> None)
  |> expect_rejected "widened store"

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "symexec",
    [
      q prop_symexec_matches_concrete;
      Alcotest.test_case "normalization equates equivalent programs" `Quick
        test_normalization_equates;
      Alcotest.test_case "promoted loop validates against its original" `Quick
        test_equiv_accepts_promotion;
      Alcotest.test_case "swapped compare operands rejected" `Quick test_rejects_swapped_compare;
      Alcotest.test_case "dropped Wbmap entry rejected" `Quick test_rejects_dropped_wbmap_entry;
      Alcotest.test_case "widened store rejected" `Quick test_rejects_widened_store;
    ] )
