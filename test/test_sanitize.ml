(* MMU sanitizer tests.

   Negative fixtures: each deliberately corrupts one invariant the
   shadow oracle watches — a corrupt PTE, a stale TLB entry, a skipped
   invalidate_page, a double-mapped table frame, a ring violation — and
   must be caught by exactly the intended checker.

   Engine-level tests: the MMU-stress workloads run end-to-end with the
   sanitizer on and zero findings; a self-modifying-code sequence that
   leaves a stale read-only TLB entry regresses the handle_fault
   shoot-down; and the sanitizer is observation-free (identical cycle
   counts on and off). *)

module Mem = Hvm.Mem
module Pt = Hvm.Pagetable
module Tlb = Hvm.Tlb
module Machine = Hvm.Machine
module San = Hvm.Sanitize
module A = Guest_arm.Arm_asm
module K = Workloads.Kernel
module MS = Workloads.Mmu_stress
module CE = Captive.Engine

(* --- unit fixtures ----------------------------------------------------- *)

let mk () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) () in
  let root = Hvm.Palloc.alloc m.Machine.palloc in
  let s = San.create () in
  (m, root, s)

let map_both m root s ~asid va pa flags =
  Pt.map m.Machine.mem m.Machine.palloc ~root va pa flags;
  San.record_map s ~asid ~va_page:va ~pa_page:pa ~flags

let check1 m root s = San.check s ~machine:m ~roots:[| root |] ~code_keys:None ~reason:"test"

let checkers_of s =
  List.sort_uniq compare (List.map (fun f -> f.San.checker) (San.findings s))

let rw = { Pt.writable = true; user = true; executable = false }
let ro = { Pt.writable = false; user = true; executable = false }

let test_clean_baseline () =
  let m, root, s = mk () in
  map_both m root s ~asid:0 0x5000L 0x6000L rw;
  map_both m root s ~asid:0 0x9000L 0xA000L ro;
  map_both m root s ~asid:0 0x0000_8000_0000_0000L 0xB000L rw;
  Tlb.insert m.Machine.tlb ~pcid:0 ~vpn:5L ~frame:0x6000L ~flags:rw ~global:false;
  check1 m root s;
  Alcotest.(check bool) "no findings on consistent state" true (San.ok s);
  Alcotest.(check bool) "work was done" true
    (Dbt_util.Stats.Counters.get (San.counters s) "pt leaves checked" >= 3)

(* (A) a corrupted PTE — wrong frame, escalated permissions — is a pt
   finding and nothing else. *)
let test_negative_corrupt_pte () =
  let m, root, s = mk () in
  map_both m root s ~asid:0 0x5000L 0x6000L ro;
  check1 m root s;
  Alcotest.(check bool) "clean before corruption" true (San.ok s);
  (match fst (Pt.walk m.Machine.mem ~root 0x5000L) with
  | Some (pte_addr, _) ->
    Mem.write64 m.Machine.mem pte_addr
      (Int64.logor 0x7000L (Pt.flags_to_bits { Pt.writable = true; user = true; executable = true }))
  | None -> Alcotest.fail "mapping lost");
  check1 m root s;
  Alcotest.(check bool) "caught" false (San.ok s);
  Alcotest.(check bool) "exactly the pt checker" true (checkers_of s = [ San.Pt_shadow ])

(* (B) a TLB entry left behind by an unmap (no shoot-down) is a tlb
   finding and nothing else. *)
let test_negative_stale_tlb () =
  let m, root, s = mk () in
  map_both m root s ~asid:0 0x5000L 0x6000L rw;
  Tlb.insert m.Machine.tlb ~pcid:0 ~vpn:5L ~frame:0x6000L ~flags:rw ~global:false;
  check1 m root s;
  Alcotest.(check bool) "derivable entry is fine" true (San.ok s);
  Pt.unmap m.Machine.mem ~root 0x5000L;
  San.record_unmap s ~asid:0 ~va_page:0x5000L;
  (* the forgotten Tlb.flush_page is the bug under test *)
  check1 m root s;
  Alcotest.(check bool) "caught" false (San.ok s);
  Alcotest.(check bool) "exactly the tlb checker" true (checkers_of s = [ San.Tlb_shadow ])

(* (C) a write to a translated page without invalidate_page (the digest
   no longer matches) is a code-cache finding and nothing else. *)
let test_negative_missed_invalidation () =
  let m, root, s = mk () in
  Mem.write64 m.Machine.mem 0x6000L 0xDEADBEEF00L;
  Mem.write64 m.Machine.mem 0x6008L 0x1234L;
  San.record_protect_page s ~pa_page:0x6000L;
  San.record_translation s ~mem:m.Machine.mem ~pa:0x6000L ~el:1 ~mmu:false ~len:16;
  check1 m root s;
  Alcotest.(check bool) "clean while bytes unchanged" true (San.ok s);
  Mem.write8 m.Machine.mem 0x6004L 0xAAL;
  check1 m root s;
  Alcotest.(check bool) "caught" false (San.ok s);
  Alcotest.(check bool) "exactly the code checker" true (checkers_of s = [ San.Code_cache ])

(* (D) a table frame reachable through two PML4 slots is a frames finding
   and nothing else. *)
let test_negative_double_mapped_frame () =
  let m, root, s = mk () in
  map_both m root s ~asid:0 0x40_0000L 0x1000L rw;
  Pt.unmap m.Machine.mem ~root 0x40_0000L;
  San.record_unmap s ~asid:0 ~va_page:0x40_0000L;
  check1 m root s;
  Alcotest.(check bool) "clean after unmap" true (San.ok s);
  (* alias PML4 slot 5 to slot 0's L2 table *)
  let l2 = Pt.frame_of (Mem.read64 m.Machine.mem root) in
  Mem.write64 m.Machine.mem (Int64.add root 40L)
    (Int64.logor l2 (Int64.logor Pt.pte_present (Int64.logor Pt.pte_writable Pt.pte_user)));
  check1 m root s;
  Alcotest.(check bool) "caught" false (San.ok s);
  Alcotest.(check bool) "exactly the frames checker" true (checkers_of s = [ San.Frames ])

(* (E) user code on a kernel-only mapping, and an EL/ring mismatch, are
   ring findings and nothing else. *)
let test_negative_ring () =
  let m, root, s = mk () in
  m.Machine.paging <- true;
  map_both m root s ~asid:0 0x7000L 0x8000L { Pt.writable = false; user = false; executable = true };
  m.Machine.ring <- 3;
  San.audit_ring s ~machine:m ~roots:[| root |] ~asid:0 ~guest_el:0 ~pc:0x7010L;
  Alcotest.(check bool) "kernel-only mapping caught" false (San.ok s);
  m.Machine.ring <- 0;
  San.audit_ring s ~machine:m ~roots:[| root |] ~asid:0 ~guest_el:0 ~pc:0x7010L;
  Alcotest.(check bool) "exactly the ring checker" true (checkers_of s = [ San.Ring ]);
  Alcotest.(check int) "both violations distinct" 2
    (Dbt_util.Stats.Counters.get (San.counters s) "ring findings")

(* --- engine-level ------------------------------------------------------ *)

let sanitized_config = { CE.default_config with CE.sanitize = true; sanitize_every = 16 }

let sanitizer_of (e : CE.t) = Option.get e.CE.sanitizer

(* Regression for the handle_fault TLB shoot-down: read a code page
   (leaving a read-only host-TLB entry), then patch an instruction on it.
   The SMC write faults, the page is invalidated and remapped writable —
   and without the flush_page after the remap the retry re-faults through
   the stale read-only entry forever. *)
let smc_stale_tlb_image () =
  let a = A.create ~base:0x80000L () in
  A.b a "main";
  A.label a "snippet";
  A.movz a A.x0 1;
  A.ret a;
  A.label a "main";
  A.adr a A.x21 "snippet";
  A.bl a "snippet";
  A.mov_reg a A.x19 A.x0;
  A.ldr a A.x1 A.x21 (* code-page read: read-only TLB entry *);
  A.mov_const a A.x22 (MS.arm_insn_word (fun b -> A.movz b A.x0 2));
  A.str32 a A.x22 A.x21 (* SMC write *);
  A.bl a "snippet";
  A.add_reg a A.x0 A.x19 A.x0 (* 1 + 2 *);
  A.mov_const a A.x25 0x0930_0000L;
  A.str a A.x0 A.x25 (* syscon poweroff with exit code *);
  A.label a "hang";
  A.b a "hang";
  A.assemble a

let run_arm_stress config =
  let e = CE.create ~config (Guest_arm.Arm.ops ()) in
  K.install (K.captive_target e) ~user:(MS.arm_user ());
  let code = match CE.run ~max_cycles:2_000_000_000 e with CE.Poweroff c -> c | _ -> -1 in
  (e, code)

let test_smc_stale_tlb_regression () =
  let image = smc_stale_tlb_image () in
  let e = CE.create ~config:sanitized_config (Guest_arm.Arm.ops ()) in
  CE.load_image e ~addr:0x80000L image;
  CE.set_entry e 0x80000L;
  let code = match CE.run ~max_cycles:100_000_000 e with CE.Poweroff c -> c | _ -> -1 in
  Alcotest.(check int) "patched snippet returns 2 on the second call" 3 code;
  CE.sanitize_check e ~reason:"final";
  let s = sanitizer_of e in
  List.iter (fun f -> print_endline (San.string_of_finding f)) (San.findings s);
  Alcotest.(check bool) "no sanitizer findings" true (San.ok s)

let test_sanitized_arm_stress () =
  let e, code = run_arm_stress sanitized_config in
  Alcotest.(check int) "arm stress exit" MS.arm_expected_exit code;
  Alcotest.(check string) "uart output" "mmu" (CE.uart_output e);
  CE.sanitize_check e ~reason:"final";
  let s = sanitizer_of e in
  List.iter (fun f -> print_endline (San.string_of_finding f)) (San.findings s);
  Alcotest.(check bool) "no sanitizer findings" true (San.ok s);
  Alcotest.(check bool) "checkpoints happened" true
    (Dbt_util.Stats.Counters.get (San.counters s) "checkpoints" > 5)

let test_sanitized_riscv_stress () =
  let e = CE.create ~config:sanitized_config (Guest_riscv.Riscv.ops ()) in
  CE.load_image e ~addr:MS.riscv_entry (MS.riscv_image ());
  CE.set_entry e MS.riscv_entry;
  let code = match CE.run ~max_cycles:2_000_000_000 e with CE.Poweroff c -> c | _ -> -1 in
  Alcotest.(check int) "riscv stress exit" MS.riscv_expected_exit code;
  CE.sanitize_check e ~reason:"final";
  let s = sanitizer_of e in
  List.iter (fun f -> print_endline (San.string_of_finding f)) (San.findings s);
  Alcotest.(check bool) "no sanitizer findings" true (San.ok s)

(* The sanitizer must be observation-free: identical cycle counts and
   exit codes with it on and off (it charges no cycles and never goes
   through the counted TLB/memory paths). *)
let test_sanitizer_observation_free () =
  let _, code_on = run_arm_stress sanitized_config
  and e_on, _ = run_arm_stress sanitized_config in
  let e_off, code_off = run_arm_stress CE.default_config in
  Alcotest.(check int) "same exit code" code_off code_on;
  Alcotest.(check int) "same cycle count" (CE.cycles e_off) (CE.cycles e_on)

let suite =
  ( "sanitize",
    [
      Alcotest.test_case "clean baseline" `Quick test_clean_baseline;
      Alcotest.test_case "negative: corrupt PTE" `Quick test_negative_corrupt_pte;
      Alcotest.test_case "negative: stale TLB entry" `Quick test_negative_stale_tlb;
      Alcotest.test_case "negative: missed invalidation" `Quick test_negative_missed_invalidation;
      Alcotest.test_case "negative: double-mapped frame" `Quick test_negative_double_mapped_frame;
      Alcotest.test_case "negative: ring violations" `Quick test_negative_ring;
      Alcotest.test_case "SMC stale-TLB regression" `Slow test_smc_stale_tlb_regression;
      Alcotest.test_case "sanitized ARM OS stress" `Slow test_sanitized_arm_stress;
      Alcotest.test_case "sanitized RISC-V stress" `Slow test_sanitized_riscv_stress;
      Alcotest.test_case "sanitizer is observation-free" `Slow test_sanitizer_observation_free;
    ] )
