(* Tests for the pipeline verifier & lint layer: SSA well-formedness
   (Ssa.Verify), post-regalloc HostIR invariants (Hostir.Verify), and
   decode-table analysis (Adl.Declint).

   The negative fixtures are deliberately broken IR: each must be caught
   and reported with enough context (pass name, statement, block) to
   pinpoint the fault. *)

open Ssa

let toy_arch () = Lazy.force Toy_arch.arch
let toy_model () = Lazy.force Toy_arch.model

let build_unopt name =
  let arch = toy_arch () in
  Build.execute arch (Option.get (Adl.Ast.find_execute arch name))

(* --- SSA verifier: positive -------------------------------------------------- *)

let test_toy_actions_verify_clean () =
  let arch = toy_arch () in
  List.iter
    (fun (x : Adl.Ast.execute) ->
      let ctx = Offline.opt_context arch x.Adl.Ast.x_name in
      List.iter
        (fun level ->
          let action = Build.execute arch x in
          (* ~verify:true checks after construction and after every pass;
             a violation raises. *)
          Opt.optimize ~ctx ~verify:true ~level action;
          Alcotest.(check (list string))
            (Printf.sprintf "%s at O%d clean" x.Adl.Ast.x_name level)
            []
            (List.map Verify.string_of_violation (Verify.check action)))
        [ 1; 2; 3; 4 ])
    arch.Adl.Ast.a_executes

(* --- SSA verifier: negative fixtures ----------------------------------------- *)

let mk_action ?(next_var = 0) name blocks =
  let a = Ir.create_action name in
  a.Ir.blocks <- blocks;
  (* next_id = one past the highest statement id present *)
  a.Ir.next_id <-
    1 + List.fold_left (fun acc b -> List.fold_left (fun acc i -> max acc i.Ir.id) acc b.Ir.insts) 0 blocks;
  a.Ir.next_var <- next_var;
  for v = 0 to next_var - 1 do
    Hashtbl.replace a.Ir.var_names v (Printf.sprintf "v%d" v)
  done;
  a

let inst id desc = { Ir.id; desc }
let block bid insts term = { Ir.bid; insts; term }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let expect_violation what action needle =
  let vs = Verify.check action in
  let msgs = List.map Verify.string_of_violation vs in
  if not (List.exists (fun m -> contains m needle) msgs) then
    Alcotest.failf "%s: expected a violation containing %S, got [%s]" what needle
      (String.concat "; " msgs)

let test_catches_undefined_use () =
  expect_violation "undefined use"
    (mk_action "f" [ block 0 [ inst 0 (Ir.Unary (Adl.Ast.Not, 7)) ] Ir.Ret ])
    "use of undefined value s_7"

let test_catches_non_value_use () =
  (* s1 is a register write (produces no value); s2 uses it. *)
  expect_violation "non-value use"
    (mk_action "f"
       [
         block 0
           [
             inst 0 (Ir.Const 1L);
             inst 1 (Ir.Reg_write (0, 0));
             inst 2 (Ir.Unary (Adl.Ast.Not, 1));
           ]
           Ir.Ret;
       ])
    "use of non-value statement s_1"

let test_catches_use_before_def () =
  expect_violation "use before def"
    (mk_action "f"
       [ block 0 [ inst 0 (Ir.Unary (Adl.Ast.Not, 1)); inst 1 (Ir.Const 1L) ] Ir.Ret ])
    "use of s_1 before its definition"

let test_catches_non_dominating_def () =
  (* b1 and b2 are sibling branch arms; b2 uses a value defined in b1. *)
  expect_violation "non-dominating def"
    (mk_action "f"
       [
         block 0 [ inst 0 (Ir.Const 1L) ] (Ir.Branch (0, 1, 2));
         block 1 [ inst 1 (Ir.Const 2L) ] (Ir.Jump 3);
         block 2 [ inst 2 (Ir.Unary (Adl.Ast.Not, 1)) ] (Ir.Jump 3);
         block 3 [] Ir.Ret;
       ])
    "does not dominate"

let test_catches_bad_jump_target () =
  expect_violation "bad jump target"
    (mk_action "f" [ block 0 [ inst 0 (Ir.Const 1L) ] (Ir.Jump 7) ])
    "terminator targets missing block b_7"

let test_catches_duplicate_ids () =
  expect_violation "duplicate statement ids"
    (mk_action "f" [ block 0 [ inst 0 (Ir.Const 1L); inst 0 (Ir.Const 2L) ] Ir.Ret ])
    "duplicate statement id"

let test_catches_var_out_of_range () =
  expect_violation "var out of range"
    (mk_action "f" [ block 0 [ inst 0 (Ir.Var_read 3) ] Ir.Ret ])
    "variable v3 outside [0, next_var)"

let test_catches_phi_in_entry () =
  expect_violation "phi in entry"
    (mk_action "f"
       [
         block 0 [ inst 0 (Ir.Const 1L); inst 1 (Ir.Phi [ (0, 0) ]) ] Ir.Ret;
       ])
    "phi in entry block"

let test_catches_phi_bad_arm () =
  (* b2 exists but is not a predecessor of b1. *)
  expect_violation "phi arm for non-predecessor"
    (mk_action "f"
       [
         block 0 [ inst 0 (Ir.Const 1L) ] (Ir.Jump 1);
         block 1 [ inst 1 (Ir.Phi [ (0, 0); (2, 0) ]) ] Ir.Ret;
         block 2 [] Ir.Ret;
       ])
    "phi arm for b_2 which is not a predecessor"

let test_catches_phi_missing_arm () =
  expect_violation "phi missing arm"
    (mk_action "f"
       [
         block 0 [ inst 0 (Ir.Const 1L) ] (Ir.Branch (0, 1, 2));
         block 1 [] (Ir.Jump 3);
         block 2 [] (Ir.Jump 3);
         block 3 [ inst 1 (Ir.Phi [ (1, 0) ]) ] Ir.Ret;
       ])
    "phi misses an arm for predecessor b_2"

(* The acceptance-critical property: a deliberately broken pass run under
   ~verify:true is caught and attributed to that pass *by name*. *)
let test_broken_pass_attributed_by_name () =
  let action = build_unopt "add" in
  let ctx = Offline.opt_context (toy_arch ()) "add" in
  (* Find a value id that actually has uses, so clobbering it changes the IR. *)
  let used_id =
    List.find_map
      (fun b ->
        List.find_map
          (fun i -> match Ir.operands i.Ir.desc with o :: _ -> Some o | [] -> None)
          b.Ir.insts)
      action.Ir.blocks
    |> Option.get
  in
  (* replace_uses itself now rejects an undefined replacement, so the
     broken pass corrupts operands directly, as a buggy pass would. *)
  let broken =
    {
      Opt.pname = "clobber-uses";
      level = 1;
      run =
        (fun _ a ->
          let subst x = if x = used_id then 999999 else x in
          List.iter
            (fun b ->
              List.iter (fun i -> i.Ir.desc <- Ir.map_operands subst i.Ir.desc) b.Ir.insts)
            a.Ir.blocks;
          true);
    }
  in
  match Opt.run_passes ~ctx ~verify:true [ broken ] action with
  | () -> Alcotest.fail "broken pass went undetected"
  | exception Verify.Invalid { action = aname; phase; violations } ->
    Alcotest.(check string) "attributed to the broken pass" "clobber-uses" phase;
    Alcotest.(check string) "names the action" "add" aname;
    Alcotest.(check bool) "reports the dangling use" true
      (List.exists
         (fun v -> contains (Verify.string_of_violation v) "use of undefined value s_999999")
         violations)

(* A healthy pass list under ~verify:true must not raise even when passes
   report changes. *)
let test_real_passes_verify_silently () =
  let action = build_unopt "beq" in
  let ctx = Offline.opt_context (toy_arch ()) "beq" in
  Opt.run_passes ~ctx ~verify:true Opt.passes action

(* --- Ir.find_block error message (satellite) --------------------------------- *)

let test_find_block_error_is_descriptive () =
  let action = mk_action "myaction" [ block 0 [ inst 0 (Ir.Const 1L) ] Ir.Ret ] in
  match Ir.find_block action 42 with
  | _ -> Alcotest.fail "find_block found a missing block"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the action" true (contains msg "myaction");
    Alcotest.(check bool) "names the missing block" true (contains msg "b_42");
    Alcotest.(check bool) "lists present blocks" true (contains msg "b_0")

(* --- Analysis.classify edge cases (satellite) -------------------------------- *)

let test_classify_select_all_fixed () =
  let a =
    mk_action "f"
      [
        block 0
          [
            inst 0 (Ir.Const 1L);
            inst 1 (Ir.Const 2L);
            inst 2 (Ir.Const 3L);
            inst 3 (Ir.Select (0, 1, 2));
          ]
          Ir.Ret;
      ]
  in
  let r = Analysis.classify a in
  Alcotest.(check bool) "all-fixed select is fixed" true
    (Hashtbl.find_opt r.Analysis.of_stmt 3 <> Some Analysis.Dynamic)

let test_classify_select_mixed () =
  (* Condition is a constant but one arm reads guest state: dynamic. *)
  let a =
    mk_action "f"
      [
        block 0
          [
            inst 0 (Ir.Const 1L);
            inst 1 (Ir.Reg_read 0);
            inst 2 (Ir.Const 3L);
            inst 3 (Ir.Select (0, 1, 2));
          ]
          Ir.Ret;
      ]
  in
  let r = Analysis.classify a in
  Alcotest.(check bool) "mixed select is dynamic" true
    (Hashtbl.find_opt r.Analysis.of_stmt 3 = Some Analysis.Dynamic)

let test_classify_phi_is_dynamic () =
  (* Phi arms are all constants, but a phi merges run-time control flow:
     always dynamic. *)
  let a =
    mk_action "f"
      [
        block 0 [ inst 0 (Ir.Const 1L) ] (Ir.Jump 1);
        block 1 [ inst 1 (Ir.Phi [ (0, 0) ]) ] Ir.Ret;
      ]
  in
  let r = Analysis.classify a in
  Alcotest.(check bool) "phi is dynamic" true
    (Hashtbl.find_opt r.Analysis.of_stmt 1 = Some Analysis.Dynamic);
  Alcotest.(check (list string)) "fixture verifies clean" []
    (List.map Verify.string_of_violation (Verify.check a))

let test_classify_effect () =
  (* Effects produce no value: classify must not record a fixedness for
     them, and fixed operands stay fixed despite feeding an effect. *)
  let a =
    mk_action "f"
      [
        block 0
          [ inst 0 (Ir.Const 1L); inst 1 (Ir.Effect ("halt", [ 0 ])) ]
          Ir.Ret;
      ]
  in
  let r = Analysis.classify a in
  Alcotest.(check bool) "effect has no value fixedness" true
    (Hashtbl.find_opt r.Analysis.of_stmt 1 = None);
  Alcotest.(check bool) "effect operand stays fixed" true
    (Hashtbl.find_opt r.Analysis.of_stmt 0 <> Some Analysis.Dynamic)

(* --- HostIR verifier ---------------------------------------------------------- *)

let toy_dag_cfg =
  {
    Hostir.Dag.bank_offset = (fun ~bank:_ ~index -> index * 8);
    slot_offset = (fun s -> 256 + (s * 8));
    lower_intrinsic = (fun _ -> Hostir.Dag.L_inline);
    effect_helper = Captive.Common.effect_helper_index;
    coproc_read_helper = Captive.Common.h_coproc_read;
    coproc_write_helper = Captive.Common.h_coproc_write;
    split_va_check = false;
    as_switch_helper = Captive.Common.h_as_switch;
  }

let translate_toy name field =
  let action = build_unopt name in
  let ctx = Offline.opt_context (toy_arch ()) name in
  Opt.optimize ~ctx ~level:4 action;
  let dag = Hostir.Dag.create toy_dag_cfg in
  Gen.translate (Hostir.Dag.emitter dag) action ~field ~inc_pc:(Some 4);
  Hostir.Dag.raw dag (Hostir.Hir.Exit 0);
  Hostir.Dag.finish dag

let test_hostir_real_translation_clean () =
  let field = function "rd" -> 1L | "ra" -> 2L | "rb" -> 3L | "imm" -> 5L | _ -> 0L in
  let original = translate_toy "add" field in
  let ra = Hostir.Regalloc.run original in
  Alcotest.(check (list string))
    "real translation passes" []
    (List.map Hostir.Verify.string_of_violation (Hostir.Verify.check ~original ra))

let fab ?(dead = [||]) ?(n_slots = 0) instrs =
  let instrs = Array.of_list instrs in
  let dead = if Array.length dead = Array.length instrs then dead else Array.map (fun _ -> false) instrs in
  { Hostir.Regalloc.instrs; dead; n_slots; n_spilled = 0; n_dead = 0 }

let expect_hostir what r ?original needle =
  let vs = Hostir.Verify.check ?original r in
  let msgs = List.map Hostir.Verify.string_of_violation vs in
  if not (List.exists (fun m -> contains m needle) msgs) then
    Alcotest.failf "%s: expected a violation containing %S, got [%s]" what needle
      (String.concat "; " msgs)

let test_hostir_catches_surviving_vreg () =
  expect_hostir "surviving vreg"
    (fab [ Hostir.Hir.Mov (Hostir.Hir.Preg 0, Hostir.Hir.Vreg 3) ])
    "virtual register %v3 survived allocation"

let test_hostir_catches_bad_slot () =
  expect_hostir "slot out of frame"
    (fab ~n_slots:1 [ Hostir.Hir.Mov (Hostir.Hir.Preg 0, Hostir.Hir.Slot 2) ])
    "spill slot 2 outside frame of 1 slots"

let test_hostir_catches_bad_preg () =
  expect_hostir "preg outside host file"
    (fab [ Hostir.Hir.Mov (Hostir.Hir.Preg 20, Hostir.Hir.Imm 1L) ])
    "physical register %r20 outside the host register file"

let test_hostir_catches_missing_label () =
  expect_hostir "branch to missing label" (fab [ Hostir.Hir.Jmp 5 ]) "branch to missing label L5"

let test_hostir_catches_unsound_dead_marking () =
  (* Instruction 0 is marked dead but its destination feeds the live
     instruction 1. *)
  let original =
    [|
      Hostir.Hir.Mov (Hostir.Hir.Vreg 0, Hostir.Hir.Imm 1L);
      Hostir.Hir.Mov (Hostir.Hir.Vreg 1, Hostir.Hir.Vreg 0);
    |]
  in
  expect_hostir "unsound dead marking"
    (fab ~dead:[| true; false |]
       [
         Hostir.Hir.Mov (Hostir.Hir.Preg 0, Hostir.Hir.Imm 1L);
         Hostir.Hir.Mov (Hostir.Hir.Preg 1, Hostir.Hir.Preg 0);
       ])
    ~original "dead instruction's destination %v0 is used by a live instruction"

let test_hostir_catches_impure_dead () =
  let call = Hostir.Hir.Call (0, [||], None) in
  expect_hostir "impure marked dead"
    (fab ~dead:[| true |] [ call ])
    ~original:[| call |] "impure instruction marked dead"

(* --- decode-table lint --------------------------------------------------------- *)

let pos0 = { Adl.Ast.line = 0; col = 0 }
let e d = { Adl.Ast.e = d; pos = pos0; ty = Adl.Ast.u64 }
let bits s = List.init (String.length s) (fun i -> Adl.Ast.Bit (s.[i] = '1'))
let fld n w = [ Adl.Ast.Fld (n, w) ]

let dec ?when_ name pattern =
  { Adl.Ast.d_name = name; d_pattern = pattern; d_when = when_; d_attrs = [] }

let kinds vs = List.map (fun v -> (v.Adl.Declint.l_kind, v.Adl.Declint.l_insn)) vs

let test_declint_toy_clean () =
  Alcotest.(check (list string)) "toy decode table lints clean" []
    (List.map Adl.Declint.string_of_violation (Adl.Declint.check_arch (toy_arch ())))

let test_declint_catches_shadowed () =
  let d1 = dec "wild" (bits "00000000" @ fld "x" 24) in
  let d2 = dec "never" (bits "00000000" @ bits "00000001" @ fld "y" 16) in
  Alcotest.(check bool) "later contained pattern is shadowed" true
    (List.mem (Adl.Declint.Shadowed, "never") (kinds (Adl.Declint.check_decodes [ d1; d2 ])))

let test_declint_catches_ambiguous_overlap () =
  (* Both fix the top byte to 0x01; d1 additionally fixes bit 0, d2 bit 23.
     Their match sets intersect without containment and neither has a
     `when`: ambiguous. *)
  let d1 = dec "a" (bits "00000001" @ fld "x" 23 @ bits "0") in
  let d2 = dec "b" (bits "00000001" @ bits "1" @ fld "y" 23) in
  Alcotest.(check bool) "ambiguous overlap flagged" true
    (List.mem (Adl.Declint.Overlap, "a") (kinds (Adl.Declint.check_decodes [ d1; d2 ])))

let test_declint_priority_idiom_not_flagged () =
  (* The specific pattern declared before the general one is the idiomatic
     priority encoding (leaves are tried in declaration order): clean. *)
  let specific = dec "halt" (bits "00000010" @ bits "000000000000000000000000") in
  let general = dec "op" (bits "00000010" @ fld "z" 24) in
  Alcotest.(check (list string)) "specific-first containment is clean" []
    (List.map Adl.Declint.string_of_violation (Adl.Declint.check_decodes [ specific; general ]))

let test_declint_when_disambiguates () =
  (* Same patterns as the ambiguity case, but a `when` on one side resolves
     the intersection; the shl2/shbig idiom of the toy arch. *)
  let w = e (Adl.Ast.Binop (Adl.Ast.Lt, e (Adl.Ast.Var "x"), e (Adl.Ast.Int_lit 4L))) in
  let d1 = dec "a" ~when_:w (bits "00000001" @ fld "x" 23 @ bits "0") in
  let d2 = dec "b" (bits "00000001" @ bits "1" @ fld "y" 23) in
  Alcotest.(check (list string)) "when-guarded overlap is clean" []
    (List.map Adl.Declint.string_of_violation (Adl.Declint.check_decodes [ d1; d2 ]))

let test_declint_catches_bad_when () =
  let w = e (Adl.Ast.Binop (Adl.Ast.Lt, e (Adl.Ast.Var "nope"), e (Adl.Ast.Int_lit 3L))) in
  let d = dec "f" ~when_:w (bits "00000011" @ fld "x" 24) in
  Alcotest.(check bool) "unknown field in when flagged" true
    (List.mem (Adl.Declint.Bad_when, "f") (kinds (Adl.Declint.check_decodes [ d ])))

let test_declint_catches_bad_width () =
  (* 8 + 16 = 24 bits: the pattern does not cover the instruction word. *)
  let short = dec "short" (bits "00000100" @ fld "x" 16) in
  Alcotest.(check bool) "short pattern flagged" true
    (List.mem (Adl.Declint.Bad_field, "short") (kinds (Adl.Declint.check_decodes [ short ])));
  (* 8 + 40 = 48 bits: the field extraction runs off the bottom of the word. *)
  let wide = dec "wide" (bits "00000100" @ fld "x" 40) in
  Alcotest.(check bool) "over-wide field flagged" true
    (List.mem (Adl.Declint.Bad_field, "wide") (kinds (Adl.Declint.check_decodes [ wide ])))

(* --- differential property tests (satellite) ----------------------------------- *)

(* For random decoded toy instances and random machine states, the SSA
   interpreter must produce the identical final state before and after
   Opt.optimize at every level O1-O4. *)
let prop_toy_optimize_preserves_interp =
  QCheck.Test.make ~count:60 ~name:"optimize preserves Interp semantics (toy, random)"
    QCheck.(triple (int_bound 9) (int_bound 0xFFFFFF) int64)
    (fun (opcode, low, seed) ->
      let word = Int64.of_int (((opcode + 1) lsl 24) lor low) in
      match Offline.decode (toy_model ()) word with
      | None -> true (* e.g. halt requires an all-zero low word *)
      | Some d ->
        let name = d.Adl.Decode.name in
        let fields = d.Adl.Decode.field_values in
        let prng = Dbt_util.Prng.create seed in
        let base = Toy_arch.fresh_state () in
        for i = 0 to 15 do
          base.Toy_arch.gpr.(i) <- Dbt_util.Prng.int64 prng
        done;
        base.Toy_arch.slots.(0) <- 0x1000L;
        base.Toy_arch.slots.(1) <- Int64.of_int (Dbt_util.Prng.int prng 16);
        let run action =
          let s = Toy_arch.clone_state base in
          Interp.run (Toy_arch.interp_state s) action ~field:(fun n -> List.assoc n fields);
          s
        in
        let reference = run (build_unopt name) in
        List.for_all
          (fun level ->
            let action = build_unopt name in
            let ctx = Offline.opt_context (toy_arch ()) name in
            Opt.optimize ~ctx ~level action;
            let got = run action in
            Toy_arch.state_equal reference got
            || QCheck.Test.fail_reportf "O%d changed semantics of %s (word %Lx)" level name word)
          [ 1; 2; 3; 4 ])

(* Same property over the full ARMv8-A model: unoptimized SSA straight out
   of Build.execute vs every optimization level, on random instances of a
   set of template encodings. *)
let test_arm_optimize_preserves_interp () =
  let m = Lazy.force Guest_arm.Arm.model in
  let arch = m.Offline.arch in
  let prng = Dbt_util.Prng.create 20260806L in
  let templates =
    [ 0x8B020020L; 0x11001020L; 0xF9400020L; 0x9AC20820L; 0xD2800140L; 0x92401C20L;
      0xEB02003FL; 0x9A821040L; 0x13017C41L ]
  in
  let run action fields =
    let gpr = Array.make 32 0L and vec = Array.make 64 0L and slots = Array.make 16 0L in
    let sprng = Dbt_util.Prng.create 7L in
    for i = 0 to 31 do gpr.(i) <- Dbt_util.Prng.int64 sprng done;
    slots.(2) <- 5L (* NZCV *);
    slots.(3) <- 1L (* EL1 *);
    let pc = ref 0x4000L in
    let writes = ref [] in
    let st =
      {
        Interp.bank_read = (fun bank i -> if bank = 0 then gpr.(i land 31) else vec.(i land 63));
        bank_write =
          (fun bank i v -> if bank = 0 then gpr.(i land 31) <- v else vec.(i land 63) <- v);
        reg_read = (fun sl -> slots.(sl));
        reg_write = (fun sl v -> slots.(sl) <- v);
        pc_read = (fun () -> !pc);
        pc_write = (fun v -> pc := v);
        mem_read =
          (fun bits a -> Dbt_util.Bits.zero_extend (Int64.mul a 0x9E3779B97F4A7C15L) ~width:bits);
        mem_write = (fun bits a v -> writes := (bits, a, v) :: !writes);
        coproc_read = (fun id -> Int64.mul id 7L);
        coproc_write = (fun id v -> writes := (0, id, v) :: !writes);
        effect =
          (fun name args ->
            writes :=
              (1, Int64.of_int (Hashtbl.hash name), List.fold_left Int64.add 0L args) :: !writes);
      }
    in
    let field n = if n = "__el" then 1L else List.assoc n fields in
    Interp.run st action ~field;
    (gpr, vec, slots, !pc, !writes)
  in
  let tested = ref 0 in
  List.iter
    (fun t ->
      for _ = 1 to 4 do
        let r n = Dbt_util.Prng.int prng n in
        let w = Dbt_util.Bits.insert t ~lo:0 ~len:5 (Int64.of_int (r 32)) in
        let w = Dbt_util.Bits.insert w ~lo:5 ~len:5 (Int64.of_int (r 32)) in
        let w = Dbt_util.Bits.insert w ~lo:16 ~len:5 (Int64.of_int (r 32)) in
        match Offline.decode m w with
        | None -> ()
        | Some d ->
          incr tested;
          let name = d.Adl.Decode.name in
          let fields = d.Adl.Decode.field_values in
          let x = Option.get (Adl.Ast.find_execute arch name) in
          let reference = run (Build.execute arch x) fields in
          let ctx = Offline.opt_context arch name in
          List.iter
            (fun level ->
              let action = Build.execute arch x in
              Opt.optimize ~ctx ~level action;
              if run action fields <> reference then
                Alcotest.failf "O%d changed semantics of %s (word %08Lx)" level name w)
            [ 1; 2; 3; 4 ]
      done)
    templates;
  Alcotest.(check bool) "tested a reasonable sample" true (!tested > 20)

let suite =
  ( "verify",
    [
      Alcotest.test_case "toy actions verify clean at O1-O4" `Quick test_toy_actions_verify_clean;
      Alcotest.test_case "catches undefined use" `Quick test_catches_undefined_use;
      Alcotest.test_case "catches non-value use" `Quick test_catches_non_value_use;
      Alcotest.test_case "catches use before def" `Quick test_catches_use_before_def;
      Alcotest.test_case "catches non-dominating def" `Quick test_catches_non_dominating_def;
      Alcotest.test_case "catches bad jump target" `Quick test_catches_bad_jump_target;
      Alcotest.test_case "catches duplicate ids" `Quick test_catches_duplicate_ids;
      Alcotest.test_case "catches var out of range" `Quick test_catches_var_out_of_range;
      Alcotest.test_case "catches phi in entry" `Quick test_catches_phi_in_entry;
      Alcotest.test_case "catches phi arm for non-predecessor" `Quick test_catches_phi_bad_arm;
      Alcotest.test_case "catches phi missing arm" `Quick test_catches_phi_missing_arm;
      Alcotest.test_case "broken pass attributed by name" `Quick
        test_broken_pass_attributed_by_name;
      Alcotest.test_case "real passes verify silently" `Quick test_real_passes_verify_silently;
      Alcotest.test_case "find_block error is descriptive" `Quick
        test_find_block_error_is_descriptive;
      Alcotest.test_case "classify: all-fixed select" `Quick test_classify_select_all_fixed;
      Alcotest.test_case "classify: mixed select" `Quick test_classify_select_mixed;
      Alcotest.test_case "classify: phi is dynamic" `Quick test_classify_phi_is_dynamic;
      Alcotest.test_case "classify: effect" `Quick test_classify_effect;
      Alcotest.test_case "hostir: real translation clean" `Quick
        test_hostir_real_translation_clean;
      Alcotest.test_case "hostir: catches surviving vreg" `Quick test_hostir_catches_surviving_vreg;
      Alcotest.test_case "hostir: catches bad slot" `Quick test_hostir_catches_bad_slot;
      Alcotest.test_case "hostir: catches bad preg" `Quick test_hostir_catches_bad_preg;
      Alcotest.test_case "hostir: catches missing label" `Quick test_hostir_catches_missing_label;
      Alcotest.test_case "hostir: catches unsound dead marking" `Quick
        test_hostir_catches_unsound_dead_marking;
      Alcotest.test_case "hostir: catches impure dead" `Quick test_hostir_catches_impure_dead;
      Alcotest.test_case "declint: toy table clean" `Quick test_declint_toy_clean;
      Alcotest.test_case "declint: catches shadowed" `Quick test_declint_catches_shadowed;
      Alcotest.test_case "declint: catches ambiguous overlap" `Quick
        test_declint_catches_ambiguous_overlap;
      Alcotest.test_case "declint: priority idiom not flagged" `Quick
        test_declint_priority_idiom_not_flagged;
      Alcotest.test_case "declint: when disambiguates" `Quick test_declint_when_disambiguates;
      Alcotest.test_case "declint: catches bad when" `Quick test_declint_catches_bad_when;
      Alcotest.test_case "declint: catches bad width" `Quick test_declint_catches_bad_width;
      QCheck_alcotest.to_alcotest prop_toy_optimize_preserves_interp;
      Alcotest.test_case "ARM: optimize preserves Interp (differential)" `Slow
        test_arm_optimize_preserves_interp;
    ] )
