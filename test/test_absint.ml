(* Tests for the abstract-interpretation layer (Absint): lattice
   soundness, transfer-function soundness against the concrete
   evaluator, whole-action soundness against the SSA interpreter, the
   translation validator, the out-of-range access checker, and the
   analysis-driven absint-simplify pass. *)

open Ssa
module A = Absint

let toy_arch () = Lazy.force Toy_arch.arch
let model () = Lazy.force Toy_arch.model

let build_unopt name =
  let arch = toy_arch () in
  Build.execute arch (Option.get (Adl.Ast.find_execute arch name))

let build_opt level name =
  let action = build_unopt name in
  let ctx = Offline.opt_context (toy_arch ()) name in
  Opt.optimize ~ctx ~level action;
  action

(* --- random abstract values paired with a concrete member ----------------- *)

let rand64 prng =
  match Dbt_util.Prng.int prng 4 with
  | 0 -> Int64.of_int (Dbt_util.Prng.int prng 256)
  | 1 -> Int64.of_int (Dbt_util.Prng.int prng 65536)
  | 2 -> Dbt_util.Prng.int64 prng
  | _ -> Int64.neg (Int64.of_int (1 + Dbt_util.Prng.int prng 256))

let sample prng : A.t * int64 =
  let c = rand64 prng in
  match Dbt_util.Prng.int prng 5 with
  | 0 -> (A.const c, c)
  | 1 -> (A.top, c)
  | 2 ->
    let d = rand64 prng in
    let lo, hi = if Int64.unsigned_compare c d <= 0 then (c, d) else (d, c) in
    (A.range lo hi, c)
  | 3 -> (A.join (A.const c) (A.const (rand64 prng)), c)
  | _ ->
    let w = 1 + Dbt_util.Prng.int prng 64 in
    let mask = if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L in
    let c = Int64.logand c mask in
    (A.of_width w, c)

let test_lattice_basics () =
  Alcotest.(check bool) "bot is bot" true (A.is_bot A.bot);
  Alcotest.(check bool) "top not bot" false (A.is_bot A.top);
  Alcotest.(check (option int64)) "const singleton" (Some 42L) (A.is_const (A.const 42L));
  Alcotest.(check bool) "top contains -1" true (A.contains A.top (-1L));
  Alcotest.(check bool) "bot leq const" true (A.leq A.bot (A.const 7L));
  Alcotest.(check bool) "const leq top" true (A.leq (A.const 7L) A.top);
  Alcotest.(check bool) "range membership" true (A.contains (A.range 10L 20L) 15L);
  Alcotest.(check bool) "range exclusion" false (A.contains (A.range 10L 20L) 21L);
  (* of_width carries both halves of the product domain *)
  Alcotest.(check bool) "width-8 excludes 256" false (A.contains (A.of_width 8) 256L);
  Alcotest.(check int64) "width-8 known zeros" (Int64.lognot 0xFFL) (A.known_zeros (A.of_width 8));
  Alcotest.(check int64) "const known ones" 0x5L (A.known_ones (A.const 5L))

let test_lattice_random () =
  let prng = Dbt_util.Prng.create 101L in
  for _ = 1 to 2000 do
    let a, x = sample prng in
    let b, y = sample prng in
    let j = A.join a b in
    if not (A.contains j x && A.contains j y) then
      Alcotest.failf "join %s %s = %s loses a member" (A.to_string a) (A.to_string b)
        (A.to_string j);
    if not (A.leq a j && A.leq b j) then
      Alcotest.failf "join %s %s = %s is not an upper bound" (A.to_string a) (A.to_string b)
        (A.to_string j);
    let w = A.widen a b in
    if not (A.leq j w) then
      Alcotest.failf "widen %s %s = %s below join %s" (A.to_string a) (A.to_string b)
        (A.to_string w) (A.to_string j);
    (if A.contains a y && A.contains b y then
       let m = A.meet a b in
       if not (A.contains m y) then
         Alcotest.failf "meet %s %s = %s loses shared member %Ld" (A.to_string a)
           (A.to_string b) (A.to_string m) y);
    if not (A.leq a a) then Alcotest.failf "leq not reflexive on %s" (A.to_string a)
  done

let test_widen_converges () =
  (* Ascending chains stabilize: widening climbs the 2^k-1 ladder, so at
     most ~64 strict increases are possible. *)
  let v = ref (A.const 0L) in
  let steps = ref 0 in
  (try
     for i = 1 to 200 do
       let next = A.widen !v (A.range 0L (Int64.of_int (2 * i))) in
       if A.leq next !v then raise Exit;
       v := next;
       incr steps
     done;
     Alcotest.fail "widening chain did not stabilize in 200 steps"
   with Exit -> ());
  Alcotest.(check bool) "stabilized within 70 strict steps" true (!steps <= 70)

let test_transfer_soundness () =
  let prng = Dbt_util.Prng.create 202L in
  let binops =
    [ Adl.Ast.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Eq; Ne; Lt; Le; Gt; Ge ]
  in
  for _ = 1 to 3000 do
    let a, x = sample prng in
    let b, y = sample prng in
    let op = List.nth binops (Dbt_util.Prng.int prng (List.length binops)) in
    let signed = Dbt_util.Prng.int prng 2 = 0 in
    let concrete = Adl.Eval.binop op ~signed x y in
    let abstract = A.binary op ~signed a b in
    if not (A.contains abstract concrete) then
      Alcotest.failf "unsound binary %s: %Ld op %Ld = %Ld not in %s (from %s, %s)"
        (Ir.string_of_binop op) x y concrete (A.to_string abstract) (A.to_string a)
        (A.to_string b)
  done;
  let unops = [ Adl.Ast.Neg; Adl.Ast.Not; Adl.Ast.Lnot ] in
  for _ = 1 to 1000 do
    let a, x = sample prng in
    let op = List.nth unops (Dbt_util.Prng.int prng 3) in
    let concrete = Adl.Eval.unop op x in
    let abstract = A.unary op a in
    if not (A.contains abstract concrete) then
      Alcotest.failf "unsound unary: %Ld -> %Ld not in %s" x concrete (A.to_string abstract)
  done;
  for _ = 1 to 1000 do
    let a, x = sample prng in
    let bits = 1 + Dbt_util.Prng.int prng 64 in
    let signed = Dbt_util.Prng.int prng 2 = 0 in
    let concrete = Adl.Eval.normalize (Adl.Ast.Tint { bits; signed }) x in
    let abstract = A.normalize ~bits ~signed a in
    if not (A.contains abstract concrete) then
      Alcotest.failf "unsound normalize %d/%b: %Ld -> %Ld not in %s" bits signed x concrete
        (A.to_string abstract)
  done

(* --- whole-action soundness against the interpreter ----------------------- *)

let encodings prng =
  let r n = Dbt_util.Prng.int prng n in
  [
    Toy_arch.enc_add ~rd:(r 16) ~ra:(r 16) ~rb:(r 16) ~imm:(r 4096);
    Toy_arch.enc_addi ~rd:(r 16) ~ra:(r 16) ~imm:(r 65536);
    Toy_arch.enc_beq ~ra:(r 16) ~rb:(r 16) ~off:(r 65536);
    Toy_arch.enc_ld ~rd:(r 16) ~ra:(r 16) ~off:(r 256 * 8);
    Toy_arch.enc_st ~rs:(r 16) ~ra:(r 16) ~off:(r 256 * 8);
    Toy_arch.enc_halt;
    Toy_arch.enc_csel ~rd:(r 16) ~ra:(r 16) ~rb:(r 16) ~cond:(r 16);
    Toy_arch.enc_shl ~rd:(r 16) ~ra:(r 16) ~sh:(r 128);
    Toy_arch.enc_fadd ~rd:(r 16) ~ra:(r 16) ~rb:(r 16);
    Toy_arch.enc_loopy ~rd:(r 16) ~n:(r 16);
  ]

(* Every value the concrete interpreter computes must be contained in
   the abstract value the analysis assigned to the same statement; the
   analysis sees only the field *widths*, so one summary covers every
   decoding of the class.  Run on unoptimized and O4 actions alike,
   >=1000 (action, input) pairs. *)
let test_action_soundness () =
  let prng = Dbt_util.Prng.create 303L in
  let m = model () in
  let cache = Hashtbl.create 32 in
  let analyzed name opt =
    match Hashtbl.find_opt cache (name, opt) with
    | Some av -> av
    | None ->
      let action = if opt then build_opt 4 name else build_unopt name in
      let summary = A.analyze ~ctx:(Offline.opt_context (toy_arch ()) name) action in
      Hashtbl.replace cache (name, opt) (action, summary);
      (action, summary)
  in
  let pairs = ref 0 and checked = ref 0 in
  for _ = 1 to 50 do
    List.iter
      (fun word ->
        match Offline.decode m word with
        | None -> Alcotest.failf "undecodable test encoding %Lx" word
        | Some d ->
          List.iter
            (fun opt ->
              let action, summary = analyzed d.Adl.Decode.name opt in
              let state = Toy_arch.fresh_state () in
              for i = 0 to 15 do
                state.Toy_arch.gpr.(i) <- Dbt_util.Prng.int64 prng
              done;
              state.Toy_arch.slots.(0) <- 0x1000L;
              state.Toy_arch.slots.(1) <- Int64.of_int (Dbt_util.Prng.int prng 16);
              let st = Toy_arch.interp_state state in
              incr pairs;
              Interp.run
                ~trace:(fun id v ->
                  incr checked;
                  let av = A.value summary id in
                  if not (A.contains av v) then
                    Alcotest.failf "unsound: %s%s s_%d = %Ld not in %s (word %Lx)"
                      d.Adl.Decode.name
                      (if opt then " (O4)" else "")
                      id v (A.to_string av) word)
                st action
                ~field:(fun n -> List.assoc n d.Adl.Decode.field_values))
            [ false; true ])
      (encodings prng)
  done;
  Alcotest.(check bool) ">=1000 action/input pairs" true (!pairs >= 1000);
  Alcotest.(check bool) "traced a large value sample" true (!checked > 10_000)

(* --- translation validator ------------------------------------------------ *)

let test_validator_clean () =
  List.iter
    (fun (x : Adl.Ast.execute) ->
      let name = x.Adl.Ast.x_name in
      let ctx = Offline.opt_context (toy_arch ()) name in
      List.iter
        (fun level ->
          let reference = build_unopt name in
          let optimized = build_opt level name in
          let findings, compared = A.validate ~ctx ~reference ~optimized () in
          Alcotest.(check int)
            (Printf.sprintf "no findings for %s at O%d" name level)
            0 (List.length findings);
          Alcotest.(check bool)
            (Printf.sprintf "%s at O%d compared statements" name level)
            true (compared > 0))
        [ 1; 2; 3; 4 ])
    (toy_arch ()).Adl.Ast.a_executes

let test_validator_catches_wrong_const () =
  (* Deliberately corrupt an optimized action: changing any surviving
     constant changes the abstract value at that id to a disjoint
     singleton, which the validator must flag as incomparable. *)
  let name = "beq" in
  let ctx = Offline.opt_context (toy_arch ()) name in
  let reference = build_unopt name in
  let optimized = build_opt 4 name in
  let corrupted = ref false in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.desc with
          | Ir.Const c when not !corrupted ->
            i.Ir.desc <- Ir.Const (Int64.add c 1L);
            corrupted := true
          | _ -> ())
        b.Ir.insts)
    optimized.Ir.blocks;
  Alcotest.(check bool) "fixture found a constant to corrupt" true !corrupted;
  let findings, _ = A.validate ~ctx ~reference ~optimized () in
  Alcotest.(check bool) "corrupted constant caught" true (List.length findings > 0)

let test_validator_catches_shape_change () =
  (* Retargeting an effectful statement to another bank is a shape
     change: abstract values cannot expose it, the structural check
     must. *)
  let name = "add" in
  let ctx = Offline.opt_context (toy_arch ()) name in
  let reference = build_unopt name in
  let optimized = build_opt 4 name in
  let corrupted = ref false in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.desc with
          | Ir.Bank_write (bank, idx, v) when not !corrupted ->
            i.Ir.desc <- Ir.Bank_write (bank + 1, idx, v);
            corrupted := true
          | _ -> ())
        b.Ir.insts)
    optimized.Ir.blocks;
  Alcotest.(check bool) "fixture found a bank write to corrupt" true !corrupted;
  let findings, _ = A.validate ~ctx ~reference ~optimized () in
  Alcotest.(check bool) "bank retarget caught" true (List.length findings > 0)

(* --- out-of-range access checker ------------------------------------------ *)

let test_ranges_clean () =
  List.iter
    (fun (x : Adl.Ast.execute) ->
      let name = x.Adl.Ast.x_name in
      let ctx = Offline.opt_context (toy_arch ()) name in
      let action = build_opt 4 name in
      let findings, _ = A.check_ranges ~ctx action in
      Alcotest.(check int) (Printf.sprintf "%s accesses in range" name) 0
        (List.length findings))
    (toy_arch ()).Adl.Ast.a_executes

let test_ranges_catches_overflow () =
  (* A 4-bit field indexing a 4-element bank: [0,15] cannot be proved
     within [0,3]. *)
  let src =
    {|
arch "t" { wordsize 64; endian little; bank R : uint64[4]; reg PC : uint64; }
decode k "00000000 rd:4 00000000000000000000";
execute(k) { write_register_bank(R, inst.rd, 1); }
|}
  in
  let m = Offline.build ~opt_level:1 src in
  let arch = m.Offline.arch in
  let action = Build.execute arch (Option.get (Adl.Ast.find_execute arch "k")) in
  let ctx = Offline.opt_context arch "k" in
  let findings, checked = A.check_ranges ~ctx action in
  Alcotest.(check bool) "checked the access" true (checked > 0);
  Alcotest.(check bool) "overflow flagged" true (List.length findings > 0)

(* --- hardened replace_uses ------------------------------------------------- *)

let test_replace_uses_errors () =
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0
  in
  let action = build_unopt "add" in
  let some_id =
    List.find_map
      (fun b ->
        List.find_map
          (fun i -> if Ir.produces_value i.Ir.desc then Some i.Ir.id else None)
          b.Ir.insts)
      action.Ir.blocks
    |> Option.get
  in
  (match Opt.replace_uses action ~from:some_id ~to_:some_id with
  | () -> Alcotest.fail "self-replacement accepted"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "self-replacement names action" true (contains msg "add"));
  match Opt.replace_uses action ~from:some_id ~to_:999999 with
  | () -> Alcotest.fail "undefined replacement accepted"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "undefined replacement names id" true (contains msg "999999");
    Alcotest.(check bool) "undefined replacement names action" true (contains msg "add")

(* --- the absint-simplify pass ---------------------------------------------- *)

let test_simplify_folds () =
  (* inst.w is a 3-bit field: the analysis proves w < 8 always true and
     w & 7 redundant; value propagation alone can prove neither. *)
  let src =
    {|
arch "t" { wordsize 64; endian little; bank R : uint64[8]; reg PC : uint64; }
decode k "00000000 d:3 w:3 000000000000000000";
execute(k) {
  uint64 x = read_register_bank(R, inst.d);
  if (inst.w < 8) {
    write_register_bank(R, inst.d, x + (inst.w & 7));
  } else {
    write_register_bank(R, inst.d, 0);
  }
}
|}
  in
  let m = Offline.build ~opt_level:1 src in
  let arch = m.Offline.arch in
  let build level =
    let action = Build.execute arch (Option.get (Adl.Ast.find_execute arch "k")) in
    Opt.optimize ~ctx:(Offline.opt_context arch "k") ~level action;
    action
  in
  let at2 = build 2 in
  A.reset_simplify_stats ();
  let at3 = build 3 in
  let st = A.simplify_stats in
  Alcotest.(check bool) "O3 folded the always-true branch" true (st.A.branches_folded >= 1);
  Alcotest.(check bool) "O3 dropped the redundant mask or folded it" true
    (st.A.masks_dropped + st.A.stmts_folded >= 1);
  Alcotest.(check bool) "O3 has fewer blocks than O2" true
    (List.length at3.Ir.blocks < List.length at2.Ir.blocks);
  (* The folded action must still be semantically intact. *)
  let reference = Build.execute arch (Option.get (Adl.Ast.find_execute arch "k")) in
  let findings, _ =
    A.validate ~ctx:(Offline.opt_context arch "k") ~reference ~optimized:at3 ()
  in
  Alcotest.(check int) "folded action validates" 0 (List.length findings)

let suite =
  ( "absint",
    [
      Alcotest.test_case "lattice basics" `Quick test_lattice_basics;
      Alcotest.test_case "lattice random soundness" `Quick test_lattice_random;
      Alcotest.test_case "widening converges" `Quick test_widen_converges;
      Alcotest.test_case "transfer soundness vs Eval" `Quick test_transfer_soundness;
      Alcotest.test_case "whole-action soundness vs Interp" `Quick test_action_soundness;
      Alcotest.test_case "validator passes real optimizations" `Quick test_validator_clean;
      Alcotest.test_case "validator catches wrong constant" `Quick test_validator_catches_wrong_const;
      Alcotest.test_case "validator catches shape change" `Quick test_validator_catches_shape_change;
      Alcotest.test_case "range checker passes toy model" `Quick test_ranges_clean;
      Alcotest.test_case "range checker catches overflow" `Quick test_ranges_catches_overflow;
      Alcotest.test_case "replace_uses errors are descriptive" `Quick test_replace_uses_errors;
      Alcotest.test_case "absint-simplify folds on field facts" `Quick test_simplify_folds;
    ] )
