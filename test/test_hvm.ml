(* HVM substrate tests: physical memory, page tables, TLB, devices. *)

module Mem = Hvm.Mem
module Pt = Hvm.Pagetable
module Tlb = Hvm.Tlb
module Machine = Hvm.Machine

let test_mem_widths () =
  let m = Mem.create 4096 in
  Mem.write64 m 0L 0x1122334455667788L;
  Alcotest.(check int64) "read64" 0x1122334455667788L (Mem.read64 m 0L);
  Alcotest.(check int64) "read32 low" 0x55667788L (Mem.read32 m 0L);
  Alcotest.(check int64) "read32 high" 0x11223344L (Mem.read32 m 4L);
  Alcotest.(check int64) "read16" 0x7788L (Mem.read16 m 0L);
  Alcotest.(check int64) "read8" 0x88L (Mem.read8 m 0L);
  Mem.write8 m 1L 0xFFL;
  Alcotest.(check int64) "byte patch" 0x112233445566FF88L (Mem.read64 m 0L);
  Alcotest.check_raises "oob read" (Mem.Bus_error { addr = 4096L; bits = 8; write = false })
    (fun () -> ignore (Mem.read8 m 4096L));
  Alcotest.check_raises "oob write carries width and direction"
    (Mem.Bus_error { addr = 4092L; bits = 64; write = true })
    (fun () -> Mem.write64 m 4092L 0L);
  Alcotest.(check bool) "bus error printer" true
    (try
       ignore (Mem.read32 m 8000L);
       false
     with e ->
       let s = Printexc.to_string e in
       s = "Mem.Bus_error(read of 32 bits at 0x1f40)")

let mk_machine () = Machine.create ~mem_size:(16 * 1024 * 1024) ()

let test_pagetable_map_walk () =
  let m = mk_machine () in
  let root = Hvm.Palloc.alloc m.Machine.palloc in
  let flags = { Pt.writable = true; user = false; executable = true } in
  Pt.map m.Machine.mem m.Machine.palloc ~root 0x7000_0000L 0x1000L flags;
  (match fst (Pt.walk m.Machine.mem ~root 0x7000_0000L) with
  | Some (_, pte) ->
    Alcotest.(check int64) "frame" 0x1000L (Pt.frame_of pte);
    let f = Pt.flags_of_bits pte in
    Alcotest.(check bool) "writable" true f.Pt.writable;
    Alcotest.(check bool) "not user" false f.Pt.user;
    Alcotest.(check bool) "exec" true f.Pt.executable
  | None -> Alcotest.fail "mapping not found");
  Alcotest.(check bool) "unmapped va misses" true (fst (Pt.walk m.Machine.mem ~root 0x7000_1000L) = None);
  Pt.unmap m.Machine.mem ~root 0x7000_0000L;
  Alcotest.(check bool) "unmap works" true (fst (Pt.walk m.Machine.mem ~root 0x7000_0000L) = None)

let test_pagetable_protect_and_clear () =
  let m = mk_machine () in
  let root = Hvm.Palloc.alloc m.Machine.palloc in
  let rw = { Pt.writable = true; user = true; executable = false } in
  (* one low-half and one high-half mapping *)
  Pt.map m.Machine.mem m.Machine.palloc ~root 0x1000L 0x2000L rw;
  Pt.map m.Machine.mem m.Machine.palloc ~root 0x0000_8000_0000_0000L 0x3000L rw;
  Pt.protect m.Machine.mem ~root 0x1000L { rw with Pt.writable = false };
  (match fst (Pt.walk m.Machine.mem ~root 0x1000L) with
  | Some (_, pte) -> Alcotest.(check bool) "downgraded" false (Pt.flags_of_bits pte).Pt.writable
  | None -> Alcotest.fail "lost mapping");
  Pt.clear_low_half m.Machine.mem m.Machine.palloc ~root;
  Alcotest.(check bool) "low half cleared" true (fst (Pt.walk m.Machine.mem ~root 0x1000L) = None);
  Alcotest.(check bool) "high half survives" true
    (fst (Pt.walk m.Machine.mem ~root 0x0000_8000_0000_0000L) <> None)

let test_tlb_pcid () =
  let tlb = Tlb.create ~size:64 () in
  let flags = { Pt.writable = true; user = true; executable = true } in
  Tlb.insert tlb ~pcid:0 ~vpn:5L ~frame:0x5000L ~flags ~global:false;
  Alcotest.(check bool) "hit pcid0" true (Tlb.lookup tlb ~pcid:0 5L <> None);
  Alcotest.(check bool) "miss pcid1" true (Tlb.lookup tlb ~pcid:1 5L = None);
  Tlb.insert tlb ~pcid:1 ~vpn:6L ~frame:0x6000L ~flags ~global:false;
  Tlb.flush_pcid tlb 0;
  Alcotest.(check bool) "pcid0 flushed" true (Tlb.lookup tlb ~pcid:0 5L = None);
  Alcotest.(check bool) "pcid1 survives pcid0 flush" true (Tlb.lookup tlb ~pcid:1 6L <> None);
  Tlb.flush_all tlb;
  Alcotest.(check bool) "all flushed" true (Tlb.lookup tlb ~pcid:1 6L = None)

(* invlpg semantics: flush_page must drop the translation under *every*
   PCID and also global entries, but leave entries for other VPNs that
   merely alias the same direct-mapped slot alone. *)
let test_tlb_flush_page_pcid_blind () =
  let tlb = Tlb.create ~size:64 () in
  let flags = { Pt.writable = true; user = true; executable = true } in
  Tlb.insert tlb ~pcid:3 ~vpn:5L ~frame:0x5000L ~flags ~global:false;
  Tlb.flush_page tlb 5L;
  Alcotest.(check bool) "flushed under a foreign pcid" true (Tlb.lookup tlb ~pcid:3 5L = None);
  Tlb.insert tlb ~pcid:0 ~vpn:7L ~frame:0x7000L ~flags ~global:true;
  Tlb.flush_page tlb 7L;
  Alcotest.(check bool) "global entry flushed" true (Tlb.lookup tlb ~pcid:9 7L = None);
  Tlb.insert tlb ~pcid:0 ~vpn:9L ~frame:0x9000L ~flags ~global:false;
  Tlb.flush_page tlb (Int64.of_int (9 + 64)); (* aliases slot 9, different vpn *)
  Alcotest.(check bool) "slot-aliasing vpn survives" true (Tlb.lookup tlb ~pcid:0 9L <> None)

(* Frame accounting: map/unmap/clear cycles must return every intermediate
   table frame to the allocator exactly once (no leak, no double free). *)
let prop_frame_accounting =
  QCheck2.Test.make ~name:"map/unmap/clear returns every table frame exactly once" ~count:50
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 0 2_000_000))
    (fun pages ->
      let m = mk_machine () in
      let p = m.Machine.palloc in
      let root = Hvm.Palloc.alloc p in
      let flags = { Pt.writable = true; user = true; executable = false } in
      let no_dups l = List.length (List.sort_uniq compare l) = List.length l in
      let cycle () =
        List.iter
          (fun pg -> Pt.map m.Machine.mem p ~root (Int64.mul (Int64.of_int pg) 4096L) 0x1000L flags)
          pages;
        (* unmap half of them first: leaves clear but tables remain *)
        List.iteri
          (fun i pg ->
            if i mod 2 = 0 then Pt.unmap m.Machine.mem ~root (Int64.mul (Int64.of_int pg) 4096L))
          pages;
        Pt.clear_low_half m.Machine.mem p ~root
      in
      cycle ();
      let ok1 = Hvm.Palloc.frames_used p = 1 && no_dups p.Hvm.Palloc.free in
      (* A second cycle re-allocates from the free list and must balance again. *)
      cycle ();
      ok1 && Hvm.Palloc.frames_used p = 1 && no_dups p.Hvm.Palloc.free)

let test_free_subtree_accounting () =
  let m = mk_machine () in
  let p = m.Machine.palloc in
  let root = Hvm.Palloc.alloc p in
  let flags = { Pt.writable = true; user = true; executable = false } in
  let high = 0x0000_8000_0000_0000L in
  Pt.map m.Machine.mem p ~root high 0x2000L flags;
  Pt.map m.Machine.mem p ~root 0x1000L 0x3000L flags;
  Alcotest.(check int) "root + 2x3 tables" 7 (Hvm.Palloc.frames_used p);
  Pt.clear_low_half m.Machine.mem p ~root;
  Alcotest.(check int) "high-half tables survive clear" 4 (Hvm.Palloc.frames_used p);
  Alcotest.(check bool) "high mapping still walks" true
    (fst (Pt.walk m.Machine.mem ~root high) <> None);
  Pt.free_subtree m.Machine.mem p root 3;
  Alcotest.(check int) "free_subtree releases everything" 0 (Hvm.Palloc.frames_used p);
  Alcotest.(check bool) "no double free" true
    (List.length (List.sort_uniq compare p.Hvm.Palloc.free) = List.length p.Hvm.Palloc.free)

let test_machine_translate_rings () =
  let m = mk_machine () in
  let root = Hvm.Palloc.alloc m.Machine.palloc in
  m.Machine.cr3 <- root;
  m.Machine.paging <- true;
  Pt.map m.Machine.mem m.Machine.palloc ~root 0x4000L 0x8000L
    { Pt.writable = false; user = false; executable = true };
  m.Machine.ring <- 0;
  Alcotest.(check int64) "kernel read ok" 0x8123L (Machine.translate m ~access:Machine.Read 0x4123L);
  Alcotest.check_raises "kernel write to RO faults"
    (Machine.Host_fault { va = 0x4123L; access = Machine.Write }) (fun () ->
      ignore (Machine.translate m ~access:Machine.Write 0x4123L));
  m.Machine.ring <- 3;
  Alcotest.check_raises "user access to kernel page faults"
    (Machine.Host_fault { va = 0x4123L; access = Machine.Read }) (fun () ->
      ignore (Machine.translate m ~access:Machine.Read 0x4123L))

let test_devices () =
  let intc = Hvm.Device.Intc.create () in
  let uart = Hvm.Device.Uart.create () in
  let timer = Hvm.Device.Timer.create intc in
  let udev = Hvm.Device.Uart.device uart in
  udev.Hvm.Device.write 0 8 (Int64.of_int (Char.code 'h'));
  udev.Hvm.Device.write 0 8 (Int64.of_int (Char.code 'i'));
  Alcotest.(check string) "uart collects" "hi" (Hvm.Device.Uart.output uart);
  Alcotest.(check int64) "tx ready" 1L (udev.Hvm.Device.read 4 32);
  let tdev = Hvm.Device.Timer.device timer in
  tdev.Hvm.Device.write 0 32 100L; (* load *)
  tdev.Hvm.Device.write 8 32 3L; (* enable + irq *)
  Alcotest.(check bool) "no irq yet" false (Hvm.Device.Intc.asserted intc);
  intc.Hvm.Device.Intc.enabled <- 2;
  tdev.Hvm.Device.tick 150;
  Alcotest.(check bool) "irq raised" true (Hvm.Device.Intc.asserted intc);
  Alcotest.(check int) "fired once" 1 timer.Hvm.Device.Timer.fired;
  tdev.Hvm.Device.write 12 32 0L; (* ack *)
  Alcotest.(check bool) "irq cleared" false (Hvm.Device.Intc.asserted intc)

(* Property: any mapping installed is returned by the walk with its exact
   frame and flags. *)
let prop_map_walk =
  QCheck2.Test.make ~name:"pagetable map/walk roundtrip" ~count:200
    QCheck2.Gen.(triple (int_range 0 100000) bool bool)
    (fun (page, writable, user) ->
      let m = mk_machine () in
      let root = Hvm.Palloc.alloc m.Machine.palloc in
      let va = Int64.mul (Int64.of_int page) 4096L in
      let pa = Int64.of_int (0x100000 + (page mod 64) * 4096) in
      let flags = { Pt.writable; user; executable = true } in
      Pt.map m.Machine.mem m.Machine.palloc ~root va pa flags;
      match fst (Pt.walk m.Machine.mem ~root va) with
      | Some (_, pte) -> Pt.frame_of pte = pa && Pt.flags_of_bits pte = flags
      | None -> false)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "hvm",
    [
      Alcotest.test_case "memory widths" `Quick test_mem_widths;
      Alcotest.test_case "pagetable map/walk" `Quick test_pagetable_map_walk;
      Alcotest.test_case "protect and clear-low-half" `Quick test_pagetable_protect_and_clear;
      Alcotest.test_case "tlb pcid tagging" `Quick test_tlb_pcid;
      Alcotest.test_case "tlb flush_page is pcid-blind" `Quick test_tlb_flush_page_pcid_blind;
      Alcotest.test_case "free_subtree/clear_low_half accounting" `Quick test_free_subtree_accounting;
      Alcotest.test_case "machine rings" `Quick test_machine_translate_rings;
      Alcotest.test_case "devices" `Quick test_devices;
      q prop_map_walk;
      q prop_frame_accounting;
    ] )
