(* Template-tier tests: the tier-minus-one fast translator must be
   observationally equivalent to the tier-0 pipeline (randomised
   differential property over decode fields), must demote on
   self-modifying code exactly like tier-0 blocks, must keep its
   per-tier cycle ledgers consistent, and must persist/reload its
   blocks through the kind-2 AOT path without changing behaviour. *)

module A = Guest_arm.Arm_asm
module CE = Captive.Engine

let guest () = Guest_arm.Arm.ops ()

let syscon = 0x0930_0000L
let uart = 0x0910_0000L

let bare_metal body =
  let a = A.create ~base:0x80000L () in
  body a;
  A.mov_const a A.x25 syscon;
  A.str a A.x0 A.x25;
  A.label a "__hang";
  A.b a "__hang";
  A.assemble a

let run ?config image =
  let e = CE.create ?config (guest ()) in
  CE.load_image e ~addr:0x80000L image;
  CE.set_entry e 0x80000L;
  let code = match CE.run ~max_cycles:200_000_000 e with CE.Poweroff c -> c | _ -> -1 in
  (code, e)

(* With the threshold unreachable every block stays in its install tier:
   template stitching on the left, the full cold pipeline on the right.
   Any observable divergence between the two is a template miscompile. *)
let template_only = { CE.default_config with templates = true; hot_threshold = max_int }
let pipeline_only = { CE.default_config with templates = false; hot_threshold = max_int }

let counted_loop iters =
  bare_metal (fun a ->
      A.movz a A.x0 0;
      A.mov_const a A.x19 (Int64.of_int iters);
      A.label a "loop";
      A.add_imm a A.x0 A.x0 1;
      A.subs_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "loop")

(* Randomised programs spanning the templated opcode forms with random
   decode fields (registers, immediates, offsets, conditions), a
   data-dependent forward skip so block boundaries vary, and UART bytes
   so the trace is part of the observation. *)
let random_program seed =
  let prng = Dbt_util.Prng.create (if seed = 0L then 77L else seed) in
  let r n = Dbt_util.Prng.int prng n in
  let reg () = r 8 in
  let a = A.create ~base:0x80000L () in
  A.mov_const a A.x20 0x200000L;
  A.mov_const a A.x24 uart;
  for i = 0 to 7 do
    A.mov_const a i (Dbt_util.Prng.int64 prng)
  done;
  A.movz a A.x19 12;
  A.label a "loop";
  let body n =
    for _ = 1 to n do
      match r 14 with
      | 0 -> A.add_reg a (reg ()) (reg ()) (reg ())
      | 1 -> A.subs_reg a (reg ()) (reg ()) (reg ())
      | 2 -> A.eor_reg a (reg ()) (reg ()) (reg ())
      | 3 -> A.and_reg a (reg ()) (reg ()) (reg ())
      | 4 -> A.orr_reg a (reg ()) (reg ()) (reg ())
      | 5 -> A.mul a (reg ()) (reg ()) (reg ())
      | 6 -> A.udiv a (reg ()) (reg ()) (reg ())
      | 7 -> A.add_imm a (reg ()) (reg ()) (r 4096)
      | 8 -> A.csel a (reg ()) (reg ()) (reg ()) (List.nth [ A.EQ; A.LT; A.HI; A.VS ] (r 4))
      | 9 -> A.clz a (reg ()) (reg ())
      | 10 -> A.str ~off:(8 * r 32) a (reg ()) A.x20
      | 11 -> A.ldr ~off:(8 * r 32) a (reg ()) A.x20
      | 12 -> A.movz a (reg ()) (r 65536)
      | _ ->
        (* printable byte to the UART: the trace observes the value *)
        A.movz a A.x9 (0x30 + r 64);
        A.strb a A.x9 A.x24
    done
  in
  body (2 + r 5);
  A.tbz a (reg ()) (r 8) "skip";
  body (1 + r 4);
  A.label a "skip";
  body (1 + r 3);
  A.subs_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop";
  (* dump x0..x7 and the flags so the final register file is observed *)
  A.mov_const a A.x21 0x300000L;
  for i = 0 to 7 do
    A.str ~off:(8 * i) a i A.x21
  done;
  A.cset a A.x22 A.EQ;
  A.cset a A.x23 A.CS;
  A.str ~off:64 a A.x22 A.x21;
  A.str ~off:72 a A.x23 A.x21;
  A.mov_const a A.x28 syscon;
  A.str a A.xzr A.x28;
  A.label a "hang";
  A.b a "hang";
  A.assemble a

let dump mem = List.init 10 (fun i -> Hvm.Mem.read64 mem (Int64.of_int (0x300000 + (8 * i))))

let prop_template_vs_pipeline =
  QCheck2.Test.make ~name:"random decode fields: template tier = tier-0 pipeline" ~count:20
    QCheck2.Gen.int64 (fun seed ->
      let image = random_program seed in
      let run_dump config =
        let e = CE.create ~config (guest ()) in
        CE.load_image e ~addr:0x80000L image;
        CE.set_entry e 0x80000L;
        match CE.run ~max_cycles:100_000_000 e with
        | CE.Poweroff c -> (c, dump e.CE.machine.Hvm.Machine.mem, CE.uart_output e, e)
        | _ -> (-1, [], "", e)
      in
      let c_t, d_t, u_t, e_t = run_dump template_only in
      let c_p, d_p, u_p, e_p = run_dump pipeline_only in
      d_t <> [] && c_t = c_p && d_t = d_p && u_t = u_p
      && e_t.CE.stats.CE.template_blocks > 0
      (* the guest retires the same work either way *)
      && e_t.CE.stats.CE.blocks_executed = e_p.CE.stats.CE.blocks_executed)

(* A snippet installed by the template tier, patched in place, then
   re-executed: the write must invalidate the template-installed block
   exactly like a tier-0 block (stale code must never run). *)
let smc_image () =
  bare_metal (fun a ->
      A.movz a A.x20 0;
      A.adr a A.x21 "snippet";
      A.movz a A.x19 8;
      A.label a "phase1";
      A.bl a "snippet";
      A.add_reg a A.x20 A.x20 A.x0;
      A.subs_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "phase1";
      (* patch: rewrite snippet's first instruction to movz x0,#2 *)
      (let w = (0b110100101 lsl 23) lor (2 lsl 5) lor 0 in
       A.mov_const a A.x22 (Int64.of_int w));
      A.str32 a A.x22 A.x21;
      A.movz a A.x19 8;
      A.label a "phase2";
      A.bl a "snippet";
      A.add_reg a A.x20 A.x20 A.x0;
      A.subs_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "phase2";
      A.mov_reg a A.x0 A.x20;
      A.b a "done";
      A.label a "snippet";
      A.movz a A.x0 1;
      A.ret a;
      A.label a "done")

let test_smc_demotes_template_block () =
  let image = smc_image () in
  let code, e = run ~config:template_only image in
  Alcotest.(check int) "patched snippet observed (8*1 + 8*2)" 24 code;
  Alcotest.(check bool) "snippet was template-installed" true (e.CE.stats.CE.template_blocks > 0);
  Alcotest.(check bool) "SMC invalidation fired" true (e.CE.stats.CE.smc_invalidations > 0);
  let code_p, _ = run ~config:pipeline_only image in
  Alcotest.(check int) "pipeline-only agrees" code_p code

(* Promotion interplay: with a reachable threshold, template-installed
   blocks must still get promoted and the hot loop must still form a
   region — the fast tier only changes how cold code is installed. *)
let test_template_promotion () =
  let image = counted_loop 2000 in
  let config = { CE.default_config with templates = true; hot_threshold = 8 } in
  let code, e = run ~config image in
  let code_p, _ = run ~config:{ config with templates = false } image in
  Alcotest.(check int) "exit matches pipeline-only" code_p code;
  Alcotest.(check int) "loop counted to completion" (2000 land 0xFF) code;
  Alcotest.(check bool) "cold blocks came from templates" true (e.CE.stats.CE.template_blocks > 0);
  Alcotest.(check int) "exactly one promotion" 1 e.CE.stats.CE.promotions;
  Alcotest.(check int) "exactly one region formed" 1 e.CE.stats.CE.regions_formed;
  Alcotest.(check bool) "region actually entered" true (e.CE.stats.CE.region_entries > 0)

(* Counter and ledger consistency on a fully-templatable program, plus
   determinism: two identical boots mine and charge identically. *)
let test_template_counters () =
  let image = counted_loop 64 in
  let code, e = run ~config:template_only image in
  Alcotest.(check int) "exit" 64 code;
  let s = e.CE.stats in
  Alcotest.(check bool) "template blocks installed" true (s.CE.template_blocks > 0);
  Alcotest.(check int) "no template misses on covered forms" 0 s.CE.template_misses;
  Alcotest.(check int) "no fallback blocks" 0 s.CE.template_fallback_blocks;
  Alcotest.(check bool) "variants were mined" true (s.CE.templates_mined > 0);
  Alcotest.(check bool)
    "template blocks cover at least one instr each" true
    (s.CE.template_instrs >= s.CE.template_blocks);
  Alcotest.(check int) "per-tier ledgers sum to the translate ledger"
    s.CE.translate_cycles
    (s.CE.translate_cycles_template + s.CE.translate_cycles_pipeline);
  Alcotest.(check bool) "miss table empty" true (CE.template_miss_table e = []);
  let report = CE.template_report e in
  Alcotest.(check bool) "form report non-empty" true (report <> []);
  List.iter
    (fun fr ->
      Alcotest.(check bool)
        (Printf.sprintf "mined form %s is live" fr.Hostir.Template.fr_name)
        true (fr.Hostir.Template.fr_dead = None))
    report;
  (* mining is deterministic: a second boot charges the same cycles *)
  let _, e2 = run ~config:template_only image in
  Alcotest.(check int) "deterministic cycle charge" (CE.cycles e) (CE.cycles e2);
  Alcotest.(check int) "deterministic mining" s.CE.templates_mined e2.CE.stats.CE.templates_mined

(* Kind-2 AOT round trip: a cold boot persists template blocks, a warm
   boot reinstalls them (aot_hits) with identical observable behaviour. *)
let temp_dir () =
  let f = Filename.temp_file "captive_tmpl_test" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let test_template_aot_roundtrip () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config = { template_only with CE.aot_dir = Some dir } in
      let image = counted_loop 64 in
      let code_cold, e_cold = run ~config image in
      Alcotest.(check int) "cold exit" 64 code_cold;
      Alcotest.(check bool) "cold boot stored entries" true (e_cold.CE.stats.CE.aot_stores > 0);
      let code_warm, e_warm = run ~config image in
      Alcotest.(check int) "warm exit" 64 code_warm;
      Alcotest.(check bool) "warm boot hit the cache" true (e_warm.CE.stats.CE.aot_hits > 0);
      Alcotest.(check bool)
        "warm template installs are cheaper than cold" true
        (e_warm.CE.stats.CE.translate_cycles_template
        < e_cold.CE.stats.CE.translate_cycles_template);
      Alcotest.(check int) "warm uart agrees" 0 (compare (CE.uart_output e_cold) (CE.uart_output e_warm)))

let suite =
  ( "template",
    [
      Alcotest.test_case "SMC demotes template blocks" `Quick test_smc_demotes_template_block;
      Alcotest.test_case "templates feed promotion unchanged" `Quick test_template_promotion;
      Alcotest.test_case "counters, ledgers, determinism" `Quick test_template_counters;
      Alcotest.test_case "kind-2 AOT round trip" `Quick test_template_aot_roundtrip;
      QCheck_alcotest.to_alcotest prop_template_vs_pipeline;
    ] )
