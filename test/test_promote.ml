(* Register-promotion and memory-redundancy-elimination tests: the
   Promote pass rewrites synthetic streams as specified (promotion,
   store-to-load forwarding with width-exact zero extension, alias
   kills, rf forwarding, identity-ALU canonicalization), the writeback
   verifier rejects the documented bad shapes, and two differential
   properties check that promoted regions are observationally
   equivalent to per-block tier-0 execution — including when guest
   faults are delivered from the middle of a promoted region. *)

module H = Hostir.Hir
module P = Hostir.Promote
module V = Hostir.Verify
module A = Guest_arm.Arm_asm
module CE = Captive.Engine
module K = Workloads.Kernel

let v n = H.Vreg n

(* --- Promote.run on synthetic streams ---------------------------------------------- *)

let count p instrs = Array.fold_left (fun a i -> if p i then a + 1 else a) 0 instrs

let test_promotion_rewrite () =
  (* A two-offset loop body: both offsets are loop-weighted well past
     the promotion threshold, so both get cached and the stream ends in
     a writeback map covering the dirty pair. *)
  let stream =
    [|
      H.Label 0;
      H.Ldrf (v 0, 8);
      H.Alu (H.Aadd, v 0, v 0, H.Imm 1L);
      H.Strf (8, v 0);
      H.Ldrf (v 1, 16);
      H.Alu (H.Asub, v 1, v 1, H.Imm 1L);
      H.Strf (16, v 1);
      H.Br (v 1, 0, 1);
      H.Label 1;
      H.Exit 1;
    |]
  in
  let out, promoted, st = P.run stream in
  Alcotest.(check int) "both offsets promoted" 2 (List.length promoted);
  Alcotest.(check int) "2 loads rewritten" 2 st.P.loads_rewritten;
  Alcotest.(check int) "2 stores rewritten" 2 st.P.stores_rewritten;
  Alcotest.(check int) "both dirty offsets in the map" 2 st.P.wb_entries;
  Alcotest.(check int) "one writeback map"
    1 (count (function H.Wbmap _ -> true | _ -> false) out);
  (* Interior accesses are gone: the only Ldrfs left are the two
     prologue loads, and no Strf survives (the map covers exits). *)
  Alcotest.(check int) "only prologue rf loads remain"
    2 (count (function H.Ldrf _ -> true | _ -> false) out);
  Alcotest.(check int) "no interior rf stores remain"
    0 (count (function H.Strf _ -> true | _ -> false) out);
  Alcotest.(check_raises) "verifier accepts the rewrite" Not_found (fun () ->
      V.check_wb_exn ~promoted out;
      raise Not_found)

let test_store_forward_width () =
  (* A 32-bit store forwarded into a 32-bit load must zero-extend: the
     stored operand may carry garbage above bit 31. *)
  let stream =
    [| H.Mem_st (32, v 0, v 1); H.Mem_ld (32, v 2, v 0); H.Exit 0 |]
  in
  let out, _, st = P.run stream in
  Alcotest.(check int) "store forwarded" 1 st.P.stores_forwarded;
  Alcotest.(check int) "forward is a zero-extension"
    1 (count (function H.Ext (false, 32, _, _) -> true | _ -> false) out);
  Alcotest.(check int) "the load is gone"
    0 (count (function H.Mem_ld _ -> true | _ -> false) out);
  (* At 64 bits the forward is a plain move. *)
  let out64, _, st64 =
    P.run [| H.Mem_st (64, v 0, v 1); H.Mem_ld (64, v 2, v 0); H.Exit 0 |]
  in
  Alcotest.(check int) "64-bit store forwarded" 1 st64.P.stores_forwarded;
  Alcotest.(check int) "no extension at full width"
    0 (count (function H.Ext _ -> true | _ -> false) out64)

let test_redundant_load_and_alias_kill () =
  (* Second load of the same address is elided; a store through an
     unrelated base vreg may alias and must kill the availability. *)
  let _, _, st =
    P.run [| H.Mem_ld (64, v 2, v 0); H.Mem_ld (64, v 3, v 0); H.Exit 0 |]
  in
  Alcotest.(check int) "redundant load elided" 1 st.P.loads_elided;
  let out, _, st =
    P.run
      [|
        H.Mem_ld (64, v 2, v 0);
        H.Mem_st (64, v 1, H.Imm 5L);
        H.Mem_ld (64, v 3, v 0);
        H.Exit 0;
      |]
  in
  Alcotest.(check int) "aliasing store kills the forward" 0 st.P.loads_elided;
  Alcotest.(check int) "both loads survive"
    2 (count (function H.Mem_ld _ -> true | _ -> false) out);
  (* A store at a provably disjoint displacement off the same base does
     not kill it. *)
  let _, _, st =
    P.run
      [|
        H.Mem_ld (64, v 2, v 0);
        H.Alu (H.Aadd, v 1, v 0, H.Imm 64L);
        H.Mem_st (64, v 1, H.Imm 7L);
        H.Mem_ld (64, v 3, v 0);
        H.Exit 0;
      |]
  in
  Alcotest.(check int) "disjoint store preserves the forward" 1 st.P.loads_elided

let test_rf_forward_and_canonicalize () =
  (* Below the promotion threshold, a register-file store still forwards
     into the next load of the same offset. *)
  let out, promoted, st =
    P.run [| H.Strf (24, v 0); H.Ldrf (v 1, 24); H.Exit 0 |]
  in
  Alcotest.(check int) "cold offset not promoted" 0 (List.length promoted);
  Alcotest.(check int) "rf load forwarded" 1 st.P.rf_loads_forwarded;
  Alcotest.(check int) "the store still executes"
    1 (count (function H.Strf _ -> true | _ -> false) out);
  (* Identity ALUs become moves and propagate through to address uses. *)
  let out, _, _ =
    P.run
      [|
        H.Alu (H.Aadd, v 1, v 0, H.Imm 0L);
        H.Alu (H.Aand, v 2, v 1, H.Imm (-1L));
        H.Mem_ld (64, v 3, v 2);
        H.Exit 0;
      |]
  in
  Alcotest.(check int) "identity ALUs canonicalized away"
    0 (count (function H.Alu _ -> true | _ -> false) out);
  Alcotest.(check int) "load address propagated to the original vreg"
    1 (count (function H.Mem_ld (64, _, H.Vreg 0) -> true | _ -> false) out)

(* --- Verify.check_wb fixtures ------------------------------------------------------ *)

let promoted = [ (10, 8) ]

let msgs vs = String.concat "; " (List.map (fun x -> x.V.v_msg) vs)
let has sub vs =
  let m = msgs vs in
  let n = String.length sub in
  let rec go i = i + n <= String.length m && (String.sub m i n = sub || go (i + 1)) in
  go 0

let test_wb_fixtures () =
  let ok =
    [|
      H.Ldrf (v 10, 8);
      H.Alu (H.Aadd, v 10, v 10, H.Imm 1L);
      H.Exit 0;
      H.Wbmap [| (v 10, 8) |];
    |]
  in
  Alcotest.(check (list pass)) "consistent stream accepted" [] (V.check_wb ~promoted ok);
  (* Dirty at the exit with no covering entry. *)
  let missing =
    [|
      H.Ldrf (v 10, 8);
      H.Alu (H.Aadd, v 10, v 10, H.Imm 1L);
      H.Exit 0;
      H.Wbmap [||];
    |]
  in
  Alcotest.(check bool) "missing writeback entry rejected" true
    (has "no writeback entry" (V.check_wb ~promoted missing));
  (* Map entry naming the wrong offset for its register. *)
  let stale =
    [|
      H.Ldrf (v 10, 8);
      H.Alu (H.Aadd, v 10, v 10, H.Imm 1L);
      H.Strf (8, v 10);
      H.Exit 0;
      H.Wbmap [| (v 10, 16) |];
    |]
  in
  Alcotest.(check bool) "stale writeback entry rejected" true
    (has "stale writeback entry" (V.check_wb ~promoted stale));
  (* A helper call is a mandatory flush point. *)
  let call =
    [|
      H.Ldrf (v 10, 8);
      H.Alu (H.Aadd, v 10, v 10, H.Imm 1L);
      H.Call (0, [||], None);
      H.Ldrf (v 10, 8);
      H.Exit 0;
      H.Wbmap [| (v 10, 8) |];
    |]
  in
  Alcotest.(check bool) "dirty value across a call rejected" true
    (has "helper call reachable" (V.check_wb ~promoted call));
  (* A reachable safepoint with a dirty register and no map entry. *)
  let poll =
    [|
      H.Ldrf (v 10, 8);
      H.Alu (H.Aadd, v 10, v 10, H.Imm 1L);
      H.Poll 0;
      H.Strf (8, v 10);
      H.Exit 0;
      H.Wbmap [||];
    |]
  in
  Alcotest.(check bool) "uncovered dirty safepoint rejected" true
    (has "safepoint" (V.check_wb ~promoted poll));
  match V.check_wb_exn ~promoted missing with
  | () -> Alcotest.fail "check_wb_exn did not raise"
  | exception V.Invalid _ -> ()

(* --- differential properties ------------------------------------------------------- *)

let guest () = Guest_arm.Arm.ops ()
let syscon = 0x0930_0000L

(* Random loop bodies dense in memory traffic through one base register:
   the shape store-to-load forwarding and promotion both fire on.  Final
   x0..x7 plus the flags are dumped to memory and compared. *)
let random_mem_loop seed =
  let prng = Dbt_util.Prng.create (if seed = 0L then 91L else seed) in
  let r n = Dbt_util.Prng.int prng n in
  let reg () = r 8 in
  let a = A.create ~base:0x80000L () in
  A.mov_const a A.x20 0x200000L;
  for i = 0 to 7 do
    A.mov_const a i (Dbt_util.Prng.int64 prng)
  done;
  A.movz a A.x19 50;
  A.label a "loop";
  for _ = 1 to 4 + r 6 do
    match r 10 with
    | 0 | 1 | 2 -> A.str ~off:(8 * r 8) a (reg ()) A.x20
    | 3 | 4 | 5 -> A.ldr ~off:(8 * r 8) a (reg ()) A.x20
    | 6 -> A.add_reg a (reg ()) (reg ()) (reg ())
    | 7 -> A.eor_reg a (reg ()) (reg ()) (reg ())
    | 8 -> A.add_imm a (reg ()) (reg ()) (r 4096)
    | _ -> A.subs_reg a (reg ()) (reg ()) (reg ())
  done;
  A.subs_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop";
  A.mov_const a A.x21 0x300000L;
  for i = 0 to 7 do
    A.str ~off:(8 * i) a i A.x21
  done;
  A.cset a A.x22 A.EQ;
  A.str ~off:64 a A.x22 A.x21;
  A.mov_const a A.x28 syscon;
  A.str a A.xzr A.x28;
  A.label a "hang";
  A.b a "hang";
  A.assemble a

let dump mem = List.init 9 (fun i -> Hvm.Mem.read64 mem (Int64.of_int (0x300000 + (8 * i))))

let run_dump config image =
  let e = CE.create ~config (guest ()) in
  CE.load_image e ~addr:0x80000L image;
  CE.set_entry e 0x80000L;
  match CE.run ~max_cycles:100_000_000 e with
  | CE.Poweroff _ -> (dump e.CE.machine.Hvm.Machine.mem, e)
  | _ -> ([], e)

let prop_promoted_vs_block =
  QCheck2.Test.make
    ~name:"random hot loops: promoted region = tier-0 per-block execution" ~count:20
    QCheck2.Gen.int64 (fun seed ->
      let image = random_mem_loop seed in
      let hot = { CE.default_config with hot_threshold = 2 } in
      let unpromoted = { hot with promote = false } in
      let untiered = { CE.default_config with tiering = false } in
      let d_p, e_p = run_dump hot image in
      let d_n, _ = run_dump unpromoted image in
      let d_u, _ = run_dump untiered image in
      d_p <> [] && d_p = d_n && d_p = d_u
      && e_p.CE.stats.CE.regions_formed >= 1)

(* Mid-region guest faults: a hot user loop increments promoted
   register state and then performs a load of an unmapped user VA every
   iteration.  The kernel's abort handler counts the fault and skips
   the instruction, so execution re-enters the (promoted) region
   constantly across fault deliveries.  If writeback maps were missing
   or stale, the increments sitting in promoted host registers at the
   fault point would be lost or doubled and the final sum would differ
   from the tier-0 engines. *)
let fault_loop_user iters =
  let a = A.create ~base:K.user_va () in
  A.movz a A.x1 5;
  A.movz a A.x5 0;
  (* just past the 2 MiB user block: translation fault on every access *)
  A.mov_const a A.x3 (Int64.add K.user_va 0x210000L);
  A.mov_const a A.x19 (Int64.of_int iters);
  A.label a "loop";
  A.add_imm a A.x1 A.x1 1;
  A.ldr a A.x4 A.x3;
  A.add_reg a A.x5 A.x5 A.x1;
  A.subs_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop";
  (* x0 = faults() + x1, truncated to the 8-bit exit code *)
  A.movz a A.x8 4;
  A.svc a 0;
  A.add_reg a A.x0 A.x0 A.x1;
  A.movz a A.x8 0;
  A.svc a 0;
  A.assemble a

let test_fault_mid_region () =
  let iters = 300 in
  let user = fault_loop_user iters in
  let run config =
    let e = CE.create ~config (guest ()) in
    K.install (K.captive_target e) ~user;
    let code = match CE.run ~max_cycles:500_000_000 e with CE.Poweroff c -> c | _ -> -1 in
    (code, e)
  in
  let code_p, e_p = run CE.default_config in
  let code_n, _ = run { CE.default_config with promote = false } in
  let code_u, _ = run { CE.default_config with tiering = false } in
  let expect = (iters + 5 + iters) land 0xFF in
  Alcotest.(check int) "faults counted and increments preserved" expect code_p;
  Alcotest.(check int) "promotion-off agrees" code_n code_p;
  Alcotest.(check int) "tier-0 agrees" code_u code_p;
  Alcotest.(check bool) "a region was entered" true (e_p.CE.stats.CE.region_entries > 0);
  Alcotest.(check bool) "registers were promoted" true (e_p.CE.stats.CE.rf_promoted > 0);
  Alcotest.(check bool) "faults were delivered" true
    (e_p.CE.machine.Hvm.Machine.faults >= iters)

let suite =
  ( "promote",
    [
      Alcotest.test_case "promotion rewrite + writeback map" `Quick test_promotion_rewrite;
      Alcotest.test_case "store-to-load forward widths" `Quick test_store_forward_width;
      Alcotest.test_case "redundant load + alias kill" `Quick test_redundant_load_and_alias_kill;
      Alcotest.test_case "rf forwarding + canonicalize" `Quick test_rf_forward_and_canonicalize;
      Alcotest.test_case "writeback verifier fixtures" `Quick test_wb_fixtures;
      Alcotest.test_case "guest faults mid-region" `Quick test_fault_mid_region;
      QCheck_alcotest.to_alcotest prop_promoted_vs_block;
    ] )
