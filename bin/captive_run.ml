(* captive_run: command-line front end to the DBT engines.

     captive_run spec 429.mcf --engine captive --scale 2
     captive_run simbench Mem-Hot-MMU
     captive_run boot --engine qemu
     captive_run info
     captive_run ssa add_sub_imm --level 4
     captive_run lint
     captive_run mmucheck --json --guard
     captive_run stress --json --seeds 32
     captive_run bench --quick --json
     captive_run validate --json
     captive_run relocheck --json
     captive_run aot --json

   `spec` runs a SPEC CPU2006 proxy under the mini guest OS, `simbench`
   one SimBench category on both engines, `boot` a demo user program on
   the mini-OS, `info` prints the loaded guest models, `ssa` dumps an
   instruction's optimized SSA (the offline artifact of Fig. 6), `lint`
   statically verifies the whole offline pipeline (decode tables, SSA
   after every pass at O1-O4, and post-regalloc HostIR) for every guest
   model, `mmucheck` runs MMU-stress workloads on both guests with the
   online shadow-oracle sanitizer (page tables, TLB, frame accounting,
   code-cache W^X, ring transitions) enabled, `stress` is the
   race-focused lane for the concurrent JIT (seeded drain schedules on
   worker domains, sanitizer + single-domain equivalence as oracles),
   `bench` is the CI perf-regression gate against bench/baseline.json
   (with --exact, the determinism gate: exec/jit cycle bit-identity at
   --domains 1), `validate`
   symbolically checks every translation formed while booting the ARM
   and RISC-V workloads at O1-O4 against an unoptimized reference
   emission (Hostir.Equiv), `relocheck` certifies every translation
   relocation-clean (Hostir.Reloc: no absolute host addresses, numbered
   exits only, environment references in bounds, deterministic
   encoding), and `aot` is the persistent-cache warm-boot gate: each
   quick-bench workload runs cold then warm against the same on-disk
   AOT cache, and the warm boot must spend <= 10% of the cold boot's
   translate cycles with bit-identical guest-visible execution. *)

open Cmdliner

type engine_kind = Eng_captive | Eng_qemu | Eng_reference

let engine_conv =
  let parse = function
    | "captive" -> Ok Eng_captive
    | "qemu" -> Ok Eng_qemu
    | "reference" | "ref" -> Ok Eng_reference
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S (captive|qemu|reference)" s))
  in
  let print fmt e =
    Format.pp_print_string fmt
      (match e with Eng_captive -> "captive" | Eng_qemu -> "qemu" | Eng_reference -> "reference")
  in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(value & opt engine_conv Eng_captive & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc:"DBT engine: captive, qemu or reference.")

let scale_arg =
  Arg.(value & opt int 1 & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let verbose_stats_captive (e : Captive.Engine.t) =
  let s = e.Captive.Engine.stats in
  Printf.printf "cycles: %d\n" (Captive.Engine.cycles e);
  Printf.printf "blocks: executed %d, translated %d, chain hits %d\n"
    s.Captive.Engine.blocks_executed s.Captive.Engine.blocks_translated s.Captive.Engine.chain_hits;
  Printf.printf "guest instrs translated: %d -> host instrs %d (%.1f/guest), %d bytes\n"
    s.Captive.Engine.guest_instrs_translated s.Captive.Engine.host_instrs_emitted
    (float_of_int s.Captive.Engine.host_instrs_emitted
    /. float_of_int (max 1 s.Captive.Engine.guest_instrs_translated))
    s.Captive.Engine.host_bytes_emitted;
  Printf.printf "host page faults: %d, SMC invalidations: %d\n"
    e.Captive.Engine.machine.Hvm.Machine.faults s.Captive.Engine.smc_invalidations;
  Printf.printf "JIT wall time: decode %.1fms translate %.1fms regalloc %.1fms encode %.1fms\n"
    (1000. *. s.Captive.Engine.t_decode) (1000. *. s.Captive.Engine.t_translate)
    (1000. *. s.Captive.Engine.t_regalloc) (1000. *. s.Captive.Engine.t_encode);
  if s.Captive.Engine.template_blocks > 0 then
    Printf.printf
      "template tier: %d blocks (%d instrs) stitched, %d mined, %d misses; translate cycles \
       %d template / %d pipeline\n"
      s.Captive.Engine.template_blocks s.Captive.Engine.template_instrs
      s.Captive.Engine.templates_mined s.Captive.Engine.template_misses
      s.Captive.Engine.translate_cycles_template s.Captive.Engine.translate_cycles_pipeline

let run_user ~engine ~user =
  let guest = Guest_arm.Arm.ops () in
  match engine with
  | Eng_captive ->
    let e = Captive.Engine.create guest in
    Workloads.Kernel.install (Workloads.Kernel.captive_target e) ~user;
    let code =
      match Captive.Engine.run ~max_cycles:50_000_000_000 e with
      | Captive.Engine.Poweroff c -> c
      | _ -> -1
    in
    print_string (Captive.Engine.uart_output e);
    Printf.printf "exit code: %d\n" code;
    verbose_stats_captive e
  | Eng_qemu ->
    let e = Qemu_ref.Qemu_engine.create guest in
    Workloads.Kernel.install (Workloads.Kernel.qemu_target e) ~user;
    let code =
      match Qemu_ref.Qemu_engine.run ~max_cycles:50_000_000_000 e with
      | Qemu_ref.Qemu_engine.Poweroff c -> c
      | _ -> -1
    in
    print_string (Qemu_ref.Qemu_engine.uart_output e);
    Printf.printf "exit code: %d\ncycles: %d\n" code (Qemu_ref.Qemu_engine.cycles e)
  | Eng_reference ->
    let r = Captive.Reference.create guest in
    Workloads.Kernel.install (Workloads.Kernel.reference_target r) ~user;
    let code =
      match Captive.Reference.run ~max_instrs:500_000_000 r with
      | Captive.Reference.Poweroff c -> c
      | _ -> -1
    in
    print_string (Captive.Reference.uart_output r);
    Printf.printf "exit code: %d (interpreted %d instructions)\n" code r.Captive.Reference.instrs_executed

(* --- spec ------------------------------------------------------------------- *)

let spec_names = List.map (fun b -> b.Workloads.Spec.name) Workloads.Spec.all

let spec_cmd =
  let bench =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK"
           ~doc:(Printf.sprintf "One of: %s" (String.concat ", " spec_names)))
  in
  let run name engine scale =
    match List.find_opt (fun b -> b.Workloads.Spec.name = name) Workloads.Spec.all with
    | None -> `Error (false, Printf.sprintf "unknown benchmark %S" name)
    | Some b ->
      run_user ~engine ~user:(b.Workloads.Spec.build ~scale);
      `Ok ()
  in
  Cmd.v (Cmd.info "spec" ~doc:"Run a SPEC CPU2006 proxy under the mini guest OS.")
    Term.(ret (const run $ bench $ engine_arg $ scale_arg))

(* --- simbench ------------------------------------------------------------------ *)

let simbench_cmd =
  let which = Arg.(value & pos 0 (some string) None & info [] ~docv:"CATEGORY") in
  let run which =
    let benches = Simbench.all () in
    let selected =
      match which with
      | None -> benches
      | Some n -> List.filter (fun b -> String.lowercase_ascii b.Simbench.name = String.lowercase_ascii n) benches
    in
    if selected = [] then `Error (false, "unknown SimBench category")
    else begin
      List.iter
        (fun b ->
          let r = Simbench.run_one b in
          Printf.printf "%-20s captive %8dk  qemu %8dk  speed-up %.2fx\n%!" r.Simbench.bench
            (r.Simbench.captive_cycles / 1000) (r.Simbench.qemu_cycles / 1000) r.Simbench.speedup)
        selected;
      `Ok ()
    end
  in
  Cmd.v (Cmd.info "simbench" ~doc:"Run SimBench categories on both engines.")
    Term.(ret (const run $ which))

(* --- boot ----------------------------------------------------------------------- *)

let demo_user () =
  let a = Guest_arm.Arm_asm.create ~base:Workloads.Kernel.user_va () in
  String.iter
    (fun ch ->
      Guest_arm.Arm_asm.movz a Guest_arm.Arm_asm.x0 (Char.code ch);
      Guest_arm.Arm_asm.movz a Guest_arm.Arm_asm.x8 1;
      Guest_arm.Arm_asm.svc a 0)
    "captive mini-OS: up at EL0 with paging, syscalls and a timer\n";
  Guest_arm.Arm_asm.movz a Guest_arm.Arm_asm.x0 0;
  Guest_arm.Arm_asm.movz a Guest_arm.Arm_asm.x8 0;
  Guest_arm.Arm_asm.svc a 0;
  Guest_arm.Arm_asm.assemble a

let boot_cmd =
  let run engine = run_user ~engine ~user:(demo_user ()) in
  Cmd.v (Cmd.info "boot" ~doc:"Boot the mini guest OS with a demo user program.")
    Term.(const run $ engine_arg)

(* --- info ------------------------------------------------------------------------- *)

let info_cmd =
  let run () =
    List.iter
      (fun (ops : Guest.Ops.ops) ->
        let m = ops.Guest.Ops.model in
        Printf.printf "%-10s %s\n" ops.Guest.Ops.name ops.Guest.Ops.description;
        Printf.printf "           %d decode entries, %d execute actions, %d optimized SSA statements\n"
          (List.length m.Ssa.Offline.arch.Adl.Ast.a_decodes)
          (List.length m.Ssa.Offline.arch.Adl.Ast.a_executes)
          (Ssa.Offline.total_size m))
      [ Guest_arm.Arm.ops (); Guest_riscv.Riscv.ops () ]
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe the available guest models.") Term.(const run $ const ())

(* --- ssa --------------------------------------------------------------------------- *)

let ssa_cmd =
  let insn = Arg.(required & pos 0 (some string) None & info [] ~docv:"INSTRUCTION") in
  let level = Arg.(value & opt int 4 & info [ "l"; "level" ] ~docv:"N" ~doc:"Offline optimization level (1-4).") in
  let guest = Arg.(value & opt string "armv8-a" & info [ "g"; "guest" ] ~doc:"Guest model (armv8-a or rv64im).") in
  let classify = Arg.(value & flag & info [ "c"; "classify" ] ~doc:"Annotate statements as [f]ixed or [d]ynamic (Sec. 2.2.2).") in
  let run insn level guest classify =
    let model =
      match guest with
      | "armv8-a" -> Guest_arm.Arm.model_at_level level
      | "rv64im" -> Ssa.Offline.build ~opt_level:level Guest_riscv.Riscv_descr.source
      | g -> failwith ("unknown guest " ^ g)
    in
    match Hashtbl.find_opt model.Ssa.Offline.actions insn with
    | Some action ->
      if classify then begin
        print_string (Ssa.Analysis.to_string_annotated action);
        let f, d, fb, db = Ssa.Analysis.stats action in
        Printf.printf "\n%d fixed / %d dynamic statements; %d fixed / %d dynamic branches\n" f d fb db
      end
      else print_string (Ssa.Ir.to_string action)
    | None ->
      Printf.printf "no action %S; available:\n" insn;
      Hashtbl.iter (fun n _ -> Printf.printf "  %s\n" n) model.Ssa.Offline.actions
  in
  Cmd.v (Cmd.info "ssa" ~doc:"Dump an instruction's optimized SSA (the offline artifact).")
    Term.(const run $ insn $ level $ guest $ classify)

(* --- lint --------------------------------------------------------------------------- *)

(* Static verification sweep over the whole offline pipeline, for every
   guest model:

   1. decode-table analysis (Adl.Declint): ambiguous overlaps, shadowed
      patterns, bad field-extraction plans, bad `when` predicates;
   2. SSA well-formedness (Ssa.Verify) after every optimization pass at
      each level O1-O4, attributing any broken invariant to the
      offending pass by name; plus the semantic layer (Ssa.Absint):
      translation validation of every optimized action against its
      unoptimized reference, and interval proofs that every bank/slot
      access index stays within the architecture's declared bounds;
   3. HostIR invariants (Hostir.Verify) on a representative translation
      of every action: post-regalloc operand discipline, spill-slot
      bounds, branch-target resolution and dead-marking soundness.

   Exit status is non-zero if any violation is found, so the `@lint`
   dune alias can gate the test suite on it.  With --json, stdout
   carries machine-readable counter objects (one per guest plus a
   summary line) for CI trending; violations go to stderr. *)

module Counters = Dbt_util.Stats.Counters

let lint_guest ~json c failures (ops : Guest.Ops.ops) =
  let arch = ops.Guest.Ops.model.Ssa.Offline.arch in
  let gname = ops.Guest.Ops.name in
  (* Progress chatter is suppressed in JSON mode; violations go to stderr
     there so stdout stays parseable. *)
  let say fmt =
    if json then Printf.ifprintf stdout fmt else Printf.printf fmt
  in
  let shout line = if json then prerr_endline line else print_endline line in
  say "linting %s: %d decode entries, %d execute actions\n%!" gname
    (List.length arch.Adl.Ast.a_decodes)
    (List.length arch.Adl.Ast.a_executes);
  (* 1. decode table *)
  Counters.bump c "decode entries checked" ~by:(List.length arch.Adl.Ast.a_decodes);
  List.iter
    (fun v ->
      incr failures;
      Counters.bump c "decode-table violations";
      shout (Printf.sprintf "  %s: %s" gname (Adl.Declint.string_of_violation v)))
    (Adl.Declint.check_arch arch);
  (* 2. SSA after every pass at O1-O4, then the semantic layer: validate
     the optimized action against its unoptimized twin (statement ids
     are stable across passes) and range-check every bank/slot access. *)
  Ssa.Absint.reset_simplify_stats ();
  List.iter
    (fun level ->
      List.iter
        (fun (x : Adl.Ast.execute) ->
          let reference = Ssa.Build.execute arch x in
          let action = Ssa.Build.execute arch x in
          let ctx = Ssa.Offline.opt_context arch x.Adl.Ast.x_name in
          try
            Ssa.Opt.optimize ~ctx ~verify:true ~level action;
            Counters.bump c "ssa action/level sweeps verified";
            let opt_summary = Ssa.Absint.analyze ~ctx action in
            let findings, compared =
              Ssa.Absint.validate ~ctx ~opt_summary ~reference ~optimized:action ()
            in
            Counters.bump c "absint statements validated" ~by:compared;
            let rfindings, rchecked =
              Ssa.Absint.check_ranges ~ctx ~summary:opt_summary action
            in
            Counters.bump c "absint accesses range-checked" ~by:rchecked;
            let report kind fs =
              List.iter
                (fun f ->
                  incr failures;
                  Counters.bump c (kind ^ " findings");
                  shout
                    (Printf.sprintf "  %s O%d %s: %s" gname level kind
                       (Ssa.Absint.string_of_finding f)))
                fs
            in
            report "validator" findings;
            report "range-check" rfindings
          with Ssa.Verify.Invalid { action = aname; phase; violations } ->
            incr failures;
            Counters.bump c "ssa violations" ~by:(List.length violations);
            shout
              (Ssa.Verify.report
                 ~action:(Printf.sprintf "%s/%s at O%d" gname aname level)
                 ~phase violations))
        arch.Adl.Ast.a_executes)
    [ 1; 2; 3; 4 ];
  let st = Ssa.Absint.simplify_stats in
  Counters.bump c "absint-simplify branches folded" ~by:st.Ssa.Absint.branches_folded;
  Counters.bump c "absint-simplify statements folded" ~by:st.Ssa.Absint.stmts_folded;
  Counters.bump c "absint-simplify masks dropped" ~by:st.Ssa.Absint.masks_dropped;
  (* 3. HostIR on a representative translation of every O4 action *)
  let cfg =
    {
      Hostir.Dag.bank_offset = ops.Guest.Ops.bank_offset;
      slot_offset = ops.Guest.Ops.slot_offset;
      lower_intrinsic =
        (fun name ->
          match Captive.Common.softfloat_index name with
          | Some h -> Hostir.Dag.L_helper h
          | None -> Hostir.Dag.L_inline);
      effect_helper = Captive.Common.effect_helper_index;
      coproc_read_helper = Captive.Common.h_coproc_read;
      coproc_write_helper = Captive.Common.h_coproc_write;
      split_va_check = false;
      as_switch_helper = Captive.Common.h_as_switch;
    }
  in
  Hashtbl.iter
    (fun aname action ->
      (* A representative decoded instance: all fields zero, EL1.  Some
         actions cannot translate under it (e.g. dynamic widths); they
         are skipped, not failed. *)
      let field n = if n = "__el" then 1L else 0L in
      match
        let dag = Hostir.Dag.create cfg in
        Ssa.Gen.translate (Hostir.Dag.emitter dag) action ~field
          ~inc_pc:(Some ops.Guest.Ops.insn_size);
        Hostir.Dag.raw dag (Hostir.Hir.Exit 0);
        Some (Hostir.Dag.finish dag)
      with
      | exception (Ssa.Gen.Unsupported _ | Hostir.Dag.Unsupported_lowering _ | Invalid_argument _)
        ->
        Counters.bump c "hostir translations skipped"
      | None -> Counters.bump c "hostir translations skipped"
      | Some original -> (
        let ra = Hostir.Regalloc.run original in
        match Hostir.Verify.check ~original ra with
        | [] -> Counters.bump c "hostir translations verified"
        | violations ->
          incr failures;
          Counters.bump c "hostir violations" ~by:(List.length violations);
          shout (Hostir.Verify.report ~what:(gname ^ "/" ^ aname) violations)))
    ops.Guest.Ops.model.Ssa.Offline.actions

let lint_cmd =
  let guest =
    Arg.(value & opt string "all" & info [ "g"; "guest" ] ~docv:"GUEST"
           ~doc:"Guest model to lint (armv8-a, rv64im or all).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit counters as JSON on stdout (one object per guest plus a \
                 summary line); violations go to stderr.")
  in
  let run guest json =
    let guests =
      match guest with
      | "all" -> Ok [ Guest_arm.Arm.ops (); Guest_riscv.Riscv.ops () ]
      | "armv8-a" -> Ok [ Guest_arm.Arm.ops () ]
      | "rv64im" -> Ok [ Guest_riscv.Riscv.ops () ]
      | g -> Error (Printf.sprintf "unknown guest %s (expected armv8-a, rv64im or all)" g)
    in
    match guests with
    | Error msg -> `Error (true, msg)
    | Ok guests ->
    let summary = Counters.create () in
    let failures = ref 0 in
    List.iter
      (fun ops ->
        let c = Counters.create () in
        lint_guest ~json c failures ops;
        List.iter (fun (n, v) -> Counters.bump summary n ~by:v) (Counters.to_list c);
        if json then
          Printf.printf "{\"kind\":\"guest\",\"guest\":%s,\"counters\":%s}\n"
            (Dbt_util.Stats.json_string ops.Guest.Ops.name)
            (Counters.to_json c))
      guests;
    if json then
      Printf.printf "{\"kind\":\"summary\",\"guests\":%d,\"violations\":%d,\"counters\":%s}\n"
        (List.length guests) !failures (Counters.to_json summary)
    else Printf.printf "\nlint counters:\n%s" (Counters.report summary);
    if !failures = 0 then begin
      if not json then print_endline "lint: no violations";
      `Ok ()
    end
    else `Error (false, Printf.sprintf "lint: %d violation site(s)" !failures)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify decode tables, SSA passes (O1-O4) and HostIR for every guest.")
    Term.(ret (const run $ guest $ json))

(* --- mmucheck ------------------------------------------------------------------------ *)

(* Online counterpart of `lint`: boot the ARM mini-OS and RISC-V
   bare-metal MMU-stress workloads with the shadow-oracle sanitizer
   (Hvm.Sanitize) enabled — checkpointing at every host fault, flush,
   SMC invalidation and every N translated blocks — and report the
   per-checker counters.  All five checkers run at every checkpoint:
   page tables vs. shadow, TLB derivability, frame accounting, code
   cache W^X/content coherence, and the ring audit.  Exit status is
   non-zero on any finding or on a wrong guest exit code.

   --guard reruns the ARM workload with the sanitizer off and asserts
   that cycle counts and exit codes match the sanitized run exactly:
   the sanitizer charges no cycles and perturbs no statistics, so
   sanitizer-off throughput is the engine's unmodified cycle model. *)

let mmucheck_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit per-workload counter objects and a summary line as JSON on stdout; \
                 findings go to stderr.")
  in
  let guard =
    Arg.(value & flag & info [ "guard" ]
           ~doc:"Also rerun the ARM workload with the sanitizer off and assert identical \
                 cycle counts and exit code (the sanitizer is observation-free).")
  in
  let every =
    Arg.(value & opt int 32 & info [ "every" ] ~docv:"N"
           ~doc:"Extra periodic checkpoint every N translated blocks.")
  in
  let run json guard every =
    let failures = ref 0 in
    let summary = Counters.create () in
    let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
    let shout line = if json then prerr_endline line else print_endline line in
    let config =
      { Captive.Engine.default_config with Captive.Engine.sanitize = true; sanitize_every = every }
    in
    let exit_of = function
      | Captive.Engine.Poweroff c -> c
      | Captive.Engine.Cycle_limit -> -2
      | Captive.Engine.Block_limit -> -3
    in
    let run_arm ~sanitize () =
      let e =
        Captive.Engine.create ~config:{ config with Captive.Engine.sanitize } (Guest_arm.Arm.ops ())
      in
      Workloads.Kernel.install (Workloads.Kernel.captive_target e)
        ~user:(Workloads.Mmu_stress.arm_user ());
      let code = exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e) in
      (e, code)
    in
    let run_riscv () =
      let e = Captive.Engine.create ~config (Guest_riscv.Riscv.ops ()) in
      Captive.Engine.load_image e ~addr:Workloads.Mmu_stress.riscv_entry
        (Workloads.Mmu_stress.riscv_image ());
      Captive.Engine.set_entry e Workloads.Mmu_stress.riscv_entry;
      let code = exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e) in
      (e, code)
    in
    let report name (e : Captive.Engine.t) ~code ~expected =
      (* One final sweep so even a quiet run ends with a checkpoint. *)
      Captive.Engine.sanitize_check e ~reason:"final";
      match e.Captive.Engine.sanitizer with
      | None -> ()
      | Some s ->
        let fnd = Hvm.Sanitize.findings s in
        List.iter
          (fun f ->
            incr failures;
            shout (Printf.sprintf "  %s: %s" name (Hvm.Sanitize.string_of_finding f)))
          fnd;
        if code <> expected then begin
          incr failures;
          shout (Printf.sprintf "  %s: exit code %d, expected %d" name code expected)
        end;
        let c = Hvm.Sanitize.counters s in
        List.iter (fun (n, v) -> Counters.bump summary n ~by:v) (Counters.to_list c);
        if json then
          Printf.printf
            "{\"kind\":\"workload\",\"name\":%s,\"exit\":%d,\"expected\":%d,\"findings\":%d,\"counters\":%s}\n"
            (Dbt_util.Stats.json_string name) code expected (List.length fnd) (Counters.to_json c)
        else
          say "%s: exit %d (expected %d), %d finding(s)\n%s\n" name code expected
            (List.length fnd) (Counters.report c)
    in
    say "mmucheck: armv8-a mini-OS MMU stress under the shadow-oracle sanitizer\n%!";
    let e_arm, code_arm = run_arm ~sanitize:true () in
    report "armv8-a" e_arm ~code:code_arm ~expected:Workloads.Mmu_stress.arm_expected_exit;
    say "mmucheck: rv64im MMU stress under the shadow-oracle sanitizer\n%!";
    let e_rv, code_rv = run_riscv () in
    report "rv64im" e_rv ~code:code_rv ~expected:Workloads.Mmu_stress.riscv_expected_exit;
    if guard then begin
      let e_off, code_off = run_arm ~sanitize:false () in
      let cy_off = Captive.Engine.cycles e_off and cy_on = Captive.Engine.cycles e_arm in
      let ok = code_off = code_arm && cy_off = cy_on in
      if not ok then begin
        incr failures;
        shout
          (Printf.sprintf
             "  guard: sanitizer perturbs execution (off: exit %d, %d cycles; on: exit %d, %d cycles)"
             code_off cy_off code_arm cy_on)
      end;
      if json then
        Printf.printf
          "{\"kind\":\"guard\",\"cycles_off\":%d,\"cycles_on\":%d,\"exit_off\":%d,\"exit_on\":%d,\"ok\":%b}\n"
          cy_off cy_on code_off code_arm ok
      else
        say "guard: sanitizer-off cycles %d, sanitizer-on cycles %d: %s\n" cy_off cy_on
          (if ok then "identical" else "MISMATCH")
    end;
    if json then
      Printf.printf "{\"kind\":\"summary\",\"workloads\":2,\"findings\":%d,\"counters\":%s}\n"
        !failures (Counters.to_json summary)
    else say "\nmmucheck counters:\n%s" (Counters.report summary);
    if !failures = 0 then begin
      if not json then print_endline "mmucheck: no findings";
      `Ok ()
    end
    else `Error (false, Printf.sprintf "mmucheck: %d finding(s)" !failures)
  in
  Cmd.v
    (Cmd.info "mmucheck"
       ~doc:"Run the ARM and RISC-V MMU-stress workloads under the shadow-oracle sanitizer.")
    Term.(ret (const run $ json $ guard $ every))

(* --- stress -------------------------------------------------------------------------- *)

(* The concurrency-stress lane for the concurrent JIT.  Each seed runs
   the MMU-stress workloads (both guests: SMC, page-table churn, ring
   transitions) with worker domains, a lowered hot threshold (so region
   jobs are plentiful) and a seeded install-schedule jitter
   (Engine.stress_seed): the vCPU's drain of completed translation jobs
   is deterministically randomized, exploring different interleavings
   of publish / lookup / invalidate against the sharded code cache.
   Two oracles hold every run: the shadow-oracle MMU sanitizer (which
   also audits the published shard keys for coherence) must report zero
   findings, and the guest-visible outcome — exit code and UART
   output — must equal a single-domain reference run of the same
   workload.  Any violation fails the run. *)

let stress_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one flat JSON object per (workload, seed) run plus a summary line on \
                 stdout; findings go to stderr.")
  in
  let seeds =
    Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"N"
           ~doc:"Seeded drain schedules to explore per workload.")
  in
  let domains =
    Arg.(value & opt int 3 & info [ "domains" ] ~docv:"D"
           ~doc:"Total domains per engine: one vCPU plus D-1 JIT workers.")
  in
  let run json seeds domains =
    if seeds < 1 then `Error (true, "--seeds must be >= 1")
    else if domains < 2 then `Error (true, "--domains must be >= 2")
    else begin
      let failures = ref 0 in
      let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
      let shout line = if json then prerr_endline line else print_endline line in
      let exit_of = function
        | Captive.Engine.Poweroff c -> c
        | Captive.Engine.Cycle_limit -> -2
        | Captive.Engine.Block_limit -> -3
      in
      (* Hot threshold 4: the stress workloads cross it early and often,
         so the job queue, the install path and SMC cancellation all see
         real traffic. *)
      let base_config =
        { Captive.Engine.default_config with
          Captive.Engine.sanitize = true;
          sanitize_every = 32;
          hot_threshold = 4;
        }
      in
      let run_one ~config kind =
        let e =
          match kind with
          | `Arm -> Captive.Engine.create ~config (Guest_arm.Arm.ops ())
          | `Riscv -> Captive.Engine.create ~config (Guest_riscv.Riscv.ops ())
        in
        Fun.protect
          ~finally:(fun () -> Captive.Engine.shutdown e)
          (fun () ->
            (match kind with
            | `Arm ->
              Workloads.Kernel.install (Workloads.Kernel.captive_target e)
                ~user:(Workloads.Mmu_stress.arm_user ())
            | `Riscv ->
              Captive.Engine.load_image e ~addr:Workloads.Mmu_stress.riscv_entry
                (Workloads.Mmu_stress.riscv_image ());
              Captive.Engine.set_entry e Workloads.Mmu_stress.riscv_entry);
            let code = exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e) in
            (* One final sweep so even a quiet run ends with a checkpoint. *)
            Captive.Engine.sanitize_check e ~reason:"final";
            (e, code))
      in
      let workloads =
        [ ("armv8-a-mmu", `Arm, Workloads.Mmu_stress.arm_expected_exit);
          ("rv64im-mmu", `Riscv, Workloads.Mmu_stress.riscv_expected_exit);
        ]
      in
      say "stress: %d workload(s) x %d seed(s) at %d domains (1 vCPU + %d JIT workers)\n%!"
        (List.length workloads) seeds domains (domains - 1);
      (* Single-domain references: the guest-visible outcome every
         concurrent run must reproduce. *)
      let refs =
        List.map
          (fun (name, kind, expected) ->
            let e, code = run_one ~config:base_config kind in
            if code <> expected then begin
              incr failures;
              shout
                (Printf.sprintf "stress: %s: reference exit %d, expected %d" name code expected)
            end;
            (name, (code, Captive.Engine.uart_output e)))
          workloads
      in
      let runs = ref 0 in
      List.iter
        (fun (name, kind, expected) ->
          let ref_code, ref_uart = List.assoc name refs in
          for seed = 1 to seeds do
            incr runs;
            let config =
              { base_config with
                Captive.Engine.domains;
                stress_seed = Some (Int64.of_int seed);
              }
            in
            let e, code = run_one ~config kind in
            let s = e.Captive.Engine.stats in
            let findings =
              match e.Captive.Engine.sanitizer with
              | Some sa -> Hvm.Sanitize.findings sa
              | None -> []
            in
            let uart_ok = String.equal (Captive.Engine.uart_output e) ref_uart in
            let ok = findings = [] && code = ref_code && code = expected && uart_ok in
            if not ok then begin
              incr failures;
              shout
                (Printf.sprintf
                   "stress: %s seed %d: exit %d (ref %d, expected %d), uart %s, %d sanitizer \
                    finding(s)"
                   name seed code ref_code expected
                   (if uart_ok then "ok" else "DIVERGED")
                   (List.length findings));
              List.iter
                (fun f -> shout (Printf.sprintf "  %s" (Hvm.Sanitize.string_of_finding f)))
                findings
            end;
            if json then
              Printf.printf
                "{\"kind\":\"run\",\"workload\":%s,\"seed\":%d,\"domains\":%d,\"exit\":%d,\"expected\":%d,\"exit_ref\":%d,\"uart_ok\":%b,\"findings\":%d,\"jobs_enqueued\":%d,\"jobs_completed\":%d,\"jobs_installed\":%d,\"jobs_stale\":%d,\"jobs_cancelled\":%d,\"jobs_dropped\":%d,\"smc_invalidations\":%d,\"async_jit_cycles\":%d,\"translate_cycles_template\":%d,\"translate_cycles_pipeline\":%d,\"template_blocks\":%d,\"template_misses\":%d,\"ok\":%b}\n"
                (Dbt_util.Stats.json_string name)
                seed domains code expected ref_code uart_ok (List.length findings)
                s.Captive.Engine.jobs_enqueued s.Captive.Engine.jobs_completed
                s.Captive.Engine.jobs_installed s.Captive.Engine.jobs_stale
                s.Captive.Engine.jobs_cancelled s.Captive.Engine.jobs_dropped
                s.Captive.Engine.smc_invalidations
                (Captive.Engine.async_jit_cycles e)
                s.Captive.Engine.translate_cycles_template
                s.Captive.Engine.translate_cycles_pipeline s.Captive.Engine.template_blocks
                s.Captive.Engine.template_misses ok
            else
              say "%-12s seed %3d: exit %3d, jobs %d enq / %d inst / %d stale / %d cancelled%s\n"
                name seed code s.Captive.Engine.jobs_enqueued s.Captive.Engine.jobs_installed
                s.Captive.Engine.jobs_stale s.Captive.Engine.jobs_cancelled
                (if ok then "" else "  FAIL")
          done)
        workloads;
      if json then
        Printf.printf
          "{\"kind\":\"summary\",\"workloads\":%d,\"seeds\":%d,\"domains\":%d,\"runs\":%d,\"failures\":%d,\"gate\":%s}\n"
          (List.length workloads) seeds domains !runs !failures
          (Dbt_util.Stats.json_string (if !failures = 0 then "pass" else "fail"));
      shout
        (Printf.sprintf "stress: %d run(s) at %d domains: %s" !runs domains
           (if !failures = 0 then "PASS" else "FAIL"));
      if !failures = 0 then `Ok ()
      else `Error (false, Printf.sprintf "stress: %d failure(s)" !failures)
    end
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:"Race-focused stress lane: run the MMU-stress workloads on the concurrent JIT \
             with seeded install schedules, gated by the MMU sanitizer and single-domain \
             equivalence.")
    Term.(ret (const run $ json $ seeds $ domains))

(* --- bench --------------------------------------------------------------------------- *)

(* The CI perf-regression gate.  `bench --quick` runs a handful of
   loop-heavy SPEC proxies on three engines — Captive with tiering, Captive
   tier-0-only, and the QEMU-style reference engine — and emits one flat
   JSON object per workload plus a summary (`--json`), in exactly the
   shape `bench/baseline.json` is committed in.  When a baseline is
   available the verdict gates: the run fails if tiered Captive cycles on
   any workload regress by more than 5% over the baseline, or if the
   Captive-vs-QEMU speedup drops below baseline - 5%.  Scaling reuses the
   harness's BENCH_SCALE convention so the quick set stays under ~60s. *)

module MJ = Dbt_util.Minijson

let bench_quick_names = [ "462.libquantum"; "429.mcf"; "400.perlbench"; "458.sjeng" ]
let bench_full_names = bench_quick_names @ [ "445.gobmk"; "471.omnetpp"; "483.xalancbmk" ]

type bench_row = {
  br_name : string;
  br_exit_ok : bool;
  br_tiered : int; (* tiered Captive cycles *)
  br_untiered : int;
  br_qemu : int;
  br_speedup : float; (* qemu / tiered captive *)
  br_gain_pct : float; (* (untiered - tiered) / untiered * 100 *)
  br_hinstrs : int; (* host instrs interpreted, tiered *)
  br_hinstrs_u : int; (* host instrs interpreted, tier-0 only *)
  br_rf_loads : int; (* dynamic register-file loads, tiered *)
  br_rf_stores : int; (* dynamic register-file stores (incl. writebacks) *)
  br_exec : int; (* guest-execution cycles, tiered (cycles - jit) *)
  br_jit : int; (* total JIT cycles, tiered (sync + async) *)
  br_async_jit : int; (* JIT cycles charged from worker-domain installs *)
  br_stats : Captive.Engine.phase_stats;
}

let bench_run_one ~scale ~domains ?hot_threshold name : bench_row =
  let user = (Workloads.Spec.find name).Workloads.Spec.build ~scale in
  let exit_of = function
    | Captive.Engine.Poweroff c -> c
    | Captive.Engine.Cycle_limit -> -2
    | Captive.Engine.Block_limit -> -3
  in
  let run_captive config =
    let e = Captive.Engine.create ~config (Guest_arm.Arm.ops ()) in
    Fun.protect
      ~finally:(fun () -> Captive.Engine.shutdown e)
      (fun () ->
        Workloads.Kernel.install (Workloads.Kernel.captive_target e) ~user;
        let code = exit_of (Captive.Engine.run ~max_cycles:50_000_000_000 e) in
        (e, code))
  in
  let e_t, code_t =
    let c = { Captive.Engine.default_config with Captive.Engine.domains } in
    let c =
      match hot_threshold with
      | Some h -> { c with Captive.Engine.hot_threshold = h }
      | None -> c
    in
    run_captive c
  in
  let e_u, code_u =
    run_captive { Captive.Engine.default_config with Captive.Engine.tiering = false }
  in
  let cy_u = Captive.Engine.cycles e_u in
  let e_q = Qemu_ref.Qemu_engine.create (Guest_arm.Arm.ops ()) in
  Workloads.Kernel.install (Workloads.Kernel.qemu_target e_q) ~user;
  let code_q =
    match Qemu_ref.Qemu_engine.run ~max_cycles:50_000_000_000 e_q with
    | Qemu_ref.Qemu_engine.Poweroff c -> c
    | _ -> -2
  in
  let cy_t = Captive.Engine.cycles e_t and cy_q = Qemu_ref.Qemu_engine.cycles e_q in
  {
    br_name = name;
    br_exit_ok = code_t = code_u && code_t = code_q && code_t >= 0;
    br_tiered = cy_t;
    br_untiered = cy_u;
    br_qemu = cy_q;
    br_speedup = float_of_int cy_q /. float_of_int (max 1 cy_t);
    br_gain_pct = 100. *. float_of_int (cy_u - cy_t) /. float_of_int (max 1 cy_u);
    br_hinstrs = e_t.Captive.Engine.ctx.Hostir.Exec.instrs_executed;
    br_hinstrs_u = e_u.Captive.Engine.ctx.Hostir.Exec.instrs_executed;
    br_rf_loads = e_t.Captive.Engine.ctx.Hostir.Exec.rf_loads;
    br_rf_stores = e_t.Captive.Engine.ctx.Hostir.Exec.rf_stores;
    br_exec = Captive.Engine.exec_cycles e_t;
    br_jit = Captive.Engine.jit_cycles e_t;
    br_async_jit = Captive.Engine.async_jit_cycles e_t;
    br_stats = e_t.Captive.Engine.stats;
  }

(* translate_cpgi: simulated translate cycles per guest instruction
   translated — the ROADMAP's translation-cost metric, and what the
   template tier and the AOT warm-boot gate drive toward zero. *)
let bench_cpgi (s : Captive.Engine.phase_stats) =
  float_of_int s.Captive.Engine.translate_cycles
  /. float_of_int (max 1 s.Captive.Engine.guest_instrs_translated)

let bench_row_json r =
  let s = r.br_stats in
  (* Per-phase translate-time breakdown (milliseconds): lets the CI perf
     gate's artifact show where translate time went, so a regression in
     e.g. the analysis phase is attributable from the JSON alone.  The
     baseline gate itself reads only captive_cycles, speedup and
     translate_cpgi.  The translate ledger and wall timers are split per
     tier: template (tier minus one) vs pipeline (tier 0 + regions). *)
  let ms t = 1000. *. t in
  let cpgi = bench_cpgi s in
  Printf.sprintf
    "{\"kind\":\"workload\",\"name\":%s,\"exit_ok\":%b,\"captive_cycles\":%d,\"exec_cycles\":%d,\"jit_cycles\":%d,\"async_jit_cycles\":%d,\"captive_untiered_cycles\":%d,\"qemu_cycles\":%d,\"speedup\":%.4f,\"tiered_gain_pct\":%.2f,\"host_instrs\":%d,\"host_instrs_untiered\":%d,\"promotions\":%d,\"regions\":%d,\"region_blocks\":%d,\"region_entries\":%d,\"region_block_execs\":%d,\"region_dead_stores\":%d,\"rf_loads\":%d,\"rf_stores\":%d,\"rf_promoted\":%d,\"region_wb_entries\":%d,\"mem_loads_elided\":%d,\"stores_forwarded\":%d,\"absint_branches_folded\":%d,\"absint_consts_folded\":%d,\"absint_masks_dropped\":%d,\"absint_divs_reduced\":%d,\"absint_dead_deleted\":%d,\"translate_cycles\":%d,\"translate_cycles_template\":%d,\"translate_cycles_pipeline\":%d,\"translate_cpgi\":%.2f,\"template_blocks\":%d,\"template_instrs\":%d,\"template_misses\":%d,\"template_fallback_blocks\":%d,\"templates_mined\":%d,\"t_decode_ms\":%.2f,\"t_translate_ms\":%.2f,\"t_template_ms\":%.2f,\"t_tier0_ms\":%.2f,\"t_region_ms\":%.2f,\"t_regalloc_ms\":%.2f,\"t_encode_ms\":%.2f,\"t_validate_ms\":%.2f,\"t_analyze_ms\":%.2f}"
    (Dbt_util.Stats.json_string r.br_name)
    r.br_exit_ok r.br_tiered r.br_exec r.br_jit r.br_async_jit r.br_untiered r.br_qemu
    r.br_speedup r.br_gain_pct r.br_hinstrs
    r.br_hinstrs_u s.Captive.Engine.promotions s.Captive.Engine.regions_formed
    s.Captive.Engine.region_blocks s.Captive.Engine.region_entries
    s.Captive.Engine.region_block_execs s.Captive.Engine.region_dead_stores r.br_rf_loads
    r.br_rf_stores s.Captive.Engine.rf_promoted s.Captive.Engine.region_wb_entries
    s.Captive.Engine.mem_loads_elided s.Captive.Engine.stores_forwarded
    s.Captive.Engine.absint_branches_folded s.Captive.Engine.absint_consts_folded
    s.Captive.Engine.absint_masks_dropped s.Captive.Engine.absint_divs_reduced
    s.Captive.Engine.absint_dead_deleted s.Captive.Engine.translate_cycles
    s.Captive.Engine.translate_cycles_template s.Captive.Engine.translate_cycles_pipeline cpgi
    s.Captive.Engine.template_blocks s.Captive.Engine.template_instrs
    s.Captive.Engine.template_misses s.Captive.Engine.template_fallback_blocks
    s.Captive.Engine.templates_mined
    (ms s.Captive.Engine.t_decode)
    (ms s.Captive.Engine.t_translate) (ms s.Captive.Engine.t_template)
    (ms s.Captive.Engine.t_tier0) (ms s.Captive.Engine.t_region)
    (ms s.Captive.Engine.t_regalloc)
    (ms s.Captive.Engine.t_encode) (ms s.Captive.Engine.t_validate)
    (ms s.Captive.Engine.t_analyze)

(* Parse a committed baseline: one flat JSON object per line, keyed by
   "name".  "captive_cycles", "speedup" and "translate_cpgi" (when
   present) gate with tolerance; "exec_cycles"/"jit_cycles" (when
   present) gate bit-exactly under --exact — the determinism lane's
   cycle-identity check. *)
let bench_load_baseline file :
    (string * (float * float * float option * (float * float) option)) list =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let rows = ref [] in
    (try
       while true do
         let line = input_line ic in
         match MJ.parse_line_opt line with
         | Some fields when MJ.find_string fields "kind" = Some "workload" -> (
           match
             (MJ.find_string fields "name", MJ.find_number fields "captive_cycles",
              MJ.find_number fields "speedup")
           with
           | Some n, Some c, Some s ->
             let xj =
               match
                 (MJ.find_number fields "exec_cycles", MJ.find_number fields "jit_cycles")
               with
               | Some x, Some j -> Some (x, j)
               | _ -> None
             in
             rows := (n, (c, s, MJ.find_number fields "translate_cpgi", xj)) :: !rows
           | _ -> ())
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !rows
  end

let bench_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one flat JSON object per workload plus a summary line on stdout; the \
                 gate verdict goes to stderr.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Run the quick loop-heavy subset (under ~60s) used by the CI gate.")
  in
  let baseline =
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Baseline to gate against (default: bench/baseline.json when present).")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ]
           ~doc:"Determinism gate: additionally require exec_cycles and jit_cycles to be \
                 bit-identical to the baseline's (fails if the baseline lacks those \
                 fields).  Meaningful with --domains 1, where the cycle model is \
                 deterministic.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
           ~doc:"Domains for the tiered Captive engine (1 = synchronous JIT; D > 1 adds \
                 D-1 worker domains).")
  in
  let hot_threshold =
    Arg.(value & opt (some int) None & info [ "hot-threshold" ] ~docv:"N"
           ~doc:"Override the tiered engine's promotion threshold.  A large value keeps \
                 every block in the template/tier-0 stage — the CI cold-translate gate \
                 uses this to measure pure cold-boot translate cost.")
  in
  let run json quick baseline scale exact domains hot_threshold =
    let scale =
      if scale <> 1 then scale
      else try int_of_string (Sys.getenv "BENCH_SCALE") with _ -> 1
    in
    let names = if quick then bench_quick_names else bench_full_names in
    let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
    let shout line = if json then prerr_endline line else print_endline line in
    say "bench%s: %d workloads at scale %d, %d domain(s) (captive tiered / captive tier-0 / qemu)\n%!"
      (if quick then " --quick" else "")
      (List.length names) scale domains;
    let rows = List.map (bench_run_one ~scale ~domains ?hot_threshold) names in
    let failures = ref 0 in
    List.iter
      (fun r ->
        if json then print_endline (bench_row_json r)
        else
          say "%-16s captive %11d  tier-0 %11d  qemu %11d  speedup %5.2fx  tiered gain %+5.1f%%  (regions %d/%d blocks)%s\n"
            r.br_name r.br_tiered r.br_untiered r.br_qemu r.br_speedup r.br_gain_pct
            r.br_stats.Captive.Engine.regions_formed r.br_stats.Captive.Engine.region_blocks
            (if r.br_exit_ok then "" else "  EXIT MISMATCH");
        if not r.br_exit_ok then begin
          incr failures;
          shout (Printf.sprintf "bench: %s: engines disagree on exit code" r.br_name)
        end)
      rows;
    let geomean f =
      exp (List.fold_left (fun a r -> a +. log (max 1e-9 (f r))) 0. rows
           /. float_of_int (max 1 (List.length rows)))
    in
    let gm_speedup = geomean (fun r -> r.br_speedup) in
    let baseline_file =
      match baseline with
      | Some f -> f
      | None -> Filename.concat "bench" "baseline.json"
    in
    let base = bench_load_baseline baseline_file in
    let gate =
      if base = [] then begin
        if exact then begin
          incr failures;
          shout "bench: --exact requires a baseline with exec_cycles/jit_cycles"
        end;
        if exact then "fail" else "no-baseline"
      end
      else begin
        List.iter
          (fun r ->
            match List.assoc_opt r.br_name base with
            | None -> ()
            | Some (bc, bs, bcpgi, bxj) ->
              (* A --hot-threshold override changes the tiering policy, so
                 the absolute-cycles and speedup gates no longer compare
                 like with like; only translate_cpgi (what the override
                 exists to isolate) still gates. *)
              let comparable = hot_threshold = None in
              if comparable && float_of_int r.br_tiered > bc *. 1.05 then begin
                incr failures;
                shout
                  (Printf.sprintf
                     "bench: %s: captive cycles regressed >5%% (%d vs baseline %.0f)" r.br_name
                     r.br_tiered bc)
              end;
              if comparable && r.br_speedup < bs *. 0.95 then begin
                incr failures;
                shout
                  (Printf.sprintf
                     "bench: %s: captive-vs-qemu speedup %.2fx below baseline %.2fx - 5%%"
                     r.br_name r.br_speedup bs)
              end;
              (match bcpgi with
              | Some bt when bench_cpgi r.br_stats > bt *. 1.05 ->
                (* The cold-translate gate: templates must keep the
                   simulated translate cost per guest instruction from
                   creeping back up. *)
                incr failures;
                shout
                  (Printf.sprintf
                     "bench: %s: translate_cpgi regressed >5%% (%.1f vs baseline %.1f)"
                     r.br_name (bench_cpgi r.br_stats) bt)
              | _ -> ());
              if exact then begin
                match bxj with
                | None ->
                  incr failures;
                  shout
                    (Printf.sprintf
                       "bench: %s: --exact but baseline has no exec_cycles/jit_cycles"
                       r.br_name)
                | Some (bx, bj) ->
                  if float_of_int r.br_exec <> bx || float_of_int r.br_jit <> bj then begin
                    incr failures;
                    shout
                      (Printf.sprintf
                         "bench: %s: cycle split not bit-identical to baseline (exec %d vs \
                          %.0f, jit %d vs %.0f)"
                         r.br_name r.br_exec bx r.br_jit bj)
                  end
              end)
          rows;
        if !failures = 0 then "pass" else "fail"
      end
    in
    if json then
      Printf.printf
        "{\"kind\":\"summary\",\"workloads\":%d,\"scale\":%d,\"geomean_speedup\":%.4f,\"gate\":%s,\"failures\":%d}\n"
        (List.length rows) scale gm_speedup
        (Dbt_util.Stats.json_string gate)
        !failures;
    shout
      (Printf.sprintf "bench: geomean speedup %.2fx over qemu; gate vs %s: %s" gm_speedup
         (if base = [] then "(no baseline)" else baseline_file)
         (String.uppercase_ascii gate));
    if !failures = 0 then `Ok ()
    else `Error (false, Printf.sprintf "bench: %d gate failure(s)" !failures)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the perf benchmark set on all engines and gate against bench/baseline.json.")
    Term.(ret (const run $ json $ quick $ baseline $ scale_arg $ exact $ domains $ hot_threshold))

(* --- validate ------------------------------------------------------------------------ *)

(* End-to-end symbolic translation validation (Hostir.Equiv): boot the
   ARM mini-OS demo, the ARM MMU-stress workload and the RISC-V
   bare-metal MMU-stress image with `validate_translations` enabled, at
   every offline optimization level O1-O4.  Every tier-0 block (and, when
   tiering kicks in, every region) formed by the engine is symbolically
   executed alongside an unoptimized per-instruction reference emission
   from the same decode, and the exit states — PC, register file
   (promoted offsets equated through the writeback map), ordered store
   trace and helper-call arguments — are compared term-by-term.  Exit
   status is non-zero on any divergence finding or wrong guest exit
   code.  With --json, stdout carries one counter object per
   workload/level pair plus a summary line for the CI artifact;
   findings (with both term trees) go to stderr. *)

let validate_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one counter object per workload/level pair plus a summary line as \
                 JSON on stdout; divergence findings go to stderr.")
  in
  let every =
    Arg.(value & opt int 1 & info [ "every" ] ~docv:"N"
           ~doc:"Validate every Nth translated tier-0 block (regions are always \
                 validated).  1 validates everything.")
  in
  let workload =
    Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Restrict to one workload (armv8-a-boot, armv8-a-mmu, rv64im-mmu or all).")
  in
  let level =
    Arg.(value & opt int 0 & info [ "l"; "level" ] ~docv:"N"
           ~doc:"Restrict to one offline optimization level (1-4; 0 sweeps all).")
  in
  let run json every workload level =
    if every < 1 then `Error (true, "--every must be >= 1")
    else begin
      let failures = ref 0 in
      let summary = Counters.create () in
      let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
      let shout line = if json then prerr_endline line else print_endline line in
      let config =
        { Captive.Engine.default_config with
          Captive.Engine.validate_translations = true;
          validate_every = every;
        }
      in
      let exit_of = function
        | Captive.Engine.Poweroff c -> c
        | Captive.Engine.Cycle_limit -> -2
        | Captive.Engine.Block_limit -> -3
      in
      let boot_user = demo_user () in
      let spec name = (Workloads.Spec.find name).Workloads.Spec.build ~scale:1 in
      let workloads =
        List.filter
          (fun (n, _, _) -> workload = "all" || workload = n)
          [ ("armv8-a-boot", `Arm_user boot_user, 0);
            ("armv8-a-mmu", `Arm_user (Workloads.Mmu_stress.arm_user ()), Workloads.Mmu_stress.arm_expected_exit);
            ("armv8-a-libquantum", `Arm_user (spec "462.libquantum"), 8);
            ("armv8-a-mcf", `Arm_user (spec "429.mcf"), 0);
            ("armv8-a-perlbench", `Arm_user (spec "400.perlbench"), 212);
            ("armv8-a-sjeng", `Arm_user (spec "458.sjeng"), 35);
            ("armv8-a-gobmk", `Arm_user (spec "445.gobmk"), 64);
            ("armv8-a-omnetpp", `Arm_user (spec "471.omnetpp"), 220);
            ("armv8-a-xalancbmk", `Arm_user (spec "483.xalancbmk"), 0);
            ("rv64im-mmu", `Riscv_image, Workloads.Mmu_stress.riscv_expected_exit);
          ]
      in
      let levels =
        List.filter (fun l -> level = 0 || level = l) [ 1; 2; 3; 4 ]
      in
      say "validate: %d workload(s) x %d level(s) with symbolic translation validation\n%!"
        (List.length workloads) (List.length levels);
      List.iter
        (fun level ->
          List.iter
            (fun (name, kind, expected) ->
              let e, code =
                match kind with
                | `Arm_user user ->
                  let e =
                    Captive.Engine.create ~config (Guest_arm.Arm.ops ~opt_level:level ())
                  in
                  Workloads.Kernel.install (Workloads.Kernel.captive_target e) ~user;
                  (e, exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e))
                | `Riscv_image ->
                  let e =
                    Captive.Engine.create ~config (Guest_riscv.Riscv.ops ~opt_level:level ())
                  in
                  Captive.Engine.load_image e ~addr:Workloads.Mmu_stress.riscv_entry
                    (Workloads.Mmu_stress.riscv_image ());
                  Captive.Engine.set_entry e Workloads.Mmu_stress.riscv_entry;
                  (e, exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e))
              in
              let s = e.Captive.Engine.stats in
              let nb = s.Captive.Engine.blocks_validated in
              let nr = s.Captive.Engine.regions_validated in
              let nf = s.Captive.Engine.validation_findings in
              let nbd = s.Captive.Engine.validations_bounded in
              Counters.bump summary "programs validated" ~by:(nb + nr);
              Counters.bump summary "blocks validated" ~by:nb;
              Counters.bump summary "regions validated" ~by:nr;
              Counters.bump summary "divergence findings" ~by:nf;
              Counters.bump summary "bounded checks" ~by:nbd;
              if nf > 0 then begin
                failures := !failures + nf;
                List.iter
                  (fun (what, detail) ->
                    shout (Printf.sprintf "  %s O%d %s\n    %s" name level what detail))
                  (List.rev e.Captive.Engine.validation_log)
              end;
              if code <> expected then begin
                incr failures;
                shout (Printf.sprintf "  %s O%d: exit code %d, expected %d" name level code expected)
              end;
              let ms = 1000. *. s.Captive.Engine.t_validate in
              let per = ms /. float_of_int (max 1 (nb + nr)) in
              if json then
                Printf.printf
                  "{\"kind\":\"workload\",\"name\":%s,\"opt_level\":%d,\"exit\":%d,\"expected\":%d,\"blocks_validated\":%d,\"regions_validated\":%d,\"findings\":%d,\"bounded\":%d,\"validate_ms\":%.1f,\"ms_per_program\":%.3f}\n"
                  (Dbt_util.Stats.json_string name)
                  level code expected nb nr nf nbd ms per
              else
                say
                  "%-14s O%d: exit %d (expected %d), %4d blocks + %2d regions validated, %d finding(s), %d bounded, %6.1fms (%.2fms/program)\n%!"
                  name level code expected nb nr nf nbd ms per)
            workloads)
        levels;
      if json then
        Printf.printf "{\"kind\":\"summary\",\"workloads\":%d,\"failures\":%d,\"counters\":%s}\n"
          (List.length workloads * List.length levels)
          !failures (Counters.to_json summary)
      else say "\nvalidate counters:\n%s" (Counters.report summary);
      if !failures = 0 then begin
        if not json then print_endline "validate: no findings";
        `Ok ()
      end
      else `Error (false, Printf.sprintf "validate: %d finding(s)" !failures)
    end
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Symbolically validate every translation formed while running the ARM and \
             RISC-V workloads at O1-O4 against an unoptimized reference emission.")
    Term.(ret (const run $ json $ every $ workload $ level))

(* --- analyze ------------------------------------------------------------------------- *)

(* Translate-time abstract interpretation sweep (Hostir.Absint): the same
   workload matrix as `validate`, run with `analyze_translations`
   enabled.  Every tier-0 block and every flattened region the engine
   forms is pushed through the dataflow analyzer and checked against the
   static obligations — register-file accesses in bounds and aligned,
   spill-slot accesses inside the allocated frame, the promoted
   writeback discipline (dirty coverage, call barriers, staleness) — at
   every offline optimization level O1-O4.  Exit status is non-zero on
   any obligation finding or wrong guest exit code; with --json, stdout
   carries one counter object per workload/level pair plus a summary
   line for the CI artifact, and findings go to stderr. *)

let analyze_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one counter object per workload/level pair plus a summary line as \
                 JSON on stdout; obligation findings go to stderr.")
  in
  let workload =
    Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Restrict to one workload (armv8-a-boot, armv8-a-mmu, rv64im-mmu or all).")
  in
  let level =
    Arg.(value & opt int 0 & info [ "l"; "level" ] ~docv:"N"
           ~doc:"Restrict to one offline optimization level (1-4; 0 sweeps all).")
  in
  let run json workload level =
    let failures = ref 0 in
    let summary = Counters.create () in
    let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
    let shout line = if json then prerr_endline line else print_endline line in
    let config =
      { Captive.Engine.default_config with Captive.Engine.analyze_translations = true }
    in
    let exit_of = function
      | Captive.Engine.Poweroff c -> c
      | Captive.Engine.Cycle_limit -> -2
      | Captive.Engine.Block_limit -> -3
    in
    let boot_user = demo_user () in
    let spec name = (Workloads.Spec.find name).Workloads.Spec.build ~scale:1 in
    let workloads =
      List.filter
        (fun (n, _, _) -> workload = "all" || workload = n)
        [ ("armv8-a-boot", `Arm_user boot_user, 0);
          ("armv8-a-mmu", `Arm_user (Workloads.Mmu_stress.arm_user ()), Workloads.Mmu_stress.arm_expected_exit);
          ("armv8-a-libquantum", `Arm_user (spec "462.libquantum"), 8);
          ("armv8-a-mcf", `Arm_user (spec "429.mcf"), 0);
          ("armv8-a-perlbench", `Arm_user (spec "400.perlbench"), 212);
          ("armv8-a-sjeng", `Arm_user (spec "458.sjeng"), 35);
          ("armv8-a-gobmk", `Arm_user (spec "445.gobmk"), 64);
          ("armv8-a-omnetpp", `Arm_user (spec "471.omnetpp"), 220);
          ("armv8-a-xalancbmk", `Arm_user (spec "483.xalancbmk"), 0);
          ("rv64im-mmu", `Riscv_image, Workloads.Mmu_stress.riscv_expected_exit);
        ]
    in
    let levels = List.filter (fun l -> level = 0 || level = l) [ 1; 2; 3; 4 ] in
    say "analyze: %d workload(s) x %d level(s) with translate-time obligation checking\n%!"
      (List.length workloads) (List.length levels);
    List.iter
      (fun level ->
        List.iter
          (fun (name, kind, expected) ->
            let e, code =
              match kind with
              | `Arm_user user ->
                let e =
                  Captive.Engine.create ~config (Guest_arm.Arm.ops ~opt_level:level ())
                in
                Workloads.Kernel.install (Workloads.Kernel.captive_target e) ~user;
                (e, exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e))
              | `Riscv_image ->
                let e =
                  Captive.Engine.create ~config (Guest_riscv.Riscv.ops ~opt_level:level ())
                in
                Captive.Engine.load_image e ~addr:Workloads.Mmu_stress.riscv_entry
                  (Workloads.Mmu_stress.riscv_image ());
                Captive.Engine.set_entry e Workloads.Mmu_stress.riscv_entry;
                (e, exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e))
            in
            let s = e.Captive.Engine.stats in
            let nb = s.Captive.Engine.blocks_analyzed in
            let nr = s.Captive.Engine.regions_analyzed in
            let nf = s.Captive.Engine.obligation_findings in
            Counters.bump summary "programs analyzed" ~by:(nb + nr);
            Counters.bump summary "blocks analyzed" ~by:nb;
            Counters.bump summary "regions analyzed" ~by:nr;
            Counters.bump summary "obligation findings" ~by:nf;
            Counters.bump summary "absint branches folded" ~by:s.Captive.Engine.absint_branches_folded;
            Counters.bump summary "absint consts folded" ~by:s.Captive.Engine.absint_consts_folded;
            Counters.bump summary "absint masks dropped" ~by:s.Captive.Engine.absint_masks_dropped;
            Counters.bump summary "absint divs reduced" ~by:s.Captive.Engine.absint_divs_reduced;
            Counters.bump summary "absint dead deleted" ~by:s.Captive.Engine.absint_dead_deleted;
            if nf > 0 then begin
              failures := !failures + nf;
              List.iter
                (fun (what, detail) ->
                  shout (Printf.sprintf "  %s O%d %s\n    %s" name level what detail))
                (List.rev e.Captive.Engine.analysis_log)
            end;
            if code <> expected then begin
              incr failures;
              shout (Printf.sprintf "  %s O%d: exit code %d, expected %d" name level code expected)
            end;
            let ms = 1000. *. s.Captive.Engine.t_analyze in
            let per = ms /. float_of_int (max 1 (nb + nr)) in
            if json then
              Printf.printf
                "{\"kind\":\"workload\",\"name\":%s,\"opt_level\":%d,\"exit\":%d,\"expected\":%d,\"blocks_analyzed\":%d,\"regions_analyzed\":%d,\"findings\":%d,\"branches_folded\":%d,\"consts_folded\":%d,\"masks_dropped\":%d,\"divs_reduced\":%d,\"dead_deleted\":%d,\"analyze_ms\":%.1f,\"ms_per_program\":%.3f}\n"
                (Dbt_util.Stats.json_string name)
                level code expected nb nr nf s.Captive.Engine.absint_branches_folded
                s.Captive.Engine.absint_consts_folded s.Captive.Engine.absint_masks_dropped
                s.Captive.Engine.absint_divs_reduced s.Captive.Engine.absint_dead_deleted ms per
            else
              say
                "%-20s O%d: exit %d (expected %d), %5d blocks + %3d regions analyzed, %d finding(s), %6.1fms (%.3fms/program)\n%!"
                name level code expected nb nr nf ms per)
          workloads)
      levels;
    if json then
      Printf.printf "{\"kind\":\"summary\",\"workloads\":%d,\"failures\":%d,\"counters\":%s}\n"
        (List.length workloads * List.length levels)
        !failures (Counters.to_json summary)
    else say "\nanalyze counters:\n%s" (Counters.report summary);
    if !failures = 0 then begin
      if not json then print_endline "analyze: no findings";
      `Ok ()
    end
    else `Error (false, Printf.sprintf "analyze: %d finding(s)" !failures)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Check translate-time static obligations (register-file bounds, frame bounds, \
             writeback discipline) on every translation formed while running the ARM and \
             RISC-V workloads at O1-O4.")
    Term.(ret (const run $ json $ workload $ level))

(* --- relocheck ----------------------------------------------------------------------- *)

(* Relocation-cleanliness sweep (Hostir.Reloc): the same workload matrix
   as `validate`/`analyze`, run with `reloc_check` enabled.  Every tier-0
   block and every region unit the engine forms is decoded back from its
   encoded bytes and classified operand by operand — no absolute host
   addresses in immediates (abs-host-addr), control leaves only through
   numbered chain/exit sites (unnumbered-exit), environment-relative
   references in bounds (env-immediate), helper references by stable
   symbol id (helper-by-addr) — and audited for encoding determinism:
   decode -> re-encode must reproduce the byte stream, and re-encoding
   the allocated instruction stream must too (nondet-encoding).  Clean
   programs receive the certificate the persistent AOT cache consumes;
   a single finding at any level is a hard failure, because a flagged
   translation must never be persisted. *)

let relocheck_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one counter object per workload/level pair plus a summary line as \
                 JSON on stdout; relocation findings go to stderr.")
  in
  let workload =
    Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Restrict to one workload (armv8-a-boot, armv8-a-mmu, rv64im-mmu or all).")
  in
  let level =
    Arg.(value & opt int 0 & info [ "l"; "level" ] ~docv:"N"
           ~doc:"Restrict to one offline optimization level (1-4; 0 sweeps all).")
  in
  let run json workload level =
    let failures = ref 0 in
    let summary = Counters.create () in
    let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
    let shout line = if json then prerr_endline line else print_endline line in
    let config =
      { Captive.Engine.default_config with Captive.Engine.reloc_check = true }
    in
    let exit_of = function
      | Captive.Engine.Poweroff c -> c
      | Captive.Engine.Cycle_limit -> -2
      | Captive.Engine.Block_limit -> -3
    in
    let boot_user = demo_user () in
    let spec name = (Workloads.Spec.find name).Workloads.Spec.build ~scale:1 in
    let workloads =
      List.filter
        (fun (n, _, _) -> workload = "all" || workload = n)
        [ ("armv8-a-boot", `Arm_user boot_user, 0);
          ("armv8-a-mmu", `Arm_user (Workloads.Mmu_stress.arm_user ()), Workloads.Mmu_stress.arm_expected_exit);
          ("armv8-a-libquantum", `Arm_user (spec "462.libquantum"), 8);
          ("armv8-a-mcf", `Arm_user (spec "429.mcf"), 0);
          ("armv8-a-perlbench", `Arm_user (spec "400.perlbench"), 212);
          ("armv8-a-sjeng", `Arm_user (spec "458.sjeng"), 35);
          ("armv8-a-gobmk", `Arm_user (spec "445.gobmk"), 64);
          ("armv8-a-omnetpp", `Arm_user (spec "471.omnetpp"), 220);
          ("armv8-a-xalancbmk", `Arm_user (spec "483.xalancbmk"), 0);
          ("rv64im-mmu", `Riscv_image, Workloads.Mmu_stress.riscv_expected_exit);
        ]
    in
    let levels = List.filter (fun l -> level = 0 || level = l) [ 1; 2; 3; 4 ] in
    say "relocheck: %d workload(s) x %d level(s) with relocation-cleanliness certification\n%!"
      (List.length workloads) (List.length levels);
    List.iter
      (fun level ->
        List.iter
          (fun (name, kind, expected) ->
            let e, code =
              match kind with
              | `Arm_user user ->
                let e =
                  Captive.Engine.create ~config (Guest_arm.Arm.ops ~opt_level:level ())
                in
                Workloads.Kernel.install (Workloads.Kernel.captive_target e) ~user;
                (e, exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e))
              | `Riscv_image ->
                let e =
                  Captive.Engine.create ~config (Guest_riscv.Riscv.ops ~opt_level:level ())
                in
                Captive.Engine.load_image e ~addr:Workloads.Mmu_stress.riscv_entry
                  (Workloads.Mmu_stress.riscv_image ());
                Captive.Engine.set_entry e Workloads.Mmu_stress.riscv_entry;
                (e, exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e))
            in
            let s = e.Captive.Engine.stats in
            let nb = s.Captive.Engine.blocks_certified in
            let nr = s.Captive.Engine.regions_certified in
            let nf = s.Captive.Engine.reloc_findings in
            Counters.bump summary "programs certified" ~by:(nb + nr);
            Counters.bump summary "blocks certified" ~by:nb;
            Counters.bump summary "regions certified" ~by:nr;
            Counters.bump summary "relocation findings" ~by:nf;
            if nf > 0 then begin
              failures := !failures + nf;
              List.iter
                (fun (what, detail) ->
                  shout (Printf.sprintf "  %s O%d %s\n    %s" name level what detail))
                (List.rev (Captive.Engine.reloc_log e))
            end;
            if code <> expected then begin
              incr failures;
              shout (Printf.sprintf "  %s O%d: exit code %d, expected %d" name level code expected)
            end;
            let ms = 1000. *. s.Captive.Engine.t_reloc in
            let per = ms /. float_of_int (max 1 (nb + nr)) in
            if json then
              Printf.printf
                "{\"kind\":\"workload\",\"name\":%s,\"opt_level\":%d,\"exit\":%d,\"expected\":%d,\"blocks_certified\":%d,\"regions_certified\":%d,\"findings\":%d,\"relocheck_ms\":%.1f,\"ms_per_program\":%.3f}\n"
                (Dbt_util.Stats.json_string name)
                level code expected nb nr nf ms per
            else
              say
                "%-20s O%d: exit %d (expected %d), %5d blocks + %3d regions certified, %d finding(s), %6.1fms (%.3fms/program)\n%!"
                name level code expected nb nr nf ms per)
          workloads)
      levels;
    if json then
      Printf.printf "{\"kind\":\"summary\",\"workloads\":%d,\"failures\":%d,\"counters\":%s}\n"
        (List.length workloads * List.length levels)
        !failures (Counters.to_json summary)
    else say "\nrelocheck counters:\n%s" (Counters.report summary);
    if !failures = 0 then begin
      if not json then print_endline "relocheck: no findings";
      `Ok ()
    end
    else `Error (false, Printf.sprintf "relocheck: %d finding(s)" !failures)
  in
  Cmd.v
    (Cmd.info "relocheck"
       ~doc:"Certify every translation formed while running the ARM and RISC-V workloads \
             at O1-O4 relocation-clean (no absolute host addresses, numbered exits only, \
             environment references in bounds, deterministic encoding).")
    Term.(ret (const run $ json $ workload $ level))

(* --- aot ----------------------------------------------------------------------------- *)

(* Warm-boot gate for the persistent AOT translation cache.  Each
   quick-bench workload runs twice against the same cache directory: a
   cold boot that translates everything and persists each certified
   translation, then a warm boot on a fresh engine that reinstalls the
   persisted code (guest bytes verified, certificate re-checked) instead
   of retranslating.  The gate: the warm boot must spend at most
   --max-ratio (default 10) percent of the cold boot's simulated
   translate cycles, guest-visible execution cycles (total minus
   JIT-charged) must be bit-identical — translation is pure overhead, so
   where the code came from must be invisible to the guest — exit codes
   must match, and the warm boot must reject nothing it stored. *)

let aot_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one flat JSON object per workload plus a summary line on stdout; the \
                 gate verdict goes to stderr.")
  in
  let dir =
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Cache directory root (default: _captive_aot, wiped per workload before \
                 the cold run and removed afterwards unless --keep).")
  in
  let keep =
    Arg.(value & flag & info [ "keep" ]
           ~doc:"Keep the cache directory after the run instead of removing it.")
  in
  let max_ratio =
    Arg.(value & opt float 10.0 & info [ "max-ratio" ] ~docv:"PCT"
           ~doc:"Fail if warm-boot translate cycles exceed this percentage of cold.")
  in
  let run json dir keep max_ratio scale =
    let scale =
      if scale <> 1 then scale
      else try int_of_string (Sys.getenv "BENCH_SCALE") with _ -> 1
    in
    let root = match dir with Some d -> d | None -> "_captive_aot" in
    let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
    let shout line = if json then prerr_endline line else print_endline line in
    let exit_of = function
      | Captive.Engine.Poweroff c -> c
      | Captive.Engine.Cycle_limit -> -2
      | Captive.Engine.Block_limit -> -3
    in
    let wipe d =
      if Sys.file_exists d && Sys.is_directory d then
        Array.iter
          (fun f -> if Filename.check_suffix f ".aot" then Sys.remove (Filename.concat d f))
          (Sys.readdir d)
    in
    let rmdir_if_empty d =
      if Sys.file_exists d && Sys.is_directory d && Array.length (Sys.readdir d) = 0 then
        Sys.rmdir d
    in
    let failures = ref 0 in
    say "aot: %d workloads at scale %d (cold boot stores, warm boot reloads; cache root %s)\n%!"
      (List.length bench_quick_names) scale root;
    let rows =
      List.map
        (fun name ->
          let user = (Workloads.Spec.find name).Workloads.Spec.build ~scale in
          let wdir = Filename.concat root name in
          wipe wdir;
          let boot () =
            let config =
              { Captive.Engine.default_config with Captive.Engine.aot_dir = Some wdir }
            in
            let e = Captive.Engine.create ~config (Guest_arm.Arm.ops ()) in
            Workloads.Kernel.install (Workloads.Kernel.captive_target e) ~user;
            let code = exit_of (Captive.Engine.run ~max_cycles:50_000_000_000 e) in
            (e, code)
          in
          let e_c, code_c = boot () in
          let e_w, code_w = boot () in
          let sc = e_c.Captive.Engine.stats and sw = e_w.Captive.Engine.stats in
          let tc = sc.Captive.Engine.translate_cycles in
          let tw = sw.Captive.Engine.translate_cycles in
          let xc = Captive.Engine.exec_cycles e_c in
          let xw = Captive.Engine.exec_cycles e_w in
          let ratio = 100. *. float_of_int tw /. float_of_int (max 1 tc) in
          let ok =
            code_c = code_w && code_c >= 0 && xc = xw && ratio <= max_ratio
            && sw.Captive.Engine.aot_rejects = 0
            && sw.Captive.Engine.reloc_findings = 0
          in
          if not ok then begin
            incr failures;
            if code_c <> code_w || code_c < 0 then
              shout (Printf.sprintf "aot: %s: exit codes cold %d / warm %d" name code_c code_w);
            if xc <> xw then
              shout
                (Printf.sprintf "aot: %s: guest execution cycles differ (cold %d, warm %d)"
                   name xc xw);
            if ratio > max_ratio then
              shout
                (Printf.sprintf
                   "aot: %s: warm translate cycles %d are %.1f%% of cold %d (limit %.0f%%)"
                   name tw ratio tc max_ratio);
            if sw.Captive.Engine.aot_rejects > 0 then
              shout
                (Printf.sprintf "aot: %s: warm boot rejected %d cache entr(ies)" name
                   sw.Captive.Engine.aot_rejects);
            if sw.Captive.Engine.reloc_findings > 0 then begin
              shout
                (Printf.sprintf "aot: %s: %d relocation finding(s)" name
                   sw.Captive.Engine.reloc_findings);
              List.iter
                (fun (what, detail) ->
                  shout (Printf.sprintf "  %s %s\n    %s" name what detail))
                (List.rev (Captive.Engine.reloc_log e_w))
            end
          end;
          if json then
            Printf.printf
              "{\"kind\":\"workload\",\"name\":%s,\"ok\":%b,\"exit_cold\":%d,\"exit_warm\":%d,\"cold_translate_cycles\":%d,\"warm_translate_cycles\":%d,\"warm_ratio_pct\":%.2f,\"cold_template_cycles\":%d,\"cold_pipeline_cycles\":%d,\"warm_template_cycles\":%d,\"warm_pipeline_cycles\":%d,\"template_blocks_cold\":%d,\"template_blocks_warm\":%d,\"exec_cycles_cold\":%d,\"exec_cycles_warm\":%d,\"exec_identical\":%b,\"aot_stores\":%d,\"aot_hits\":%d,\"aot_misses\":%d,\"aot_rejects\":%d,\"cache_entries\":%d}\n"
              (Dbt_util.Stats.json_string name)
              ok code_c code_w tc tw ratio sc.Captive.Engine.translate_cycles_template
              sc.Captive.Engine.translate_cycles_pipeline
              sw.Captive.Engine.translate_cycles_template
              sw.Captive.Engine.translate_cycles_pipeline sc.Captive.Engine.template_blocks
              sw.Captive.Engine.template_blocks xc xw (xc = xw) sc.Captive.Engine.aot_stores
              sw.Captive.Engine.aot_hits sw.Captive.Engine.aot_misses
              sw.Captive.Engine.aot_rejects
              (Captive.Engine.aot_entry_count e_w)
          else
            say
              "%-16s cold translate %9d  warm %7d (%5.1f%%)  exec %11d %s  stored %3d, reloaded %3d%s\n"
              name tc tw ratio xc
              (if xc = xw then "==" else "!=")
              sc.Captive.Engine.aot_stores sw.Captive.Engine.aot_hits
              (if ok then "" else "  FAIL");
          if not keep then begin
            wipe wdir;
            rmdir_if_empty wdir
          end;
          (name, ok))
        bench_quick_names
    in
    if not keep then rmdir_if_empty root;
    if json then
      Printf.printf "{\"kind\":\"summary\",\"workloads\":%d,\"scale\":%d,\"failures\":%d,\"gate\":%s}\n"
        (List.length rows) scale !failures
        (Dbt_util.Stats.json_string (if !failures = 0 then "pass" else "fail"));
    shout
      (Printf.sprintf "aot: warm-boot gate (<= %.0f%% of cold translate cycles, \
                       bit-identical execution): %s"
         max_ratio
         (if !failures = 0 then "PASS" else "FAIL"));
    if !failures = 0 then `Ok ()
    else `Error (false, Printf.sprintf "aot: %d gate failure(s)" !failures)
  in
  Cmd.v
    (Cmd.info "aot"
       ~doc:"Run each quick-bench workload cold then warm against the same persistent AOT \
             cache and gate: warm translate cycles <= 10% of cold, guest execution cycles \
             bit-identical, nothing rejected.")
    Term.(ret (const run $ json $ dir $ keep $ max_ratio $ scale_arg))

(* --- mine-templates ------------------------------------------------------------------ *)

(* Offline template mining: run every decode entry's witness encoding
   through the template miner (the same table the engine builds lazily
   at translate time) and report the per-form result — variants, pinned
   fields, holes, host instructions, and untemplatable forms with the
   reason.  This is the offline counterpart of the engine's on-demand
   mining: the translate-time cost model charges zero simulated cycles
   for mining because this subcommand can build the identical table
   ahead of time. *)
let guest_arg =
  Arg.(value & opt string "all" & info [ "guest" ] ~docv:"GUEST"
         ~doc:"Guest model to mine: armv8-a, rv64im or all.")

let mine_templates_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one flat JSON object per (form, MMU regime) plus a summary per guest.")
  in
  let run json guest_name =
    let guests =
      match guest_name with
      | "all" -> [ Guest_arm.Arm.ops (); Guest_riscv.Riscv.ops () ]
      | "armv8-a" | "arm" -> [ Guest_arm.Arm.ops () ]
      | "rv64im" | "riscv" -> [ Guest_riscv.Riscv.ops () ]
      | s -> failwith (Printf.sprintf "unknown guest %S (armv8-a|rv64im|all)" s)
    in
    let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
    List.iter
      (fun (guest : Guest.Ops.ops) ->
        let e = Captive.Engine.create guest in
        let tt = Captive.Engine.template_table e in
        let model = guest.Guest.Ops.model in
        let mined = ref 0 and missed = ref 0 in
        (* One witness per decode entry: the entry's own match value is
           an encoding that selects it (more specific entries may still
           shadow it — the decoder, not the miner, owns that choice). *)
        List.iter
          (fun (entry : Adl.Decode.entry) ->
            match Ssa.Offline.decode model entry.Adl.Decode.value with
            | None -> ()
            | Some d ->
              let action = Ssa.Offline.action model d.Adl.Decode.name in
              let inc_pc =
                if d.Adl.Decode.ends_block then None else Some guest.Guest.Ops.insn_size
              in
              List.iter
                (fun (el, mmu_on) ->
                  let field = Captive.Engine.field_of ~el d in
                  match
                    Hostir.Template.fragment tt ~action ~name:d.Adl.Decode.name ~inc_pc
                      ~mmu_on ~field
                  with
                  | Hostir.Template.Hit _ -> ()
                  | Hostir.Template.Mined _ -> incr mined
                  | Hostir.Template.Miss _ -> incr missed)
                [ (0, false); (0, true); (1, false); (1, true) ])
          model.Ssa.Offline.decoder.Adl.Decode.entries;
        let report = Captive.Engine.template_report e in
        let live = List.filter (fun r -> r.Hostir.Template.fr_dead = None) report in
        let dead = List.filter (fun r -> r.Hostir.Template.fr_dead <> None) report in
        if json then
          List.iter
            (fun (r : Hostir.Template.form_report) ->
              Printf.printf
                "{\"kind\":\"form\",\"guest\":%s,\"name\":%s,\"mmu\":%b,\"variants\":%d,\"pins\":%d,\"host_instrs\":%d,\"holes\":%d,\"dead\":%s}\n"
                (Dbt_util.Stats.json_string guest.Guest.Ops.name)
                (Dbt_util.Stats.json_string r.Hostir.Template.fr_name)
                r.Hostir.Template.fr_mmu r.Hostir.Template.fr_variants
                r.Hostir.Template.fr_pins r.Hostir.Template.fr_host_instrs
                r.Hostir.Template.fr_holes
                (match r.Hostir.Template.fr_dead with
                | None -> "null"
                | Some reason -> Dbt_util.Stats.json_string reason))
            report
        else begin
          say "\n=== %s: %d forms mined (%d live, %d untemplatable) ===\n\n"
            guest.Guest.Ops.name (List.length report) (List.length live) (List.length dead);
          say "%-28s %4s %9s %5s %11s %6s\n" "form" "mmu" "variants" "pins" "host-instrs"
            "holes";
          List.iter
            (fun (r : Hostir.Template.form_report) ->
              say "%-28s %4s %9d %5d %11d %6d\n" r.Hostir.Template.fr_name
                (if r.Hostir.Template.fr_mmu then "on" else "off")
                r.Hostir.Template.fr_variants r.Hostir.Template.fr_pins
                r.Hostir.Template.fr_host_instrs r.Hostir.Template.fr_holes)
            live;
          if dead <> [] then begin
            say "\nuntemplatable forms (cold-pipeline fallback):\n";
            List.iter
              (fun (r : Hostir.Template.form_report) ->
                say "  %-28s %s\n" r.Hostir.Template.fr_name
                  (Option.value ~default:"?" r.Hostir.Template.fr_dead))
              dead
          end
        end;
        if json then
          Printf.printf
            "{\"kind\":\"summary\",\"guest\":%s,\"forms\":%d,\"live\":%d,\"dead\":%d,\"variants\":%d,\"fragments_mined\":%d,\"witness_misses\":%d}\n"
            (Dbt_util.Stats.json_string guest.Guest.Ops.name)
            (List.length report) (List.length live) (List.length dead)
            (Hostir.Template.variant_count tt)
            !mined !missed
        else
          say "\n%s: %d template variants live, %d witness encodings untemplatable\n"
            guest.Guest.Ops.name
            (Hostir.Template.variant_count tt)
            !missed)
      guests;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "mine-templates"
       ~doc:"Mine the per-opcode translation template table offline and report per-form \
             variants, pins, holes and untemplatable forms.")
    Term.(ret (const run $ json $ guest_arg))

(* --- templates (coverage report) ------------------------------------------------------- *)

(* Template-tier coverage: run the quick-bench workloads (plus the two
   MMU-stress images) and report, per workload, the share of translated
   guest instructions served by the template tier, with a per-opcode
   miss table for whatever fell back to the cold pipeline. *)
let templates_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one flat JSON object per workload plus a summary line.")
  in
  let min_coverage =
    Arg.(value & opt float 0. & info [ "min-coverage" ] ~docv:"PCT"
           ~doc:"Fail if any workload's template coverage (percent of translated guest \
                 instructions served by the template tier) falls below this.")
  in
  let hot_threshold =
    Arg.(value & opt (some int) None & info [ "hot-threshold" ] ~docv:"N"
           ~doc:"Override the promotion threshold (a large value isolates the cold path: \
                 no promotion-time pipeline re-translation in the denominator).")
  in
  let run json min_coverage hot_threshold scale =
    let scale =
      if scale <> 1 then scale
      else try int_of_string (Sys.getenv "BENCH_SCALE") with _ -> 1
    in
    let say fmt = if json then Printf.ifprintf stdout fmt else Printf.printf fmt in
    let shout line = if json then prerr_endline line else print_endline line in
    let exit_of = function
      | Captive.Engine.Poweroff c -> c
      | Captive.Engine.Cycle_limit -> -2
      | Captive.Engine.Block_limit -> -3
    in
    let config =
      let c = Captive.Engine.default_config in
      match hot_threshold with
      | Some h -> { c with Captive.Engine.hot_threshold = h }
      | None -> c
    in
    let run_workload = function
      | `Spec name ->
        let user = (Workloads.Spec.find name).Workloads.Spec.build ~scale in
        let e = Captive.Engine.create ~config (Guest_arm.Arm.ops ()) in
        Workloads.Kernel.install (Workloads.Kernel.captive_target e) ~user;
        (name, e, exit_of (Captive.Engine.run ~max_cycles:50_000_000_000 e))
      | `Arm_mmu ->
        let e = Captive.Engine.create ~config (Guest_arm.Arm.ops ()) in
        Workloads.Kernel.install (Workloads.Kernel.captive_target e)
          ~user:(Workloads.Mmu_stress.arm_user ());
        ("armv8-a-mmu", e, exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e))
      | `Riscv_mmu ->
        let e = Captive.Engine.create ~config (Guest_riscv.Riscv.ops ()) in
        Captive.Engine.load_image e ~addr:Workloads.Mmu_stress.riscv_entry
          (Workloads.Mmu_stress.riscv_image ());
        Captive.Engine.set_entry e Workloads.Mmu_stress.riscv_entry;
        ("rv64im-mmu", e, exit_of (Captive.Engine.run ~max_cycles:2_000_000_000 e))
    in
    let workloads =
      List.map (fun n -> `Spec n) bench_quick_names @ [ `Arm_mmu; `Riscv_mmu ]
    in
    let failures = ref 0 in
    let coverages = ref [] in
    say "templates: coverage over %d workloads at scale %d%s\n%!" (List.length workloads)
      scale
      (match hot_threshold with
      | Some h -> Printf.sprintf " (hot threshold %d)" h
      | None -> "");
    List.iter
      (fun w ->
        let name, e, code = run_workload w in
        let s = e.Captive.Engine.stats in
        let covered = s.Captive.Engine.template_instrs in
        let total = s.Captive.Engine.guest_instrs_translated in
        let pct = 100. *. float_of_int covered /. float_of_int (max 1 total) in
        coverages := pct :: !coverages;
        let misses = Captive.Engine.template_miss_table e in
        if code < 0 then begin
          incr failures;
          shout (Printf.sprintf "templates: %s: abnormal exit %d" name code)
        end;
        if pct < min_coverage then begin
          incr failures;
          shout
            (Printf.sprintf "templates: %s: coverage %.1f%% below --min-coverage %.1f%%" name
               pct min_coverage)
        end;
        if json then begin
          let miss_json =
            String.concat ","
              (List.map
                 (fun (op, n) ->
                   Printf.sprintf "{\"op\":%s,\"count\":%d}" (Dbt_util.Stats.json_string op) n)
                 misses)
          in
          Printf.printf
            "{\"kind\":\"workload\",\"name\":%s,\"exit\":%d,\"coverage_pct\":%.2f,\"template_instrs\":%d,\"guest_instrs_translated\":%d,\"template_blocks\":%d,\"blocks_translated\":%d,\"template_fallback_blocks\":%d,\"template_misses\":%d,\"templates_mined\":%d,\"translate_cycles_template\":%d,\"translate_cycles_pipeline\":%d,\"misses\":[%s]}\n"
            (Dbt_util.Stats.json_string name)
            code pct covered total s.Captive.Engine.template_blocks
            s.Captive.Engine.blocks_translated s.Captive.Engine.template_fallback_blocks
            s.Captive.Engine.template_misses s.Captive.Engine.templates_mined
            s.Captive.Engine.translate_cycles_template
            s.Captive.Engine.translate_cycles_pipeline miss_json
        end
        else begin
          say "%-16s coverage %5.1f%%  (%d/%d instrs, %d/%d blocks, %d mined)%s\n" name pct
            covered total s.Captive.Engine.template_blocks
            s.Captive.Engine.blocks_translated s.Captive.Engine.templates_mined
            (if code >= 0 then "" else "  ABNORMAL EXIT");
          List.iteri
            (fun i (op, n) -> if i < 8 then say "    miss %-24s x%d\n" op n)
            misses
        end)
      workloads;
    let min_pct = List.fold_left min 100. !coverages in
    if json then
      Printf.printf
        "{\"kind\":\"summary\",\"workloads\":%d,\"scale\":%d,\"min_coverage_pct\":%.2f,\"gate\":%s,\"failures\":%d}\n"
        (List.length workloads) scale min_pct
        (Dbt_util.Stats.json_string (if !failures = 0 then "pass" else "fail"))
        !failures;
    shout
      (Printf.sprintf "templates: min coverage %.1f%% over %d workloads: %s" min_pct
         (List.length workloads)
         (if !failures = 0 then "PASS" else "FAIL"));
    if !failures = 0 then `Ok ()
    else `Error (false, Printf.sprintf "templates: %d failure(s)" !failures)
  in
  Cmd.v
    (Cmd.info "templates"
       ~doc:"Report template-tier coverage per workload (share of translated guest \
             instructions served by templates) with a per-opcode miss table.")
    Term.(ret (const run $ json $ min_coverage $ hot_threshold $ scale_arg))

let () =
  let doc = "Retargetable system-level DBT hypervisor (Captive reproduction)" in
  let man =
    [ `S Manpage.s_synopsis;
      `P "$(mname) $(b,spec) $(i,BENCHMARK) [$(b,--engine) $(i,ENGINE)] [$(b,--scale) $(i,N)]";
      `Noblank; `P "$(mname) $(b,simbench) [$(i,CATEGORY)]";
      `Noblank; `P "$(mname) $(b,boot) [$(b,--engine) $(i,ENGINE)]";
      `Noblank; `P "$(mname) $(b,info)";
      `Noblank; `P "$(mname) $(b,ssa) $(i,INSTRUCTION) [$(b,--level) $(i,N)] [$(b,--guest) $(i,GUEST)] [$(b,--classify)]";
      `Noblank; `P "$(mname) $(b,lint) [$(b,--guest) $(i,GUEST)] [$(b,--json)]";
      `Noblank; `P "$(mname) $(b,mmucheck) [$(b,--json)] [$(b,--guard)] [$(b,--every) $(i,N)]";
      `Noblank; `P "$(mname) $(b,stress) [$(b,--json)] [$(b,--seeds) $(i,N)] [$(b,--domains) $(i,D)]";
      `Noblank; `P "$(mname) $(b,bench) [$(b,--quick)] [$(b,--json)] [$(b,--baseline) $(i,FILE)] [$(b,--exact)] [$(b,--domains) $(i,D)]";
      `Noblank; `P "$(mname) $(b,validate) [$(b,--json)] [$(b,--every) $(i,N)]";
      `Noblank; `P "$(mname) $(b,analyze) [$(b,--json)] [$(b,--workload) $(i,NAME)] [$(b,--level) $(i,N)]";
      `Noblank; `P "$(mname) $(b,relocheck) [$(b,--json)] [$(b,--workload) $(i,NAME)] [$(b,--level) $(i,N)]";
      `Noblank; `P "$(mname) $(b,aot) [$(b,--json)] [$(b,--dir) $(i,DIR)] [$(b,--keep)] [$(b,--max-ratio) $(i,PCT)]";
      `Noblank; `P "$(mname) $(b,mine-templates) [$(b,--json)] [$(b,--guest) $(i,GUEST)]";
      `Noblank; `P "$(mname) $(b,templates) [$(b,--json)] [$(b,--min-coverage) $(i,PCT)] [$(b,--hot-threshold) $(i,N)]";
    ]
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "captive_run" ~doc ~man)
          [ spec_cmd; simbench_cmd; boot_cmd; info_cmd; ssa_cmd; lint_cmd; mmucheck_cmd;
            stress_cmd; bench_cmd; validate_cmd; analyze_cmd; relocheck_cmd; aot_cmd;
            mine_templates_cmd; templates_cmd ]))
