lib/workloads/uprog.ml: Char Guest_arm Int64 Kernel
