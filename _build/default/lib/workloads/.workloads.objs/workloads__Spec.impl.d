lib/workloads/spec.ml: Guest_arm Int64 List Uprog
