lib/workloads/kernel.ml: Captive Guest_arm Int64 Qemu_ref
