lib/workloads/native_model.ml:
