(* Performance models of the physical ARM platforms of the paper's Fig. 22
   (Raspberry Pi 3 / Cortex-A53 at 1.2 GHz; AMD Opteron A1170 / Cortex-A57
   at 2.0 GHz).

   These are ratio models: given a count of executed guest instructions,
   they estimate native execution time from documented frequency and IPC
   constants.  The simulated host runs at the paper's 3.5 GHz. *)

type platform = {
  p_name : string;
  freq_hz : float;
  ipc : float; (* sustained instructions per cycle on SPEC-like code *)
}

let host_freq_hz = 3.5e9

(* The executor charges ops serially; a real 3.5 GHz Xeon retires about
   2.5 independent uops per cycle on DBT-generated code.  This calibration
   factor converts simulated cycle counts to wall-clock seconds and is
   used identically for both engines. *)
let host_ipc = 2.5

let raspberry_pi3 = { p_name = "Raspberry Pi 3 (Cortex-A53, 1.2GHz)"; freq_hz = 1.2e9; ipc = 0.85 }
let opteron_a1170 = { p_name = "AMD Opteron A1170 (Cortex-A57, 2.0GHz)"; freq_hz = 2.0e9; ipc = 1.6 }

(* Native wall-clock seconds for [guest_instrs] instructions. *)
let native_seconds p guest_instrs = float_of_int guest_instrs /. (p.freq_hz *. p.ipc)

(* Simulated wall-clock seconds for a DBT run of [cycles] host cycles. *)
let dbt_seconds cycles = float_of_int cycles /. (host_freq_hz *. host_ipc)
