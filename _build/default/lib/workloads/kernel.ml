(* A miniature AArch64 guest operating system.

   The paper boots full ARM Linux; this kernel is the laptop-scale
   substitute that exercises the same system-level machinery: stage-1
   paging with a split kernel/user address space, EL1/EL0 separation,
   syscalls via SVC, demand faults reflected back to the guest, and timer
   interrupts.

   Memory map (guest physical):
     0x0008_0000  kernel image (this module), entered at EL1, MMU off
     0x0008_2000  exception vector table (2 KiB aligned)
     0x0008_3000  kernel data (tick counter, fault counter)
     0x0009_0000  kernel stack top
     0x0001_0000  TTBR1 L1 table     (built by the kernel at boot)
     0x0001_1000  TTBR0 L1 table
     0x0001_2000  TTBR0 L2 table
     0x0200_0000  user program + data (loaded by the host "firmware")

   Virtual layout:
     kernel: KVA_BASE + phys      (TTBR1, one 1 GiB block, kernel-only)
     boot identity: VA 0..2MiB    (TTBR0 L2[0], kernel, for MMU turn-on)
     user:   0x0040_0000..0x0060_0000 -> PA 0x0200_0000 (2 MiB block,
             user RW+X)

   Syscall ABI (SVC #0): x8 = number
     0 exit(x0)       1 putchar(x0)     2 uptime() -> x0 (CNTVCT)
     3 ticks() -> x0  4 faults() -> x0  5 yield (wfi)
   Data aborts from EL0 increment a counter and skip the faulting
   instruction (this is what SimBench's Data-Fault measures). *)

module A = Guest_arm.Arm_asm

let kernel_pa = 0x80000L
let vector_off = 0x2000
let data_off = 0x3000
let kva_base = 0xFFFF_FF80_0000_0000L
let kva p = Int64.add kva_base p
let user_pa = 0x0200_0000L
let user_va = 0x0040_0000L
let user_stack_top = 0x005F_0000L
let kernel_stack_top = kva 0x90000L

let uart_base = 0x0910_0000L
let timer_base = 0x0920_0000L
let intc_base = 0x0900_0000L
let syscon_base = 0x0930_0000L

(* Page table descriptor bits *)
let af = Int64.shift_left 1L 10
let ap_user = Int64.shift_left 1L 6
let uxn = Int64.shift_left 1L 54
let pxn = Int64.shift_left 1L 53
let block = 0x1L
let table = 0x3L

let ( |+ ) = Int64.logor

(* Timer period in timer ticks (device decrements once per host cycle). *)
let timer_period = 2_000_000

let build ?(enable_timer = true) () : bytes =
  let a = A.create ~base:kernel_pa () in
  (* ------------------------------------------------ boot (EL1, MMU off) *)
  (* TTBR1 L1[0]: 1 GiB kernel block at PA 0 *)
  A.mov_const a A.x0 0x10000L;
  A.mov_const a A.x1 (0L |+ af |+ block |+ uxn);
  A.str a A.x1 A.x0;
  (* TTBR0 L1[0] -> L2 table *)
  A.mov_const a A.x0 0x11000L;
  A.mov_const a A.x1 (0x12000L |+ table);
  A.str a A.x1 A.x0;
  (* TTBR0 L2[0]: boot identity 2 MiB kernel block at PA 0 *)
  A.mov_const a A.x0 0x12000L;
  A.mov_const a A.x1 (0L |+ af |+ block |+ uxn);
  A.str a A.x1 A.x0;
  (* TTBR0 L2[2]: user 2 MiB block VA 0x400000 -> PA 0x2000000 *)
  A.mov_const a A.x1 (user_pa |+ af |+ block |+ ap_user |+ pxn);
  A.str ~off:16 a A.x1 A.x0;
  (* install roots and vector base *)
  A.mov_const a A.x0 0x11000L;
  A.msr_ttbr0 a A.x0;
  A.mov_const a A.x0 0x10000L;
  A.msr_ttbr1 a A.x0;
  A.mov_const a A.x0 (kva (Int64.add kernel_pa (Int64.of_int vector_off)));
  A.msr_vbar a A.x0;
  (* MMU on *)
  A.movz a A.x0 1;
  A.msr_sctlr a A.x0;
  A.isb a;
  (* jump to the high half *)
  A.mov_const a A.x0 (kva (Int64.add kernel_pa 0x200L));
  A.br a A.x0;
  (* ------------------------------------------------ high-half init *)
  A.pad_to a 0x200;
  (* kernel stack *)
  A.mov_const a A.x0 kernel_stack_top;
  A.add_imm a A.sp A.x0 0;
  (* enable the timer and its interrupt line *)
  if enable_timer then begin
    A.mov_const a A.x0 (kva intc_base);
    A.movz a A.x1 2; (* line 1 = timer *)
    A.str32 ~off:4 a A.x1 A.x0;
    A.mov_const a A.x0 (kva timer_base);
    A.mov_const a A.x1 (Int64.of_int timer_period);
    A.str32 a A.x1 A.x0; (* LOAD *)
    A.movz a A.x1 3; (* enable | irq *)
    A.str32 ~off:8 a A.x1 A.x0
  end;
  (* enter the user program: ELR=user entry, SPSR=EL0t with IRQs on *)
  A.mov_const a A.x0 user_va;
  A.msr_elr a A.x0;
  A.movz a A.x0 0;
  A.msr_spsr a A.x0;
  A.mov_const a A.x0 user_stack_top;
  A.msr_sp_el0 a A.x0;
  A.msr_daifclr a 2;
  A.eret a;

  (* ------------------------------------------------ exception vectors *)
  (* +0x000 current EL with SP_EL0: unused *)
  A.pad_to a vector_off;
  A.b a "k_bad";
  (* +0x200 current EL with SP_ELx: sync (kernel fault) *)
  A.pad_to a (vector_off + 0x200);
  A.b a "k_bad";
  (* +0x280 current EL irq *)
  A.pad_to a (vector_off + 0x280);
  A.b a "k_irq";
  (* +0x400 lower EL sync: syscalls and user faults *)
  A.pad_to a (vector_off + 0x400);
  A.b a "k_sync";
  (* +0x480 lower EL irq *)
  A.pad_to a (vector_off + 0x480);
  A.b a "k_irq";

  (* ------------------------------------------------ handlers *)
  A.pad_to a (vector_off + 0x600);

  (* kernel panic: poweroff with code 98 *)
  A.label a "k_bad";
  A.mov_const a A.x9 (kva syscon_base);
  A.movz a A.x10 98;
  A.str a A.x10 A.x9;
  A.label a "k_hang";
  A.b a "k_hang";

  (* IRQ: ack the timer, count the tick *)
  A.label a "k_irq";
  A.stp_pre a A.x9 A.x10 A.sp (-16);
  A.mov_const a A.x9 (kva timer_base);
  A.str32 ~off:12 a A.xzr A.x9; (* ACK: clears the intc line *)
  A.mov_const a A.x9 (kva (Int64.add kernel_pa (Int64.of_int data_off)));
  A.ldr a A.x10 A.x9;
  A.add_imm a A.x10 A.x10 1;
  A.str a A.x10 A.x9;
  A.ldp_post a A.x9 A.x10 A.sp 16;
  A.eret a;

  (* lower-EL synchronous: dispatch on the exception class *)
  A.label a "k_sync";
  A.stp_pre a A.x9 A.x10 A.sp (-16);
  A.mrs_esr a A.x9;
  A.lsr_imm a A.x10 A.x9 26;
  A.cmp_imm a A.x10 0x15;
  A.b_cond a A.EQ "k_svc";
  A.cmp_imm a A.x10 0x24;
  A.b_cond a A.EQ "k_dabort";
  A.cmp_imm a A.x10 0x0;
  A.b_cond a A.EQ "k_undef";
  A.cmp_imm a A.x10 0x20;
  A.b_cond a A.EQ "k_iabort";
  (* anything else kills the machine with code 97 *)
  A.mov_const a A.x9 (kva syscon_base);
  A.movz a A.x10 97;
  A.str a A.x10 A.x9;
  A.label a "k_hang2";
  A.b a "k_hang2";

  (* user data abort: count it and skip the faulting instruction *)
  A.label a "k_dabort";
  A.mov_const a A.x9 (kva (Int64.add kernel_pa (Int64.of_int (data_off + 8))));
  A.ldr a A.x10 A.x9;
  A.add_imm a A.x10 A.x10 1;
  A.str a A.x10 A.x9;
  A.mrs_elr a A.x9;
  A.add_imm a A.x9 A.x9 4;
  A.msr_elr a A.x9;
  A.ldp_post a A.x9 A.x10 A.sp 16;
  A.eret a;

  (* undefined instruction from EL0: count and skip (SimBench's
     Undef-Instruction category) *)
  A.label a "k_undef";
  A.mov_const a A.x9 (kva (Int64.add kernel_pa (Int64.of_int (data_off + 16))));
  A.ldr a A.x10 A.x9;
  A.add_imm a A.x10 A.x10 1;
  A.str a A.x10 A.x9;
  A.mrs_elr a A.x9;
  A.add_imm a A.x9 A.x9 4;
  A.msr_elr a A.x9;
  A.ldp_post a A.x9 A.x10 A.sp 16;
  A.eret a;

  (* instruction abort from EL0: resume at the caller (benchmarks reach
     the bad page with BLR, so X30 holds the recovery address) *)
  A.label a "k_iabort";
  A.msr_elr a A.x30;
  A.ldp_post a A.x9 A.x10 A.sp 16;
  A.eret a;

  (* syscalls *)
  A.label a "k_svc";
  A.cmp_imm a A.x8 0;
  A.b_cond a A.EQ "sys_exit";
  A.cmp_imm a A.x8 1;
  A.b_cond a A.EQ "sys_putchar";
  A.cmp_imm a A.x8 2;
  A.b_cond a A.EQ "sys_uptime";
  A.cmp_imm a A.x8 3;
  A.b_cond a A.EQ "sys_ticks";
  A.cmp_imm a A.x8 4;
  A.b_cond a A.EQ "sys_faults";
  A.cmp_imm a A.x8 5;
  A.b_cond a A.EQ "sys_yield";
  (* unknown syscall: exit 99 *)
  A.mov_const a A.x9 (kva syscon_base);
  A.movz a A.x10 99;
  A.str a A.x10 A.x9;
  A.label a "k_hang3";
  A.b a "k_hang3";

  A.label a "sys_exit";
  A.mov_const a A.x9 (kva syscon_base);
  A.str a A.x0 A.x9;
  A.label a "k_hang4";
  A.b a "k_hang4";

  A.label a "sys_putchar";
  A.mov_const a A.x9 (kva uart_base);
  A.strb a A.x0 A.x9;
  A.b a "k_ret";

  A.label a "sys_uptime";
  A.mrs_cntvct a A.x0;
  A.b a "k_ret";

  A.label a "sys_ticks";
  A.mov_const a A.x9 (kva (Int64.add kernel_pa (Int64.of_int data_off)));
  A.ldr a A.x0 A.x9;
  A.b a "k_ret";

  A.label a "sys_faults";
  A.mov_const a A.x9 (kva (Int64.add kernel_pa (Int64.of_int (data_off + 8))));
  A.ldr a A.x0 A.x9;
  A.b a "k_ret";

  A.label a "sys_yield";
  A.ldp_post a A.x9 A.x10 A.sp 16;
  A.wfi a;
  (* wfi is ends-block; execution resumes here, then returns *)
  A.eret a;

  A.label a "k_ret";
  A.ldp_post a A.x9 A.x10 A.sp 16;
  A.eret a;
  A.assemble a

(* Engine-agnostic installation. *)
type target = {
  load : addr:int64 -> bytes -> unit;
  set_entry : int64 -> unit;
}

let install ?(enable_timer = true) (tgt : target) ~(user : bytes) =
  tgt.load ~addr:kernel_pa (build ~enable_timer ());
  tgt.load ~addr:user_pa user;
  tgt.set_entry kernel_pa

let captive_target (e : Captive.Engine.t) : target =
  { load = (fun ~addr b -> Captive.Engine.load_image e ~addr b);
    set_entry = (fun v -> Captive.Engine.set_entry e v) }

let qemu_target (e : Qemu_ref.Qemu_engine.t) : target =
  { load = (fun ~addr b -> Qemu_ref.Qemu_engine.load_image e ~addr b);
    set_entry = (fun v -> Qemu_ref.Qemu_engine.set_entry e v) }

let reference_target (r : Captive.Reference.t) : target =
  { load = (fun ~addr b -> Captive.Reference.load_image r ~addr b);
    set_entry = (fun v -> Captive.Reference.set_entry r v) }
