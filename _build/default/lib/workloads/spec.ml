(* SPEC CPU2006 proxy kernels (Figs. 17/18 of the paper).

   We cannot compile SPEC for the guest, so each benchmark is represented
   by a synthetic kernel reproducing its dominant inner-loop shape:
   429.mcf is pointer chasing, 456.hmmer a high-register-pressure dynamic
   programming loop, 470.lbm a streaming FP stencil, and so on.  Each
   proxy is a user-mode guest program returning a checksum via sys_exit,
   which the differential tests compare across engines. *)

module A = Guest_arm.Arm_asm
module U = Uprog

type benchmark = {
  name : string;
  fp : bool;
  build : scale:int -> bytes;
}

let b name fp build = { name; fp; build }

(* ------------------------------------------------------------------ int *)

(* 400.perlbench: bytecode interpreter dispatch. *)
let perlbench ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      (* opcode array *)
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:8192;
      A.mov_const a A.x19 (Int64.of_int (50 * scale)); (* outer iterations *)
      A.movz a A.x20 0; (* accumulator *)
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x2 1024L; (* opcodes per pass *)
      A.label a "dispatch";
      A.ldrb_post a A.x3 A.x1 8;
      A.and_imm a A.x3 A.x3 7L;
      (* 8-way opcode switch *)
      A.cmp_imm a A.x3 0;
      A.b_cond a A.EQ "op_add";
      A.cmp_imm a A.x3 1;
      A.b_cond a A.EQ "op_sub";
      A.cmp_imm a A.x3 2;
      A.b_cond a A.EQ "op_xor";
      A.cmp_imm a A.x3 3;
      A.b_cond a A.EQ "op_shl";
      A.cmp_imm a A.x3 4;
      A.b_cond a A.EQ "op_shr";
      A.cmp_imm a A.x3 5;
      A.b_cond a A.EQ "op_mul";
      A.cmp_imm a A.x3 6;
      A.b_cond a A.EQ "op_rot";
      A.add_imm a A.x20 A.x20 7;
      A.b a "next";
      A.label a "op_add";
      A.add_imm a A.x20 A.x20 1;
      A.b a "next";
      A.label a "op_sub";
      A.sub_imm a A.x20 A.x20 3;
      A.b a "next";
      A.label a "op_xor";
      A.eor_imm a A.x20 A.x20 0xFFL;
      A.b a "next";
      A.label a "op_shl";
      A.lsl_imm a A.x20 A.x20 1;
      A.b a "next";
      A.label a "op_shr";
      A.lsr_imm a A.x20 A.x20 1;
      A.b a "next";
      A.label a "op_mul";
      A.movz a A.x4 31;
      A.mul a A.x20 A.x20 A.x4;
      A.b a "next";
      A.label a "op_rot";
      A.rorv a A.x20 A.x20 A.x3;
      A.label a "next";
      A.sub_imm a A.x2 A.x2 1;
      A.cbnz a A.x2 "dispatch";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* 401.bzip2: run-length coding over a byte buffer. *)
let bzip2 ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:16384;
      A.mov_const a A.x19 (Int64.of_int (6 * scale));
      A.movz a A.x20 0;
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x2 U.data2_va;
      A.mov_const a A.x3 16384L;
      A.label a "rle";
      A.ldrb_post a A.x4 A.x1 1; (* current byte *)
      A.and_imm a A.x4 A.x4 0x3FL;
      A.movz a A.x5 1; (* run length *)
      A.label a "run";
      A.sub_imm a A.x3 A.x3 1;
      A.cbz a A.x3 "flush";
      A.ldrb a A.x6 A.x1;
      A.and_imm a A.x6 A.x6 0x3FL;
      A.cmp_reg a A.x6 A.x4;
      A.b_cond a A.NE "flush";
      A.add_imm a A.x1 A.x1 1;
      A.add_imm a A.x5 A.x5 1;
      A.b a "run";
      A.label a "flush";
      A.strb_post a A.x4 A.x2 1;
      A.strb_post a A.x5 A.x2 1;
      A.add_reg a A.x20 A.x20 A.x5;
      A.cbnz a A.x3 "rle";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* 403.gcc: table-driven state machine. *)
let gcc ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:32768;
      A.mov_const a A.x19 (Int64.of_int (16 * scale));
      A.movz a A.x20 0; (* state *)
      A.movz a A.x21 0; (* checksum *)
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x2 4096L;
      A.label a "step";
      A.ldr_post a A.x3 A.x1 8; (* token *)
      A.eor_reg a A.x4 A.x3 A.x20;
      A.and_imm a A.x4 A.x4 0xFF8L; (* table index (aligned) *)
      A.mov_const a A.x5 U.data2_va;
      A.ldr_reg a A.x6 A.x5 A.x4; (* next-state table *)
      A.add_reg a A.x20 A.x6 A.x3;
      A.and_imm a A.x20 A.x20 0xFFFFL;
      (* conditional accumulate *)
      A.tbz a A.x3 3 "skip";
      A.add_reg a A.x21 A.x21 A.x20;
      A.label a "skip";
      A.sub_imm a A.x2 A.x2 1;
      A.cbnz a A.x2 "step";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x21)

(* 429.mcf: pointer chasing over a pseudo-random permutation. *)
let mcf ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      (* Build next[i] = (i * 40503 + 1) % N as a chain of 8-byte cells. *)
      let n = 16384 in
      A.mov_const a A.x1 U.data_va;
      A.movz a A.x2 0; (* i *)
      A.mov_const a A.x3 (Int64.of_int n);
      A.mov_const a A.x4 40503L;
      A.label a "init";
      A.mul a A.x5 A.x2 A.x4;
      A.add_imm a A.x5 A.x5 1;
      A.and_imm a A.x5 A.x5 (Int64.of_int (n - 1));
      A.lsl_imm a A.x6 A.x5 3;
      A.mov_const a A.x7 U.data_va;
      A.add_reg a A.x6 A.x6 A.x7;
      A.lsl_imm a A.x8 A.x2 3;
      A.add_reg a A.x8 A.x8 A.x7;
      A.str a A.x6 A.x8; (* cell[i] = &cell[next] *)
      A.add_imm a A.x2 A.x2 1;
      A.cmp_reg a A.x2 A.x3;
      A.b_cond a A.NE "init";
      (* chase *)
      A.mov_const a A.x19 (Int64.of_int (12 * scale * n));
      A.mov_const a A.x1 U.data_va;
      A.movz a A.x20 0;
      A.label a "chase";
      A.ldr a A.x1 A.x1;
      A.add_imm a A.x20 A.x20 1;
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "chase";
      A.lsr_imm a A.x0 A.x1 3;
      A.eor_reg a A.x0 A.x0 A.x20)

(* 445.gobmk: board scanning with neighbour tests. *)
let gobmk ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:8192;
      A.mov_const a A.x19 (Int64.of_int (160 * scale));
      A.movz a A.x20 0;
      A.label a "outer";
      A.movz a A.x2 1; (* row *)
      A.label a "row";
      A.movz a A.x3 1; (* col *)
      A.label a "col";
      (* idx = row*32 + col, byte board *)
      A.lsl_imm a A.x4 A.x2 5;
      A.add_reg a A.x4 A.x4 A.x3;
      A.mov_const a A.x5 U.data_va;
      A.add_reg a A.x5 A.x5 A.x4;
      A.ldrb a A.x6 A.x5;
      A.and_imm a A.x6 A.x6 3L;
      A.cbz a A.x6 "empty";
      (* count like-colored neighbours *)
      A.ldrb ~off:1 a A.x7 A.x5;
      A.and_imm a A.x7 A.x7 3L;
      A.cmp_reg a A.x7 A.x6;
      A.b_cond a A.NE "n1";
      A.add_imm a A.x20 A.x20 1;
      A.label a "n1";
      A.ldrb ~off:32 a A.x7 A.x5;
      A.and_imm a A.x7 A.x7 3L;
      A.cmp_reg a A.x7 A.x6;
      A.b_cond a A.NE "empty";
      A.add_imm a A.x20 A.x20 2;
      A.label a "empty";
      A.add_imm a A.x3 A.x3 1;
      A.cmp_imm a A.x3 20;
      A.b_cond a A.NE "col";
      A.add_imm a A.x2 A.x2 1;
      A.cmp_imm a A.x2 20;
      A.b_cond a A.NE "row";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* 456.hmmer: dynamic-programming inner loop with many live values
   (deliberate register pressure; see Sec. 3.2's slowdown discussion). *)
let hmmer ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:32768;
      A.mov_const a A.x19 (Int64.of_int (16 * scale));
      A.movz a A.x20 0;
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x2 U.data2_va;
      A.mov_const a A.x3 2048L;
      (* rolling state in x4..x15 and x21..x24: 16 live values *)
      for r = 4 to 15 do A.movz a r r done;
      for r = 21 to 24 do A.movz a r r done;
      A.label a "dp";
      A.ldr_post a A.x16 A.x1 8;
      A.add_reg a A.x4 A.x4 A.x16;
      A.add_reg a A.x5 A.x5 A.x4;
      A.eor_reg a A.x6 A.x6 A.x5;
      A.add_reg a A.x7 A.x7 A.x6;
      (* max chains *)
      A.cmp_reg a A.x7 A.x8;
      A.csel a A.x8 A.x7 A.x8 A.GT;
      A.add_reg a A.x9 A.x9 A.x8;
      A.eor_reg a A.x10 A.x10 A.x9;
      A.add_reg a A.x11 A.x11 A.x10;
      A.cmp_reg a A.x11 A.x12;
      A.csel a A.x12 A.x11 A.x12 A.GT;
      A.add_reg a A.x13 A.x13 A.x12;
      A.add_reg a A.x14 A.x14 A.x13;
      A.eor_reg a A.x15 A.x15 A.x14;
      A.add_reg a A.x21 A.x21 A.x15;
      A.add_reg a A.x22 A.x22 A.x21;
      A.cmp_reg a A.x22 A.x23;
      A.csel a A.x23 A.x22 A.x23 A.GT;
      A.add_reg a A.x24 A.x24 A.x23;
      A.str_post a A.x24 A.x2 8;
      A.sub_imm a A.x3 A.x3 1;
      A.cbnz a A.x3 "dp";
      A.add_reg a A.x20 A.x20 A.x24;
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* 458.sjeng: bit-twiddling over bitboards. *)
let sjeng ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x19 (Int64.of_int (57_000 * scale));
      A.mov_const a A.x1 0x123456789ABCDEFL;
      A.movz a A.x20 0;
      A.label a "loop";
      U.prng_step p A.x1 A.x2;
      (* popcount via clz-driven loop would be slow; use rbit/clz tricks *)
      A.rbit a A.x3 A.x1;
      A.clz a A.x4 A.x3; (* trailing zeros *)
      A.add_reg a A.x20 A.x20 A.x4;
      A.and_imm a A.x5 A.x1 0xFF00FF00FF00FFL;
      A.eor_reg a A.x20 A.x20 A.x5;
      A.rev64 a A.x6 A.x1;
      A.add_reg a A.x20 A.x20 A.x6;
      A.tbz a A.x1 0 "even";
      A.movz a A.x7 13;
      A.rorv a A.x20 A.x20 A.x7;
      A.label a "even";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "loop";
      A.mov_reg a A.x0 A.x20)

(* 462.libquantum: streaming toggle pass over a large array. *)
let libquantum ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:262144;
      A.mov_const a A.x19 (Int64.of_int (4 * scale));
      A.mov_const a A.x21 0x8000000000000000L;
      A.movz a A.x20 0;
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x2 32768L;
      A.label a "sweep";
      A.ldr a A.x3 A.x1;
      A.eor_reg a A.x3 A.x3 A.x21;
      A.str_post a A.x3 A.x1 8;
      A.add_reg a A.x20 A.x20 A.x3;
      A.sub_imm a A.x2 A.x2 1;
      A.cbnz a A.x2 "sweep";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* 464.h264ref: SAD block matching over byte arrays. *)
let h264ref ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:65536;
      A.mov_const a A.x19 (Int64.of_int (24 * scale));
      A.movz a A.x20 0;
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x2 (Int64.add U.data_va 0x4000L);
      A.mov_const a A.x3 4096L;
      A.label a "sad";
      A.ldrb_post a A.x4 A.x1 1;
      A.ldrb_post a A.x5 A.x2 1;
      A.subs_reg a A.x6 A.x4 A.x5;
      A.csneg a A.x6 A.x6 A.x6 A.GE; (* abs *)
      A.add_reg a A.x20 A.x20 A.x6;
      A.sub_imm a A.x3 A.x3 1;
      A.cbnz a A.x3 "sad";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* 471.omnetpp: binary-heap event queue. *)
let omnetpp ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x19 (Int64.of_int (80 * scale));
      A.mov_const a A.x21 0x243F6A8885A308D3L; (* prng state *)
      A.movz a A.x20 0; (* checksum *)
      A.label a "outer";
      A.movz a A.x22 0; (* heap size *)
      (* insert 256 elements *)
      A.movz a A.x2 256;
      A.label a "ins";
      U.prng_step p A.x21 A.x3;
      A.and_imm a A.x4 A.x21 0xFFFFFL; (* key *)
      (* sift up from index x22 *)
      A.mov_reg a A.x5 A.x22;
      A.label a "up";
      A.cbz a A.x5 "place";
      A.sub_imm a A.x6 A.x5 1;
      A.lsr_imm a A.x6 A.x6 1; (* parent *)
      A.mov_const a A.x7 U.data_va;
      A.lsl_imm a A.x8 A.x6 3;
      A.ldr_reg a A.x9 A.x7 A.x8;
      A.cmp_reg a A.x9 A.x4;
      A.b_cond a A.LS "place";
      (* move parent down *)
      A.lsl_imm a A.x10 A.x5 3;
      A.str_reg a A.x9 A.x7 A.x10;
      A.mov_reg a A.x5 A.x6;
      A.b a "up";
      A.label a "place";
      A.mov_const a A.x7 U.data_va;
      A.lsl_imm a A.x10 A.x5 3;
      A.str_reg a A.x4 A.x7 A.x10;
      A.add_imm a A.x22 A.x22 1;
      A.sub_imm a A.x2 A.x2 1;
      A.cbnz a A.x2 "ins";
      (* drain the minimum a few times *)
      A.mov_const a A.x7 U.data_va;
      A.ldr a A.x9 A.x7;
      A.add_reg a A.x20 A.x20 A.x9;
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* 473.astar: grid flood expansion. *)
let astar ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:65536;
      A.mov_const a A.x19 (Int64.of_int (16 * scale));
      A.movz a A.x20 0;
      A.label a "outer";
      A.movz a A.x2 0; (* cell index *)
      A.label a "cell";
      A.mov_const a A.x3 U.data_va;
      A.lsl_imm a A.x4 A.x2 3;
      A.ldr_reg a A.x5 A.x3 A.x4;
      A.and_imm a A.x5 A.x5 0xFFL; (* cost *)
      A.cmp_imm a A.x5 128;
      A.b_cond a A.CS "blocked";
      (* relax: cost + east neighbour *)
      A.add_imm a A.x6 A.x2 1;
      A.and_imm a A.x6 A.x6 0x1FFFL;
      A.lsl_imm a A.x6 A.x6 3;
      A.ldr_reg a A.x7 A.x3 A.x6;
      A.and_imm a A.x7 A.x7 0xFFL;
      A.add_reg a A.x8 A.x5 A.x7;
      A.add_reg a A.x20 A.x20 A.x8;
      A.label a "blocked";
      A.add_imm a A.x2 A.x2 1;
      A.cmp_imm ~sf:1 a A.x2 0xFFF;
      A.b_cond a A.NE "cell";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* 483.xalancbmk: tree walking and string comparison. *)
let xalancbmk ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:65536;
      A.mov_const a A.x19 (Int64.of_int (5_000 * scale));
      A.movz a A.x20 0;
      A.label a "outer";
      A.movz a A.x2 1; (* node index, heap-shaped tree *)
      A.label a "walk";
      A.mov_const a A.x3 U.data_va;
      A.lsl_imm a A.x4 A.x2 3;
      A.ldr_reg a A.x5 A.x3 A.x4;
      (* compare two "strings" of 8 bytes each *)
      A.and_imm a A.x6 A.x5 0x00FF00FF00FF00FFL;
      A.mov_const a A.x7 0x0042004200420042L;
      A.cmp_reg a A.x6 A.x7;
      A.cset a A.x8 A.EQ;
      A.add_reg a A.x20 A.x20 A.x8;
      (* descend left/right on a key bit *)
      A.lsl_imm a A.x2 A.x2 1;
      A.tbz a A.x5 17 "left";
      A.add_imm a A.x2 A.x2 1;
      A.label a "left";
      A.cmp_imm ~sf:1 a A.x2 4096;
      A.b_cond a A.CC "walk";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.mov_reg a A.x0 A.x20)

(* ------------------------------------------------------------------ fp *)

(* 482.sphinx3: dot products. *)
let sphinx3 ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      (* fill with small integers, convert on the fly *)
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:32768;
      A.mov_const a A.x19 (Int64.of_int (40 * scale));
      A.movz a A.x2 0;
      A.scvtf_d a A.d0 A.x2; (* acc = 0.0 *)
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x3 2048L;
      A.label a "dot";
      A.ldr_post a A.x4 A.x1 8;
      A.and_imm a A.x4 A.x4 0xFFFFL;
      A.scvtf_d a A.d1 A.x4;
      A.ldr a A.x5 A.x1;
      A.and_imm a A.x5 A.x5 0xFFFFL;
      A.scvtf_d a A.d2 A.x5;
      A.fmadd_d a A.d0 A.d1 A.d2 A.d0;
      A.sub_imm a A.x3 A.x3 1;
      A.cbnz a A.x3 "dot";
      (* rescale to avoid overflow *)
      A.mov_const a A.x6 0x3E112E0BE826D695L; (* ~1e-9 *)
      A.fmov_x_to_d a A.d3 A.x6;
      A.fmul_d a A.d0 A.d0 A.d3;
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.fcvtzs_d a A.x0 A.d0)

(* 433.milc: complex arithmetic. *)
let milc ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x19 (Int64.of_int (57_000 * scale));
      A.movz a A.x2 3;
      A.scvtf_d a A.d0 A.x2; (* re = 3.0 *)
      A.movz a A.x2 4;
      A.scvtf_d a A.d1 A.x2; (* im = 4.0 *)
      A.movz a A.x2 1;
      A.scvtf_d a A.d6 A.x2;
      A.mov_const a A.x3 0x3FEFFFFF00000000L; (* ~0.99999988 *)
      A.fmov_x_to_d a A.d7 A.x3;
      A.label a "loop";
      (* (re,im) = (re,im) * (d7, small) + tiny damping *)
      A.fmul_d a A.d2 A.d0 A.d7;
      A.fmul_d a A.d3 A.d1 A.d7;
      A.fmul_d a A.d4 A.d0 A.d1;
      A.fsub_d a A.d0 A.d2 A.d3;
      A.fadd_d a A.d1 A.d3 A.d2;
      A.fdiv_d a A.d5 A.d4 A.d6;
      A.fadd_d a A.d0 A.d0 A.d5;
      (* normalize magnitudes to keep values finite *)
      A.fmul_d a A.d0 A.d0 A.d7;
      A.fmul_d a A.d1 A.d1 A.d7;
      A.fmax_d a A.d0 A.d0 A.d6;
      A.fmin_d a A.d0 A.d0 A.d7;
      A.fmax_d a A.d1 A.d1 A.d6;
      A.fmin_d a A.d1 A.d1 A.d7;
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "loop";
      A.fadd_d a A.d0 A.d0 A.d1;
      A.fcvtzs_d a A.x0 A.d0)

(* 435.gromacs: pairwise force computation. *)
let gromacs ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:16384;
      A.mov_const a A.x19 (Int64.of_int (100 * scale));
      A.movz a A.x2 0;
      A.scvtf_d a A.d0 A.x2;
      A.movz a A.x2 1;
      A.scvtf_d a A.d7 A.x2; (* 1.0 *)
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x3 512L;
      A.label a "pair";
      (* dx, dy, dz from integer coordinates *)
      A.ldr_post a A.x4 A.x1 8;
      A.and_imm a A.x5 A.x4 0x3FFL;
      A.scvtf_d a A.d1 A.x5;
      A.lsr_imm a A.x5 A.x4 16;
      A.and_imm a A.x5 A.x5 0x3FFL;
      A.scvtf_d a A.d2 A.x5;
      A.lsr_imm a A.x5 A.x4 32;
      A.and_imm a A.x5 A.x5 0x3FFL;
      A.scvtf_d a A.d3 A.x5;
      (* r2 = dx*dx + dy*dy + dz*dz + 1 *)
      A.fmul_d a A.d4 A.d1 A.d1;
      A.fmadd_d a A.d4 A.d2 A.d2 A.d4;
      A.fmadd_d a A.d4 A.d3 A.d3 A.d4;
      A.fadd_d a A.d4 A.d4 A.d7;
      (* force ~ 1/r2 *)
      A.fdiv_d a A.d5 A.d7 A.d4;
      A.fadd_d a A.d0 A.d0 A.d5;
      A.sub_imm a A.x3 A.x3 1;
      A.cbnz a A.x3 "pair";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.fcvtzs_d a A.x0 A.d0)

(* 444.namd: pairwise with square roots. *)
let namd ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:16384;
      A.mov_const a A.x19 (Int64.of_int (160 * scale));
      A.movz a A.x2 0;
      A.scvtf_d a A.d0 A.x2;
      A.movz a A.x2 1;
      A.scvtf_d a A.d7 A.x2;
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x3 512L;
      A.label a "pair";
      A.ldr_post a A.x4 A.x1 8;
      A.and_imm a A.x5 A.x4 0xFFFFFL;
      A.scvtf_d a A.d1 A.x5;
      A.fadd_d a A.d1 A.d1 A.d7;
      A.fsqrt_d a A.d2 A.d1; (* r = sqrt(r2) *)
      A.fdiv_d a A.d3 A.d7 A.d2; (* 1/r *)
      A.fmadd_d a A.d0 A.d3 A.d3 A.d0;
      A.sub_imm a A.x3 A.x3 1;
      A.cbnz a A.x3 "pair";
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.fcvtzs_d a A.x0 A.d0)

(* 470.lbm: streaming FP stencil. *)
let lbm ~scale =
  U.make (fun p ->
      let a = p.U.asm in
      A.mov_const a A.x1 U.data_va;
      U.fill_random p ~base:A.x1 ~len:131072;
      (* pre-pass: turn random words into small doubles in-place *)
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x2 16384L;
      A.label a "conv";
      A.ldr a A.x3 A.x1;
      A.and_imm a A.x3 A.x3 0xFFFL;
      A.scvtf_d a A.d1 A.x3;
      A.str_d a A.d1 A.x1;
      A.add_imm a A.x1 A.x1 8;
      A.sub_imm a A.x2 A.x2 1;
      A.cbnz a A.x2 "conv";
      A.mov_const a A.x19 (Int64.of_int (4 * scale));
      A.movz a A.x2 0;
      A.scvtf_d a A.d0 A.x2;
      (* 0.25 weight *)
      A.mov_const a A.x3 0x3FD0000000000000L;
      A.fmov_x_to_d a A.d7 A.x3;
      A.label a "outer";
      A.mov_const a A.x1 U.data_va;
      A.mov_const a A.x4 16000L;
      A.label a "cell";
      A.ldr_d a A.d1 A.x1;
      A.ldr_d ~off:8 a A.d2 A.x1;
      A.ldr_d ~off:16 a A.d3 A.x1;
      A.ldr_d ~off:24 a A.d4 A.x1;
      A.fadd_d a A.d5 A.d1 A.d2;
      A.fadd_d a A.d6 A.d3 A.d4;
      A.fadd_d a A.d5 A.d5 A.d6;
      A.fmul_d a A.d5 A.d5 A.d7;
      A.str_d a A.d5 A.x1;
      A.fadd_d a A.d0 A.d0 A.d5;
      A.add_imm a A.x1 A.x1 8;
      A.sub_imm a A.x4 A.x4 1;
      A.cbnz a A.x4 "cell";
      (* damp the accumulator *)
      A.fmul_d a A.d0 A.d0 A.d7;
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "outer";
      A.fcvtzs_d a A.x0 A.d0)

let integer_benchmarks =
  [
    b "400.perlbench" false perlbench;
    b "401.bzip2" false bzip2;
    b "403.gcc" false gcc;
    b "429.mcf" false mcf;
    b "445.gobmk" false gobmk;
    b "456.hmmer" false hmmer;
    b "458.sjeng" false sjeng;
    b "462.libquantum" false libquantum;
    b "464.h264ref" false h264ref;
    b "471.omnetpp" false omnetpp;
    b "473.astar" false astar;
    b "483.xalancbmk" false xalancbmk;
  ]

let fp_benchmarks =
  [
    b "482.sphinx3" true sphinx3;
    b "433.milc" true milc;
    b "435.gromacs" true gromacs;
    b "444.namd" true namd;
    b "470.lbm" true lbm;
  ]

let all = integer_benchmarks @ fp_benchmarks
let find name = List.find (fun bm -> bm.name = name) all
