(* Framework for user-mode guest programs (run on top of Kernel).

   Programs are assembled at Kernel.user_va; [make] wraps a body with the
   exit convention: the body leaves a checksum in x0, which is reported
   through sys_exit so engines can be validated against each other.

   Register conventions inside bodies:
     x0..x15  free
     x19..x24 free (callee-ish, used for long-lived counters)
     x8       syscall number (clobbered by syscalls)
     x25..x28 reserved for the framework *)

module A = Guest_arm.Arm_asm

let data_va = Int64.add Kernel.user_va 0x80000L (* 512 KiB into the user block *)
let data2_va = Int64.add Kernel.user_va 0x100000L (* second buffer, 1 MiB in *)

type t = { asm : A.t }

let syscall_exit = 0
let syscall_putchar = 1

let exit_with (p : t) =
  (* exit(x0 & 0xff) *)
  A.and_imm p.asm A.x0 A.x0 0xFFL;
  A.movz p.asm A.x8 syscall_exit;
  A.svc p.asm 0

let putchar (p : t) c =
  A.movz p.asm A.x0 (Char.code c);
  A.movz p.asm A.x8 syscall_putchar;
  A.svc p.asm 0

(* xorshift64 PRNG step on register r using scratch s. *)
let prng_step (p : t) r s =
  let a = p.asm in
  A.lsl_imm a s r 13;
  A.eor_reg a r r s;
  A.lsr_imm a s r 7;
  A.eor_reg a r r s;
  A.lsl_imm a s r 17;
  A.eor_reg a r r s

(* Build a complete user image from a body. *)
let make (body : t -> unit) : bytes =
  let asm = A.create ~base:Kernel.user_va () in
  let p = { asm } in
  body p;
  exit_with p;
  A.assemble asm

(* Fill [len] bytes at address register [base] (clobbered) with PRNG data;
   seed in x15.  [tag] makes labels unique within a program. *)
let fill_random ?(tag = "") (p : t) ~base ~len =
  let a = p.asm in
  A.mov_const a A.x15 0x9E3779B97F4A7C15L;
  A.mov_const a A.x14 (Int64.of_int len);
  A.label a ("__fill" ^ tag);
  prng_step p A.x15 A.x13;
  A.str a A.x15 base;
  A.add_imm a base base 8;
  A.sub_imm a A.x14 A.x14 8;
  A.cbnz a A.x14 ("__fill" ^ tag)
