(* A small RV64IM assembler for examples and tests. *)

module Bits = Dbt_util.Bits

type t = {
  base : int64;
  mutable words : int32 list;
  mutable count : int;
  labels : (string, int) Hashtbl.t;
  mutable fixups : (int * [ `J | `B ] * string) list;
}

let create ?(base = 0L) () = { base; words = []; count = 0; labels = Hashtbl.create 16; fixups = [] }

let emit a w =
  a.words <- Int32.of_int (w land 0xFFFFFFFF) :: a.words;
  a.count <- a.count + 1

let label a name = Hashtbl.replace a.labels name a.count

(* registers *)
let zero = 0 and ra = 1 and sp = 2 and t0 = 5 and t1 = 6 and t2 = 7
let a0 = 10 and a1 = 11 and a2 = 12 and a3 = 13 and a4 = 14 and a5 = 15
let a6 = 16 and a7 = 17 and s2 = 18 and s3 = 19 and s4 = 20

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode a =
  emit a ((funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode)

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode a =
  emit a (((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode)

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode a =
  emit a
    (((imm lsr 5) land 0x7F lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
    lor ((imm land 0x1F) lsl 7) lor opcode)

let add a rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0 ~rd ~opcode:0b0110011 a
let sub a rd rs1 rs2 = r_type ~funct7:32 ~rs2 ~rs1 ~funct3:0 ~rd ~opcode:0b0110011 a
let mul a rd rs1 rs2 = r_type ~funct7:1 ~rs2 ~rs1 ~funct3:0 ~rd ~opcode:0b0110011 a
let divu a rd rs1 rs2 = r_type ~funct7:1 ~rs2 ~rs1 ~funct3:5 ~rd ~opcode:0b0110011 a
let remu a rd rs1 rs2 = r_type ~funct7:1 ~rs2 ~rs1 ~funct3:7 ~rd ~opcode:0b0110011 a
let xor_ a rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:4 ~rd ~opcode:0b0110011 a
let addi a rd rs1 imm = i_type ~imm ~rs1 ~funct3:0 ~rd ~opcode:0b0010011 a
let slli a rd rs1 sh = i_type ~imm:sh ~rs1 ~funct3:1 ~rd ~opcode:0b0010011 a
let srli a rd rs1 sh = i_type ~imm:sh ~rs1 ~funct3:5 ~rd ~opcode:0b0010011 a
let andi a rd rs1 imm = i_type ~imm ~rs1 ~funct3:7 ~rd ~opcode:0b0010011 a
let ori a rd rs1 imm = i_type ~imm ~rs1 ~funct3:6 ~rd ~opcode:0b0010011 a
let lui a rd imm20 = emit a (((imm20 land 0xFFFFF) lsl 12) lor (rd lsl 7) lor 0b0110111)
let ld a rd rs1 imm = i_type ~imm ~rs1 ~funct3:3 ~rd ~opcode:0b0000011 a
let lw a rd rs1 imm = i_type ~imm ~rs1 ~funct3:2 ~rd ~opcode:0b0000011 a
let lbu a rd rs1 imm = i_type ~imm ~rs1 ~funct3:4 ~rd ~opcode:0b0000011 a
let sd a rs2 rs1 imm = s_type ~imm ~rs2 ~rs1 ~funct3:3 ~opcode:0b0100011 a
let sb a rs2 rs1 imm = s_type ~imm ~rs2 ~rs1 ~funct3:0 ~opcode:0b0100011 a
let ecall a = emit a 0x00000073
let ebreak a = emit a 0x00100073
let nop a = addi a 0 0 0

(* li for values up to 32 bits *)
let li a rd (v : int64) =
  let lo = Int64.to_int (Bits.sign_extend (Bits.extract v ~lo:0 ~len:12) ~width:12) in
  let hi = Int64.to_int (Bits.shr (Int64.sub v (Int64.of_int lo)) 12) land 0xFFFFF in
  if hi = 0 then addi a rd 0 lo
  else begin
    lui a rd hi;
    if lo <> 0 then addi a rd rd lo
  end

let beq a rs1 rs2 lbl =
  a.fixups <- (a.count, `B, lbl) :: a.fixups;
  emit a ((rs2 lsl 20) lor (rs1 lsl 15) lor (0 lsl 12) lor 0b1100011)

let bne a rs1 rs2 lbl =
  a.fixups <- (a.count, `B, lbl) :: a.fixups;
  emit a ((rs2 lsl 20) lor (rs1 lsl 15) lor (1 lsl 12) lor 0b1100011)

let bltu a rs1 rs2 lbl =
  a.fixups <- (a.count, `B, lbl) :: a.fixups;
  emit a ((rs2 lsl 20) lor (rs1 lsl 15) lor (6 lsl 12) lor 0b1100011)

let jal a rd lbl =
  a.fixups <- (a.count, `J, lbl) :: a.fixups;
  emit a ((rd lsl 7) lor 0b1101111)

let j a lbl = jal a 0 lbl

let assemble (a : t) : bytes =
  let words = Array.of_list (List.rev a.words) in
  List.iter
    (fun (idx, kind, name) ->
      let target =
        match Hashtbl.find_opt a.labels name with
        | Some t -> t
        | None -> invalid_arg ("undefined label " ^ name)
      in
      let off = (target - idx) * 4 in
      let w = Int32.to_int words.(idx) land 0xFFFFFFFF in
      let patched =
        match kind with
        | `B ->
          if off < -4096 || off >= 4096 then invalid_arg "branch out of range";
          w
          lor (((off lsr 12) land 1) lsl 31)
          lor (((off lsr 5) land 0x3F) lsl 25)
          lor (((off lsr 1) land 0xF) lsl 8)
          lor (((off lsr 11) land 1) lsl 7)
        | `J ->
          if off < -(1 lsl 20) || off >= 1 lsl 20 then invalid_arg "jump out of range";
          w
          lor (((off lsr 20) land 1) lsl 31)
          lor (((off lsr 1) land 0x3FF) lsl 21)
          lor (((off lsr 11) land 1) lsl 20)
          lor (((off lsr 12) land 0xFF) lsl 12)
      in
      words.(idx) <- Int32.of_int patched)
    a.fixups;
  let out = Bytes.create (4 * Array.length words) in
  Array.iteri (fun i w -> Bytes.set_int32_le out (4 * i) w) words;
  out
