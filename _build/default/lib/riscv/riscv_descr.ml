(* RV64IM guest description: the paper's Table 5 lists RISC-V among the
   supported guests ("no significant challenges") with full-system support
   pending - exactly the state here: a complete user-level RV64IM model
   demonstrating that retargeting the DBT is an ADL exercise. *)

let header =
  {|
arch "rv64im" {
  wordsize 64;
  endian little;
  bank X : uint64[32];
  reg PC_SHADOW : uint64;
}
|}

let helpers =
  {|
helper uint64 rx(uint64 n) {
  return select(n == 0, 0, read_register_bank(X, n));
}

helper void wx(uint64 n, uint64 v) {
  if (n != 0) { write_register_bank(X, n, v); }
}
|}

(* RV encodings: funct7[31:25] rs2[24:20] rs1[19:15] funct3[14:12] rd[11:7]
   opcode[6:0]. *)
let decodes =
  {|
decode lui    "imm20:20 rd:5 0110111";
decode auipc  "imm20:20 rd:5 0010111";
decode jal    "i20:1 i10_1:10 i11:1 i19_12:8 rd:5 1101111" ends_block;
decode jalr   "imm12:12 rs1:5 000 rd:5 1100111" ends_block;
decode branch "i12:1 i10_5:6 rs2:5 rs1:5 funct3:3 i4_1:4 i11:1 1100011"
  when (funct3 != 2 && funct3 != 3) ends_block;
decode load   "imm12:12 rs1:5 funct3:3 rd:5 0000011" when (funct3 != 7);
decode store  "imm7:7 rs2:5 rs1:5 funct3:3 imm5:5 0100011" when (funct3 < 4);
decode op_imm "imm12:12 rs1:5 funct3:3 rd:5 0010011";
decode op_imm32 "imm12:12 rs1:5 funct3:3 rd:5 0011011" when (funct3 == 0 || funct3 == 1 || funct3 == 5);
decode op     "funct7:7 rs2:5 rs1:5 funct3:3 rd:5 0110011"
  when (funct7 == 0 || funct7 == 32 || funct7 == 1);
decode op32   "funct7:7 rs2:5 rs1:5 funct3:3 rd:5 0111011"
  when (funct7 == 0 || funct7 == 32 || funct7 == 1);
decode ecall  "000000000000 00000 000 00000 1110011" ends_block;
decode ebreak "000000000001 00000 000 00000 1110011" ends_block;
decode fence  "imm12:12 rs1:5 000 rd:5 0001111";
|}

let executes =
  {|
execute(lui) {
  wx(inst.rd, sign_extend(inst.imm20 << 12, 32));
}

execute(auipc) {
  wx(inst.rd, read_pc() + sign_extend(inst.imm20 << 12, 32));
}

execute(jal) {
  uint64 off = sign_extend((inst.i20 << 20) | (inst.i19_12 << 12) | (inst.i11 << 11)
                           | (inst.i10_1 << 1), 21);
  wx(inst.rd, read_pc() + 4);
  write_pc(read_pc() + off);
}

execute(jalr) {
  uint64 target = (rx(inst.rs1) + sign_extend(inst.imm12, 12)) & (~(uint64)1);
  wx(inst.rd, read_pc() + 4);
  write_pc(target);
}

execute(branch) {
  uint64 a = rx(inst.rs1);
  uint64 b = rx(inst.rs2);
  uint64 taken = 0;
  if (inst.funct3 == 0) { taken = a == b; }
  if (inst.funct3 == 1) { taken = a != b; }
  if (inst.funct3 == 4) { taken = (sint64)a < (sint64)b; }
  if (inst.funct3 == 5) { taken = (sint64)a >= (sint64)b; }
  if (inst.funct3 == 6) { taken = a < b; }
  if (inst.funct3 == 7) { taken = a >= b; }
  uint64 off = sign_extend((inst.i12 << 12) | (inst.i11 << 11) | (inst.i10_5 << 5)
                           | (inst.i4_1 << 1), 13);
  if (taken) { write_pc(read_pc() + off); } else { write_pc(read_pc() + 4); }
}

execute(load) {
  uint64 addr = rx(inst.rs1) + sign_extend(inst.imm12, 12);
  uint64 v = 0;
  if (inst.funct3 == 0) { v = sign_extend(mem_read_8(addr), 8); }
  if (inst.funct3 == 1) { v = sign_extend(mem_read_16(addr), 16); }
  if (inst.funct3 == 2) { v = sign_extend(mem_read_32(addr), 32); }
  if (inst.funct3 == 3) { v = mem_read_64(addr); }
  if (inst.funct3 == 4) { v = mem_read_8(addr); }
  if (inst.funct3 == 5) { v = mem_read_16(addr); }
  if (inst.funct3 == 6) { v = mem_read_32(addr); }
  wx(inst.rd, v);
}

execute(store) {
  uint64 addr = rx(inst.rs1) + sign_extend((inst.imm7 << 5) | inst.imm5, 12);
  uint64 v = rx(inst.rs2);
  if (inst.funct3 == 0) { mem_write_8(addr, v); }
  if (inst.funct3 == 1) { mem_write_16(addr, v); }
  if (inst.funct3 == 2) { mem_write_32(addr, v); }
  if (inst.funct3 == 3) { mem_write_64(addr, v); }
}

execute(op_imm) {
  uint64 a = rx(inst.rs1);
  uint64 imm = sign_extend(inst.imm12, 12);
  uint64 r = 0;
  if (inst.funct3 == 0) { r = a + imm; }
  if (inst.funct3 == 1) { r = a << (imm & 63); }
  if (inst.funct3 == 2) { r = (sint64)a < (sint64)imm; }
  if (inst.funct3 == 3) { r = a < imm; }
  if (inst.funct3 == 4) { r = a ^ imm; }
  if (inst.funct3 == 5) {
    if ((inst.imm12 >> 10) == 1) { r = (uint64)((sint64)a >> (imm & 63)); }
    else { r = a >> (imm & 63); }
  }
  if (inst.funct3 == 6) { r = a | imm; }
  if (inst.funct3 == 7) { r = a & imm; }
  wx(inst.rd, r);
}

execute(op_imm32) {
  uint64 a = rx(inst.rs1) & 0xFFFFFFFF;
  uint64 imm = sign_extend(inst.imm12, 12);
  uint64 r = 0;
  if (inst.funct3 == 0) { r = a + imm; }
  if (inst.funct3 == 1) { r = a << (imm & 31); }
  if (inst.funct3 == 5) {
    if ((inst.imm12 >> 10) == 1) { r = (uint64)((sint64)sign_extend(a, 32) >> (imm & 31)); }
    else { r = a >> (imm & 31); }
  }
  wx(inst.rd, sign_extend(r & 0xFFFFFFFF, 32));
}

execute(op) {
  uint64 a = rx(inst.rs1);
  uint64 b = rx(inst.rs2);
  uint64 r = 0;
  if (inst.funct7 == 0) {
    if (inst.funct3 == 0) { r = a + b; }
    if (inst.funct3 == 1) { r = a << (b & 63); }
    if (inst.funct3 == 2) { r = (sint64)a < (sint64)b; }
    if (inst.funct3 == 3) { r = a < b; }
    if (inst.funct3 == 4) { r = a ^ b; }
    if (inst.funct3 == 5) { r = a >> (b & 63); }
    if (inst.funct3 == 6) { r = a | b; }
    if (inst.funct3 == 7) { r = a & b; }
  }
  if (inst.funct7 == 32) {
    if (inst.funct3 == 0) { r = a - b; }
    if (inst.funct3 == 5) { r = (uint64)((sint64)a >> (b & 63)); }
  }
  if (inst.funct7 == 1) {
    if (inst.funct3 == 0) { r = a * b; }
    if (inst.funct3 == 1) { r = smulh64(a, b); }
    if (inst.funct3 == 3) { r = umulh64(a, b); }
    if (inst.funct3 == 4) { r = select(b == 0, 0xFFFFFFFFFFFFFFFF, sdiv64(a, b)); }
    if (inst.funct3 == 5) { r = select(b == 0, 0xFFFFFFFFFFFFFFFF, udiv64(a, b)); }
    if (inst.funct3 == 6) { r = select(b == 0, a, (uint64)((sint64)a % (sint64)b)); }
    if (inst.funct3 == 7) { r = select(b == 0, a, a % b); }
  }
  wx(inst.rd, r);
}

execute(op32) {
  uint64 a = rx(inst.rs1) & 0xFFFFFFFF;
  uint64 b = rx(inst.rs2) & 0xFFFFFFFF;
  uint64 r = 0;
  if (inst.funct7 == 0) {
    if (inst.funct3 == 0) { r = a + b; }
    if (inst.funct3 == 1) { r = a << (b & 31); }
    if (inst.funct3 == 5) { r = a >> (b & 31); }
  }
  if (inst.funct7 == 32) {
    if (inst.funct3 == 0) { r = a - b; }
    if (inst.funct3 == 5) { r = (uint64)((sint64)sign_extend(a, 32) >> (b & 31)); }
  }
  if (inst.funct7 == 1) {
    if (inst.funct3 == 0) { r = a * b; }
  }
  wx(inst.rd, sign_extend(r & 0xFFFFFFFF, 32));
}

execute(ecall) {
  take_exception(0x15, 0);
}

execute(ebreak) {
  halt();
}

execute(fence) {
  barrier();
}
|}

let source = String.concat "\n" [ header; helpers; decodes; executes ]
