lib/riscv/riscv.ml: Guest Hvm Int64 Lazy Riscv_descr Ssa
