lib/riscv/riscv_descr.ml: String
