lib/riscv/rv_asm.ml: Array Bytes Dbt_util Hashtbl Int32 Int64 List
