(** A reference interpreter for a guest architecture: each instruction is
    decoded and its SSA action executed directly with {!Ssa.Interp},
    against the same HVM devices and guest-MMU model the DBT engines use.

    No JIT and no cycle fidelity: this is the correctness oracle that the
    engines are differentially tested against. *)

type t = {
  guest : Guest.Ops.ops;
  machine : Hvm.Machine.t;
  ctx : Hostir.Exec.ctx;  (** register-file container only *)
  uart : Hvm.Device.Uart.state;
  timer : Hvm.Device.Timer.state;
  syscon : Hvm.Device.Syscon.state;
  mutable instrs_executed : int;
}

exception Insn_aborted

val create : ?mem_size:int -> Guest.Ops.ops -> t
val sys : t -> Guest.Ops.sys_ctx
val load_image : t -> addr:int64 -> Bytes.t -> unit
val set_entry : t -> int64 -> unit

type exit_reason = Poweroff of int | Step_limit

(** Interpret up to [max_instrs] guest instructions. *)
val run : ?max_instrs:int -> t -> exit_reason

val uart_output : t -> string
val regfile : t -> Bytes.t
