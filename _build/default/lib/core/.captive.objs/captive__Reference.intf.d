lib/core/reference.mli: Bytes Guest Hostir Hvm
