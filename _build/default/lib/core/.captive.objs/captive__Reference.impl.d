lib/core/reference.ml: Adl Common Guest Hostir Hvm Int64 List Option Ssa
