lib/core/engine.ml: Adl Array Bytes Common Dbt_util Guest Hashtbl Hostir Hvm Int64 List Option Printf Ssa String Sys Unix
