lib/core/common.ml: Adl Array Guest Hostir Hvm List
