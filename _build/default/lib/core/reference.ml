(* A reference interpreter for a guest architecture: decode each
   instruction and execute its SSA action directly with Ssa.Interp,
   against the same HVM devices and guest-MMU model the DBT engines use.

   No JIT, no host paging, no cycle fidelity - this is the correctness
   oracle the engines are differentially tested against. *)

module Exec = Hostir.Exec
module Machine = Hvm.Machine
module Ops = Guest.Ops

type t = {
  guest : Ops.ops;
  machine : Machine.t;
  ctx : Exec.ctx; (* used only as the register-file container *)
  uart : Hvm.Device.Uart.state;
  timer : Hvm.Device.Timer.state;
  syscon : Hvm.Device.Syscon.state;
  mutable instrs_executed : int;
}

exception Insn_aborted

let create ?(mem_size = 256 * 1024 * 1024) (guest : Ops.ops) : t =
  let intc = Hvm.Device.Intc.create () in
  let uart = Hvm.Device.Uart.create () in
  let timer = Hvm.Device.Timer.create intc in
  let syscon = Hvm.Device.Syscon.create () in
  let devices =
    [
      Hvm.Device.Intc.device intc;
      Hvm.Device.Uart.device uart;
      Hvm.Device.Timer.device timer;
      Hvm.Device.Syscon.device syscon;
    ]
  in
  let machine = Machine.create ~mem_size ~devices ~intc () in
  let ctx =
    Exec.create ~machine ~helpers:[||] ~fault_handler:(fun _ _ _ ~bits:_ ~value:_ -> Exec.Retry)
  in
  let t = { guest; machine; ctx; uart; timer; syscon; instrs_executed = 0 } in
  guest.Ops.reset (Common.sys_ctx guest ctx) ~entry:0L;
  t

let sys (t : t) = Common.sys_ctx t.guest t.ctx

let load_image (t : t) ~addr image = Hvm.Mem.blit_in t.machine.Machine.mem ~addr image
let set_entry (t : t) entry = t.guest.Ops.reset (sys t) ~entry

(* Translate-and-access guest memory with full fault semantics. *)
let guest_access (t : t) sysc ~(access : Ops.access) ~bits va ~(value : int64 option) : int64 =
  match t.guest.Ops.mmu_translate sysc ~access va with
  | Error fault ->
    t.guest.Ops.data_abort sysc ~va ~access ~fault;
    raise Ssa.Interp.Stop
  | Ok (pa, perms) ->
    let el = t.guest.Ops.privilege_level sysc in
    let allowed =
      (el > 0 || perms.Ops.puser) && (access <> Ops.Astore || perms.Ops.pw)
    in
    if not allowed then begin
      t.guest.Ops.data_abort sysc ~va ~access ~fault:(Ops.Gf_permission 3);
      raise Ssa.Interp.Stop
    end;
    (match value with
    | Some v ->
      Machine.phys_write t.machine ~bits pa v;
      0L
    | None -> Machine.phys_read t.machine ~bits pa)

let interp_state (t : t) : Ssa.Interp.state =
  let sysc = sys t in
  {
    Ssa.Interp.bank_read = (fun bank i -> sysc.Ops.read_bank bank i);
    bank_write = (fun bank i v -> sysc.Ops.write_bank bank i v);
    reg_read = sysc.Ops.read_reg;
    reg_write = sysc.Ops.write_reg;
    pc_read = sysc.Ops.get_pc;
    pc_write = sysc.Ops.set_pc;
    mem_read = (fun bits va -> guest_access t sysc ~access:Ops.Aload ~bits va ~value:None);
    mem_write =
      (fun bits va v -> ignore (guest_access t sysc ~access:Ops.Astore ~bits va ~value:(Some v)));
    coproc_read = (fun id -> t.guest.Ops.coproc_read sysc id);
    coproc_write = (fun id v -> ignore (t.guest.Ops.coproc_write sysc id v));
    effect =
      (fun name args ->
        match (name, args) with
        | "take_exception", [ ec; iss ] ->
          t.guest.Ops.take_exception sysc ~ec ~iss;
          raise Ssa.Interp.Stop
        | "eret", _ ->
          t.guest.Ops.eret sysc;
          raise Ssa.Interp.Stop
        | "tlb_flush", _ | "tlb_flush_page", _ | "barrier", _ -> ()
        | "halt", _ -> raise (Machine.Powered_off 0)
        | "wfi", _ ->
          (* Advance time so a pending timer can fire. *)
          Machine.charge t.machine 1000
        | other, _ -> invalid_arg ("reference: unknown effect " ^ other));
  }

type exit_reason = Poweroff of int | Step_limit

(* Execute up to [max_instrs] guest instructions. *)
let run ?(max_instrs = max_int) (t : t) : exit_reason =
  let sysc = sys t in
  let st = interp_state t in
  let model = t.guest.Ops.model in
  let result = ref None in
  (try
     while !result = None do
       if t.syscon.Hvm.Device.Syscon.poweroff then
         result := Some (Poweroff t.syscon.Hvm.Device.Syscon.exit_code)
       else if t.instrs_executed >= max_instrs then result := Some Step_limit
       else begin
         Machine.charge t.machine 1; (* nominal time so devices advance *)
         if Machine.irq_pending t.machine then ignore (t.guest.Ops.deliver_irq sysc);
         let va = sysc.Ops.get_pc () in
         match t.guest.Ops.mmu_translate sysc ~access:Ops.Afetch va with
         | Error fault -> t.guest.Ops.insn_abort sysc ~va ~fault
         | Ok (pa, perms) ->
           let el = t.guest.Ops.privilege_level sysc in
           if (el = 0 && not perms.Ops.puser) || not perms.Ops.px then
             t.guest.Ops.insn_abort sysc ~va ~fault:(Ops.Gf_permission 3)
           else begin
             let word = Machine.phys_read t.machine ~bits:32 pa in
             match Ssa.Offline.decode model word with
             | None -> t.guest.Ops.undefined_insn sysc
             | Some d ->
               t.instrs_executed <- t.instrs_executed + 1;
               let action = Ssa.Offline.action model d.Adl.Decode.name in
               let field name =
                 if name = "__el" then Int64.of_int el
                 else
                   match List.assoc_opt name d.Adl.Decode.field_values with
                   | Some v -> v
                   | None -> invalid_arg ("no field " ^ name)
               in
               Ssa.Interp.run st action ~field;
               (* Advance the PC unless the action redirected it (branch
                  target or exception vector). *)
               if (not d.Adl.Decode.ends_block) && sysc.Ops.get_pc () = va then
                 sysc.Ops.set_pc (Int64.add va (Int64.of_int t.guest.Ops.insn_size))
           end
       end
     done
   with Machine.Powered_off code -> result := Some (Poweroff code));
  Option.get !result

let uart_output (t : t) = Hvm.Device.Uart.output t.uart
let regfile (t : t) = t.ctx.Exec.regfile
