(* Memory-mapped peripherals of the guest platform, emulated by the
   KVM-side portion of the hypervisor (paper Sec. 2.3: "software emulations
   of guest architectural devices (such as the interrupt controller,
   UARTs, etc)"). *)

type t = {
  name : string;
  base : int64; (* guest-physical base address *)
  size : int;
  read : int -> int -> int64; (* offset, width-bits *)
  write : int -> int -> int64 -> unit; (* offset, width-bits, value *)
  tick : int -> unit; (* advance device time by n host cycles *)
}

(* --- interrupt controller (GIC-lite) -------------------------------------- *)

module Intc = struct
  type state = {
    mutable pending : int;
    mutable enabled : int;
  }

  let create () = { pending = 0; enabled = 0 }

  let raise_line st line = st.pending <- st.pending lor (1 lsl line)
  let clear_line st line = st.pending <- st.pending land lnot (1 lsl line)
  let asserted st = st.pending land st.enabled <> 0

  (* First pending+enabled line, or -1. *)
  let active st =
    let masked = st.pending land st.enabled in
    if masked = 0 then -1
    else Int64.to_int (Int64.of_int (Dbt_util.Bits.ctz (Int64.of_int masked)))

  let device ?(base = 0x0900_0000L) (st : state) : t =
    {
      name = "intc";
      base;
      size = 0x1000;
      read =
        (fun off _ ->
          match off with
          | 0x0 -> Int64.of_int st.pending
          | 0x4 -> Int64.of_int st.enabled
          | 0x8 -> Int64.of_int (active st)
          | _ -> 0L);
      write =
        (fun off _ v ->
          match off with
          | 0x4 -> st.enabled <- Int64.to_int (Int64.logand v 0xFFFFFFFFL)
          | 0x8 -> clear_line st (Int64.to_int (Int64.logand v 31L))
          | 0xC -> raise_line st (Int64.to_int (Int64.logand v 31L)) (* software-set *)
          | _ -> ());
      tick = (fun _ -> ());
    }
end

(* --- UART ------------------------------------------------------------------- *)

module Uart = struct
  type state = {
    output : Buffer.t;
    mutable input : int list; (* pending input bytes *)
  }

  let create () = { output = Buffer.create 256; input = [] }
  let push_input st s = st.input <- st.input @ List.map Char.code (List.init (String.length s) (String.get s))
  let output st = Buffer.contents st.output

  let device ?(base = 0x0910_0000L) (st : state) : t =
    {
      name = "uart";
      base;
      size = 0x1000;
      read =
        (fun off _ ->
          match off with
          | 0x0 -> (
            match st.input with
            | c :: rest ->
              st.input <- rest;
              Int64.of_int c
            | [] -> 0L)
          | 0x4 ->
            (* status: bit0 = tx ready (always), bit1 = rx available *)
            Int64.of_int (1 lor if st.input <> [] then 2 else 0)
          | _ -> 0L);
      write =
        (fun off _ v ->
          match off with
          | 0x0 -> Buffer.add_char st.output (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
          | _ -> ());
      tick = (fun _ -> ());
    }
end

(* --- countdown timer ---------------------------------------------------------- *)

module Timer = struct
  type state = {
    intc : Intc.state;
    line : int;
    mutable load : int;
    mutable value : int;
    mutable enabled : bool;
    mutable irq_enabled : bool;
    mutable fired : int;
  }

  let create ?(line = 1) intc = { intc; line; load = 0; value = 0; enabled = false; irq_enabled = false; fired = 0 }

  let device ?(base = 0x0920_0000L) (st : state) : t =
    {
      name = "timer";
      base;
      size = 0x1000;
      read =
        (fun off _ ->
          match off with
          | 0x0 -> Int64.of_int st.load
          | 0x4 -> Int64.of_int st.value
          | 0x8 ->
            Int64.of_int ((if st.enabled then 1 else 0) lor if st.irq_enabled then 2 else 0)
          | 0xC -> Int64.of_int st.fired
          | _ -> 0L);
      write =
        (fun off _ v ->
          let v = Int64.to_int (Int64.logand v 0x7FFFFFFFL) in
          match off with
          | 0x0 ->
            st.load <- v;
            st.value <- v
          | 0x8 ->
            st.enabled <- v land 1 <> 0;
            st.irq_enabled <- v land 2 <> 0
          | 0xC -> Intc.clear_line st.intc st.line (* ack *)
          | _ -> ());
      tick =
        (fun n ->
          if st.enabled && st.load > 0 then begin
            let rec burn n =
              if n > 0 then
                if st.value > n then st.value <- st.value - n
                else begin
                  let rem = n - st.value in
                  st.fired <- st.fired + 1;
                  if st.irq_enabled then Intc.raise_line st.intc st.line;
                  st.value <- st.load;
                  burn rem
                end
            in
            burn n
          end);
    }
end

(* --- system controller (poweroff) ----------------------------------------------- *)

module Syscon = struct
  type state = { mutable poweroff : bool; mutable exit_code : int }

  let create () = { poweroff = false; exit_code = 0 }

  let device ?(base = 0x0930_0000L) (st : state) : t =
    {
      name = "syscon";
      base;
      size = 0x1000;
      read = (fun _ _ -> 0L);
      write =
        (fun off _ v ->
          match off with
          | 0x0 ->
            st.poweroff <- true;
            st.exit_code <- Int64.to_int (Int64.logand v 0xFFL)
          | _ -> ());
      tick = (fun _ -> ());
    }
end
