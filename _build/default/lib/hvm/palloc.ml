(* Physical frame allocator over a reserved region of host physical memory
   (used for page tables and other hypervisor structures). *)

type t = {
  mem : Mem.t;
  base : int64;
  limit : int64;
  mutable next : int64;
  mutable free : int64 list;
}

let create mem ~base ~limit = { mem; base; limit; next = base; free = [] }

exception Out_of_frames

let alloc t =
  match t.free with
  | f :: rest ->
    t.free <- rest;
    Mem.zero_range t.mem ~addr:f ~len:4096;
    f
  | [] ->
    if Int64.compare t.next t.limit >= 0 then raise Out_of_frames;
    let f = t.next in
    t.next <- Int64.add t.next 4096L;
    Mem.zero_range t.mem ~addr:f ~len:4096;
    f

let release t f = t.free <- f :: t.free

let reset t =
  t.next <- t.base;
  t.free <- []

let frames_used t =
  Int64.to_int (Int64.div (Int64.sub t.next t.base) 4096L) - List.length t.free
