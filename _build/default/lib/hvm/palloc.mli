(** Physical frame allocator over a reserved region of host physical
    memory (page tables and other hypervisor structures).  Frames are
    4 KiB and zeroed on allocation. *)

type t = {
  mem : Mem.t;
  base : int64;
  limit : int64;
  mutable next : int64;
  mutable free : int64 list;
}

exception Out_of_frames

val create : Mem.t -> base:int64 -> limit:int64 -> t
val alloc : t -> int64
val release : t -> int64 -> unit
val reset : t -> unit
val frames_used : t -> int
