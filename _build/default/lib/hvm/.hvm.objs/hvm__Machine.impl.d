lib/hvm/machine.ml: Cost Device Int64 List Mem Pagetable Palloc Tlb
