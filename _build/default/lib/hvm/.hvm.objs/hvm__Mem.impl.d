lib/hvm/mem.ml: Bytes Char Int64
