lib/hvm/palloc.ml: Int64 List Mem
