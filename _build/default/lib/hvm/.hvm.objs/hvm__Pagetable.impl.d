lib/hvm/pagetable.ml: Dbt_util Int64 Mem Palloc
