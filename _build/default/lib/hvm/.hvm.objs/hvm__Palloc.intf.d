lib/hvm/palloc.mli: Mem
