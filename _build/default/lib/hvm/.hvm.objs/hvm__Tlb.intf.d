lib/hvm/tlb.mli: Pagetable
