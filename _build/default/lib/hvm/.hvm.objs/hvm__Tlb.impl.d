lib/hvm/tlb.ml: Array Int64 Pagetable
