lib/hvm/cost.ml:
