lib/hvm/mem.mli: Bytes
