lib/hvm/pagetable.mli: Mem Palloc
