lib/hvm/device.ml: Buffer Char Dbt_util Int64 List String
