(* Four-level host page tables, x86-64 style, stored *in* host physical
   memory so that hypervisor-level tricks (clearing the low half of the
   PML4 on guest TLB flushes, write-protecting pages for self-modifying
   code detection) are real memory operations, exactly as in the paper.

   Entry layout (per level):
     bit 0   present
     bit 1   writable
     bit 2   user accessible
     bit 63  no-execute
     bits 12..51  physical frame number << 12 *)

module Bits = Dbt_util.Bits

let pte_present = 0x1L
let pte_writable = 0x2L
let pte_user = 0x4L
let pte_nx = Int64.min_int (* bit 63 *)

let frame_of pte = Int64.logand pte 0x000F_FFFF_FFFF_F000L

type flags = { writable : bool; user : bool; executable : bool }

let flags_to_bits f =
  Int64.logor pte_present
    (Int64.logor
       (if f.writable then pte_writable else 0L)
       (Int64.logor (if f.user then pte_user else 0L) (if f.executable then 0L else pte_nx)))

let flags_of_bits pte =
  {
    writable = Int64.logand pte pte_writable <> 0L;
    user = Int64.logand pte pte_user <> 0L;
    executable = Int64.logand pte pte_nx = 0L;
  }

let index level va =
  (* level 3 = PML4 (bits 39..47) ... level 0 = PT (bits 12..20) *)
  Int64.to_int (Bits.extract va ~lo:(12 + (9 * level)) ~len:9)

(* Walk to the leaf PTE; returns the physical address of the PTE and its
   value, or None if a level is not present.  Counts one memory access per
   level for the cycle model via [accesses]. *)
let walk mem ~root va =
  let rec go table level accesses =
    let pte_addr = Int64.add table (Int64.of_int (8 * index level va)) in
    let pte = Mem.read64 mem pte_addr in
    if Int64.logand pte pte_present = 0L then (None, accesses + 1)
    else if level = 0 then (Some (pte_addr, pte), accesses + 1)
    else go (frame_of pte) (level - 1) (accesses + 1)
  in
  go root 3 0

(* Install a 4 KiB mapping va -> pa, allocating intermediate tables.
   Intermediate entries are created maximally permissive; the leaf carries
   the effective permissions (x86 ANDs permissions across levels). *)
let map mem palloc ~root va pa (f : flags) =
  let rec go table level =
    let pte_addr = Int64.add table (Int64.of_int (8 * index level va)) in
    if level = 0 then
      Mem.write64 mem pte_addr (Int64.logor (Int64.logand pa 0x000F_FFFF_FFFF_F000L) (flags_to_bits f))
    else begin
      let pte = Mem.read64 mem pte_addr in
      let next =
        if Int64.logand pte pte_present = 0L then begin
          let frame = Palloc.alloc palloc in
          Mem.write64 mem pte_addr
            (Int64.logor frame (Int64.logor pte_present (Int64.logor pte_writable pte_user)));
          frame
        end
        else frame_of pte
      in
      go next (level - 1)
    end
  in
  go root 3

(* Remove a single mapping (clear the present bit of the leaf). *)
let unmap mem ~root va =
  match fst (walk mem ~root va) with
  | Some (pte_addr, pte) -> Mem.write64 mem pte_addr (Int64.logand pte (Int64.lognot pte_present))
  | None -> ()

(* Clear the present bit on the leaf and rewrite its permissions. *)
let protect mem ~root va (f : flags) =
  match fst (walk mem ~root va) with
  | Some (pte_addr, pte) ->
    Mem.write64 mem pte_addr (Int64.logor (frame_of pte) (flags_to_bits f))
  | None -> ()

(* Recursively release a table subtree back to the frame allocator. *)
let rec free_subtree mem palloc table level =
  if level > 0 then
    for i = 0 to 511 do
      let pte = Mem.read64 mem (Int64.add table (Int64.of_int (8 * i))) in
      if Int64.logand pte pte_present <> 0L then free_subtree mem palloc (frame_of pte) (level - 1)
    done;
  Palloc.release palloc table

(* The paper's guest-TLB-flush intercept: on x86-64 hosts "we only need to
   invalidate the first 256 entries on the top-level page table" - the
   lower (guest) half of the address space.  Invalidated subtrees are
   released so repopulation starts from clean tables. *)
let clear_low_half mem palloc ~root =
  for i = 0 to 255 do
    let pte_addr = Int64.add root (Int64.of_int (8 * i)) in
    let pte = Mem.read64 mem pte_addr in
    if Int64.logand pte pte_present <> 0L then begin
      free_subtree mem palloc (frame_of pte) 2;
      Mem.write64 mem pte_addr 0L
    end
  done
