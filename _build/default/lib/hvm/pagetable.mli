(** Four-level host page tables, x86-64 style, stored in host physical
    memory — so hypervisor-level operations (clearing the low half of the
    PML4 on guest TLB flushes, write-protecting pages for self-modifying
    code detection) are real memory operations, as in the paper. *)

val pte_present : int64
val pte_writable : int64
val pte_user : int64
val pte_nx : int64

(** Physical frame of a PTE. *)
val frame_of : int64 -> int64

type flags = { writable : bool; user : bool; executable : bool }

val flags_to_bits : flags -> int64
val flags_of_bits : int64 -> flags

(** Table index of a VA at the given level (3 = PML4 ... 0 = PT). *)
val index : int -> int64 -> int

(** Walk to the leaf PTE: returns its physical address and value (or
    [None] at the first non-present level) and the number of memory
    accesses performed (for the cycle model). *)
val walk : Mem.t -> root:int64 -> int64 -> (int64 * int64) option * int

(** Install a 4 KiB mapping, allocating intermediate tables from the
    frame allocator.  Intermediate levels are maximally permissive; the
    leaf carries the effective permissions. *)
val map : Mem.t -> Palloc.t -> root:int64 -> int64 -> int64 -> flags -> unit

(** Clear the present bit of the leaf mapping. *)
val unmap : Mem.t -> root:int64 -> int64 -> unit

(** Rewrite the leaf's permissions in place. *)
val protect : Mem.t -> root:int64 -> int64 -> flags -> unit

(** Release a table subtree's frames back to the allocator. *)
val free_subtree : Mem.t -> Palloc.t -> int64 -> int -> unit

(** The paper's guest-TLB-flush intercept: invalidate the 256 low
    (guest-half) PML4 entries, releasing their subtrees. *)
val clear_low_half : Mem.t -> Palloc.t -> root:int64 -> unit
