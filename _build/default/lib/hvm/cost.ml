(* The cycle model of the simulated host machine.

   This is the single place where "time" comes from: both DBT engines
   execute their generated code on the same executor, which charges these
   costs.  Neither engine has a private notion of time, so the performance
   comparisons in the bench harness are produced by the *designs* (what
   code each engine emits, which architectural mechanisms it uses), not by
   per-engine constants.

   Magnitudes are modelled on a ~3.5 GHz Xeon (the paper's host): simple
   ALU ops 1 cycle, L1 access a few cycles, hardware page walk tens of
   cycles, fault delivery into a handler hundreds of cycles. *)

(* Costs are *throughput* oriented: a modern out-of-order host retires
   several independent ops per cycle, so dependent-latency charging would
   overstate everything uniformly.  The residual gap to real superscalar
   execution is captured by [Native_model.host_ipc]. *)
let alu = 1
let mov = 1
let fp = 2
let fp_div = 8
let fp_sqrt = 12
let int_div = 12
let int_mul = 1
let branch = 1
let branch_indirect = 4
let call = 4 (* direct call/ret pair amortized *)

(* A helper call from generated code: call + ret + argument marshalling +
   clobbered-register traffic around the call (the paper's motivation for
   avoiding helper calls in hot paths). *)
let helper_call_overhead = 22

(* Memory access: L1 hit, throughput-ish. *)
let mem_access = 2

(* Hardware TLB miss serviced by the page-table walker. *)
let tlb_miss_walk = 36

(* Taking a fault into a ring-0 handler and returning.  Captive's fault
   handler runs inside the HVM (same privilege, no VM exit), so this is
   fault entry + IRET plus handler dispatch. *)
let fault_roundtrip = 220

(* Extra book-keeping when the faulting access turns out to be a *guest*
   fault: reconstructing the faulting VA and syndrome for the guest
   exception (the paper's Sec. 3.5 explanation of the Data-Fault
   slowdown). *)
let guest_fault_bookkeeping = 600

(* Software interrupt into the hypervisor (int imm): used by Captive for
   non-trivial system operations. *)
let soft_interrupt = 280

(* Full host TLB flush (mov cr3). *)
let tlb_flush = 120

(* Switching page-table roots with PCID (no TLB flush). *)
let pcid_switch = 30

(* Per-translation dispatch: code-cache hash lookup in the execution
   engine when block chaining cannot be used. *)
let dispatch_lookup = 18

(* Entering/leaving a translation (prologue/epilogue). *)
let block_entry = 2
