(** IEEE-754 binary64 over [int64] bit patterns.

    All operations are bit-exact (the test suite checks them against the
    host FPU on thousands of random inputs).  Exception flags accumulate
    into the caller-provided {!Sf_types.flags}. *)

open Sf_types

val fmt : Sf_core.fmt

(** Bridges to native floats (exact: OCaml floats are binary64). *)
val of_float : float -> int64

val to_float : int64 -> float

val zero : int64
val neg_zero : int64
val one : int64
val infinity : int64
val neg_infinity : int64

(** Default NaN under the given architecture convention: positive for ARM,
    the negative "indefinite" for x86 (paper Table 2). *)
val default_nan : nan_style -> int64

val classify : int64 -> fclass
val is_nan : int64 -> bool
val is_snan : int64 -> bool
val is_inf : int64 -> bool
val is_zero : int64 -> bool
val sign : int64 -> bool

(** Arithmetic; [style] selects the default-NaN convention for invalid
    operations (default ARM), [rm] the rounding mode (default
    round-to-nearest-even). *)
val add : ?style:nan_style -> ?rm:rounding -> flags -> int64 -> int64 -> int64

val sub : ?style:nan_style -> ?rm:rounding -> flags -> int64 -> int64 -> int64
val mul : ?style:nan_style -> ?rm:rounding -> flags -> int64 -> int64 -> int64
val div : ?style:nan_style -> ?rm:rounding -> flags -> int64 -> int64 -> int64
val sqrt : ?style:nan_style -> ?rm:rounding -> flags -> int64 -> int64
val neg : int64 -> int64
val abs : int64 -> int64

(** ARM FMIN/FMAX semantics: NaNs propagate; -0 orders below +0. *)
val min_ : flags -> int64 -> int64 -> int64

val max_ : flags -> int64 -> int64 -> int64

val compare_ : flags -> int64 -> int64 -> Sf_core.cmp
val eq : flags -> int64 -> int64 -> bool
val lt : flags -> int64 -> int64 -> bool
val le : flags -> int64 -> int64 -> bool

val of_int64 : ?rm:rounding -> flags -> int64 -> int64
val of_uint64 : ?rm:rounding -> flags -> int64 -> int64

(** Conversion to signed int64; truncating by default, saturating with the
    invalid flag on overflow/NaN (AArch64 FCVTZS). *)
val to_int64 : ?rm:rounding -> flags -> int64 -> int64

val to_f32 : ?rm:rounding -> flags -> int64 -> int64
