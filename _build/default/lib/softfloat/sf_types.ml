(* Shared types for the software floating-point implementation. *)

type rounding =
  | Nearest_even
  | Toward_zero
  | Toward_pos
  | Toward_neg
  | Nearest_away

(* IEEE-754 exception flags, accumulated across operations like a real FPU
   status register. *)
type flags = {
  mutable invalid : bool;
  mutable div_by_zero : bool;
  mutable overflow : bool;
  mutable underflow : bool;
  mutable inexact : bool;
}

let new_flags () =
  { invalid = false; div_by_zero = false; overflow = false; underflow = false; inexact = false }

let clear_flags f =
  f.invalid <- false;
  f.div_by_zero <- false;
  f.overflow <- false;
  f.underflow <- false;
  f.inexact <- false

type fclass = Zero | Subnormal | Normal | Infinity | Quiet_nan | Signaling_nan

(* NaN conventions differ between hosts; this selects the default NaN and the
   sign convention used for invalid operations (Table 2 of the paper). *)
type nan_style = Arm_nan | X86_nan
