(** Architecture-specific floating-point semantics (paper Table 2).

    x86's SQRTSD and ARMv8's FSQRT agree on every value except the sign of
    the NaN produced for invalid (negative) inputs.  Captive executes the
    host instruction and emits an inline fix-up; this module is the shared
    definition of both semantics, of the fix-up, and of the Table 2
    inputs used by the bench harness. *)

(** x86 SQRTSD on a binary64 bit pattern. *)
val x86_sqrtsd : int64 -> int64

(** ARMv8 FSQRT (FPCR default-NaN mode for invalid inputs; NaN operands
    propagate). *)
val arm_fsqrt : int64 -> int64

(** The fix-up Captive applies after a host SQRTSD: for a non-NaN input,
    the x86 "indefinite" result is rewritten to ARM's default NaN; NaN
    inputs (which propagate identically) are untouched. *)
val fixup_sqrt_result : input:int64 -> int64 -> int64

(** The eight rows of Table 2: name and input bit pattern. *)
val table2_inputs : (string * int64) list

(** Human-readable rendering ("NaN", "-inf", "0.707107", ...). *)
val describe : int64 -> string
