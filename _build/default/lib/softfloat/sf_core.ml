(* Generic IEEE-754 binary floating point over a format descriptor.

   Values are carried as [int64] bit patterns (binary32 in the low 32 bits).
   Internally, significands are manipulated with 3 extra low bits
   (guard/round/sticky): a normal working significand has its integer bit at
   position [frac_bits + 3], i.e. lies in [2^(fb+3), 2^(fb+4)).

   The algorithms follow the classical Berkeley softfloat structure:
   unpack -> operate on (sign, biased exponent, working significand) ->
   round-and-pack. *)

open Sf_types
module Bits = Dbt_util.Bits

let ( +% ) = Int64.add
let ( -% ) = Int64.sub
let ( &% ) = Int64.logand
let ( |% ) = Int64.logor
let shl = Bits.shl
let shr = Bits.shr

type fmt = {
  width : int;
  exp_bits : int;
  frac_bits : int;
}

let f64_fmt = { width = 64; exp_bits = 11; frac_bits = 52 }
let f32_fmt = { width = 32; exp_bits = 8; frac_bits = 23 }

let bias fmt = (1 lsl (fmt.exp_bits - 1)) - 1
let exp_max fmt = (1 lsl fmt.exp_bits) - 1
let quiet_bit fmt = shl 1L (fmt.frac_bits - 1)
let implicit_bit fmt = shl 1L fmt.frac_bits
let sign_bit fmt = shl 1L (fmt.width - 1)

let sign_of fmt x = Bits.bit x (fmt.width - 1)
let exp_of fmt x = Int64.to_int (Bits.extract x ~lo:fmt.frac_bits ~len:fmt.exp_bits)
let frac_of fmt x = Bits.extract x ~lo:0 ~len:fmt.frac_bits

let pack fmt ~sign ~exp ~frac =
  (if sign then sign_bit fmt else 0L)
  |% shl (Int64.of_int exp) fmt.frac_bits
  |% frac

let classify fmt x =
  let e = exp_of fmt x and f = frac_of fmt x in
  if e = exp_max fmt then
    if f = 0L then Infinity
    else if f &% quiet_bit fmt <> 0L then Quiet_nan
    else Signaling_nan
  else if e = 0 then if f = 0L then Zero else Subnormal
  else Normal

let is_nan fmt x = match classify fmt x with Quiet_nan | Signaling_nan -> true | _ -> false
let is_snan fmt x = classify fmt x = Signaling_nan
let is_inf fmt x = classify fmt x = Infinity
let is_zero fmt x = classify fmt x = Zero

let default_nan fmt = function
  | Arm_nan -> pack fmt ~sign:false ~exp:(exp_max fmt) ~frac:(quiet_bit fmt)
  | X86_nan -> pack fmt ~sign:true ~exp:(exp_max fmt) ~frac:(quiet_bit fmt)

let infinity fmt sign = pack fmt ~sign ~exp:(exp_max fmt) ~frac:0L
let zero fmt sign = pack fmt ~sign ~exp:0 ~frac:0L
let max_finite fmt sign =
  pack fmt ~sign ~exp:(exp_max fmt - 1) ~frac:(Bits.mask fmt.frac_bits)

(* Quieten and propagate NaN operands; prefers the first NaN operand, which
   matches ARM behaviour when fix-ups are applied on top. *)
let propagate_nan fmt flags a b =
  if is_snan fmt a || is_snan fmt b then flags.invalid <- true;
  let quieten x = x |% quiet_bit fmt in
  if is_nan fmt a then quieten a else quieten b

(* --- round and pack ------------------------------------------------------ *)

(* Shift [x] right by [n] accumulating lost bits into the sticky (lowest)
   bit, as softfloat's shift64RightJamming. *)
let shift_right_jam x n =
  if n <= 0 then x
  else if n >= 64 then if x <> 0L then 1L else 0L
  else shr x n |% (if x &% Bits.mask n <> 0L then 1L else 0L)

(* [sig_] has the integer bit at [frac_bits + 3] (or below, for results known
   to be subnormal); [exp] is the corresponding biased exponent. *)
let round_pack fmt flags (rm : rounding) ~sign ~exp ~sig_ =
  let fb = fmt.frac_bits in
  let round_increment =
    match rm with
    | Nearest_even | Nearest_away -> 4L
    | Toward_zero -> 0L
    | Toward_pos -> if sign then 0L else 7L
    | Toward_neg -> if sign then 7L else 0L
  in
  let exp = ref exp and sig_ = ref sig_ in
  (* Overflow detection happens against the exponent the rounded result would
     have. *)
  if !exp >= exp_max fmt - 1 then begin
    let will_overflow =
      !exp > exp_max fmt - 1
      || (!exp = exp_max fmt - 1 && !sig_ +% round_increment >= shl 1L (fb + 4))
    in
    if will_overflow then begin
      flags.overflow <- true;
      flags.inexact <- true;
      (* Directed rounding can pin at the largest finite value. *)
      if round_increment = 0L then max_finite fmt sign else infinity fmt sign
    end
    else begin
      let round_bits = !sig_ &% 7L in
      if round_bits <> 0L then flags.inexact <- true;
      let s = shr (!sig_ +% round_increment) 3 in
      let s = if rm = Nearest_even && round_bits = 4L then s &% Int64.lognot 1L else s in
      pack fmt ~sign ~exp:!exp ~frac:(s &% Bits.mask fb)
    end
  end
  else begin
    if !exp <= 0 then begin
      (* Subnormal (or on the boundary): denormalize with jamming. *)
      let shift = 1 - !exp in
      sig_ := shift_right_jam !sig_ shift;
      exp := 0
    end;
    let round_bits = !sig_ &% 7L in
    if round_bits <> 0L then begin
      flags.inexact <- true;
      if !exp = 0 then flags.underflow <- true
    end;
    let s = shr (!sig_ +% round_increment) 3 in
    let s = if rm = Nearest_even && round_bits = 4L then s &% Int64.lognot 1L else s in
    (* Rounding may carry into the next exponent; packing handles it because
       a significand of exactly 2^fb with exp=0 encodes the smallest normal. *)
    let exp = if s >= shl 1L (fb + 1) then !exp + 1 else !exp in
    let s = if s >= shl 1L (fb + 1) then shr s 1 else s in
    if exp = 0 && s >= implicit_bit fmt then pack fmt ~sign ~exp:1 ~frac:(s &% Bits.mask fb)
    else pack fmt ~sign ~exp ~frac:(s &% Bits.mask fb)
  end

(* Unpack a finite non-zero value into (biased exp, significand with integer
   bit at frac_bits); subnormals are normalized with a correspondingly
   smaller exponent. *)
let unpack_finite fmt x =
  let e = exp_of fmt x and f = frac_of fmt x in
  if e = 0 then begin
    let shift = Bits.clz ~width:64 f - (63 - fmt.frac_bits) in
    (1 - shift, shl f shift)
  end
  else (e, f |% implicit_bit fmt)

(* --- addition / subtraction --------------------------------------------- *)

let add_mags fmt flags rm sign a b =
  let ea, sa = unpack_finite fmt a and eb, sb = unpack_finite fmt b in
  let sa = shl sa 3 and sb = shl sb 3 in
  let exp, sa, sb =
    if ea >= eb then (ea, sa, shift_right_jam sb (ea - eb))
    else (eb, shift_right_jam sa (eb - ea), sb)
  in
  let sum = sa +% sb in
  if sum >= shl 1L (fmt.frac_bits + 4) then
    round_pack fmt flags rm ~sign ~exp:(exp + 1) ~sig_:(shift_right_jam sum 1)
  else round_pack fmt flags rm ~sign ~exp ~sig_:sum

let sub_mags fmt flags rm sign a b =
  let ea, sa = unpack_finite fmt a and eb, sb = unpack_finite fmt b in
  let sa = shl sa 3 and sb = shl sb 3 in
  let exp, sa, sb, sign =
    if ea > eb || (ea = eb && Bits.ucompare sa sb >= 0) then
      (ea, sa, shift_right_jam sb (ea - eb), sign)
    else (eb, sb, shift_right_jam sa (eb - ea), not sign)
  in
  let diff = sa -% sb in
  if diff = 0L then
    (* Exact cancellation: +0 except under round-toward-negative. *)
    zero fmt (rm = Toward_neg)
  else begin
    let shift = Bits.clz ~width:64 diff - (63 - (fmt.frac_bits + 3)) in
    round_pack fmt flags rm ~sign ~exp:(exp - shift) ~sig_:(shl diff shift)
  end

let add ?(style = Arm_nan) fmt flags rm a b =
  let ca = classify fmt a and cb = classify fmt b in
  match (ca, cb) with
  | (Quiet_nan | Signaling_nan), _ | _, (Quiet_nan | Signaling_nan) ->
    propagate_nan fmt flags a b
  | Infinity, Infinity ->
    if sign_of fmt a <> sign_of fmt b then begin
      flags.invalid <- true;
      default_nan fmt style
    end
    else a
  | Infinity, _ -> a
  | _, Infinity -> b
  | Zero, Zero ->
    if sign_of fmt a = sign_of fmt b then a else zero fmt (rm = Toward_neg)
  | Zero, _ -> b
  | _, Zero -> a
  | (Normal | Subnormal), (Normal | Subnormal) ->
    let sa = sign_of fmt a and sb = sign_of fmt b in
    if sa = sb then add_mags fmt flags rm sa a b else sub_mags fmt flags rm sa a b

let neg fmt x = Int64.logxor x (sign_bit fmt)
let abs fmt x = x &% Int64.lognot (sign_bit fmt)
let sub ?style fmt flags rm a b = add ?style fmt flags rm a (neg fmt b)

(* --- multiplication ------------------------------------------------------ *)

(* Full 64x64 -> 128 unsigned multiply via 32-bit halves. *)
let mul64_wide a b =
  let lo32 x = x &% 0xFFFFFFFFL and hi32 x = shr x 32 in
  let al = lo32 a and ah = hi32 a and bl = lo32 b and bh = hi32 b in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid = hi32 ll +% lo32 lh +% lo32 hl in
  let lo = lo32 ll |% shl (lo32 mid) 32 in
  let hi = hh +% hi32 lh +% hi32 hl +% hi32 mid in
  (hi, lo)

let mul ?(style = Arm_nan) fmt flags rm a b =
  let ca = classify fmt a and cb = classify fmt b in
  let sign = sign_of fmt a <> sign_of fmt b in
  match (ca, cb) with
  | (Quiet_nan | Signaling_nan), _ | _, (Quiet_nan | Signaling_nan) ->
    propagate_nan fmt flags a b
  | Infinity, Zero | Zero, Infinity ->
    flags.invalid <- true;
    default_nan fmt style
  | Infinity, _ | _, Infinity -> infinity fmt sign
  | Zero, _ | _, Zero -> zero fmt sign
  | (Normal | Subnormal), (Normal | Subnormal) ->
    let ea, sa = unpack_finite fmt a and eb, sb = unpack_finite fmt b in
    let exp = ea + eb - bias fmt in
    (* Product of two (fb+1)-bit significands: integer bit at 2*fb or
       2*fb+1. Bring the integer bit to fb+3. *)
    let hi, lo = mul64_wide sa sb in
    let drop = (2 * fmt.frac_bits) - (fmt.frac_bits + 3) in
    let sig_ =
      if drop >= 64 then shr hi (drop - 64) |% (if lo <> 0L then 1L else 0L)
      else
        shl hi (64 - drop)
        |% shr lo drop
        |% (if lo &% Bits.mask drop <> 0L then 1L else 0L)
    in
    if sig_ >= shl 1L (fmt.frac_bits + 4) then
      round_pack fmt flags rm ~sign ~exp:(exp + 1) ~sig_:(shift_right_jam sig_ 1)
    else round_pack fmt flags rm ~sign ~exp ~sig_

(* --- division ------------------------------------------------------------ *)

let div ?(style = Arm_nan) fmt flags rm a b =
  let ca = classify fmt a and cb = classify fmt b in
  let sign = sign_of fmt a <> sign_of fmt b in
  match (ca, cb) with
  | (Quiet_nan | Signaling_nan), _ | _, (Quiet_nan | Signaling_nan) ->
    propagate_nan fmt flags a b
  | Infinity, Infinity | Zero, Zero ->
    flags.invalid <- true;
    default_nan fmt style
  | Infinity, _ -> infinity fmt sign
  | _, Infinity -> zero fmt sign
  | Zero, _ -> zero fmt sign
  | _, Zero ->
    flags.div_by_zero <- true;
    infinity fmt sign
  | (Normal | Subnormal), (Normal | Subnormal) ->
    let ea, sa = unpack_finite fmt a and eb, sb = unpack_finite fmt b in
    let exp = ref (ea - eb + bias fmt) in
    let sa = ref sa in
    (* Pre-normalize so the quotient's integer bit lands at fb+3 exactly. *)
    if Bits.ucompare !sa sb < 0 then begin
      sa := shl !sa 1;
      decr exp
    end;
    (* Restoring division producing fb+4 quotient bits.  After the
       pre-normalization, sa lies in [sb, 2*sb), so the leading quotient bit
       is 1 and peeling it first restores the rem < sb loop invariant. *)
    let q = ref 1L and rem = ref (!sa -% sb) in
    for _ = 1 to fmt.frac_bits + 3 do
      rem := shl !rem 1;
      q := shl !q 1;
      if Bits.ucompare !rem sb >= 0 then begin
        rem := !rem -% sb;
        q := !q |% 1L
      end
    done;
    let sig_ = !q |% (if !rem <> 0L then 1L else 0L) in
    round_pack fmt flags rm ~sign ~exp:!exp ~sig_

(* --- square root ---------------------------------------------------------- *)

(* Digit-by-digit square root of [radicand] = (hi, lo) interpreted as a
   128-bit integer, producing [bits] result bits and an inexact flag. *)
let isqrt128 (hi, lo) ~bits =
  let root = ref 0L and rem = ref 0L in
  let hi = ref hi and lo = ref lo in
  for _ = 1 to bits do
    (* Peel the top two bits of the radicand. *)
    let top = shr !hi 62 in
    hi := shl !hi 2 |% shr !lo 62;
    lo := shl !lo 2;
    rem := shl !rem 2 |% top;
    let trial = shl !root 2 |% 1L in
    if Bits.ucompare !rem trial >= 0 then begin
      rem := !rem -% trial;
      root := shl !root 1 |% 1L
    end
    else root := shl !root 1
  done;
  (!root, !rem <> 0L || !hi <> 0L || !lo <> 0L)

(* [style] selects the sign of the NaN produced for negative inputs: ARM's
   FSQRT returns the (positive) default NaN, x86's SQRTSD returns the
   "indefinite" negative QNaN (paper Table 2). *)
let sqrt ?(style = Arm_nan) fmt flags rm a =
  match classify fmt a with
  | Quiet_nan | Signaling_nan -> propagate_nan fmt flags a a
  | Zero -> a
  | Infinity ->
    if sign_of fmt a then begin
      flags.invalid <- true;
      default_nan fmt style
    end
    else a
  | Normal | Subnormal ->
    if sign_of fmt a then begin
      flags.invalid <- true;
      default_nan fmt style
    end
    else begin
      let e, s = unpack_finite fmt a in
      let uexp = e - bias fmt in
      let odd = uexp land 1 <> 0 in
      let e2 = (uexp - (if odd then 1 else 0)) / 2 in
      (* The root must have its integer bit at fb+3, i.e. lie in
         [2^(fb+3), 2^(fb+4)): compute floor(sqrt(s << (fb+6+odd))), since
         s in [2^fb, 2^(fb+1)).  isqrt128 consumes the top 2*root_bits bits,
         so the radicand is placed so it occupies exactly that window. *)
      let root_bits = fmt.frac_bits + 4 in
      let shift = 128 - (2 * root_bits) + fmt.frac_bits + 6 + (if odd then 1 else 0) in
      let hi, lo =
        if shift >= 64 then (shl s (shift - 64), 0L) else (shr s (64 - shift), shl s shift)
      in
      let root, inexact = isqrt128 (hi, lo) ~bits:root_bits in
      let sig_ = root |% (if inexact then 1L else 0L) in
      round_pack fmt flags rm ~sign:false ~exp:(e2 + bias fmt) ~sig_
    end

(* --- comparison ----------------------------------------------------------- *)

type cmp = Cmp_lt | Cmp_eq | Cmp_gt | Cmp_unordered

let compare_ ?(signal_qnan = false) fmt flags a b =
  if is_nan fmt a || is_nan fmt b then begin
    if is_snan fmt a || is_snan fmt b || signal_qnan then flags.invalid <- true;
    Cmp_unordered
  end
  else if is_zero fmt a && is_zero fmt b then Cmp_eq
  else begin
    let sa = sign_of fmt a and sb = sign_of fmt b in
    if sa <> sb then if sa then Cmp_lt else Cmp_gt
    else
      let c = Bits.ucompare (abs fmt a) (abs fmt b) in
      let c = if sa then -c else c in
      if c < 0 then Cmp_lt else if c > 0 then Cmp_gt else Cmp_eq
  end

let eq fmt flags a b = compare_ fmt flags a b = Cmp_eq
let lt fmt flags a b = compare_ ~signal_qnan:true fmt flags a b = Cmp_lt
let le fmt flags a b =
  match compare_ ~signal_qnan:true fmt flags a b with
  | Cmp_lt | Cmp_eq -> true
  | Cmp_gt | Cmp_unordered -> false

(* --- conversions ---------------------------------------------------------- *)

let of_int64 fmt flags rm v =
  if v = 0L then zero fmt false
  else begin
    let sign = v < 0L in
    let mag = if sign then Int64.neg v else v in
    (* Position the MSB at fb+3, keeping sticky for bits shifted out. *)
    let msb = 63 - Bits.clz mag in
    let target = fmt.frac_bits + 3 in
    let sig_ =
      if msb <= target then shl mag (target - msb) else shift_right_jam mag (msb - target)
    in
    round_pack fmt flags rm ~sign ~exp:(msb + bias fmt) ~sig_
  end

let of_uint64 fmt flags rm v =
  if v = 0L then zero fmt false
  else begin
    let msb = 63 - Bits.clz v in
    let target = fmt.frac_bits + 3 in
    let sig_ =
      if msb <= target then shl v (target - msb) else shift_right_jam v (msb - target)
    in
    round_pack fmt flags rm ~sign:false ~exp:(msb + bias fmt) ~sig_
  end

(* Convert to signed int64 with the given rounding; saturates and raises
   invalid on overflow/NaN, as AArch64 FCVT does. *)
let to_int64 fmt flags rm a =
  match classify fmt a with
  | Quiet_nan | Signaling_nan ->
    flags.invalid <- true;
    0L
  | Zero -> 0L
  | Infinity ->
    flags.invalid <- true;
    if sign_of fmt a then Int64.min_int else Int64.max_int
  | Normal | Subnormal ->
    let sign = sign_of fmt a in
    let e, s = unpack_finite fmt a in
    let uexp = e - bias fmt in
    if uexp > 62 then begin
      (* Magnitude 2^63 is representable only for the most negative value. *)
      if sign && uexp = 63 && s = implicit_bit fmt then Int64.min_int
      else begin
        flags.invalid <- true;
        if sign then Int64.min_int else Int64.max_int
      end
    end
    else begin
      let shift = uexp - fmt.frac_bits in
      let mag, lost =
        if shift >= 0 then (shl s shift, false)
        else
          let dropped = s &% Bits.mask (-shift) in
          (shr s (-shift), dropped <> 0L)
      in
      let frac_bits_lost =
        if shift >= 0 then 0L
        else if -shift > 63 then s
        else s &% Bits.mask (-shift)
      in
      let mag =
        match rm with
        | Toward_zero -> mag
        | Nearest_even | Nearest_away ->
          if shift >= 0 then mag
          else begin
            let half = shl 1L (-shift - 1) in
            let r = Bits.ucompare frac_bits_lost half in
            if r > 0 then mag +% 1L
            else if r = 0 then
              if rm = Nearest_away then mag +% 1L
              else mag +% (mag &% 1L)
            else mag
          end
        | Toward_pos -> if (not sign) && lost then mag +% 1L else mag
        | Toward_neg -> if sign && lost then mag +% 1L else mag
      in
      if lost then flags.inexact <- true;
      if sign then Int64.neg mag else mag
    end

(* Convert to unsigned int64 (truncating), saturating as AArch64 FCVTZU. *)
let to_uint64 fmt flags a =
  match classify fmt a with
  | Quiet_nan | Signaling_nan ->
    flags.invalid <- true;
    0L
  | Zero -> 0L
  | Infinity ->
    flags.invalid <- true;
    if sign_of fmt a then 0L else -1L
  | Normal | Subnormal ->
    if sign_of fmt a then begin
      (* Negative values truncate toward zero; anything <= -1 saturates. *)
      let e, _ = unpack_finite fmt a in
      if e - bias fmt >= 0 then begin
        flags.invalid <- true;
        0L
      end
      else begin
        flags.inexact <- true;
        0L
      end
    end
    else begin
      let e, s = unpack_finite fmt a in
      let uexp = e - bias fmt in
      if uexp > 63 then begin
        flags.invalid <- true;
        -1L
      end
      else begin
        let shift = uexp - fmt.frac_bits in
        if shift >= 0 then shl s shift
        else begin
          if s &% Bits.mask (-shift) <> 0L then flags.inexact <- true;
          shr s (-shift)
        end
      end
    end

(* Format-to-format conversion (e.g. f32 <-> f64). *)
let convert ~from ~to_ flags rm a =
  match classify from a with
  | Quiet_nan | Signaling_nan ->
    if is_snan from a then flags.invalid <- true;
    let payload_shift = from.frac_bits - to_.frac_bits in
    let frac =
      if payload_shift >= 0 then shr (frac_of from a) payload_shift
      else shl (frac_of from a) (-payload_shift)
    in
    pack to_ ~sign:(sign_of from a) ~exp:(exp_max to_) ~frac:(frac |% quiet_bit to_)
  | Infinity -> infinity to_ (sign_of from a)
  | Zero -> zero to_ (sign_of from a)
  | Normal | Subnormal ->
    let e, s = unpack_finite from a in
    let uexp = e - bias from in
    let target = to_.frac_bits + 3 in
    let src = from.frac_bits in
    let sig_ =
      if target >= src then shl s (target - src) else shift_right_jam s (src - target)
    in
    round_pack to_ flags rm ~sign:(sign_of from a) ~exp:(uexp + bias to_) ~sig_

(* Min/max with ARM semantics: NaN propagates (quietened); -0 < +0. *)
let min_ fmt flags a b =
  if is_nan fmt a || is_nan fmt b then propagate_nan fmt flags a b
  else
    match compare_ fmt flags a b with
    | Cmp_lt -> a
    | Cmp_gt -> b
    | Cmp_eq -> if sign_of fmt a then a else b (* -0 is the minimum of (+0,-0) *)
    | Cmp_unordered -> propagate_nan fmt flags a b

let max_ fmt flags a b =
  if is_nan fmt a || is_nan fmt b then propagate_nan fmt flags a b
  else
    match compare_ fmt flags a b with
    | Cmp_gt -> a
    | Cmp_lt -> b
    | Cmp_eq -> if sign_of fmt a then b else a
    | Cmp_unordered -> propagate_nan fmt flags a b
