(* Architecture-specific floating-point semantics.

   The paper's Table 2 contrasts x86 SQRTSD with ARMv8 FSQRT: both compute
   the same square roots, but the NaN produced for a negative input carries
   a different sign bit (x86 returns the negative "indefinite" QNaN, ARM the
   positive default NaN).  Captive executes the *host* instruction and then
   applies a fix-up so the guest sees bit-accurate ARM behaviour; this module
   provides both semantics plus the fix-up, so the engine and Table 2 of the
   bench harness share one implementation. *)

open Sf_types

(* x86 SQRTSD semantics on a binary64 bit pattern. *)
let x86_sqrtsd bits =
  let flags = new_flags () in
  F64.sqrt ~style:X86_nan flags bits

(* ARMv8 FSQRT semantics (FPCR default mode). *)
let arm_fsqrt bits =
  let flags = new_flags () in
  F64.sqrt ~style:Arm_nan flags bits

(* The inline fix-up Captive emits after a host SQRTSD so the result is
   bit-accurate with ARM: for a non-NaN input, an "indefinite" (negative
   default) NaN result is rewritten to ARM's positive default NaN.  NaN
   inputs propagate identically on both architectures and are left
   untouched. *)
let fixup_sqrt_result ~input result =
  if (not (F64.is_nan input)) && result = F64.default_nan X86_nan then F64.default_nan Arm_nan
  else result

(* Rows of Table 2: input, x86 result, ARM result. *)
let table2_inputs =
  [
    ("0.0", F64.of_float 0.0);
    ("-0.0", F64.of_float (-0.0));
    ("inf", F64.infinity);
    ("-inf", F64.neg_infinity);
    ("0.5", F64.of_float 0.5);
    ("-0.5", F64.of_float (-0.5));
    ("NaN", F64.default_nan Arm_nan);
    ("-NaN", F64.default_nan X86_nan);
  ]

let describe bits =
  if F64.is_nan bits then if F64.sign bits then "-NaN" else "NaN"
  else if F64.is_inf bits then if F64.sign bits then "-inf" else "inf"
  else Printf.sprintf "%.6g" (F64.to_float bits)
