lib/softfloat/f32.ml: Int32 Int64 Sf_core Sf_types
