lib/softfloat/f64.ml: Int64 Sf_core Sf_types
