lib/softfloat/sf_types.ml:
