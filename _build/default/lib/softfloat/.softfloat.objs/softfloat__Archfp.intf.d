lib/softfloat/archfp.mli:
