lib/softfloat/archfp.ml: F64 Printf Sf_types
