lib/softfloat/sf_core.ml: Dbt_util Int64 Sf_types
