lib/softfloat/f64.mli: Sf_core Sf_types
