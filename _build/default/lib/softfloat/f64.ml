(* IEEE-754 binary64 over int64 bit patterns. *)

open Sf_types

let fmt = Sf_core.f64_fmt

let of_float = Int64.bits_of_float
let to_float = Int64.float_of_bits

let zero = Sf_core.zero fmt false
let neg_zero = Sf_core.zero fmt true
let one = of_float 1.0
let infinity = Sf_core.infinity fmt false
let neg_infinity = Sf_core.infinity fmt true
let default_nan style = Sf_core.default_nan fmt style

let classify = Sf_core.classify fmt
let is_nan = Sf_core.is_nan fmt
let is_snan = Sf_core.is_snan fmt
let is_inf = Sf_core.is_inf fmt
let is_zero = Sf_core.is_zero fmt
let sign = Sf_core.sign_of fmt

let add ?style ?(rm = Nearest_even) flags a b = Sf_core.add ?style fmt flags rm a b
let sub ?style ?(rm = Nearest_even) flags a b = Sf_core.sub ?style fmt flags rm a b
let mul ?style ?(rm = Nearest_even) flags a b = Sf_core.mul ?style fmt flags rm a b
let div ?style ?(rm = Nearest_even) flags a b = Sf_core.div ?style fmt flags rm a b
let sqrt ?style ?(rm = Nearest_even) flags a = Sf_core.sqrt ?style fmt flags rm a
let neg = Sf_core.neg fmt
let abs = Sf_core.abs fmt
let min_ flags a b = Sf_core.min_ fmt flags a b
let max_ flags a b = Sf_core.max_ fmt flags a b

let compare_ flags a b = Sf_core.compare_ fmt flags a b
let eq flags a b = Sf_core.eq fmt flags a b
let lt flags a b = Sf_core.lt fmt flags a b
let le flags a b = Sf_core.le fmt flags a b

let of_int64 ?(rm = Nearest_even) flags v = Sf_core.of_int64 fmt flags rm v
let of_uint64 ?(rm = Nearest_even) flags v = Sf_core.of_uint64 fmt flags rm v
let to_int64 ?(rm = Toward_zero) flags v = Sf_core.to_int64 fmt flags rm v
let to_f32 ?(rm = Nearest_even) flags v = Sf_core.convert ~from:fmt ~to_:Sf_core.f32_fmt flags rm v
