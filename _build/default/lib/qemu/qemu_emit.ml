(* The QEMU-style backend: a direct, single-pass emitter in the spirit of
   TCG.

   Differences from the Captive DAG backend, mirroring the paper's
   comparison:
   - no invocation DAG: every operation immediately emits IR into fresh
     virtual registers; no CSE, no tree-pattern specialization (repeated
     guest-register reads reload; PC updates are load/add/store);
   - guest memory accesses go through an inline softmmu TLB probe with a
     fill-helper slow path (Sec. 2.7.2), rather than the host MMU;
   - floating-point operations call softfloat helpers (Sec. 2.5);
   - constants are loaded into registers (TCG movi). *)

open Hostir.Hir

type softmmu = {
  tlb_base : int64; (* base of this EL's soft-TLB table (flat address) *)
  tlb_entries : int;
  fill_read : int; (* helper indices *)
  fill_write : int;
}

type config = {
  bank_offset : bank:int -> index:int -> int;
  slot_offset : int -> int;
  effect_helper : string -> int;
  coproc_read_helper : int;
  coproc_write_helper : int;
  softfloat_helper : string -> int option;
  softmmu : softmmu option; (* None when the guest MMU is off *)
}

type chunk = { label : int option; mutable body : instr list (* reversed *) }

type t = {
  config : config;
  mutable chunks : chunk list; (* reversed creation order *)
  mutable current : chunk;
  mutable next_vreg : int;
  mutable next_label : int;
  mutable next_temp : int;
  temp_vregs : (int, int) Hashtbl.t;
  mutable n_instrs : int;
}

let create config =
  let entry = { label = None; body = [] } in
  {
    config;
    chunks = [ entry ];
    current = entry;
    next_vreg = 0;
    next_label = 0;
    next_temp = 0;
    temp_vregs = Hashtbl.create 8;
    n_instrs = 0;
  }

let emit t i =
  t.current.body <- i :: t.current.body;
  t.n_instrs <- t.n_instrs + 1

let fresh t =
  let v = t.next_vreg in
  t.next_vreg <- v + 1;
  Vreg v

(* movi: constants always occupy a register. *)
let const t c =
  let d = fresh t in
  emit t (Mov (d, Imm c));
  d

let new_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  t.chunks <- { label = Some l; body = [] } :: t.chunks;
  l

let to_chunk t l = t.current <- List.find (fun c -> c.label = Some l) t.chunks

let cond_of_binop = Hostir.Dag.cond_of_binop

(* The inline softmmu probe (entry: 8B tag_read, 8B tag_write, 8B addend,
   8B pad). *)
let softmmu_access t (sm : softmmu) ~write va =
  let idx = fresh t in
  emit t (Alu (Ashr, idx, va, Imm 12L));
  let idx2 = fresh t in
  emit t (Alu (Aand, idx2, idx, Imm (Int64.of_int (sm.tlb_entries - 1))));
  let off = fresh t in
  emit t (Alu (Ashl, off, idx2, Imm 5L));
  let ea = fresh t in
  emit t (Alu (Aadd, ea, off, Imm sm.tlb_base));
  let tag_ea =
    if write then begin
      let e = fresh t in
      emit t (Alu (Aadd, e, ea, Imm 8L));
      e
    end
    else ea
  in
  let tag = fresh t in
  emit t (Mem_ld (64, tag, tag_ea));
  let page = fresh t in
  emit t (Alu (Aand, page, va, Imm (Int64.lognot 0xFFFL)));
  let hit = fresh t in
  emit t (Setcc (Ceq, hit, tag, page));
  let l_fast = new_label t in
  let l_slow = new_label t in
  let l_done = new_label t in
  let addr = fresh t in
  emit t (Br (hit, l_fast, l_slow));
  to_chunk t l_slow;
  let h = if write then sm.fill_write else sm.fill_read in
  emit t (Call (h, [| va |], Some addr));
  emit t (Jmp l_done);
  to_chunk t l_fast;
  let add_ea = fresh t in
  emit t (Alu (Aadd, add_ea, ea, Imm 16L));
  let addend = fresh t in
  emit t (Mem_ld (64, addend, add_ea));
  emit t (Alu (Aadd, addr, va, addend));
  emit t (Jmp l_done);
  to_chunk t l_done;
  addr

let intrinsic t name (args : operand list) : operand =
  match t.config.softfloat_helper name with
  | Some h ->
    let d = fresh t in
    emit t (Call (h, Array.of_list args, Some d));
    d
  | None -> (
    let d = fresh t in
    let a i = List.nth args i in
    (match name with
    | "sign_extend" -> (
      match a 1 with
      | Imm bits -> emit t (Ext (true, Int64.to_int bits, d, a 0))
      | _ -> invalid_arg "sign_extend with dynamic width")
    | "clz32" -> emit t (Bit1 (Bclz32, d, a 0))
    | "clz64" -> emit t (Bit1 (Bclz64, d, a 0))
    | "popcount64" -> emit t (Bit1 (Bpopcnt, d, a 0))
    | "rbit32" -> emit t (Bit1 (Brbit32, d, a 0))
    | "rbit64" -> emit t (Bit1 (Brbit64, d, a 0))
    | "rev16" -> emit t (Bit1 (Bswap16, d, a 0))
    | "rev32" -> emit t (Bit1 (Bswap32, d, a 0))
    | "rev64" -> emit t (Bit1 (Bswap64, d, a 0))
    | "ror32" -> emit t (Bit2 (Bror32, d, a 0, a 1))
    | "ror64" -> emit t (Bit2 (Bror64, d, a 0, a 1))
    | "umulh64" -> emit t (Mulhi (false, d, a 0, a 1))
    | "smulh64" -> emit t (Mulhi (true, d, a 0, a 1))
    | "udiv64" -> emit t (Divrem (false, false, d, a 0, a 1))
    | "sdiv64" -> emit t (Divrem (true, false, d, a 0, a 1))
    | "udiv32" ->
      let x = fresh t and y = fresh t in
      emit t (Ext (false, 32, x, a 0));
      emit t (Ext (false, 32, y, a 1));
      emit t (Divrem (false, false, d, x, y))
    | "sdiv32" ->
      let x = fresh t and y = fresh t and q = fresh t in
      emit t (Ext (true, 32, x, a 0));
      emit t (Ext (true, 32, y, a 1));
      emit t (Divrem (true, false, q, x, y));
      emit t (Ext (false, 32, d, q))
    | "adc64" ->
      let s = fresh t in
      emit t (Alu (Aadd, s, a 0, a 1));
      emit t (Alu (Aadd, d, s, a 2))
    | "adc32" ->
      let s = fresh t and s2 = fresh t in
      emit t (Alu (Aadd, s, a 0, a 1));
      emit t (Alu (Aadd, s2, s, a 2));
      emit t (Ext (false, 32, d, s2))
    | "add_flags64" -> emit t (Flags_add (64, d, a 0, a 1, a 2))
    | "add_flags32" -> emit t (Flags_add (32, d, a 0, a 1, a 2))
    | "logic_flags64" -> emit t (Flags_logic (64, d, a 0))
    | "logic_flags32" -> emit t (Flags_logic (32, d, a 0))
    | other -> invalid_arg ("qemu backend cannot lower intrinsic " ^ other));
    d)

let emitter (t : t) : operand Ssa.Emitter.t =
  {
    Ssa.Emitter.const = (fun c -> const t c);
    binary =
      (fun op ~signed a b ->
        let d = fresh t in
        (match op with
        | Adl.Ast.Add -> emit t (Alu (Aadd, d, a, b))
        | Adl.Ast.Sub -> emit t (Alu (Asub, d, a, b))
        | Adl.Ast.Mul -> emit t (Alu (Amul, d, a, b))
        | Adl.Ast.And -> emit t (Alu (Aand, d, a, b))
        | Adl.Ast.Or -> emit t (Alu (Aor, d, a, b))
        | Adl.Ast.Xor -> emit t (Alu (Axor, d, a, b))
        | Adl.Ast.Shl -> emit t (Alu (Ashl, d, a, b))
        | Adl.Ast.Shr -> emit t (Alu ((if signed then Asar else Ashr), d, a, b))
        | Adl.Ast.Div -> emit t (Divrem (signed, false, d, a, b))
        | Adl.Ast.Rem -> emit t (Divrem (signed, true, d, a, b))
        | Adl.Ast.Eq | Adl.Ast.Ne | Adl.Ast.Lt | Adl.Ast.Le | Adl.Ast.Gt | Adl.Ast.Ge ->
          emit t (Setcc (cond_of_binop op signed, d, a, b))
        | Adl.Ast.Land | Adl.Ast.Lor -> assert false);
        d);
    unary =
      (fun op a ->
        let d = fresh t in
        (match op with
        | Adl.Ast.Neg -> emit t (Neg (d, a))
        | Adl.Ast.Not -> emit t (Not (d, a))
        | Adl.Ast.Lnot -> emit t (Setcc (Ceq, d, a, Imm 0L)));
        d);
    normalize =
      (fun ~bits ~signed a ->
        let d = fresh t in
        emit t (Ext (signed, bits, d, a));
        d);
    select =
      (fun c x y ->
        let d = fresh t in
        emit t (Cmov (d, c, x, y));
        d);
    intrinsic = (fun name args -> intrinsic t name args);
    load_bankreg =
      (fun ~bank ~index ->
        let d = fresh t in
        emit t (Ldrf (d, t.config.bank_offset ~bank ~index));
        d);
    store_bankreg = (fun ~bank ~index v -> emit t (Strf (t.config.bank_offset ~bank ~index, v)));
    load_reg =
      (fun ~slot ->
        let d = fresh t in
        emit t (Ldrf (d, t.config.slot_offset slot));
        d);
    store_reg = (fun ~slot v -> emit t (Strf (t.config.slot_offset slot, v)));
    load_pc =
      (fun () ->
        let d = fresh t in
        emit t (Load_pc d);
        d);
    store_pc = (fun v -> emit t (Store_pc v));
    inc_pc =
      (fun n ->
        (* TCG-style: reload, add, store back. *)
        let p = fresh t in
        emit t (Load_pc p);
        let p2 = fresh t in
        emit t (Alu (Aadd, p2, p, Imm (Int64.of_int n)));
        emit t (Store_pc p2));
    mem_read =
      (fun ~bits a ->
        let addr = match t.config.softmmu with Some sm -> softmmu_access t sm ~write:false a | None -> a in
        let d = fresh t in
        emit t (Mem_ld (bits, d, addr));
        d);
    mem_write =
      (fun ~bits ~addr ~value ->
        let ha =
          match t.config.softmmu with Some sm -> softmmu_access t sm ~write:true addr | None -> addr
        in
        emit t (Mem_st (bits, ha, value)));
    coproc_read =
      (fun i ->
        let d = fresh t in
        emit t (Call (t.config.coproc_read_helper, [| i |], Some d));
        d);
    coproc_write = (fun i v -> emit t (Call (t.config.coproc_write_helper, [| i; v |], None)));
    effect = (fun name args -> emit t (Call (t.config.effect_helper name, Array.of_list args, None)));
    create_block = (fun () -> new_label t);
    jump = (fun l -> emit t (Jmp l));
    branch = (fun c lt lf -> emit t (Br (c, lt, lf)));
    set_block = (fun l -> to_chunk t l);
    new_temp =
      (fun () ->
        let tmp = t.next_temp in
        t.next_temp <- tmp + 1;
        Hashtbl.replace t.temp_vregs tmp (match fresh t with Vreg v -> v | _ -> assert false);
        tmp);
    read_temp =
      (fun tmp ->
        let d = fresh t in
        emit t (Mov (d, Vreg (Hashtbl.find t.temp_vregs tmp)));
        d);
    write_temp = (fun tmp v -> emit t (Mov (Vreg (Hashtbl.find t.temp_vregs tmp), v)));
  }

let raw t i = emit t i

let finish t : instr array =
  let chunks = List.rev t.chunks in
  let buf = ref [] in
  List.iter
    (fun c ->
      (match c.label with Some l -> buf := Label l :: !buf | None -> ());
      List.iter (fun i -> buf := i :: !buf) (List.rev c.body))
    chunks;
  Array.of_list (List.rev !buf)

let instr_count t = t.n_instrs
