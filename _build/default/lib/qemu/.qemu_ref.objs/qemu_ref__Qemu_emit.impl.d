lib/qemu/qemu_emit.ml: Adl Array Hashtbl Hostir Int64 List Ssa
