lib/qemu/qemu_engine.ml: Adl Array Bytes Captive Dbt_util Guest Hashtbl Hostir Hvm Int64 List Option Printf Qemu_emit Ssa Unix
