(** Lowering of type-checked ADL behaviours into domain-specific SSA
    (paper Fig. 3 -> Fig. 4).

    Helper calls are inlined here (the paper's "Inlining" pass, active at
    every optimization level); behaviour-language locals become numbered
    variable slots accessed with [Var_read]/[Var_write], to be promoted by
    the later passes. *)

(** Build the (unoptimized) SSA action for one execute behaviour.
    @raise Adl.Ast.Adl_error on malformed input (e.g. recursive helpers). *)
val execute : Adl.Ast.arch -> Adl.Ast.execute -> Ir.action
