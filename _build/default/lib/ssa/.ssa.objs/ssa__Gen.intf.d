lib/ssa/gen.mli: Emitter Ir
