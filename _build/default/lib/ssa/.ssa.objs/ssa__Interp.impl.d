lib/ssa/interp.ml: Adl Hashtbl Int64 Ir List Option Printf
