lib/ssa/opt.ml: Adl Array Dbt_util Hashtbl Int64 Ir List Option
