lib/ssa/emitter.ml: Adl
