lib/ssa/analysis.mli: Hashtbl Ir
