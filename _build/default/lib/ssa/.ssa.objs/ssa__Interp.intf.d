lib/ssa/interp.mli: Ir
