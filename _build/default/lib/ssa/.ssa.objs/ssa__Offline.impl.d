lib/ssa/offline.ml: Adl Build Hashtbl Ir List Opt Printf
