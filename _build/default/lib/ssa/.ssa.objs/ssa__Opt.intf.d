lib/ssa/opt.mli: Ir
