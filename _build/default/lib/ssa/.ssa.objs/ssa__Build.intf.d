lib/ssa/build.mli: Adl Ir
