lib/ssa/build.ml: Adl Int64 Ir List Printf
