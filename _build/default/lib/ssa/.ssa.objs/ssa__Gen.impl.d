lib/ssa/gen.ml: Adl Emitter Hashtbl Int64 Ir List Option
