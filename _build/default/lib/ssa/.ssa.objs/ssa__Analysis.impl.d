lib/ssa/analysis.ml: Adl Buffer Hashtbl Ir List Printf
