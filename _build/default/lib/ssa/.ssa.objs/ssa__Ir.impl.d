lib/ssa/ir.ml: Adl Buffer Hashtbl List Printf String
