lib/ssa/offline.mli: Adl Hashtbl Ir Opt
