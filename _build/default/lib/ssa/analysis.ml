(* Static fixed/dynamic classification of SSA statements - the paper's
   Sec. 2.2.2 meta-information: "Fixed operations are evaluated at
   instruction translation time, whereas dynamic operations must be
   executed at instruction run-time."

   This is the static (per-action) approximation: instruction-field reads
   and constants are fixed, guest-state accesses are dynamic, pure
   computation inherits the join of its operands, and a variable is fixed
   only if every write to it stores a fixed value.  The online generator
   (Gen) refines this operationally per decoded instance; this analysis is
   for reporting, offline statistics, and the `captive_run ssa` tool. *)

type fixedness = Fixed | Dynamic

let join a b = match (a, b) with Fixed, Fixed -> Fixed | _ -> Dynamic

type result = {
  of_stmt : (Ir.id, fixedness) Hashtbl.t;
  of_var : (int, fixedness) Hashtbl.t;
  (* A terminator is fixed when its condition is fixed: the generator
     resolves it at translation time. *)
  fixed_branches : int;
  dynamic_branches : int;
}

let classify (action : Ir.action) : result =
  let of_stmt = Hashtbl.create 64 in
  let of_var = Hashtbl.create 8 in
  let var_fixedness v = try Hashtbl.find of_var v with Not_found -> Fixed in
  let stmt_fixedness id = try Hashtbl.find of_stmt id with Not_found -> Fixed in
  let classify_desc desc =
    let operands_join ids = List.fold_left (fun acc x -> join acc (stmt_fixedness x)) Fixed ids in
    match desc with
    | Ir.Const _ | Ir.Struct _ -> Fixed
    | Ir.Binary _ | Ir.Unary _ | Ir.Normalize _ | Ir.Select _ -> operands_join (Ir.operands desc)
    | Ir.Var_read v -> var_fixedness v
    | Ir.Intrinsic (name, args) -> (
      match Adl.Builtins.find name with
      | Some { Adl.Builtins.bi_kind = Adl.Builtins.Pure; _ } -> operands_join args
      | _ -> Dynamic)
    | Ir.Bank_read _ | Ir.Reg_read _ | Ir.Mem_read _ | Ir.Pc_read | Ir.Coproc_read _ | Ir.Phi _ ->
      Dynamic
    | Ir.Bank_write _ | Ir.Reg_write _ | Ir.Var_write _ | Ir.Mem_write _ | Ir.Pc_write _
    | Ir.Coproc_write _ | Ir.Effect _ ->
      Dynamic
  in
  (* Iterate to a fixed point: variable fixedness feeds statement
     fixedness and vice versa; both only ever move Fixed -> Dynamic. *)
  let stable = ref false in
  while not !stable do
    stable := true;
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            let f = classify_desc i.Ir.desc in
            if stmt_fixedness i.Ir.id <> f && Ir.produces_value i.Ir.desc then begin
              Hashtbl.replace of_stmt i.Ir.id f;
              stable := false
            end;
            match i.Ir.desc with
            | Ir.Var_write (v, x) ->
              let f = join (var_fixedness v) (stmt_fixedness x) in
              if var_fixedness v <> f then begin
                Hashtbl.replace of_var v f;
                stable := false
              end
            | _ -> ())
          b.Ir.insts)
      action.Ir.blocks
  done;
  let fixed_branches = ref 0 and dynamic_branches = ref 0 in
  List.iter
    (fun b ->
      match b.Ir.term with
      | Ir.Branch (c, _, _) ->
        if stmt_fixedness c = Fixed then incr fixed_branches else incr dynamic_branches
      | Ir.Jump _ | Ir.Ret -> ())
    action.Ir.blocks;
  { of_stmt; of_var; fixed_branches = !fixed_branches; dynamic_branches = !dynamic_branches }

(* Counts for reporting. *)
let stats (action : Ir.action) =
  let r = classify action in
  let fixed = ref 0 and dyn = ref 0 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          if Ir.produces_value i.Ir.desc then
            if (try Hashtbl.find r.of_stmt i.Ir.id with Not_found -> Fixed) = Fixed then incr fixed
            else incr dyn
          else incr dyn)
        b.Ir.insts)
    action.Ir.blocks;
  (!fixed, !dyn, r.fixed_branches, r.dynamic_branches)

(* Annotated printing: like Ir.to_string, with an f/d tag per statement. *)
let to_string_annotated (action : Ir.action) =
  let r = classify action in
  let tag id =
    match Hashtbl.find_opt r.of_stmt id with
    | Some Dynamic -> "d"
    | _ -> "f"
  in
  let buf = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string buf) "action void %s {\n" action.Ir.name;
  List.iter
    (fun b ->
      Printf.ksprintf (Buffer.add_string buf) "  block b_%d {\n" b.Ir.bid;
      List.iter
        (fun i ->
          let marker = if Ir.produces_value i.Ir.desc then tag i.Ir.id else "d" in
          Printf.ksprintf (Buffer.add_string buf) "    [%s] s_%d %s %s\n" marker i.Ir.id
            (if Ir.produces_value i.Ir.desc then "=" else ":")
            (Ir.string_of_desc action i.Ir.desc))
        b.Ir.insts;
      (match b.Ir.term with
      | Ir.Jump t -> Printf.ksprintf (Buffer.add_string buf) "    jump b_%d\n" t
      | Ir.Branch (c, t, f) ->
        Printf.ksprintf (Buffer.add_string buf) "    [%s] branch s_%d b_%d b_%d\n" (tag c) c t f
      | Ir.Ret -> Buffer.add_string buf "    return\n");
      Buffer.add_string buf "  }\n")
    action.Ir.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
