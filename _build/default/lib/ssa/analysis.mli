(** Static fixed/dynamic classification of SSA statements — the paper's
    Sec. 2.2.2 meta-information: fixed operations are evaluated at
    instruction translation time, dynamic operations execute at guest
    run-time.

    This is the per-action static approximation used for reporting and
    offline statistics; the generator ({!Gen}) refines it operationally
    per decoded instruction instance. *)

type fixedness = Fixed | Dynamic

val join : fixedness -> fixedness -> fixedness

type result = {
  of_stmt : (Ir.id, fixedness) Hashtbl.t;
  of_var : (int, fixedness) Hashtbl.t;
  fixed_branches : int;  (** resolved at translation time *)
  dynamic_branches : int;  (** materialized as runtime control flow *)
}

val classify : Ir.action -> result

(** [(fixed_stmts, dynamic_stmts, fixed_branches, dynamic_branches)]. *)
val stats : Ir.action -> int * int * int * int

(** Fig. 4-style listing with an [f]/[d] tag per statement. *)
val to_string_annotated : Ir.action -> string
