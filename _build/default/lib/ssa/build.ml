(* Lowering of type-checked ADL behaviours into domain-specific SSA.

   Helper calls are inlined here (the paper's "Inlining" pass, active at all
   optimization levels); local variables become numbered variable slots
   accessed with Var_read/Var_write, to be cleaned up by later passes. *)

open Adl.Ast
module Ir = Ir
module Builtins = Adl.Builtins

type ctx = {
  arch : arch;
  action : Ir.action;
  mutable cur : Ir.block;
  mutable terminated : bool;
  mutable vars : (string * int) list; (* lexical scope: name -> var id *)
  (* Inlining context: where `return` should go in the helper being inlined. *)
  ret_target : (int option * Ir.block) option; (* (result var, continuation) *)
  depth : int;
}

let new_block ctx =
  let bid = List.length ctx.action.Ir.blocks in
  let b = { Ir.bid; insts = []; term = Ir.Ret } in
  ctx.action.Ir.blocks <- ctx.action.Ir.blocks @ [ b ];
  b

let emit ctx desc =
  let id = Ir.fresh_id ctx.action in
  if not ctx.terminated then ctx.cur.Ir.insts <- ctx.cur.Ir.insts @ [ { Ir.id; desc } ];
  id

let terminate ctx term =
  if not ctx.terminated then begin
    ctx.cur.Ir.term <- term;
    ctx.terminated <- true
  end

let switch_to ctx block =
  ctx.cur <- block;
  ctx.terminated <- false

let lookup_var ctx name =
  match List.assoc_opt name ctx.vars with
  | Some v -> v
  | None -> error "internal: unbound variable %S after type checking" name

let const_of_expr e =
  match e.e with Int_lit v -> Some v | _ -> None

let mem_width name =
  match name with
  | "mem_read_8" | "mem_write_8" -> 8
  | "mem_read_16" | "mem_write_16" -> 16
  | "mem_read_32" | "mem_write_32" -> 32
  | "mem_read_64" | "mem_write_64" -> 64
  | _ -> invalid_arg "mem_width"

let rec build_expr ctx (e : expr) : Ir.id =
  match e.e with
  | Int_lit v -> emit ctx (Ir.Const v)
  | Float_lit _ -> error ~pos:e.pos "float literal survived type checking"
  | Var name -> emit ctx (Ir.Var_read (lookup_var ctx name))
  | Field f -> emit ctx (Ir.Struct f)
  | Binop (op, a, b) ->
    let signed = match a.ty with Tint i -> i.signed | _ -> false in
    let va = build_expr ctx a in
    let vb = build_expr ctx b in
    emit ctx (Ir.Binary (op, signed, va, vb))
  | Unop (op, a) ->
    let va = build_expr ctx a in
    emit ctx (Ir.Unary (op, va))
  | Cast (Tint { bits = 64; _ }, a) -> build_expr ctx a
  | Cast (Tint { bits; signed }, a) ->
    let va = build_expr ctx a in
    emit ctx (Ir.Normalize (bits, signed, va))
  | Cast ((Tfloat _ | Tvoid), _) -> error ~pos:e.pos "bad cast target"
  | Ternary (c, t, f) ->
    let vc = build_expr ctx c in
    let vt = build_expr ctx t in
    let vf = build_expr ctx f in
    emit ctx (Ir.Select (vc, vt, vf))
  | Call (name, args) -> build_call ctx e.pos name args

and build_call ctx pos name args =
  match Builtins.find name with
  | Some sg -> build_builtin ctx pos sg name args
  | None -> (
    match find_helper ctx.arch name with
    | Some h -> inline_helper ctx pos h args
    | None -> error ~pos "unknown function %S" name)

and build_builtin ctx pos sg name args =
  let fixed_arg i =
    match const_of_expr (List.nth args i) with
    | Some v -> Int64.to_int v
    | None -> error ~pos "argument %d of %S must be a literal" i name
  in
  match name with
  | "read_register_bank" ->
    let bank = fixed_arg 0 in
    let idx = build_expr ctx (List.nth args 1) in
    emit ctx (Ir.Bank_read (bank, idx))
  | "write_register_bank" ->
    let bank = fixed_arg 0 in
    let idx = build_expr ctx (List.nth args 1) in
    let v = build_expr ctx (List.nth args 2) in
    emit ctx (Ir.Bank_write (bank, idx, v))
  | "read_register" -> emit ctx (Ir.Reg_read (fixed_arg 0))
  | "write_register" ->
    let slot = fixed_arg 0 in
    let v = build_expr ctx (List.nth args 1) in
    emit ctx (Ir.Reg_write (slot, v))
  | "read_pc" -> emit ctx Ir.Pc_read
  | "write_pc" ->
    let v = build_expr ctx (List.hd args) in
    emit ctx (Ir.Pc_write v)
  | "read_coproc" ->
    let i = build_expr ctx (List.hd args) in
    emit ctx (Ir.Coproc_read i)
  | "write_coproc" ->
    let i = build_expr ctx (List.nth args 0) in
    let v = build_expr ctx (List.nth args 1) in
    emit ctx (Ir.Coproc_write (i, v))
  | "mem_read_8" | "mem_read_16" | "mem_read_32" | "mem_read_64" ->
    let a = build_expr ctx (List.hd args) in
    emit ctx (Ir.Mem_read (mem_width name, a))
  | "mem_write_8" | "mem_write_16" | "mem_write_32" | "mem_write_64" ->
    let a = build_expr ctx (List.nth args 0) in
    let v = build_expr ctx (List.nth args 1) in
    emit ctx (Ir.Mem_write (mem_width name, a, v))
  | "select" ->
    let c = build_expr ctx (List.nth args 0) in
    let t = build_expr ctx (List.nth args 1) in
    let f = build_expr ctx (List.nth args 2) in
    emit ctx (Ir.Select (c, t, f))
  | "sign_extend" when const_of_expr (List.nth args 1) <> None ->
    (* A literal width makes this a plain normalization, which every
       backend lowers natively. *)
    let bits = fixed_arg 1 in
    let v = build_expr ctx (List.hd args) in
    if bits >= 64 then v else emit ctx (Ir.Normalize (bits, true, v))
  | _ -> (
    let vals = List.map (build_expr ctx) args in
    match sg.Builtins.bi_kind with
    | Builtins.Pure | Builtins.Read | Builtins.Volatile -> emit ctx (Ir.Intrinsic (name, vals))
    | Builtins.Effect -> emit ctx (Ir.Effect (name, vals)))

and inline_helper ctx pos h args =
  if ctx.depth > 32 then error ~pos "helper inlining too deep (recursive helper %S?)" h.h_name;
  (* Bind arguments to fresh variable slots. *)
  let params =
    List.map2
      (fun (_, pname) arg ->
        let v = Ir.fresh_var ctx.action (Printf.sprintf "%s_%s" h.h_name pname) in
        let value = build_expr ctx arg in
        ignore (emit ctx (Ir.Var_write (v, value)));
        (pname, v))
      h.h_params args
  in
  let ret_var =
    if h.h_ret = Tvoid then None else Some (Ir.fresh_var ctx.action (h.h_name ^ "_ret"))
  in
  let cont = new_block ctx in
  let hctx =
    { ctx with vars = params; ret_target = Some (ret_var, cont); depth = ctx.depth + 1 }
  in
  (* Keep the current-block cursor shared by rebuilding a context record:
     ctx is immutable in its mutable fields?  No - fields are mutable but the
     record copy gives hctx its own cursor; we must thread it manually. *)
  hctx.cur <- ctx.cur;
  hctx.terminated <- ctx.terminated;
  build_stmts hctx h.h_body;
  (* Fall off the end of the helper: jump to the continuation. *)
  terminate hctx (Ir.Jump cont.Ir.bid);
  switch_to ctx cont;
  match ret_var with
  | Some v -> emit ctx (Ir.Var_read v)
  | None -> emit ctx (Ir.Const 0L) (* void result, never used *)

and build_stmt ctx (s : stmt) =
  match s with
  | Decl (_, name, init) ->
    let v = Ir.fresh_var ctx.action name in
    ctx.vars <- (name, v) :: ctx.vars;
    (match init with
    | Some e ->
      let value = build_expr ctx e in
      ignore (emit ctx (Ir.Var_write (v, value)))
    | None -> ())
  | Assign (name, e) ->
    let v = lookup_var ctx name in
    let value = build_expr ctx e in
    ignore (emit ctx (Ir.Var_write (v, value)))
  | Expr e -> ignore (build_expr ctx e)
  | If (c, t, []) ->
    let vc = build_expr ctx c in
    let then_b = new_block ctx in
    let join = new_block ctx in
    terminate ctx (Ir.Branch (vc, then_b.Ir.bid, join.Ir.bid));
    switch_to ctx then_b;
    build_scoped ctx t;
    terminate ctx (Ir.Jump join.Ir.bid);
    switch_to ctx join
  | If (c, t, f) ->
    let vc = build_expr ctx c in
    let then_b = new_block ctx in
    let else_b = new_block ctx in
    let join = new_block ctx in
    terminate ctx (Ir.Branch (vc, then_b.Ir.bid, else_b.Ir.bid));
    switch_to ctx then_b;
    build_scoped ctx t;
    terminate ctx (Ir.Jump join.Ir.bid);
    switch_to ctx else_b;
    build_scoped ctx f;
    terminate ctx (Ir.Jump join.Ir.bid);
    switch_to ctx join
  | While (c, body) ->
    let cond_b = new_block ctx in
    terminate ctx (Ir.Jump cond_b.Ir.bid);
    switch_to ctx cond_b;
    let vc = build_expr ctx c in
    let body_b = new_block ctx in
    let join = new_block ctx in
    terminate ctx (Ir.Branch (vc, body_b.Ir.bid, join.Ir.bid));
    switch_to ctx body_b;
    build_scoped ctx body;
    terminate ctx (Ir.Jump cond_b.Ir.bid);
    switch_to ctx join
  | Return e -> (
    match ctx.ret_target with
    | None ->
      (* Top level of an execute action. *)
      (match e with Some _ -> error "execute actions return no value" | None -> ());
      terminate ctx Ir.Ret
    | Some (ret_var, cont) ->
      (match (ret_var, e) with
      | Some v, Some e ->
        let value = build_expr ctx e in
        ignore (emit ctx (Ir.Var_write (v, value)))
      | None, None -> ()
      | Some _, None -> error "missing return value in helper"
      | None, Some _ -> error "returning a value from a void helper");
      terminate ctx (Ir.Jump cont.Ir.bid))
  | Block body -> build_scoped ctx body

(* Build a statement list in its own lexical scope. *)
and build_scoped ctx stmts =
  let saved = ctx.vars in
  build_stmts ctx stmts;
  ctx.vars <- saved

and build_stmts ctx stmts =
  List.iter
    (fun s ->
      if ctx.terminated then begin
        (* Unreachable source code after a return: park it in a dead block
           that unreachable-block elimination removes. *)
        let dead = new_block ctx in
        switch_to ctx dead;
        ctx.terminated <- false;
        build_stmt ctx s
      end
      else build_stmt ctx s)
    stmts

(* Build the SSA action for one execute behaviour. *)
let execute (arch : arch) (x : execute) : Ir.action =
  let action = Ir.create_action x.x_name in
  let ctx =
    {
      arch;
      action;
      cur = { Ir.bid = 0; insts = []; term = Ir.Ret };
      terminated = false;
      vars = [];
      ret_target = None;
      depth = 0;
    }
  in
  let entry = new_block ctx in
  assert (entry.Ir.bid = 0);
  ctx.cur <- entry;
  build_stmts ctx x.x_body;
  terminate ctx Ir.Ret;
  action
