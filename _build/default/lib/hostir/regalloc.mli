(** Register allocation (paper Sec. 2.3.3).

    A forward pass discovers live ranges over the flat instruction stream,
    ranges crossing loop back-edges are extended to cover the whole loop,
    and a fast linear scan maps virtual registers onto the physical pool,
    spilling the furthest-ending interval under pressure (spilled operands
    become {!Hir.operand.Slot}s priced by the executor).  Pure instructions
    whose destination is never used are marked dead so the encoder skips
    them, as the paper describes. *)

(** Number of allocatable host registers (16 GPRs minus the dedicated
    guest-PC register, the register-file base, the address-space tag and
    scratch). *)
val num_allocatable : int

type result = {
  instrs : Hir.instr array;  (** operands are Preg/Imm/Slot only *)
  dead : bool array;  (** instructions the encoder must skip *)
  n_slots : int;  (** spill-frame size *)
  n_spilled : int;
  n_dead : int;
}

val run : Hir.instr array -> result
