(* Register allocation (paper Sec. 2.3.3): a forward pass discovers live
   ranges, ranges crossing loop back-edges are extended, then a fast
   linear scan maps virtual registers onto the physical pool, spilling the
   furthest-ending interval under pressure.  Dead instructions (pure, with
   an unused destination) are marked so the encoder skips them, as the
   paper describes. *)

open Hir

(* Physical register pool: the simulated host has 16 GPRs; r15 is the
   dedicated guest-PC register, rbp-equivalent is the register-file base,
   r12..r14 are reserved as spill scratch.  That leaves 11 allocatable. *)
let num_allocatable = 11

type result = {
  instrs : instr array; (* operands are Preg/Imm/Slot only *)
  dead : bool array; (* marked dead: encoder skips *)
  n_slots : int;
  n_spilled : int;
  n_dead : int;
}

type interval = {
  vreg : int;
  mutable istart : int;
  mutable iend : int;
  mutable uses : int;
}

let analyze (instrs : instr array) =
  let tbl : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch idx kind op =
    match op with
    | Vreg v ->
      let it =
        match Hashtbl.find_opt tbl v with
        | Some it -> it
        | None ->
          let it = { vreg = v; istart = idx; iend = idx; uses = 0 } in
          Hashtbl.replace tbl v it;
          it
      in
      it.istart <- min it.istart idx;
      it.iend <- max it.iend idx;
      if kind = `Use then it.uses <- it.uses + 1
    | Preg _ | Imm _ | Slot _ -> ()
  in
  Array.iteri
    (fun idx i ->
      List.iter (touch idx `Use) (sources i);
      match dest i with Some d -> touch idx `Def d | None -> ())
    instrs;
  (* Extend ranges across backward branches: any interval overlapping the
     loop body [target_idx, branch_idx] is live for the whole loop. *)
  let label_idx = Hashtbl.create 8 in
  Array.iteri (fun idx i -> match i with Label l -> Hashtbl.replace label_idx l idx | _ -> ()) instrs;
  let backedges = ref [] in
  Array.iteri
    (fun idx i ->
      let check l =
        match Hashtbl.find_opt label_idx l with
        | Some target when target < idx -> backedges := (target, idx) :: !backedges
        | _ -> ()
      in
      match i with Jmp l -> check l | Br (_, a, b) -> check a; check b | _ -> ())
    instrs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (lo, hi) ->
        Hashtbl.iter
          (fun _ it ->
            if it.istart <= hi && it.iend >= lo && (it.istart > lo || it.iend < hi) then begin
              it.istart <- min it.istart lo;
              it.iend <- max it.iend hi;
              changed := true
            end)
          tbl)
      !backedges
  done;
  tbl

let run (instrs : instr array) : result =
  let intervals = analyze instrs in
  (* Dead marking: pure instructions whose destination vreg is never used. *)
  let dead = Array.make (Array.length instrs) false in
  let n_dead = ref 0 in
  Array.iteri
    (fun idx i ->
      if pure i then
        match dest i with
        | Some (Vreg v) -> (
          match Hashtbl.find_opt intervals v with
          | Some it when it.uses = 0 ->
            dead.(idx) <- true;
            incr n_dead
          | _ -> ())
        | _ -> ())
    instrs;
  (* Linear scan over intervals sorted by start. *)
  let sorted =
    Hashtbl.fold (fun _ it acc -> it :: acc) intervals []
    |> List.sort (fun a b -> compare a.istart b.istart)
  in
  let assignment : (int, operand) Hashtbl.t = Hashtbl.create 64 in
  let free = ref (List.init num_allocatable (fun i -> i)) in
  let active : interval list ref = ref [] in
  let n_slots = ref 0 and n_spilled = ref 0 in
  let expire current =
    let expired, live = List.partition (fun it -> it.iend < current) !active in
    active := live;
    List.iter
      (fun it ->
        match Hashtbl.find_opt assignment it.vreg with
        | Some (Preg r) -> free := r :: !free
        | _ -> ())
      expired
  in
  List.iter
    (fun it ->
      expire it.istart;
      match !free with
      | r :: rest ->
        free := rest;
        Hashtbl.replace assignment it.vreg (Preg r);
        active := it :: !active
      | [] ->
        (* Spill the interval ending furthest in the future. *)
        let victim =
          List.fold_left (fun acc c -> if c.iend > acc.iend then c else acc) it !active
        in
        incr n_spilled;
        if victim != it then begin
          (* Steal the victim's register. *)
          (match Hashtbl.find_opt assignment victim.vreg with
          | Some (Preg r) ->
            Hashtbl.replace assignment it.vreg (Preg r);
            active := it :: List.filter (fun c -> c != victim) !active
          | _ -> assert false);
          let slot = !n_slots in
          incr n_slots;
          Hashtbl.replace assignment victim.vreg (Slot slot)
        end
        else begin
          let slot = !n_slots in
          incr n_slots;
          Hashtbl.replace assignment it.vreg (Slot slot)
        end)
    sorted;
  let rewrite op =
    match op with
    | Vreg v -> (
      match Hashtbl.find_opt assignment v with
      | Some o -> o
      | None -> Preg 0 (* defined but never used; instruction is dead *))
    | o -> o
  in
  let out = Array.map (map_operands rewrite) instrs in
  { instrs = out; dead; n_slots = !n_slots; n_spilled = !n_spilled; n_dead = !n_dead }
