lib/hostir/dag.ml: Adl Array Hashtbl Hir Int64 List Option Printf Ssa String
