lib/hostir/encode.ml: Array Buffer Bytes Hashtbl Hir Int32 Int64 List Printf Regalloc
