lib/hostir/exec.ml: Array Bytes Dbt_util Encode F32 F64 Hir Hvm Int64 Sf_core Sf_types Softfloat
