lib/hostir/regalloc.mli: Hir
