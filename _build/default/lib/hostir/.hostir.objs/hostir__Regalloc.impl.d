lib/hostir/regalloc.ml: Array Hashtbl Hir List
