lib/hostir/encode.mli: Hir Regalloc
