lib/hostir/hir.ml: Array Option Printf String
