(* The assembled ARMv8-A guest: ADL model plus system-level hooks. *)

let model = lazy (Ssa.Offline.build ~opt_level:4 Arm_descr.source)

let model_at_level level = Ssa.Offline.build ~opt_level:level Arm_descr.source

(* Lines of architecture description (the paper compares its 8,100-line
   model against QEMU's hand-written 17,766). *)
let adl_lines =
  List.length (String.split_on_char '\n' Arm_descr.source)

let ops ?opt_level () : Guest.Ops.ops =
  let model =
    match opt_level with None -> Lazy.force model | Some l -> model_at_level l
  in
  {
    Guest.Ops.name = "armv8-a";
    description = "64-bit ARMv8-A (AArch64) guest";
    model;
    insn_size = 4;
    regfile_size = Arm_sys.regfile_size;
    bank_offset = Arm_sys.bank_offset;
    slot_offset = Arm_sys.slot_offset;
    mmu_enabled = Arm_sys.mmu_enabled;
    mmu_translate = Arm_sys.mmu_translate;
    address_space = Arm_sys.address_space;
    privilege_level = Arm_sys.privilege_level;
    take_exception = (fun c ~ec ~iss -> Arm_sys.take_exception c ~ec ~iss);
    data_abort = (fun c ~va ~access ~fault -> Arm_sys.data_abort c ~va ~access ~fault);
    insn_abort = (fun c ~va ~fault -> Arm_sys.insn_abort c ~va ~fault);
    undefined_insn = Arm_sys.undefined_insn;
    eret = Arm_sys.eret;
    deliver_irq = Arm_sys.deliver_irq;
    coproc_read = Arm_sys.coproc_read;
    coproc_write = Arm_sys.coproc_write;
    reset = (fun c ~entry -> Arm_sys.reset c ~entry);
  }
