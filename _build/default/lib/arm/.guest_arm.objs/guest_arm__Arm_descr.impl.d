lib/arm/arm_descr.ml: String
