lib/arm/arm.ml: Arm_descr Arm_sys Guest Lazy List Ssa String
