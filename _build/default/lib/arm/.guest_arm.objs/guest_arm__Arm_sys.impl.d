lib/arm/arm_sys.ml: Dbt_util Guest Int64
