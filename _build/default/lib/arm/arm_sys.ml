(* ARMv8-A system-level behaviour: register-file layout, system registers,
   the stage-1 MMU walker, and the exception model.

   These are the parts the paper keeps in "regular source-code files,
   compiled together with the generated source-code" (Sec. 2.2). *)

open Guest.Ops
module Bits = Dbt_util.Bits

(* --- register file layout --------------------------------------------------- *)

(* Slot indices follow declaration order in Arm_descr.header. *)
let sp_el0 = 0
let sp_el1 = 1
let nzcv = 2
let current_el = 3
let daif = 4
let vbar_el1 = 5
let elr_el1 = 6
let spsr_el1 = 7
let esr_el1 = 8
let far_el1 = 9
let ttbr0_el1 = 10
let ttbr1_el1 = 11
let sctlr_el1 = 12
let tpidr_el0 = 13

let bank_gpr = 0
let bank_vec = 1

let gpr_base = 0
let vec_base = 256
let slot_base = 768
let regfile_size = 1024

let bank_offset ~bank ~index =
  match bank with
  | 0 -> gpr_base + (8 * (index land 31))
  | 1 -> vec_base + (8 * (index land 63))
  | _ -> invalid_arg "bad bank"

let slot_offset slot = slot_base + (8 * slot)

(* --- system registers --------------------------------------------------------- *)

let sysreg_id ~o0 ~op1 ~crn ~crm ~op2 = (o0 lsl 14) lor (op1 lsl 11) lor (crn lsl 7) lor (crm lsl 3) lor op2

let id_sctlr = sysreg_id ~o0:1 ~op1:0 ~crn:1 ~crm:0 ~op2:0
let id_ttbr0 = sysreg_id ~o0:1 ~op1:0 ~crn:2 ~crm:0 ~op2:0
let id_ttbr1 = sysreg_id ~o0:1 ~op1:0 ~crn:2 ~crm:0 ~op2:1
let id_vbar = sysreg_id ~o0:1 ~op1:0 ~crn:12 ~crm:0 ~op2:0
let id_elr = sysreg_id ~o0:1 ~op1:0 ~crn:4 ~crm:0 ~op2:1
let id_spsr = sysreg_id ~o0:1 ~op1:0 ~crn:4 ~crm:0 ~op2:0
let id_esr = sysreg_id ~o0:1 ~op1:0 ~crn:5 ~crm:2 ~op2:0
let id_far = sysreg_id ~o0:1 ~op1:0 ~crn:6 ~crm:0 ~op2:0
let id_current_el = sysreg_id ~o0:1 ~op1:0 ~crn:4 ~crm:2 ~op2:2
let id_nzcv = sysreg_id ~o0:1 ~op1:3 ~crn:4 ~crm:2 ~op2:0
let id_daif = sysreg_id ~o0:1 ~op1:3 ~crn:4 ~crm:2 ~op2:1
let id_sp_el0 = sysreg_id ~o0:1 ~op1:0 ~crn:4 ~crm:1 ~op2:0
let id_tpidr_el0 = sysreg_id ~o0:1 ~op1:3 ~crn:13 ~crm:0 ~op2:2
let id_cntvct = sysreg_id ~o0:1 ~op1:3 ~crn:14 ~crm:0 ~op2:2
let id_cntfrq = sysreg_id ~o0:1 ~op1:3 ~crn:14 ~crm:0 ~op2:0
let id_midr = sysreg_id ~o0:1 ~op1:0 ~crn:0 ~crm:0 ~op2:0
let id_mpidr = sysreg_id ~o0:1 ~op1:0 ~crn:0 ~crm:0 ~op2:5

let cnt_frequency = 62_500_000L

let coproc_read (c : sys_ctx) id =
  let id = Int64.to_int id in
  if id = id_sctlr then c.read_reg sctlr_el1
  else if id = id_ttbr0 then c.read_reg ttbr0_el1
  else if id = id_ttbr1 then c.read_reg ttbr1_el1
  else if id = id_vbar then c.read_reg vbar_el1
  else if id = id_elr then c.read_reg elr_el1
  else if id = id_spsr then c.read_reg spsr_el1
  else if id = id_esr then c.read_reg esr_el1
  else if id = id_far then c.read_reg far_el1
  else if id = id_current_el then Int64.shift_left (c.read_reg current_el) 2
  else if id = id_nzcv then Int64.shift_left (c.read_reg nzcv) 28
  else if id = id_daif then Int64.shift_left (c.read_reg daif) 6
  else if id = id_sp_el0 then c.read_reg sp_el0
  else if id = id_tpidr_el0 then c.read_reg tpidr_el0
  else if id = id_cntvct then Int64.div (Int64.of_int (c.cycles ())) 56L (* ~3.5GHz -> 62.5MHz *)
  else if id = id_cntfrq then cnt_frequency
  else if id = id_midr then 0x410FD070L (* Cortex-A57-ish *)
  else if id = id_mpidr then 0x80000000L
  else 0L

let coproc_write (c : sys_ctx) id v : coproc_effect =
  let id = Int64.to_int id in
  if id = id_sctlr then begin
    c.write_reg sctlr_el1 v;
    Ce_mmu_changed
  end
  else if id = id_ttbr0 then begin
    c.write_reg ttbr0_el1 v;
    Ce_mmu_changed
  end
  else if id = id_ttbr1 then begin
    c.write_reg ttbr1_el1 v;
    Ce_mmu_changed
  end
  else if id = id_vbar then begin c.write_reg vbar_el1 v; Ce_none end
  else if id = id_elr then begin c.write_reg elr_el1 v; Ce_none end
  else if id = id_spsr then begin c.write_reg spsr_el1 v; Ce_none end
  else if id = id_esr then begin c.write_reg esr_el1 v; Ce_none end
  else if id = id_far then begin c.write_reg far_el1 v; Ce_none end
  else if id = id_nzcv then begin
    c.write_reg nzcv (Int64.logand (Int64.shift_right_logical v 28) 0xFL);
    Ce_none
  end
  else if id = id_daif then begin
    c.write_reg daif (Int64.logand (Int64.shift_right_logical v 6) 0xFL);
    Ce_none
  end
  else if id = id_sp_el0 then begin c.write_reg sp_el0 v; Ce_none end
  else if id = id_tpidr_el0 then begin c.write_reg tpidr_el0 v; Ce_none end
  else Ce_none

(* --- the stage-1 MMU walker ------------------------------------------------------ *)

(* Simplified ARMv8 VMSA: 4 KiB granule, 39-bit VA, 3 levels.  TTBR0 maps
   VAs whose bits 63:39 are zero, TTBR1 those whose bits 63:39 are ones
   (the Linux kernel half). *)

let mmu_enabled (c : sys_ctx) = Int64.logand (c.read_reg sctlr_el1) 1L <> 0L

let address_space (_c : sys_ctx) va = if Int64.shift_right_logical va 39 = 0L then 0 else 1

let desc_valid d = Int64.logand d 1L <> 0L
let desc_is_table d = Int64.logand d 2L <> 0L
let desc_addr d = Int64.logand d 0x0000_FFFF_FFFF_F000L

let perms_of_desc ~user_wants_exec:_ d =
  let ap21 = Int64.to_int (Bits.extract d ~lo:6 ~len:2) in
  let uxn = Bits.bit d 54 in
  let pxn = Bits.bit d 53 in
  let puser = ap21 land 1 = 1 in
  let pw = ap21 land 2 = 0 in
  (* Executability is resolved against the privilege of the accessor; we
     publish the user-execute bit when the page is user accessible and the
     kernel-execute bit otherwise (documented simplification). *)
  let px = if puser then not uxn else not pxn in
  { pr = true; pw; px; puser }

let mmu_translate (c : sys_ctx) ~access va : (int64 * perms, guest_fault) result =
  if not (mmu_enabled c) then
    Ok (va, { pr = true; pw = true; px = true; puser = true })
  else begin
    let high_bits = Int64.shift_right_logical va 39 in
    let ttbr =
      if high_bits = 0L then Some (c.read_reg ttbr0_el1)
      else if high_bits = 0x1FFFFFFL then Some (c.read_reg ttbr1_el1)
      else None
    in
    match ttbr with
    | None -> Error (Gf_translation 0)
    | Some root ->
      let index level = Int64.to_int (Bits.extract va ~lo:(12 + (9 * level)) ~len:9) in
      let rec walk table level =
        (* level counts down: 2 = L1 (bit 30), 0 = L3 (bit 12) *)
        let d = c.phys_read ~bits:64 (Int64.add table (Int64.of_int (8 * index level))) in
        if not (desc_valid d) then Error (Gf_translation (3 - level))
        else if level = 0 then
          if desc_is_table d then begin
            (* page descriptor *)
            if not (Bits.bit d 10) then Error (Gf_translation 3) (* AF clear *)
            else
              let pa = Int64.logor (desc_addr d) (Int64.logand va 0xFFFL) in
              Ok (pa, perms_of_desc ~user_wants_exec:(access = Afetch) d)
          end
          else Error (Gf_translation 3)
        else if desc_is_table d then walk (desc_addr d) (level - 1)
        else begin
          (* block descriptor: 1 GiB at L1, 2 MiB at L2 *)
          if not (Bits.bit d 10) then Error (Gf_translation (3 - level))
          else
            let block_bits = 12 + (9 * level) in
            let mask = Bits.mask block_bits in
            let pa = Int64.logor (Int64.logand (desc_addr d) (Int64.lognot mask)) (Int64.logand va mask) in
            Ok (pa, perms_of_desc ~user_wants_exec:(access = Afetch) d)
        end
      in
      walk (Int64.logand root 0x0000_FFFF_FFFF_F000L) 2
  end

(* --- exceptions -------------------------------------------------------------------- *)

let spsr_of (c : sys_ctx) =
  let n = Int64.shift_left (c.read_reg nzcv) 28 in
  let d = Int64.shift_left (c.read_reg daif) 6 in
  let m = if c.read_reg current_el = 1L then 0x5L else 0x0L in
  Int64.logor n (Int64.logor d m)

let vector_offset ~from_el ~kind =
  let base = if from_el = 0L then 0x400L else 0x200L in
  match kind with `Sync -> base | `Irq -> Int64.add base 0x80L

let enter_exception (c : sys_ctx) ~kind ~elr =
  let from_el = c.read_reg current_el in
  c.write_reg spsr_el1 (spsr_of c);
  c.write_reg elr_el1 elr;
  c.write_reg daif (Int64.logor (c.read_reg daif) 2L); (* mask IRQ *)
  c.write_reg current_el 1L;
  c.set_pc (Int64.add (c.read_reg vbar_el1) (vector_offset ~from_el ~kind))

let take_exception (c : sys_ctx) ~ec ~iss =
  let pc = c.get_pc () in
  (* SVC-class exceptions return to the following instruction. *)
  let elr = if ec = 0x15L then Int64.add pc 4L else pc in
  let esr = Int64.logor (Int64.shift_left ec 26) (Int64.logor 0x2000000L (Int64.logand iss 0x1FFFFFFL)) in
  c.write_reg esr_el1 esr;
  enter_exception c ~kind:`Sync ~elr

let fault_iss ~(access : access) ~(fault : guest_fault) =
  let dfsc =
    match fault with
    | Gf_translation level -> 0b000100 lor level
    | Gf_permission level -> 0b001100 lor level
    | Gf_alignment -> 0b100001
  in
  let wnr = if access = Astore then 1 lsl 6 else 0 in
  Int64.of_int (dfsc lor wnr)

let data_abort (c : sys_ctx) ~va ~access ~fault =
  let from_el = c.read_reg current_el in
  let ec = if from_el = 0L then 0x24L else 0x25L in
  c.write_reg far_el1 va;
  take_exception c ~ec ~iss:(fault_iss ~access ~fault)

let insn_abort (c : sys_ctx) ~va ~fault =
  let from_el = c.read_reg current_el in
  let ec = if from_el = 0L then 0x20L else 0x21L in
  c.write_reg far_el1 va;
  take_exception c ~ec ~iss:(fault_iss ~access:Afetch ~fault)

let undefined_insn (c : sys_ctx) = take_exception c ~ec:0L ~iss:0L

let eret (c : sys_ctx) =
  let spsr = c.read_reg spsr_el1 in
  c.write_reg nzcv (Int64.logand (Int64.shift_right_logical spsr 28) 0xFL);
  c.write_reg daif (Int64.logand (Int64.shift_right_logical spsr 6) 0xFL);
  c.write_reg current_el (Int64.logand (Int64.shift_right_logical spsr 2) 3L);
  c.set_pc (c.read_reg elr_el1)

let deliver_irq (c : sys_ctx) =
  let el = c.read_reg current_el in
  let masked = Int64.logand (c.read_reg daif) 2L <> 0L in
  if masked then false
  else begin
    enter_exception c ~kind:`Irq ~elr:(c.get_pc ());
    ignore el;
    true
  end

let privilege_level (c : sys_ctx) = Int64.to_int (c.read_reg current_el)

let reset (c : sys_ctx) ~entry =
  c.write_reg current_el 1L;
  c.write_reg daif 0xFL;
  c.write_reg sctlr_el1 0L;
  c.set_pc entry
