(* The ARMv8-A (AArch64) architecture description.

   This is the analogue of the paper's 8,100-line ARMv8-A model: decode
   patterns and instruction semantics in the ADL's C-like behaviour
   language.  System-level behaviour that the paper keeps in regular
   source files (the stage-1 MMU walker, the exception model, system
   registers) lives in Arm_sys.

   Conventions:
   - GPR[0..30] are X0..X30; index 31 is XZR storage that helpers bypass.
   - VEC[2n] is the low 64 bits of Vn (Dn); VEC[2n+1] the high 64 bits.
   - NZCV is stored as a nibble: N=8, Z=4, C=2, V=1.
   - The engine supplies the pseudo-field  __el  (current exception
     level), so translations specialize on the guest privilege mode and
     the code cache can key on it. *)

let header =
  {|
arch "armv8-a" {
  wordsize 64;
  endian little;
  bank GPR : uint64[32];
  bank VEC : uint64[64];
  reg SP_EL0 : uint64;
  reg SP_EL1 : uint64;
  reg NZCV : uint64;
  reg CURRENT_EL : uint64;
  reg DAIF : uint64;
  reg VBAR_EL1 : uint64;
  reg ELR_EL1 : uint64;
  reg SPSR_EL1 : uint64;
  reg ESR_EL1 : uint64;
  reg FAR_EL1 : uint64;
  reg TTBR0_EL1 : uint64;
  reg TTBR1_EL1 : uint64;
  reg SCTLR_EL1 : uint64;
  reg TPIDR_EL0 : uint64;
  reg EXCL_MONITOR : uint64;
}
|}

let helpers =
  {|
// --- register access ------------------------------------------------------

helper uint64 rgpr(uint64 n) {
  return select(n == 31, 0, read_register_bank(GPR, n));
}

helper void wgpr(uint64 n, uint64 v) {
  if (n != 31) { write_register_bank(GPR, n, v); }
}

helper uint64 rsp(uint64 el) {
  return select(el == 0, read_register(SP_EL0), read_register(SP_EL1));
}

helper void wsp(uint64 el, uint64 v) {
  if (el == 0) { write_register(SP_EL0, v); } else { write_register(SP_EL1, v); }
}

helper uint64 rgpr_sp(uint64 n, uint64 el) {
  if (n == 31) { return rsp(el); }
  return rgpr(n);
}

helper void wgpr_sp(uint64 n, uint64 el, uint64 v) {
  if (n == 31) { wsp(el, v); } else { wgpr(n, v); }
}

helper uint64 rvec(uint64 n) { return read_register_bank(VEC, n * 2); }

helper void wvec(uint64 n, uint64 v) {
  write_register_bank(VEC, n * 2, v);
  write_register_bank(VEC, n * 2 + 1, 0);
}

// --- condition codes --------------------------------------------------------

helper uint64 cond_holds(uint64 cond) {
  uint64 nzcv = read_register(NZCV);
  uint64 n = (nzcv >> 3) & 1;
  uint64 z = (nzcv >> 2) & 1;
  uint64 c = (nzcv >> 1) & 1;
  uint64 v = nzcv & 1;
  uint64 r = 1;
  uint64 base = cond >> 1;
  if (base == 0) { r = z; }
  if (base == 1) { r = c; }
  if (base == 2) { r = n; }
  if (base == 3) { r = v; }
  if (base == 4) { r = c & (z == 0); }
  if (base == 5) { r = n == v; }
  if (base == 6) { r = (z == 0) & (n == v); }
  if (base == 7) { r = 1; }
  if ((cond & 1) == 1) {
    if (cond != 15) { r = r == 0; }
  }
  return r;
}

// --- operand shifting --------------------------------------------------------

helper uint64 shift64(uint64 v, uint64 ty, uint64 amt) {
  if (ty == 0) { return v << amt; }
  if (ty == 1) { return v >> amt; }
  if (ty == 2) { return (uint64)((sint64)v >> amt); }
  return ror64(v, amt);
}

helper uint64 shift32(uint64 v, uint64 ty, uint64 amt) {
  uint64 w = v & 0xFFFFFFFF;
  if (ty == 0) { return (w << amt) & 0xFFFFFFFF; }
  if (ty == 1) { return w >> amt; }
  if (ty == 2) { return ((uint64)((sint64)sign_extend(w, 32) >> amt)) & 0xFFFFFFFF; }
  return ror32(w, amt);
}

// Extended-register operand (UXTB..SXTX) with left shift.
helper uint64 extend_reg(uint64 v, uint64 option, uint64 amt) {
  uint64 r = v;
  if (option == 0) { r = v & 0xFF; }
  if (option == 1) { r = v & 0xFFFF; }
  if (option == 2) { r = v & 0xFFFFFFFF; }
  if (option == 4) { r = sign_extend(v & 0xFF, 8); }
  if (option == 5) { r = sign_extend(v & 0xFFFF, 16); }
  if (option == 6) { r = sign_extend(v & 0xFFFFFFFF, 32); }
  return r << amt;
}

// --- bitmask immediates (DecodeBitMasks of the ARM ARM) -----------------------

helper uint64 bitmask_welem(uint64 n, uint64 immr, uint64 imms) {
  uint64 lenbits = (n << 6) | ((~imms) & 0x3F);
  uint64 len = 31 - clz32(lenbits);
  uint64 esize = (uint64)1 << len;
  uint64 levels = esize - 1;
  uint64 s = imms & levels;
  uint64 r = immr & levels;
  uint64 welem = select(s == 63, 0xFFFFFFFFFFFFFFFF, ((uint64)1 << (s + 1)) - 1);
  uint64 emask = select(esize == 64, 0xFFFFFFFFFFFFFFFF, ((uint64)1 << esize) - 1);
  uint64 rot = select(r == 0, welem,
                      ((welem >> r) | (welem << (esize - r))) & emask);
  uint64 result = rot;
  uint64 size = esize;
  while (size < 64) {
    result = result | (result << size);
    size = size + size;
  }
  return result;
}

helper uint64 bitmask_telem(uint64 n, uint64 immr, uint64 imms) {
  uint64 lenbits = (n << 6) | ((~imms) & 0x3F);
  uint64 len = 31 - clz32(lenbits);
  uint64 esize = (uint64)1 << len;
  uint64 levels = esize - 1;
  uint64 s = imms & levels;
  uint64 r = immr & levels;
  uint64 diff = (s - r) & levels;
  uint64 telem = select(diff == 63, 0xFFFFFFFFFFFFFFFF, ((uint64)1 << (diff + 1)) - 1);
  uint64 result = telem;
  uint64 size = esize;
  while (size < 64) {
    result = result | (result << size);
    size = size + size;
  }
  return result;
}

// --- floating point immediates (VFPExpandImm) ----------------------------------

helper uint64 vfp_expand_imm64(uint64 imm8) {
  uint64 sign = (imm8 >> 7) & 1;
  uint64 b6 = (imm8 >> 6) & 1;
  uint64 expo = ((b6 ^ 1) << 10) | (select(b6 == 1, 0xFF, 0) << 2) | ((imm8 >> 4) & 3);
  return (sign << 63) | (expo << 52) | ((imm8 & 0xF) << 48);
}

helper uint64 vfp_expand_imm32(uint64 imm8) {
  uint64 sign = (imm8 >> 7) & 1;
  uint64 b6 = (imm8 >> 6) & 1;
  uint64 expo = ((b6 ^ 1) << 7) | (select(b6 == 1, 0x1F, 0) << 2) | ((imm8 >> 4) & 3);
  return (sign << 31) | (expo << 23) | ((imm8 & 0xF) << 19);
}
|}

(* --- decode patterns ---------------------------------------------------- *)

let decodes =
  {|
decode add_sub_imm   "sf:1 op:1 s:1 10001 0 sh:1 imm12:12 rn:5 rd:5";
decode logical_imm   "sf:1 opc:2 100100 n:1 immr:6 imms:6 rn:5 rd:5" when (sf == 1 || n == 0);
decode movwide       "sf:1 opc:2 100101 hw:2 imm16:16 rd:5" when (opc != 1 && (sf == 1 || hw < 2));
decode adr           "op:1 immlo:2 10000 immhi:19 rd:5";
decode bitfield      "sf:1 opc:2 100110 n:1 immr:6 imms:6 rn:5 rd:5" when (opc != 3 && n == sf);
decode add_sub_shreg "sf:1 op:1 s:1 01011 shift:2 0 rm:5 imm6:6 rn:5 rd:5" when (shift != 3);
decode logical_shreg "sf:1 opc:2 01010 shift:2 n:1 rm:5 imm6:6 rn:5 rd:5";
decode adc_sbc       "sf:1 op:1 s:1 11010000 rm:5 000000 rn:5 rd:5";
decode condsel       "sf:1 op:1 0 11010100 rm:5 cond:4 0 o2:1 rn:5 rd:5";
decode dp3           "sf:1 00 11011 000 rm:5 o0:1 ra:5 rn:5 rd:5";
decode mulh          "1 00 11011 u:1 10 rm:5 0 11111 rn:5 rd:5";
decode dp2           "sf:1 0 0 11010110 rm:5 opcode:6 rn:5 rd:5"
  when (opcode == 2 || opcode == 3 || opcode == 8 || opcode == 9 || opcode == 10 || opcode == 11);
decode dp1           "sf:1 1 0 11010110 00000 opcode:6 rn:5 rd:5" when (opcode < 6);
decode b_uncond      "op:1 00101 imm26:26" ends_block;
decode b_cond        "01010100 imm19:19 0 cond:4" ends_block;
decode cbz           "sf:1 011010 op:1 imm19:19 rt:5" ends_block;
decode tbz           "b5:1 011011 op:1 b40:5 imm14:14 rt:5" ends_block;
decode br_blr_ret    "1101011 opc:4 11111 000000 rn:5 00000" when (opc < 3) ends_block;
decode ldst_uimm     "size:2 111 0 01 opc:2 imm12:12 rn:5 rt:5"
  when (!(size == 3 && opc >= 2) && !(size == 2 && opc == 3));
decode ldst_simm     "size:2 111 0 00 opc:2 0 imm9:9 mode:2 rn:5 rt:5"
  when (mode != 2 && !(size == 3 && opc >= 2) && !(size == 2 && opc == 3));
decode ldst_reg      "size:2 111 0 00 opc:2 1 rm:5 option:3 scale:1 10 rn:5 rt:5"
  when (!(size == 3 && opc >= 2) && !(size == 2 && opc == 3) && (option & 2) != 0);
decode ldp_stp       "opc:2 101 0 mode:3 l:1 imm7:7 rt2:5 rn:5 rt:5"
  when ((opc == 0 || opc == 2) && (mode == 1 || mode == 2 || mode == 3));
decode ldr_lit       "opc:2 011 0 00 imm19:19 rt:5" when (opc < 2);
decode ldst_fp_uimm  "size:2 111 1 01 opc:2 imm12:12 rn:5 rt:5"
  when (((size == 2 || size == 3) && opc < 2) || (size == 0 && opc >= 2));
decode ldst_fp_simm  "size:2 111 1 00 opc:2 0 imm9:9 mode:2 rn:5 rt:5"
  when ((size == 2 || size == 3) && opc < 2 && mode != 2);
decode fp2src        "000 11110 ftype:2 1 rm:5 opcode:4 10 rn:5 rd:5"
  when (ftype != 2 && ftype != 3 && (opcode < 6 || opcode == 8));
decode fp1src        "000 11110 ftype:2 1 opcode:6 10000 rn:5 rd:5"
  when (ftype < 2 && (opcode < 4 || (ftype == 0 && opcode == 5) || (ftype == 1 && opcode == 4)));
decode fcmp          "000 11110 ftype:2 1 rm:5 001000 rn:5 op2:5"
  when (ftype < 2 && (op2 == 0 || op2 == 8 || op2 == 16 || op2 == 24));
decode fmov_imm      "000 11110 ftype:2 1 imm8:8 100 00000 rd:5" when (ftype < 2);
decode fp_int        "sf:1 0 0 11110 ftype:2 1 rmode:2 opcode:3 000000 rn:5 rd:5"
  when (ftype < 2 && ((rmode == 0 && (opcode == 2 || opcode == 3 || opcode == 6 || opcode == 7)) || (rmode == 3 && opcode < 2)));
decode fmadd         "000 11111 ftype:2 0 rm:5 o0:1 ra:5 rn:5 rd:5" when (ftype < 2);
decode fcsel         "000 11110 ftype:2 1 rm:5 cond:4 11 rn:5 rd:5" when (ftype < 2);
decode add_sub_ext   "sf:1 op:1 s:1 01011 001 rm:5 option:3 imm3:3 rn:5 rd:5" when (imm3 < 5);
decode extr          "sf:1 00 100111 n:1 0 rm:5 imms:6 rn:5 rd:5" when (n == sf && (sf == 1 || imms < 32));
decode ccmp_reg      "sf:1 op:1 1 11010010 rm:5 cond:4 0 0 rn:5 0 nzcv:4";
decode ccmp_imm      "sf:1 op:1 1 11010010 imm5:5 cond:4 1 0 rn:5 0 nzcv:4";
decode ldar_stlr     "size:2 001000 1 l:1 0 11111 1 11111 rn:5 rt:5";
decode ldxr          "size:2 001000 0 1 0 11111 0 11111 rn:5 rt:5";
decode stxr          "size:2 001000 0 0 0 rs:5 0 11111 rn:5 rt:5";
decode vec3same      "0 1 u:1 01110 size:2 1 rm:5 opcode:5 1 rn:5 rd:5"
  when ((opcode == 16 && size == 3) || (opcode == 3 && u == 0) || (opcode == 3 && u == 1 && size == 0));
decode vecfp3same    "0 1 u:1 01110 0 sz:1 1 rm:5 opcode:6 rn:5 rd:5"
  when (sz == 1 && ((u == 0 && opcode == 53) || (u == 1 && opcode == 55)));
decode dup_gen       "0 1 001110000 imm5:5 000011 rn:5 rd:5" when ((imm5 & 1) == 1 || (imm5 & 2) == 2 || (imm5 & 4) == 4 || (imm5 & 8) == 8);
decode umov          "0 q:1 001110000 imm5:5 001111 rn:5 rd:5"
  when ((q == 1 && (imm5 & 15) == 8) || (q == 0 && (imm5 & 3) == 2));
decode svc           "11010100 000 imm16:16 000 01" ends_block;
decode brk           "11010100 001 imm16:16 000 00" ends_block;
decode eret_insn     "11010110 100 11111 0000 00 11111 00000" ends_block;
decode wfi           "1101010100 0 00 011 0010 0000 011 11111" ends_block;
decode hint          "1101010100 0 00 011 0010 crm:4 op2:3 11111";
decode barrier       "1101010100 0 00 011 0011 crm:4 op2:3 11111";
decode msr_imm       "1101010100 0 00 op1:3 0100 crm:4 op2:3 11111" ends_block;
decode sys           "1101010100 0 01 op1:3 crn:4 crm:4 op2:3 rt:5";
decode mrs           "1101010100 1 1 o0:1 op1:3 crn:4 crm:4 op2:3 rt:5";
decode msr_reg       "1101010100 0 1 o0:1 op1:3 crn:4 crm:4 op2:3 rt:5" ends_block;
|}

(* --- integer semantics ------------------------------------------------------ *)

let exec_int =
  {|
execute(add_sub_imm) {
  uint64 imm = inst.imm12 << (inst.sh * 12);
  uint64 a = rgpr_sp(inst.rn, inst.__el);
  uint64 operand2 = select(inst.op == 1, ~imm, imm);
  uint64 cin = inst.op;
  if (inst.sf == 1) {
    uint64 r = adc64(a, operand2, cin);
    if (inst.s == 1) {
      write_register(NZCV, add_flags64(a, operand2, cin));
      wgpr(inst.rd, r);
    } else {
      wgpr_sp(inst.rd, inst.__el, r);
    }
  } else {
    uint64 a32 = a & 0xFFFFFFFF;
    uint64 o32 = operand2 & 0xFFFFFFFF;
    uint64 r = adc32(a32, o32, cin);
    if (inst.s == 1) {
      write_register(NZCV, add_flags32(a32, o32, cin));
      wgpr(inst.rd, r);
    } else {
      wgpr_sp(inst.rd, inst.__el, r);
    }
  }
}

execute(logical_imm) {
  uint64 imm = bitmask_welem(inst.n, inst.immr, inst.imms);
  uint64 a = rgpr(inst.rn);
  uint64 r = 0;
  if (inst.opc == 0) { r = a & imm; }
  if (inst.opc == 1) { r = a | imm; }
  if (inst.opc == 2) { r = a ^ imm; }
  if (inst.opc == 3) { r = a & imm; }
  if (inst.sf == 0) { r = r & 0xFFFFFFFF; }
  if (inst.opc == 3) {
    // ANDS: destination is never SP
    if (inst.sf == 1) { write_register(NZCV, logic_flags64(r)); }
    else { write_register(NZCV, logic_flags32(r)); }
    wgpr(inst.rd, r);
  } else {
    wgpr_sp(inst.rd, inst.__el, r);
  }
}

execute(movwide) {
  uint64 imm = inst.imm16 << (inst.hw * 16);
  uint64 r = 0;
  if (inst.opc == 0) { r = ~imm; }
  if (inst.opc == 2) { r = imm; }
  if (inst.opc == 3) {
    uint64 old = rgpr(inst.rd);
    uint64 mask = (uint64)0xFFFF << (inst.hw * 16);
    r = (old & (~mask)) | imm;
  }
  if (inst.sf == 0) { r = r & 0xFFFFFFFF; }
  wgpr(inst.rd, r);
}

execute(adr) {
  uint64 pc = read_pc();
  uint64 imm = sign_extend((inst.immhi << 2) | inst.immlo, 21);
  if (inst.op == 1) {
    wgpr(inst.rd, (pc & (~(uint64)0xFFF)) + (imm << 12));
  } else {
    wgpr(inst.rd, pc + imm);
  }
}

execute(bitfield) {
  uint64 wmask = bitmask_welem(inst.n, inst.immr, inst.imms);
  uint64 tmask = bitmask_telem(inst.n, inst.immr, inst.imms);
  uint64 src = rgpr(inst.rn);
  uint64 rot = select(inst.sf == 1, ror64(src, inst.immr), ror32(src & 0xFFFFFFFF, inst.immr));
  uint64 bot = rot & wmask;
  uint64 r = 0;
  if (inst.opc == 2) {
    // UBFM
    r = bot & tmask;
  }
  if (inst.opc == 0) {
    // SBFM: replicate the sign bit of src[imms] above tmask
    uint64 sbit = (src >> inst.imms) & 1;
    uint64 top = select(sbit == 1, 0xFFFFFFFFFFFFFFFF, 0);
    r = (bot & tmask) | (top & (~tmask));
  }
  if (inst.opc == 1) {
    // BFM: keep untouched destination bits
    uint64 old = rgpr(inst.rd);
    uint64 bot2 = (old & (~wmask)) | (rot & wmask);
    r = (old & (~tmask)) | (bot2 & tmask);
  }
  if (inst.sf == 0) { r = r & 0xFFFFFFFF; }
  wgpr(inst.rd, r);
}

execute(add_sub_shreg) {
  uint64 b = rgpr(inst.rm);
  uint64 operand2 = select(inst.sf == 1,
                           shift64(b, inst.shift, inst.imm6),
                           shift32(b, inst.shift, inst.imm6));
  uint64 a = rgpr(inst.rn);
  uint64 o2 = select(inst.op == 1, ~operand2, operand2);
  uint64 cin = inst.op;
  if (inst.sf == 1) {
    uint64 r = adc64(a, o2, cin);
    if (inst.s == 1) { write_register(NZCV, add_flags64(a, o2, cin)); }
    wgpr(inst.rd, r);
  } else {
    uint64 a32 = a & 0xFFFFFFFF;
    uint64 o32 = o2 & 0xFFFFFFFF;
    uint64 r = adc32(a32, o32, cin);
    if (inst.s == 1) { write_register(NZCV, add_flags32(a32, o32, cin)); }
    wgpr(inst.rd, r);
  }
}

execute(logical_shreg) {
  uint64 b = rgpr(inst.rm);
  uint64 operand2 = select(inst.sf == 1,
                           shift64(b, inst.shift, inst.imm6),
                           shift32(b, inst.shift, inst.imm6));
  if (inst.n == 1) { operand2 = ~operand2; }
  uint64 a = rgpr(inst.rn);
  uint64 r = 0;
  if (inst.opc == 0) { r = a & operand2; }
  if (inst.opc == 1) { r = a | operand2; }
  if (inst.opc == 2) { r = a ^ operand2; }
  if (inst.opc == 3) { r = a & operand2; }
  if (inst.sf == 0) { r = r & 0xFFFFFFFF; }
  if (inst.opc == 3) {
    if (inst.sf == 1) { write_register(NZCV, logic_flags64(r)); }
    else { write_register(NZCV, logic_flags32(r)); }
  }
  wgpr(inst.rd, r);
}

execute(adc_sbc) {
  uint64 a = rgpr(inst.rn);
  uint64 b = rgpr(inst.rm);
  uint64 cin = (read_register(NZCV) >> 1) & 1;
  uint64 o2 = select(inst.op == 1, ~b, b);
  if (inst.sf == 1) {
    uint64 r = adc64(a, o2, cin);
    if (inst.s == 1) { write_register(NZCV, add_flags64(a, o2, cin)); }
    wgpr(inst.rd, r);
  } else {
    uint64 a32 = a & 0xFFFFFFFF;
    uint64 o32 = o2 & 0xFFFFFFFF;
    uint64 r = adc32(a32, o32, cin);
    if (inst.s == 1) { write_register(NZCV, add_flags32(a32, o32, cin)); }
    wgpr(inst.rd, r);
  }
}

execute(condsel) {
  uint64 take = cond_holds(inst.cond);
  uint64 a = rgpr(inst.rn);
  uint64 b = rgpr(inst.rm);
  uint64 alt = b;
  if (inst.op == 0 && inst.o2 == 1) { alt = b + 1; }
  if (inst.op == 1 && inst.o2 == 0) { alt = ~b; }
  if (inst.op == 1 && inst.o2 == 1) { alt = 0 - b; }
  uint64 r = select(take, a, alt);
  if (inst.sf == 0) { r = r & 0xFFFFFFFF; }
  wgpr(inst.rd, r);
}

execute(dp3) {
  uint64 acc = rgpr(inst.ra);
  uint64 p = rgpr(inst.rn) * rgpr(inst.rm);
  uint64 r = select(inst.o0 == 1, acc - p, acc + p);
  if (inst.sf == 0) { r = r & 0xFFFFFFFF; }
  wgpr(inst.rd, r);
}

execute(mulh) {
  uint64 a = rgpr(inst.rn);
  uint64 b = rgpr(inst.rm);
  uint64 r = select(inst.u == 1, umulh64(a, b), smulh64(a, b));
  wgpr(inst.rd, r);
}

execute(dp2) {
  uint64 a = rgpr(inst.rn);
  uint64 b = rgpr(inst.rm);
  uint64 r = 0;
  if (inst.opcode == 2) { r = select(inst.sf == 1, udiv64(a, b), udiv32(a, b)); }
  if (inst.opcode == 3) { r = select(inst.sf == 1, sdiv64(a, b), sdiv32(a, b)); }
  if (inst.opcode == 8) {
    r = select(inst.sf == 1, a << (b & 63), (a << (b & 31)) & 0xFFFFFFFF);
  }
  if (inst.opcode == 9) {
    r = select(inst.sf == 1, a >> (b & 63), (a & 0xFFFFFFFF) >> (b & 31));
  }
  if (inst.opcode == 10) {
    r = select(inst.sf == 1,
               (uint64)((sint64)a >> (b & 63)),
               ((uint64)((sint64)sign_extend(a & 0xFFFFFFFF, 32) >> (b & 31))) & 0xFFFFFFFF);
  }
  if (inst.opcode == 11) {
    r = select(inst.sf == 1, ror64(a, b & 63), ror32(a & 0xFFFFFFFF, b & 31));
  }
  wgpr(inst.rd, r);
}

execute(dp1) {
  uint64 a = rgpr(inst.rn);
  uint64 r = 0;
  if (inst.opcode == 0) { r = select(inst.sf == 1, rbit64(a), rbit32(a & 0xFFFFFFFF)); }
  if (inst.opcode == 1) {
    // REV16: byte-swap each halfword
    uint64 swapped = ((a & 0x00FF00FF00FF00FF) << 8) | ((a >> 8) & 0x00FF00FF00FF00FF);
    r = select(inst.sf == 1, swapped, swapped & 0xFFFFFFFF);
  }
  if (inst.opcode == 2) {
    if (inst.sf == 1) { r = (rev32(a & 0xFFFFFFFF)) | (rev32(a >> 32) << 32); }
    else { r = rev32(a & 0xFFFFFFFF); }
  }
  if (inst.opcode == 3) { r = rev64(a); }
  if (inst.opcode == 4) { r = select(inst.sf == 1, clz64(a), clz32(a & 0xFFFFFFFF)); }
  if (inst.opcode == 5) {
    // CLS: leading sign bits
    uint64 x = select(inst.sf == 1, a, sign_extend(a & 0xFFFFFFFF, 32));
    uint64 flipped = select((x >> 63) == 1, ~x, x);
    r = select(inst.sf == 1, clz64(flipped) - 1, clz32(flipped & 0xFFFFFFFF) - 1);
  }
  wgpr(inst.rd, r);
}
|}

let exec_ext =
  {|
execute(add_sub_ext) {
  uint64 a = rgpr_sp(inst.rn, inst.__el);
  uint64 operand2 = extend_reg(rgpr(inst.rm), inst.option, inst.imm3);
  uint64 o2 = select(inst.op == 1, ~operand2, operand2);
  uint64 cin = inst.op;
  if (inst.sf == 1) {
    uint64 r = adc64(a, o2, cin);
    if (inst.s == 1) {
      write_register(NZCV, add_flags64(a, o2, cin));
      wgpr(inst.rd, r);
    } else {
      wgpr_sp(inst.rd, inst.__el, r);
    }
  } else {
    uint64 a32 = a & 0xFFFFFFFF;
    uint64 o32 = o2 & 0xFFFFFFFF;
    uint64 r = adc32(a32, o32, cin);
    if (inst.s == 1) {
      write_register(NZCV, add_flags32(a32, o32, cin));
      wgpr(inst.rd, r);
    } else {
      wgpr_sp(inst.rd, inst.__el, r);
    }
  }
}

execute(extr) {
  uint64 lo = rgpr(inst.rm);
  uint64 hi = rgpr(inst.rn);
  uint64 r = 0;
  if (inst.sf == 1) {
    r = select(inst.imms == 0, lo, (lo >> inst.imms) | (hi << (64 - inst.imms)));
  } else {
    uint64 lo32 = lo & 0xFFFFFFFF;
    uint64 hi32 = hi & 0xFFFFFFFF;
    r = select(inst.imms == 0, lo32,
               ((lo32 >> inst.imms) | (hi32 << (32 - inst.imms))) & 0xFFFFFFFF);
  }
  wgpr(inst.rd, r);
}

helper void ccmp_core(uint64 sf, uint64 op, uint64 cond, uint64 a, uint64 b, uint64 nzcv_imm) {
  if (cond_holds(cond)) {
    uint64 o2 = select(op == 1, ~b, b);
    uint64 cin = op;
    if (sf == 1) {
      write_register(NZCV, add_flags64(a, o2, cin));
    } else {
      write_register(NZCV, add_flags32(a & 0xFFFFFFFF, o2 & 0xFFFFFFFF, cin));
    }
  } else {
    write_register(NZCV, nzcv_imm);
  }
}

execute(ccmp_reg) {
  ccmp_core(inst.sf, inst.op, inst.cond, rgpr(inst.rn), rgpr(inst.rm), inst.nzcv);
}

execute(ccmp_imm) {
  ccmp_core(inst.sf, inst.op, inst.cond, rgpr(inst.rn), inst.imm5, inst.nzcv);
}
|}

let exec_branch =
  {|
execute(b_uncond) {
  uint64 pc = read_pc();
  uint64 off = sign_extend(inst.imm26, 26) << 2;
  if (inst.op == 1) { wgpr(30, pc + 4); }
  write_pc(pc + off);
}

execute(b_cond) {
  uint64 pc = read_pc();
  if (cond_holds(inst.cond)) {
    write_pc(pc + (sign_extend(inst.imm19, 19) << 2));
  } else {
    write_pc(pc + 4);
  }
}

execute(cbz) {
  uint64 v = rgpr(inst.rt);
  if (inst.sf == 0) { v = v & 0xFFFFFFFF; }
  uint64 pc = read_pc();
  uint64 taken = select(inst.op == 1, v != 0, v == 0);
  if (taken) {
    write_pc(pc + (sign_extend(inst.imm19, 19) << 2));
  } else {
    write_pc(pc + 4);
  }
}

execute(tbz) {
  uint64 bitpos = (inst.b5 << 5) | inst.b40;
  uint64 v = (rgpr(inst.rt) >> bitpos) & 1;
  uint64 pc = read_pc();
  uint64 taken = select(inst.op == 1, v == 1, v == 0);
  if (taken) {
    write_pc(pc + (sign_extend(inst.imm14, 14) << 2));
  } else {
    write_pc(pc + 4);
  }
}

execute(br_blr_ret) {
  uint64 target = rgpr(inst.rn);
  if (inst.opc == 1) { wgpr(30, read_pc() + 4); }
  write_pc(target);
}
|}

let exec_mem =
  {|
// Shared load/store core: size (0..3), opc per the load/store encoding.
helper void ldst_access(uint64 size, uint64 opc, uint64 addr, uint64 rt) {
  if (opc == 0) {
    // store
    uint64 v = rgpr(rt);
    if (size == 0) { mem_write_8(addr, v); }
    if (size == 1) { mem_write_16(addr, v); }
    if (size == 2) { mem_write_32(addr, v); }
    if (size == 3) { mem_write_64(addr, v); }
  }
  if (opc == 1) {
    // zero-extending load
    uint64 v = 0;
    if (size == 0) { v = mem_read_8(addr); }
    if (size == 1) { v = mem_read_16(addr); }
    if (size == 2) { v = mem_read_32(addr); }
    if (size == 3) { v = mem_read_64(addr); }
    wgpr(rt, v);
  }
  if (opc == 2) {
    // sign-extending load to 64 bits (LDRSB/LDRSH/LDRSW)
    uint64 v = 0;
    if (size == 0) { v = sign_extend(mem_read_8(addr), 8); }
    if (size == 1) { v = sign_extend(mem_read_16(addr), 16); }
    if (size == 2) { v = sign_extend(mem_read_32(addr), 32); }
    wgpr(rt, v);
  }
  if (opc == 3) {
    // sign-extending load to 32 bits
    uint64 v = 0;
    if (size == 0) { v = sign_extend(mem_read_8(addr), 8) & 0xFFFFFFFF; }
    if (size == 1) { v = sign_extend(mem_read_16(addr), 16) & 0xFFFFFFFF; }
    wgpr(rt, v);
  }
}

execute(ldst_uimm) {
  uint64 base = rgpr_sp(inst.rn, inst.__el);
  uint64 addr = base + (inst.imm12 << inst.size);
  ldst_access(inst.size, inst.opc, addr, inst.rt);
}

execute(ldst_simm) {
  uint64 base = rgpr_sp(inst.rn, inst.__el);
  uint64 off = sign_extend(inst.imm9, 9);
  uint64 addr = select(inst.mode == 1, base, base + off); // post-index uses base
  ldst_access(inst.size, inst.opc, addr, inst.rt);
  if (inst.mode == 1 || inst.mode == 3) {
    wgpr_sp(inst.rn, inst.__el, base + off);
  }
}

execute(ldst_reg) {
  uint64 base = rgpr_sp(inst.rn, inst.__el);
  uint64 amount = inst.scale * inst.size;
  uint64 off = extend_reg(rgpr(inst.rm), inst.option, amount);
  ldst_access(inst.size, inst.opc, base + off, inst.rt);
}

execute(ldp_stp) {
  uint64 scale = select(inst.opc == 2, 3, 2);
  uint64 size = select(inst.opc == 2, 8, 4);
  uint64 base = rgpr_sp(inst.rn, inst.__el);
  uint64 off = sign_extend(inst.imm7, 7) << scale;
  uint64 addr = select(inst.mode == 1, base, base + off);
  if (inst.l == 1) {
    if (inst.opc == 2) {
      uint64 v1 = mem_read_64(addr);
      uint64 v2 = mem_read_64(addr + size);
      wgpr(inst.rt, v1);
      wgpr(inst.rt2, v2);
    } else {
      uint64 v1 = mem_read_32(addr);
      uint64 v2 = mem_read_32(addr + size);
      wgpr(inst.rt, v1);
      wgpr(inst.rt2, v2);
    }
  } else {
    if (inst.opc == 2) {
      mem_write_64(addr, rgpr(inst.rt));
      mem_write_64(addr + size, rgpr(inst.rt2));
    } else {
      mem_write_32(addr, rgpr(inst.rt));
      mem_write_32(addr + size, rgpr(inst.rt2));
    }
  }
  if (inst.mode == 1 || inst.mode == 3) {
    wgpr_sp(inst.rn, inst.__el, base + off);
  }
}

execute(ldr_lit) {
  uint64 addr = read_pc() + (sign_extend(inst.imm19, 19) << 2);
  if (inst.opc == 0) { wgpr(inst.rt, mem_read_32(addr)); }
  if (inst.opc == 1) { wgpr(inst.rt, mem_read_64(addr)); }
}

execute(ldst_fp_uimm) {
  uint64 base = rgpr_sp(inst.rn, inst.__el);
  if (inst.opc >= 2) {
    // 128-bit Q-register access (scaled by 16)
    uint64 addr = base + (inst.imm12 << 4);
    if (inst.opc == 3) {
      write_register_bank(VEC, inst.rt * 2, mem_read_64(addr));
      write_register_bank(VEC, inst.rt * 2 + 1, mem_read_64(addr + 8));
    } else {
      mem_write_64(addr, read_register_bank(VEC, inst.rt * 2));
      mem_write_64(addr + 8, read_register_bank(VEC, inst.rt * 2 + 1));
    }
  } else {
    uint64 addr = base + (inst.imm12 << inst.size);
    if (inst.opc == 1) {
      if (inst.size == 3) { wvec(inst.rt, mem_read_64(addr)); }
      else { wvec(inst.rt, mem_read_32(addr)); }
    } else {
      if (inst.size == 3) { mem_write_64(addr, rvec(inst.rt)); }
      else { mem_write_32(addr, rvec(inst.rt) & 0xFFFFFFFF); }
    }
  }
}

execute(ldar_stlr) {
  // Acquire/release: single-core, ordering is a barrier no-op.
  uint64 addr = rgpr_sp(inst.rn, inst.__el);
  barrier();
  if (inst.l == 1) {
    ldst_access(inst.size, 1, addr, inst.rt);
  } else {
    ldst_access(inst.size, 0, addr, inst.rt);
  }
}

execute(ldxr) {
  uint64 addr = rgpr_sp(inst.rn, inst.__el);
  write_register(EXCL_MONITOR, 1);
  ldst_access(inst.size, 1, addr, inst.rt);
}

execute(stxr) {
  // Single core: the exclusive store succeeds iff the monitor is armed.
  uint64 armed = read_register(EXCL_MONITOR);
  if (armed != 0) {
    uint64 addr = rgpr_sp(inst.rn, inst.__el);
    ldst_access(inst.size, 0, addr, inst.rt);
    wgpr(inst.rs, 0);
  } else {
    wgpr(inst.rs, 1);
  }
  write_register(EXCL_MONITOR, 0);
}

execute(ldst_fp_simm) {
  uint64 base = rgpr_sp(inst.rn, inst.__el);
  uint64 off = sign_extend(inst.imm9, 9);
  uint64 addr = select(inst.mode == 1, base, base + off);
  if (inst.opc == 1) {
    if (inst.size == 3) { wvec(inst.rt, mem_read_64(addr)); }
    else { wvec(inst.rt, mem_read_32(addr)); }
  } else {
    if (inst.size == 3) { mem_write_64(addr, rvec(inst.rt)); }
    else { mem_write_32(addr, rvec(inst.rt) & 0xFFFFFFFF); }
  }
  if (inst.mode == 1 || inst.mode == 3) {
    wgpr_sp(inst.rn, inst.__el, base + off);
  }
}
|}

let exec_fp =
  {|
execute(fp2src) {
  uint64 a = rvec(inst.rn);
  uint64 b = rvec(inst.rm);
  uint64 r = 0;
  if (inst.ftype == 1) {
    // double precision
    if (inst.opcode == 0) { r = fp64_mul(a, b); }
    if (inst.opcode == 1) { r = fp64_div(a, b); }
    if (inst.opcode == 2) { r = fp64_add(a, b); }
    if (inst.opcode == 3) { r = fp64_sub(a, b); }
    if (inst.opcode == 4) { r = fp64_max(a, b); }
    if (inst.opcode == 5) { r = fp64_min(a, b); }
    if (inst.opcode == 8) { r = fp64_mul(a, b) ^ 0x8000000000000000; }
  } else {
    uint64 a32 = a & 0xFFFFFFFF;
    uint64 b32 = b & 0xFFFFFFFF;
    if (inst.opcode == 0) { r = fp32_mul(a32, b32); }
    if (inst.opcode == 1) { r = fp32_div(a32, b32); }
    if (inst.opcode == 2) { r = fp32_add(a32, b32); }
    if (inst.opcode == 3) { r = fp32_sub(a32, b32); }
    if (inst.opcode == 4) { r = fp32_max(a32, b32); }
    if (inst.opcode == 5) { r = fp32_min(a32, b32); }
    if (inst.opcode == 8) { r = fp32_mul(a32, b32) ^ 0x80000000; }
  }
  wvec(inst.rd, r);
}

execute(fp1src) {
  uint64 a = rvec(inst.rn);
  uint64 r = 0;
  if (inst.ftype == 1) {
    if (inst.opcode == 0) { r = a; }
    if (inst.opcode == 1) { r = a & 0x7FFFFFFFFFFFFFFF; }
    if (inst.opcode == 2) { r = a ^ 0x8000000000000000; }
    if (inst.opcode == 3) { r = fp64_sqrt(a); }
    if (inst.opcode == 4) { r = fp64_to_fp32(a); }
  } else {
    uint64 a32 = a & 0xFFFFFFFF;
    if (inst.opcode == 0) { r = a32; }
    if (inst.opcode == 1) { r = a32 & 0x7FFFFFFF; }
    if (inst.opcode == 2) { r = a32 ^ 0x80000000; }
    if (inst.opcode == 3) { r = fp32_sqrt(a32); }
    if (inst.opcode == 5) { r = fp32_to_fp64(a32); }
  }
  wvec(inst.rd, r);
}

execute(fcmp) {
  // op2 bit 3 selects comparison against #0.0; bit 4 (FCMPE) only
  // changes exception behaviour, which this model folds together.
  uint64 a = rvec(inst.rn);
  uint64 b = select((inst.op2 & 8) == 8, 0, rvec(inst.rm));
  if (inst.ftype == 1) {
    write_register(NZCV, fp64_cmp_flags(a, b));
  } else {
    write_register(NZCV, fp32_cmp_flags(a & 0xFFFFFFFF, b & 0xFFFFFFFF));
  }
}

execute(fmov_imm) {
  if (inst.ftype == 1) { wvec(inst.rd, vfp_expand_imm64(inst.imm8)); }
  else { wvec(inst.rd, vfp_expand_imm32(inst.imm8)); }
}

execute(fp_int) {
  if (inst.rmode == 3) {
    // FCVTZS/FCVTZU (toward zero)
    uint64 v = rvec(inst.rn);
    uint64 r = 0;
    if (inst.ftype == 1) {
      if (inst.opcode == 0) { r = fp64_to_sint64(v); }
      if (inst.opcode == 1) { r = fp64_to_uint64(v); }
    } else {
      if (inst.opcode == 0) { r = fp32_to_sint32(v & 0xFFFFFFFF); }
      if (inst.opcode == 1) { r = fp32_to_sint32(v & 0xFFFFFFFF); }
    }
    if (inst.sf == 0) { r = r & 0xFFFFFFFF; }
    wgpr(inst.rd, r);
  } else {
    if (inst.opcode == 2 || inst.opcode == 3) {
      // SCVTF/UCVTF
      uint64 v = rgpr(inst.rn);
      if (inst.sf == 0) {
        v = select(inst.opcode == 2, sign_extend(v & 0xFFFFFFFF, 32), v & 0xFFFFFFFF);
      }
      uint64 r = 0;
      if (inst.ftype == 1) {
        r = select(inst.opcode == 2, sint64_to_fp64(v), uint64_to_fp64(v));
      } else {
        r = sint64_to_fp32(v);
      }
      wvec(inst.rd, r);
    }
    if (inst.opcode == 6) {
      // FMOV general -> X from D (or W from S)
      uint64 v = rvec(inst.rn);
      if (inst.sf == 0) { v = v & 0xFFFFFFFF; }
      wgpr(inst.rd, v);
    }
    if (inst.opcode == 7) {
      // FMOV D <- X (or S <- W)
      uint64 v = rgpr(inst.rn);
      if (inst.sf == 0) { v = v & 0xFFFFFFFF; }
      wvec(inst.rd, v);
    }
  }
}

execute(fmadd) {
  uint64 a = rvec(inst.rn);
  uint64 b = rvec(inst.rm);
  uint64 acc = rvec(inst.ra);
  uint64 r = 0;
  if (inst.ftype == 1) {
    uint64 p = select(inst.o0 == 1, fp64_mul(a, b) ^ 0x8000000000000000, fp64_mul(a, b));
    r = fp64_add(acc, p);
  } else {
    uint64 p32 = fp32_mul(a & 0xFFFFFFFF, b & 0xFFFFFFFF);
    uint64 p = select(inst.o0 == 1, p32 ^ 0x80000000, p32);
    r = fp32_add(acc & 0xFFFFFFFF, p);
  }
  wvec(inst.rd, r);
}

execute(vec3same) {
  uint64 alo = read_register_bank(VEC, inst.rn * 2);
  uint64 ahi = read_register_bank(VEC, inst.rn * 2 + 1);
  uint64 blo = read_register_bank(VEC, inst.rm * 2);
  uint64 bhi = read_register_bank(VEC, inst.rm * 2 + 1);
  uint64 rlo = 0;
  uint64 rhi = 0;
  if (inst.opcode == 16) {
    // ADD/SUB .2D: 64-bit lanes
    rlo = select(inst.u == 1, alo - blo, alo + blo);
    rhi = select(inst.u == 1, ahi - bhi, ahi + bhi);
  }
  if (inst.opcode == 3) {
    // bitwise: AND (u=0,size=0), ORR (u=0,size=2), EOR (u=1,size=0),
    // BIC (u=0,size=1), ORN (u=0,size=3)
    if (inst.u == 1) { rlo = alo ^ blo; rhi = ahi ^ bhi; }
    else {
      if (inst.size == 0) { rlo = alo & blo; rhi = ahi & bhi; }
      if (inst.size == 1) { rlo = alo & (~blo); rhi = ahi & (~bhi); }
      if (inst.size == 2) { rlo = alo | blo; rhi = ahi | bhi; }
      if (inst.size == 3) { rlo = alo | (~blo); rhi = ahi | (~bhi); }
    }
  }
  write_register_bank(VEC, inst.rd * 2, rlo);
  write_register_bank(VEC, inst.rd * 2 + 1, rhi);
}

execute(vecfp3same) {
  // FADD/FMUL .2D: two independent double-precision lanes, mapped
  // directly onto host FP (paper Sec. 2.5).
  uint64 alo = read_register_bank(VEC, inst.rn * 2);
  uint64 ahi = read_register_bank(VEC, inst.rn * 2 + 1);
  uint64 blo = read_register_bank(VEC, inst.rm * 2);
  uint64 bhi = read_register_bank(VEC, inst.rm * 2 + 1);
  uint64 rlo = 0;
  uint64 rhi = 0;
  if (inst.u == 0) { rlo = fp64_add(alo, blo); rhi = fp64_add(ahi, bhi); }
  if (inst.u == 1) { rlo = fp64_mul(alo, blo); rhi = fp64_mul(ahi, bhi); }
  write_register_bank(VEC, inst.rd * 2, rlo);
  write_register_bank(VEC, inst.rd * 2 + 1, rhi);
}

execute(dup_gen) {
  // DUP Vd.T, Xn: replicate the general register across lanes.
  uint64 v = rgpr(inst.rn);
  uint64 lo = 0;
  if ((inst.imm5 & 1) == 1) {
    uint64 b = v & 0xFF;
    lo = b | (b << 8) | (b << 16) | (b << 24);
    lo = lo | (lo << 32);
  }
  if ((inst.imm5 & 3) == 2) {
    uint64 h = v & 0xFFFF;
    lo = h | (h << 16) | (h << 32) | (h << 48);
  }
  if ((inst.imm5 & 7) == 4) {
    uint64 w = v & 0xFFFFFFFF;
    lo = w | (w << 32);
  }
  if ((inst.imm5 & 15) == 8) { lo = v; }
  write_register_bank(VEC, inst.rd * 2, lo);
  write_register_bank(VEC, inst.rd * 2 + 1, lo);
}

execute(umov) {
  // UMOV Xd, Vn.D[idx] (q=1) or Wd, Vn.S[idx] (q=0)
  if (inst.q == 1) {
    uint64 idx = (inst.imm5 >> 4) & 1;
    wgpr(inst.rd, read_register_bank(VEC, inst.rn * 2 + idx));
  } else {
    uint64 idx = (inst.imm5 >> 2) & 3;
    uint64 lane = read_register_bank(VEC, inst.rn * 2 + (idx >> 1));
    uint64 r = select((idx & 1) == 1, lane >> 32, lane & 0xFFFFFFFF);
    wgpr(inst.rd, r & 0xFFFFFFFF);
  }
}

execute(fcsel) {
  uint64 take = cond_holds(inst.cond);
  uint64 r = select(take, rvec(inst.rn), rvec(inst.rm));
  if (inst.ftype == 0) { r = r & 0xFFFFFFFF; }
  wvec(inst.rd, r);
}
|}

let exec_sys =
  {|
execute(svc) {
  take_exception(0x15, inst.imm16);
}

execute(brk) {
  take_exception(0x3C, inst.imm16);
}

execute(eret_insn) {
  eret();
}

execute(wfi) {
  write_pc(read_pc() + 4);
  wfi();
}

execute(hint) {
  // NOP, YIELD, SEV...: architecturally no-ops here.
  barrier();
}

execute(barrier) {
  barrier();
}

execute(msr_imm) {
  // MSR DAIFSet/DAIFClr, #imm
  uint64 daif = read_register(DAIF);
  if (inst.op1 == 3 && inst.op2 == 6) { daif = daif | (inst.crm & 0xF); }
  if (inst.op1 == 3 && inst.op2 == 7) { daif = daif & (~(inst.crm & 0xF)); }
  write_register(DAIF, daif);
  write_pc(read_pc() + 4);
}

execute(sys) {
  // SYS: TLB maintenance (CRn=8) reaches the hypervisor; cache ops are
  // no-ops for this memory model.
  if (inst.crn == 8) {
    tlb_flush();
  } else {
    barrier();
  }
}

execute(mrs) {
  uint64 id = (inst.o0 << 14) | (inst.op1 << 11) | (inst.crn << 7) | (inst.crm << 3) | inst.op2;
  wgpr(inst.rt, read_coproc(id));
}

execute(msr_reg) {
  uint64 id = (inst.o0 << 14) | (inst.op1 << 11) | (inst.crn << 7) | (inst.crm << 3) | inst.op2;
  write_coproc(id, rgpr(inst.rt));
  write_pc(read_pc() + 4);
}
|}

let source =
  String.concat "\n"
    [ header; helpers; decodes; exec_int; exec_ext; exec_branch; exec_mem; exec_fp; exec_sys ]
