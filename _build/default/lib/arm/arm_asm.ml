(* An AArch64 assembler eDSL producing real instruction encodings.

   Used to author the guest kernel, the benchmark workloads, and the
   differential tests (there is no cross-compiler in this environment).
   Labels are resolved at [assemble] time. *)

module Bits = Dbt_util.Bits

(* Register names are plain integers 0..30; 31 is SP or XZR depending on
   instruction (the eDSL exposes both names). *)
let sp = 31
let xzr = 31
let x0 = 0 and x1 = 1 and x2 = 2 and x3 = 3 and x4 = 4 and x5 = 5 and x6 = 6 and x7 = 7
let x8 = 8 and x9 = 9 and x10 = 10 and x11 = 11 and x12 = 12 and x13 = 13 and x14 = 14
let x15 = 15 and x16 = 16 and x17 = 17 and x18 = 18 and x19 = 19 and x20 = 20 and x21 = 21
let x22 = 22 and x23 = 23 and x24 = 24 and x25 = 25 and x28 = 28 and x29 = 29 and x30 = 30
let d0 = 0 and d1 = 1 and d2 = 2 and d3 = 3 and d4 = 4 and d5 = 5 and d6 = 6 and d7 = 7

type cond = EQ | NE | CS | CC | MI | PL | VS | VC | HI | LS | GE | LT | GT | LE | AL

let cond_code = function
  | EQ -> 0 | NE -> 1 | CS -> 2 | CC -> 3 | MI -> 4 | PL -> 5 | VS -> 6 | VC -> 7
  | HI -> 8 | LS -> 9 | GE -> 10 | LT -> 11 | GT -> 12 | LE -> 13 | AL -> 14

type fixup =
  | Rel26 (* b / bl *)
  | Rel19 (* b.cond / cbz / ldr literal *)
  | Rel14 (* tbz *)
  | Adr21

type t = {
  base : int64;
  mutable words : int32 list; (* reversed *)
  mutable count : int;
  labels : (string, int) Hashtbl.t; (* label -> instruction index *)
  mutable fixups : (int * fixup * string) list;
}

let create ?(base = 0L) () = { base; words = []; count = 0; labels = Hashtbl.create 16; fixups = [] }

let emit a w =
  a.words <- Int32.of_int (w land 0xFFFFFFFF) :: a.words;
  a.count <- a.count + 1

let emit64 a (w : int64) = emit a (Int64.to_int (Int64.logand w 0xFFFFFFFFL))

let label a name =
  if Hashtbl.mem a.labels name then invalid_arg ("duplicate label " ^ name);
  Hashtbl.replace a.labels name a.count

let here a = Int64.add a.base (Int64.of_int (4 * a.count))
let fixup a kind name = a.fixups <- (a.count, kind, name) :: a.fixups

(* Raw data *)
let word a w = emit64 a w
let dword a (v : int64) =
  emit64 a (Int64.logand v 0xFFFFFFFFL);
  emit64 a (Int64.shift_right_logical v 32)

(* --- data processing, immediate ------------------------------------------- *)

let addsub_imm ~sf ~op ~s ~sh ~imm12 ~rn ~rd a =
  emit a
    ((sf lsl 31) lor (op lsl 30) lor (s lsl 29) lor (0b100010 lsl 23) lor (sh lsl 22)
    lor ((imm12 land 0xFFF) lsl 10) lor (rn lsl 5) lor rd)

let add_imm ?(sf = 1) ?(sh = 0) a rd rn imm = addsub_imm ~sf ~op:0 ~s:0 ~sh ~imm12:imm ~rn ~rd a
let adds_imm ?(sf = 1) a rd rn imm = addsub_imm ~sf ~op:0 ~s:1 ~sh:0 ~imm12:imm ~rn ~rd a
let sub_imm ?(sf = 1) ?(sh = 0) a rd rn imm = addsub_imm ~sf ~op:1 ~s:0 ~sh ~imm12:imm ~rn ~rd a
let subs_imm ?(sf = 1) a rd rn imm = addsub_imm ~sf ~op:1 ~s:1 ~sh:0 ~imm12:imm ~rn ~rd a
let cmp_imm ?(sf = 1) a rn imm = subs_imm ~sf a xzr rn imm

let movwide ~sf ~opc ~hw ~imm16 ~rd a =
  emit a ((sf lsl 31) lor (opc lsl 29) lor (0b100101 lsl 23) lor (hw lsl 21) lor ((imm16 land 0xFFFF) lsl 5) lor rd)

let movz ?(sf = 1) ?(hw = 0) a rd imm = movwide ~sf ~opc:2 ~hw ~imm16:imm ~rd a
let movn ?(sf = 1) ?(hw = 0) a rd imm = movwide ~sf ~opc:0 ~hw ~imm16:imm ~rd a
let movk ?(sf = 1) ?(hw = 0) a rd imm = movwide ~sf ~opc:3 ~hw ~imm16:imm ~rd a

(* Load an arbitrary 64-bit constant with movz/movk. *)
let mov_const a rd (v : int64) =
  let chunk i = Int64.to_int (Bits.extract v ~lo:(16 * i) ~len:16) in
  movz a rd (chunk 0);
  if chunk 1 <> 0 then movk ~hw:1 a rd (chunk 1);
  if chunk 2 <> 0 then movk ~hw:2 a rd (chunk 2);
  if chunk 3 <> 0 then movk ~hw:3 a rd (chunk 3)

let adr a rd lbl =
  fixup a Adr21 lbl;
  emit a ((0 lsl 31) lor (0b10000 lsl 24) lor rd)

(* Bitmask-immediate encoding: find (N, immr, imms) such that
   DecodeBitMasks gives [v]; raises if not encodable. *)
let encode_bitmask ?(sf = 1) (v : int64) =
  let width = if sf = 1 then 64 else 32 in
  let v = if sf = 1 then v else Bits.zero_extend v ~width:32 in
  if v = 0L || v = Bits.mask width then invalid_arg "bitmask immediate cannot be all-0/all-1";
  let rec try_size esize =
    if esize < 2 then None
    else begin
      let elem = Bits.extract v ~lo:0 ~len:esize in
      (* value must be elem replicated *)
      let rec replicated i = i >= width || (Bits.extract v ~lo:i ~len:esize = elem && replicated (i + esize)) in
      if not (replicated 0) then try_size (esize / 2)
      else begin
        (* elem must be a rotated run of ones *)
        let ones = Bits.popcount elem in
        if ones = 0 || ones = esize then try_size (esize / 2)
        else begin
          (* find rotation: rotate left until the pattern is ones in low bits *)
          let rec find_rot r =
            if r >= esize then None
            else
              let rot = Bits.rotate_left elem r ~width:esize in
              if rot = Bits.mask ones then Some r else find_rot (r + 1)
          in
          match find_rot 0 with
          | None -> try_size (esize / 2)
          | Some r ->
            (* value = Ones(ones) ROR r, and DecodeBitMasks computes
               welem ROR immr, so immr is exactly r. *)
            let immr = r in
            (* imms encodes esize and ones-1 *)
            let imms =
              match esize with
              | 64 -> ones - 1
              | 32 -> 0b000000 lor (ones - 1)
              | 16 -> 0b100000 lor (ones - 1)
              | 8 -> 0b110000 lor (ones - 1)
              | 4 -> 0b111000 lor (ones - 1)
              | 2 -> 0b111100 lor (ones - 1)
              | _ -> assert false
            in
            (* For esize<64 high bits of imms are set per the table above;
               esize=32 keeps imms as-is with N=0. *)
            let n = if esize = 64 then 1 else 0 in
            Some (n, immr, imms)
        end
      end
    end
  in
  (* esize=32 imms pattern is 0xxxxx with N=0 only for 32-bit elements;
     smaller elements use the leading-ones patterns above. *)
  match try_size width with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "value %Lx is not a bitmask immediate" v)

let logical_imm ~sf ~opc a rd rn v =
  let n, immr, imms = encode_bitmask ~sf v in
  emit a
    ((sf lsl 31) lor (opc lsl 29) lor (0b100100 lsl 23) lor (n lsl 22) lor (immr lsl 16)
    lor (imms lsl 10) lor (rn lsl 5) lor rd)

let and_imm ?(sf = 1) a rd rn v = logical_imm ~sf ~opc:0 a rd rn v
let orr_imm ?(sf = 1) a rd rn v = logical_imm ~sf ~opc:1 a rd rn v
let eor_imm ?(sf = 1) a rd rn v = logical_imm ~sf ~opc:2 a rd rn v
let ands_imm ?(sf = 1) a rd rn v = logical_imm ~sf ~opc:3 a rd rn v

let bitfield ~sf ~opc ~immr ~imms a rd rn =
  let n = sf in
  emit a
    ((sf lsl 31) lor (opc lsl 29) lor (0b100110 lsl 23) lor (n lsl 22) lor (immr lsl 16)
    lor (imms lsl 10) lor (rn lsl 5) lor rd)

let lsl_imm ?(sf = 1) a rd rn shift =
  let width = if sf = 1 then 64 else 32 in
  bitfield ~sf ~opc:2 ~immr:((width - shift) mod width) ~imms:(width - 1 - shift) a rd rn

let lsr_imm ?(sf = 1) a rd rn shift =
  bitfield ~sf ~opc:2 ~immr:shift ~imms:(if sf = 1 then 63 else 31) a rd rn

let asr_imm ?(sf = 1) a rd rn shift =
  bitfield ~sf ~opc:0 ~immr:shift ~imms:(if sf = 1 then 63 else 31) a rd rn

let ubfx ?(sf = 1) a rd rn ~lsb ~width = bitfield ~sf ~opc:2 ~immr:lsb ~imms:(lsb + width - 1) a rd rn
let sbfx ?(sf = 1) a rd rn ~lsb ~width = bitfield ~sf ~opc:0 ~immr:lsb ~imms:(lsb + width - 1) a rd rn
let sxtw a rd rn = bitfield ~sf:1 ~opc:0 ~immr:0 ~imms:31 a rd rn
let uxtb ?(sf = 0) a rd rn = bitfield ~sf ~opc:2 ~immr:0 ~imms:7 a rd rn
let uxth ?(sf = 0) a rd rn = bitfield ~sf ~opc:2 ~immr:0 ~imms:15 a rd rn

(* --- data processing, register ----------------------------------------------- *)

let addsub_reg ~sf ~op ~s ?(shift = 0) ?(amount = 0) ~rm ~rn ~rd a =
  emit a
    ((sf lsl 31) lor (op lsl 30) lor (s lsl 29) lor (0b01011 lsl 24) lor (shift lsl 22)
    lor (rm lsl 16) lor (amount lsl 10) lor (rn lsl 5) lor rd)

let add_reg ?(sf = 1) ?(shift = 0) ?(amount = 0) a rd rn rm =
  addsub_reg ~sf ~op:0 ~s:0 ~shift ~amount ~rm ~rn ~rd a

let adds_reg ?(sf = 1) a rd rn rm = addsub_reg ~sf ~op:0 ~s:1 ~rm ~rn ~rd a
let sub_reg ?(sf = 1) ?(shift = 0) ?(amount = 0) a rd rn rm =
  addsub_reg ~sf ~op:1 ~s:0 ~shift ~amount ~rm ~rn ~rd a

let subs_reg ?(sf = 1) a rd rn rm = addsub_reg ~sf ~op:1 ~s:1 ~rm ~rn ~rd a
let cmp_reg ?(sf = 1) a rn rm = subs_reg ~sf a xzr rn rm

let logical_reg ~sf ~opc ~n ?(shift = 0) ?(amount = 0) ~rm ~rn ~rd a =
  emit a
    ((sf lsl 31) lor (opc lsl 29) lor (0b01010 lsl 24) lor (shift lsl 22) lor (n lsl 21)
    lor (rm lsl 16) lor (amount lsl 10) lor (rn lsl 5) lor rd)

let and_reg ?(sf = 1) a rd rn rm = logical_reg ~sf ~opc:0 ~n:0 ~rm ~rn ~rd a
let orr_reg ?(sf = 1) ?(shift = 0) ?(amount = 0) a rd rn rm =
  logical_reg ~sf ~opc:1 ~n:0 ~shift ~amount ~rm ~rn ~rd a
let eor_reg ?(sf = 1) a rd rn rm = logical_reg ~sf ~opc:2 ~n:0 ~rm ~rn ~rd a
let ands_reg ?(sf = 1) a rd rn rm = logical_reg ~sf ~opc:3 ~n:0 ~rm ~rn ~rd a
let bic_reg ?(sf = 1) a rd rn rm = logical_reg ~sf ~opc:0 ~n:1 ~rm ~rn ~rd a
let mvn_reg ?(sf = 1) a rd rm = logical_reg ~sf ~opc:1 ~n:1 ~rm ~rn:xzr ~rd a
let mov_reg ?(sf = 1) a rd rm = orr_reg ~sf a rd xzr rm

let adc ?(sf = 1) ?(s = 0) ~op a rd rn rm =
  emit a
    ((sf lsl 31) lor (op lsl 30) lor (s lsl 29) lor (0b11010000 lsl 21) lor (rm lsl 16)
    lor (rn lsl 5) lor rd)

let adc_reg ?(sf = 1) a rd rn rm = adc ~sf ~op:0 a rd rn rm
let sbc_reg ?(sf = 1) a rd rn rm = adc ~sf ~op:1 a rd rn rm

let condsel ~sf ~op ~o2 ~cond ~rm ~rn ~rd a =
  emit a
    ((sf lsl 31) lor (op lsl 30) lor (0b11010100 lsl 21) lor (rm lsl 16)
    lor (cond_code cond lsl 12) lor (o2 lsl 10) lor (rn lsl 5) lor rd)

let csel ?(sf = 1) a rd rn rm cond = condsel ~sf ~op:0 ~o2:0 ~cond ~rm ~rn ~rd a
let csinc ?(sf = 1) a rd rn rm cond = condsel ~sf ~op:0 ~o2:1 ~cond ~rm ~rn ~rd a
let csinv ?(sf = 1) a rd rn rm cond = condsel ~sf ~op:1 ~o2:0 ~cond ~rm ~rn ~rd a
let csneg ?(sf = 1) a rd rn rm cond = condsel ~sf ~op:1 ~o2:1 ~cond ~rm ~rn ~rd a
let cset ?(sf = 1) a rd cond =
  (* alias of CSINC rd, xzr, xzr, !cond *)
  csinc ~sf a rd xzr xzr (match cond with
    | EQ -> NE | NE -> EQ | CS -> CC | CC -> CS | MI -> PL | PL -> MI | VS -> VC | VC -> VS
    | HI -> LS | LS -> HI | GE -> LT | LT -> GE | GT -> LE | LE -> GT | AL -> AL)

let dp3 ~sf ~o0 ~ra ~rm ~rn ~rd a =
  emit a
    ((sf lsl 31) lor (0b0011011000 lsl 21) lor (rm lsl 16) lor (o0 lsl 15) lor (ra lsl 10)
    lor (rn lsl 5) lor rd)

let madd ?(sf = 1) a rd rn rm ra = dp3 ~sf ~o0:0 ~ra ~rm ~rn ~rd a
let msub ?(sf = 1) a rd rn rm ra = dp3 ~sf ~o0:1 ~ra ~rm ~rn ~rd a
let mul ?(sf = 1) a rd rn rm = madd ~sf a rd rn rm xzr

let mulh ~u a rd rn rm =
  emit a
    ((1 lsl 31) lor (0b0011011 lsl 24) lor (u lsl 23) lor (0b10 lsl 21) lor (rm lsl 16)
    lor (0b011111 lsl 10) lor (rn lsl 5) lor rd)

let umulh a rd rn rm = mulh ~u:1 a rd rn rm
let smulh a rd rn rm = mulh ~u:0 a rd rn rm

let dp2 ~sf ~opcode ~rm ~rn ~rd a =
  emit a
    ((sf lsl 31) lor (0b0011010110 lsl 21) lor (rm lsl 16) lor (opcode lsl 10) lor (rn lsl 5) lor rd)

let udiv ?(sf = 1) a rd rn rm = dp2 ~sf ~opcode:2 ~rm ~rn ~rd a
let sdiv ?(sf = 1) a rd rn rm = dp2 ~sf ~opcode:3 ~rm ~rn ~rd a
let lslv ?(sf = 1) a rd rn rm = dp2 ~sf ~opcode:8 ~rm ~rn ~rd a
let lsrv ?(sf = 1) a rd rn rm = dp2 ~sf ~opcode:9 ~rm ~rn ~rd a
let asrv ?(sf = 1) a rd rn rm = dp2 ~sf ~opcode:10 ~rm ~rn ~rd a
let rorv ?(sf = 1) a rd rn rm = dp2 ~sf ~opcode:11 ~rm ~rn ~rd a

let dp1 ~sf ~opcode ~rn ~rd a =
  emit a ((sf lsl 31) lor (1 lsl 30) lor (0b011010110 lsl 21) lor (opcode lsl 10) lor (rn lsl 5) lor rd)

let rbit ?(sf = 1) a rd rn = dp1 ~sf ~opcode:0 ~rn ~rd a
let rev16 ?(sf = 1) a rd rn = dp1 ~sf ~opcode:1 ~rn ~rd a
let rev32 a rd rn = dp1 ~sf:1 ~opcode:2 ~rn ~rd a
let rev64 a rd rn = dp1 ~sf:1 ~opcode:3 ~rn ~rd a
let clz ?(sf = 1) a rd rn = dp1 ~sf ~opcode:4 ~rn ~rd a

(* Extended-register add/sub (rn/rd may be SP). *)
let addsub_ext ~sf ~op ~s ~option ~amount ~rm ~rn ~rd a =
  emit a
    ((sf lsl 31) lor (op lsl 30) lor (s lsl 29) lor (0b01011001 lsl 21) lor (rm lsl 16)
    lor (option lsl 13) lor (amount lsl 10) lor (rn lsl 5) lor rd)

let add_ext ?(sf = 1) ?(option = 0b011) ?(amount = 0) a rd rn rm =
  addsub_ext ~sf ~op:0 ~s:0 ~option ~amount ~rm ~rn ~rd a

let sub_ext ?(sf = 1) ?(option = 0b011) ?(amount = 0) a rd rn rm =
  addsub_ext ~sf ~op:1 ~s:0 ~option ~amount ~rm ~rn ~rd a

let extr ?(sf = 1) a rd rn rm lsb =
  emit a
    ((sf lsl 31) lor (0b00100111 lsl 23) lor (sf lsl 22) lor (rm lsl 16) lor (lsb lsl 10)
    lor (rn lsl 5) lor rd)

let ror_imm ?(sf = 1) a rd rn amount = extr ~sf a rd rn rn amount

let ccmp_imm ?(sf = 1) a rn imm5 nzcv cond =
  emit a
    ((sf lsl 31) lor (1 lsl 30) lor (1 lsl 29) lor (0b11010010 lsl 21) lor (imm5 lsl 16)
    lor (cond_code cond lsl 12) lor (1 lsl 11) lor (rn lsl 5) lor nzcv)

let ccmp_reg ?(sf = 1) a rn rm nzcv cond =
  emit a
    ((sf lsl 31) lor (1 lsl 30) lor (1 lsl 29) lor (0b11010010 lsl 21) lor (rm lsl 16)
    lor (cond_code cond lsl 12) lor (rn lsl 5) lor nzcv)

let ccmn_reg ?(sf = 1) a rn rm nzcv cond =
  emit a
    ((sf lsl 31) lor (1 lsl 29) lor (0b11010010 lsl 21) lor (rm lsl 16)
    lor (cond_code cond lsl 12) lor (rn lsl 5) lor nzcv)

(* Acquire/release and exclusives. *)
let ldar ?(size = 3) a rt rn =
  emit a
    ((size lsl 30) lor (0b001000 lsl 24) lor (1 lsl 23) lor (1 lsl 22) lor (0b11111 lsl 16)
    lor (1 lsl 15) lor (0b11111 lsl 10) lor (rn lsl 5) lor rt)

let stlr ?(size = 3) a rt rn =
  emit a
    ((size lsl 30) lor (0b001000 lsl 24) lor (1 lsl 23) lor (0b11111 lsl 16) lor (1 lsl 15)
    lor (0b11111 lsl 10) lor (rn lsl 5) lor rt)

let ldxr ?(size = 3) a rt rn =
  emit a
    ((size lsl 30) lor (0b001000 lsl 24) lor (1 lsl 22) lor (0b11111 lsl 16)
    lor (0b11111 lsl 10) lor (rn lsl 5) lor rt)

let stxr ?(size = 3) a rs rt rn =
  emit a
    ((size lsl 30) lor (0b001000 lsl 24) lor (rs lsl 16) lor (0b11111 lsl 10) lor (rn lsl 5) lor rt)

(* --- SIMD (128-bit subset) ---------------------------------------------------------- *)

let vec3same ~u ~size ~opcode ~rm ~rn ~rd a =
  emit a
    ((1 lsl 30) lor (u lsl 29) lor (0b01110 lsl 24) lor (size lsl 22) lor (1 lsl 21)
    lor (rm lsl 16) lor (opcode lsl 11) lor (1 lsl 10) lor (rn lsl 5) lor rd)

let vadd_2d a rd rn rm = vec3same ~u:0 ~size:3 ~opcode:16 ~rm ~rn ~rd a
let vsub_2d a rd rn rm = vec3same ~u:1 ~size:3 ~opcode:16 ~rm ~rn ~rd a
let vand a rd rn rm = vec3same ~u:0 ~size:0 ~opcode:3 ~rm ~rn ~rd a
let vorr a rd rn rm = vec3same ~u:0 ~size:2 ~opcode:3 ~rm ~rn ~rd a
let veor a rd rn rm = vec3same ~u:1 ~size:0 ~opcode:3 ~rm ~rn ~rd a

let vfadd_2d a rd rn rm =
  emit a
    ((1 lsl 30) lor (0b01110 lsl 24) lor (1 lsl 22) lor (1 lsl 21) lor (rm lsl 16)
    lor (0b110101 lsl 10) lor (rn lsl 5) lor rd)

let vfmul_2d a rd rn rm =
  emit a
    ((1 lsl 30) lor (1 lsl 29) lor (0b01110 lsl 24) lor (1 lsl 22) lor (1 lsl 21) lor (rm lsl 16)
    lor (0b110111 lsl 10) lor (rn lsl 5) lor rd)

(* DUP Vd.2D, Xn *)
let dup_2d a rd rn =
  emit a ((1 lsl 30) lor (0b001110000 lsl 21) lor (0b01000 lsl 16) lor (0b000011 lsl 10) lor (rn lsl 5) lor rd)

(* UMOV Xd, Vn.D[idx] *)
let umov_d a rd rn idx =
  emit a
    ((1 lsl 30) lor (0b001110000 lsl 21) lor (((idx lsl 4) lor 0b1000) lsl 16)
    lor (0b001111 lsl 10) lor (rn lsl 5) lor rd)

(* 128-bit Q loads/stores (byte offset scaled by 16) *)
let ldst_q ~opc ~imm12 ~rn ~rt a =
  emit a
    ((0b111 lsl 27) lor (1 lsl 26) lor (0b01 lsl 24) lor (opc lsl 22)
    lor ((imm12 land 0xFFF) lsl 10) lor (rn lsl 5) lor rt)

let ldr_q ?(off = 0) a rt rn = ldst_q ~opc:3 ~imm12:(off / 16) ~rn ~rt a
let str_q ?(off = 0) a rt rn = ldst_q ~opc:2 ~imm12:(off / 16) ~rn ~rt a

(* --- branches -------------------------------------------------------------------- *)

let b a lbl =
  fixup a Rel26 lbl;
  emit a (0b000101 lsl 26)

let bl a lbl =
  fixup a Rel26 lbl;
  emit a (0b100101 lsl 26)

let b_cond a cond lbl =
  fixup a Rel19 lbl;
  emit a ((0b01010100 lsl 24) lor cond_code cond)

let cbz ?(sf = 1) a rt lbl =
  fixup a Rel19 lbl;
  emit a ((sf lsl 31) lor (0b011010 lsl 25) lor rt)

let cbnz ?(sf = 1) a rt lbl =
  fixup a Rel19 lbl;
  emit a ((sf lsl 31) lor (0b011010 lsl 25) lor (1 lsl 24) lor rt)

let tbz a rt bit lbl =
  fixup a Rel14 lbl;
  emit a (((bit lsr 5) lsl 31) lor (0b011011 lsl 25) lor ((bit land 31) lsl 19) lor rt)

let tbnz a rt bit lbl =
  fixup a Rel14 lbl;
  emit a (((bit lsr 5) lsl 31) lor (0b011011 lsl 25) lor (1 lsl 24) lor ((bit land 31) lsl 19) lor rt)

let br a rn = emit a ((0b1101011 lsl 25) lor (0b0000 lsl 21) lor (0b11111 lsl 16) lor (rn lsl 5))
let blr a rn = emit a ((0b1101011 lsl 25) lor (0b0001 lsl 21) lor (0b11111 lsl 16) lor (rn lsl 5))
let ret ?(rn = 30) a = emit a ((0b1101011 lsl 25) lor (0b0010 lsl 21) lor (0b11111 lsl 16) lor (rn lsl 5))

(* --- loads and stores --------------------------------------------------------------- *)

let ldst_uimm ~size ~v ~opc ~imm12 ~rn ~rt a =
  emit a
    ((size lsl 30) lor (0b111 lsl 27) lor (v lsl 26) lor (0b01 lsl 24) lor (opc lsl 22)
    lor ((imm12 land 0xFFF) lsl 10) lor (rn lsl 5) lor rt)

(* Byte offsets are scaled by the access size. *)
let ldr ?(off = 0) a rt rn = ldst_uimm ~size:3 ~v:0 ~opc:1 ~imm12:(off / 8) ~rn ~rt a
let str ?(off = 0) a rt rn = ldst_uimm ~size:3 ~v:0 ~opc:0 ~imm12:(off / 8) ~rn ~rt a
let ldr32 ?(off = 0) a rt rn = ldst_uimm ~size:2 ~v:0 ~opc:1 ~imm12:(off / 4) ~rn ~rt a
let str32 ?(off = 0) a rt rn = ldst_uimm ~size:2 ~v:0 ~opc:0 ~imm12:(off / 4) ~rn ~rt a
let ldrh ?(off = 0) a rt rn = ldst_uimm ~size:1 ~v:0 ~opc:1 ~imm12:(off / 2) ~rn ~rt a
let strh ?(off = 0) a rt rn = ldst_uimm ~size:1 ~v:0 ~opc:0 ~imm12:(off / 2) ~rn ~rt a
let ldrb ?(off = 0) a rt rn = ldst_uimm ~size:0 ~v:0 ~opc:1 ~imm12:off ~rn ~rt a
let strb ?(off = 0) a rt rn = ldst_uimm ~size:0 ~v:0 ~opc:0 ~imm12:off ~rn ~rt a
let ldrsw ?(off = 0) a rt rn = ldst_uimm ~size:2 ~v:0 ~opc:2 ~imm12:(off / 4) ~rn ~rt a
let ldr_d ?(off = 0) a rt rn = ldst_uimm ~size:3 ~v:1 ~opc:1 ~imm12:(off / 8) ~rn ~rt a
let str_d ?(off = 0) a rt rn = ldst_uimm ~size:3 ~v:1 ~opc:0 ~imm12:(off / 8) ~rn ~rt a
let ldr_s ?(off = 0) a rt rn = ldst_uimm ~size:2 ~v:1 ~opc:1 ~imm12:(off / 4) ~rn ~rt a
let str_s ?(off = 0) a rt rn = ldst_uimm ~size:2 ~v:1 ~opc:0 ~imm12:(off / 4) ~rn ~rt a

let ldst_simm ~size ~v ~opc ~imm9 ~mode ~rn ~rt a =
  emit a
    ((size lsl 30) lor (0b111 lsl 27) lor (v lsl 26) lor (opc lsl 22)
    lor ((imm9 land 0x1FF) lsl 12) lor (mode lsl 10) lor (rn lsl 5) lor rt)

let ldr_post a rt rn off = ldst_simm ~size:3 ~v:0 ~opc:1 ~imm9:off ~mode:1 ~rn ~rt a
let str_post a rt rn off = ldst_simm ~size:3 ~v:0 ~opc:0 ~imm9:off ~mode:1 ~rn ~rt a
let ldr_pre a rt rn off = ldst_simm ~size:3 ~v:0 ~opc:1 ~imm9:off ~mode:3 ~rn ~rt a
let str_pre a rt rn off = ldst_simm ~size:3 ~v:0 ~opc:0 ~imm9:off ~mode:3 ~rn ~rt a
let ldrb_post a rt rn off = ldst_simm ~size:0 ~v:0 ~opc:1 ~imm9:off ~mode:1 ~rn ~rt a
let strb_post a rt rn off = ldst_simm ~size:0 ~v:0 ~opc:0 ~imm9:off ~mode:1 ~rn ~rt a

let ldst_reg ~size ~v ~opc ~rm ~option ~s ~rn ~rt a =
  emit a
    ((size lsl 30) lor (0b111 lsl 27) lor (v lsl 26) lor (opc lsl 22) lor (1 lsl 21)
    lor (rm lsl 16) lor (option lsl 13) lor (s lsl 12) lor (0b10 lsl 10) lor (rn lsl 5) lor rt)

let ldr_reg ?(scaled = false) a rt rn rm =
  ldst_reg ~size:3 ~v:0 ~opc:1 ~rm ~option:3 ~s:(if scaled then 1 else 0) ~rn ~rt a

let str_reg ?(scaled = false) a rt rn rm =
  ldst_reg ~size:3 ~v:0 ~opc:0 ~rm ~option:3 ~s:(if scaled then 1 else 0) ~rn ~rt a

let ldrb_reg a rt rn rm = ldst_reg ~size:0 ~v:0 ~opc:1 ~rm ~option:3 ~s:0 ~rn ~rt a

let ldp_stp ~opc ~mode ~l ~imm7 ~rt2 ~rn ~rt a =
  emit a
    ((opc lsl 30) lor (0b101 lsl 27) lor (mode lsl 23) lor (l lsl 22)
    lor ((imm7 land 0x7F) lsl 15) lor (rt2 lsl 10) lor (rn lsl 5) lor rt)

let ldp ?(off = 0) a rt rt2 rn = ldp_stp ~opc:2 ~mode:2 ~l:1 ~imm7:(off / 8) ~rt2 ~rn ~rt a
let stp ?(off = 0) a rt rt2 rn = ldp_stp ~opc:2 ~mode:2 ~l:0 ~imm7:(off / 8) ~rt2 ~rn ~rt a
let stp_pre a rt rt2 rn off = ldp_stp ~opc:2 ~mode:3 ~l:0 ~imm7:(off / 8) ~rt2 ~rn ~rt a
let ldp_post a rt rt2 rn off = ldp_stp ~opc:2 ~mode:1 ~l:1 ~imm7:(off / 8) ~rt2 ~rn ~rt a

let ldr_lit a rt lbl =
  fixup a Rel19 lbl;
  emit a ((0b01 lsl 30) lor (0b011000 lsl 24) lor rt)

(* --- floating point -------------------------------------------------------------------- *)

let fp2src ~ftype ~opcode ~rm ~rn ~rd a =
  emit a
    ((0b00011110 lsl 24) lor (ftype lsl 22) lor (1 lsl 21) lor (rm lsl 16) lor (opcode lsl 12)
    lor (0b10 lsl 10) lor (rn lsl 5) lor rd)

let fmul_d a rd rn rm = fp2src ~ftype:1 ~opcode:0 ~rm ~rn ~rd a
let fdiv_d a rd rn rm = fp2src ~ftype:1 ~opcode:1 ~rm ~rn ~rd a
let fadd_d a rd rn rm = fp2src ~ftype:1 ~opcode:2 ~rm ~rn ~rd a
let fsub_d a rd rn rm = fp2src ~ftype:1 ~opcode:3 ~rm ~rn ~rd a
let fmax_d a rd rn rm = fp2src ~ftype:1 ~opcode:4 ~rm ~rn ~rd a
let fmin_d a rd rn rm = fp2src ~ftype:1 ~opcode:5 ~rm ~rn ~rd a
let fadd_s a rd rn rm = fp2src ~ftype:0 ~opcode:2 ~rm ~rn ~rd a
let fmul_s a rd rn rm = fp2src ~ftype:0 ~opcode:0 ~rm ~rn ~rd a

let fp1src ~ftype ~opcode ~rn ~rd a =
  emit a
    ((0b00011110 lsl 24) lor (ftype lsl 22) lor (1 lsl 21) lor (opcode lsl 15) lor (0b10000 lsl 10)
    lor (rn lsl 5) lor rd)

let fmov_d a rd rn = fp1src ~ftype:1 ~opcode:0 ~rn ~rd a
let fabs_d a rd rn = fp1src ~ftype:1 ~opcode:1 ~rn ~rd a
let fneg_d a rd rn = fp1src ~ftype:1 ~opcode:2 ~rn ~rd a
let fsqrt_d a rd rn = fp1src ~ftype:1 ~opcode:3 ~rn ~rd a
let fsqrt_s a rd rn = fp1src ~ftype:0 ~opcode:3 ~rn ~rd a
let fcvt_d_to_s a rd rn = fp1src ~ftype:1 ~opcode:4 ~rn ~rd a
let fcvt_s_to_d a rd rn = fp1src ~ftype:0 ~opcode:5 ~rn ~rd a

let fcmp_d ?(zero = false) a rn rm =
  emit a
    ((0b00011110 lsl 24) lor (1 lsl 22) lor (1 lsl 21) lor ((if zero then 0 else rm) lsl 16)
    lor (0b001000 lsl 10) lor (rn lsl 5) lor (if zero then 0b01000 else 0))

let fmov_imm_d a rd imm8 =
  emit a ((0b00011110 lsl 24) lor (1 lsl 22) lor (1 lsl 21) lor (imm8 lsl 13) lor (0b100 lsl 10) lor rd)

let fp_int ~sf ~ftype ~rmode ~opcode ~rn ~rd a =
  emit a
    ((sf lsl 31) lor (0b0011110 lsl 24) lor (ftype lsl 22) lor (1 lsl 21) lor (rmode lsl 19)
    lor (opcode lsl 16) lor (rn lsl 5) lor rd)

let scvtf_d a rd rn = fp_int ~sf:1 ~ftype:1 ~rmode:0 ~opcode:2 ~rn ~rd a
let ucvtf_d a rd rn = fp_int ~sf:1 ~ftype:1 ~rmode:0 ~opcode:3 ~rn ~rd a
let fcvtzs_d a rd rn = fp_int ~sf:1 ~ftype:1 ~rmode:3 ~opcode:0 ~rn ~rd a
let fcvtzu_d a rd rn = fp_int ~sf:1 ~ftype:1 ~rmode:3 ~opcode:1 ~rn ~rd a
let fmov_d_to_x a rd rn = fp_int ~sf:1 ~ftype:1 ~rmode:0 ~opcode:6 ~rn ~rd a
let fmov_x_to_d a rd rn = fp_int ~sf:1 ~ftype:1 ~rmode:0 ~opcode:7 ~rn ~rd a

let fmadd_d a rd rn rm ra =
  emit a ((0b00011111 lsl 24) lor (1 lsl 22) lor (rm lsl 16) lor (ra lsl 10) lor (rn lsl 5) lor rd)

let fmsub_d a rd rn rm ra =
  emit a
    ((0b00011111 lsl 24) lor (1 lsl 22) lor (rm lsl 16) lor (1 lsl 15) lor (ra lsl 10) lor (rn lsl 5) lor rd)

let fcsel_d a rd rn rm cond =
  emit a
    ((0b00011110 lsl 24) lor (1 lsl 22) lor (1 lsl 21) lor (rm lsl 16) lor (cond_code cond lsl 12)
    lor (0b11 lsl 10) lor (rn lsl 5) lor rd)

(* --- system ---------------------------------------------------------------------------------- *)

let svc a imm = emit a ((0b11010100000 lsl 21) lor ((imm land 0xFFFF) lsl 5) lor 0b00001)
let brk a imm = emit a ((0b11010100001 lsl 21) lor ((imm land 0xFFFF) lsl 5))
let eret a = emit64 a 0xD69F03E0L
let nop a = emit64 a 0xD503201FL
let wfi a = emit64 a 0xD503207FL
let isb a = emit64 a 0xD5033FDFL
let dsb a = emit64 a 0xD5033F9FL

(* TLBI VMALLE1 *)
let tlbi_all a = emit64 a 0xD508871FL

let mrs a rt ~o0 ~op1 ~crn ~crm ~op2 =
  emit a
    ((0b1101010100 lsl 22) lor (1 lsl 21) lor (1 lsl 20) lor (o0 lsl 19) lor (op1 lsl 16)
    lor (crn lsl 12) lor (crm lsl 8) lor (op2 lsl 5) lor rt)

let msr a rt ~o0 ~op1 ~crn ~crm ~op2 =
  emit a
    ((0b1101010100 lsl 22) lor (1 lsl 20) lor (o0 lsl 19) lor (op1 lsl 16) lor (crn lsl 12)
    lor (crm lsl 8) lor (op2 lsl 5) lor rt)

(* Named system registers *)
let mrs_sctlr a rt = mrs a rt ~o0:1 ~op1:0 ~crn:1 ~crm:0 ~op2:0
let msr_sctlr a rt = msr a rt ~o0:1 ~op1:0 ~crn:1 ~crm:0 ~op2:0
let msr_ttbr0 a rt = msr a rt ~o0:1 ~op1:0 ~crn:2 ~crm:0 ~op2:0
let msr_ttbr1 a rt = msr a rt ~o0:1 ~op1:0 ~crn:2 ~crm:0 ~op2:1
let msr_vbar a rt = msr a rt ~o0:1 ~op1:0 ~crn:12 ~crm:0 ~op2:0
let msr_elr a rt = msr a rt ~o0:1 ~op1:0 ~crn:4 ~crm:0 ~op2:1
let mrs_elr a rt = mrs a rt ~o0:1 ~op1:0 ~crn:4 ~crm:0 ~op2:1
let msr_spsr a rt = msr a rt ~o0:1 ~op1:0 ~crn:4 ~crm:0 ~op2:0
let mrs_spsr a rt = mrs a rt ~o0:1 ~op1:0 ~crn:4 ~crm:0 ~op2:0
let mrs_esr a rt = mrs a rt ~o0:1 ~op1:0 ~crn:5 ~crm:2 ~op2:0
let mrs_far a rt = mrs a rt ~o0:1 ~op1:0 ~crn:6 ~crm:0 ~op2:0
let msr_sp_el0 a rt = msr a rt ~o0:1 ~op1:0 ~crn:4 ~crm:1 ~op2:0
let mrs_sp_el0 a rt = mrs a rt ~o0:1 ~op1:0 ~crn:4 ~crm:1 ~op2:0
let mrs_cntvct a rt = mrs a rt ~o0:1 ~op1:3 ~crn:14 ~crm:0 ~op2:2
let mrs_currentel a rt = mrs a rt ~o0:1 ~op1:0 ~crn:4 ~crm:2 ~op2:2
let mrs_tpidr a rt = mrs a rt ~o0:1 ~op1:3 ~crn:13 ~crm:0 ~op2:2
let msr_tpidr a rt = msr a rt ~o0:1 ~op1:3 ~crn:13 ~crm:0 ~op2:2

(* MSR DAIFSet/DAIFClr, #imm *)
let msr_daifset a imm =
  emit a ((0b1101010100 lsl 22) lor (0b011 lsl 16) lor (0b0100 lsl 12) lor ((imm land 0xF) lsl 8) lor (0b110 lsl 5) lor 0b11111)

let msr_daifclr a imm =
  emit a ((0b1101010100 lsl 22) lor (0b011 lsl 16) lor (0b0100 lsl 12) lor ((imm land 0xF) lsl 8) lor (0b111 lsl 5) lor 0b11111)

(* --- assembly --------------------------------------------------------------------------------- *)

let assemble (a : t) : bytes =
  let words = Array.of_list (List.rev a.words) in
  List.iter
    (fun (idx, kind, name) ->
      let target =
        match Hashtbl.find_opt a.labels name with
        | Some t -> t
        | None -> invalid_arg ("undefined label " ^ name)
      in
      let delta = target - idx in
      let w = Int32.to_int words.(idx) land 0xFFFFFFFF in
      let patched =
        match kind with
        | Rel26 ->
          if delta < -(1 lsl 25) || delta >= 1 lsl 25 then invalid_arg "branch out of range";
          w lor (delta land 0x3FFFFFF)
        | Rel19 ->
          if delta < -(1 lsl 18) || delta >= 1 lsl 18 then invalid_arg "branch out of range";
          w lor ((delta land 0x7FFFF) lsl 5)
        | Rel14 ->
          if delta < -(1 lsl 13) || delta >= 1 lsl 13 then invalid_arg "branch out of range";
          w lor ((delta land 0x3FFF) lsl 5)
        | Adr21 ->
          let byte_delta = delta * 4 in
          if byte_delta < -(1 lsl 20) || byte_delta >= 1 lsl 20 then invalid_arg "adr out of range";
          w lor ((byte_delta land 3) lsl 29) lor (((byte_delta asr 2) land 0x7FFFF) lsl 5)
      in
      words.(idx) <- Int32.of_int patched)
    a.fixups;
  let out = Bytes.create (4 * Array.length words) in
  Array.iteri (fun i w -> Bytes.set_int32_le out (4 * i) w) words;
  out

let size_bytes a = 4 * a.count

(* Pad with NOPs up to a byte offset from the assembly base. *)
let pad_to a byte_off =
  if byte_off land 3 <> 0 then invalid_arg "pad_to: unaligned";
  while 4 * a.count < byte_off do
    nop a
  done
