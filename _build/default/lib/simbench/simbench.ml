(* The SimBench micro-benchmark suite (Wagstaff et al., ISPASS 2017),
   recreated for Fig. 19: targeted guest programs that isolate one
   full-system-emulation mechanism each - memory emulation hot/cold with
   and without the guest MMU, exception delivery, code generation speed
   (small/large blocks), control-flow handling, and TLB maintenance. *)

module A = Guest_arm.Arm_asm
module K = Workloads.Kernel

type kind =
  | Bare (* EL1, MMU off, loaded at 0x80000 *)
  | Bare_mmu (* EL1, MMU on, identity-mapped low half *)
  | User (* EL0 program under the mini-OS kernel *)

type bench = {
  name : string;
  kind : kind;
  image : bytes;
}

let syscon = 0x0930_0000L

(* --- environments ---------------------------------------------------------- *)

let bare body =
  let a = A.create ~base:0x80000L () in
  body a;
  A.mov_const a A.x25 syscon;
  A.movz a A.x24 0;
  A.str a A.x24 A.x25;
  A.label a "__hang";
  A.b a "__hang";
  A.assemble a

(* EL1 with the MMU on: one 1 GiB identity block covers RAM and the
   peripherals. *)
let bare_mmu body =
  let a = A.create ~base:0x80000L () in
  let af = Int64.shift_left 1L 10 in
  let uxn = Int64.shift_left 1L 54 in
  A.mov_const a A.x0 0x11000L;
  A.mov_const a A.x1 (Int64.logor af (Int64.logor 1L uxn));
  A.str a A.x1 A.x0;
  A.msr_ttbr0 a A.x0;
  A.movz a A.x0 1;
  A.msr_sctlr a A.x0;
  A.isb a;
  body a;
  A.mov_const a A.x25 syscon;
  A.movz a A.x24 0;
  A.str a A.x24 A.x25;
  A.label a "__hang";
  A.b a "__hang";
  A.assemble a

let user body =
  let a = A.create ~base:K.user_va () in
  body a;
  A.movz a A.x0 0;
  A.movz a A.x8 0;
  A.svc a 0;
  A.assemble a

(* --- memory benchmarks ------------------------------------------------------- *)

(* Hot: repeated loads/stores over a small, resident buffer. *)
let mem_hot a =
  A.mov_const a A.x1 0x0100_0000L; (* 16 MiB: inside the identity map *)
  A.mov_const a A.x19 6000L;
  A.label a "outer";
  A.movz a A.x2 0;
  A.label a "inner";
  A.lsl_imm a A.x3 A.x2 3;
  A.add_reg a A.x4 A.x1 A.x3;
  A.ldr a A.x5 A.x4;
  A.add_imm a A.x5 A.x5 1;
  A.str a A.x5 A.x4;
  A.add_imm a A.x2 A.x2 1;
  A.cmp_imm a A.x2 32;
  A.b_cond a A.NE "inner";
  A.sub_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "outer"

(* Cold: touch thousands of distinct pages. *)
let mem_cold a =
  A.mov_const a A.x1 0x0040_0000L; (* 4 MiB.. *)
  A.mov_const a A.x19 6000L; (* pages (24 MiB) *)
  A.label a "touch";
  A.ldr a A.x2 A.x1;
  A.str a A.x2 A.x1;
  A.mov_const a A.x3 4096L;
  A.add_reg a A.x1 A.x1 A.x3;
  A.sub_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "touch"

(* --- exception benchmarks ------------------------------------------------------ *)

let undef_insn a =
  A.mov_const a A.x19 8000L;
  A.label a "loop";
  A.word a 0L; (* undefined encoding; the kernel skips it *)
  A.sub_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop"

let syscall a =
  A.mov_const a A.x19 8000L;
  A.label a "loop";
  A.movz a A.x8 3; (* sys_ticks: a trivial syscall *)
  A.svc a 0;
  A.sub_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop"

let data_fault a =
  A.mov_const a A.x19 8000L;
  A.mov_const a A.x1 0x0070_0000L; (* unmapped user VA *)
  A.label a "loop";
  A.ldr a A.x2 A.x1; (* faults; kernel counts and skips *)
  A.sub_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop"

let insn_fault a =
  A.mov_const a A.x19 4000L;
  A.mov_const a A.x1 0x0070_0000L; (* unmapped user VA *)
  A.label a "loop";
  A.blr a A.x1; (* fetch abort; kernel returns to LR *)
  A.sub_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop"

(* --- code generation benchmarks -------------------------------------------------- *)

(* Thousands of distinct 2-instruction blocks, each executed once:
   dominated by translation speed. *)
let small_blocks a =
  for i = 0 to 3999 do
    A.label a (Printf.sprintf "b%d" i);
    A.add_imm a A.x0 A.x0 1;
    A.b a (Printf.sprintf "b%d" (i + 1))
  done;
  A.label a "b4000"

let large_blocks a =
  for i = 0 to 149 do
    A.label a (Printf.sprintf "b%d" i);
    for _ = 1 to 60 do
      A.add_imm a A.x0 A.x0 1
    done;
    A.b a (Printf.sprintf "b%d" (i + 1))
  done;
  A.label a "b150"

(* --- control flow benchmarks ------------------------------------------------------ *)

let direct_chain ~page_stride a =
  let n = 16 in
  A.mov_const a A.x19 40_000L;
  A.b a "blk0";
  for i = 0 to n - 1 do
    if page_stride then A.pad_to a (0x1000 * (i + 1));
    A.label a (Printf.sprintf "blk%d" i);
    A.add_imm a A.x0 A.x0 1;
    if i = n - 1 then begin
      A.sub_imm a A.x19 A.x19 1;
      A.cbnz a A.x19 "blk0";
      A.b a "out"
    end
    else A.b a (Printf.sprintf "blk%d" (i + 1))
  done;
  A.label a "out"

let indirect_chain ~page_stride a =
  let n = 8 in
  (* Build a table of block addresses at 0x0100_0000. *)
  A.mov_const a A.x22 0x0100_0000L;
  for i = 0 to n - 1 do
    A.adr a A.x2 (Printf.sprintf "blk%d" i);
    A.str ~off:(8 * i) a A.x2 A.x22
  done;
  A.mov_const a A.x19 30_000L;
  A.movz a A.x20 0;
  A.b a "blk0";
  for i = 0 to n - 1 do
    if page_stride then A.pad_to a (0x1000 * (i + 1));
    A.label a (Printf.sprintf "blk%d" i);
    A.add_imm a A.x20 A.x20 1;
    if i = n - 1 then begin
      A.sub_imm a A.x19 A.x19 1;
      A.cbz a A.x19 "out"
    end;
    (* next = table[(x20) mod n] *)
    A.and_imm a A.x21 A.x20 (Int64.of_int (n - 1));
    A.lsl_imm a A.x21 A.x21 3;
    A.ldr_reg a A.x9 A.x22 A.x21;
    A.br a A.x9
  done;
  A.label a "out"

(* --- TLB benchmarks ------------------------------------------------------------------ *)

let tlb_flush a =
  A.mov_const a A.x19 2500L;
  A.mov_const a A.x1 0x0100_0000L;
  A.label a "loop";
  A.tlbi_all a;
  (* repopulate a handful of pages *)
  A.movz a A.x2 0;
  A.label a "touch";
  A.lsl_imm a A.x3 A.x2 12;
  A.add_reg a A.x4 A.x1 A.x3;
  A.ldr a A.x5 A.x4;
  A.add_imm a A.x2 A.x2 1;
  A.cmp_imm a A.x2 8;
  A.b_cond a A.NE "touch";
  A.sub_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "loop"

let tlb_evict a =
  (* Touch more pages than any TLB level holds, repeatedly. *)
  A.mov_const a A.x19 40L;
  A.label a "outer";
  A.mov_const a A.x1 0x0040_0000L;
  A.mov_const a A.x2 2048L;
  A.label a "touch";
  A.ldr a A.x3 A.x1;
  A.mov_const a A.x4 4096L;
  A.add_reg a A.x1 A.x1 A.x4;
  A.sub_imm a A.x2 A.x2 1;
  A.cbnz a A.x2 "touch";
  A.sub_imm a A.x19 A.x19 1;
  A.cbnz a A.x19 "outer"

(* --- the suite ------------------------------------------------------------------------ *)

let all () : bench list =
  [
    { name = "Mem-Hot-MMU"; kind = Bare_mmu; image = bare_mmu mem_hot };
    { name = "Mem-Hot-NoMMU"; kind = Bare; image = bare mem_hot };
    { name = "Mem-Cold-MMU"; kind = Bare_mmu; image = bare_mmu mem_cold };
    { name = "Mem-Cold-NoMMU"; kind = Bare; image = bare mem_cold };
    { name = "Undef-Instruction"; kind = User; image = user undef_insn };
    { name = "Syscall"; kind = User; image = user syscall };
    { name = "Data-Fault"; kind = User; image = user data_fault };
    { name = "Instruction-Fault"; kind = User; image = user insn_fault };
    { name = "Small-Blocks"; kind = Bare; image = bare small_blocks };
    { name = "Large-Blocks"; kind = Bare; image = bare large_blocks };
    { name = "Same-Page-Indirect"; kind = Bare; image = bare (indirect_chain ~page_stride:false) };
    { name = "Inter-Page-Indirect"; kind = Bare; image = bare (indirect_chain ~page_stride:true) };
    { name = "Same-Page-Direct"; kind = Bare; image = bare (direct_chain ~page_stride:false) };
    { name = "Inter-Page-Direct"; kind = Bare; image = bare (direct_chain ~page_stride:true) };
    { name = "TLB-Flush"; kind = Bare_mmu; image = bare_mmu tlb_flush };
    { name = "TLB-Evict"; kind = Bare_mmu; image = bare_mmu tlb_evict };
  ]

(* --- harness ----------------------------------------------------------------------------- *)

type result = {
  bench : string;
  captive_cycles : int;
  qemu_cycles : int;
  speedup : float;
}

let run_captive (b : bench) =
  let guest = Guest_arm.Arm.ops () in
  let e = Captive.Engine.create guest in
  (match b.kind with
  | Bare | Bare_mmu ->
    Captive.Engine.load_image e ~addr:0x80000L b.image;
    Captive.Engine.set_entry e 0x80000L
  | User -> K.install ~enable_timer:false (K.captive_target e) ~user:b.image);
  (match Captive.Engine.run ~max_cycles:2_000_000_000 e with
  | Captive.Engine.Poweroff 0 -> ()
  | Captive.Engine.Poweroff c -> invalid_arg (Printf.sprintf "%s: captive exited %d" b.name c)
  | _ -> invalid_arg (b.name ^ ": captive did not finish"));
  Captive.Engine.cycles e

let run_qemu (b : bench) =
  let guest = Guest_arm.Arm.ops () in
  let e = Qemu_ref.Qemu_engine.create guest in
  (match b.kind with
  | Bare | Bare_mmu ->
    Qemu_ref.Qemu_engine.load_image e ~addr:0x80000L b.image;
    Qemu_ref.Qemu_engine.set_entry e 0x80000L
  | User -> K.install ~enable_timer:false (K.qemu_target e) ~user:b.image);
  (match Qemu_ref.Qemu_engine.run ~max_cycles:2_000_000_000 e with
  | Qemu_ref.Qemu_engine.Poweroff 0 -> ()
  | Qemu_ref.Qemu_engine.Poweroff c -> invalid_arg (Printf.sprintf "%s: qemu exited %d" b.name c)
  | _ -> invalid_arg (b.name ^ ": qemu did not finish"));
  Qemu_ref.Qemu_engine.cycles e

let run_one (b : bench) : result =
  let c = run_captive b in
  let q = run_qemu b in
  { bench = b.name; captive_cycles = c; qemu_cycles = q; speedup = float_of_int q /. float_of_int c }

let run_all () = List.map run_one (all ())
