lib/guest/ops.ml: Ssa
