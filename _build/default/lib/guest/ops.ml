(* The interface between the guest-agnostic DBT engines and a guest
   architecture module.

   A guest provides: its ADL model (decoder + optimized SSA actions), the
   register-file layout, and the system-level behaviours that the paper
   notes are written as regular source code compiled alongside the
   generated parts - the MMU walker, the exception model, system-register
   access, and interrupt delivery. *)

(* Callbacks onto the live guest state, provided by the engine (the
   register file lives in engine-owned memory). *)
type sys_ctx = {
  read_reg : int -> int64; (* by ADL slot index *)
  write_reg : int -> int64 -> unit;
  read_bank : int -> int -> int64;
  write_bank : int -> int -> int64 -> unit;
  get_pc : unit -> int64;
  set_pc : int64 -> unit;
  (* Guest-physical memory access (for page-table walks). *)
  phys_read : bits:int -> int64 -> int64;
  (* Host cycle counter, for guest counter registers. *)
  cycles : unit -> int;
}

type perms = { pr : bool; pw : bool; px : bool; puser : bool }

type guest_fault =
  | Gf_translation of int (* level *)
  | Gf_permission of int
  | Gf_alignment

type access = Aload | Astore | Afetch

(* What a system-register write requires of the engine. *)
type coproc_effect = Ce_none | Ce_mmu_changed | Ce_tlb_flush

type ops = {
  name : string;
  description : string;
  model : Ssa.Offline.model;
  insn_size : int;
  regfile_size : int;
  bank_offset : bank:int -> index:int -> int;
  slot_offset : int -> int;
  (* --- virtual memory ---------------------------------------------- *)
  mmu_enabled : sys_ctx -> bool;
  (* Walk the guest page tables: va -> (pa, perms). *)
  mmu_translate : sys_ctx -> access:access -> int64 -> (int64 * perms, guest_fault) result;
  (* Which translation regime the address belongs to (e.g. TTBR0 vs
     TTBR1); used for the dual lower/upper host-page-table sets. *)
  address_space : sys_ctx -> int64 -> int;
  (* --- privilege ----------------------------------------------------- *)
  privilege_level : sys_ctx -> int; (* 0 = user *)
  (* --- exceptions ----------------------------------------------------- *)
  take_exception : sys_ctx -> ec:int64 -> iss:int64 -> unit;
  data_abort : sys_ctx -> va:int64 -> access:access -> fault:guest_fault -> unit;
  insn_abort : sys_ctx -> va:int64 -> fault:guest_fault -> unit;
  undefined_insn : sys_ctx -> unit;
  eret : sys_ctx -> unit;
  deliver_irq : sys_ctx -> bool; (* true if the IRQ was taken *)
  (* --- system registers ------------------------------------------------ *)
  coproc_read : sys_ctx -> int64 -> int64;
  coproc_write : sys_ctx -> int64 -> int64 -> coproc_effect;
  (* --- reset ------------------------------------------------------------ *)
  reset : sys_ctx -> entry:int64 -> unit;
}

(* Raised by engine helpers when guest execution must leave the current
   translation (exception taken, mode change). *)
exception Guest_trap
