lib/util/table.mli:
