lib/util/bits.mli:
