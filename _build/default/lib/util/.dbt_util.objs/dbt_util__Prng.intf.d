lib/util/prng.mli:
