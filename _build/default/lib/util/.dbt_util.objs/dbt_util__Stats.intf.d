lib/util/stats.mli:
