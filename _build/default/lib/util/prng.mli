(** Deterministic xorshift64* PRNG.

    Workload generation must be reproducible across runs so that
    paper-figure regeneration is stable; this PRNG is used everywhere
    randomness is needed in workloads and tests. *)

type t

(** [create seed] makes a generator; a zero seed is replaced by a fixed
    non-zero constant. *)
val create : int64 -> t

(** Next raw 64-bit output. *)
val next : t -> int64

(** Uniform integer in [\[0, bound)]. *)
val int : t -> int -> int

val int64 : t -> int64

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool
