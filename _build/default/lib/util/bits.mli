(** 64-bit manipulation helpers used throughout the DBT.

    All values are carried as {!int64}; narrower widths are represented
    zero-extended in the low bits unless stated otherwise. *)

val ( +% ) : int64 -> int64 -> int64
val ( -% ) : int64 -> int64 -> int64
val ( *% ) : int64 -> int64 -> int64
val ( &% ) : int64 -> int64 -> int64
val ( |% ) : int64 -> int64 -> int64
val ( ^% ) : int64 -> int64 -> int64
val lnot64 : int64 -> int64

(** Logical shift left; the amount is masked to 0..63 as on real hardware. *)
val shl : int64 -> int -> int64

(** Logical shift right (amount masked to 0..63). *)
val shr : int64 -> int -> int64

(** Arithmetic shift right (amount masked to 0..63). *)
val sar : int64 -> int -> int64

(** [mask n] is [n] one-bits in the low positions; [mask 64] is all-ones,
    [mask 0] is zero. *)
val mask : int -> int64

(** [extract x ~lo ~len] returns [len] bits of [x] starting at bit [lo]
    (bit 0 = LSB), zero-extended. *)
val extract : int64 -> lo:int -> len:int -> int64

(** [insert x ~lo ~len v] returns [x] with the low [len] bits of [v]
    written at position [lo]. *)
val insert : int64 -> lo:int -> len:int -> int64 -> int64

(** [bit x i] is bit [i] of [x]. *)
val bit : int64 -> int -> bool

(** Sign-extend the low [width] bits of the argument to 64 bits. *)
val sign_extend : int64 -> width:int -> int64

(** Truncate to [width] bits (zero-extended representation). *)
val zero_extend : int64 -> width:int -> int64

(** Rotate within the given width; results are zero-extended. *)
val rotate_right : int64 -> int -> width:int -> int64

val rotate_left : int64 -> int -> width:int -> int64

(** Unsigned comparison, {!Int64.unsigned_compare}. *)
val ucompare : int64 -> int64 -> int

val ult : int64 -> int64 -> bool
val ule : int64 -> int64 -> bool
val udiv : int64 -> int64 -> int64
val urem : int64 -> int64 -> int64
val popcount : int64 -> int

(** Count leading zeros within [width] (default 64); returns [width] for
    zero. *)
val clz : ?width:int -> int64 -> int

(** Count trailing zeros within [width] (default 64); returns [width] for
    zero. *)
val ctz : ?width:int -> int64 -> int

(** Reverse the low [width] bits. *)
val bit_reverse : int64 -> width:int -> int64

(** Byte-swap within [width] bits (16, 32 or 64). *)
val byte_swap : int64 -> width:int -> int64

val align_down : int64 -> int -> int64
val align_up : int64 -> int -> int64
val is_aligned : int64 -> int -> bool

(** [add_with_carry ?width a b cin] returns [(result, carry_out,
    signed_overflow)] of the [width]-bit addition [a + b + cin], as the
    ARM pseudo-code's AddWithCarry computes them. *)
val add_with_carry : ?width:int -> int64 -> int64 -> bool -> int64 * bool * bool

(** Hexadecimal rendering helpers. *)
val hex : int64 -> string

val hex_w : int -> int64 -> string
