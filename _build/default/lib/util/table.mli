(** Aligned plain-text tables for the bench harness output. *)

type align = Left | Right

(** [render ?align ~header rows] lays the rows out in markdown-ish style
    with per-column alignment (default left). *)
val render : ?align:align list -> header:string list -> string list list -> string

val print : ?align:align list -> header:string list -> string list list -> unit

(** Format a float with [digits] decimals ("n/a" for nan). *)
val fmt_f : ?digits:int -> float -> string

(** Format a speed-up factor, e.g. ["2.21x"]. *)
val fmt_speedup : float -> string
