(* 64-bit manipulation helpers used throughout the DBT.

   All values are carried as [int64]; narrower widths are represented
   zero-extended in the low bits unless stated otherwise. *)

let ( +% ) = Int64.add
let ( -% ) = Int64.sub
let ( *% ) = Int64.mul
let ( &% ) = Int64.logand
let ( |% ) = Int64.logor
let ( ^% ) = Int64.logxor
let lnot64 = Int64.lognot

(* Shift amounts are masked to 0..63 as on real hardware. *)
let shl x n = Int64.shift_left x (n land 63)
let shr x n = Int64.shift_right_logical x (n land 63)
let sar x n = Int64.shift_right x (n land 63)

(* A mask of [n] ones in the low bits. [mask 64] is all-ones, [mask 0] zero. *)
let mask n =
  if n <= 0 then 0L
  else if n >= 64 then -1L
  else Int64.shift_left 1L n -% 1L

(* Extract [len] bits of [x] starting at bit [lo] (LSB = 0). *)
let extract x ~lo ~len = shr x lo &% mask len

(* Insert the low [len] bits of [v] into [x] at position [lo]. *)
let insert x ~lo ~len v =
  let m = shl (mask len) lo in
  x &% lnot64 m |% (shl v lo &% m)

let bit x i = extract x ~lo:i ~len:1 <> 0L

(* Sign-extend the low [width] bits of [x] to 64 bits. *)
let sign_extend x ~width =
  if width <= 0 || width >= 64 then x
  else
    let shift = 64 - width in
    sar (shl x shift) shift

(* Truncate [x] to [width] bits (zero-extended representation). *)
let zero_extend x ~width = x &% mask width

let rotate_right x n ~width =
  let n = n mod width in
  if n = 0 then zero_extend x ~width
  else
    let x = zero_extend x ~width in
    zero_extend (shr x n |% shl x (width - n)) ~width

let rotate_left x n ~width = rotate_right x (width - (n mod width)) ~width

(* Unsigned comparison on int64. *)
let ucompare = Int64.unsigned_compare
let ult a b = ucompare a b < 0
let ule a b = ucompare a b <= 0
let udiv = Int64.unsigned_div
let urem = Int64.unsigned_rem

let popcount x =
  let rec go x acc = if x = 0L then acc else go (shr x 1) (acc + Int64.to_int (x &% 1L)) in
  go x 0

let clz ?(width = 64) x =
  let x = zero_extend x ~width in
  let rec go i = if i < 0 then width else if bit x i then width - 1 - i else go (i - 1) in
  go (width - 1)

let ctz ?(width = 64) x =
  let x = zero_extend x ~width in
  let rec go i = if i >= width then width else if bit x i then i else go (i + 1) in
  go 0

(* Reverse the low [width] bits. *)
let bit_reverse x ~width =
  let r = ref 0L in
  for i = 0 to width - 1 do
    if bit x i then r := !r |% shl 1L (width - 1 - i)
  done;
  !r

(* Byte-swap within [width] bits (width is 16, 32 or 64). *)
let byte_swap x ~width =
  let n = width / 8 in
  let r = ref 0L in
  for i = 0 to n - 1 do
    r := !r |% shl (extract x ~lo:(8 * i) ~len:8) (8 * (n - 1 - i))
  done;
  !r

(* Align [x] down/up to a power-of-two [align]. *)
let align_down x align = x &% lnot64 (Int64.of_int (align - 1))
let align_up x align = align_down (x +% Int64.of_int (align - 1)) align
let is_aligned x align = x &% Int64.of_int (align - 1) = 0L

(* Carry and overflow of a 64-bit addition with carry-in, as the ARM
   pseudo-code's AddWithCarry computes them. *)
let add_with_carry ?(width = 64) a b carry_in =
  let a = zero_extend a ~width and b = zero_extend b ~width in
  let cin = if carry_in then 1L else 0L in
  let result = zero_extend (a +% b +% cin) ~width in
  (* Carry-out of a + b + cin in [width] bits: with cin=0 the sum wrapped iff
     it is strictly below [a]; with cin=1 it wrapped iff it is <= [a]. *)
  let carry = if carry_in then ule result a else ult result a in
  let sa = bit a (width - 1) and sb = bit b (width - 1) and sr = bit result (width - 1) in
  let overflow = sa = sb && sr <> sa in
  (result, carry, overflow)

let hex x = Printf.sprintf "0x%Lx" x
let hex_w width x = Printf.sprintf "0x%0*Lx" (width / 4) (zero_extend x ~width)
