(* Aligned plain-text tables for the bench harness output. *)

type align = Left | Right

let render ?(align = []) ~header rows =
  let cols = List.length header in
  let align_of i = match List.nth_opt align i with Some a -> a | None -> Left in
  let all = header :: rows in
  let width i =
    List.fold_left (fun w row ->
        match List.nth_opt row i with
        | Some cell -> max w (String.length cell)
        | None -> w)
      0 all
  in
  let widths = List.init cols width in
  let pad i cell =
    let w = List.nth widths i in
    let n = w - String.length cell in
    if n <= 0 then cell
    else
      match align_of i with
      | Left -> cell ^ String.make n ' '
      | Right -> String.make n ' ' ^ cell
  in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep = "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|" in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ?align ~header rows = print_endline (render ?align ~header rows)

let fmt_f ?(digits = 2) v =
  if Float.is_nan v then "n/a" else Printf.sprintf "%.*f" digits v

let fmt_speedup v = fmt_f ~digits:2 v ^ "x"
