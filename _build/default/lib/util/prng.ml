(* Deterministic xorshift64* PRNG: workload generation must be reproducible
   across runs so paper-figure regeneration is stable. *)

type t = { mutable state : int64 }

let create seed = { state = (if seed = 0L then 0x9E3779B97F4A7C15L else seed) }

let next t =
  let open Int64 in
  let x = t.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  t.state <- x;
  mul x 0x2545F4914F6CDD1DL

(* Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int bound))

let int64 t = next t
let float t = Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0
let bool t = Int64.logand (next t) 1L = 1L
