(* Abstract syntax of the Architecture Description Language.

   The ADL describes a guest architecture the way the paper's Section 2.2
   does: a structural header (register banks and slots, word size,
   endianness), instruction decode patterns, and instruction semantics in a
   C-like behaviour language (Fig. 3). *)

type ity = { bits : int; signed : bool }

type ty =
  | Tint of ity
  | Tfloat of int (* 32 or 64 *)
  | Tvoid

let u8 = Tint { bits = 8; signed = false }
let u16 = Tint { bits = 16; signed = false }
let u32 = Tint { bits = 32; signed = false }
let u64 = Tint { bits = 64; signed = false }
let s8 = Tint { bits = 8; signed = true }
let s16 = Tint { bits = 16; signed = true }
let s32 = Tint { bits = 32; signed = true }
let s64 = Tint { bits = 64; signed = true }
let f32 = Tfloat 32
let f64 = Tfloat 64

let string_of_ty = function
  | Tint { bits; signed } -> Printf.sprintf "%cint%d" (if signed then 's' else 'u') bits
  | Tfloat b -> Printf.sprintf "float%d" b
  | Tvoid -> "void"

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Shl | Shr (* logical or arithmetic chosen by operand signedness *)
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor (* && || *)

type unop = Neg | Not (* bitwise ~ *) | Lnot (* logical ! *)

type pos = { line : int; col : int }

type expr = { e : expr_desc; pos : pos; mutable ty : ty }

and expr_desc =
  | Int_lit of int64
  | Float_lit of float
  | Var of string
  | Field of string (* inst.field *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cast of ty * expr
  | Call of string * expr list (* builtin or helper invocation *)
  | Ternary of expr * expr * expr

type stmt =
  | Decl of ty * string * expr option
  | Assign of string * expr
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list (* must be resolvable at translation time *)
  | Return of expr option
  | Block of stmt list

(* A helper function, inlined into execute actions during the offline
   stage. *)
type helper = {
  h_name : string;
  h_ret : ty;
  h_params : (ty * string) list;
  h_body : stmt list;
}

(* The behaviour of one instruction (paper Fig. 3). *)
type execute = {
  x_name : string;
  x_body : stmt list;
}

(* One token of a decode pattern, written MSB-first. *)
type pat_tok =
  | Bit of bool
  | Fld of string * int (* named field of given width *)

type decode_attr =
  | Ends_block (* control flow: terminates the translation block *)
  | Reads_pc

(* A decode entry: instruction name, 32-bit pattern, optional predicate over
   the extracted fields, attributes. *)
type decode = {
  d_name : string;
  d_pattern : pat_tok list;
  d_when : expr option;
  d_attrs : decode_attr list;
}

type bank = {
  b_name : string;
  b_index : int; (* bank id used by read_register_bank *)
  b_width : int; (* element width in bits *)
  b_count : int;
}

type slot = {
  s_name : string;
  s_index : int;
  s_width : int;
}

type arch = {
  a_name : string;
  a_wordsize : int;
  a_little_endian : bool;
  a_banks : bank list;
  a_slots : slot list;
  a_helpers : helper list;
  a_decodes : decode list;
  a_executes : execute list;
}

let find_bank arch name = List.find_opt (fun b -> b.b_name = name) arch.a_banks
let find_slot arch name = List.find_opt (fun s -> s.s_name = name) arch.a_slots
let find_helper arch name = List.find_opt (fun h -> h.h_name = name) arch.a_helpers
let find_execute arch name = List.find_opt (fun x -> x.x_name = name) arch.a_executes
let find_decode arch name = List.find_opt (fun d -> d.d_name = name) arch.a_decodes

exception Adl_error of string * pos

let error ?(pos = { line = 0; col = 0 }) fmt =
  Printf.ksprintf (fun s -> raise (Adl_error (s, pos))) fmt
