(* Evaluation of *fixed* ADL expressions and pure builtins over concrete
   64-bit values.

   This is the single implementation of operator semantics shared by the
   decoder's `when` predicates, the offline constant folder, and the online
   generator's fixed-operation evaluation (the paper's translation-time
   partial evaluation). *)

open Ast
module Bits = Dbt_util.Bits

let normalize ty v =
  match ty with
  | Tint { bits; signed } ->
    if bits >= 64 then v
    else if signed then Bits.sign_extend v ~width:bits
    else Bits.zero_extend v ~width:bits
  | Tfloat _ | Tvoid -> v

let bool_ b = if b then 1L else 0L

(* Operands are already normalized to the unified (64-bit) operand type;
   [signed] is the signedness of that type. *)
let binop op ~signed a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div ->
    if b = 0L then 0L (* ARM-style: checked separately where it matters *)
    else if signed then Int64.div a b
    else Int64.unsigned_div a b
  | Rem -> if b = 0L then a else if signed then Int64.rem a b else Int64.unsigned_rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Bits.shl a (Int64.to_int (Int64.logand b 63L))
  | Shr ->
    if signed then Bits.sar a (Int64.to_int (Int64.logand b 63L))
    else Bits.shr a (Int64.to_int (Int64.logand b 63L))
  | Eq -> bool_ (a = b)
  | Ne -> bool_ (a <> b)
  | Lt -> bool_ (if signed then a < b else Bits.ult a b)
  | Le -> bool_ (if signed then a <= b else Bits.ule a b)
  | Gt -> bool_ (if signed then a > b else Bits.ult b a)
  | Ge -> bool_ (if signed then a >= b else Bits.ule b a)
  | Land | Lor -> invalid_arg "Eval.binop: && and || are rewritten by the type checker"

let unop op a =
  match op with
  | Neg -> Int64.neg a
  | Not -> Int64.lognot a
  | Lnot -> bool_ (a = 0L)

(* Pure builtins evaluable at translation time.  FP builtins are evaluated
   with softfloat, so offline folding of FP constants is bit-accurate. *)
let builtin name (args : int64 list) : int64 option =
  let open Softfloat in
  let f = Sf_types.new_flags () in
  let w32 v = Bits.zero_extend v ~width:32 in
  match (name, args) with
  | "sign_extend", [ v; bits ] -> Some (Bits.sign_extend v ~width:(Int64.to_int bits))
  | "clz32", [ v ] -> Some (Int64.of_int (Bits.clz ~width:32 (w32 v)))
  | "clz64", [ v ] -> Some (Int64.of_int (Bits.clz v))
  | "popcount64", [ v ] -> Some (Int64.of_int (Bits.popcount v))
  | "ror32", [ v; n ] -> Some (Bits.rotate_right (w32 v) (Int64.to_int (Int64.logand n 31L)) ~width:32)
  | "ror64", [ v; n ] -> Some (Bits.rotate_right v (Int64.to_int (Int64.logand n 63L)) ~width:64)
  | "rbit32", [ v ] -> Some (Bits.bit_reverse (w32 v) ~width:32)
  | "rbit64", [ v ] -> Some (Bits.bit_reverse v ~width:64)
  | "rev16", [ v ] -> Some (Bits.byte_swap v ~width:16)
  | "rev32", [ v ] -> Some (Bits.byte_swap (w32 v) ~width:32)
  | "rev64", [ v ] -> Some (Bits.byte_swap v ~width:64)
  | "umulh64", [ a; b ] -> Some (fst (Sf_core.mul64_wide a b))
  | "smulh64", [ a; b ] ->
    (* signed high part from the unsigned one *)
    let hi, _ = Sf_core.mul64_wide a b in
    let hi = if a < 0L then Int64.sub hi b else hi in
    let hi = if b < 0L then Int64.sub hi a else hi in
    Some hi
  | "udiv64", [ a; b ] -> Some (if b = 0L then 0L else Int64.unsigned_div a b)
  | "sdiv64", [ a; b ] ->
    Some
      (if b = 0L then 0L
       else if a = Int64.min_int && b = -1L then Int64.min_int
       else Int64.div a b)
  | "udiv32", [ a; b ] ->
    let a = w32 a and b = w32 b in
    Some (if b = 0L then 0L else Int64.unsigned_div a b)
  | "sdiv32", [ a; b ] ->
    let a = Bits.sign_extend a ~width:32 and b = Bits.sign_extend b ~width:32 in
    Some
      (w32 (if b = 0L then 0L else if a = -2147483648L && b = -1L then -2147483648L else Int64.div a b))
  | "select", [ c; a; b ] -> Some (if c <> 0L then a else b)
  | "add_flags64", [ a; b; cin ] ->
    let r, c, v = Bits.add_with_carry a b (cin <> 0L) in
    let n = if r < 0L then 8L else 0L in
    let z = if r = 0L then 4L else 0L in
    Some (Int64.logor (Int64.logor n z) (Int64.logor (if c then 2L else 0L) (if v then 1L else 0L)))
  | "add_flags32", [ a; b; cin ] ->
    let r, c, v = Bits.add_with_carry ~width:32 a b (cin <> 0L) in
    let n = if Bits.bit r 31 then 8L else 0L in
    let z = if Bits.zero_extend r ~width:32 = 0L then 4L else 0L in
    Some (Int64.logor (Int64.logor n z) (Int64.logor (if c then 2L else 0L) (if v then 1L else 0L)))
  | "adc64", [ a; b; cin ] ->
    let r, _, _ = Bits.add_with_carry a b (cin <> 0L) in
    Some r
  | "adc32", [ a; b; cin ] ->
    let r, _, _ = Bits.add_with_carry ~width:32 a b (cin <> 0L) in
    Some r
  | "logic_flags64", [ r ] ->
    Some (Int64.logor (if r < 0L then 8L else 0L) (if r = 0L then 4L else 0L))
  | "logic_flags32", [ r ] ->
    Some
      (Int64.logor (if Bits.bit r 31 then 8L else 0L) (if Bits.zero_extend r ~width:32 = 0L then 4L else 0L))
  | "fp64_add", [ a; b ] -> Some (F64.add f a b)
  | "fp64_sub", [ a; b ] -> Some (F64.sub f a b)
  | "fp64_mul", [ a; b ] -> Some (F64.mul f a b)
  | "fp64_div", [ a; b ] -> Some (F64.div f a b)
  | "fp64_sqrt", [ a ] -> Some (F64.sqrt f a)
  | "fp64_min", [ a; b ] -> Some (F64.min_ f a b)
  | "fp64_max", [ a; b ] -> Some (F64.max_ f a b)
  | "fp32_add", [ a; b ] -> Some (F32.add f (w32 a) (w32 b))
  | "fp32_sub", [ a; b ] -> Some (F32.sub f (w32 a) (w32 b))
  | "fp32_mul", [ a; b ] -> Some (F32.mul f (w32 a) (w32 b))
  | "fp32_div", [ a; b ] -> Some (F32.div f (w32 a) (w32 b))
  | "fp32_sqrt", [ a ] -> Some (F32.sqrt f (w32 a))
  | "fp32_min", [ a; b ] -> Some (F32.min_ f (w32 a) (w32 b))
  | "fp32_max", [ a; b ] -> Some (F32.max_ f (w32 a) (w32 b))
  | "fp64_cmp_flags", [ a; b ] -> (
    match F64.compare_ f a b with
    | Sf_core.Cmp_lt -> Some 8L (* N *)
    | Sf_core.Cmp_eq -> Some 6L (* ZC *)
    | Sf_core.Cmp_gt -> Some 2L (* C *)
    | Sf_core.Cmp_unordered -> Some 3L (* CV *))
  | "fp32_cmp_flags", [ a; b ] -> (
    match F32.compare_ f (w32 a) (w32 b) with
    | Sf_core.Cmp_lt -> Some 8L
    | Sf_core.Cmp_eq -> Some 6L
    | Sf_core.Cmp_gt -> Some 2L
    | Sf_core.Cmp_unordered -> Some 3L)
  | "fp32_to_fp64", [ a ] -> Some (F32.to_f64 f (w32 a))
  | "fp64_to_fp32", [ a ] -> Some (F64.to_f32 f a)
  | "fp64_to_sint64", [ a ] -> Some (F64.to_int64 f a)
  | "fp64_to_uint64", [ a ] -> Some (Sf_core.to_uint64 Sf_core.f64_fmt f a)
  | "fp32_to_sint32", [ a ] ->
    let v = F32.to_int64 f (w32 a) in
    let v = if v > 2147483647L then 2147483647L else if v < -2147483648L then -2147483648L else v in
    Some (w32 v)
  | "sint64_to_fp64", [ a ] -> Some (F64.of_int64 f a)
  | "uint64_to_fp64", [ a ] -> Some (F64.of_uint64 f a)
  | "sint32_to_fp32", [ a ] -> Some (F32.of_int64 f (Bits.sign_extend a ~width:32))
  | "sint64_to_fp32", [ a ] -> Some (F32.of_int64 f a)
  | "fp64_muladd", [ a; b; c ] ->
    (* fused behaviour approximated as mul-then-add; documented in DESIGN.md *)
    Some (F64.add f (F64.mul f a b) c)
  | _ -> None

(* Evaluate a typed, fixed expression.  [field] resolves instruction fields;
   raises if the expression contains anything dynamic. *)
let rec expr ~(field : string -> int64) (e : expr) : int64 =
  match e.e with
  | Int_lit v -> v
  | Float_lit _ -> error ~pos:e.pos "float literal in fixed expression"
  | Var v -> error ~pos:e.pos "variable %S in fixed expression" v
  | Field fname -> field fname
  | Binop (op, a, b) ->
    let signed = match a.ty with Tint i -> i.signed | _ -> false in
    binop op ~signed (expr ~field a) (expr ~field b)
  | Unop (op, a) -> unop op (expr ~field a)
  | Cast (ty, a) -> normalize ty (expr ~field a)
  | Ternary (c, t, f) -> if expr ~field c <> 0L then expr ~field t else expr ~field f
  | Call (name, args) -> (
    let vals = List.map (expr ~field) args in
    match builtin name vals with
    | Some v -> v
    | None -> error ~pos:e.pos "call to %S in fixed expression" name)
