(* Recursive-descent parser for the ADL. *)

open Ast
open Lexer

type state = { mutable toks : lexed list }

let peek st = match st.toks with [] -> assert false | t :: _ -> t
let pos st = (peek st).pos

let next st =
  match st.toks with
  | [] -> assert false
  | t :: rest ->
    (match t.tok with EOF -> () | _ -> st.toks <- rest);
    t

let expect st tok =
  let t = next st in
  if t.tok <> tok then
    error ~pos:t.pos "expected %s, found %s" (string_of_token tok) (string_of_token t.tok)

let expect_ident st =
  let t = next st in
  match t.tok with
  | IDENT s -> s
  | other -> error ~pos:t.pos "expected identifier, found %s" (string_of_token other)

let expect_int st =
  let t = next st in
  match t.tok with
  | INT v -> v
  | other -> error ~pos:t.pos "expected integer, found %s" (string_of_token other)

let expect_string st =
  let t = next st in
  match t.tok with
  | STRING s -> s
  | other -> error ~pos:t.pos "expected string, found %s" (string_of_token other)

let accept st tok = if (peek st).tok = tok then (ignore (next st); true) else false

let ty_of_name = function
  | "uint8" -> Some u8
  | "uint16" -> Some u16
  | "uint32" -> Some u32
  | "uint64" -> Some u64
  | "sint8" -> Some s8
  | "sint16" -> Some s16
  | "sint32" -> Some s32
  | "sint64" -> Some s64
  | "float32" | "float" -> Some f32
  | "float64" | "double" -> Some f64
  | "void" -> Some Tvoid
  | _ -> None

let is_type_name s = ty_of_name s <> None

let expect_type st =
  let t = next st in
  match t.tok with
  | IDENT s -> (
    match ty_of_name s with
    | Some ty -> ty
    | None -> error ~pos:t.pos "expected a type, found %S" s)
  | other -> error ~pos:t.pos "expected a type, found %s" (string_of_token other)

(* --- expressions ---------------------------------------------------------- *)

let mk pos e = { e; pos; ty = Tvoid }

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_lor st in
  if accept st QUESTION then begin
    let t = parse_expr st in
    expect st COLON;
    let f = parse_ternary st in
    mk c.Ast.pos (Ternary (c, t, f))
  end
  else c

and parse_binlevel st ops sub =
  let rec loop lhs =
    match List.assoc_opt (peek st).tok ops with
    | Some op ->
      let p = pos st in
      ignore (next st);
      let rhs = sub st in
      loop (mk p (Binop (op, lhs, rhs)))
    | None -> lhs
  in
  loop (sub st)

and parse_lor st = parse_binlevel st [ (PIPEPIPE, Lor) ] parse_land
and parse_land st = parse_binlevel st [ (AMPAMP, Land) ] parse_bor
and parse_bor st = parse_binlevel st [ (PIPE, Or) ] parse_bxor
and parse_bxor st = parse_binlevel st [ (CARET, Xor) ] parse_band
and parse_band st = parse_binlevel st [ (AMP, And) ] parse_equality
and parse_equality st = parse_binlevel st [ (EQEQ, Eq); (NEQ, Ne) ] parse_relational

and parse_relational st =
  parse_binlevel st [ (Lexer.LT, Ast.Lt); (LE, Le); (GT, Gt); (GE, Ge) ] parse_shift

and parse_shift st = parse_binlevel st [ (LTLT, Shl); (GTGT, Shr) ] parse_additive
and parse_additive st = parse_binlevel st [ (PLUS, Add); (MINUS, Sub) ] parse_multiplicative

and parse_multiplicative st =
  parse_binlevel st [ (STAR, Mul); (SLASH, Div); (PERCENT, Rem) ] parse_unary

and parse_unary st =
  let p = pos st in
  match (peek st).tok with
  | MINUS ->
    ignore (next st);
    mk p (Unop (Neg, parse_unary st))
  | TILDE ->
    ignore (next st);
    mk p (Unop (Not, parse_unary st))
  | BANG ->
    ignore (next st);
    mk p (Unop (Lnot, parse_unary st))
  | LPAREN -> (
    (* Disambiguate a cast "(type) expr" from a parenthesized expression. *)
    match st.toks with
    | _ :: { tok = IDENT name; _ } :: { tok = RPAREN; _ } :: _ when is_type_name name ->
      ignore (next st);
      let ty = expect_type st in
      expect st RPAREN;
      mk p (Cast (ty, parse_unary st))
    | _ -> parse_primary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = next st in
  match t.tok with
  | INT v -> mk t.pos (Int_lit v)
  | FLOAT f -> mk t.pos (Float_lit f)
  | LPAREN ->
    let e = parse_expr st in
    expect st RPAREN;
    e
  | IDENT "inst" when (peek st).tok = DOT ->
    ignore (next st);
    mk t.pos (Field (expect_ident st))
  | IDENT name ->
    if (peek st).tok = LPAREN then begin
      ignore (next st);
      let args = ref [] in
      if not (accept st RPAREN) then begin
        args := [ parse_expr st ];
        while accept st COMMA do
          args := parse_expr st :: !args
        done;
        expect st RPAREN
      end;
      mk t.pos (Call (name, List.rev !args))
    end
    else mk t.pos (Var name)
  | other -> error ~pos:t.pos "unexpected %s in expression" (string_of_token other)

(* --- statements ----------------------------------------------------------- *)

let rec parse_stmt st : stmt =
  let t = peek st in
  match t.tok with
  | LBRACE -> Block (parse_block st)
  | IDENT "if" ->
    ignore (next st);
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    let then_ = parse_block_or_stmt st in
    let else_ =
      if (peek st).tok = IDENT "else" then begin
        ignore (next st);
        parse_block_or_stmt st
      end
      else []
    in
    If (cond, then_, else_)
  | IDENT "while" ->
    ignore (next st);
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    While (cond, parse_block_or_stmt st)
  | IDENT "return" ->
    ignore (next st);
    if accept st SEMI then Return None
    else begin
      let e = parse_expr st in
      expect st SEMI;
      Return (Some e)
    end
  | IDENT name when is_type_name name -> (
    let ty = expect_type st in
    let var = expect_ident st in
    match (peek st).tok with
    | ASSIGN ->
      ignore (next st);
      let e = parse_expr st in
      expect st SEMI;
      Decl (ty, var, Some e)
    | _ ->
      expect st SEMI;
      Decl (ty, var, None))
  | IDENT _ -> (
    (* Either an assignment or an expression statement. *)
    match st.toks with
    | { tok = IDENT var; _ } :: { tok = ASSIGN; _ } :: _ ->
      ignore (next st);
      ignore (next st);
      let e = parse_expr st in
      expect st SEMI;
      Assign (var, e)
    | _ ->
      let e = parse_expr st in
      expect st SEMI;
      Expr e)
  | _ ->
    let e = parse_expr st in
    expect st SEMI;
    Expr e

and parse_block st : stmt list =
  expect st LBRACE;
  let stmts = ref [] in
  while (peek st).tok <> RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  expect st RBRACE;
  List.rev !stmts

and parse_block_or_stmt st =
  if (peek st).tok = LBRACE then parse_block st else [ parse_stmt st ]

(* --- decode patterns ------------------------------------------------------ *)

let parse_pattern ~pos str =
  let parts = String.split_on_char ' ' str |> List.filter (fun s -> s <> "") in
  let parse_tok s =
    match s with
    | "0" -> Bit false
    | "1" -> Bit true
    | _ -> (
      match String.index_opt s ':' with
      | Some i ->
        let name = String.sub s 0 i in
        let width =
          try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
          with _ -> error ~pos "bad field width in pattern token %S" s
        in
        if width <= 0 || width > 64 then error ~pos "bad field width %d" width;
        Fld (name, width)
      | None ->
        (* A run of literal bits, e.g. "10110". *)
        if String.for_all (fun c -> c = '0' || c = '1') s && String.length s > 0 then
          (* handled by caller expansion *)
          error ~pos "internal: multi-bit literal %S must be expanded" s
        else error ~pos "bad pattern token %S" s)
  in
  List.concat_map
    (fun s ->
      if String.length s > 0 && String.for_all (fun c -> c = '0' || c = '1') s then
        List.init (String.length s) (fun i -> Bit (s.[i] = '1'))
      else [ parse_tok s ])
    parts

(* --- top level ------------------------------------------------------------ *)

let parse_arch st =
  let t = next st in
  (match t.tok with
  | IDENT "arch" -> ()
  | other -> error ~pos:t.pos "expected 'arch', found %s" (string_of_token other));
  let name = expect_string st in
  expect st LBRACE;
  let wordsize = ref 64 and little = ref true in
  let banks = ref [] and slots = ref [] in
  let bank_idx = ref 0 and slot_idx = ref 0 in
  while (peek st).tok <> RBRACE do
    let t = next st in
    match t.tok with
    | IDENT "wordsize" ->
      wordsize := Int64.to_int (expect_int st);
      expect st SEMI
    | IDENT "endian" ->
      (match expect_ident st with
      | "little" -> little := true
      | "big" -> little := false
      | other -> error ~pos:t.pos "expected little/big, found %S" other);
      expect st SEMI
    | IDENT "bank" ->
      let bname = expect_ident st in
      expect st COLON;
      let ty = expect_type st in
      let width = match ty with Tint i -> i.bits | Tfloat b -> b | Tvoid -> error ~pos:t.pos "void bank" in
      expect st LBRACKET;
      let count = Int64.to_int (expect_int st) in
      expect st RBRACKET;
      expect st SEMI;
      banks := { b_name = bname; b_index = !bank_idx; b_width = width; b_count = count } :: !banks;
      incr bank_idx
    | IDENT "reg" ->
      let sname = expect_ident st in
      expect st COLON;
      let ty = expect_type st in
      let width = match ty with Tint i -> i.bits | Tfloat b -> b | Tvoid -> error ~pos:t.pos "void reg" in
      expect st SEMI;
      slots := { s_name = sname; s_index = !slot_idx; s_width = width } :: !slots;
      incr slot_idx
    | other -> error ~pos:t.pos "unexpected %s in arch block" (string_of_token other)
  done;
  expect st RBRACE;
  (name, !wordsize, !little, List.rev !banks, List.rev !slots)

let parse_decode_attrs st =
  let attrs = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).tok with
    | IDENT "ends_block" ->
      ignore (next st);
      attrs := Ends_block :: !attrs
    | IDENT "reads_pc" ->
      ignore (next st);
      attrs := Reads_pc :: !attrs
    | _ -> continue_ := false
  done;
  !attrs

let parse_string (src : string) : arch =
  let st = { toks = Lexer.tokenize src } in
  let a_name, a_wordsize, a_little_endian, a_banks, a_slots = parse_arch st in
  let helpers = ref [] and decodes = ref [] and executes = ref [] in
  while (peek st).tok <> EOF do
    let t = next st in
    match t.tok with
    | IDENT "helper" ->
      let ret = expect_type st in
      let hname = expect_ident st in
      expect st LPAREN;
      let params = ref [] in
      if not (accept st RPAREN) then begin
        let p () =
          let ty = expect_type st in
          let n = expect_ident st in
          (ty, n)
        in
        params := [ p () ];
        while accept st COMMA do
          params := p () :: !params
        done;
        expect st RPAREN
      end;
      let body = parse_block st in
      helpers :=
        { h_name = hname; h_ret = ret; h_params = List.rev !params; h_body = body } :: !helpers
    | IDENT "execute" ->
      expect st LPAREN;
      let xname = expect_ident st in
      expect st RPAREN;
      let body = parse_block st in
      executes := { x_name = xname; x_body = body } :: !executes
    | IDENT "decode" ->
      let dname = expect_ident st in
      let pat = parse_pattern ~pos:t.pos (expect_string st) in
      let d_when =
        if (peek st).tok = IDENT "when" then begin
          ignore (next st);
          expect st LPAREN;
          let e = parse_expr st in
          expect st RPAREN;
          Some e
        end
        else None
      in
      let attrs = parse_decode_attrs st in
      expect st SEMI;
      decodes := { d_name = dname; d_pattern = pat; d_when; d_attrs = attrs } :: !decodes
    | other -> error ~pos:t.pos "unexpected %s at top level" (string_of_token other)
  done;
  {
    a_name;
    a_wordsize;
    a_little_endian;
    a_banks;
    a_slots;
    a_helpers = List.rev !helpers;
    a_decodes = List.rev !decodes;
    a_executes = List.rev !executes;
  }
