(* Type checker for ADL semantic actions.

   Produces a typed AST in which every expression carries its type and all
   conversions are explicit [Cast] nodes, so the SSA builder never has to
   reason about C-style promotions.

   Representation invariant established here and relied upon downstream:
   every value is carried in 64 bits; a value of type uintN is
   zero-extended, a value of type sintN sign-extended.  Arithmetic is
   performed at 64-bit width (operands are promoted); narrowing only happens
   through explicit casts or assignment to a narrower variable. *)

open Ast

type env = {
  arch : arch;
  fields : (string * int) list; (* instruction fields in scope, with widths *)
  mutable vars : (string * ty) list list; (* scope stack *)
  ret : ty; (* return type of enclosing helper, Tvoid in execute *)
}

let push_scope env = env.vars <- [] :: env.vars
let pop_scope env = env.vars <- List.tl env.vars

let declare env pos name ty =
  match env.vars with
  | scope :: rest ->
    if List.mem_assoc name scope then error ~pos "redeclaration of %S" name;
    env.vars <- ((name, ty) :: scope) :: rest
  | [] -> assert false

let lookup env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match List.assoc_opt name scope with Some t -> Some t | None -> go rest)
  in
  go env.vars

let _int_bits = function
  | Tint i -> i.bits
  | Tfloat _ | Tvoid -> invalid_arg "_int_bits"

let is_int = function Tint _ -> true | _ -> false
let is_signed = function Tint i -> i.signed | _ -> false

(* Promote an integer operand to 64-bit width, preserving signedness.  The
   representation invariant makes this cast-free. *)
let promote e =
  match e.ty with
  | Tint i when i.bits < 64 -> { e with e = Cast (Tint { bits = 64; signed = i.signed }, e); ty = Tint { bits = 64; signed = i.signed } }
  | _ -> e

let require_int pos e =
  if not (is_int e.ty) then error ~pos "expected an integer value, found %s" (string_of_ty e.ty)

(* Insert a conversion of [e] to type [to_]; no-op if already that type. *)
let coerce pos to_ e =
  if e.ty = to_ then e
  else
    match (e.ty, to_) with
    | Tint _, Tint _ -> { e with e = Cast (to_, e); ty = to_ }
    | Tfloat a, Tfloat b when a = b -> e
    | _ -> error ~pos "cannot convert %s to %s" (string_of_ty e.ty) (string_of_ty to_)

let rec check_expr env (e : expr) : expr =
  let pos = e.pos in
  match e.e with
  | Int_lit _ -> { e with ty = u64 }
  | Float_lit _ ->
    error ~pos
      "float literals are not supported; express floating-point constants as bit patterns"
  | Var name -> (
    match lookup env name with
    | Some ty -> { e with ty }
    | None -> error ~pos "unknown variable %S" name)
  | Field f ->
    if not (List.mem_assoc f env.fields) then
      error ~pos "unknown instruction field %S (not defined by any decode pattern)" f;
    { e with ty = u64 }
  | Unop (op, a) -> (
    let a = check_expr env a in
    require_int pos a;
    let a = promote a in
    match op with
    | Neg | Not -> { e with e = Unop (op, a); ty = a.ty }
    | Lnot -> { e with e = Unop (Lnot, a); ty = u8 })
  | Binop (op, a, b) -> (
    let a = check_expr env a and b = check_expr env b in
    require_int pos a;
    require_int pos b;
    let a = promote a and b = promote b in
    match op with
    | Add | Sub | Mul | And | Or | Xor ->
      let signed = is_signed a.ty && is_signed b.ty in
      let ty = Tint { bits = 64; signed } in
      { e with e = Binop (op, coerce pos ty a, coerce pos ty b); ty }
    | Div | Rem ->
      let signed = is_signed a.ty && is_signed b.ty in
      let ty = Tint { bits = 64; signed } in
      { e with e = Binop (op, coerce pos ty a, coerce pos ty b); ty }
    | Shl | Shr ->
      (* Shift type follows the left operand; amount is made unsigned. *)
      { e with e = Binop (op, a, coerce pos u64 b); ty = a.ty }
    | Eq | Ne | Lt | Le | Gt | Ge ->
      let signed = is_signed a.ty && is_signed b.ty in
      let ty = Tint { bits = 64; signed } in
      { e with e = Binop (op, coerce pos ty a, coerce pos ty b); ty = u8 }
    | Land | Lor ->
      (* Non-short-circuit: rewritten to bitwise ops over (x != 0). *)
      let to_bool x =
        let zero = { x with e = Int_lit 0L; ty = u64 } in
        { x with e = Binop (Ne, coerce pos u64 x, zero); ty = u8 }
      in
      let bitop = if op = Land then And else Or in
      let a' = promote (to_bool a) and b' = promote (to_bool b) in
      { e with e = Binop (bitop, a', b'); ty = u8 })
  | Cast (ty, a) ->
    let a = check_expr env a in
    require_int pos a;
    if not (is_int ty) then error ~pos "cast target must be an integer type";
    { e with e = Cast (ty, a); ty }
  | Ternary (c, t, f) ->
    let c = check_expr env c in
    require_int pos c;
    let t = promote (check_expr env t) and f = promote (check_expr env f) in
    let signed = is_signed t.ty && is_signed f.ty in
    let ty = Tint { bits = 64; signed } in
    { e with e = Ternary (coerce pos u64 c, coerce pos ty t, coerce pos ty f); ty }
  | Call (name, args) -> check_call env pos name args e

and check_call env pos name args e =
  match Builtins.find name with
  | Some sg ->
    let expected = List.length sg.bi_params in
    if List.length args <> expected then
      error ~pos "builtin %S expects %d argument(s), got %d" name expected (List.length args);
    let args =
      List.map2
        (fun pty arg ->
          if pty == Builtins.bank_arg || pty = Builtins.bank_arg then check_bank_arg env pos arg
          else if pty = Builtins.slot_arg then check_slot_arg env pos arg
          else coerce pos pty (check_expr env arg))
        sg.bi_params args
    in
    { e with e = Call (name, args); ty = sg.bi_ret }
  | None -> (
    match find_helper env.arch name with
    | Some h ->
      if List.length args <> List.length h.h_params then
        error ~pos "helper %S expects %d argument(s), got %d" name (List.length h.h_params)
          (List.length args);
      let args = List.map2 (fun (pty, _) arg -> coerce pos pty (check_expr env arg)) h.h_params args in
      { e with e = Call (name, args); ty = h.h_ret }
    | None -> error ~pos "unknown function %S" name)

(* The bank argument of read/write_register_bank must be a literal bank name;
   it is rewritten to the bank index so later stages need not resolve it. *)
and check_bank_arg env pos arg =
  match arg.e with
  | Var name -> (
    match find_bank env.arch name with
    | Some b -> { arg with e = Int_lit (Int64.of_int b.b_index); ty = u64 }
    | None -> error ~pos "unknown register bank %S" name)
  | _ -> error ~pos "register bank argument must be a bank name"

and check_slot_arg env pos arg =
  match arg.e with
  | Var name -> (
    match find_slot env.arch name with
    | Some s -> { arg with e = Int_lit (Int64.of_int s.s_index); ty = u64 }
    | None -> error ~pos "unknown register %S" name)
  | _ -> error ~pos "register argument must be a register name"

let dummy_pos = { line = 0; col = 0 }

let rec check_stmt env (s : stmt) : stmt =
  match s with
  | Decl (ty, name, init) ->
    if not (is_int ty) then error ~pos:dummy_pos "variables must have integer type (%s)" name;
    let init = Option.map (fun e -> coerce e.pos ty (check_expr env e)) init in
    declare env dummy_pos name ty;
    Decl (ty, name, init)
  | Assign (name, e) -> (
    match lookup env name with
    | Some ty ->
      let e = check_expr env e in
      Assign (name, coerce e.pos ty e)
    | None -> error ~pos:e.pos "assignment to undeclared variable %S" name)
  | Expr e ->
    let e' = check_expr env e in
    (match e'.e with
    | Call (name, _) -> (
      match Builtins.find name with
      | Some { bi_kind = Effect | Volatile; _ } -> ()
      | Some _ -> error ~pos:e.pos "result of pure builtin %S is discarded" name
      | None -> () (* helper calls for effect are fine *))
    | _ -> error ~pos:e.pos "expression statement has no effect");
    Expr e'
  | If (c, t, f) ->
    let c = check_expr env c in
    require_int c.pos c;
    push_scope env;
    let t = List.map (check_stmt env) t in
    pop_scope env;
    push_scope env;
    let f = List.map (check_stmt env) f in
    pop_scope env;
    If (coerce c.pos u64 (promote c), t, f)
  | While (c, body) ->
    let c = check_expr env c in
    require_int c.pos c;
    push_scope env;
    let body = List.map (check_stmt env) body in
    pop_scope env;
    While (coerce c.pos u64 (promote c), body)
  | Return None ->
    if env.ret <> Tvoid then error ~pos:dummy_pos "missing return value";
    Return None
  | Return (Some e) ->
    if env.ret = Tvoid then error ~pos:e.pos "return with a value in a void context";
    let e = check_expr env e in
    Return (Some (coerce e.pos env.ret e))
  | Block body ->
    push_scope env;
    let body = List.map (check_stmt env) body in
    pop_scope env;
    Block body

(* Fields available to an execute action: the union over all decode entries
   that dispatch to it, plus engine-provided pseudo-fields.  __el is the
   guest privilege level at translation time: translations specialize on
   it and the code cache keys on it. *)
let pseudo_fields = [ ("__el", 2) ]

let fields_of_execute arch xname =
  pseudo_fields
  @ List.concat_map
      (fun d ->
        if d.d_name = xname then
          List.filter_map (function Fld (n, w) -> Some (n, w) | Bit _ -> None) d.d_pattern
        else [])
      arch.a_decodes

let check_pattern d =
  let total = List.fold_left (fun acc -> function Bit _ -> acc + 1 | Fld (_, w) -> acc + w) 0 d.d_pattern in
  if total <> 32 then
    error ~pos:dummy_pos "decode pattern for %S covers %d bits, expected 32" d.d_name total;
  let names = List.filter_map (function Fld (n, _) -> Some n | Bit _ -> None) d.d_pattern in
  let rec dup = function
    | [] -> ()
    | n :: rest -> if List.mem n rest then error ~pos:dummy_pos "duplicate field %S in %S" n d.d_name else dup rest
  in
  dup names

(* Check a full architecture description; returns it with all bodies
   type-annotated and all conversions explicit. *)
let check (arch : arch) : arch =
  List.iter check_pattern arch.a_decodes;
  (* Every decode must dispatch to an existing execute. *)
  List.iter
    (fun d ->
      if find_execute arch d.d_name = None then
        error ~pos:dummy_pos "decode %S has no matching execute action" d.d_name)
    arch.a_decodes;
  let check_helper h =
    let env = { arch; fields = []; vars = [ List.map (fun (t, n) -> (n, t)) h.h_params ]; ret = h.h_ret } in
    { h with h_body = List.map (check_stmt env) h.h_body }
  in
  let helpers = List.map check_helper arch.a_helpers in
  let arch = { arch with a_helpers = helpers } in
  let check_exec x =
    let fields = fields_of_execute arch x.x_name in
    let env = { arch; fields; vars = [ [] ]; ret = Tvoid } in
    { x with x_body = List.map (check_stmt env) x.x_body }
  in
  let executes = List.map check_exec arch.a_executes in
  (* Type-check decode predicates over their own fields.  In `when` clauses
     fields are referenced as bare identifiers, so rewrite Var -> Field. *)
  let check_decode d =
    let fields = List.filter_map (function Fld (n, w) -> Some (n, w) | Bit _ -> None) d.d_pattern in
    let rec to_fields e =
      match e.e with
      | Var name when List.mem_assoc name fields -> { e with e = Field name }
      | Var _ | Int_lit _ | Float_lit _ | Field _ -> e
      | Binop (op, a, b) -> { e with e = Binop (op, to_fields a, to_fields b) }
      | Unop (op, a) -> { e with e = Unop (op, to_fields a) }
      | Cast (t, a) -> { e with e = Cast (t, to_fields a) }
      | Call (n, args) -> { e with e = Call (n, List.map to_fields args) }
      | Ternary (c, t, f) -> { e with e = Ternary (to_fields c, to_fields t, to_fields f) }
    in
    let env = { arch; fields; vars = [ [] ]; ret = Tvoid } in
    { d with d_when = Option.map (fun e -> check_expr env (to_fields e)) d.d_when }
  in
  { arch with a_executes = executes; a_decodes = List.map check_decode arch.a_decodes }
