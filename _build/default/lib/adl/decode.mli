(** Decoder generation from ADL decode patterns (paper Sec. 2.3.1).

    The offline stage compiles the per-instruction bit patterns into a
    decision tree over discriminating fixed bits (after Krishna & Austin,
    and Theiling), so online decoding performs a handful of mask/compare
    steps.  Overlapping patterns are resolved by their [when] predicates
    in declaration order. *)

open Ast

(** A compiled decode entry: the source declaration plus its fixed-bit
    mask/value and field extraction plan. *)
type entry = {
  de : decode;
  mask : int64;
  value : int64;
  fields : (string * int * int) list; (** name, low bit, width *)
}

(** A decoded instruction instance. *)
type decoded = {
  name : string;  (** execute-action name *)
  raw : int64;
  field_values : (string * int64) list;
  ends_block : bool;  (** terminates the translation block *)
}

(** Field accessor.
    @raise Invalid_argument if the instruction has no such field. *)
val field : decoded -> string -> int64

type tree =
  | Leaf of entry list
  | Switch of int64 * (int64, tree) Hashtbl.t * entry list

(** Worst-case number of mask/compare steps (bench statistic). *)
val depth : tree -> int

type t = {
  tree : tree;
  entries : entry list;
}

(** Compile the decoder for an architecture. *)
val of_arch : arch -> t

(** Decode one 32-bit word; [None] means an undefined instruction. *)
val decode : t -> int64 -> decoded option
