lib/adl/ast.ml: List Printf
