lib/adl/typecheck.mli: Ast
