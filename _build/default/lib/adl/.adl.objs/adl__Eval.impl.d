lib/adl/eval.ml: Ast Dbt_util F32 F64 Int64 List Sf_core Sf_types Softfloat
