lib/adl/parser.ml: Ast Int64 Lexer List String
