lib/adl/decode.ml: Ast Dbt_util Eval Hashtbl Int64 List Printf
