lib/adl/typecheck.ml: Ast Builtins Int64 List Option
