lib/adl/builtins.ml: Ast List
