lib/adl/eval.mli: Ast
