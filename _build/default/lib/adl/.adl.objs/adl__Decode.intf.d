lib/adl/decode.mli: Ast Hashtbl
