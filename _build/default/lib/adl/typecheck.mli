(** Type checker for ADL semantic actions.

    Produces a typed AST in which every expression carries its type and
    all conversions are explicit [Cast] nodes, so the SSA builder never
    reasons about C-style promotions.

    Representation invariant established here and relied on downstream:
    every value is carried in 64 bits; uintN values are zero-extended,
    sintN values sign-extended.  Arithmetic happens at 64-bit width;
    narrowing only through explicit casts or assignment to a narrower
    variable. *)

(** Engine-provided pseudo-fields available to every execute action
    ([__el]: guest privilege level at translation time). *)
val pseudo_fields : (string * int) list

(** Fields visible to an execute action: the union over its decode
    entries, plus {!pseudo_fields}. *)
val fields_of_execute : Ast.arch -> string -> (string * int) list

(** Check a full architecture description; returns it with all bodies
    type-annotated and all conversions explicit.
    @raise Ast.Adl_error on any error. *)
val check : Ast.arch -> Ast.arch
