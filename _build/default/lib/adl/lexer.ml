(* Hand-written lexer for the ADL. *)

type token =
  | IDENT of string
  | INT of int64
  | FLOAT of float
  | STRING of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | COLON | QUESTION
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LTLT | GTGT
  | EQEQ | NEQ | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE
  | EOF

type lexed = { tok : token; pos : Ast.pos }

let keywords = [] (* keywords are recognised contextually by the parser *)

let _ = keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let emit tok pos = toks := { tok; pos } :: !toks in
  while !i < n do
    let pos = { Ast.line = !line; col = !col } in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let fin = ref false in
      while not !fin do
        if !i >= n then Ast.error ~pos "unterminated comment";
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          fin := true
        end
        else advance ()
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      emit (IDENT (String.sub src start (!i - start))) pos
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance ();
        advance ();
        while !i < n && is_hex src.[!i] do
          advance ()
        done;
        (* Int64.of_string wraps out-of-range hex, so the full unsigned
           64-bit range is accepted. *)
        emit (INT (Int64.of_string (String.sub src start (!i - start)))) pos
      end
      else begin
        while !i < n && is_digit src.[!i] do
          advance ()
        done;
        if !i < n && src.[!i] = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
        then begin
          advance ();
          while !i < n && is_digit src.[!i] do
            advance ()
          done;
          if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
            advance ();
            if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance ();
            while !i < n && is_digit src.[!i] do
              advance ()
            done
          end;
          emit (FLOAT (float_of_string (String.sub src start (!i - start)))) pos
        end
        else emit (INT (Int64.of_string (String.sub src start (!i - start)))) pos
      end
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      while !i < n && src.[!i] <> '"' do
        Buffer.add_char buf src.[!i];
        advance ()
      done;
      if !i >= n then Ast.error ~pos "unterminated string";
      advance ();
      emit (STRING (Buffer.contents buf)) pos
    end
    else begin
      let two tk = advance (); advance (); emit tk pos in
      let one tk = advance (); emit tk pos in
      match (c, peek 1) with
      | '<', Some '<' -> two LTLT
      | '>', Some '>' -> two GTGT
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NEQ
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '&', Some '&' -> two AMPAMP
      | '|', Some '|' -> two PIPEPIPE
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '.', _ -> one DOT
      | ':', _ -> one COLON
      | '?', _ -> one QUESTION
      | '=', _ -> one ASSIGN
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '!', _ -> one BANG
      | '<', _ -> one LT
      | '>', _ -> one GT
      | _ -> Ast.error ~pos "unexpected character %C" c
    end
  done;
  List.rev ({ tok = EOF; pos = { Ast.line = !line; col = !col } } :: !toks)

let string_of_token = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT v -> Printf.sprintf "integer %Ld" v
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | COLON -> ":" | QUESTION -> "?"
  | ASSIGN -> "=" | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | PERCENT -> "%" | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | BANG -> "!" | LTLT -> "<<" | GTGT -> ">>" | EQEQ -> "==" | NEQ -> "!="
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | AMPAMP -> "&&"
  | PIPEPIPE -> "||" | EOF -> "end of input"
