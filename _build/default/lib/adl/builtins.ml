(* Builtin functions available to ADL instruction semantics.

   The paper's domain-specific SSA provides "operations for reading
   architectural registers, performing standard arithmetic ..., memory and
   peripheral device access ..., and a variety of built-in functions for
   common architectural behaviors (such as flag calculations and floating
   point NaN/Infinity comparisons)". *)

open Ast

(* How an operation interacts with guest state; drives both dead-code
   elimination (offline) and DAG collapse (online).
   - Pure: no state access; foldable when arguments are fixed.
   - Read: reads guest state; removable when unused, never foldable.
   - Volatile: value-producing but with possible side effects (memory reads
     can fault or hit MMIO) - never removed.
   - Effect: statement-like mutation of guest state. *)
type kind = Pure | Read | Volatile | Effect

type signature = {
  bi_name : string;
  bi_params : ty list;
  bi_ret : ty;
  bi_kind : kind;
}

(* Pseudo-type markers used by special forms: the first argument of
   read_register_bank etc. is a bank or slot *name*, checked separately. *)
let bank_arg = Tint { bits = 0; signed = false }
let slot_arg = Tint { bits = 1; signed = false }

let table : signature list =
  let p name params ret = { bi_name = name; bi_params = params; bi_ret = ret; bi_kind = Pure } in
  let r name params ret = { bi_name = name; bi_params = params; bi_ret = ret; bi_kind = Read } in
  let v name params ret = { bi_name = name; bi_params = params; bi_ret = ret; bi_kind = Volatile } in
  let e name params = { bi_name = name; bi_params = params; bi_ret = Tvoid; bi_kind = Effect } in
  [
    (* --- pure bit manipulation ------------------------------------- *)
    p "sign_extend" [ u64; u64 ] u64;
    p "clz32" [ u64 ] u64;
    p "clz64" [ u64 ] u64;
    p "popcount64" [ u64 ] u64;
    p "ror32" [ u64; u64 ] u64;
    p "ror64" [ u64; u64 ] u64;
    p "rbit32" [ u64 ] u64;
    p "rbit64" [ u64 ] u64;
    p "rev16" [ u64 ] u64;
    p "rev32" [ u64 ] u64;
    p "rev64" [ u64 ] u64;
    p "umulh64" [ u64; u64 ] u64;
    p "smulh64" [ u64; u64 ] u64;
    (* ARM-style division: x/0 = 0, INT_MIN / -1 = INT_MIN *)
    p "udiv64" [ u64; u64 ] u64;
    p "sdiv64" [ u64; u64 ] u64;
    p "udiv32" [ u64; u64 ] u64;
    p "sdiv32" [ u64; u64 ] u64;
    p "select" [ u64; u64; u64 ] u64;
    (* --- flag calculation ------------------------------------------ *)
    (* Return the NZCV nibble (N=8, Z=4, C=2, V=1) of a + b + cin. *)
    p "add_flags64" [ u64; u64; u64 ] u64;
    p "add_flags32" [ u64; u64; u64 ] u64;
    p "adc64" [ u64; u64; u64 ] u64;
    p "adc32" [ u64; u64; u64 ] u64;
    p "logic_flags64" [ u64 ] u64;
    p "logic_flags32" [ u64 ] u64;
    (* --- floating point (operands/results are bit patterns) --------- *)
    p "fp32_add" [ u64; u64 ] u64;
    p "fp32_sub" [ u64; u64 ] u64;
    p "fp32_mul" [ u64; u64 ] u64;
    p "fp32_div" [ u64; u64 ] u64;
    p "fp32_sqrt" [ u64 ] u64;
    p "fp32_min" [ u64; u64 ] u64;
    p "fp32_max" [ u64; u64 ] u64;
    p "fp64_add" [ u64; u64 ] u64;
    p "fp64_sub" [ u64; u64 ] u64;
    p "fp64_mul" [ u64; u64 ] u64;
    p "fp64_div" [ u64; u64 ] u64;
    p "fp64_sqrt" [ u64 ] u64;
    p "fp64_min" [ u64; u64 ] u64;
    p "fp64_max" [ u64; u64 ] u64;
    (* NZCV nibble of an IEEE comparison, ARM FCMP semantics. *)
    p "fp32_cmp_flags" [ u64; u64 ] u64;
    p "fp64_cmp_flags" [ u64; u64 ] u64;
    p "fp32_to_fp64" [ u64 ] u64;
    p "fp64_to_fp32" [ u64 ] u64;
    p "fp64_to_sint64" [ u64 ] u64;
    p "fp64_to_uint64" [ u64 ] u64;
    p "fp32_to_sint32" [ u64 ] u64;
    p "sint64_to_fp64" [ u64 ] u64;
    p "uint64_to_fp64" [ u64 ] u64;
    p "sint32_to_fp32" [ u64 ] u64;
    p "sint64_to_fp32" [ u64 ] u64;
    p "fp64_muladd" [ u64; u64; u64 ] u64;
    (* --- guest state access ----------------------------------------- *)
    r "read_register_bank" [ bank_arg; u64 ] u64;
    r "read_register" [ slot_arg ] u64;
    r "read_pc" [] u64;
    r "read_coproc" [ u64 ] u64;
    v "mem_read_8" [ u64 ] u64;
    v "mem_read_16" [ u64 ] u64;
    v "mem_read_32" [ u64 ] u64;
    v "mem_read_64" [ u64 ] u64;
    (* --- guest state mutation ---------------------------------------- *)
    e "write_register_bank" [ bank_arg; u64; u64 ];
    e "write_register" [ slot_arg; u64 ];
    e "write_pc" [ u64 ];
    e "write_coproc" [ u64; u64 ];
    e "mem_write_8" [ u64; u64 ];
    e "mem_write_16" [ u64; u64 ];
    e "mem_write_32" [ u64; u64 ];
    e "mem_write_64" [ u64; u64 ];
    e "take_exception" [ u64; u64 ];
    e "eret" [];
    e "tlb_flush" [];
    e "tlb_flush_page" [ u64 ];
    e "halt" [];
    e "wfi" [];
    e "barrier" [];
  ]

let find name = List.find_opt (fun s -> s.bi_name = name) table

(* Builtins that transfer control / terminate instruction execution. *)
let terminates = function
  | "take_exception" | "eret" | "halt" -> true
  | _ -> false
