(* Decoder generation from ADL decode patterns.

   The offline stage turns the per-instruction bit patterns into a decision
   tree over the discriminating fixed bits (in the spirit of Krishna &
   Austin, and Theiling, cited by the paper), so online decoding needs only
   a handful of mask/compare steps per instruction. *)

open Ast
module Bits = Dbt_util.Bits

(* Compiled form of one decode entry. *)
type entry = {
  de : decode;
  mask : int64; (* fixed bits of the 32-bit word *)
  value : int64;
  fields : (string * int * int) list; (* name, lo, width *)
}

type decoded = {
  name : string;
  raw : int64;
  field_values : (string * int64) list;
  ends_block : bool;
}

let field decoded name =
  match List.assoc_opt name decoded.field_values with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "instruction %s has no field %s" decoded.name name)

(* Patterns are written MSB-first; walk them computing bit positions. *)
let compile_entry (d : decode) : entry =
  let mask = ref 0L and value = ref 0L and fields = ref [] in
  let pos = ref 32 in
  List.iter
    (fun tok ->
      match tok with
      | Bit b ->
        decr pos;
        mask := Int64.logor !mask (Bits.shl 1L !pos);
        if b then value := Int64.logor !value (Bits.shl 1L !pos)
      | Fld (name, w) ->
        pos := !pos - w;
        fields := (name, !pos, w) :: !fields)
    d.d_pattern;
  assert (!pos = 0);
  { de = d; mask = !mask; value = !value; fields = List.rev !fields }

type tree =
  | Leaf of entry list (* tried in declaration order (for `when` overlap) *)
  | Switch of int64 * (int64, tree) Hashtbl.t * entry list
    (* discriminating mask, subtree per discriminant value, and entries
       whose own mask does not cover the discriminant (tried last) *)

(* Build the decision tree: at each node, switch on the bits that every
   remaining candidate fixes (beyond those already consumed). *)
let rec build (entries : entry list) (consumed : int64) : tree =
  match entries with
  | [] | [ _ ] -> Leaf entries
  | _ ->
    let common =
      List.fold_left (fun acc e -> Int64.logand acc e.mask) (-1L) entries
      |> fun m -> Int64.logand m (Int64.lognot consumed)
    in
    if common = 0L then Leaf entries
    else begin
      let groups : (int64, entry list) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun e ->
          let key = Int64.logand e.value common in
          Hashtbl.replace groups key (e :: (try Hashtbl.find groups key with Not_found -> [])))
        entries;
      let subtrees = Hashtbl.create 16 in
      Hashtbl.iter
        (fun key group -> Hashtbl.replace subtrees key (build (List.rev group) (Int64.logor consumed common)))
        groups;
      Switch (common, subtrees, [])
    end

(* Number of mask/compare steps for the statistics in the bench harness. *)
let rec depth = function
  | Leaf es -> List.length es
  | Switch (_, subs, _) -> 1 + Hashtbl.fold (fun _ t acc -> max acc (depth t)) subs 0

type t = {
  tree : tree;
  entries : entry list;
}

let of_arch (arch : arch) : t =
  let entries = List.map compile_entry arch.a_decodes in
  { tree = build entries 0L; entries }

let extract_fields (e : entry) word =
  List.map (fun (name, lo, w) -> (name, Bits.extract word ~lo ~len:w)) e.fields

let matches (e : entry) word =
  Int64.logand word e.mask = e.value
  &&
  match e.de.d_when with
  | None -> true
  | Some pred ->
    let fields = extract_fields e word in
    Eval.expr ~field:(fun n -> List.assoc n fields) pred <> 0L

let to_decoded (e : entry) word =
  {
    name = e.de.d_name;
    raw = word;
    field_values = extract_fields e word;
    ends_block = List.mem Ends_block e.de.d_attrs;
  }

(* Decode one 32-bit instruction word. *)
let decode (t : t) (word : int64) : decoded option =
  let word = Bits.zero_extend word ~width:32 in
  let rec go = function
    | Leaf entries -> (
      match List.find_opt (fun e -> matches e word) entries with
      | Some e -> Some (to_decoded e word)
      | None -> None)
    | Switch (mask, subs, rest) -> (
      let key = Int64.logand word mask in
      match Hashtbl.find_opt subs key with
      | Some sub -> (
        match go sub with
        | Some _ as r -> r
        | None -> (match List.find_opt (fun e -> matches e word) rest with
                   | Some e -> Some (to_decoded e word)
                   | None -> None))
      | None -> (
        match List.find_opt (fun e -> matches e word) rest with
        | Some e -> Some (to_decoded e word)
        | None -> None))
  in
  go t.tree
