(** Evaluation of *fixed* ADL expressions and pure builtins over concrete
    64-bit values.

    The single implementation of operator semantics shared by the
    decoder's [when] predicates, the offline constant folder, the online
    generator's fixed-operation evaluation, and the softfloat helper
    dispatch — so translation-time folding, interpretation and helper
    calls are bit-identical by construction. *)

(** Normalize a value to a type's representation invariant (uintN
    zero-extended, sintN sign-extended in 64 bits). *)
val normalize : Ast.ty -> int64 -> int64

(** Operator semantics over operands already normalized to the unified
    64-bit operand type; [signed] is that type's signedness. *)
val binop : Ast.binop -> signed:bool -> int64 -> int64 -> int64

val unop : Ast.unop -> int64 -> int64

(** Evaluate a pure builtin; [None] if the name is not a foldable
    builtin.  FP builtins are evaluated with softfloat (ARM semantics), so
    offline folding of FP constants is bit-accurate. *)
val builtin : string -> int64 list -> int64 option

(** Evaluate a typed, fixed expression; [field] resolves instruction
    fields.
    @raise Ast.Adl_error if the expression contains anything dynamic. *)
val expr : field:(string -> int64) -> Ast.expr -> int64
