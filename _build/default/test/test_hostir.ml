(* Host IR backend tests: encoder roundtrip, register allocator
   correctness (differential against a virtual-register interpreter), DAG
   emitter behaviours (CSE, specialization, hazards, FP fix-up). *)

open Hostir
module Hir = Hostir.Hir
module Machine = Hvm.Machine

let mk_ctx () =
  let machine = Machine.create ~mem_size:(4 * 1024 * 1024) () in
  Exec.create ~machine ~helpers:[||] ~fault_handler:(fun _ _ _ ~bits:_ ~value:_ -> Exec.Retry)

(* Run raw IR through the full backend: regalloc -> encode -> decode ->
   execute; returns the executor context for inspection. *)
let run_ir instrs =
  let ra = Regalloc.run (Array.of_list (instrs @ [ Hir.Exit 0 ])) in
  let program = Encode.decode_program ~n_slots:ra.Regalloc.n_slots (Encode.encode ra) in
  let ctx = mk_ctx () in
  ignore (Exec.run ctx program);
  ctx

(* --- encoder -------------------------------------------------------------- *)

let test_encode_roundtrip_straightline () =
  let open Hir in
  let instrs =
    [|
      Mov (Preg 0, Imm 5L);
      Alu (Aadd, Preg 1, Preg 0, Imm 1000L);
      Alu (Amul, Preg 2, Preg 1, Imm (-3L));
      Setcc (Cslt, Preg 3, Preg 2, Imm 0L);
      Cmov (Preg 4, Preg 3, Preg 1, Preg 2);
      Ext (true, 32, Preg 5, Preg 2);
      Bit1 (Bclz64, Preg 6, Preg 1);
      Fp2 (Fadd64, Preg 7, Preg 0, Preg 1);
      Strf (16, Preg 4);
      Ldrf (Preg 8, 16);
      Inc_pc 4;
      Call (3, [| Preg 0; Imm 7L |], Some (Preg 9));
      Mem_st (64, Imm 128L, Preg 1);
      Exit 2;
    |]
  in
  let ra = { Regalloc.instrs; dead = Array.make (Array.length instrs) false; n_slots = 0; n_spilled = 0; n_dead = 0 } in
  let p = Encode.decode_program (Encode.encode ra) in
  Alcotest.(check int) "instruction count" (Array.length instrs) (Array.length p.Encode.code);
  Array.iteri
    (fun i orig -> Alcotest.(check string) (Printf.sprintf "instr %d" i) (Hir.to_string orig) (Hir.to_string p.Encode.code.(i)))
    instrs

let test_encode_jumps () =
  let open Hir in
  (* A loop: count down from 5, accumulate in preg1, store to regfile. *)
  let instrs =
    [|
      Mov (Preg 0, Imm 5L);
      Mov (Preg 1, Imm 0L);
      Label 0;
      Alu (Aadd, Preg 1, Preg 1, Preg 0);
      Alu (Asub, Preg 0, Preg 0, Imm 1L);
      Setcc (Cne, Preg 2, Preg 0, Imm 0L);
      Br (Preg 2, 0, 1);
      Label 1;
      Strf (0, Preg 1);
      Exit 0;
    |]
  in
  let ra = { Regalloc.instrs; dead = Array.make (Array.length instrs) false; n_slots = 0; n_spilled = 0; n_dead = 0 } in
  let p = Encode.decode_program (Encode.encode ra) in
  let ctx = mk_ctx () in
  ignore (Exec.run ctx p);
  Alcotest.(check int64) "loop result 15" 15L (Exec.rf_read ctx 0)

(* --- register allocator ------------------------------------------------------ *)

(* Interpreter over virtual registers, the oracle for the allocator. *)
let interp_vregs (instrs : Hir.instr list) n_vregs =
  let open Hir in
  let vr = Array.make n_vregs 0L in
  let rf = Array.make 64 0L in
  let rd = function Vreg v -> vr.(v) | Imm i -> i | _ -> assert false in
  List.iter
    (fun i ->
      match i with
      | Mov (Vreg d, s) -> vr.(d) <- rd s
      | Alu (op, Vreg d, a, b) ->
        let a = rd a and b = rd b in
        vr.(d) <-
          (match op with
          | Aadd -> Int64.add a b
          | Asub -> Int64.sub a b
          | Aand -> Int64.logand a b
          | Aor -> Int64.logor a b
          | Axor -> Int64.logxor a b
          | Ashl -> Dbt_util.Bits.shl a (Int64.to_int (Int64.logand b 63L))
          | Ashr -> Dbt_util.Bits.shr a (Int64.to_int (Int64.logand b 63L))
          | Asar -> Dbt_util.Bits.sar a (Int64.to_int (Int64.logand b 63L))
          | Amul -> Int64.mul a b)
      | Setcc (c, Vreg d, a, b) -> vr.(d) <- (if Exec.cond_holds c (rd a) (rd b) then 1L else 0L)
      | Cmov (Vreg d, c, a, b) -> vr.(d) <- (if rd c <> 0L then rd a else rd b)
      | Ext (signed, bits, Vreg d, s) ->
        vr.(d) <-
          (if signed then Dbt_util.Bits.sign_extend (rd s) ~width:bits
           else Dbt_util.Bits.zero_extend (rd s) ~width:bits)
      | Strf (off, s) -> rf.(off / 8) <- rd s
      | _ -> assert false)
    instrs;
  rf

let gen_straightline =
  (* Random straight-line program over [nv] vregs with all defs before
     uses; ends by storing every vreg to the register file. *)
  QCheck2.Gen.(
    let* nv = int_range 4 40 in
    let* seed = int64 in
    return (nv, seed))

let prop_regalloc_matches_vreg_interp =
  QCheck2.Test.make ~name:"register allocation preserves semantics" ~count:120 gen_straightline
    (fun (nv, seed) ->
      let open Hir in
      let prng = Dbt_util.Prng.create (if seed = 0L then 1L else seed) in
      let instrs = ref [] in
      let emit i = instrs := i :: !instrs in
      for v = 0 to nv - 1 do
        let operand () =
          if v > 0 && Dbt_util.Prng.bool prng then Vreg (Dbt_util.Prng.int prng v)
          else Imm (Int64.of_int (Dbt_util.Prng.int prng 1000 - 500))
        in
        match Dbt_util.Prng.int prng 6 with
        | 0 -> emit (Mov (Vreg v, operand ()))
        | 1 -> emit (Alu (Aadd, Vreg v, operand (), operand ()))
        | 2 -> emit (Alu (Axor, Vreg v, operand (), operand ()))
        | 3 -> emit (Alu (Amul, Vreg v, operand (), operand ()))
        | 4 -> emit (Setcc (Cslt, Vreg v, operand (), operand ()))
        | _ -> emit (Cmov (Vreg v, operand (), operand (), operand ()))
      done;
      for v = 0 to nv - 1 do
        emit (Strf (8 * v, Vreg v))
      done;
      let prog = List.rev !instrs in
      let expected = interp_vregs prog nv in
      let ctx = run_ir prog in
      let ok = ref true in
      for v = 0 to nv - 1 do
        if Exec.rf_read ctx (8 * v) <> expected.(v) then ok := false
      done;
      !ok)

let test_regalloc_spills_under_pressure () =
  (* More simultaneously-live values than physical registers must spill,
     and still compute correctly. *)
  let open Hir in
  let n = 30 in
  let defs = List.init n (fun v -> Mov (Vreg v, Imm (Int64.of_int (v * 11)))) in
  let uses = List.init n (fun v -> Strf (8 * v, Vreg v)) in
  let ra = Regalloc.run (Array.of_list (defs @ uses @ [ Exit 0 ])) in
  Alcotest.(check bool) "spilled something" true (ra.Regalloc.n_spilled > 0);
  let p = Encode.decode_program ~n_slots:ra.Regalloc.n_slots (Encode.encode ra) in
  let ctx = mk_ctx () in
  ignore (Exec.run ctx p);
  for v = 0 to n - 1 do
    Alcotest.(check int64) (Printf.sprintf "v%d" v) (Int64.of_int (v * 11)) (Exec.rf_read ctx (8 * v))
  done

let test_regalloc_dead_marking () =
  let open Hir in
  let instrs =
    [| Mov (Vreg 0, Imm 1L); Mov (Vreg 1, Imm 2L); Strf (0, Vreg 0); Exit 0 |]
  in
  let ra = Regalloc.run instrs in
  Alcotest.(check int) "one dead instr" 1 ra.Regalloc.n_dead;
  Alcotest.(check bool) "the unused def is dead" true ra.Regalloc.dead.(1)

(* --- DAG emitter --------------------------------------------------------------- *)

let dag_config : Dag.config =
  {
    Dag.bank_offset = (fun ~bank ~index -> (bank * 256) + (8 * index));
    slot_offset = (fun s -> 512 + (8 * s));
    lower_intrinsic = (fun _ -> Dag.L_inline);
    effect_helper = (fun _ -> 0);
    coproc_read_helper = 0;
    coproc_write_helper = 0;
    split_va_check = false;
    as_switch_helper = 0;
  }

let count_instrs pred instrs = Array.fold_left (fun n i -> if pred i then n + 1 else n) 0 instrs

let test_dag_cse () =
  let d = Dag.create dag_config in
  let em = Dag.emitter d in
  let open Ssa.Emitter in
  (* Two reads of the same register feeding two stores: one load emitted. *)
  let a = em.load_bankreg ~bank:0 ~index:1 in
  let b = em.load_bankreg ~bank:0 ~index:1 in
  em.store_bankreg ~bank:0 ~index:2 (em.binary Adl.Ast.Add ~signed:false a b);
  Dag.raw d (Hir.Exit 0);
  let instrs = Dag.finish d in
  Alcotest.(check int) "single load" 1
    (count_instrs (function Hir.Ldrf _ -> true | _ -> false) instrs)

let test_dag_pc_specialization () =
  let d = Dag.create dag_config in
  let em = Dag.emitter d in
  let open Ssa.Emitter in
  (* store_pc (pc + 12) must collapse to a single Inc_pc (Fig. 9d). *)
  let pc = em.load_pc () in
  em.store_pc (em.binary Adl.Ast.Add ~signed:false pc (em.const 12L));
  Dag.raw d (Hir.Exit 0);
  let instrs = Dag.finish d in
  Alcotest.(check int) "inc_pc emitted" 1
    (count_instrs (function Hir.Inc_pc 12 -> true | _ -> false) instrs);
  Alcotest.(check int) "no load_pc" 0
    (count_instrs (function Hir.Load_pc _ -> true | _ -> false) instrs)

let test_dag_store_load_hazard () =
  let d = Dag.create dag_config in
  let em = Dag.emitter d in
  let open Ssa.Emitter in
  (* Read r1 lazily, overwrite r1, then consume the old value: the load
     must have been forced before the store. *)
  let old = em.load_bankreg ~bank:0 ~index:1 in
  em.store_bankreg ~bank:0 ~index:1 (em.const 99L);
  em.store_bankreg ~bank:0 ~index:2 old;
  Dag.raw d (Hir.Exit 0);
  let ra = Regalloc.run (Dag.finish d) in
  let p = Encode.decode_program ~n_slots:ra.Regalloc.n_slots (Encode.encode ra) in
  let ctx = mk_ctx () in
  Exec.rf_write ctx 8 42L; (* r1 = 42 *)
  ignore (Exec.run ctx p);
  Alcotest.(check int64) "r1 overwritten" 99L (Exec.rf_read ctx 8);
  Alcotest.(check int64) "r2 got the pre-store value" 42L (Exec.rf_read ctx 16)

let test_dag_sqrt_fixup () =
  (* Table 2: guest sees the ARM-style +NaN even though the host sqrt
     produces the x86 -NaN; NaN inputs propagate untouched. *)
  let run_sqrt input =
    let d = Dag.create dag_config in
    let em = Dag.emitter d in
    let open Ssa.Emitter in
    em.store_bankreg ~bank:0 ~index:0 (em.intrinsic "fp64_sqrt" [ em.const input ]);
    Dag.raw d (Hir.Exit 0);
    let ra = Regalloc.run (Dag.finish d) in
    let p = Encode.decode_program ~n_slots:ra.Regalloc.n_slots (Encode.encode ra) in
    let ctx = mk_ctx () in
    ignore (Exec.run ctx p);
    Exec.rf_read ctx 0
  in
  Alcotest.(check int64) "sqrt(-0.5) = +default NaN" 0x7FF8000000000000L
    (run_sqrt (Int64.bits_of_float (-0.5)));
  Alcotest.(check int64) "sqrt(4.0) = 2.0" (Int64.bits_of_float 2.0)
    (run_sqrt (Int64.bits_of_float 4.0));
  Alcotest.(check int64) "sqrt(-nan) propagates" 0xFFF8000000000000L (run_sqrt 0xFFF8000000000000L);
  Alcotest.(check int64) "sqrt(-0.0) = -0.0" (Int64.bits_of_float (-0.0))
    (run_sqrt (Int64.bits_of_float (-0.0)))

let test_gen_with_dag_matches_interp () =
  (* The generator over the DAG backend must agree with the direct SSA
     interpreter on the toy architecture. *)
  let model = Lazy.force Toy_arch.model in
  let prng = Dbt_util.Prng.create 7L in
  for _ = 1 to 60 do
    let r n = Dbt_util.Prng.int prng n in
    let word =
      match r 5 with
      | 0 -> Toy_arch.enc_add ~rd:(r 16) ~ra:(r 16) ~rb:(r 16) ~imm:(r 4096)
      | 1 -> Toy_arch.enc_addi ~rd:(r 16) ~ra:(r 16) ~imm:(r 65536)
      | 2 -> Toy_arch.enc_csel ~rd:(r 16) ~ra:(r 16) ~rb:(r 16) ~cond:(r 16)
      | 3 -> Toy_arch.enc_shl ~rd:(r 16) ~ra:(r 16) ~sh:(r 128)
      | _ -> Toy_arch.enc_loopy ~rd:(r 16) ~n:(r 16)
    in
    let d = Option.get (Ssa.Offline.decode model word) in
    let action = Ssa.Offline.action model d.Adl.Decode.name in
    let field n = List.assoc n d.Adl.Decode.field_values in
    (* oracle *)
    let st = Toy_arch.fresh_state () in
    for i = 0 to 15 do
      st.Toy_arch.gpr.(i) <- Dbt_util.Prng.int64 prng
    done;
    st.Toy_arch.slots.(1) <- Int64.of_int (r 16);
    let expected = Toy_arch.clone_state st in
    Ssa.Interp.run (Toy_arch.interp_state expected) action ~field;
    (* DAG backend *)
    let cfg =
      { dag_config with Dag.bank_offset = (fun ~bank:_ ~index -> 8 * index); slot_offset = (fun s -> 256 + (8 * s)) }
    in
    let dg = Dag.create cfg in
    Ssa.Gen.translate (Dag.emitter dg) action ~field ~inc_pc:None;
    Dag.raw dg (Hir.Exit 0);
    let ra = Regalloc.run (Dag.finish dg) in
    let p = Encode.decode_program ~n_slots:ra.Regalloc.n_slots (Encode.encode ra) in
    let ctx = mk_ctx () in
    for i = 0 to 15 do
      Exec.rf_write ctx (8 * i) st.Toy_arch.gpr.(i)
    done;
    Exec.rf_write ctx (256 + 8) st.Toy_arch.slots.(1);
    ignore (Exec.run ctx p);
    for i = 0 to 15 do
      if Exec.rf_read ctx (8 * i) <> expected.Toy_arch.gpr.(i) then
        Alcotest.failf "%s (word %Lx): gpr%d = %Lx, expected %Lx" d.Adl.Decode.name word i
          (Exec.rf_read ctx (8 * i))
          expected.Toy_arch.gpr.(i)
    done
  done

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "hostir",
    [
      Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip_straightline;
      Alcotest.test_case "encode jumps + patching" `Quick test_encode_jumps;
      q prop_regalloc_matches_vreg_interp;
      Alcotest.test_case "spilling under pressure" `Quick test_regalloc_spills_under_pressure;
      Alcotest.test_case "dead marking" `Quick test_regalloc_dead_marking;
      Alcotest.test_case "dag CSE" `Quick test_dag_cse;
      Alcotest.test_case "dag PC specialization (Fig 9d)" `Quick test_dag_pc_specialization;
      Alcotest.test_case "dag store/load hazard" `Quick test_dag_store_load_hazard;
      Alcotest.test_case "dag sqrt fix-up (Table 2)" `Quick test_dag_sqrt_fixup;
      Alcotest.test_case "generator+DAG vs interpreter (toy)" `Quick test_gen_with_dag_matches_interp;
    ] )
