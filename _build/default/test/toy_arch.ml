(* A small toy architecture used by ADL/SSA/backend tests. *)

let source =
  {|
arch "toy" {
  wordsize 64;
  endian little;
  bank GPR : uint64[16];
  reg PC : uint64;
  reg FLAGS : uint64;
}

helper uint64 shifted(uint64 v, uint64 amount) {
  if (amount > 63) { return 0; }
  return v << amount;
}

decode add   "00000001 rd:4 ra:4 rb:4 imm:12";
decode addi  "00000010 rd:4 ra:4 imm:16";
decode beq   "00000011 ra:4 rb:4 off:16" ends_block;
decode ld    "00000100 rd:4 ra:4 off:16";
decode st    "00000101 rs:4 ra:4 off:16";
decode halt  "00000110 0000 0000 00000000 00000000" ends_block;
decode csel  "00000111 rd:4 ra:4 rb:4 cond:4 00000000";
decode shl2  "00001000 rd:4 ra:4 sh:16" when (sh < 64);
decode shbig "00001000 rd:4 ra:4 sh:16" when (sh >= 64);
decode fadd  "00001001 rd:4 ra:4 rb:4 000000000000";
decode loopy "00001010 rd:4 n:4 0000 000000000000";

execute(add) {
  uint64 a = read_register_bank(GPR, inst.ra);
  uint64 b = read_register_bank(GPR, inst.rb);
  write_register_bank(GPR, inst.rd, a + b + inst.imm);
}

execute(addi) {
  uint64 a = read_register_bank(GPR, inst.ra);
  uint64 imm = sign_extend(inst.imm, 16);
  write_register_bank(GPR, inst.rd, a + imm);
}

execute(beq) {
  uint64 a = read_register_bank(GPR, inst.ra);
  uint64 b = read_register_bank(GPR, inst.rb);
  uint64 pc = read_pc();
  if (a == b) {
    write_pc(pc + (sign_extend(inst.off, 16) << 2));
  } else {
    write_pc(pc + 4);
  }
}

execute(ld) {
  uint64 base = read_register_bank(GPR, inst.ra);
  uint64 v = mem_read_64(base + sign_extend(inst.off, 16));
  write_register_bank(GPR, inst.rd, v);
}

execute(st) {
  uint64 base = read_register_bank(GPR, inst.ra);
  uint64 v = read_register_bank(GPR, inst.rs);
  mem_write_64(base + sign_extend(inst.off, 16), v);
}

execute(halt) {
  halt();
}

execute(csel) {
  uint64 flags = read_register(FLAGS);
  uint64 a = read_register_bank(GPR, inst.ra);
  uint64 b = read_register_bank(GPR, inst.rb);
  // A dynamic condition exercised through select rather than branching.
  uint64 take = (flags & inst.cond) != 0;
  write_register_bank(GPR, inst.rd, select(take, a, b));
}

execute(shl2) {
  uint64 a = read_register_bank(GPR, inst.ra);
  write_register_bank(GPR, inst.rd, shifted(a, inst.sh));
}

execute(shbig) {
  write_register_bank(GPR, inst.rd, 0);
}

execute(fadd) {
  uint64 a = read_register_bank(GPR, inst.ra);
  uint64 b = read_register_bank(GPR, inst.rb);
  write_register_bank(GPR, inst.rd, fp64_add(a, b));
}

execute(loopy) {
  // A fixed loop: unrolled at translation time.
  uint64 acc = 0;
  uint64 i = 0;
  while (i < inst.n) {
    acc = acc + read_register_bank(GPR, i);
    i = i + 1;
  }
  write_register_bank(GPR, inst.rd, acc);
}
|}

let model = lazy (Ssa.Offline.build ~opt_level:4 source)
let arch = lazy (Lazy.force model).Ssa.Offline.arch

(* Hand-assembled encodings for the toy ISA. *)
let enc_add ~rd ~ra ~rb ~imm =
  Int64.of_int ((0x01 lsl 24) lor (rd lsl 20) lor (ra lsl 16) lor (rb lsl 12) lor imm)

let enc_addi ~rd ~ra ~imm = Int64.of_int ((0x02 lsl 24) lor (rd lsl 20) lor (ra lsl 16) lor imm)
let enc_beq ~ra ~rb ~off = Int64.of_int ((0x03 lsl 24) lor (ra lsl 20) lor (rb lsl 16) lor off)
let enc_ld ~rd ~ra ~off = Int64.of_int ((0x04 lsl 24) lor (rd lsl 20) lor (ra lsl 16) lor off)
let enc_st ~rs ~ra ~off = Int64.of_int ((0x05 lsl 24) lor (rs lsl 20) lor (ra lsl 16) lor off)
let enc_halt = Int64.of_int (0x06 lsl 24)

let enc_csel ~rd ~ra ~rb ~cond =
  Int64.of_int ((0x07 lsl 24) lor (rd lsl 20) lor (ra lsl 16) lor (rb lsl 12) lor (cond lsl 8))

let enc_shl ~rd ~ra ~sh = Int64.of_int ((0x08 lsl 24) lor (rd lsl 20) lor (ra lsl 16) lor sh)

let enc_fadd ~rd ~ra ~rb =
  Int64.of_int ((0x09 lsl 24) lor (rd lsl 20) lor (ra lsl 16) lor (rb lsl 12))

let enc_loopy ~rd ~n = Int64.of_int ((0x0A lsl 24) lor (rd lsl 20) lor (n lsl 16))

(* A concrete machine state for the SSA interpreter. *)
type mock_state = {
  gpr : int64 array;
  slots : int64 array; (* PC=0, FLAGS=1 *)
  mem : (int64, int64) Hashtbl.t; (* 8-byte granules, keyed by address *)
  mutable effects : (string * int64 list) list;
}

let fresh_state () =
  { gpr = Array.make 16 0L; slots = Array.make 2 0L; mem = Hashtbl.create 16; effects = [] }

let clone_state s =
  { gpr = Array.copy s.gpr; slots = Array.copy s.slots; mem = Hashtbl.copy s.mem; effects = s.effects }

let interp_state (s : mock_state) : Ssa.Interp.state =
  {
    Ssa.Interp.bank_read = (fun _ i -> s.gpr.(i land 15));
    bank_write = (fun _ i v -> s.gpr.(i land 15) <- v);
    reg_read = (fun slot -> s.slots.(slot));
    reg_write = (fun slot v -> s.slots.(slot) <- v);
    pc_read = (fun () -> s.slots.(0));
    pc_write = (fun v -> s.slots.(0) <- v);
    mem_read =
      (fun bits a ->
        let v = try Hashtbl.find s.mem a with Not_found -> 0L in
        Dbt_util.Bits.zero_extend v ~width:bits);
    mem_write =
      (fun bits a v ->
        Hashtbl.replace s.mem a (Dbt_util.Bits.zero_extend v ~width:bits));
    coproc_read = (fun id -> Int64.mul id 3L);
    coproc_write = (fun _ _ -> ());
    effect = (fun name args -> s.effects <- (name, args) :: s.effects);
  }

let state_equal a b =
  a.gpr = b.gpr && a.slots = b.slots && a.effects = b.effects
  && Hashtbl.length a.mem = Hashtbl.length b.mem
  && Hashtbl.fold (fun k v acc -> acc && Hashtbl.find_opt b.mem k = Some v) a.mem true
