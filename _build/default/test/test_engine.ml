(* Full-system engine tests: Captive vs QEMU-style vs reference
   interpreter, system-level behaviours (paging, syscalls, faults,
   interrupts, self-modifying code), and the paper's architectural claims
   (code-cache retention across TLB flushes, Table 2 bit accuracy). *)

module A = Guest_arm.Arm_asm
module K = Workloads.Kernel
module CE = Captive.Engine
module QE = Qemu_ref.Qemu_engine
module RE = Captive.Reference

let guest () = Guest_arm.Arm.ops ()

type outcome = { exit_code : int; uart : string }

let run_captive ?config ~image ~entry () =
  let e = CE.create ?config (guest ()) in
  CE.load_image e ~addr:entry image;
  CE.set_entry e entry;
  let code = match CE.run ~max_cycles:500_000_000 e with CE.Poweroff c -> c | _ -> -1 in
  ({ exit_code = code; uart = CE.uart_output e }, `Captive e)

let run_qemu ~image ~entry () =
  let e = QE.create (guest ()) in
  QE.load_image e ~addr:entry image;
  QE.set_entry e entry;
  let code = match QE.run ~max_cycles:500_000_000 e with QE.Poweroff c -> c | _ -> -1 in
  { exit_code = code; uart = QE.uart_output e }

let run_reference ~image ~entry () =
  let r = RE.create (guest ()) in
  RE.load_image r ~addr:entry image;
  RE.set_entry r entry;
  let code = match RE.run ~max_instrs:30_000_000 r with RE.Poweroff c -> c | _ -> -1 in
  { exit_code = code; uart = RE.uart_output r }

let check_all_agree name image entry =
  let c, _ = run_captive ~image ~entry () in
  let q = run_qemu ~image ~entry () in
  let r = run_reference ~image ~entry () in
  Alcotest.(check int) (name ^ ": captive vs ref exit") r.exit_code c.exit_code;
  Alcotest.(check int) (name ^ ": qemu vs ref exit") r.exit_code q.exit_code;
  Alcotest.(check string) (name ^ ": captive vs ref uart") r.uart c.uart;
  Alcotest.(check string) (name ^ ": qemu vs ref uart") r.uart q.uart;
  r

(* --- bare-metal programs ----------------------------------------------------- *)

let syscon = 0x0930_0000L
let uart = 0x0910_0000L

let bare_metal body =
  let a = A.create ~base:0x80000L () in
  body a;
  (* exit with x0 *)
  A.mov_const a A.x25 syscon;
  A.str a A.x0 A.x25;
  A.label a "__hang";
  A.b a "__hang";
  A.assemble a

let test_bare_metal_agreement () =
  let progs =
    [
      ( "arith",
        bare_metal (fun a ->
            A.mov_const a A.x1 0x123456789ABCDEFL;
            A.mov_const a A.x2 0x0F1E2D3C4B5A697L;
            A.mul a A.x3 A.x1 A.x2;
            A.umulh a A.x4 A.x1 A.x2;
            A.eor_reg a A.x5 A.x3 A.x4;
            A.sdiv a A.x6 A.x5 A.x2;
            A.add_reg a A.x0 A.x5 A.x6) );
      ( "flags",
        bare_metal (fun a ->
            A.mov_const a A.x1 Int64.max_int;
            A.adds_imm a A.x2 A.x1 1;
            A.cset a A.x3 A.VS; (* overflow *)
            A.cset a A.x4 A.MI; (* negative *)
            A.adc_reg a A.x5 A.x3 A.x4;
            A.subs_imm a A.x6 A.x3 2;
            A.cset a A.x7 A.CC; (* borrow *)
            A.add_reg a A.x0 A.x5 A.x7) );
      ( "memory",
        bare_metal (fun a ->
            A.mov_const a A.x1 0x100000L;
            A.mov_const a A.x2 0xCAFEBABEDEADBEEFL;
            A.str a A.x2 A.x1;
            A.ldrb ~off:3 a A.x3 A.x1;
            A.ldrh ~off:2 a A.x4 A.x1;
            A.ldrsw ~off:4 a A.x5 A.x1;
            A.stp ~off:16 a A.x3 A.x4 A.x1;
            A.ldp ~off:16 a A.x6 A.x7 A.x1;
            A.add_reg a A.x0 A.x6 A.x7;
            A.add_reg a A.x0 A.x0 A.x5) );
      ( "fp",
        bare_metal (fun a ->
            A.mov_const a A.x1 (Int64.bits_of_float 1.5);
            A.fmov_x_to_d a A.d1 A.x1;
            A.mov_const a A.x2 (Int64.bits_of_float (-2.25));
            A.fmov_x_to_d a A.d2 A.x2;
            A.fmul_d a A.d3 A.d1 A.d2;
            A.fdiv_d a A.d4 A.d3 A.d1;
            A.fsqrt_d a A.d5 A.d1;
            A.fmadd_d a A.d6 A.d4 A.d5 A.d3;
            A.fcmp_d a A.d6 A.d3;
            A.cset a A.x3 A.GT;
            A.fcvtzs_d a A.x4 A.d6;
            A.fmov_d_to_x a A.x5 A.d5;
            A.add_reg a A.x0 A.x4 A.x3;
            A.eor_reg a A.x0 A.x0 A.x5) );
      ( "branches",
        bare_metal (fun a ->
            A.movz a A.x0 0;
            A.movz a A.x1 0;
            A.label a "outer";
            A.movz a A.x2 0;
            A.label a "inner";
            A.add_reg a A.x0 A.x0 A.x2;
            A.add_imm a A.x2 A.x2 1;
            A.cmp_imm a A.x2 10;
            A.b_cond a A.NE "inner";
            A.add_imm a A.x1 A.x1 1;
            A.tbz a A.x1 4 "outer") );
    ]
  in
  List.iter (fun (name, image) -> ignore (check_all_agree name image 0x80000L)) progs

(* --- Table 2 through the full stack -------------------------------------------- *)

let test_sqrt_bit_accuracy_guest () =
  (* fsqrt of -0.5 through both engines: the guest must observe the ARM
     result (+default NaN), not the host's x86 -NaN. *)
  let image =
    bare_metal (fun a ->
        A.mov_const a A.x1 (Int64.bits_of_float (-0.5));
        A.fmov_x_to_d a A.d1 A.x1;
        A.fsqrt_d a A.d2 A.d1;
        A.fmov_d_to_x a A.x2 A.d2;
        (* x0 = 1 iff result == ARM default NaN *)
        A.mov_const a A.x3 0x7FF8000000000000L;
        A.cmp_reg a A.x2 A.x3;
        A.cset a A.x0 A.EQ)
  in
  let r = check_all_agree "sqrt-nan" image 0x80000L in
  Alcotest.(check int) "guest sees ARM NaN" 1 r.exit_code

(* --- self-modifying code --------------------------------------------------------- *)

let test_self_modifying_code () =
  (* Execute `mov x0, #1; ret-to-exit`, patch it in place to `mov x0, #2`,
     re-execute: the code cache must be invalidated by the write. *)
  let image =
    bare_metal (fun a ->
        A.movz a A.x20 0;
        (* call the patchable snippet twice *)
        A.adr a A.x21 "snippet";
        A.bl a "snippet";
        A.add_reg a A.x20 A.x20 A.x0;
        (* patch: rewrite first instruction to movz x0,#2 *)
        (let w = (0b110100101 lsl 23) lor (2 lsl 5) lor 0 in
         A.mov_const a A.x22 (Int64.of_int w));
        A.str32 a A.x22 A.x21;
        A.bl a "snippet";
        A.add_reg a A.x20 A.x20 A.x0;
        A.mov_reg a A.x0 A.x20;
        A.b a "done";
        A.label a "snippet";
        A.movz a A.x0 1;
        A.ret a;
        A.label a "done")
  in
  let c, engine = run_captive ~image ~entry:0x80000L () in
  Alcotest.(check int) "captive sees the patch (1+2)" 3 c.exit_code;
  (match engine with
  | `Captive e ->
    Alcotest.(check bool) "SMC invalidation fired" true (e.CE.stats.CE.smc_invalidations > 0));
  let q = run_qemu ~image ~entry:0x80000L () in
  Alcotest.(check int) "qemu sees the patch" 3 q.exit_code;
  let r = run_reference ~image ~entry:0x80000L () in
  Alcotest.(check int) "reference agrees" 3 r.exit_code

(* --- full OS boot ------------------------------------------------------------------ *)

let os_user body =
  let a = A.create ~base:K.user_va () in
  body a;
  A.assemble a

let install_and_run_all user =
  let c =
    let e = CE.create (guest ()) in
    K.install (K.captive_target e) ~user;
    let code = match CE.run ~max_cycles:500_000_000 e with CE.Poweroff c -> c | _ -> -1 in
    ({ exit_code = code; uart = CE.uart_output e }, e)
  in
  let q =
    let e = QE.create (guest ()) in
    K.install (K.qemu_target e) ~user;
    let code = match QE.run ~max_cycles:500_000_000 e with QE.Poweroff c -> c | _ -> -1 in
    { exit_code = code; uart = QE.uart_output e }
  in
  let r =
    let e = RE.create (guest ()) in
    K.install (K.reference_target e) ~user;
    let code = match RE.run ~max_instrs:30_000_000 e with RE.Poweroff c -> c | _ -> -1 in
    { exit_code = code; uart = RE.uart_output e }
  in
  (c, q, r)

let test_os_boot_and_syscalls () =
  let user =
    os_user (fun a ->
        List.iter
          (fun ch ->
            A.movz a A.x0 (Char.code ch);
            A.movz a A.x8 1;
            A.svc a 0)
          [ 'b'; 'o'; 'o'; 't' ];
        (* user memory through the MMU *)
        A.mov_const a A.x1 (Int64.add K.user_va 0x20000L);
        A.mov_const a A.x2 0x1111111111111111L;
        A.str a A.x2 A.x1;
        A.ldr a A.x3 A.x1;
        A.lsr_imm a A.x0 A.x3 60;
        A.movz a A.x8 0;
        A.svc a 0)
  in
  let (c, _), q, r = install_and_run_all user in
  Alcotest.(check int) "exit code" 1 r.exit_code;
  Alcotest.(check string) "uart" "boot" r.uart;
  Alcotest.(check int) "captive" r.exit_code c.exit_code;
  Alcotest.(check int) "qemu" r.exit_code q.exit_code;
  Alcotest.(check string) "captive uart" r.uart c.uart;
  Alcotest.(check string) "qemu uart" r.uart q.uart

let test_user_kernel_isolation () =
  (* EL0 attempting to read kernel memory must fault; the kernel's abort
     handler counts it and skips the instruction. *)
  let user =
    os_user (fun a ->
        A.mov_const a A.x1 (K.kva 0x80000L);
        A.ldr a A.x2 A.x1; (* kernel VA: faults, is skipped *)
        A.mov_const a A.x1 K.kernel_pa;
        A.ldr a A.x3 A.x1; (* kernel PA unmapped in TTBR0: faults too *)
        A.movz a A.x8 4;
        A.svc a 0; (* x0 = fault count *)
        A.movz a A.x8 0;
        A.svc a 0)
  in
  let (c, _), q, r = install_and_run_all user in
  Alcotest.(check int) "two faults observed" 2 r.exit_code;
  Alcotest.(check int) "captive agrees" r.exit_code c.exit_code;
  Alcotest.(check int) "qemu agrees" r.exit_code q.exit_code

let test_timer_interrupts () =
  let user =
    os_user (fun a ->
        (* burn cycles until at least 2 ticks observed *)
        A.label a "wait";
        A.mov_const a A.x6 20000L;
        A.label a "burn";
        A.sub_imm a A.x6 A.x6 1;
        A.cbnz a A.x6 "burn";
        A.movz a A.x8 3;
        A.svc a 0; (* ticks *)
        A.cmp_imm a A.x0 2;
        A.b_cond a A.CC "wait";
        A.movz a A.x0 0;
        A.movz a A.x8 0;
        A.svc a 0)
  in
  let e = CE.create (guest ()) in
  K.install (K.captive_target e) ~user;
  (match CE.run ~max_cycles:500_000_000 e with
  | CE.Poweroff 0 -> ()
  | CE.Poweroff c -> Alcotest.failf "captive: unexpected exit %d" c
  | _ -> Alcotest.fail "captive: timer ticks never reached 2");
  Alcotest.(check bool) "timer fired" true (e.CE.timer.Hvm.Device.Timer.fired >= 2);
  let q = QE.create (guest ()) in
  K.install (K.qemu_target q) ~user;
  match QE.run ~max_cycles:500_000_000 q with
  | QE.Poweroff 0 -> ()
  | _ -> Alcotest.fail "qemu: timer test failed"

let test_cache_retention_across_tlb_flush () =
  (* The paper's Sec. 2.6 claim: Captive's PA-indexed cache survives guest
     TLB flushes; the QEMU-style VA-indexed cache is invalidated. *)
  let image =
    bare_metal (fun a ->
        A.movz a A.x19 50;
        A.movz a A.x20 0;
        A.label a "loop";
        A.add_imm a A.x20 A.x20 3;
        A.tlbi_all a;
        A.sub_imm a A.x19 A.x19 1;
        A.cbnz a A.x19 "loop";
        A.mov_reg a A.x0 A.x20)
  in
  let e = CE.create (guest ()) in
  CE.load_image e ~addr:0x80000L image;
  CE.set_entry e 0x80000L;
  ignore (CE.run ~max_cycles:500_000_000 e);
  let q = QE.create (guest ()) in
  QE.load_image q ~addr:0x80000L image;
  QE.set_entry q 0x80000L;
  ignore (QE.run ~max_cycles:500_000_000 q);
  (* Captive translates each block once; QEMU-style retranslates after
     every flush. *)
  Alcotest.(check bool) "captive retains translations" true (e.CE.stats.CE.blocks_translated < 10);
  Alcotest.(check bool)
    (Printf.sprintf "qemu retranslates (%d blocks)" q.QE.stats.QE.blocks_translated)
    true
    (q.QE.stats.QE.blocks_translated > 50)

let test_spec_proxies_differential () =
  (* A representative subset of the SPEC proxies, all three engines. *)
  List.iter
    (fun name ->
      let bench = Workloads.Spec.find name in
      let user = bench.Workloads.Spec.build ~scale:1 in
      let (c, _), q, _ = install_and_run_all (Bytes.sub user 0 (Bytes.length user)) in
      ignore q;
      ignore c)
    [];
  (* keep runtime modest: captive vs qemu on three benchmarks *)
  List.iter
    (fun name ->
      let bench = Workloads.Spec.find name in
      let user = bench.Workloads.Spec.build ~scale:1 in
      let e = CE.create (guest ()) in
      K.install (K.captive_target e) ~user;
      let cc = match CE.run ~max_cycles:2_000_000_000 e with CE.Poweroff c -> c | _ -> -1 in
      let qe = QE.create (guest ()) in
      K.install (K.qemu_target qe) ~user;
      let qc = match QE.run ~max_cycles:2_000_000_000 qe with QE.Poweroff c -> c | _ -> -1 in
      Alcotest.(check int) (name ^ " exit codes agree") cc qc;
      Alcotest.(check bool) (name ^ " ran") true (cc >= 0))
    [ "445.gobmk"; "456.hmmer"; "444.namd" ]

(* --- randomized differential testing --------------------------------------- *)

(* Random straight-line programs over data-processing, memory and FP
   instructions; the full architectural state is dumped to memory and
   compared across all three engines. *)
let random_program seed =
  let prng = Dbt_util.Prng.create (if seed = 0L then 99L else seed) in
  let r n = Dbt_util.Prng.int prng n in
  let reg () = r 16 in
  let a = A.create ~base:0x80000L () in
  (* x20: data base (never an operand destination below) *)
  A.mov_const a A.x20 0x200000L;
  (* seed registers *)
  for i = 0 to 15 do
    A.mov_const a i (Dbt_util.Prng.int64 prng)
  done;
  for i = 0 to 7 do
    A.fmov_x_to_d a i (r 16)
  done;
  for _ = 1 to 60 do
    match r 24 with
    | 0 -> A.add_reg a (reg ()) (reg ()) (reg ())
    | 1 -> A.subs_reg a (reg ()) (reg ()) (reg ())
    | 2 -> A.adds_imm a (reg ()) (reg ()) (r 4096)
    | 3 -> A.and_reg a (reg ()) (reg ()) (reg ())
    | 4 -> A.eor_imm a (reg ()) (reg ()) 0xFF00FF00FF00FF00L
    | 5 -> A.mul a (reg ()) (reg ()) (reg ())
    | 6 -> A.umulh a (reg ()) (reg ()) (reg ())
    | 7 -> A.udiv a (reg ()) (reg ()) (reg ())
    | 8 -> A.sdiv ~sf:(r 2) a (reg ()) (reg ()) (reg ())
    | 9 -> A.lslv a (reg ()) (reg ()) (reg ())
    | 10 -> A.rorv ~sf:(r 2) a (reg ()) (reg ()) (reg ())
    | 11 -> A.csel a (reg ()) (reg ()) (reg ()) (List.nth [ A.EQ; A.LT; A.HI; A.VS ] (r 4))
    | 12 -> A.csinv a (reg ()) (reg ()) (reg ()) (List.nth [ A.NE; A.GE; A.LS; A.MI ] (r 4))
    | 13 -> A.clz a (reg ()) (reg ())
    | 14 -> A.rbit ~sf:(r 2) a (reg ()) (reg ())
    | 15 -> A.extr a (reg ()) (reg ()) (reg ()) (r 64)
    | 16 -> A.ccmp_imm a (reg ()) (r 32) (r 16) (List.nth [ A.EQ; A.GT; A.CC; A.PL ] (r 4))
    | 17 -> A.str ~off:(8 * r 64) a (reg ()) A.x20
    | 18 -> A.ldr ~off:(8 * r 64) a (reg ()) A.x20
    | 19 -> A.strb ~off:(r 256) a (reg ()) A.x20
    | 20 -> A.ldrsw ~off:(4 * r 32) a (reg ()) A.x20
    | 21 -> A.fadd_d a (r 8) (r 8) (r 8)
    | 22 -> A.fmul_d a (r 8) (r 8) (r 8)
    | _ ->
      A.fsqrt_d a (r 8) (r 8)
  done;
  (* dump state: x0..x15, NZCV (via csel-able flags capture), d0..d7 *)
  A.mov_const a A.x21 0x300000L;
  for i = 0 to 15 do
    A.str ~off:(8 * i) a i A.x21
  done;
  for i = 0 to 7 do
    A.fmov_d_to_x a A.x22 i;
    A.str ~off:(128 + (8 * i)) a A.x22 A.x21
  done;
  A.cset a A.x22 A.EQ;
  A.cset a A.x23 A.CS;
  A.cset a A.x24 A.MI;
  A.cset a A.x25 A.VS;
  A.str ~off:192 a A.x22 A.x21;
  A.str ~off:200 a A.x23 A.x21;
  A.str ~off:208 a A.x24 A.x21;
  A.str ~off:216 a A.x25 A.x21;
  (* poweroff *)
  A.mov_const a A.x28 0x0930_0000L;
  A.str a A.xzr A.x28;
  A.label a "hang";
  A.b a "hang";
  A.assemble a

let dump_region mem =
  List.init 28 (fun i -> Hvm.Mem.read64 mem (Int64.of_int (0x300000 + (8 * i))))

let prop_random_programs =
  QCheck2.Test.make ~name:"random programs: captive = qemu = reference" ~count:25
    QCheck2.Gen.int64 (fun seed ->
      let image = random_program seed in
      let run_c () =
        let e = CE.create (guest ()) in
        CE.load_image e ~addr:0x80000L image;
        CE.set_entry e 0x80000L;
        match CE.run ~max_cycles:100_000_000 e with
        | CE.Poweroff _ -> dump_region e.CE.machine.Hvm.Machine.mem
        | _ -> []
      in
      let run_q () =
        let e = QE.create (guest ()) in
        QE.load_image e ~addr:0x80000L image;
        QE.set_entry e 0x80000L;
        match QE.run ~max_cycles:100_000_000 e with
        | QE.Poweroff _ -> dump_region e.QE.machine.Hvm.Machine.mem
        | _ -> []
      in
      let run_r () =
        let e = RE.create (guest ()) in
        RE.load_image e ~addr:0x80000L image;
        RE.set_entry e 0x80000L;
        match RE.run ~max_instrs:10_000_000 e with
        | RE.Poweroff _ -> dump_region e.RE.machine.Hvm.Machine.mem
        | _ -> []
      in
      let c = run_c () and q = run_q () and rr = run_r () in
      c <> [] && c = q && c = rr)

let suite =
  ( "engine",
    [
      Alcotest.test_case "bare-metal differential" `Slow test_bare_metal_agreement;
      Alcotest.test_case "Table 2 via guest fsqrt" `Slow test_sqrt_bit_accuracy_guest;
      Alcotest.test_case "self-modifying code" `Slow test_self_modifying_code;
      Alcotest.test_case "OS boot + syscalls" `Slow test_os_boot_and_syscalls;
      Alcotest.test_case "user/kernel isolation" `Slow test_user_kernel_isolation;
      Alcotest.test_case "timer interrupts" `Slow test_timer_interrupts;
      Alcotest.test_case "cache retention across TLB flush" `Slow test_cache_retention_across_tlb_flush;
      Alcotest.test_case "SPEC proxies differential" `Slow test_spec_proxies_differential;
      QCheck_alcotest.to_alcotest prop_random_programs;
    ] )
