test/test_hostir.ml: Adl Alcotest Array Dag Dbt_util Encode Exec Hostir Hvm Int64 Lazy List Option Printf QCheck2 QCheck_alcotest Regalloc Ssa Toy_arch
