test/test_main.ml: Alcotest Test_adl Test_arm Test_bits Test_engine Test_hostir Test_hvm Test_softfloat Test_ssa Test_workloads
