test/test_arm.ml: Adl Alcotest Array Bytes Dbt_util Guest Guest_arm Hashtbl Int64 List Option Printf QCheck2 QCheck_alcotest Ssa
