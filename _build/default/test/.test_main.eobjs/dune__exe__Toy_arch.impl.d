test/toy_arch.ml: Array Dbt_util Hashtbl Int64 Lazy Ssa
