test/test_softfloat.ml: Alcotest Archfp F32 F64 Float Int32 Int64 List Printf QCheck2 QCheck_alcotest Sf_types Softfloat
