test/test_workloads.ml: Alcotest Bytes Captive Char Guest_arm Guest_riscv List Qemu_ref Simbench Workloads
