test/test_adl.ml: Adl Alcotest Ast Decode Lazy Lexer List Option Parser Ssa String Toy_arch Typecheck
