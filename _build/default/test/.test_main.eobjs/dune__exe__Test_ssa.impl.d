test/test_ssa.ml: Adl Alcotest Analysis Array Build Dbt_util Gen Guest_arm Hashtbl Int64 Interp Ir Lazy List Offline Opt Option Printf Ssa String Toy_arch
