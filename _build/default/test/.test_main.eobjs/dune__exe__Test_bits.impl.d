test/test_bits.ml: Alcotest Bits Dbt_util Int64 QCheck2 QCheck_alcotest
