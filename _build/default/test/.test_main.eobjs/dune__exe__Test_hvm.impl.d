test/test_hvm.ml: Alcotest Char Hvm Int64 QCheck2 QCheck_alcotest
