test/test_engine.ml: Alcotest Bytes Captive Char Dbt_util Guest_arm Hvm Int64 List Printf QCheck2 QCheck_alcotest Qemu_ref Workloads
