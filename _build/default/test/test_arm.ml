(* ARMv8-A guest model tests: decode goldens, assembler/model agreement,
   bitmask immediates, condition codes, the stage-1 MMU walker, and the
   exception model. *)

module A = Guest_arm.Arm_asm
module Sys_ = Guest_arm.Arm_sys
module Ops = Guest.Ops

let model () = (Guest_arm.Arm.ops ()).Ops.model

let first_word b = Int64.logand (Int64.of_int32 (Bytes.get_int32_le b 0)) 0xFFFFFFFFL

let assemble_one f =
  let a = A.create () in
  f a;
  first_word (A.assemble a)

let decode_name word =
  match Ssa.Offline.decode (model ()) word with
  | Some d -> d.Adl.Decode.name
  | None -> "<undefined>"

let test_decode_goldens () =
  (* Encodings verified against the ARM ARM / real toolchains. *)
  List.iter
    (fun (word, expected) -> Alcotest.(check string) (Printf.sprintf "%08Lx" word) expected (decode_name word))
    [
      (0xD503201FL, "hint"); (* nop *)
      (0x8B020020L, "add_sub_shreg"); (* add x0,x1,x2 *)
      (0x11001020L, "add_sub_imm"); (* add w0,w1,#4 *)
      (0xD65F03C0L, "br_blr_ret"); (* ret *)
      (0x14000000L, "b_uncond"); (* b . *)
      (0x97FFFFFFL, "b_uncond"); (* bl .-4 *)
      (0x54000041L, "b_cond"); (* b.ne .+8 *)
      (0xD4000001L, "svc");
      (0xD4200000L, "brk");
      (0xF9400020L, "ldst_uimm"); (* ldr x0,[x1] *)
      (0xB9400020L, "ldst_uimm"); (* ldr w0,[x1] *)
      (0x39400020L, "ldst_uimm"); (* ldrb w0,[x1] *)
      (0xB98004A2L, "ldst_uimm"); (* ldrsw x2,[x5,#...] *)
      (0xA9BF7BFDL, "ldp_stp"); (* stp x29,x30,[sp,#-16]! *)
      (0xD2800140L, "movwide"); (* movz x0,#10 *)
      (0x92401C20L, "logical_imm"); (* and x0,x1,#0xff *)
      (0x9AC20820L, "dp2"); (* udiv x0,x1,x2 *)
      (0x9B027C20L, "dp3"); (* madd/mul x0,x1,x2 *)
      (0xDAC01020L, "dp1"); (* clz x0,x1 *)
      (0x1E602820L, "fp2src"); (* fadd d0,d1,d2 *)
      (0x1E61C020L, "fp1src"); (* fsqrt d0,d1 *)
      (0x1E602030L, "fcmp"); (* fcmp d1,d0 *)
      (0x9E660020L, "fp_int"); (* fmov x0,d1 *)
      (0xD5381000L, "mrs"); (* mrs x0,sctlr_el1 *)
      (0xD5181000L, "msr_reg");
      (0xD69F03E0L, "eret_insn");
      (0xD503207FL, "wfi");
      (0xD5033FDFL, "barrier"); (* isb *)
      (0xD508871FL, "sys"); (* tlbi vmalle1 *)
      (0x00000000L, "<undefined>");
      (0xFFFFFFFFL, "<undefined>");
    ]

let test_assembler_decodes () =
  (* Everything the assembler emits must be decodable by the ADL model. *)
  let cases =
    [
      (fun a -> A.add_imm a A.x1 A.x2 17);
      (fun a -> A.adds_imm a A.x1 A.x2 17);
      (fun a -> A.sub_reg a A.x1 A.x2 A.x3);
      (fun a -> A.and_reg a A.x1 A.x2 A.x3);
      (fun a -> A.orr_imm a A.x1 A.x2 0xFF0L);
      (fun a -> A.eor_imm a A.x1 A.x2 0x0F0F0F0F0F0F0F0FL);
      (fun a -> A.movk ~hw:2 a A.x1 0xBEEF);
      (fun a -> A.lsl_imm a A.x1 A.x2 7);
      (fun a -> A.lsr_imm ~sf:0 a A.x1 A.x2 3);
      (fun a -> A.asr_imm a A.x1 A.x2 3);
      (fun a -> A.ubfx a A.x1 A.x2 ~lsb:8 ~width:8);
      (fun a -> A.sxtw a A.x1 A.x2);
      (fun a -> A.csel a A.x1 A.x2 A.x3 A.GT);
      (fun a -> A.cset a A.x1 A.LT);
      (fun a -> A.madd a A.x1 A.x2 A.x3 A.x4);
      (fun a -> A.umulh a A.x1 A.x2 A.x3);
      (fun a -> A.sdiv a A.x1 A.x2 A.x3);
      (fun a -> A.rorv a A.x1 A.x2 A.x3);
      (fun a -> A.rbit a A.x1 A.x2);
      (fun a -> A.rev64 a A.x1 A.x2);
      (fun a -> A.clz a A.x1 A.x2);
      (fun a -> A.adc_reg a A.x1 A.x2 A.x3);
      (fun a -> A.ldr ~off:64 a A.x1 A.x2);
      (fun a -> A.str32 ~off:8 a A.x1 A.x2);
      (fun a -> A.ldrsw a A.x1 A.x2);
      (fun a -> A.ldr_post a A.x1 A.x2 8);
      (fun a -> A.str_pre a A.x1 A.x2 (-8));
      (fun a -> A.ldr_reg ~scaled:true a A.x1 A.x2 A.x3);
      (fun a -> A.ldp ~off:16 a A.x1 A.x2 A.x3);
      (fun a -> A.ldr_d ~off:8 a A.d1 A.x2);
      (fun a -> A.str_s a A.d1 A.x2);
      (fun a -> A.fmul_d a A.d0 A.d1 A.d2);
      (fun a -> A.fmin_d a A.d0 A.d1 A.d2);
      (fun a -> A.fabs_d a A.d0 A.d1);
      (fun a -> A.fcvt_d_to_s a A.d0 A.d1);
      (fun a -> A.fcmp_d ~zero:true a A.d1 A.d0);
      (fun a -> A.fmov_imm_d a A.d0 0x70);
      (fun a -> A.scvtf_d a A.d0 A.x1);
      (fun a -> A.fcvtzs_d a A.x0 A.d1);
      (fun a -> A.fcvtzu_d a A.x0 A.d1);
      (fun a -> A.fmov_x_to_d a A.d0 A.x1);
      (fun a -> A.fmadd_d a A.d0 A.d1 A.d2 A.d3);
      (fun a -> A.fcsel_d a A.d0 A.d1 A.d2 A.NE);
      (fun a -> A.msr_daifset a 2);
      (fun a -> A.msr_daifclr a 2);
      (fun a -> A.mrs_cntvct a A.x0);
      (fun a -> A.tlbi_all a);
      (fun a -> A.dsb a);
      (fun a -> A.add_ext a A.x1 A.sp A.x2);
      (fun a -> A.sub_ext ~option:0b010 ~amount:2 a A.x1 A.x2 A.x3);
      (fun a -> A.extr a A.x1 A.x2 A.x3 17);
      (fun a -> A.ror_imm a A.x1 A.x2 9);
      (fun a -> A.ccmp_imm a A.x1 5 0b0100 A.NE);
      (fun a -> A.ccmp_reg a A.x1 A.x2 0 A.EQ);
      (fun a -> A.ccmn_reg a A.x1 A.x2 2 A.GT);
      (fun a -> A.ldar a A.x1 A.x2);
      (fun a -> A.stlr a A.x1 A.x2);
      (fun a -> A.ldxr a A.x1 A.x2);
      (fun a -> A.stxr a A.x3 A.x1 A.x2);
      (fun a -> A.vadd_2d a A.d0 A.d1 A.d2);
      (fun a -> A.vsub_2d a A.d0 A.d1 A.d2);
      (fun a -> A.vand a A.d0 A.d1 A.d2);
      (fun a -> A.vorr a A.d0 A.d1 A.d2);
      (fun a -> A.veor a A.d0 A.d1 A.d2);
      (fun a -> A.vfadd_2d a A.d0 A.d1 A.d2);
      (fun a -> A.vfmul_2d a A.d0 A.d1 A.d2);
      (fun a -> A.dup_2d a A.d0 A.x1);
      (fun a -> A.umov_d a A.x1 A.d0 1);
      (fun a -> A.ldr_q ~off:16 a A.d0 A.x1);
      (fun a -> A.str_q a A.d0 A.x1);
    ]
  in
  List.iteri
    (fun i f ->
      let w = assemble_one f in
      if decode_name w = "<undefined>" then Alcotest.failf "case %d: %08Lx does not decode" i w)
    cases

(* minimal interp state over gpr+slots *)
module Toy_like = struct
  let state gpr slots : Ssa.Interp.state =
    {
      Ssa.Interp.bank_read = (fun _ i -> gpr.(i land 31));
      bank_write = (fun _ i v -> gpr.(i land 31) <- v);
      reg_read = (fun s -> slots.(s));
      reg_write = (fun s v -> slots.(s) <- v);
      pc_read = (fun () -> 0x1000L);
      pc_write = (fun _ -> ());
      mem_read = (fun _ _ -> 0L);
      mem_write = (fun _ _ _ -> ());
      coproc_read = (fun _ -> 0L);
      coproc_write = (fun _ _ -> ());
      effect = (fun _ _ -> ());
    }
end

let run_one_insn word ~regs =
  (* Execute a single instruction via the SSA interpreter on a bare state. *)
  let m = model () in
  match Ssa.Offline.decode m word with
  | None -> Error `Undefined
  | Some d ->
    let action = Ssa.Offline.action m d.Adl.Decode.name in
    let gpr = Array.copy regs in
    let vec = Array.make 64 0L in
    let slots = Array.make 16 0L in
    let pc = ref 0x1000L in
    let mem = Hashtbl.create 16 in
    let st =
      {
        Ssa.Interp.bank_read = (fun bank i -> if bank = 0 then gpr.(i land 31) else vec.(i land 63));
        bank_write = (fun bank i v -> if bank = 0 then gpr.(i land 31) <- v else vec.(i land 63) <- v);
        reg_read = (fun s -> slots.(s));
        reg_write = (fun s v -> slots.(s) <- v);
        pc_read = (fun () -> !pc);
        pc_write = (fun v -> pc := v);
        mem_read =
          (fun bits a -> Dbt_util.Bits.zero_extend (try Hashtbl.find mem a with Not_found -> 0L) ~width:bits);
        mem_write = (fun bits a v -> Hashtbl.replace mem a (Dbt_util.Bits.zero_extend v ~width:bits));
        coproc_read = (fun _ -> 0L);
        coproc_write = (fun _ _ -> ());
        effect = (fun _ _ -> ());
      }
    in
    let field n =
      if n = "__el" then 1L else List.assoc n d.Adl.Decode.field_values
    in
    Ssa.Interp.run st action ~field;
    Ok (gpr, vec, slots, !pc)

let prop_bitmask_roundtrip =
  (* Generate genuinely encodable values (rotated runs of ones,
     replicated), encode with the assembler, execute AND x1, xzr-free:
     orr x1, xzr, #imm gives the decoded immediate directly. *)
  QCheck2.Test.make ~name:"bitmask immediate assemble/decode roundtrip" ~count:300
    QCheck2.Gen.(
      let* esize_log = int_range 1 6 in
      let esize = 1 lsl esize_log in
      let* ones = int_range 1 (esize - 1) in
      let* rot = int_range 0 (esize - 1) in
      return (esize, ones, rot))
    (fun (esize, ones, rot) ->
      let elem = Dbt_util.Bits.rotate_right (Dbt_util.Bits.mask ones) rot ~width:esize in
      let rec repl acc bits = if bits >= 64 then acc else repl (Int64.logor acc (Dbt_util.Bits.shl elem bits)) (bits + esize) in
      let v = repl 0L esize |> Int64.logor elem in
      let word = assemble_one (fun a -> A.orr_imm a A.x1 A.xzr v) in
      match run_one_insn word ~regs:(Array.make 32 0L) with
      | Ok (gpr, _, _, _) -> gpr.(1) = v
      | Error _ -> false)

let test_cond_codes () =
  (* CSINC xd, xzr, xzr, cond  computes  cond ? 0 : 1; check against an
     OCaml model of ConditionHolds for all cond x NZCV combinations. *)
  let expected cond nzcv =
    let n = nzcv land 8 <> 0 and z = nzcv land 4 <> 0 in
    let c = nzcv land 2 <> 0 and v = nzcv land 1 <> 0 in
    let base =
      match cond lsr 1 with
      | 0 -> z
      | 1 -> c
      | 2 -> n
      | 3 -> v
      | 4 -> c && not z
      | 5 -> n = v
      | 6 -> (not z) && n = v
      | _ -> true
    in
    if cond land 1 = 1 && cond <> 15 then not base else base
  in
  for cond = 0 to 15 do
    for nzcv = 0 to 15 do
      (* csinc x1, xzr, xzr, cond *)
      let word =
        Int64.of_int
          ((1 lsl 31) lor (0b11010100 lsl 21) lor (31 lsl 16) lor (cond lsl 12) lor (1 lsl 10)
          lor (31 lsl 5) lor 1)
      in
      let m = model () in
      let d = Option.get (Ssa.Offline.decode m word) in
      Alcotest.(check string) "is condsel" "condsel" d.Adl.Decode.name;
      let action = Ssa.Offline.action m d.Adl.Decode.name in
      let gpr = Array.make 32 0L in
      let slots = Array.make 16 0L in
      slots.(Sys_.nzcv) <- Int64.of_int nzcv;
      let st = Toy_like.state gpr slots in
      let field n = if n = "__el" then 1L else List.assoc n d.Adl.Decode.field_values in
      Ssa.Interp.run st action ~field;
      (* cond holds -> x1 = xzr = 0; else x1 = xzr+1 = 1 *)
      let got = gpr.(1) = 0L in
      if got <> expected cond nzcv then
        Alcotest.failf "cond %d nzcv %x: expected %b" cond nzcv (expected cond nzcv)
    done
  done

(* --- guest MMU walker ----------------------------------------------------- *)

let mk_sys_over_mem () =
  let mem = Hashtbl.create 64 in
  let slots = Array.make 16 0L in
  let gpr = Array.make 32 0L in
  let pc = ref 0L in
  let sys : Ops.sys_ctx =
    {
      Ops.read_reg = (fun s -> slots.(s));
      write_reg = (fun s v -> slots.(s) <- v);
      read_bank = (fun _ i -> gpr.(i land 31));
      write_bank = (fun _ i v -> gpr.(i land 31) <- v);
      get_pc = (fun () -> !pc);
      set_pc = (fun v -> pc := v);
      phys_read =
        (fun ~bits:_ a -> try Hashtbl.find mem a with Not_found -> 0L);
      cycles = (fun () -> 0);
    }
  in
  (sys, mem, slots)

let test_guest_mmu_walk () =
  let sys, mem, slots = mk_sys_over_mem () in
  (* identity when MMU off *)
  (match Sys_.mmu_translate sys ~access:Ops.Aload 0x1234L with
  | Ok (pa, _) -> Alcotest.(check int64) "mmu off identity" 0x1234L pa
  | Error _ -> Alcotest.fail "mmu off must not fault");
  (* build: TTBR0 at 0x1000, L1[0] -> table 0x2000; L2[0] -> table 0x3000;
     L3[5] -> page 0x7000 user RW *)
  slots.(Sys_.sctlr_el1) <- 1L;
  slots.(Sys_.ttbr0_el1) <- 0x1000L;
  Hashtbl.replace mem 0x1000L 0x2003L;
  Hashtbl.replace mem 0x2000L 0x3003L;
  let leaf = Int64.logor 0x7000L (Int64.logor 0x403L (Int64.shift_left 1L 6)) in
  (* 0x403 = AF | page | valid; bit6 = AP[1] user *)
  Hashtbl.replace mem (Int64.add 0x3000L (Int64.of_int (8 * 5))) leaf;
  (match Sys_.mmu_translate sys ~access:Ops.Aload 0x5123L with
  | Ok (pa, perms) ->
    Alcotest.(check int64) "page translation" 0x7123L pa;
    Alcotest.(check bool) "user" true perms.Ops.puser;
    Alcotest.(check bool) "writable" true perms.Ops.pw
  | Error _ -> Alcotest.fail "expected mapping");
  (* unmapped VA -> level-3 translation fault *)
  (match Sys_.mmu_translate sys ~access:Ops.Aload 0x6000L with
  | Error (Ops.Gf_translation 3) -> ()
  | _ -> Alcotest.fail "expected level-3 translation fault");
  (* non-canonical (neither TTBR0 nor TTBR1 range) *)
  (match Sys_.mmu_translate sys ~access:Ops.Aload 0x0000_8000_0000_0000L with
  | Error (Ops.Gf_translation 0) -> ()
  | _ -> Alcotest.fail "expected level-0 fault");
  (* 2 MiB block at L2: L2[1] block -> PA 0x200000, kernel-only RO *)
  let blk = Int64.logor 0x0020_0000L (Int64.logor 0x401L (Int64.shift_left 1L 7)) in
  (* valid block + AF + AP[2]=RO *)
  Hashtbl.replace mem (Int64.add 0x2000L 8L) blk;
  (match Sys_.mmu_translate sys ~access:Ops.Aload 0x0020_4567L with
  | Ok (pa, perms) ->
    Alcotest.(check int64) "block translation" 0x0020_4567L pa;
    Alcotest.(check bool) "block RO" false perms.Ops.pw;
    Alcotest.(check bool) "kernel only" false perms.Ops.puser
  | Error _ -> Alcotest.fail "expected block mapping");
  (* TTBR1 half *)
  slots.(Sys_.ttbr1_el1) <- 0x1000L;
  match Sys_.mmu_translate sys ~access:Ops.Aload 0xFFFF_FF80_0000_5123L with
  | Ok (pa, _) -> Alcotest.(check int64) "ttbr1 translation" 0x7123L pa
  | Error _ -> Alcotest.fail "expected ttbr1 mapping"

let test_exception_model () =
  let sys, _, slots = mk_sys_over_mem () in
  slots.(Sys_.current_el) <- 0L;
  slots.(Sys_.nzcv) <- 0xAL;
  slots.(Sys_.daif) <- 0L;
  slots.(Sys_.vbar_el1) <- 0x8000L;
  sys.Ops.set_pc 0x4000L;
  (* SVC from EL0 *)
  Sys_.take_exception sys ~ec:0x15L ~iss:7L;
  Alcotest.(check int64) "EL1 after exception" 1L slots.(Sys_.current_el);
  Alcotest.(check int64) "ELR is next insn for SVC" 0x4004L slots.(Sys_.elr_el1);
  Alcotest.(check int64) "vector entry" 0x8400L (sys.Ops.get_pc ());
  Alcotest.(check bool) "IRQ masked" true (Int64.logand slots.(Sys_.daif) 2L <> 0L);
  Alcotest.(check int64) "ESR ec" 0x15L (Int64.shift_right_logical slots.(Sys_.esr_el1) 26);
  Alcotest.(check int64) "ESR iss" 7L (Int64.logand slots.(Sys_.esr_el1) 0xFFFFL);
  (* SPSR captured the EL0 state incl. flags *)
  Alcotest.(check int64) "SPSR nzcv" 0xAL (Int64.shift_right_logical slots.(Sys_.spsr_el1) 28);
  (* ERET restores *)
  slots.(Sys_.nzcv) <- 0L;
  Sys_.eret sys;
  Alcotest.(check int64) "back to EL0" 0L slots.(Sys_.current_el);
  Alcotest.(check int64) "flags restored" 0xAL slots.(Sys_.nzcv);
  Alcotest.(check int64) "pc = elr" 0x4004L (sys.Ops.get_pc ());
  Alcotest.(check bool) "IRQ unmasked again" true (Int64.logand slots.(Sys_.daif) 2L = 0L)

let test_irq_delivery_masking () =
  let sys, _, slots = mk_sys_over_mem () in
  slots.(Sys_.current_el) <- 1L;
  slots.(Sys_.daif) <- 2L;
  slots.(Sys_.vbar_el1) <- 0x8000L;
  sys.Ops.set_pc 0x4000L;
  Alcotest.(check bool) "masked: not delivered" false (Sys_.deliver_irq sys);
  slots.(Sys_.daif) <- 0L;
  Alcotest.(check bool) "unmasked: delivered" true (Sys_.deliver_irq sys);
  Alcotest.(check int64) "irq vector (same EL)" 0x8280L (sys.Ops.get_pc ());
  Alcotest.(check int64) "elr = interrupted pc" 0x4000L slots.(Sys_.elr_el1)

let test_new_instruction_semantics () =
  let regs = Array.make 32 0L in
  regs.(2) <- 0xAABBCCDD11223344L;
  regs.(3) <- 0x0102030405060708L;
  (* EXTR x1, x2, x3, #8: (x2:x3) >> 8 *)
  let w = assemble_one (fun a -> A.extr a A.x1 A.x2 A.x3 8) in
  (match run_one_insn w ~regs with
  | Ok (gpr, _, _, _) -> Alcotest.(check int64) "extr" 0x4401020304050607L gpr.(1)
  | Error _ -> Alcotest.fail "extr undefined");
  (* ROR x1, x2, #16 *)
  let w = assemble_one (fun a -> A.ror_imm a A.x1 A.x2 16) in
  (match run_one_insn w ~regs with
  | Ok (gpr, _, _, _) -> Alcotest.(check int64) "ror imm" 0x3344AABBCCDD1122L gpr.(1)
  | Error _ -> Alcotest.fail "ror undefined");
  (* DUP v0.2d, x2 then UMOV x1, v0.d[1] *)
  let w = assemble_one (fun a -> A.dup_2d a A.d0 A.x2) in
  (match run_one_insn w ~regs with
  | Ok (_, vec, _, _) ->
    Alcotest.(check int64) "dup lo" regs.(2) vec.(0);
    Alcotest.(check int64) "dup hi" regs.(2) vec.(1)
  | Error _ -> Alcotest.fail "dup undefined");
  (* add_ext with UXTB: x1 = x2 + (x3 & 0xff) << 1 *)
  let w = assemble_one (fun a -> A.add_ext ~option:0 ~amount:1 a A.x1 A.x2 A.x3) in
  (match run_one_insn w ~regs with
  | Ok (gpr, _, _, _) ->
    Alcotest.(check int64) "add_ext uxtb lsl1" (Int64.add regs.(2) 0x10L) gpr.(1)
  | Error _ -> Alcotest.fail "add_ext undefined")

let test_ccmp_semantics () =
  (* CCMP x1, #5, #nzcv, EQ: with Z set, flags = cmp(x1,5); else nzcv. *)
  let run ~z ~x1 ~nzcv_imm =
    let m = model () in
    let w = assemble_one (fun a -> A.ccmp_imm a A.x1 5 nzcv_imm A.EQ) in
    let d = Option.get (Ssa.Offline.decode m w) in
    let action = Ssa.Offline.action m d.Adl.Decode.name in
    let gpr = Array.make 32 0L in
    gpr.(1) <- x1;
    let slots = Array.make 16 0L in
    slots.(Sys_.nzcv) <- (if z then 4L else 0L);
    let st = Toy_like.state gpr slots in
    let field n = if n = "__el" then 1L else List.assoc n d.Adl.Decode.field_values in
    Ssa.Interp.run st action ~field;
    slots.(Sys_.nzcv)
  in
  (* cond holds: x1=5 -> cmp equal -> Z|C *)
  Alcotest.(check int64) "ccmp taken, equal" 6L (run ~z:true ~x1:5L ~nzcv_imm:0);
  (* cond holds: x1=7 -> 7-5 positive -> C only *)
  Alcotest.(check int64) "ccmp taken, greater" 2L (run ~z:true ~x1:7L ~nzcv_imm:0);
  (* cond fails -> immediate nzcv *)
  Alcotest.(check int64) "ccmp not taken" 9L (run ~z:false ~x1:5L ~nzcv_imm:9)

let test_exclusives () =
  (* LDXR arms the monitor; STXR succeeds (status 0) then disarms; a bare
     STXR fails (status 1). *)
  let m = model () in
  let run_seq words =
    let gpr = Array.make 32 0L in
    gpr.(2) <- 0x1000L;
    gpr.(5) <- 0xDEADL;
    let vec = Array.make 64 0L in
    let slots = Array.make 16 0L in
    let mem = Hashtbl.create 8 in
    let st =
      {
        Ssa.Interp.bank_read = (fun bank i -> if bank = 0 then gpr.(i land 31) else vec.(i land 63));
        bank_write = (fun bank i v -> if bank = 0 then gpr.(i land 31) <- v else vec.(i land 63) <- v);
        reg_read = (fun sl -> slots.(sl));
        reg_write = (fun sl v -> slots.(sl) <- v);
        pc_read = (fun () -> 0x1000L);
        pc_write = (fun _ -> ());
        mem_read = (fun bits a -> Dbt_util.Bits.zero_extend (try Hashtbl.find mem a with Not_found -> 0L) ~width:bits);
        mem_write = (fun bits a v -> Hashtbl.replace mem a (Dbt_util.Bits.zero_extend v ~width:bits));
        coproc_read = (fun _ -> 0L);
        coproc_write = (fun _ _ -> ());
        effect = (fun _ _ -> ());
      }
    in
    List.iter
      (fun w ->
        let d = Option.get (Ssa.Offline.decode m w) in
        let action = Ssa.Offline.action m d.Adl.Decode.name in
        let field n = if n = "__el" then 1L else List.assoc n d.Adl.Decode.field_values in
        Ssa.Interp.run st action ~field)
      words;
    (gpr, mem)
  in
  let ldxr = assemble_one (fun a -> A.ldxr a A.x1 A.x2) in
  let stxr = assemble_one (fun a -> A.stxr a A.x3 A.x5 A.x2) in
  let gpr, mem = run_seq [ ldxr; stxr ] in
  Alcotest.(check int64) "stxr after ldxr succeeds" 0L gpr.(3);
  Alcotest.(check int64) "store happened" 0xDEADL (Hashtbl.find mem 0x1000L);
  let gpr, _ = run_seq [ stxr ] in
  Alcotest.(check int64) "bare stxr fails" 1L gpr.(3)

(* Robustness: the decoder is total and every decodable word's action can
   be interpreted on an arbitrary state without crashing (fuzz). *)
let prop_decode_interp_total =
  QCheck2.Test.make ~name:"decoder+interpreter total on random words" ~count:800
    QCheck2.Gen.(map (fun x -> Int64.logand x 0xFFFFFFFFL) int64)
    (fun word ->
      match Ssa.Offline.decode (model ()) word with
      | None -> true
      | Some d ->
        (* br/blr family fields can encode opc=3.. but `when` filtered *)
        (match run_one_insn word ~regs:(Array.init 32 (fun i -> Int64.of_int (i * 1234567))) with
        | Ok _ | Error `Undefined -> true)
        && d.Adl.Decode.name <> ""
      | exception _ -> false)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "arm",
    [
      Alcotest.test_case "decode goldens" `Quick test_decode_goldens;
      Alcotest.test_case "assembler output decodes" `Quick test_assembler_decodes;
      q prop_bitmask_roundtrip;
      Alcotest.test_case "condition codes (16x16)" `Quick test_cond_codes;
      Alcotest.test_case "guest MMU walker" `Quick test_guest_mmu_walk;
      Alcotest.test_case "exception model" `Quick test_exception_model;
      Alcotest.test_case "irq masking" `Quick test_irq_delivery_masking;
      Alcotest.test_case "extr/ror/dup/add_ext semantics" `Quick test_new_instruction_semantics;
      Alcotest.test_case "ccmp semantics" `Quick test_ccmp_semantics;
      Alcotest.test_case "exclusive monitor" `Quick test_exclusives;
      q prop_decode_interp_total;
    ] )
