(* ADL front-end tests: lexing, parsing, type checking, decode trees. *)

open Adl

let arch () = Lazy.force Toy_arch.arch
let model () = Lazy.force Toy_arch.model

let test_parse_arch () =
  let a = arch () in
  Alcotest.(check string) "name" "toy" a.Ast.a_name;
  Alcotest.(check int) "wordsize" 64 a.Ast.a_wordsize;
  Alcotest.(check bool) "little endian" true a.Ast.a_little_endian;
  Alcotest.(check int) "banks" 1 (List.length a.Ast.a_banks);
  Alcotest.(check int) "slots" 2 (List.length a.Ast.a_slots);
  Alcotest.(check int) "decodes" 11 (List.length a.Ast.a_decodes);
  Alcotest.(check int) "executes" 11 (List.length a.Ast.a_executes);
  let gpr = Option.get (Ast.find_bank a "GPR") in
  Alcotest.(check int) "gpr count" 16 gpr.Ast.b_count;
  Alcotest.(check int) "gpr width" 64 gpr.Ast.b_width;
  let flags = Option.get (Ast.find_slot a "FLAGS") in
  Alcotest.(check int) "flags slot" 1 flags.Ast.s_index

let decode_name word =
  match Ssa.Offline.decode (model ()) word with
  | Some d -> d.Decode.name
  | None -> "<none>"

let test_decode_basic () =
  Alcotest.(check string) "add" "add" (decode_name (Toy_arch.enc_add ~rd:1 ~ra:2 ~rb:3 ~imm:5));
  Alcotest.(check string) "addi" "addi" (decode_name (Toy_arch.enc_addi ~rd:1 ~ra:2 ~imm:100));
  Alcotest.(check string) "halt" "halt" (decode_name Toy_arch.enc_halt);
  Alcotest.(check string) "undefined" "<none>" (decode_name 0xFF000000L)

let test_decode_fields () =
  let d = Option.get (Ssa.Offline.decode (model ()) (Toy_arch.enc_add ~rd:7 ~ra:2 ~rb:3 ~imm:0xABC)) in
  Alcotest.(check int64) "rd" 7L (Decode.field d "rd");
  Alcotest.(check int64) "ra" 2L (Decode.field d "ra");
  Alcotest.(check int64) "rb" 3L (Decode.field d "rb");
  Alcotest.(check int64) "imm" 0xABCL (Decode.field d "imm");
  Alcotest.(check bool) "not end of block" false d.Decode.ends_block;
  let b = Option.get (Ssa.Offline.decode (model ()) (Toy_arch.enc_beq ~ra:1 ~rb:2 ~off:16)) in
  Alcotest.(check bool) "beq ends block" true b.Decode.ends_block

let test_decode_when_predicates () =
  (* shl2 and shbig share one pattern, discriminated by a `when` clause. *)
  Alcotest.(check string) "small shift" "shl2" (decode_name (Toy_arch.enc_shl ~rd:1 ~ra:2 ~sh:5));
  Alcotest.(check string) "big shift" "shbig" (decode_name (Toy_arch.enc_shl ~rd:1 ~ra:2 ~sh:100))

(* Simple substring check. *)
let astring_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_errors () =
  let header = {|arch "t" { wordsize 64; endian little; bank R : uint64[4]; reg PC : uint64; } |} in
  let expect src pattern =
    let full = header ^ src in
    match
      try Ok (Typecheck.check (Parser.parse_string full))
      with Ast.Adl_error (msg, _) -> Error msg
    with
    | Error msg ->
      if not (astring_contains msg pattern) then
        Alcotest.failf "expected error with %S, got %S" pattern msg
    | Ok _ -> Alcotest.failf "expected an error containing %S" pattern
  in
  expect
    {| decode foo "00000000 f:4 00000000000000000000"; execute(foo) { uint64 x = y; } |}
    "unknown variable";
  expect
    {| decode foo "00000000 f:4 00000000000000000000"; execute(foo) { uint64 x = inst.nope; } |}
    "unknown instruction field";
  expect
    {| decode foo "00000000 f:4 0000000000000000000"; execute(foo) { } |}
    "covers";
  expect
    {| decode foo "00000000 f:4 00000000000000000000"; execute(foo) { uint64 x = read_register_bank(NOPE, 0); } |}
    "unknown register bank";
  expect {| decode foo "00000000 f:4 00000000000000000000"; |} "no matching execute";
  expect
    {| decode foo "00000000 f:4 00000000000000000000"; execute(foo) { uint64 x = 1; uint64 x = 2; } |}
    "redeclaration"

let test_lexer_edge_cases () =
  let toks = Lexer.tokenize "0xFFFFFFFFFFFFFFFF // comment\n /* block */ foo <<" in
  match List.map (fun t -> t.Lexer.tok) toks with
  | [ Lexer.INT v; Lexer.IDENT "foo"; Lexer.LTLT; Lexer.EOF ] ->
    Alcotest.(check int64) "max hex" (-1L) v
  | _ -> Alcotest.fail "unexpected token stream"

let test_decoder_tree_efficiency () =
  (* The decision tree must discriminate by opcode bits, not by trying every
     pattern linearly: its depth must be far below the entry count. *)
  let m = model () in
  let d = m.Ssa.Offline.decoder in
  Alcotest.(check bool) "tree depth reasonable" true (Decode.depth d.Decode.tree <= 4)

let suite =
  ( "adl",
    [
      Alcotest.test_case "parse arch" `Quick test_parse_arch;
      Alcotest.test_case "decode basic" `Quick test_decode_basic;
      Alcotest.test_case "decode fields" `Quick test_decode_fields;
      Alcotest.test_case "decode when" `Quick test_decode_when_predicates;
      Alcotest.test_case "front-end errors" `Quick test_errors;
      Alcotest.test_case "lexer edges" `Quick test_lexer_edge_cases;
      Alcotest.test_case "decoder tree" `Quick test_decoder_tree_efficiency;
    ] )
