open Dbt_util

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_mask () =
  check_i64 "mask 0" 0L (Bits.mask 0);
  check_i64 "mask 1" 1L (Bits.mask 1);
  check_i64 "mask 8" 0xFFL (Bits.mask 8);
  check_i64 "mask 63" Int64.max_int (Bits.mask 63);
  check_i64 "mask 64" (-1L) (Bits.mask 64)

let test_extract_insert () =
  check_i64 "extract mid" 0xCDL (Bits.extract 0xABCDEFL ~lo:8 ~len:8);
  check_i64 "extract top" 1L (Bits.extract Int64.min_int ~lo:63 ~len:1);
  check_i64 "insert" 0xAB12EFL (Bits.insert 0xABCDEFL ~lo:8 ~len:8 0x12L);
  check_i64 "insert truncates" 0xAB12EFL (Bits.insert 0xABCDEFL ~lo:8 ~len:8 0xF12L)

let test_sign_extend () =
  check_i64 "sext8 neg" (-1L) (Bits.sign_extend 0xFFL ~width:8);
  check_i64 "sext8 pos" 0x7FL (Bits.sign_extend 0x7FL ~width:8);
  check_i64 "sext32" (-2147483648L) (Bits.sign_extend 0x80000000L ~width:32);
  check_i64 "sext64 identity" (-5L) (Bits.sign_extend (-5L) ~width:64)

let test_rotate () =
  check_i64 "ror32" 0x80000000L (Bits.rotate_right 1L 1 ~width:32);
  check_i64 "ror64" Int64.min_int (Bits.rotate_right 1L 1 ~width:64);
  check_i64 "rol inverse" 0x12345678L (Bits.rotate_left (Bits.rotate_right 0x12345678L 13 ~width:32) 13 ~width:32)

let test_count () =
  check_int "popcount" 32 (Bits.popcount 0x5555555555555555L);
  check_int "clz 1" 63 (Bits.clz 1L);
  check_int "clz 0" 64 (Bits.clz 0L);
  check_int "clz32" 31 (Bits.clz ~width:32 1L);
  check_int "ctz" 4 (Bits.ctz 0x10L);
  check_int "ctz 0" 64 (Bits.ctz 0L)

let test_byte_swap () =
  check_i64 "bswap32" 0x78563412L (Bits.byte_swap 0x12345678L ~width:32);
  check_i64 "bswap16" 0x3412L (Bits.byte_swap 0x1234L ~width:16)

let test_add_with_carry () =
  let r, c, v = Bits.add_with_carry (-1L) 1L false in
  check_i64 "wrap result" 0L r;
  check_bool "wrap carry" true c;
  check_bool "wrap overflow" false v;
  let r, c, v = Bits.add_with_carry Int64.max_int 1L false in
  check_i64 "ovf result" Int64.min_int r;
  check_bool "ovf carry" false c;
  check_bool "ovf overflow" true v;
  let _, c, _ = Bits.add_with_carry (-1L) 0L true in
  check_bool "carry-in wrap" true c;
  let r, c, _ = Bits.add_with_carry ~width:32 0xFFFFFFFFL 0L true in
  check_i64 "w32 result" 0L r;
  check_bool "w32 carry" true c

let test_align () =
  check_i64 "align_down" 0x1000L (Bits.align_down 0x1FFFL 4096);
  check_i64 "align_up" 0x2000L (Bits.align_up 0x1001L 4096);
  check_bool "is_aligned" true (Bits.is_aligned 0x3000L 4096);
  check_bool "not aligned" false (Bits.is_aligned 0x3001L 4096)

(* Property tests *)
let prop_extract_insert =
  QCheck2.Test.make ~name:"insert then extract is identity" ~count:500
    QCheck2.Gen.(triple (int_range 0 56) (int_range 1 8) int64)
    (fun (lo, len, v) ->
      let v' = Bits.extract v ~lo:0 ~len in
      Bits.extract (Bits.insert 0L ~lo ~len v') ~lo ~len = v')

let prop_rotate_inverse =
  QCheck2.Test.make ~name:"rotate_left inverts rotate_right" ~count:500
    QCheck2.Gen.(pair (int_range 0 63) int64)
    (fun (n, x) ->
      Bits.rotate_left (Bits.rotate_right x n ~width:64) n ~width:64 = x)

let prop_popcount_split =
  QCheck2.Test.make ~name:"popcount splits at bit 32" ~count:500 QCheck2.Gen.int64
    (fun x ->
      Bits.popcount x
      = Bits.popcount (Bits.extract x ~lo:0 ~len:32) + Bits.popcount (Bits.extract x ~lo:32 ~len:32))

let prop_sign_extend_idempotent =
  QCheck2.Test.make ~name:"sign_extend is idempotent" ~count:500
    QCheck2.Gen.(pair (int_range 1 63) int64)
    (fun (w, x) ->
      let once = Bits.sign_extend x ~width:w in
      Bits.sign_extend once ~width:w = once)

let prop_add_with_carry_matches_int64 =
  QCheck2.Test.make ~name:"add_with_carry result matches Int64.add" ~count:500
    QCheck2.Gen.(pair int64 int64)
    (fun (a, b) ->
      let r, _, _ = Bits.add_with_carry a b false in
      r = Int64.add a b)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "bits",
    [
      Alcotest.test_case "mask" `Quick test_mask;
      Alcotest.test_case "extract/insert" `Quick test_extract_insert;
      Alcotest.test_case "sign_extend" `Quick test_sign_extend;
      Alcotest.test_case "rotate" `Quick test_rotate;
      Alcotest.test_case "popcount/clz/ctz" `Quick test_count;
      Alcotest.test_case "byte_swap" `Quick test_byte_swap;
      Alcotest.test_case "add_with_carry" `Quick test_add_with_carry;
      Alcotest.test_case "align" `Quick test_align;
      q prop_extract_insert;
      q prop_rotate_inverse;
      q prop_popcount_split;
      q prop_sign_extend_idempotent;
      q prop_add_with_carry_matches_int64;
    ] )
