(* SSA construction and optimization tests.

   The central property: for every instruction and random machine state,
   interpreting the *unoptimized* SSA and the SSA optimized at any level
   O1-O4 must produce identical final states. *)

open Ssa

let toy_arch () = Lazy.force Toy_arch.arch
let model () = Lazy.force Toy_arch.model

let build_unopt name =
  let arch = toy_arch () in
  Build.execute arch (Option.get (Adl.Ast.find_execute arch name))

let build_opt level name =
  let action = build_unopt name in
  let ctx = Offline.opt_context (toy_arch ()) name in
  Opt.optimize ~ctx ~level action;
  action

let test_paper_add_example () =
  (* The paper's Fig. 3 -> Fig. 6 flow: the optimized `add` collapses to a
     handful of statements (two reads, one add, one write, plus the folded
     immediate). *)
  let unopt = build_unopt "add" in
  let opt = build_opt 4 "add" in
  Alcotest.(check bool) "optimization shrinks add" true (Ir.size opt < Ir.size unopt);
  Alcotest.(check int) "single block" 1 (List.length opt.Ir.blocks);
  Alcotest.(check bool) "small" true (Ir.size opt <= 12);
  (* No variable traffic must survive in straight-line code at O4. *)
  let has_var_ops =
    List.exists
      (fun b ->
        List.exists
          (fun i -> match i.Ir.desc with Ir.Var_read _ | Ir.Var_write _ -> true | _ -> false)
          b.Ir.insts)
      opt.Ir.blocks
  in
  Alcotest.(check bool) "no var ops" false has_var_ops

let test_opt_levels_shrink () =
  let size_at level =
    List.fold_left
      (fun acc x -> acc + Ir.size (build_opt level x.Adl.Ast.x_name))
      0
      (toy_arch ()).Adl.Ast.a_executes
  in
  let s1 = size_at 1 and s4 = size_at 4 in
  Alcotest.(check bool) (Printf.sprintf "O4 (%d) < O1 (%d)" s4 s1) true (s4 < s1)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_ssa_printer () =
  let opt = build_opt 4 "add" in
  let s = Ir.to_string opt in
  Alcotest.(check bool) "mentions bankregread" true (contains s "bankregread")

(* Differential testing: unoptimized vs optimized, on random states. *)
let run_action action fields state =
  let st = Toy_arch.interp_state state in
  Interp.run st action ~field:(fun n -> List.assoc n fields)

let encodings prng =
  let r n = Dbt_util.Prng.int prng n in
  [
    Toy_arch.enc_add ~rd:(r 16) ~ra:(r 16) ~rb:(r 16) ~imm:(r 4096);
    Toy_arch.enc_addi ~rd:(r 16) ~ra:(r 16) ~imm:(r 65536);
    Toy_arch.enc_beq ~ra:(r 16) ~rb:(r 16) ~off:(r 65536);
    Toy_arch.enc_ld ~rd:(r 16) ~ra:(r 16) ~off:(r 256 * 8);
    Toy_arch.enc_st ~rs:(r 16) ~ra:(r 16) ~off:(r 256 * 8);
    Toy_arch.enc_halt;
    Toy_arch.enc_csel ~rd:(r 16) ~ra:(r 16) ~rb:(r 16) ~cond:(r 16);
    Toy_arch.enc_shl ~rd:(r 16) ~ra:(r 16) ~sh:(r 128);
    Toy_arch.enc_fadd ~rd:(r 16) ~ra:(r 16) ~rb:(r 16);
    Toy_arch.enc_loopy ~rd:(r 16) ~n:(r 16);
  ]

let test_opt_equivalence () =
  let prng = Dbt_util.Prng.create 42L in
  let m = model () in
  for _ = 1 to 40 do
    List.iter
      (fun word ->
        match Offline.decode m word with
        | None -> Alcotest.failf "undecodable test encoding %Lx" word
        | Some d ->
          let fields = d.Adl.Decode.field_values in
          let base = Toy_arch.fresh_state () in
          for i = 0 to 15 do
            base.Toy_arch.gpr.(i) <- Dbt_util.Prng.int64 prng
          done;
          base.Toy_arch.slots.(0) <- 0x1000L;
          base.Toy_arch.slots.(1) <- Int64.of_int (Dbt_util.Prng.int prng 16);
          let unopt_state = Toy_arch.clone_state base in
          let name = d.Adl.Decode.name in
          run_action (build_unopt name) fields unopt_state;
          List.iter
            (fun level ->
              let opt_state = Toy_arch.clone_state base in
              run_action (build_opt level name) fields opt_state;
              if not (Toy_arch.state_equal unopt_state opt_state) then
                Alcotest.failf "O%d changed semantics of %s (word %Lx)" level name word)
            [ 1; 2; 3; 4 ])
      (encodings prng)
  done

let test_fixed_control_flow_detection () =
  let field_of name v = fun f -> if f = name then v else 0L in
  (* `add` is straight-line: fixed. *)
  Alcotest.(check bool) "add fixed" true
    (Gen.has_fixed_control_flow (build_opt 4 "add") ~field:(fun _ -> 0L));
  (* `beq` branches on register values: dynamic. *)
  Alcotest.(check bool) "beq dynamic" false
    (Gen.has_fixed_control_flow (build_opt 4 "beq") ~field:(fun _ -> 0L));
  (* `loopy` has a fixed loop: unrolls, stays fixed. *)
  Alcotest.(check bool) "loopy fixed" true
    (Gen.has_fixed_control_flow (build_opt 4 "loopy") ~field:(field_of "n" 7L));
  (* `csel` uses select, not branches: fixed. *)
  Alcotest.(check bool) "csel fixed" true
    (Gen.has_fixed_control_flow (build_opt 4 "csel") ~field:(fun _ -> 0L))

let test_offline_fold_fp () =
  (* fp64_add over two constants must fold offline via softfloat. *)
  let src =
    {|
arch "t" { wordsize 64; endian little; bank R : uint64[4]; reg PC : uint64; }
decode f "00000000 d:4 00000000000000000000";
execute(f) {
  write_register_bank(R, inst.d, fp64_add(0x3FF0000000000000, 0x4000000000000000));
}
|}
  in
  let m = Offline.build ~opt_level:4 src in
  let action = Offline.action m "f" in
  let has_const_3 =
    List.exists
      (fun b ->
        List.exists
          (fun i -> i.Ir.desc = Ir.Const 0x4008000000000000L (* 3.0 *))
          b.Ir.insts)
      action.Ir.blocks
  in
  Alcotest.(check bool) "fp folded to 3.0" true has_const_3

(* The full ARMv8-A model must be semantically identical at every offline
   optimization level: run random instruction instances through the SSA
   interpreter at O1 and O4 and compare complete final states. *)
let test_arm_opt_levels_agree () =
  let m1 = Guest_arm.Arm.model_at_level 1 in
  let m4 = Guest_arm.Arm.model_at_level 4 in
  let prng = Dbt_util.Prng.create 20260706L in
  let mk_state () =
    let gpr = Array.make 32 0L in
    let vec = Array.make 64 0L in
    let slots = Array.make 16 0L in
    for i = 0 to 31 do gpr.(i) <- Dbt_util.Prng.int64 prng done;
    for i = 0 to 63 do vec.(i) <- Dbt_util.Prng.int64 prng done;
    slots.(2) <- Int64.of_int (Dbt_util.Prng.int prng 16); (* NZCV *)
    slots.(3) <- 1L; (* EL1 *)
    (gpr, vec, slots)
  in
  let run model word (gpr0, vec0, slots0) =
    match Offline.decode model word with
    | None -> None
    | Some d ->
      let gpr = Array.copy gpr0 and vec = Array.copy vec0 and slots = Array.copy slots0 in
      let pc = ref 0x4000L in
      let writes = ref [] in
      let st =
        {
          Interp.bank_read = (fun bank i -> if bank = 0 then gpr.(i land 31) else vec.(i land 63));
          bank_write = (fun bank i v -> if bank = 0 then gpr.(i land 31) <- v else vec.(i land 63) <- v);
          reg_read = (fun sl -> slots.(sl));
          reg_write = (fun sl v -> slots.(sl) <- v);
          pc_read = (fun () -> !pc);
          pc_write = (fun v -> pc := v);
          mem_read =
            (fun bits a -> Dbt_util.Bits.zero_extend (Int64.mul a 0x9E3779B97F4A7C15L) ~width:bits);
          mem_write = (fun bits a v -> writes := (bits, a, v) :: !writes);
          coproc_read = (fun id -> Int64.mul id 7L);
          coproc_write = (fun id v -> writes := (0, id, v) :: !writes);
          effect = (fun name args -> writes := (1, Int64.of_int (Hashtbl.hash name), List.fold_left Int64.add 0L args) :: !writes);
        }
      in
      let field n = if n = "__el" then 1L else List.assoc n d.Adl.Decode.field_values in
      Interp.run st (Offline.action model d.Adl.Decode.name) ~field;
      Some (gpr, vec, slots, !pc, !writes)
  in
  let r n = Dbt_util.Prng.int prng n in
  let words = ref [] in
  (* random instances of every decodable class: flip random field bits on a
     set of template encodings *)
  let templates =
    [ 0x8B020020L; 0x11001020L; 0xF9400020L; 0xA9400420L; 0x9AC20820L; 0x1E602820L;
      0x4EE28420L; 0x4E62D420L; 0xD2800140L; 0x92401C20L; 0xEB02003FL; 0x9A821040L;
      0xDAC01020L; 0x13017C41L; 0x93407C41L; 0x1E604020L; 0x9E620020L ]
  in
  for _ = 1 to 300 do
    let t = List.nth templates (r (List.length templates)) in
    (* randomize register fields (bits 0-4, 5-9, 16-20) *)
    let w = Dbt_util.Bits.insert t ~lo:0 ~len:5 (Int64.of_int (r 32)) in
    let w = Dbt_util.Bits.insert w ~lo:5 ~len:5 (Int64.of_int (r 32)) in
    let w = Dbt_util.Bits.insert w ~lo:16 ~len:5 (Int64.of_int (r 32)) in
    words := w :: !words
  done;
  let tested = ref 0 in
  List.iter
    (fun word ->
      let st = mk_state () in
      match (run m1 word st, run m4 word st) with
      | Some a, Some b ->
        incr tested;
        if a <> b then Alcotest.failf "O1 and O4 disagree on %08Lx" word
      | None, None -> ()
      | _ -> Alcotest.failf "decode differs across levels for %08Lx" word)
    !words;
  Alcotest.(check bool) "tested a reasonable sample" true (!tested > 150)

let test_fixed_dynamic_analysis () =
  (* Paper Sec. 2.2.2: struct reads are fixed, bankregreads dynamic. *)
  let m = Lazy.force Guest_arm.Arm.model in
  let action = Ssa.Offline.action m "add_sub_imm" in
  let r = Analysis.classify action in
  let seen_fixed_struct = ref false and seen_dyn_bankread = ref false in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.desc with
          | Ir.Struct _ ->
            if Hashtbl.find_opt r.Analysis.of_stmt i.Ir.id <> Some Analysis.Dynamic then
              seen_fixed_struct := true
          | Ir.Bank_read _ ->
            if Hashtbl.find_opt r.Analysis.of_stmt i.Ir.id = Some Analysis.Dynamic then
              seen_dyn_bankread := true
          | _ -> ())
        b.Ir.insts)
    action.Ir.blocks;
  Alcotest.(check bool) "struct reads fixed" true !seen_fixed_struct;
  Alcotest.(check bool) "bank reads dynamic" true !seen_dyn_bankread;
  (* add_sub_imm's internal control flow keys on fields: all fixed. *)
  Alcotest.(check int) "no dynamic branches in add_sub_imm" 0 r.Analysis.dynamic_branches;
  (* b_cond tests NZCV: must have a dynamic branch. *)
  let bc = Ssa.Offline.action m "b_cond" in
  let rbc = Analysis.classify bc in
  Alcotest.(check bool) "b_cond has a dynamic branch" true (rbc.Analysis.dynamic_branches > 0)

let suite =
  ( "ssa",
    [
      Alcotest.test_case "paper add example" `Quick test_paper_add_example;
      Alcotest.test_case "opt levels shrink code" `Quick test_opt_levels_shrink;
      Alcotest.test_case "printer" `Quick test_ssa_printer;
      Alcotest.test_case "opt equivalence (differential)" `Quick test_opt_equivalence;
      Alcotest.test_case "fixed control flow detection" `Quick test_fixed_control_flow_detection;
      Alcotest.test_case "offline fp folding" `Quick test_offline_fold_fp;
      Alcotest.test_case "ARM model O1 vs O4 (differential)" `Slow test_arm_opt_levels_agree;
      Alcotest.test_case "fixed/dynamic analysis" `Quick test_fixed_dynamic_analysis;
    ] )
