(* Softfloat is validated against the host FPU: OCaml floats are IEEE
   binary64 with round-to-nearest-even, so for every binary64 operation the
   host is a bit-exact oracle (modulo NaN payloads, which we compare as
   "both NaN"). *)

open Softfloat

let flags () = Sf_types.new_flags ()

let same_f64 a b = a = b || (F64.is_nan a && F64.is_nan b)

let check_same name expected got =
  if not (same_f64 expected got) then
    Alcotest.failf "%s: expected %Lx (%h) got %Lx (%h)" name expected (F64.to_float expected) got
      (F64.to_float got)

let binop_cases =
  [
    ("1.5+2.25", 1.5, 2.25, `Add);
    ("sub eq", 1.0, 1.0, `Sub);
    ("cancel", 1.0000000000000002, 1.0, `Sub);
    ("mul", 1.5, 3.0, `Mul);
    ("mul tiny", 1e-308, 1e-10, `Mul);
    ("div", 1.0, 3.0, `Div);
    ("div denormal", 4e-320, 3.0, `Div);
    ("add inf", infinity, 1.0, `Add);
    ("inf-inf", infinity, infinity, `Sub);
    ("0/0", 0.0, 0.0, `Div);
    ("x/0", 5.0, 0.0, `Div);
    ("-0 + +0", -0.0, 0.0, `Add);
    ("subnormal sum", 5e-324, 5e-324, `Add);
    ("near-overflow", 1.7e308, 1.7e308, `Add);
  ]

let test_binop_vectors () =
  List.iter
    (fun (name, x, y, op) ->
      let a = F64.of_float x and b = F64.of_float y in
      let host, mine =
        match op with
        | `Add -> (x +. y, F64.add (flags ()) a b)
        | `Sub -> (x -. y, F64.sub (flags ()) a b)
        | `Mul -> (x *. y, F64.mul (flags ()) a b)
        | `Div -> (x /. y, F64.div (flags ()) a b)
      in
      check_same name (F64.of_float host) mine)
    binop_cases

let test_sqrt_vectors () =
  List.iter
    (fun x ->
      let host = F64.of_float (Float.sqrt x) in
      let mine = F64.sqrt (flags ()) (F64.of_float x) in
      check_same (Printf.sprintf "sqrt %h" x) host mine)
    [ 0.0; 1.0; 2.0; 4.0; 0.5; 1e300; 1e-300; 5e-324; 2.2250738585072014e-308; 3.14159; 1e16 ]

let test_sqrt_nan_sign () =
  (* Table 2 of the paper: x86 yields -NaN on negative inputs, ARM +NaN. *)
  let neg = F64.of_float (-0.5) in
  let x86 = Archfp.x86_sqrtsd neg and arm = Archfp.arm_fsqrt neg in
  Alcotest.(check bool) "x86 sign" true (F64.sign x86);
  Alcotest.(check bool) "arm sign" false (F64.sign arm);
  Alcotest.(check bool) "both nan" true (F64.is_nan x86 && F64.is_nan arm);
  (* -0.0 has an exact square root of -0.0 on both. *)
  check_same "sqrt -0 x86" F64.neg_zero (Archfp.x86_sqrtsd F64.neg_zero);
  check_same "sqrt -0 arm" F64.neg_zero (Archfp.arm_fsqrt F64.neg_zero);
  (* The fix-up turns the x86 result into the ARM result. *)
  check_same "fixup" arm (Archfp.fixup_sqrt_result ~input:neg x86)

let test_flags () =
  let f = flags () in
  let _ = F64.div f (F64.of_float 1.0) F64.zero in
  Alcotest.(check bool) "div_by_zero" true f.Sf_types.div_by_zero;
  let f = flags () in
  let _ = F64.add f F64.infinity F64.neg_infinity in
  Alcotest.(check bool) "invalid" true f.Sf_types.invalid;
  let f = flags () in
  let big = F64.of_float 1.7976931348623157e308 in
  let _ = F64.mul f big big in
  Alcotest.(check bool) "overflow" true f.Sf_types.overflow;
  Alcotest.(check bool) "inexact" true f.Sf_types.inexact

let test_compare () =
  let f = flags () in
  let one = F64.of_float 1.0 and two = F64.of_float 2.0 in
  Alcotest.(check bool) "lt" true (F64.lt f one two);
  Alcotest.(check bool) "le eq" true (F64.le f one one);
  Alcotest.(check bool) "eq zeros" true (F64.eq f F64.zero F64.neg_zero);
  let nan = F64.default_nan Sf_types.Arm_nan in
  Alcotest.(check bool) "nan not eq" false (F64.eq f nan nan);
  Alcotest.(check bool) "nan not lt" false (F64.lt f nan one);
  Alcotest.(check bool) "neg lt pos" true (F64.lt f (F64.of_float (-1.0)) one)

let test_int_conversions () =
  let f = flags () in
  List.iter
    (fun v ->
      Alcotest.(check int64)
        (Printf.sprintf "of_int64 %Ld" v)
        (F64.of_float (Int64.to_float v))
        (F64.of_int64 f v))
    [ 0L; 1L; -1L; 123456789L; Int64.max_int; Int64.min_int; 4503599627370497L ];
  List.iter
    (fun x ->
      Alcotest.(check int64)
        (Printf.sprintf "to_int64 %h" x)
        (Int64.of_float x)
        (F64.to_int64 f (F64.of_float x)))
    [ 0.0; 1.9; -1.9; 1e15; -1e15; 0.5 ]

let test_f32_basics () =
  let f = flags () in
  let a = F32.of_float 1.5 and b = F32.of_float 2.5 in
  Alcotest.(check int64) "f32 add" (F32.of_float 4.0) (F32.add f a b);
  Alcotest.(check int64) "f32 mul" (F32.of_float 3.75) (F32.mul f a b);
  Alcotest.(check int64) "f32 div" (F32.of_float 0.6) (F32.div f a b);
  Alcotest.(check int64) "f32 sqrt" (F32.of_float 1.5) (F32.sqrt f (F32.of_float 2.25));
  (* Round-trip through f64 is exact for f32 values. *)
  Alcotest.(check int64) "f32->f64->f32" a (F64.to_f32 f (F32.to_f64 f a))

(* Generator biased towards interesting exponents: uniform bit patterns are
   almost always huge-exponent normals. *)
let f64_gen =
  QCheck2.Gen.(
    oneof
      [
        int64;
        (* small exponent range around 1.0 *)
        map2
          (fun frac e ->
            Int64.logor
              (Int64.logand frac 0xFFFFFFFFFFFFFL)
              (Int64.shift_left (Int64.of_int (1023 + e)) 52))
          int64 (int_range (-60) 60);
        (* subnormals *)
        map (fun f -> Int64.logand f 0xFFFFFFFFFFFFFL) int64;
        oneofl
          [ 0L; Int64.min_int; F64.infinity; F64.neg_infinity; F64.default_nan Sf_types.Arm_nan ];
      ])

let mk_prop name host mine =
  QCheck2.Test.make ~name ~count:2000 QCheck2.Gen.(pair f64_gen f64_gen) (fun (a, b) ->
      let expected = F64.of_float (host (F64.to_float a) (F64.to_float b)) in
      same_f64 expected (mine (flags ()) a b))

let prop_add = mk_prop "f64 add matches host" ( +. ) F64.add
let prop_sub = mk_prop "f64 sub matches host" ( -. ) F64.sub
let prop_mul = mk_prop "f64 mul matches host" ( *. ) F64.mul
let prop_div = mk_prop "f64 div matches host" ( /. ) F64.div

let prop_sqrt =
  QCheck2.Test.make ~name:"f64 sqrt matches host" ~count:2000 f64_gen (fun a ->
      let expected = F64.of_float (Float.sqrt (F64.to_float a)) in
      same_f64 expected (F64.sqrt (flags ()) a))

let prop_compare =
  QCheck2.Test.make ~name:"f64 lt matches host" ~count:2000 QCheck2.Gen.(pair f64_gen f64_gen)
    (fun (a, b) -> F64.lt (flags ()) a b = (F64.to_float a < F64.to_float b))

let prop_f32_roundtrip =
  QCheck2.Test.make ~name:"f32->f64 conversion matches host" ~count:2000 QCheck2.Gen.int64
    (fun bits ->
      let b32 = Int64.logand bits 0xFFFFFFFFL in
      let expected = F64.of_float (F32.to_float b32) in
      same_f64 expected (F32.to_f64 (flags ()) b32))

let prop_f64_to_f32 =
  QCheck2.Test.make ~name:"f64->f32 conversion matches host" ~count:2000 f64_gen (fun a ->
      (* OCaml exposes binary32 rounding via Int32.bits_of_float. *)
      let expected = Int64.logand (Int64.of_int32 (Int32.bits_of_float (F64.to_float a))) 0xFFFFFFFFL in
      let got = F64.to_f32 (flags ()) a in
      expected = got || (F32.is_nan expected && F32.is_nan got))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "softfloat",
    [
      Alcotest.test_case "binop vectors" `Quick test_binop_vectors;
      Alcotest.test_case "sqrt vectors" `Quick test_sqrt_vectors;
      Alcotest.test_case "sqrt nan sign (Table 2)" `Quick test_sqrt_nan_sign;
      Alcotest.test_case "exception flags" `Quick test_flags;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "int conversions" `Quick test_int_conversions;
      Alcotest.test_case "f32 basics" `Quick test_f32_basics;
      q prop_add;
      q prop_sub;
      q prop_mul;
      q prop_div;
      q prop_sqrt;
      q prop_compare;
      q prop_f32_roundtrip;
      q prop_f64_to_f32;
    ] )
