(* Workload-layer tests: the mini guest OS syscall surface, the SPEC proxy
   builders, and the RV64IM guest. *)

module A = Guest_arm.Arm_asm
module K = Workloads.Kernel
module RE = Captive.Reference
module R = Guest_riscv.Rv_asm

let run_user_ref user =
  let r = RE.create (Guest_arm.Arm.ops ()) in
  K.install (K.reference_target r) ~user;
  let code = match RE.run ~max_instrs:20_000_000 r with RE.Poweroff c -> c | _ -> -1 in
  (code, RE.uart_output r)

let user body =
  let a = A.create ~base:K.user_va () in
  body a;
  A.assemble a

let test_syscall_surface () =
  (* exit code propagation *)
  let code, _ = run_user_ref (user (fun a ->
      A.movz a A.x0 123;
      A.movz a A.x8 0;
      A.svc a 0))
  in
  Alcotest.(check int) "exit code" 123 code;
  (* putchar ordering *)
  let _, out = run_user_ref (user (fun a ->
      List.iter
        (fun c ->
          A.movz a A.x0 (Char.code c);
          A.movz a A.x8 1;
          A.svc a 0)
        [ 'a'; 'b'; 'c' ];
      A.movz a A.x0 0;
      A.movz a A.x8 0;
      A.svc a 0))
  in
  Alcotest.(check string) "uart" "abc" out;
  (* uptime is monotone *)
  let code, _ = run_user_ref (user (fun a ->
      A.movz a A.x8 2;
      A.svc a 0;
      A.mov_reg a A.x19 A.x0;
      A.movz a A.x8 2;
      A.svc a 0;
      A.cmp_reg a A.x0 A.x19;
      A.cset a A.x0 A.CS;
      A.movz a A.x8 0;
      A.svc a 0))
  in
  Alcotest.(check int) "uptime monotone" 1 code;
  (* unknown syscall kills the task with 99 *)
  let code, _ = run_user_ref (user (fun a ->
      A.movz a A.x8 77;
      A.svc a 0))
  in
  Alcotest.(check int) "unknown syscall" 99 code

let test_fault_counters () =
  (* three data aborts, each skipped, then reported *)
  let code, _ = run_user_ref (user (fun a ->
      A.mov_const a A.x1 0x0070_0000L;
      A.ldr a A.x2 A.x1;
      A.ldr a A.x2 A.x1;
      A.ldr a A.x2 A.x1;
      A.movz a A.x8 4;
      A.svc a 0;
      A.movz a A.x8 0;
      A.svc a 0))
  in
  Alcotest.(check int) "fault count" 3 code

let test_user_cannot_write_kernel () =
  (* stores to kernel memory must not land *)
  let code, _ = run_user_ref (user (fun a ->
      A.mov_const a A.x1 (K.kva 0x83000L);
      A.mov_const a A.x2 0xFFL;
      A.str a A.x2 A.x1; (* faults, skipped *)
      A.movz a A.x8 3; (* ticks: reads the very location *)
      A.svc a 0;
      A.and_imm a A.x0 A.x0 0xFFL;
      A.movz a A.x8 0;
      A.svc a 0))
  in
  (* the tick counter must not have become 0xFF *)
  Alcotest.(check bool) "kernel data intact" true (code <> 0xFF)

let test_spec_builders () =
  (* every proxy must assemble and keep its labels resolvable at several
     scales *)
  List.iter
    (fun (b : Workloads.Spec.benchmark) ->
      List.iter
        (fun scale ->
          let img = b.Workloads.Spec.build ~scale in
          Alcotest.(check bool) (b.Workloads.Spec.name ^ " builds") true (Bytes.length img > 64))
        [ 1; 3 ])
    Workloads.Spec.all

let test_simbench_builders () =
  List.iter
    (fun (b : Simbench.bench) ->
      Alcotest.(check bool) (b.Simbench.name ^ " builds") true (Bytes.length b.Simbench.image > 16))
    (Simbench.all ())

(* --- RISC-V ------------------------------------------------------------------ *)

let run_rv image =
  let e = Captive.Engine.create (Guest_riscv.Riscv.ops ()) in
  Captive.Engine.load_image e ~addr:0x1000L image;
  Captive.Engine.set_entry e 0x1000L;
  match Captive.Engine.run ~max_cycles:100_000_000 e with
  | Captive.Engine.Poweroff c -> (c, Captive.Engine.uart_output e)
  | _ -> (-1, "")

let rv_exit_with body =
  let a = R.create ~base:0x1000L () in
  body a;
  R.li a R.a7 93L;
  R.ecall a;
  R.assemble a

let test_riscv_semantics () =
  (* arithmetic, shifts, comparisons *)
  let code, _ = run_rv (rv_exit_with (fun a ->
      R.li a R.t0 100L;
      R.li a R.t1 7L;
      R.mul a R.t2 R.t0 R.t1; (* 700 *)
      R.divu a R.t2 R.t2 R.t1; (* 100 *)
      R.remu a R.a0 R.t2 (* 100 mod ... *) R.t1; (* 2 *)
      R.slli a R.t0 R.a0 4; (* 32 *)
      R.add a R.a0 R.a0 R.t0 (* 34 *)))
  in
  Alcotest.(check int) "rv arith" 34 code;
  (* memory *)
  let code, _ = run_rv (rv_exit_with (fun a ->
      R.li a R.s2 0x40000L;
      R.li a R.t0 0x1234L;
      R.sd a R.t0 R.s2 0;
      R.ld a R.t1 R.s2 0;
      R.lbu a R.t2 R.s2 1; (* 0x12 *)
      R.sub a R.a0 R.t1 R.t0;
      R.add a R.a0 R.a0 R.t2))
  in
  Alcotest.(check int) "rv memory" 0x12 code;
  (* branches and jal *)
  let code, _ = run_rv (rv_exit_with (fun a ->
      R.li a R.t0 5L;
      R.li a R.a0 0L;
      R.label a "loop";
      R.add a R.a0 R.a0 R.t0;
      R.addi a R.t0 R.t0 (-1);
      R.bne a R.t0 R.zero "loop";
      (* a0 = 5+4+3+2+1 = 15 *)
      R.jal a R.ra "sub";
      R.j a "end";
      R.label a "sub";
      R.addi a R.a0 R.a0 100;
      (* jalr return *)
      R.i_type ~imm:0 ~rs1:R.ra ~funct3:0 ~rd:0 ~opcode:0b1100111 a;
      R.label a "end"))
  in
  Alcotest.(check int) "rv branches" 115 code

let test_riscv_engines_agree () =
  let image = rv_exit_with (fun a ->
      R.li a R.t0 12345L;
      R.li a R.t1 678L;
      R.mul a R.t2 R.t0 R.t1;
      R.xor_ a R.t2 R.t2 R.t0;
      R.srli a R.a0 R.t2 8)
  in
  let c, _ = run_rv image in
  let q =
    let e = Qemu_ref.Qemu_engine.create (Guest_riscv.Riscv.ops ()) in
    Qemu_ref.Qemu_engine.load_image e ~addr:0x1000L image;
    Qemu_ref.Qemu_engine.set_entry e 0x1000L;
    match Qemu_ref.Qemu_engine.run ~max_cycles:100_000_000 e with
    | Qemu_ref.Qemu_engine.Poweroff c -> c
    | _ -> -1
  in
  Alcotest.(check int) "rv engines agree" c q;
  Alcotest.(check bool) "rv ran" true (c >= 0)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "syscall surface" `Slow test_syscall_surface;
      Alcotest.test_case "fault counters" `Slow test_fault_counters;
      Alcotest.test_case "user cannot write kernel" `Slow test_user_cannot_write_kernel;
      Alcotest.test_case "SPEC builders" `Quick test_spec_builders;
      Alcotest.test_case "SimBench builders" `Quick test_simbench_builders;
      Alcotest.test_case "riscv semantics" `Quick test_riscv_semantics;
      Alcotest.test_case "riscv engines agree" `Quick test_riscv_engines_agree;
    ] )
