(* captive_run: command-line front end to the DBT engines.

     captive_run spec 429.mcf --engine captive --scale 2
     captive_run simbench Mem-Hot-MMU
     captive_run boot --engine qemu
     captive_run info
     captive_run ssa add_sub_imm --level 4

   `spec` runs a SPEC CPU2006 proxy under the mini guest OS, `simbench`
   one SimBench category on both engines, `boot` a demo user program on
   the mini-OS, `info` prints the loaded guest models, and `ssa` dumps an
   instruction's optimized SSA (the offline artifact of Fig. 6). *)

open Cmdliner

type engine_kind = Eng_captive | Eng_qemu | Eng_reference

let engine_conv =
  let parse = function
    | "captive" -> Ok Eng_captive
    | "qemu" -> Ok Eng_qemu
    | "reference" | "ref" -> Ok Eng_reference
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S (captive|qemu|reference)" s))
  in
  let print fmt e =
    Format.pp_print_string fmt
      (match e with Eng_captive -> "captive" | Eng_qemu -> "qemu" | Eng_reference -> "reference")
  in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(value & opt engine_conv Eng_captive & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc:"DBT engine: captive, qemu or reference.")

let scale_arg =
  Arg.(value & opt int 1 & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let verbose_stats_captive (e : Captive.Engine.t) =
  let s = e.Captive.Engine.stats in
  Printf.printf "cycles: %d\n" (Captive.Engine.cycles e);
  Printf.printf "blocks: executed %d, translated %d, chain hits %d\n"
    s.Captive.Engine.blocks_executed s.Captive.Engine.blocks_translated s.Captive.Engine.chain_hits;
  Printf.printf "guest instrs translated: %d -> host instrs %d (%.1f/guest), %d bytes\n"
    s.Captive.Engine.guest_instrs_translated s.Captive.Engine.host_instrs_emitted
    (float_of_int s.Captive.Engine.host_instrs_emitted
    /. float_of_int (max 1 s.Captive.Engine.guest_instrs_translated))
    s.Captive.Engine.host_bytes_emitted;
  Printf.printf "host page faults: %d, SMC invalidations: %d\n"
    e.Captive.Engine.machine.Hvm.Machine.faults s.Captive.Engine.smc_invalidations;
  Printf.printf "JIT wall time: decode %.1fms translate %.1fms regalloc %.1fms encode %.1fms\n"
    (1000. *. s.Captive.Engine.t_decode) (1000. *. s.Captive.Engine.t_translate)
    (1000. *. s.Captive.Engine.t_regalloc) (1000. *. s.Captive.Engine.t_encode)

let run_user ~engine ~user =
  let guest = Guest_arm.Arm.ops () in
  match engine with
  | Eng_captive ->
    let e = Captive.Engine.create guest in
    Workloads.Kernel.install (Workloads.Kernel.captive_target e) ~user;
    let code =
      match Captive.Engine.run ~max_cycles:50_000_000_000 e with
      | Captive.Engine.Poweroff c -> c
      | _ -> -1
    in
    print_string (Captive.Engine.uart_output e);
    Printf.printf "exit code: %d\n" code;
    verbose_stats_captive e
  | Eng_qemu ->
    let e = Qemu_ref.Qemu_engine.create guest in
    Workloads.Kernel.install (Workloads.Kernel.qemu_target e) ~user;
    let code =
      match Qemu_ref.Qemu_engine.run ~max_cycles:50_000_000_000 e with
      | Qemu_ref.Qemu_engine.Poweroff c -> c
      | _ -> -1
    in
    print_string (Qemu_ref.Qemu_engine.uart_output e);
    Printf.printf "exit code: %d\ncycles: %d\n" code (Qemu_ref.Qemu_engine.cycles e)
  | Eng_reference ->
    let r = Captive.Reference.create guest in
    Workloads.Kernel.install (Workloads.Kernel.reference_target r) ~user;
    let code =
      match Captive.Reference.run ~max_instrs:500_000_000 r with
      | Captive.Reference.Poweroff c -> c
      | _ -> -1
    in
    print_string (Captive.Reference.uart_output r);
    Printf.printf "exit code: %d (interpreted %d instructions)\n" code r.Captive.Reference.instrs_executed

(* --- spec ------------------------------------------------------------------- *)

let spec_names = List.map (fun b -> b.Workloads.Spec.name) Workloads.Spec.all

let spec_cmd =
  let bench =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK"
           ~doc:(Printf.sprintf "One of: %s" (String.concat ", " spec_names)))
  in
  let run name engine scale =
    match List.find_opt (fun b -> b.Workloads.Spec.name = name) Workloads.Spec.all with
    | None -> `Error (false, Printf.sprintf "unknown benchmark %S" name)
    | Some b ->
      run_user ~engine ~user:(b.Workloads.Spec.build ~scale);
      `Ok ()
  in
  Cmd.v (Cmd.info "spec" ~doc:"Run a SPEC CPU2006 proxy under the mini guest OS.")
    Term.(ret (const run $ bench $ engine_arg $ scale_arg))

(* --- simbench ------------------------------------------------------------------ *)

let simbench_cmd =
  let which = Arg.(value & pos 0 (some string) None & info [] ~docv:"CATEGORY") in
  let run which =
    let benches = Simbench.all () in
    let selected =
      match which with
      | None -> benches
      | Some n -> List.filter (fun b -> String.lowercase_ascii b.Simbench.name = String.lowercase_ascii n) benches
    in
    if selected = [] then `Error (false, "unknown SimBench category")
    else begin
      List.iter
        (fun b ->
          let r = Simbench.run_one b in
          Printf.printf "%-20s captive %8dk  qemu %8dk  speed-up %.2fx\n%!" r.Simbench.bench
            (r.Simbench.captive_cycles / 1000) (r.Simbench.qemu_cycles / 1000) r.Simbench.speedup)
        selected;
      `Ok ()
    end
  in
  Cmd.v (Cmd.info "simbench" ~doc:"Run SimBench categories on both engines.")
    Term.(ret (const run $ which))

(* --- boot ----------------------------------------------------------------------- *)

let boot_cmd =
  let run engine =
    let user =
      let a = Guest_arm.Arm_asm.create ~base:Workloads.Kernel.user_va () in
      String.iter
        (fun ch ->
          Guest_arm.Arm_asm.movz a Guest_arm.Arm_asm.x0 (Char.code ch);
          Guest_arm.Arm_asm.movz a Guest_arm.Arm_asm.x8 1;
          Guest_arm.Arm_asm.svc a 0)
        "captive mini-OS: up at EL0 with paging, syscalls and a timer\n";
      Guest_arm.Arm_asm.movz a Guest_arm.Arm_asm.x0 0;
      Guest_arm.Arm_asm.movz a Guest_arm.Arm_asm.x8 0;
      Guest_arm.Arm_asm.svc a 0;
      Guest_arm.Arm_asm.assemble a
    in
    run_user ~engine ~user
  in
  Cmd.v (Cmd.info "boot" ~doc:"Boot the mini guest OS with a demo user program.")
    Term.(const run $ engine_arg)

(* --- info ------------------------------------------------------------------------- *)

let info_cmd =
  let run () =
    List.iter
      (fun (ops : Guest.Ops.ops) ->
        let m = ops.Guest.Ops.model in
        Printf.printf "%-10s %s\n" ops.Guest.Ops.name ops.Guest.Ops.description;
        Printf.printf "           %d decode entries, %d execute actions, %d optimized SSA statements\n"
          (List.length m.Ssa.Offline.arch.Adl.Ast.a_decodes)
          (List.length m.Ssa.Offline.arch.Adl.Ast.a_executes)
          (Ssa.Offline.total_size m))
      [ Guest_arm.Arm.ops (); Guest_riscv.Riscv.ops () ]
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe the available guest models.") Term.(const run $ const ())

(* --- ssa --------------------------------------------------------------------------- *)

let ssa_cmd =
  let insn = Arg.(required & pos 0 (some string) None & info [] ~docv:"INSTRUCTION") in
  let level = Arg.(value & opt int 4 & info [ "l"; "level" ] ~docv:"N" ~doc:"Offline optimization level (1-4).") in
  let guest = Arg.(value & opt string "armv8-a" & info [ "g"; "guest" ] ~doc:"Guest model (armv8-a or rv64im).") in
  let classify = Arg.(value & flag & info [ "c"; "classify" ] ~doc:"Annotate statements as [f]ixed or [d]ynamic (Sec. 2.2.2).") in
  let run insn level guest classify =
    let model =
      match guest with
      | "armv8-a" -> Guest_arm.Arm.model_at_level level
      | "rv64im" -> Ssa.Offline.build ~opt_level:level Guest_riscv.Riscv_descr.source
      | g -> failwith ("unknown guest " ^ g)
    in
    match Hashtbl.find_opt model.Ssa.Offline.actions insn with
    | Some action ->
      if classify then begin
        print_string (Ssa.Analysis.to_string_annotated action);
        let f, d, fb, db = Ssa.Analysis.stats action in
        Printf.printf "\n%d fixed / %d dynamic statements; %d fixed / %d dynamic branches\n" f d fb db
      end
      else print_string (Ssa.Ir.to_string action)
    | None ->
      Printf.printf "no action %S; available:\n" insn;
      Hashtbl.iter (fun n _ -> Printf.printf "  %s\n" n) model.Ssa.Offline.actions
  in
  Cmd.v (Cmd.info "ssa" ~doc:"Dump an instruction's optimized SSA (the offline artifact).")
    Term.(const run $ insn $ level $ guest $ classify)

let () =
  let doc = "Retargetable system-level DBT hypervisor (Captive reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "captive_run" ~doc) [ spec_cmd; simbench_cmd; boot_cmd; info_cmd; ssa_cmd ]))
