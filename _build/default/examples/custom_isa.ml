(* Retargeting walkthrough: define a brand-new guest ISA in the ADL,
   inspect the offline pipeline (optimized SSA), and execute a program
   through the full generator -> DAG -> register allocator -> encoder ->
   executor chain.

     dune exec examples/custom_isa.exe

   The ISA is a tiny accumulator machine ("ACC-8"): 8 registers, 16-bit
   immediate loads, add/xor, a decrementing branch, and halt. *)

let acc8 =
  {|
arch "acc8" {
  wordsize 64;
  endian little;
  bank R : uint64[8];
  reg PC : uint64;
}

decode ldi  "0001 rd:3 0 imm16:16 00000000";
decode add  "0010 rd:3 0 ra:3 0 rb:3 0 0000000000000000";
decode xor  "0011 rd:3 0 ra:3 0 rb:3 0 0000000000000000";
decode dbnz "0100 rd:3 0 off16:16 00000000" ends_block;
decode halt "1111 0000 0000 0000 0000 0000 0000 0000" ends_block;

execute(ldi)  { write_register_bank(R, inst.rd, inst.imm16); }
execute(add)  {
  write_register_bank(R, inst.rd,
    read_register_bank(R, inst.ra) + read_register_bank(R, inst.rb));
}
execute(xor)  {
  write_register_bank(R, inst.rd,
    read_register_bank(R, inst.ra) ^ read_register_bank(R, inst.rb));
}
execute(dbnz) {
  uint64 v = read_register_bank(R, inst.rd) - 1;
  write_register_bank(R, inst.rd, v);
  if (v != 0) { write_pc(read_pc() - (sign_extend(inst.off16, 16) << 2)); }
  else { write_pc(read_pc() + 4); }
}
execute(halt) { halt(); }
|}

(* Hand assembler for ACC-8. *)
let ldi rd imm = (0b0001 lsl 28) lor (rd lsl 25) lor ((imm land 0xFFFF) lsl 8)
let add rd ra rb = (0b0010 lsl 28) lor (rd lsl 25) lor (ra lsl 21) lor (rb lsl 17)
let _xor rd ra rb = (0b0011 lsl 28) lor (rd lsl 25) lor (ra lsl 21) lor (rb lsl 17)
let dbnz rd off = (0b0100 lsl 28) lor (rd lsl 25) lor ((off land 0xFFFF) lsl 8)
let halt = 0xF0000000

let () =
  (* Offline stage: parse, type-check, optimize, build the decoder. *)
  let model = Ssa.Offline.build ~opt_level:4 acc8 in
  Printf.printf "offline: %d decode entries, %d SSA statements at O4\n\n"
    (List.length model.Ssa.Offline.arch.Adl.Ast.a_decodes)
    (Ssa.Offline.total_size model);
  print_endline "optimized SSA for `add` (paper Fig. 6 analogue):";
  print_string (Ssa.Ir.to_string (Ssa.Offline.action model "add"));

  (* A program: r1 = 5; r2 = 7; loop r3 times { r1 = r1 + r2 }; halt. *)
  let program = [ ldi 1 5; ldi 2 7; ldi 3 10; add 1 1 2; dbnz 3 1; halt ] in

  (* Online stage, by hand: translate each instruction through the DAG
     backend and execute the host code. *)
  let machine = Hvm.Machine.create ~mem_size:(4 * 1024 * 1024) () in
  let ctx =
    Hostir.Exec.create ~machine
      ~helpers:
        [| { Hostir.Exec.fn = (fun _ _ -> raise (Hvm.Machine.Powered_off 0)); cost = 0 } |]
      ~fault_handler:(fun _ _ _ ~bits:_ ~value:_ -> Hostir.Exec.Retry)
  in
  let dag_config =
    {
      Hostir.Dag.bank_offset = (fun ~bank:_ ~index -> 8 * index);
      slot_offset = (fun s -> 64 + (8 * s));
      lower_intrinsic = (fun _ -> Hostir.Dag.L_inline);
      effect_helper = (fun _ -> 0 (* halt *));
      coproc_read_helper = 0;
      coproc_write_helper = 0;
      split_va_check = false;
      as_switch_helper = 0;
    }
  in
  let translate word =
    match Ssa.Offline.decode model (Int64.of_int word) with
    | None -> invalid_arg "undefined ACC-8 instruction"
    | Some d ->
      let action = Ssa.Offline.action model d.Adl.Decode.name in
      let dag = Hostir.Dag.create dag_config in
      let field n = if n = "__el" then 0L else Adl.Decode.field d n in
      let inc = if d.Adl.Decode.ends_block then None else Some 4 in
      Ssa.Gen.translate (Hostir.Dag.emitter dag) action ~field ~inc_pc:inc;
      Hostir.Dag.raw dag (Hostir.Hir.Exit 0);
      let ra = Hostir.Regalloc.run (Hostir.Dag.finish dag) in
      Hostir.Encode.decode_program ~n_slots:ra.Hostir.Regalloc.n_slots (Hostir.Encode.encode ra)
  in
  let code = Array.of_list (List.map translate program) in
  print_endline "\nexecuting through the host backend:";
  (try
     while true do
       let idx = Int64.to_int ctx.Hostir.Exec.pc / 4 in
       ignore (Hostir.Exec.run ctx code.(idx))
     done
   with Hvm.Machine.Powered_off _ -> ());
  Printf.printf "r1 = %Ld (expected 5 + 10*7 = 75)\n" (Hostir.Exec.rf_read ctx 8);
  Printf.printf "simulated cycles: %d\n" machine.Hvm.Machine.cycles
