examples/custom_isa.mli:
