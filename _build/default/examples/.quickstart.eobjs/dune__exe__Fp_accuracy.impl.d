examples/fp_accuracy.ml: Captive Guest_arm Hvm Int64 List Printf Qemu_ref Softfloat
