examples/quickstart.ml: Captive Guest_arm Printf
