examples/retarget_riscv.ml: Adl Captive Guest Guest_riscv List Printf Qemu_ref Ssa
