examples/quickstart.mli:
