examples/custom_isa.ml: Adl Array Hostir Hvm Int64 List Printf Ssa
