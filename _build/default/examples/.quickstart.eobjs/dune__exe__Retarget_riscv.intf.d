examples/retarget_riscv.mli:
