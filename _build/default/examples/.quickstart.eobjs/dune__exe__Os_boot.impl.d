examples/os_boot.ml: Captive Char Guest_arm Hvm Printf Qemu_ref String Workloads
