examples/fp_accuracy.mli:
