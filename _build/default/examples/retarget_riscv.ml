(* Retargetability: the same two engines run an RV64IM guest, with zero
   engine changes - only the ADL description differs.

     dune exec examples/retarget_riscv.exe

   The guest computes the 30th Fibonacci number, writes a digest to the
   UART (plain MMIO stores work even for this user-level guest), and
   exits through the ECALL convention (a7 = 93). *)

module R = Guest_riscv.Rv_asm

let program () =
  let a = R.create ~base:0x1000L () in
  (* fib(30) iteratively in a0 *)
  R.li a R.t0 30L;
  R.li a R.a0 0L;
  R.li a R.a1 1L;
  R.label a "loop";
  R.add a R.t1 R.a0 R.a1;
  R.add a R.a0 R.zero R.a1;
  R.add a R.a1 R.zero R.t1;
  R.addi a R.t0 R.t0 (-1);
  R.bne a R.t0 R.zero "loop";
  (* print the last 6 decimal digits to the UART *)
  R.li a R.t2 0x09100000L;
  R.li a R.s2 100000L;
  R.label a "print";
  R.divu a R.t1 R.a0 R.s2;
  R.li a R.t0 10L;
  R.remu a R.t1 R.t1 R.t0;
  R.addi a R.t1 R.t1 48;
  R.sb a R.t1 R.t2 0;
  R.divu a R.s2 R.s2 R.t0;
  R.bne a R.s2 R.zero "print";
  (* exit(42) *)
  R.li a R.a0 42L;
  R.li a R.a7 93L;
  R.ecall a;
  R.assemble a

let () =
  let guest = Guest_riscv.Riscv.ops () in
  let image = program () in

  let e = Captive.Engine.create guest in
  Captive.Engine.load_image e ~addr:0x1000L image;
  Captive.Engine.set_entry e 0x1000L;
  (match Captive.Engine.run ~max_cycles:50_000_000 e with
  | Captive.Engine.Poweroff c ->
    Printf.printf "captive:    fib(30) ends ...%s  exit=%d  (%d cycles)\n"
      (Captive.Engine.uart_output e) c (Captive.Engine.cycles e)
  | _ -> print_endline "captive: did not finish");

  let q = Qemu_ref.Qemu_engine.create guest in
  Qemu_ref.Qemu_engine.load_image q ~addr:0x1000L image;
  Qemu_ref.Qemu_engine.set_entry q 0x1000L;
  (match Qemu_ref.Qemu_engine.run ~max_cycles:50_000_000 q with
  | Qemu_ref.Qemu_engine.Poweroff c ->
    Printf.printf "qemu-style: fib(30) ends ...%s  exit=%d  (%d cycles)\n"
      (Qemu_ref.Qemu_engine.uart_output q) c (Qemu_ref.Qemu_engine.cycles q)
  | _ -> print_endline "qemu-style: did not finish");
  print_endline "fib(30) = 832040";

  (* the retargeting effort, quantified *)
  let m = guest.Guest.Ops.model in
  Printf.printf "\nRV64IM model: %d decode entries, %d optimized SSA statements\n"
    (List.length m.Ssa.Offline.arch.Adl.Ast.a_decodes)
    (Ssa.Offline.total_size m)
