(* Boot the miniature guest OS (stage-1 paging, EL0/EL1, syscalls, timer
   interrupts) on both DBT engines and compare.

     dune exec examples/os_boot.exe

   The user program prints a banner via the putchar syscall, triggers a
   recoverable data abort, waits for two timer ticks, and exits. *)

module A = Guest_arm.Arm_asm
module K = Workloads.Kernel

let user_program () =
  let a = A.create ~base:K.user_va () in
  let print s =
    String.iter
      (fun ch ->
        A.movz a A.x0 (Char.code ch);
        A.movz a A.x8 1;
        A.svc a 0)
      s
  in
  print "hello from EL0\n";
  (* a recoverable fault: the kernel counts it and skips the load *)
  A.mov_const a A.x1 0x0070_0000L;
  A.ldr a A.x2 A.x1;
  print "survived a data abort\n";
  (* spin until the timer has ticked twice *)
  A.label a "wait";
  A.mov_const a A.x6 20000L;
  A.label a "burn";
  A.sub_imm a A.x6 A.x6 1;
  A.cbnz a A.x6 "burn";
  A.movz a A.x8 3;
  A.svc a 0;
  A.cmp_imm a A.x0 2;
  A.b_cond a A.CC "wait";
  print "timer ticked twice\n";
  (* exit(7) *)
  A.movz a A.x0 7;
  A.movz a A.x8 0;
  A.svc a 0;
  A.assemble a

let () =
  let guest = Guest_arm.Arm.ops () in
  let user = user_program () in

  let e = Captive.Engine.create guest in
  K.install (K.captive_target e) ~user;
  let code = match Captive.Engine.run ~max_cycles:500_000_000 e with
    | Captive.Engine.Poweroff c -> c
    | _ -> -1
  in
  Printf.printf "--- Captive ---\n%s(exit %d, %d simulated cycles, %d host page faults)\n\n"
    (Captive.Engine.uart_output e) code (Captive.Engine.cycles e)
    e.Captive.Engine.machine.Hvm.Machine.faults;

  let q = Qemu_ref.Qemu_engine.create guest in
  K.install (K.qemu_target q) ~user;
  let code = match Qemu_ref.Qemu_engine.run ~max_cycles:500_000_000 q with
    | Qemu_ref.Qemu_engine.Poweroff c -> c
    | _ -> -1
  in
  Printf.printf "--- QEMU-style baseline ---\n%s(exit %d, %d simulated cycles)\n\n"
    (Qemu_ref.Qemu_engine.uart_output q) code (Qemu_ref.Qemu_engine.cycles q);

  Printf.printf "Captive/QEMU cycle ratio: %.2fx\n"
    (float_of_int (Qemu_ref.Qemu_engine.cycles q) /. float_of_int (Captive.Engine.cycles e))
