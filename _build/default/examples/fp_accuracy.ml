(* Bit-accurate floating point (paper Sec. 2.5 / Table 2).

     dune exec examples/fp_accuracy.exe

   The guest executes FSQRT over the corner cases of Table 2.  Captive
   executes the host square-root instruction plus an inline fix-up; the
   QEMU-style engine calls a softfloat helper.  Both must produce the
   bit-exact ARMv8 results, including the NaN sign that differs from the
   host's SQRTSD. *)

module A = Guest_arm.Arm_asm

let inputs =
  [
    ("0.0", Int64.bits_of_float 0.0);
    ("-0.0", Int64.bits_of_float (-0.0));
    ("inf", Int64.bits_of_float infinity);
    ("-inf", Int64.bits_of_float neg_infinity);
    ("0.5", Int64.bits_of_float 0.5);
    ("-0.5", Int64.bits_of_float (-0.5));
    ("NaN", 0x7FF8000000000000L);
    ("-NaN", 0xFFF8000000000000L);
  ]

(* The guest computes fsqrt of each input and stores the result bits. *)
let program () =
  let a = A.create ~base:0x80000L () in
  List.iteri
    (fun i (_, bits) ->
      A.mov_const a A.x1 bits;
      A.fmov_x_to_d a A.d1 A.x1;
      A.fsqrt_d a A.d2 A.d1;
      A.fmov_d_to_x a A.x2 A.d2;
      A.mov_const a A.x3 (Int64.of_int (0x100000 + (8 * i)));
      A.str a A.x2 A.x3)
    inputs;
  A.mov_const a A.x10 0x0930_0000L;
  A.str a A.xzr A.x10;
  A.label a "hang";
  A.b a "hang";
  A.assemble a

let run_captive ~hw_fp =
  let config = { Captive.Engine.default_config with Captive.Engine.hw_fp } in
  let e = Captive.Engine.create ~config (Guest_arm.Arm.ops ()) in
  Captive.Engine.load_image e ~addr:0x80000L (program ());
  Captive.Engine.set_entry e 0x80000L;
  ignore (Captive.Engine.run ~max_cycles:50_000_000 e);
  List.mapi
    (fun i _ -> Hvm.Mem.read64 e.Captive.Engine.machine.Hvm.Machine.mem (Int64.of_int (0x100000 + (8 * i))))
    inputs

let run_qemu () =
  let e = Qemu_ref.Qemu_engine.create (Guest_arm.Arm.ops ()) in
  Qemu_ref.Qemu_engine.load_image e ~addr:0x80000L (program ());
  Qemu_ref.Qemu_engine.set_entry e 0x80000L;
  ignore (Qemu_ref.Qemu_engine.run ~max_cycles:50_000_000 e);
  List.mapi
    (fun i _ -> Hvm.Mem.read64 e.Qemu_ref.Qemu_engine.machine.Hvm.Machine.mem (Int64.of_int (0x100000 + (8 * i))))
    inputs

let () =
  let hw = run_captive ~hw_fp:true in
  let soft = run_captive ~hw_fp:false in
  let qemu = run_qemu () in
  let host_sqrtsd = List.map (fun (_, b) -> Softfloat.Archfp.x86_sqrtsd b) inputs in
  Printf.printf "%-6s %-18s %-18s %-18s %-8s\n" "input" "host SQRTSD" "guest FSQRT (hw)" "guest (softfloat)" "agree?";
  List.iteri
    (fun i (name, _) ->
      let h = List.nth hw i and s = List.nth soft i and q = List.nth qemu i in
      let x86 = List.nth host_sqrtsd i in
      Printf.printf "%-6s 0x%016Lx 0x%016Lx 0x%016Lx %s%s\n" name x86 h s
        (if h = s && s = q then "yes" else "NO!")
        (if h <> x86 then "   <- fix-up applied" else ""))
    inputs;
  if List.for_all2 (fun a b -> a = b) hw qemu && List.for_all2 (fun a b -> a = b) hw soft then
    print_endline "\nall three configurations are bit-identical (ARMv8 semantics)"
  else print_endline "\nBIT-ACCURACY VIOLATION"
