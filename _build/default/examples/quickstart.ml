(* Quickstart: assemble a bare-metal AArch64 guest program, run it under
   the Captive engine, and read its UART output.

     dune exec examples/quickstart.exe

   The guest computes 10! iteratively, prints it in decimal through the
   emulated UART, and powers the machine off through the system
   controller. *)

module A = Guest_arm.Arm_asm

let uart = 0x0910_0000L
let syscon = 0x0930_0000L

let program () =
  let a = A.create ~base:0x80000L () in
  (* x0 = 10! *)
  A.movz a A.x1 10;
  A.movz a A.x0 1;
  A.label a "fact";
  A.mul a A.x0 A.x0 A.x1;
  A.sub_imm a A.x1 A.x1 1;
  A.cbnz a A.x1 "fact";
  (* print x0 in decimal: build digits on a scratch buffer, then emit *)
  A.mov_const a A.x2 0x100000L; (* scratch *)
  A.movz a A.x3 0; (* digit count *)
  A.movz a A.x4 10;
  A.mov_reg a A.x5 A.x0;
  A.label a "digits";
  A.udiv a A.x6 A.x5 A.x4;
  A.msub a A.x7 A.x6 A.x4 A.x5; (* x7 = x5 mod 10 *)
  A.add_imm a A.x7 A.x7 48;
  A.str_reg a A.x7 A.x2 A.x3;
  A.add_imm a A.x3 A.x3 1;
  A.mov_reg a A.x5 A.x6;
  A.cbnz a A.x5 "digits";
  (* emit digits most-significant first *)
  A.mov_const a A.x8 uart;
  A.label a "emit";
  A.sub_imm a A.x3 A.x3 1;
  A.ldrb_reg a A.x9 A.x2 A.x3;
  A.strb a A.x9 A.x8;
  A.cbnz a A.x3 "emit";
  A.movz a A.x9 10;
  A.strb a A.x9 A.x8; (* newline *)
  (* power off with exit code 0 *)
  A.mov_const a A.x10 syscon;
  A.str a A.xzr A.x10;
  A.label a "hang";
  A.b a "hang";
  A.assemble a

let () =
  let guest = Guest_arm.Arm.ops () in
  let engine = Captive.Engine.create guest in
  Captive.Engine.load_image engine ~addr:0x80000L (program ());
  Captive.Engine.set_entry engine 0x80000L;
  (match Captive.Engine.run ~max_cycles:50_000_000 engine with
  | Captive.Engine.Poweroff code -> Printf.printf "guest powered off (exit %d)\n" code
  | _ -> print_endline "guest did not finish");
  Printf.printf "UART output: %s" (Captive.Engine.uart_output engine);
  let s = engine.Captive.Engine.stats in
  Printf.printf "simulated host cycles: %d\n" (Captive.Engine.cycles engine);
  Printf.printf "translated %d blocks (%d guest instructions -> %d host instructions)\n"
    s.Captive.Engine.blocks_translated s.Captive.Engine.guest_instrs_translated
    s.Captive.Engine.host_instrs_emitted
