(* MMU-stress workloads for `captive_run mmucheck`: guest programs that
   deliberately exercise the paths the shadow-oracle sanitizer watches —
   demand paging across many pages, self-modifying code (invalidate +
   remap + TLB shoot-down), guest-visible faults, syscalls/ring
   transitions, and a guest TLB flush on every exception return.

   Both programs terminate with a deterministic exit code so mmucheck can
   assert end-to-end correctness on top of zero sanitizer findings. *)

module A = Guest_arm.Arm_asm
module R = Guest_riscv.Rv_asm

(* Assemble one instruction in a scratch assembler and return its
   little-endian word — for building SMC patch values without
   hand-maintained encodings. *)
let arm_insn_word f =
  let a = A.create () in
  f a;
  Int64.logand (Int64.of_int32 (Bytes.get_int32_le (A.assemble a) 0)) 0xFFFF_FFFFL

let rv_insn_word f =
  let a = R.create () in
  f a;
  Int64.logand (Int64.of_int32 (Bytes.get_int32_le (R.assemble a) 0)) 0xFFFF_FFFFL

(* --- ARM: EL0 stress program under the Kernel mini-OS ---------------- *)

(* Exit code: 10 * smc_sum + fault_count = 10*3 + 1 = 31. *)
let arm_expected_exit = 31

let arm_user () : bytes =
  Uprog.make (fun p ->
      let a = p.Uprog.asm in
      A.b a "main";
      (* Patchable subroutine: returns 1, patched below to return 2. *)
      A.label a "snippet";
      A.movz a A.x0 1;
      A.ret a;
      A.label a "main";
      A.bl a "snippet";
      A.mov_reg a A.x19 A.x0 (* x19 = 1 *);
      (* Read the code page first so a read-only translation of it is
         resident in the host TLB, then patch the snippet: the write
         faults (W^X), invalidates the page's translations, remaps the
         page writable, and must shoot down the stale read-only TLB
         entry before the retry. *)
      A.adr a A.x21 "snippet";
      A.ldr a A.x1 A.x21;
      A.mov_const a A.x22 (arm_insn_word (fun b -> A.movz b A.x0 2));
      A.str32 a A.x22 A.x21;
      A.bl a "snippet";
      A.add_reg a A.x19 A.x19 A.x0 (* x19 = 1 + 2 = 3 *);
      (* Demand paging: PRNG-fill 16 fresh pages of the user block. *)
      A.mov_const a A.x20 Uprog.data_va;
      Uprog.fill_random ~tag:"mmu" p ~base:A.x20 ~len:(16 * 4096);
      (* One guest-visible translation fault, counted and skipped by the
         kernel's data-abort handler. *)
      A.mov_const a A.x1 0x0070_0000L;
      A.ldr a A.x2 A.x1;
      (* Syscalls: uart output, a yield (WFI), then the fault count. *)
      Uprog.putchar p 'm';
      Uprog.putchar p 'm';
      Uprog.putchar p 'u';
      A.movz a A.x8 5;
      A.svc a 0 (* yield *);
      A.movz a A.x8 4;
      A.svc a 0 (* x0 = fault count = 1 *);
      A.movz a A.x9 10;
      A.madd a A.x0 A.x19 A.x9 A.x0 (* x0 = 10*3 + 1 *))

(* --- RISC-V: bare-metal user-level stress image ---------------------- *)

let riscv_entry = 0x1000L

(* Exit code: 4 * smc_sum + first_touch + last_touch - 16
   = 4*3 + 16 + 1 - 16 = 13. *)
let riscv_expected_exit = 13

let riscv_image () : bytes =
  let a = R.create ~base:riscv_entry () in
  R.j a "main";
  (* Patchable subroutine at riscv_entry + 4: returns 1 -> patched to 2. *)
  R.label a "sub";
  R.addi a R.a0 R.zero 1;
  R.i_type ~imm:0 ~rs1:R.ra ~funct3:0 ~rd:0 ~opcode:0b1100111 a (* ret *);
  R.label a "main";
  R.jal a R.ra "sub";
  R.add a R.s3 R.zero R.a0 (* s3 = 1 *);
  (* Read the code page (fills a read-only host TLB entry), then patch
     the subroutine's first instruction in place. *)
  R.li a R.s4 (Int64.add riscv_entry 4L);
  R.lw a R.t0 R.s4 0;
  R.li a R.t1 (rv_insn_word (fun b -> R.addi b R.a0 R.zero 2));
  R.s_type ~imm:0 ~rs2:R.t1 ~rs1:R.s4 ~funct3:2 ~opcode:0b0100011 a (* sw *);
  R.jal a R.ra "sub";
  R.add a R.s3 R.s3 R.a0 (* s3 = 3 *);
  (* Touch 16 fresh pages (descending counter stored to each). *)
  R.li a R.s2 0x100000L;
  R.li a R.a1 4096L;
  R.li a R.t2 16L;
  R.label a "touch";
  R.sd a R.t2 R.s2 0;
  R.add a R.s2 R.s2 R.a1;
  R.addi a R.t2 R.t2 (-1);
  R.bne a R.t2 R.zero "touch";
  (* Read back the first and last touched pages. *)
  R.li a R.s2 0x100000L;
  R.ld a R.t0 R.s2 0 (* = 16 *);
  R.li a R.a1 (Int64.of_int (0x100000 + (15 * 4096)));
  R.ld a R.t1 R.a1 0 (* = 1 *);
  (* a0 = 4*s3 + t0 + t1 - 16 = 13; exit(a0). *)
  R.slli a R.a2 R.s3 2;
  R.add a R.a0 R.a2 R.t0;
  R.add a R.a0 R.a0 R.t1;
  R.addi a R.a0 R.a0 (-16);
  R.li a R.a7 93L;
  R.ecall a;
  R.assemble a
