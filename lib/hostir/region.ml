(* Region-level optimisation passes for tier-1 (hot region) translations.

   A region is translated as one Dag: the head member's body occupies the
   entry chunk and every other member sits behind a pre-created label, with
   a per-member PC-compare dispatch chunk at each member's end.  The passes
   below run over the flattened instruction stream before register
   allocation, in this order:

   - [straighten] rewrites jumps into a dispatch chunk with a direct jump
     to the member entry whenever the guest PC at the jump is statically
     known (the Dag's Fig. 9(d) [Inc_pc] collapse of direct branches makes
     this common), so intra-region direct branches cost a single host jump
     with no dispatch at all;

   - [elide_jumps] removes jumps to the immediately following label, making
     each member's hand-off to its own dispatch chunk fall through;

   - [prune_unreachable] drops dispatch chunks orphaned by [straighten];

   - [coalesce_inc_pc] defers guest-PC increments to the next observation
     point, eliminating the per-instruction PC sync inside a member;

   - [forward_store_pc] deletes the PC reload on the member/dispatch seam,
     comparing the just-computed branch target directly;

   - [eliminate_dead_stores] removes register-file stores ([Strf]) that are
     overwritten before any possible read — cross-block dead flag and
     register writes that block-at-a-time translation cannot see.

   All passes are pure functions of the instruction stream, so regions
   stay deterministic and observation-free for the sanitizer's guard. *)

open Hir
module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Static guest-PC dataflow.                                           *)

type pcval = Bot | Known of int64 | Top

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Known x, Known y when Int64.equal x y -> Known x
  | _ -> Top

let addk a k = match a with Known v -> Known (Int64.add v (Int64.of_int k)) | x -> x

(* [straighten ~dispatch_labels ~member_entry instrs] rewrites
   [Jmp l] -> [Jmp member_label] when [l] is (or trivially forwards to) a
   dispatch chunk and the guest PC at the jump is statically known to be a
   member entry VA.  Sound because a dispatch chunk only compares the PC
   against member VAs and otherwise exits to the engine dispatcher, which
   would re-enter the region at that same member; member entries begin
   with a [Poll], so safepoints are preserved. *)
let straighten ~(dispatch_labels : Iset.t) ~(member_entry : (int64 * int) list)
    (instrs : instr array) : instr array =
  let n = Array.length instrs in
  let label_idx = Hashtbl.create 16 in
  Array.iteri
    (fun i ins -> match ins with Label l -> Hashtbl.replace label_idx l i | _ -> ())
    instrs;
  let rec leads_to_dispatch seen l =
    if Iset.mem l seen then false
    else if Iset.mem l dispatch_labels then true
    else
      match Hashtbl.find_opt label_idx l with
      | Some i when i + 1 < n -> (
        match instrs.(i + 1) with
        | Jmp l' -> leads_to_dispatch (Iset.add l seen) l'
        | _ -> false)
      | _ -> false
  in
  let entry_of_va = Hashtbl.create 8 in
  List.iter (fun (va, l) -> Hashtbl.replace entry_of_va va l) member_entry;
  (* PC known to be the member VA at every member entry label: all inbound
     edges (fall-in from the region prologue, dispatch hits, straightened
     direct jumps) establish it. *)
  let in_label : (int, pcval) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (va, l) -> Hashtbl.replace in_label l (Known va)) member_entry;
  let get_in l = Option.value (Hashtbl.find_opt in_label l) ~default:Bot in
  let before = Array.make n Bot in
  let changed = ref true in
  while !changed do
    changed := false;
    let flow_to l v =
      let j = join (get_in l) v in
      if j <> get_in l then (
        Hashtbl.replace in_label l j;
        changed := true)
    in
    let cur = ref Bot in
    for i = 0 to n - 1 do
      before.(i) <- !cur;
      match instrs.(i) with
      | Label l -> cur := join !cur (get_in l)
      | Inc_pc k -> cur := addk !cur k
      | Store_pc _ | Call _ -> cur := Top
      | Jmp l ->
        flow_to l !cur;
        cur := Bot
      | Br (_, t, f) ->
        flow_to t !cur;
        flow_to f !cur;
        cur := Bot
      | Exit _ -> cur := Bot
      | _ -> ()
    done
  done;
  let out = Array.copy instrs in
  for i = 0 to n - 1 do
    match (instrs.(i), before.(i)) with
    | Jmp l, Known va when leads_to_dispatch Iset.empty l -> (
      match Hashtbl.find_opt entry_of_va va with
      | Some lj -> out.(i) <- Jmp lj
      | None -> ())
    | _ -> ()
  done;
  out

(* ------------------------------------------------------------------ *)
(* Straight-line peepholes.                                            *)

let label_refs (instrs : instr array) =
  let refs = Hashtbl.create 16 in
  let bump l = Hashtbl.replace refs l (1 + Option.value (Hashtbl.find_opt refs l) ~default:0) in
  Array.iter (function Jmp l -> bump l | Br (_, t, f) -> bump t; bump f | _ -> ()) instrs;
  refs

(* Remove [Jmp l] when the next instruction is [Label l]: control falls
   through.  Turns each member's hand-off into its own dispatch chunk
   into straight-line code (the label stays as a placeholder; if the
   jump was its only reference it becomes an unreferenced marker). *)
let elide_jumps (instrs : instr array) : instr array =
  let n = Array.length instrs in
  let keep = ref [] in
  Array.iteri
    (fun i ins ->
      match ins with
      | Jmp l when i + 1 < n && instrs.(i + 1) = Label l -> ()
      | _ -> keep := ins :: !keep)
    instrs;
  Array.of_list (List.rev !keep)

(* Drop label-delimited chunks that are unreachable from the region
   entry — typically a member's PC-compare dispatch chunk after
   [straighten] redirected its only inbound jump straight to a member
   entry.  Dead chunks cost nothing at run time but inflate the
   translation charge and the code-cache footprint. *)
let prune_unreachable (instrs : instr array) : instr array =
  let n = Array.length instrs in
  if n = 0 then instrs
  else begin
    let label_idx = Hashtbl.create 16 in
    Array.iteri
      (fun i ins -> match ins with Label l -> Hashtbl.replace label_idx l i | _ -> ())
      instrs;
    let reachable = Array.make n false in
    let work = Queue.create () in
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      if i < n && not reachable.(i) then begin
        reachable.(i) <- true;
        let target l =
          match Hashtbl.find_opt label_idx l with
          | Some j -> Queue.add j work
          | None -> ()
        in
        match instrs.(i) with
        | Jmp l -> target l
        | Br (_, t, f) ->
          target t;
          target f;
          Queue.add (i + 1) work
        | Exit _ -> ()
        | _ -> Queue.add (i + 1) work
      end
    done;
    if Array.for_all Fun.id reachable then instrs
    else
      Array.of_list
        (List.filteri (fun i _ -> reachable.(i)) (Array.to_list instrs))
  end

(* Defer guest-PC increments to the points that observe the PC: a run of
   [Inc_pc] collapses into one write before anything that can read or
   publish it — a [Load_pc], a helper call, a (possibly faulting) memory
   access, a control transfer, or a label (so every join sees a synced
   PC).  A [Store_pc] overwrites the PC wholesale, discarding whatever
   increment is still pending.  The PC is a guest register like any
   other, so this is dead-write elimination for the one register the
   block-at-a-time translator must keep synced after every instruction. *)
let coalesce_inc_pc (instrs : instr array) : instr array =
  let out = ref [] in
  let pending = ref 0 in
  let flush () =
    if !pending <> 0 then begin
      out := Inc_pc !pending :: !out;
      pending := 0
    end
  in
  Array.iter
    (fun ins ->
      match ins with
      | Inc_pc k -> pending := !pending + k
      | Store_pc _ ->
        pending := 0;
        out := ins :: !out
      | Load_pc _ | Call _ | Mem_ld _ | Mem_st _ | Exit _ | Poll _ | Br _ | Jmp _ | Label _ ->
        flush ();
        out := ins :: !out
      | _ -> out := ins :: !out)
    instrs;
  flush ();
  Array.of_list (List.rev !out)

(* Forward a [Store_pc v] into an adjacent [Load_pc d]: the load is
   deleted and [d] renamed to [v] everywhere.  Fires on the seam the
   region emitter creates between a member body (which ends by storing
   the branch target to the PC) and its dispatch chunk (which reloads
   the PC to compare it against member VAs) once [elide_jumps] has made
   the seam straight-line.  The rename is only applied when both vregs
   are single-assignment and [v] is not redefined, so it is a pure SSA
   rename; adjacency may span unreferenced labels but nothing that can
   change the PC. *)
let forward_store_pc (instrs : instr array) : instr array =
  let n = Array.length instrs in
  let refs = label_refs instrs in
  let def_count = Hashtbl.create 32 in
  Array.iter
    (fun ins ->
      match dest ins with
      | Some (Vreg v) ->
        Hashtbl.replace def_count v (1 + Option.value (Hashtbl.find_opt def_count v) ~default:0)
      | _ -> ())
    instrs;
  let single v = Hashtbl.find_opt def_count v = Some 1 in
  let rename : (int, operand) Hashtbl.t = Hashtbl.create 8 in
  let deleted = Array.make n false in
  let avail = ref None in
  Array.iteri
    (fun i ins ->
      match ins with
      | Store_pc src ->
        avail :=
          (match src with
          | Imm _ -> Some src
          | Vreg v when single v -> Some src
          | _ -> None)
      | Load_pc (Vreg d) when single d -> (
        match !avail with
        | Some src ->
          deleted.(i) <- true;
          Hashtbl.replace rename d src
        | None -> ())
      | Label l when Hashtbl.mem refs l -> avail := None
      | Label _ -> () (* unreferenced marker: straight-line *)
      | Call _ | Mem_ld _ | Mem_st _ | Inc_pc _ | Load_pc _ | Exit _ | Poll _ | Jmp _ | Br _ ->
        avail := None
      | _ -> ())
    instrs;
  if Hashtbl.length rename = 0 then instrs
  else begin
    let rec resolve op =
      match op with
      | Vreg v -> (
        match Hashtbl.find_opt rename v with Some op' -> resolve op' | None -> op)
      | _ -> op
    in
    Array.of_list
      (List.filteri (fun i _ -> not deleted.(i)) (Array.to_list instrs))
    |> Array.map (map_operands resolve)
  end

(* ------------------------------------------------------------------ *)
(* Cross-block dead register-file store elimination.                   *)

type live = All | Offs of Iset.t

let l_union a b =
  match (a, b) with All, _ | _, All -> All | Offs x, Offs y -> Offs (Iset.union x y)

let l_mem off = function All -> true | Offs s -> Iset.mem off s

let l_equal a b =
  match (a, b) with
  | All, All -> true
  | Offs x, Offs y -> Iset.equal x y
  | _ -> false
let l_add off = function All -> All | Offs s -> Offs (Iset.add off s)

(* Removing from [All] stays [All]: conservative (keeps the store). *)
let l_rem off = function All -> All | Offs s -> Offs (Iset.remove off s)

let is_terminator = function Jmp _ | Br _ | Exit _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Region CFG over label-delimited blocks: shared by the dataflow
   passes here, the promotion layer ([Promote]) and the writeback-map
   checker ([Verify.check_wb]). *)

type cfg = {
  c_starts : int array; (* block start indices, ascending; c_starts.(0) = 0 *)
  c_nb : int; (* number of blocks *)
  c_block_of_idx : int -> int; (* enclosing block of an instruction index *)
  c_block_end : int -> int; (* one past a block's last instruction *)
  c_succs : int -> int list; (* successor blocks *)
}

let build_cfg (instrs : instr array) : cfg =
  let n = Array.length instrs in
  let label_idx = Hashtbl.create 16 in
  Array.iteri
    (fun i ins -> match ins with Label l -> Hashtbl.replace label_idx l i | _ -> ())
    instrs;
  (* Block boundaries: at every label and after every terminator. *)
  let start_set = ref (Iset.singleton 0) in
  Array.iteri
    (fun i ins ->
      (match ins with Label _ -> start_set := Iset.add i !start_set | _ -> ());
      if is_terminator ins && i + 1 < n then start_set := Iset.add (i + 1) !start_set)
    instrs;
  let starts = Array.of_list (Iset.elements !start_set) in
  let nb = Array.length starts in
  let block_of_idx i =
    (* greatest start <= i *)
    let lo = ref 0 and hi = ref (nb - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if starts.(mid) <= i then lo := mid else hi := mid - 1
    done;
    !lo
  in
  let block_end b = if b + 1 < nb then starts.(b + 1) else n in
  let block_of_label l = block_of_idx (Hashtbl.find label_idx l) in
  let succs b =
    let e = block_end b in
    if e = 0 then []
    else
      match instrs.(e - 1) with
      | Jmp l -> [ block_of_label l ]
      | Br (_, t, f) -> [ block_of_label t; block_of_label f ]
      | Exit _ -> []
      | _ -> if b + 1 < nb then [ b + 1 ] else []
  in
  { c_starts = starts; c_nb = nb; c_block_of_idx = block_of_idx; c_block_end = block_end; c_succs = succs }

(* Backward liveness of register-file byte offsets over the region CFG.
   Anything that can leave the region or observe the register file from
   outside the instruction stream — helper calls, memory accesses (whose
   fault handlers read and write guest state), polls and exits — makes
   every offset live. *)
let eliminate_dead_stores (instrs : instr array) : instr array =
  let n = Array.length instrs in
  if n = 0 then instrs
  else begin
    let cfg = build_cfg instrs in
    let starts = cfg.c_starts and nb = cfg.c_nb in
    let block_end = cfg.c_block_end and succs = cfg.c_succs in
    (* Backward transfer of one instruction; [mark] is [Some dead] on the
       final marking pass. *)
    let step ?mark i live =
      match instrs.(i) with
      | Strf (off, _) ->
        if l_mem off live then l_rem off live
        else (
          (match mark with Some dead -> dead.(i) <- true | None -> ());
          live)
      | Ldrf (_, off) -> l_add off live
      | Call _ | Exit _ | Poll _ | Mem_ld _ | Mem_st _ -> All
      | _ -> live
    in
    let live_in = Array.make nb (Offs Iset.empty) in
    let transfer ?mark b out =
      let live = ref out in
      for i = block_end b - 1 downto starts.(b) do
        live := step ?mark i !live
      done;
      !live
    in
    let out_of b =
      match succs b with
      | [] -> All (* the engine reads the register file after an exit *)
      | ss -> List.fold_left (fun acc s -> l_union acc live_in.(s)) (Offs Iset.empty) ss
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for b = nb - 1 downto 0 do
        let inew = transfer b (out_of b) in
        if not (l_equal inew live_in.(b)) then (
          live_in.(b) <- inew;
          changed := true)
      done
    done;
    let dead = Array.make n false in
    for b = 0 to nb - 1 do
      ignore (transfer ~mark:dead b (out_of b))
    done;
    if Array.exists Fun.id dead then
      Array.of_list
        (List.filteri (fun i _ -> not dead.(i)) (Array.to_list instrs))
    else instrs
  end


(* The full region pipeline in canonical order, as run by the engine for
   every tier-1 translation (promotion, which needs the member list and
   acceptance policy, stays in the engine).  Exposed as one entry point
   so the translation validator checks exactly what the engine runs. *)
let optimize ~dispatch_labels ~member_entry (instrs : instr array) : instr array =
  straighten ~dispatch_labels ~member_entry instrs
  |> elide_jumps |> prune_unreachable |> coalesce_inc_pc |> forward_store_pc
  |> eliminate_dead_stores
