(* Execution of encoded host machine code against the HVM.

   Decoded programs (Encode.program) are interpreted with per-instruction
   cycle charging from Hvm.Cost.  Host page faults raised by the MMU are
   delivered to the engine-installed fault handler; [Retry] re-executes
   the faulting instruction once the handler has populated the host page
   tables, [Mmio_*] completes the access by device emulation, and guest
   exceptions simply propagate as OCaml exceptions to the engine's run
   loop. *)

(* What the engine-installed fault handler tells the executor to do with
   a faulting access. *)
type fault_response =
  | Retry
  | Mmio_value of int64 (* a load serviced by device emulation *)
  | Mmio_done (* a store serviced by device emulation *)

(* The simulated host machine state a translation executes against.  The
   record is transparent: the engine pokes pc/regs/slots/budgets directly
   between translations, and helpers receive the ctx to reach the guest
   system state. *)
type ctx = {
  machine : Hvm.Machine.t;
  regfile : Bytes.t; (* guest register file (lives in HVM memory space) *)
  mutable pc : int64; (* the dedicated guest-PC host register (r15) *)
  helpers : helper array;
  fault_handler :
    ctx -> Hvm.Machine.access -> int64 -> bits:int -> value:int64 option -> fault_response;
  regs : int64 array; (* host GPRs *)
  mutable slots : int64 array; (* current translation frame *)
  (* region safepoint budgets, set by the engine before entering a
     tier-1 region translation; [Poll] exits when either is exhausted *)
  mutable poll_deadline : int; (* machine-cycle ceiling (run's max_cycles) *)
  mutable poll_budget : int; (* remaining block executions (run's max_blocks) *)
  (* Precise-state writeback map of the running translation ([Hir.Wbmap],
     installed from [Encode.program.wb_map] on entry): dirty promoted
     guest registers flushed to the register file before anything outside
     the translation can observe it. *)
  mutable wb_map : (Hir.operand * int) array;
  (* statistics *)
  mutable instrs_executed : int;
  mutable rf_loads : int; (* dynamic register-file reads ([Ldrf]) *)
  mutable rf_stores : int; (* dynamic register-file writes ([Strf] + writebacks) *)
}

and helper = {
  fn : ctx -> int64 array -> int64;
  cost : int; (* charged in addition to the call overhead *)
}

val create :
  machine:Hvm.Machine.t ->
  helpers:helper array ->
  fault_handler:
    (ctx -> Hvm.Machine.access -> int64 -> bits:int -> value:int64 option -> fault_response) ->
  ctx

(* Guest register-file access (little-endian qwords at byte offsets). *)
val rf_read : ctx -> int -> int64
val rf_write : ctx -> int -> int64 -> unit

(* Shared concrete semantics, exposed for the symbolic executor
   (Symexec) so its constant folding is this executor by construction. *)
val exec_fp2 : Hir.fp2op -> int64 -> int64 -> int64
val exec_fp1 : Hir.fp1op -> int64 -> int64
val fcmp_nzcv : int -> int64 -> int64 -> int64
val flags_nzcv : width:int -> int64 -> bool -> bool -> int64
val cond_holds : Hir.cond -> int64 -> int64 -> bool

(* Per-instruction cycle cost (Hvm.Cost model). *)
val instr_cost : Hir.instr -> int

(* Run a decoded program; returns the chain-slot id of the exit taken. *)
val run : ctx -> Encode.program -> int
