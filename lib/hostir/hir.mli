(** The low-level host IR (paper Sec. 2.3.2, Fig. 10): "effectively x86
    machine instructions, but with virtual register operands in place of
    physical registers".

    Three-address form; any source operand may be an immediate.  After
    register allocation, virtual registers are replaced by physical
    registers or spill slots. *)

type operand =
  | Vreg of int  (** virtual, before allocation *)
  | Preg of int  (** physical host register *)
  | Imm of int64
  | Slot of int  (** spill slot in the translation frame *)

type cond = Ceq | Cne | Cult | Cule | Cugt | Cuge | Cslt | Csle | Csgt | Csge

type aluop = Aadd | Asub | Aand | Aor | Axor | Ashl | Ashr | Asar | Amul

type bit1op =
  | Bclz32
  | Bclz64
  | Bpopcnt
  | Bswap16
  | Bswap32
  | Bswap64
  | Brbit32
  | Brbit64

type bit2op = Bror32 | Bror64

type fp2op =
  | Fadd64 | Fsub64 | Fmul64 | Fdiv64 | Fmin64 | Fmax64
  | Fadd32 | Fsub32 | Fmul32 | Fdiv32 | Fmin32 | Fmax32

type fp1op =
  | Fsqrt64 | Fsqrt32
  | Fcvt_32_64  (** f32 -> f64 *)
  | Fcvt_64_32
  | Fcvt_64_s64  (** f64 -> signed int64, truncating *)
  | Fcvt_64_u64
  | Fcvt_32_s32
  | Fcvt_s64_64  (** signed int64 -> f64 *)
  | Fcvt_u64_64
  | Fcvt_s32_32
  | Fcvt_s64_32

type instr =
  | Mov of operand * operand  (** dst, src *)
  | Alu of aluop * operand * operand * operand  (** dst, a, b *)
  | Mulhi of bool * operand * operand * operand  (** signed, dst, a, b *)
  | Divrem of bool * bool * operand * operand * operand
      (** signed, want-remainder, dst, a, b; ARM-style guarded divide *)
  | Setcc of cond * operand * operand * operand  (** dst = (a cond b) *)
  | Cmov of operand * operand * operand * operand  (** dst = c <> 0 ? a : b *)
  | Ext of bool * int * operand * operand  (** signed, bits, dst, src *)
  | Neg of operand * operand
  | Not of operand * operand
  | Bit1 of bit1op * operand * operand
  | Bit2 of bit2op * operand * operand * operand
  | Fp2 of fp2op * operand * operand * operand
  | Fp1 of fp1op * operand * operand
  | Fcmp_flags of int * operand * operand * operand  (** width 32/64; NZCV nibble *)
  | Flags_add of int * operand * operand * operand * operand
      (** width, dst, a, b, cin *)
  | Flags_logic of int * operand * operand
  | Ldrf of operand * int  (** load from guest register file at byte offset *)
  | Strf of int * operand
  | Load_pc of operand
  | Store_pc of operand
  | Inc_pc of int
  | Mem_ld of int * operand * operand  (** width bits, dst, addr *)
  | Mem_st of int * operand * operand  (** width bits, addr, value *)
  | Call of int * operand array * operand option
      (** helper index, args, result *)
  | Label of int
  | Jmp of int
  | Br of operand * int * int  (** condition value, then-label, else-label *)
  | Exit of int  (** exit via chain slot n *)
  | Poll of int
      (** region safepoint: exit via chain slot n when an interrupt is
          pending, the translation regime changed (poison register), or
          the run loop's cycle/block budget is exhausted *)
  | Wbmap of (operand * int) array
      (** precise-state writeback map of a promoted region: (host
          operand, register-file byte offset) pairs applied by the
          executor before fault delivery, a [Poll] exit, or an [Exit].
          Emitted after the last exit, so never executed in sequence; its
          operands keep the promoted registers live across the whole
          translation. *)

(** Host scratch register holding the region-poison flag; zeroed by the
    engine on dispatch, set by regime-changing helpers, tested by
    [Poll]. *)
val region_poison_preg : int

val string_of_operand : operand -> string
val string_of_alu : aluop -> string
val string_of_cond : cond -> string
val to_string : instr -> string

(** Source operands read by an instruction, in syntactic order; used by
    the register allocator. *)
val sources : instr -> operand list

(** The destination operand written by an instruction, if any. *)
val dest : instr -> operand option

(** Instructions with no side effect beyond their destination: removable
    when the destination is never used. *)
val pure : instr -> bool

(** Apply [f] to every operand (sources and destination alike),
    rebuilding the instruction. *)
val map_operands : (operand -> operand) -> instr -> instr

(** Apply [f] to source operands only, leaving the destination (and a
    [Wbmap]'s operands, which must stay the authoritative promoted
    registers) untouched: the substitution primitive for copy
    propagation. *)
val map_sources : (operand -> operand) -> instr -> instr

(** Apply [f] to every label id (definitions and branch targets), for
    relocating concatenated instruction streams. *)
val map_labels : (int -> int) -> instr -> instr
