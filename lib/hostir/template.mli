(** Template translation tier (tier minus one).

    The full SSA/DAG/regalloc pipeline is pure overhead for code that
    executes a handful of times before dying or being promoted (paper
    Sec. 3.4 concedes a 2.6x translation-latency deficit vs QEMU).  This
    module runs each decode action through the existing generator +
    invocation-DAG pipeline *once per opcode form*, with decode fields
    evaluated symbolically: any value derived from an instruction field
    becomes a {e hole} — a sentinel constant in the emitted HostIR that
    install time patches with the concrete field computation.  The
    result is a register-allocated per-instruction {!frag}ment that a
    block translation can stitch with siblings at memcpy-like cost: no
    SSA walk, no DAG, no liveness, no linear scan per block.

    Soundness model: the symbolic evaluator mirrors {!Ssa.Gen}'s partial
    evaluator exactly, but folds field-dependent computation into
    {!type:fexpr} trees instead of concrete constants.  Whenever a
    field-dependent value would influence the {e structure} of the
    emitted code (a branch direction, a register-bank index that feeds
    the DAG's offset memoization, a [sign_extend] width that the
    lowering bakes into an [Ext]), mining restarts with that field
    pinned to the instance's witness value; the pin becomes part of the
    template key, so each structural shape gets its own variant.  Every
    template is mined twice with disjoint sentinel bases and the
    hole-canonicalized streams compared, which rejects both sentinel
    collisions with genuine guest constants and any nondeterminism.
    Forms that exceed the variant or pin budget, or need dynamic
    register-bank indices, are marked dead and fall back to the cold
    pipeline. *)

type t

(** A mined per-instruction code fragment: pre- and post-regalloc
    streams with holes, plus the hole tables needed to patch them. *)
type frag

(** Guest instructions covered by the fragment (always 1 today; kept in
    the record so multi-instruction rules can ride later). *)
val frag_n_guest : frag -> int

(** Host instructions in the fragment's pre-regalloc stream (the
    pipeline-equivalent size used by cost accounting). *)
val frag_n_host : frag -> int

(** [create ~config ~rf_bytes ~insn_size] makes an empty template table.
    [config] supplies the DAG configuration per MMU regime (the regime
    is part of the template key because it changes the emitted guard
    code). *)
val create : config:(mmu_on:bool -> Dag.config) -> rf_bytes:int -> insn_size:int -> t

type lookup =
  | Hit of frag  (** a cached variant matched this instance *)
  | Mined of frag  (** no variant matched; one was mined on this call *)
  | Miss of string  (** untemplatable form (reason), caller goes cold *)

(** Find (or mine) the template fragment covering one decoded
    instruction instance.  [field] doubles as the witness for any pins
    mining discovers, so the returned fragment always matches the
    instance. *)
val fragment :
  t ->
  action:Ssa.Ir.action ->
  name:string ->
  inc_pc:int option ->
  mmu_on:bool ->
  field:(string -> int64) ->
  lookup

(** Patch and stitch fragments into one block body: holes are evaluated
    per instance, labels and virtual registers relocated, and a trailing
    [Exit 0] appended.  Returns the patched pre-regalloc stream (the
    validator's input) and a fabricated {!Regalloc.result} over the
    patched post-regalloc stream (the encoder's input; [dead] already
    filtered, [n_slots] is the max over fragments since spill slots are
    fragment-local scratch).  [None] when any hole fails to evaluate or
    patches out of range — the caller falls back to the cold pipeline. *)
val assemble :
  t -> (frag * (string -> int64)) list -> (Hir.instr array * Regalloc.result) option

(** {2 Table reporting (mine-templates / templates subcommands)} *)

type form_report = {
  fr_name : string;  (** action name *)
  fr_mmu : bool;
  fr_variants : int;  (** live variants mined for this form *)
  fr_pins : int;  (** max pinned fields across variants *)
  fr_host_instrs : int;  (** max post-regalloc host instrs across variants *)
  fr_holes : int;  (** max holes across variants *)
  fr_dead : string option;  (** [Some reason] if the form is untemplatable *)
}

val report : t -> form_report list

(** Total live variants in the table. *)
val variant_count : t -> int

(** Forms marked untemplatable. *)
val dead_count : t -> int
