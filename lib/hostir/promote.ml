(* Region-scoped guest-register promotion and alias-aware memory
   redundancy elimination.

   Three cooperating passes over a region's flattened instruction
   stream, run after the [Region] passes and before register
   allocation:

   - promotion: the hottest register-file byte offsets are loaded into
     dedicated vregs once at region entry; every interior [Ldrf]/[Strf]
     of a promoted offset becomes a vreg move.  Helper calls are full
     barriers: dirty promoted values are stored back before the call
     and everything is reloaded after, since helpers read and write the
     register file directly.  Faults, [Poll] exits and [Exit]s are
     covered instead by the [Wbmap] appended to the stream, which the
     executor applies before the register file becomes observable, so
     a [Mem_ld]/[Mem_st] fault anywhere in the region still delivers an
     architecturally consistent register state.

   - copy propagation: forward substitution within a basic block so a
     promoted load's residue ([Mov (d, pv)]) leaves [d] unused and the
     register allocator's dead-marking erases it.  Without this the
     rewrite would only swap a [Ldrf] for a [Mov] of identical cost.

   - memory redundancy elimination: store-to-load forwarding and
     redundant-load elimination for guest memory accesses, keyed on
     (base vreg, constant offset) with width-exact matching, killed
     conservatively by aliasing or unanalyzable stores, helper calls,
     safepoints and block boundaries.  Guest device pages are never
     host-mapped (every MMIO access faults to the device model), so
     forwarding cannot swallow a volatile MMIO read.

   All three passes are pure functions of the instruction stream. *)

open Hir

type stats = {
  promoted : int;  (** register-file offsets promoted to vregs *)
  wb_entries : int;  (** dirty promoted offsets in the writeback map *)
  loads_rewritten : int;  (** interior [Ldrf]s turned into moves *)
  stores_rewritten : int;  (** interior [Strf]s turned into moves *)
  copies_propagated : int;  (** source operands substituted by copy-prop *)
  rf_loads_forwarded : int;  (** [Ldrf]s satisfied by an earlier rf access *)
  loads_elided : int;  (** [Mem_ld]s satisfied by a previous load *)
  stores_forwarded : int;  (** [Mem_ld]s satisfied by a previous store *)
}

let empty_stats =
  { promoted = 0; wb_entries = 0; loads_rewritten = 0; stores_rewritten = 0;
    copies_propagated = 0; rf_loads_forwarded = 0; loads_elided = 0;
    stores_forwarded = 0 }

let add_stats a b =
  { promoted = a.promoted + b.promoted;
    wb_entries = a.wb_entries + b.wb_entries;
    loads_rewritten = a.loads_rewritten + b.loads_rewritten;
    stores_rewritten = a.stores_rewritten + b.stores_rewritten;
    copies_propagated = a.copies_propagated + b.copies_propagated;
    rf_loads_forwarded = a.rf_loads_forwarded + b.rf_loads_forwarded;
    loads_elided = a.loads_elided + b.loads_elided;
    stores_forwarded = a.stores_forwarded + b.stores_forwarded }

(* ------------------------------------------------------------------ *)
(* Guest-register promotion *)

let max_vreg instrs =
  let m = ref (-1) in
  Array.iter
    (fun ins ->
      ignore
        (map_operands
           (fun o ->
             (match o with Vreg v when v > !m -> m := v | _ -> ());
             o)
           ins))
    instrs;
  !m

(* Static execution-frequency weights: an instruction inside a loop body
   runs many times per region entry, one outside runs about once.  Each
   enclosing loop (detected as a backedge to an earlier block; regions
   are laid out contiguously by [Region.straighten], so the loop body is
   the span between the target's start and the backedge) multiplies the
   weight by 8, capped to keep deep nests from dominating. *)
let loop_weights (instrs : instr array) : int array =
  let n = Array.length instrs in
  let w = Array.make n 1 in
  let cfg = Region.build_cfg instrs in
  for b = 0 to cfg.Region.c_nb - 1 do
    List.iter
      (fun s ->
        if cfg.Region.c_starts.(s) <= cfg.Region.c_starts.(b) then
          for i = cfg.Region.c_starts.(s) to cfg.Region.c_block_end b - 1 do
            w.(i) <- min (w.(i) * 8) 4096
          done)
      (cfg.Region.c_succs b)
  done;
  ignore n;
  w

(* Register-file offsets worth caching in a host register, picked by a
   static cost model.  A candidate's benefit is the weighted count of
   its [Ldrf]/[Strf] sites (each becomes a move that copy propagation
   and dead-marking usually make free); its cost is the entry prologue
   load, the exit writeback when dirty, and the per-helper-call barrier
   traffic (a reload per call, plus a flush when dirty), all weighted
   by the same loop frequencies.  This keeps promotion out of regions
   that are entered often but left quickly — there the barriers and
   writebacks outweigh the interior savings.  Offsets overlapping
   another accessed offset are excluded outright: [Ldrf]/[Strf] move 8
   bytes, so offsets closer than 8 bytes alias through the register
   file and caching one would miss accesses to the other. *)
let pick_candidates ~max_regs (instrs : instr array) : int list =
  let w = loop_weights instrs in
  let score = Hashtbl.create 16 and dirty = Hashtbl.create 16 in
  let bump off x =
    Hashtbl.replace score off
      (x + Option.value (Hashtbl.find_opt score off) ~default:0)
  in
  let call_weight = ref 0 in
  Array.iteri
    (fun i ins ->
      match ins with
      | Ldrf (_, off) -> bump off w.(i)
      | Strf (off, _) ->
        bump off w.(i);
        Hashtbl.replace dirty off ()
      | Call _ -> call_weight := !call_weight + w.(i)
      | _ -> ())
    instrs;
  let offs = Hashtbl.fold (fun off _ acc -> off :: acc) score [] in
  let overlaps off = List.exists (fun o -> o <> off && abs (o - off) < 8) offs in
  Hashtbl.fold
    (fun off sc acc ->
      let d = if Hashtbl.mem dirty off then 1 else 0 in
      let cost = 1 + d + (!call_weight * (1 + d)) in
      if sc > cost + 2 && not (overlaps off) then (off, sc) :: acc else acc)
    score []
  |> List.sort (fun (o1, c1) (o2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare o1 o2)
  |> List.filteri (fun i _ -> i < max_regs)
  |> List.map fst

(* Rewrite the stream against a set of promoted offsets.  Returns the
   new stream, the (vreg, offset) promotion list, the rewrite counts
   and the ever-dirty offset list (= the writeback map's domain). *)
let promote_regs ~max_regs ~classify (instrs : instr array) =
  let cands = pick_candidates ~max_regs instrs in
  if cands = [] then (instrs, [], 0, 0, [])
  else begin
    let base = max_vreg instrs + 1 in
    let pv_of = Hashtbl.create 8 in
    List.iteri (fun i off -> Hashtbl.replace pv_of off (base + i)) cands;
    let ever_dirty = Hashtbl.create 8 in
    Array.iter
      (function
        | Strf (off, _) when Hashtbl.mem pv_of off ->
          Hashtbl.replace ever_dirty off ()
        | _ -> ())
      instrs;
    let dirty = List.filter (Hashtbl.mem ever_dirty) cands in
    let loads_rw = ref 0 and stores_rw = ref 0 in
    let out = ref [] in
    let emit i = out := i :: !out in
    let pv off = Vreg (Hashtbl.find pv_of off) in
    (* Entry prologue: regions are only entered at instruction 0 (their
       backedges target interior labels), so one load per promoted
       offset here runs exactly once per region entry. *)
    List.iter (fun off -> emit (Ldrf (pv off, off))) cands;
    Array.iter
      (fun ins ->
        match ins with
        | Ldrf (d, off) when Hashtbl.mem pv_of off ->
          incr loads_rw;
          emit (Mov (d, pv off))
        | Strf (off, s) when Hashtbl.mem pv_of off ->
          incr stores_rw;
          emit (Mov (pv off, s))
        | Call (h, _, _) when classify h <> Effects.C_pure ->
          (* Full barrier: traced helpers may read and write the
             register file directly (or escape the translation without
             the ordinary exit path), so flush dirty values before and
             reload every promoted offset after (the helper may have
             changed any of them).  Pure helpers — the softfloat table —
             can do neither, so they fall through barrier-free. *)
          List.iter (fun off -> emit (Strf (off, pv off))) dirty;
          emit ins;
          List.iter (fun off -> emit (Ldrf (pv off, off))) cands
        | _ -> emit ins)
      instrs;
    emit (Wbmap (Array.of_list (List.map (fun off -> (pv off, off)) dirty)));
    ( Array.of_list (List.rev !out),
      List.map (fun off -> (Hashtbl.find pv_of off, off)) cands,
      !loads_rw, !stores_rw, dirty )
  end

(* ------------------------------------------------------------------ *)
(* Copy propagation *)

(* Forward substitution of [Mov (Vreg d, src)] copies within a basic
   block.  The map is cleared at labels, terminators and safepoints; it
   survives helper calls because helpers never touch vregs (they only
   clobber the dedicated scratch pregs).  [map_sources] leaves a
   [Wbmap]'s operands untouched: the writeback map must keep naming the
   promoted vregs themselves, which stay live (and thus allocated and
   up to date) precisely because the map references them.  For the same
   reason a barrier flush [Strf (off, pv)] at a promoted offset is not
   substituted into — the flush must read the authoritative cache
   register, and [Verify.check_wb] rejects anything else. *)
(* Identity ALU operations (the translator emits e.g. [add d, s, #0]
   for register moves with unused shifts) become plain copies, so copy
   propagation and dead-marking can see through them. *)
let canonicalize ins =
  match ins with
  | Alu ((Aadd | Aor | Axor | Ashl | Ashr | Asar), d, a, Imm 0L) -> Mov (d, a)
  | Alu ((Aadd | Aor | Axor), d, Imm 0L, b) -> Mov (d, b)
  | Alu (Aand, d, a, Imm -1L) -> Mov (d, a)
  | Alu (Aand, d, Imm -1L, b) -> Mov (d, b)
  | Alu (Amul, d, a, Imm 1L) -> Mov (d, a)
  | Alu (Amul, d, Imm 1L, b) -> Mov (d, b)
  | _ -> ins

let copy_prop ~(promoted_offs : (int, unit) Hashtbl.t) (instrs : instr array) =
  let n = Array.length instrs in
  let out = Array.make n (Label 0) in
  let map = Hashtbl.create 16 in
  let substituted = ref 0 in
  for i = 0 to n - 1 do
    let ins = instrs.(i) in
    (match ins with
     | Label _ | Jmp _ | Br _ | Exit _ | Poll _ -> Hashtbl.reset map
     | _ -> ());
    let ins' =
      match ins with
      | Strf (off, _) when Hashtbl.mem promoted_offs off -> ins
      | _ ->
        map_sources
          (fun o ->
            match o with
            | Vreg v -> (
              match Hashtbl.find_opt map v with
              | Some repl -> incr substituted; repl
              | None -> o)
            | _ -> o)
          ins
    in
    let ins' = canonicalize ins' in
    (* Redefinition kills the dest's own entry and every entry whose
       replacement reads the dest. *)
    (match dest ins' with
     | Some (Vreg d) ->
       Hashtbl.remove map d;
       let stale =
         Hashtbl.fold
           (fun v repl acc -> if repl = Vreg d then v :: acc else acc)
           map []
       in
       List.iter (Hashtbl.remove map) stale
     | _ -> ());
    (match ins' with
     | Mov (Vreg d, (Vreg _ | Imm _ as src)) when src <> Vreg d ->
       Hashtbl.replace map d src
     | _ -> ());
    out.(i) <- ins'
  done;
  (out, !substituted)

(* ------------------------------------------------------------------ *)
(* Register-file store-to-load forwarding *)

(* Forward the value of the last [Strf]/[Ldrf] of each register-file
   offset into later [Ldrf]s of that offset within a basic block —
   covering the offsets the promotion budget left behind.  Unlike
   promotion this changes no register-file state (every [Strf] still
   executes), so it needs no writeback map and is trivially
   fault-precise: a fault handler or MMIO access never writes the
   register file mid-region, and if a safepoint exits, the forwarded
   instructions never run.  Helper calls kill everything (helpers write
   the register file); tracked values are restricted to vregs and
   immediates since dedicated pregs change outside the stream. *)
let rf_forward (instrs : instr array) =
  let n = Array.length instrs in
  let out = Array.make n (Label 0) in
  let avail : (int, operand) Hashtbl.t = Hashtbl.create 16 in
  let forwarded = ref 0 in
  let kill_val d =
    let stale =
      Hashtbl.fold (fun off v acc -> if v = d then off :: acc else acc) avail []
    in
    List.iter (Hashtbl.remove avail) stale
  in
  for i = 0 to n - 1 do
    let ins = instrs.(i) in
    let ins' =
      match ins with
      | Ldrf (d, off) -> (
        match Hashtbl.find_opt avail off with
        | Some v when v <> d ->
          incr forwarded;
          Mov (d, v)
        | _ -> ins)
      | _ -> ins
    in
    (match ins' with
     | Label _ | Jmp _ | Br _ | Call _ -> Hashtbl.reset avail
     | _ -> (match dest ins' with Some d -> kill_val d | None -> ()));
    (match ins' with
     | Strf (off, (Vreg _ | Imm _ as v)) -> Hashtbl.replace avail off v
     | Strf (off, _) -> Hashtbl.remove avail off
     | Ldrf ((Vreg _ as d), off) -> Hashtbl.replace avail off d
     | _ -> ());
    out.(i) <- ins'
  done;
  (out, !forwarded)

(* ------------------------------------------------------------------ *)
(* Alias-aware memory redundancy elimination *)

(* An analyzable address: either a compile-time constant, or a base
   vreg plus a constant displacement.  Bases are tracked by (vreg,
   version): every definition of a vreg bumps its version, so a key
   naming an old version can never match again and redefinition needs
   no explicit kill.  Two keys with the same versioned base name the
   same dynamic base value even when the base vreg is multiply defined
   (e.g. a promoted register), which is what makes forwarding fire on
   promoted address bases at all. *)
type akey = KBase of int * int * int64 (* vreg, version, displacement *) | KConst of int64

let overlap o1 w1 o2 w2 =
  let e1 = Int64.add o1 (Int64.of_int (w1 / 8)) in
  let e2 = Int64.add o2 (Int64.of_int (w2 / 8)) in
  Int64.compare o1 e2 < 0 && Int64.compare o2 e1 < 0

(* Whether a store under [k2] can touch the bytes named by [k1].  Two
   displacements off the same versioned base are disjoint iff their
   byte ranges are; everything else is conservatively aliasing (two
   distinct bases may hold the same address). *)
let may_alias (k1, w1) (k2, w2) =
  match (k1, k2) with
  | KBase (b1, v1, o1), KBase (b2, v2, o2) ->
    if b1 = b2 && v1 = v2 then overlap o1 w1 o2 w2 else true
  | KConst o1, KConst o2 -> overlap o1 w1 o2 w2
  | _ -> true

let mem_elim (instrs : instr array) =
  let n = Array.length instrs in
  (* Current version of each vreg (bumped at every definition) and, per
     vreg, its latest definition's base decomposition: [v := b + k] with
     [b]'s version captured at that point. *)
  let ver = Hashtbl.create 64 in
  let version v = Option.value (Hashtbl.find_opt ver v) ~default:0 in
  let decomp : (int, int * int * int64) Hashtbl.t = Hashtbl.create 64 in
  let key_of = function
    | Imm k -> Some (KConst k)
    | Vreg v -> (
      match Hashtbl.find_opt decomp v with
      | Some (b, bv, k) when version b = bv -> Some (KBase (b, bv, k))
      | _ -> Some (KBase (v, version v, 0L)))
    | _ -> None
  in
  (* (key, width) -> (value operand, provenance) *)
  let avail : (akey * int, operand * [ `Load | `Store ]) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Base redefinition is handled by versioning; only entries whose
     forwarded value reads the redefined vreg need explicit killing. *)
  let kill_def d =
    let stale =
      Hashtbl.fold
        (fun kw (v, _) acc -> if v = Vreg d then kw :: acc else acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) stale
  in
  let kill_aliasing kw =
    let stale =
      Hashtbl.fold
        (fun kw' _ acc -> if may_alias kw' kw then kw' :: acc else acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) stale
  in
  let loads_elided = ref 0 and stores_forwarded = ref 0 in
  let out = Array.make n (Label 0) in
  for i = 0 to n - 1 do
    let ins = instrs.(i) in
    (* The address key is captured before the destination's version
       bump: a load into its own address register must key on the
       address value, not the loaded one. *)
    let addr_key =
      match ins with
      | Mem_ld (w, _, a) | Mem_st (w, a, _) -> (
        match key_of a with Some k -> Some (k, w) | None -> None)
      | _ -> None
    in
    let ins', forwarded =
      match (ins, addr_key) with
      | Mem_ld (w, d, _), Some kw -> (
        match Hashtbl.find_opt avail kw with
        | Some (v, `Load) ->
          incr loads_elided;
          (Mov (d, v), true)
        | Some (v, `Store) ->
          incr stores_forwarded;
          (* A forwarded store value may carry garbage above bit [w];
             the load's contract is zero-extension. *)
          ((if w = 64 then Mov (d, v) else Ext (false, w, d, v)), true)
        | None -> (ins, false))
      | _ -> (ins, false)
    in
    (match ins' with
     | Label _ | Jmp _ | Br _ | Exit _ | Poll _ | Call _ ->
       (* Block boundaries, safepoints and helpers invalidate
          everything: helpers access guest memory directly, and a
          resumed safepoint may re-enter after arbitrary writes. *)
       Hashtbl.reset avail
     | _ -> (match dest ins' with Some (Vreg d) -> kill_def d | _ -> ()));
    (* Version bump and base decomposition for every definition.  A
       plain copy aliases its source, so address chains survive the
       moves that promotion and forwarding leave behind. *)
    (match dest ins' with
     | Some (Vreg d) ->
       Hashtbl.replace ver d (version d + 1);
       (match ins' with
        | Alu (Aadd, _, Vreg b, Imm k) when b <> d ->
          Hashtbl.replace decomp d (b, version b, k)
        | Alu (Aadd, _, Imm k, Vreg b) when b <> d ->
          Hashtbl.replace decomp d (b, version b, k)
        | Mov (_, Vreg s) when s <> d ->
          Hashtbl.replace decomp d (s, version s, 0L)
        | _ -> Hashtbl.remove decomp d)
     | _ -> ());
    (match (ins, addr_key) with
     | Mem_st (_, _, v), Some kw ->
       kill_aliasing kw;
       (match v with
        | Vreg _ | Imm _ -> Hashtbl.replace avail kw (v, `Store)
        | _ -> ())
     | Mem_st _, None ->
       (* A store through an unanalyzable address can hit anything. *)
       Hashtbl.reset avail
     | Mem_ld (_, (Vreg _ as d), _), Some kw when not forwarded ->
       Hashtbl.replace avail kw (d, `Load)
     | _ -> ());
    out.(i) <- ins'
  done;
  (out, !loads_elided, !stores_forwarded)

(* ------------------------------------------------------------------ *)

(* Run the full pipeline; returns the rewritten stream, the (vreg,
   register-file offset) promotion list and the pass statistics. *)
let run ?(max_regs = 4) ?(classify = fun _ -> Effects.C_clobber) (instrs : instr array) :
    instr array * (int * int) list * stats =
  let instrs, promoted, loads_rw, stores_rw, dirty =
    promote_regs ~max_regs ~classify instrs
  in
  let promoted_offs = Hashtbl.create 8 in
  List.iter (fun (_, off) -> Hashtbl.replace promoted_offs off ()) promoted;
  let instrs, cp1 = copy_prop ~promoted_offs instrs in
  let instrs, rf_fwd = rf_forward instrs in
  let instrs, loads_elided, stores_forwarded = mem_elim instrs in
  let instrs, cp2 = copy_prop ~promoted_offs instrs in
  let stats =
    { promoted = List.length promoted;
      wb_entries = List.length dirty;
      loads_rewritten = loads_rw;
      stores_rewritten = stores_rw;
      copies_propagated = cp1 + cp2;
      rf_loads_forwarded = rf_fwd;
      loads_elided;
      stores_forwarded }
  in
  (instrs, promoted, stats)
