(* The invocation DAG builder (paper Sec. 2.3.2, Fig. 9).

   Generator functions call into this backend; pure operations build DAG
   nodes lazily, and operations with runtime side effects collapse the
   trees rooted at their inputs into low-level IR immediately
   (feed-forward emission).  Node memoization turns repeated subtrees
   (e.g. two reads of the same guest register within a block) into shared
   IR - the "weak form of tree pattern matching on demand" the paper
   describes, including the PC-increment specialization of Fig. 9(d). *)

open Hir

type lowering = L_inline | L_helper of int

type config = {
  bank_offset : bank:int -> index:int -> int; (* guest register file layout *)
  slot_offset : int -> int;
  lower_intrinsic : string -> lowering; (* hardware-FP vs softfloat-helper choice *)
  effect_helper : string -> int;
  coproc_read_helper : int;
  coproc_write_helper : int;
  (* Sec. 2.7.5: for 64-bit guests, memory accesses check whether the
     guest VA crosses the host address-space split; on a regime change a
     helper switches page-table sets (with PCIDs), and the VA is masked
     into the lower half. *)
  split_va_check : bool;
  as_switch_helper : int; (* helper performing the page-table-set switch *)
}

(* The dedicated host register holding the current address-space tag
   (the value of va >> 47 for the active page-table set). *)
let as_tag_preg = 12

type nop =
  | NConst of int64
  | NLoadRf of int
  | NLoadPc
  | NLoadTemp of int
  | NBin of Adl.Ast.binop * bool
  | NNorm of int * bool
  | NSelect
  | NUn of Adl.Ast.unop
  | NIntr of string
  | NDone (* created pre-materialized (memory reads, helper results) *)

type node = {
  nid : int;
  op : nop;
  args : node list;
  mutable mat : operand option;
}

type chunk = { label : int option; mutable body : instr list (* reversed *) }

type t = {
  config : config;
  mutable chunks : chunk list; (* reversed creation order *)
  mutable current : chunk;
  mutable next_vreg : int;
  mutable next_node : int;
  mutable next_label : int;
  mutable next_temp : int;
  temp_vregs : (int, int) Hashtbl.t;
  memo : (string, node) Hashtbl.t;
  mutable pending : node list; (* lazy loads not yet materialized *)
  mutable temp_aliases : node list; (* NLoadTemp nodes materialized as aliases *)
  mutable n_instrs : int;
}

let create config =
  let entry = { label = None; body = [] } in
  {
    config;
    chunks = [ entry ];
    current = entry;
    next_vreg = 0;
    next_node = 0;
    next_label = 0;
    next_temp = 0;
    temp_vregs = Hashtbl.create 8;
    memo = Hashtbl.create 64;
    pending = [];
    temp_aliases = [];
    n_instrs = 0;
  }

let emit t i =
  t.current.body <- i :: t.current.body;
  t.n_instrs <- t.n_instrs + 1

let fresh t =
  let v = t.next_vreg in
  t.next_vreg <- v + 1;
  Vreg v

let mk_node t op args =
  let n = { nid = t.next_node; op; args; mat = None } in
  t.next_node <- t.next_node + 1;
  n

(* Memoized node construction: structurally identical pure nodes are
   shared, so their IR is emitted once per block. *)
let memoized t key op args =
  match Hashtbl.find_opt t.memo key with
  | Some n -> n
  | None ->
    let n = mk_node t op args in
    Hashtbl.replace t.memo key n;
    (match op with
    | NLoadRf _ | NLoadPc | NLoadTemp _ -> t.pending <- n :: t.pending
    | _ -> ());
    n

let cond_of_binop (op : Adl.Ast.binop) signed =
  match (op, signed) with
  | Adl.Ast.Eq, _ -> Ceq
  | Adl.Ast.Ne, _ -> Cne
  | Adl.Ast.Lt, false -> Cult
  | Adl.Ast.Le, false -> Cule
  | Adl.Ast.Gt, false -> Cugt
  | Adl.Ast.Ge, false -> Cuge
  | Adl.Ast.Lt, true -> Cslt
  | Adl.Ast.Le, true -> Csle
  | Adl.Ast.Gt, true -> Csgt
  | Adl.Ast.Ge, true -> Csge
  | _ -> invalid_arg "cond_of_binop"

exception Unsupported_lowering of string

let rec materialize t (n : node) : operand =
  match n.mat with
  | Some o -> o
  | None ->
    let o =
      match n.op with
      | NConst c -> Imm c
      | NLoadRf off ->
        let d = fresh t in
        emit t (Ldrf (d, off));
        d
      | NLoadPc ->
        let d = fresh t in
        emit t (Load_pc d);
        d
      | NLoadTemp tmp ->
        (* Alias the temp's register directly; copy-on-write happens in
           write_temp if the temp is later overwritten. *)
        let v = Hashtbl.find t.temp_vregs tmp in
        t.temp_aliases <- n :: t.temp_aliases;
        Vreg v
      | NBin (op, signed) -> lower_bin t op signed n.args
      | NNorm (bits, signed) ->
        let s = materialize t (List.hd n.args) in
        let d = fresh t in
        emit t (Ext (signed, bits, d, s));
        d
      | NSelect -> (
        match n.args with
        | [ c; x; y ] ->
          let oc = materialize t c in
          let ox = materialize t x in
          let oy = materialize t y in
          let d = fresh t in
          emit t (Cmov (d, oc, ox, oy));
          d
        | _ -> assert false)
      | NUn op -> (
        let s = materialize t (List.hd n.args) in
        let d = fresh t in
        (match op with
        | Adl.Ast.Neg -> emit t (Neg (d, s))
        | Adl.Ast.Not -> emit t (Not (d, s))
        | Adl.Ast.Lnot -> emit t (Setcc (Ceq, d, s, Imm 0L)));
        d)
      | NIntr name -> lower_intrinsic t name n.args
      | NDone -> assert false
    in
    n.mat <- Some o;
    t.pending <- List.filter (fun p -> p.nid <> n.nid) t.pending;
    o

and lower_bin t op signed args =
  let a, b = match args with [ a; b ] -> (a, b) | _ -> assert false in
  let oa = materialize t a in
  let ob = materialize t b in
  let d = fresh t in
  (match op with
  | Adl.Ast.Add -> emit t (Alu (Aadd, d, oa, ob))
  | Adl.Ast.Sub -> emit t (Alu (Asub, d, oa, ob))
  | Adl.Ast.Mul -> emit t (Alu (Amul, d, oa, ob))
  | Adl.Ast.And -> emit t (Alu (Aand, d, oa, ob))
  | Adl.Ast.Or -> emit t (Alu (Aor, d, oa, ob))
  | Adl.Ast.Xor -> emit t (Alu (Axor, d, oa, ob))
  | Adl.Ast.Shl -> emit t (Alu (Ashl, d, oa, ob))
  | Adl.Ast.Shr -> emit t (Alu ((if signed then Asar else Ashr), d, oa, ob))
  | Adl.Ast.Div -> emit t (Divrem (signed, false, d, oa, ob))
  | Adl.Ast.Rem -> emit t (Divrem (signed, true, d, oa, ob))
  | Adl.Ast.Eq | Adl.Ast.Ne | Adl.Ast.Lt | Adl.Ast.Le | Adl.Ast.Gt | Adl.Ast.Ge ->
    emit t (Setcc (cond_of_binop op signed, d, oa, ob))
  | Adl.Ast.Land | Adl.Ast.Lor -> assert false (* rewritten by the type checker *));
  d

and lower_intrinsic t name args =
  match t.config.lower_intrinsic name with
  | L_helper h ->
    let ops = List.map (materialize t) args in
    let d = fresh t in
    emit t (Call (h, Array.of_list ops, Some d));
    d
  | L_inline -> (
    let m i = materialize t (List.nth args i) in
    let un op =
      let s = m 0 in
      let d = fresh t in
      emit t (op d s);
      d
    in
    let bin op =
      let a = m 0 in
      let b = m 1 in
      let d = fresh t in
      emit t (op d a b);
      d
    in
    match name with
    | "sign_extend" -> (
      match (List.nth args 1).op with
      | NConst bits ->
        let s = m 0 in
        let d = fresh t in
        emit t (Ext (true, Int64.to_int bits, d, s));
        d
      | _ -> raise (Unsupported_lowering "sign_extend with dynamic width"))
    | "clz32" -> un (fun d s -> Bit1 (Bclz32, d, s))
    | "clz64" -> un (fun d s -> Bit1 (Bclz64, d, s))
    | "popcount64" -> un (fun d s -> Bit1 (Bpopcnt, d, s))
    | "rbit32" -> un (fun d s -> Bit1 (Brbit32, d, s))
    | "rbit64" -> un (fun d s -> Bit1 (Brbit64, d, s))
    | "rev16" -> un (fun d s -> Bit1 (Bswap16, d, s))
    | "rev32" -> un (fun d s -> Bit1 (Bswap32, d, s))
    | "rev64" -> un (fun d s -> Bit1 (Bswap64, d, s))
    | "ror32" -> bin (fun d a b -> Bit2 (Bror32, d, a, b))
    | "ror64" -> bin (fun d a b -> Bit2 (Bror64, d, a, b))
    | "umulh64" -> bin (fun d a b -> Mulhi (false, d, a, b))
    | "smulh64" -> bin (fun d a b -> Mulhi (true, d, a, b))
    | "udiv64" -> bin (fun d a b -> Divrem (false, false, d, a, b))
    | "sdiv64" -> bin (fun d a b -> Divrem (true, false, d, a, b))
    | "udiv32" ->
      let a = m 0 and b = m 1 in
      let a32 = fresh t and b32 = fresh t and d = fresh t in
      emit t (Ext (false, 32, a32, a));
      emit t (Ext (false, 32, b32, b));
      emit t (Divrem (false, false, d, a32, b32));
      d
    | "sdiv32" ->
      let a = m 0 and b = m 1 in
      let a32 = fresh t and b32 = fresh t and q = fresh t and d = fresh t in
      emit t (Ext (true, 32, a32, a));
      emit t (Ext (true, 32, b32, b));
      emit t (Divrem (true, false, q, a32, b32));
      emit t (Ext (false, 32, d, q));
      d
    | "adc64" ->
      let a = m 0 and b = m 1 and c = m 2 in
      let s = fresh t and d = fresh t in
      emit t (Alu (Aadd, s, a, b));
      emit t (Alu (Aadd, d, s, c));
      d
    | "adc32" ->
      let a = m 0 and b = m 1 and c = m 2 in
      let s = fresh t and s2 = fresh t and d = fresh t in
      emit t (Alu (Aadd, s, a, b));
      emit t (Alu (Aadd, s2, s, c));
      emit t (Ext (false, 32, d, s2));
      d
    | "add_flags64" ->
      let a = m 0 and b = m 1 and c = m 2 in
      let d = fresh t in
      emit t (Flags_add (64, d, a, b, c));
      d
    | "add_flags32" ->
      let a = m 0 and b = m 1 and c = m 2 in
      let d = fresh t in
      emit t (Flags_add (32, d, a, b, c));
      d
    | "logic_flags64" -> un (fun d s -> Flags_logic (64, d, s))
    | "logic_flags32" -> un (fun d s -> Flags_logic (32, d, s))
    | "fp64_add" -> bin (fun d a b -> Fp2 (Fadd64, d, a, b))
    | "fp64_sub" -> bin (fun d a b -> Fp2 (Fsub64, d, a, b))
    | "fp64_mul" -> bin (fun d a b -> Fp2 (Fmul64, d, a, b))
    | "fp64_div" -> bin (fun d a b -> Fp2 (Fdiv64, d, a, b))
    | "fp64_min" -> bin (fun d a b -> Fp2 (Fmin64, d, a, b))
    | "fp64_max" -> bin (fun d a b -> Fp2 (Fmax64, d, a, b))
    | "fp32_add" -> bin (fun d a b -> Fp2 (Fadd32, d, a, b))
    | "fp32_sub" -> bin (fun d a b -> Fp2 (Fsub32, d, a, b))
    | "fp32_mul" -> bin (fun d a b -> Fp2 (Fmul32, d, a, b))
    | "fp32_div" -> bin (fun d a b -> Fp2 (Fdiv32, d, a, b))
    | "fp32_min" -> bin (fun d a b -> Fp2 (Fmin32, d, a, b))
    | "fp32_max" -> bin (fun d a b -> Fp2 (Fmax32, d, a, b))
    | "fp64_sqrt" ->
      (* The host SQRTSD returns the negative "indefinite" NaN for invalid
         inputs where ARM's FSQRT returns the positive default NaN
         (Table 2); emit the inline fix-up the paper describes. *)
      let s = m 0 in
      let r = fresh t in
      emit t (Fp1 (Fsqrt64, r, s));
      let absin = fresh t and in_nan = fresh t and is_ind = fresh t and not_nan = fresh t in
      let fix = fresh t and d = fresh t in
      emit t (Alu (Aand, absin, s, Imm 0x7FFFFFFFFFFFFFFFL));
      emit t (Setcc (Cugt, in_nan, absin, Imm 0x7FF0000000000000L));
      emit t (Setcc (Ceq, is_ind, r, Imm 0xFFF8000000000000L));
      emit t (Setcc (Ceq, not_nan, in_nan, Imm 0L));
      emit t (Alu (Aand, fix, is_ind, not_nan));
      emit t (Cmov (d, fix, Imm 0x7FF8000000000000L, r));
      d
    | "fp32_sqrt" ->
      let s = m 0 in
      let r = fresh t in
      emit t (Fp1 (Fsqrt32, r, s));
      let absin = fresh t and in_nan = fresh t and is_ind = fresh t and not_nan = fresh t in
      let fix = fresh t and d = fresh t in
      emit t (Alu (Aand, absin, s, Imm 0x7FFFFFFFL));
      emit t (Setcc (Cugt, in_nan, absin, Imm 0x7F800000L));
      emit t (Setcc (Ceq, is_ind, r, Imm 0xFFC00000L));
      emit t (Setcc (Ceq, not_nan, in_nan, Imm 0L));
      emit t (Alu (Aand, fix, is_ind, not_nan));
      emit t (Cmov (d, fix, Imm 0x7FC00000L, r));
      d
    | "fp64_cmp_flags" -> bin (fun d a b -> Fcmp_flags (64, d, a, b))
    | "fp32_cmp_flags" -> bin (fun d a b -> Fcmp_flags (32, d, a, b))
    | "fp32_to_fp64" -> un (fun d s -> Fp1 (Fcvt_32_64, d, s))
    | "fp64_to_fp32" -> un (fun d s -> Fp1 (Fcvt_64_32, d, s))
    | "fp64_to_sint64" -> un (fun d s -> Fp1 (Fcvt_64_s64, d, s))
    | "fp64_to_uint64" -> un (fun d s -> Fp1 (Fcvt_64_u64, d, s))
    | "fp32_to_sint32" -> un (fun d s -> Fp1 (Fcvt_32_s32, d, s))
    | "sint64_to_fp64" -> un (fun d s -> Fp1 (Fcvt_s64_64, d, s))
    | "uint64_to_fp64" -> un (fun d s -> Fp1 (Fcvt_u64_64, d, s))
    | "sint32_to_fp32" -> un (fun d s -> Fp1 (Fcvt_s32_32, d, s))
    | "sint64_to_fp32" -> un (fun d s -> Fp1 (Fcvt_s64_32, d, s))
    | "fp64_muladd" ->
      let a = m 0 and b = m 1 and c = m 2 in
      let p = fresh t and d = fresh t in
      emit t (Fp2 (Fmul64, p, a, b));
      emit t (Fp2 (Fadd64, d, p, c));
      d
    | other -> raise (Unsupported_lowering other))

(* --- hazard management ------------------------------------------------------ *)

(* Before mutating a location, force any lazy load of it that was built
   earlier, so the pre-mutation value is captured. *)
let hazard t pred =
  let hit, rest = List.partition pred t.pending in
  t.pending <- rest;
  List.iter (fun n -> ignore (materialize t n)) hit

let hazard_rf t off = hazard t (fun n -> match n.op with NLoadRf o -> o = off | _ -> false)
let hazard_pc t = hazard t (fun n -> match n.op with NLoadPc -> true | _ -> false)

let hazard_temp t tmp =
  hazard t (fun n -> match n.op with NLoadTemp x -> x = tmp | _ -> false);
  (* Copy-on-write for alias-materialized temp reads. *)
  let hit, rest =
    List.partition (fun n -> match n.op with NLoadTemp x -> x = tmp | _ -> false) t.temp_aliases
  in
  t.temp_aliases <- rest;
  List.iter
    (fun n ->
      let d = fresh t in
      emit t (Mov (d, Option.get n.mat));
      n.mat <- Some d)
    hit

(* Full barrier: helper calls with effects may touch any guest state. *)
let barrier t =
  hazard t (fun _ -> true);
  Hashtbl.reset t.memo

let invalidate t key = Hashtbl.remove t.memo key

(* Emit the Sec. 2.7.5 address-space-split check around a guest memory
   access: compare va>>47 against the dedicated tag register; on mismatch
   call the switch helper (which reloads CR3 with the other page-table set
   under a different PCID); then mask the address into the lower half. *)
let guarded_address t (oa : operand) : operand =
  if not t.config.split_va_check then oa
  else begin
    let hi = fresh t in
    emit t (Alu (Ashr, hi, oa, Imm 47L));
    let miss = fresh t in
    emit t (Setcc (Cne, miss, hi, Preg as_tag_preg));
    let l_switch = t.next_label in
    let l_cont = t.next_label + 1 in
    t.next_label <- t.next_label + 2;
    let switch_chunk = { label = Some l_switch; body = [] } in
    let cont_chunk = { label = Some l_cont; body = [] } in
    t.chunks <- cont_chunk :: switch_chunk :: t.chunks;
    emit t (Br (miss, l_switch, l_cont));
    let saved = t.current in
    t.current <- switch_chunk;
    emit t (Call (t.config.as_switch_helper, [| hi |], None));
    emit t (Jmp l_cont);
    t.current <- cont_chunk;
    ignore saved;
    let masked = fresh t in
    emit t (Alu (Aand, masked, oa, Imm 0x7FFF_FFFF_FFFFL));
    masked
  end

(* --- the Emitter interface --------------------------------------------------- *)

let key_of_args args = String.concat "," (List.map (fun n -> string_of_int n.nid) args)

let emitter (t : t) : node Ssa.Emitter.t =
  let pure_key op args = op ^ ":" ^ key_of_args args in
  {
    Ssa.Emitter.const = (fun c -> memoized t (Printf.sprintf "c%Ld" c) (NConst c) []);
    binary =
      (fun op ~signed a b ->
        let opn = Printf.sprintf "b%s%b" (Ssa.Ir.string_of_binop op) signed in
        memoized t (pure_key opn [ a; b ]) (NBin (op, signed)) [ a; b ]);
    unary =
      (fun op a ->
        let opn = match op with Adl.Ast.Neg -> "neg" | Adl.Ast.Not -> "not" | Adl.Ast.Lnot -> "lnot" in
        memoized t (pure_key opn [ a ]) (NUn op) [ a ]);
    normalize =
      (fun ~bits ~signed a ->
        memoized t (pure_key (Printf.sprintf "norm%d%b" bits signed) [ a ]) (NNorm (bits, signed)) [ a ]);
    select = (fun c x y -> memoized t (pure_key "sel" [ c; x; y ]) NSelect [ c; x; y ]);
    intrinsic =
      (fun name args ->
        (* Pure intrinsics are CSE-able; anything else gets a unique node. *)
        match Adl.Builtins.find name with
        | Some { Adl.Builtins.bi_kind = Adl.Builtins.Pure; _ } ->
          memoized t (pure_key name args) (NIntr name) args
        | _ ->
          let n = mk_node t (NIntr name) args in
          ignore (materialize t n);
          n);
    load_bankreg =
      (fun ~bank ~index ->
        let off = t.config.bank_offset ~bank ~index in
        memoized t (Printf.sprintf "rf%d" off) (NLoadRf off) []);
    store_bankreg =
      (fun ~bank ~index v ->
        let off = t.config.bank_offset ~bank ~index in
        hazard_rf t off;
        invalidate t (Printf.sprintf "rf%d" off);
        emit t (Strf (off, materialize t v)));
    load_reg =
      (fun ~slot ->
        let off = t.config.slot_offset slot in
        memoized t (Printf.sprintf "rf%d" off) (NLoadRf off) []);
    store_reg =
      (fun ~slot v ->
        let off = t.config.slot_offset slot in
        hazard_rf t off;
        invalidate t (Printf.sprintf "rf%d" off);
        emit t (Strf (off, materialize t v)));
    load_pc = (fun () -> memoized t "pc" NLoadPc []);
    store_pc =
      (fun v ->
        (* Fig. 9(d): a PC store of (pc + const) collapses to one host add
           on the dedicated PC register.  The consumed load_pc node is
           dropped from the pending set; semantics never read the PC again
           after writing it within one instruction, so no other consumer
           can observe the post-increment value. *)
        match (v.op, v.args) with
        | NBin (Adl.Ast.Add, _), [ ({ op = NLoadPc; _ } as pcn); { op = NConst k; _ } ]
        | NBin (Adl.Ast.Add, _), [ { op = NConst k; _ }; ({ op = NLoadPc; _ } as pcn) ] ->
          t.pending <- List.filter (fun p -> p.nid <> pcn.nid) t.pending;
          invalidate t "pc";
          emit t (Inc_pc (Int64.to_int k))
        | _ ->
          hazard_pc t;
          invalidate t "pc";
          emit t (Store_pc (materialize t v)));
    inc_pc =
      (fun n ->
        hazard_pc t;
        invalidate t "pc";
        emit t (Inc_pc n));
    mem_read =
      (fun ~bits a ->
        (* Memory reads can fault: they execute at their program point. *)
        let oa = guarded_address t (materialize t a) in
        let d = fresh t in
        emit t (Mem_ld (bits, d, oa));
        let n = mk_node t NDone [] in
        n.mat <- Some d;
        n);
    mem_write =
      (fun ~bits ~addr ~value ->
        let ov = materialize t value in
        let oa = guarded_address t (materialize t addr) in
        emit t (Mem_st (bits, oa, ov)));
    coproc_read =
      (fun idx ->
        let oi = materialize t idx in
        let d = fresh t in
        emit t (Call (t.config.coproc_read_helper, [| oi |], Some d));
        let n = mk_node t NDone [] in
        n.mat <- Some d;
        n);
    coproc_write =
      (fun idx v ->
        let oi = materialize t idx in
        let ov = materialize t v in
        barrier t;
        emit t (Call (t.config.coproc_write_helper, [| oi; ov |], None)));
    effect =
      (fun name args ->
        let ops = List.map (materialize t) args in
        barrier t;
        emit t (Call (t.config.effect_helper name, Array.of_list ops, None)));
    create_block =
      (fun () ->
        let l = t.next_label in
        t.next_label <- l + 1;
        t.chunks <- { label = Some l; body = [] } :: t.chunks;
        l);
    jump =
      (fun l ->
        t.pending <- [];
        Hashtbl.reset t.memo;
        emit t (Jmp l));
    branch =
      (fun c lt lf ->
        let oc = materialize t c in
        t.pending <- [];
        Hashtbl.reset t.memo;
        emit t (Br (oc, lt, lf)));
    set_block =
      (fun l ->
        t.pending <- [];
        t.temp_aliases <- [];
        Hashtbl.reset t.memo;
        t.current <- List.find (fun c -> c.label = Some l) t.chunks);
    new_temp =
      (fun () ->
        let tmp = t.next_temp in
        t.next_temp <- tmp + 1;
        Hashtbl.replace t.temp_vregs tmp
          (match fresh t with Vreg v -> v | _ -> assert false);
        tmp);
    read_temp = (fun tmp -> memoized t (Printf.sprintf "tmp%d" tmp) (NLoadTemp tmp) []);
    write_temp =
      (fun tmp v ->
        hazard_temp t tmp;
        invalidate t (Printf.sprintf "tmp%d" tmp);
        let ov = materialize t v in
        emit t (Mov (Vreg (Hashtbl.find t.temp_vregs tmp), ov)));
  }

(* Append a raw instruction (prologue/epilogue/exits, emitted by the
   engine). *)
let raw t i = emit t i
let fresh_vreg t = fresh t

(* --- template-miner hooks --------------------------------------------------- *)

(* The template miner (Template) emits register-file accesses whose offset
   is a hole patched at install time, so it bypasses the emitter's
   offset-keyed memoization and needs three extra entry points: force a
   node to its operand now, wrap an operand it produced itself back into a
   node (the mem_read/coproc_read pattern), and conservatively hazard every
   pending rf load before a store whose offset is unknown at mine time. *)
let force t n = materialize t n

let done_node t (o : operand) =
  let n = mk_node t NDone [] in
  n.mat <- Some o;
  n

let rf_barrier t =
  hazard t (fun n -> match n.op with NLoadRf _ -> true | _ -> false);
  (* Drop exactly the "rf%d" memo keys; pure keys (op name ^ ":" ^ args)
     never match the rf<digits> shape. *)
  let is_rf_key k =
    String.length k > 2
    && k.[0] = 'r'
    && k.[1] = 'f'
    && (try String.iter (fun c -> if c < '0' || c > '9' then raise Exit) (String.sub k 2 (String.length k - 2)); true
        with Exit -> false)
  in
  let keys = Hashtbl.fold (fun k _ acc -> if is_rf_key k then k :: acc else acc) t.memo [] in
  List.iter (Hashtbl.remove t.memo) keys

(* Flatten the chunks into the final instruction stream. *)
let finish t : instr array =
  let chunks = List.rev t.chunks in
  let buf = ref [] in
  List.iter
    (fun c ->
      (match c.label with Some l -> buf := Label l :: !buf | None -> ());
      List.iter (fun i -> buf := i :: !buf) (List.rev c.body))
    chunks;
  Array.of_list (List.rev !buf)

let vreg_count t = t.next_vreg
let instr_count t = t.n_instrs
let label_count t = t.next_label
