(** Forward abstract interpretation over label-form HostIR streams.

    A dataflow framework over the {!Region} CFG with a product value
    domain — known-bits crossed with an unsigned interval, mutually
    refined — mapping every storage location the executor models
    (vregs, host GPRs, spill slots, register-file qwords, the PC
    register) to an abstract value.  Every transfer function
    over-approximates the concrete executor ({!Exec}) exactly; helper
    calls are interpreted through the shared {!Effects} classification.

    Consumers: {!check_translation} (the static obligation checker run
    by the engine over every translation when
    [config.analyze_translations] is set), {!simplify} (the O4
    absint-simplify region pass), and {!Verify.check_wb} (which
    delegates its promoted-register discipline fixpoint to
    {!check_wb}). *)

(** {1 Value domain} *)

type av = { zeros : int64; ones : int64; lo : int64; hi : int64 }

type value = Bot | V of av
(** Invariants of [V]: [zeros land ones = 0] and
    [ones <=u lo <=u hi <=u lognot zeros]. *)

val make : int64 -> int64 -> int64 -> int64 -> value
(** [make zeros ones lo hi], refining the two halves to a fixed point. *)

val bot : value
val top : value
val const : int64 -> value
val range : int64 -> int64 -> value
val of_width : int -> value
val is_bot : value -> bool
val is_top : value -> bool
val is_const : value -> int64 option
val contains : value -> int64 -> bool
val join : value -> value -> value
val meet : value -> value -> value
val widen : value -> value -> value
val leq : value -> value -> bool
val value_to_string : value -> string

val decide_cond : Hir.cond -> value -> value -> bool option
(** Decide a comparison from the facts; [None] = unknown. *)

(** {1 Abstract state and transfer} *)

module Imap : Map.S with type key = int

type state = {
  s_vregs : value Imap.t;
  s_pregs : value Imap.t;
  s_slots : value Imap.t;
  s_rf : value Imap.t;  (** register-file qwords, by byte offset *)
  s_pc : value;
}
(** Absent entries are implicitly [top]. *)

val state_top : state
val state_join : state -> state -> state
val state_widen : state -> state -> state
val state_equal : state -> state -> bool
val read : state -> Hir.operand -> value
val write : state -> Hir.operand -> value -> state
val rf_read : state -> int -> value

val rf_write : state -> int -> value -> state
(** Strong update of one register-file qword, invalidating any
    overlapping tracked entries. *)

val transfer : classify:(int -> Effects.helper_kind) -> state -> Hir.instr -> state
(** One-instruction abstract step, exactly over-approximating {!Exec}. *)

(** {1 CFG fixpoint} *)

type facts = {
  f_instrs : Hir.instr array;
  f_cfg : Region.cfg;
  f_entry : state option array;  (** block entry states; [None] = unreachable *)
  f_classify : int -> Effects.helper_kind;
}

val analyze :
  ?classify:(int -> Effects.helper_kind) -> ?entry:state -> Hir.instr array -> facts
(** Worklist fixpoint over the {!Region} CFG, widening at loop heads.
    [classify] defaults to treating every helper as a clobber; [entry]
    defaults to the all-top state. *)

val iter_facts : facts -> (int -> state -> Hir.instr -> unit) -> unit
(** Walk every reachable instruction with the abstract state immediately
    before it. *)

(** {1 Obligation checking} *)

val rf_bytes : int
(** Size of the guest register file in bytes (8 KiB). *)

type obligation =
  | Ob_rf_oob  (** [Ldrf]/[Strf]/[Wbmap] offset outside the register file *)
  | Ob_rf_align  (** register-file offset not 8-byte aligned *)
  | Ob_frame_oob  (** spill-slot index outside the allocated frame *)
  | Ob_dirty_call  (** helper call reachable with a dirty promoted vreg *)
  | Ob_wb_coverage  (** escape reachable with an uncovered dirty vreg *)
  | Ob_stale_use  (** use/writeback of a possibly-overtaken promoted vreg *)
  | Ob_wb_shape  (** malformed writeback map *)

val obligation_name : obligation -> string

type finding = {
  f_index : int option;  (** instruction index in the stream, if any *)
  f_class : obligation;
  f_msg : string;
}

val finding_to_string : finding -> string

val check_rf_bounds : Hir.instr array -> finding list
(** Every register-file access in-bounds and 8-byte aligned. *)

val check_frame : n_slots:int -> Hir.instr array -> finding list
(** Every spill-slot operand inside the allocated frame
    (post-allocation streams). *)

val check_wb :
  ?classify:(int -> Effects.helper_kind) ->
  promoted:(int * int) list ->
  Hir.instr array ->
  finding list
(** Promoted-register discipline and writeback coverage: the forward
    may-analysis over dirty/stale promoted vregs on the region CFG
    (the engine of {!Verify.check_wb}).  Helpers classified [C_pure]
    are transparent; by default every helper is a barrier. *)

val check_translation :
  ?classify:(int -> Effects.helper_kind) ->
  ?promoted:(int * int) list ->
  ?n_slots:int ->
  Hir.instr array ->
  finding list
(** The full obligation suite for one translation: register-file
    bounds, frame bounds (when [n_slots] is given), and writeback
    discipline (when [promoted] is non-empty). *)

(** {1 The absint-simplify pass} *)

type simplify_stats = {
  mutable branches_folded : int;  (** [Br] with a decided condition -> [Jmp] *)
  mutable consts_folded : int;  (** pure results proved constant -> [Mov Imm] *)
  mutable masks_dropped : int;  (** redundant [And] masks / extensions elided *)
  mutable divs_reduced : int;  (** unsigned div/rem by [2^k] strength-reduced *)
  mutable dead_deleted : int;  (** cross-block dead vreg definitions removed *)
}

val empty_simplify_stats : unit -> simplify_stats
val add_simplify_stats : simplify_stats -> simplify_stats -> simplify_stats

val simplify :
  ?classify:(int -> Effects.helper_kind) ->
  Hir.instr array ->
  Hir.instr array * simplify_stats
(** The O4 absint-simplify region pass, run on the flattened promoted
    stream before register allocation: fold branches with known
    conditions, rewrite fully-known pure results to constants, drop
    masks and extensions the facts prove redundant, strength-reduce
    unsigned division by powers of two, delete cross-block dead vreg
    definitions, and prune unreachable blocks (preserving the
    writeback map). *)
