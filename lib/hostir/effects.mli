(** Shared helper-effect classification.

    The single source of truth for how each helper index affects guest
    state, consumed by {!Symexec} (call tracing), {!Promote} (call
    barriers) and {!Absint} (transfer functions).  The helper table
    layout is fixed across engines and owned here; lib/core re-exports
    the indices. *)

type helper_kind =
  | C_pure  (** deterministic value of its arguments; not traced *)
  | C_read  (** reads environment, writes no guest state (coproc_read) *)
  | C_as_switch  (** address-space switch: writes the AS tag preg *)
  | C_event  (** externally visible event; rf/pc untouched *)
  | C_clobber  (** may rewrite rf and pc (exceptions, coproc writes) *)

val kind_to_string : helper_kind -> string

(** {1 Fixed helper indices} *)

val h_coproc_read : int
val h_coproc_write : int
val h_take_exception : int
val h_eret : int
val h_tlb_flush : int
val h_tlb_flush_page : int
val h_halt : int
val h_wfi : int
val h_barrier : int
val h_as_switch : int
val h_softmmu_fill_read : int
val h_softmmu_fill_write : int

val first_softfloat : int
(** Indices >= this are pure softfloat intrinsics. *)

val classify : int -> helper_kind
(** Classification by helper index. *)

(** Effect summary: what a call may touch beyond its explicit operands. *)
type summary = {
  s_kind : helper_kind;
  s_writes_rf : bool;
  s_writes_pc : bool;
  s_writes_as_tag : bool;
  s_observes_rf : bool;  (** environment may read the register file *)
  s_escapes : bool;
      (** may leave the executor without the ordinary exit path (e.g.
          h_halt raises before any writeback flush) *)
}

val summarize : int -> summary

val barrier : int -> bool
(** [true] unless the helper is transparent to promoted-register
    discipline (pure helpers only). *)

val symbol_name : int -> string
(** Stable symbol name for a helper index — the identity a table index
    stands for, independent of any per-boot table address.  Used by
    {!Reloc} certificates and findings. *)
