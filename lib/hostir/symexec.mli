(** Bounded symbolic execution of HostIR over a bitvector term domain.

    Programs in label form are executed over symbolic 64-bit terms; every
    path up to the configured bounds yields an {!exit_state}.  Terms are
    normalized by smart constructors whose constant folding is exactly
    the concrete executor ({!Exec}) semantics, so syntactic equality of
    normalized terms is the equivalence check used by {!Equiv}. *)

(** A leaf of the initial symbolic state. *)
type atom =
  | A_rf of int  (** initial register-file qword at byte offset *)
  | A_preg of int  (** initial host GPR *)
  | A_pc  (** initial guest PC *)
  | A_slot of int  (** initial translation-frame slot *)

(** How a helper call affects symbolic state; the shared classification
    table lives in {!Effects} (one source of truth with {!Promote} and
    {!Absint}). *)
type helper_kind = Effects.helper_kind =
  | C_pure  (** deterministic value of its arguments; not traced *)
  | C_read  (** reads environment, writes no guest state (coproc_read) *)
  | C_as_switch  (** address-space switch: writes the AS tag preg *)
  | C_event  (** externally visible event; rf/pc untouched *)
  | C_clobber  (** may rewrite rf and pc (exceptions, coproc writes) *)

type term =
  | Const of int64
  | Atom of atom
  | TAlu of Hir.aluop * term * term
  | TMulhi of bool * term * term
  | TDivrem of bool * bool * term * term
  | TCmp of Hir.cond * term * term
  | TIte of term * term * term
  | TExt of bool * int * term
  | TNeg of term
  | TNot of term
  | TBit1 of Hir.bit1op * term
  | TBit2 of Hir.bit2op * term * term
  | TFp2 of Hir.fp2op * term * term
  | TFp1 of Hir.fp1op * term
  | TFcmp of int * term * term
  | TFlagsAdd of int * term * term * term
  | TFlagsLogic of int * term
  | TLoad of int * term * int
  | TCallRet of int
  | THelperVal of int * term list
  | TRfAfter of int * int
  | TPcAfter of int
  | TAsTag of int
  | TPollFired of int

val to_string : term -> string

(** An event in a path's ordered memory/call trace. *)
type event =
  | E_store of { s_width : int; s_addr : term; s_value : term; s_pc : term }
  | E_call of {
      c_helper : int;
      c_kind : helper_kind;
      c_args : term list;
      c_pc : term;
      c_rf : (int * term) list;
      c_epoch : int;
    }

type exit_state = {
  x_slot : int;
  x_poll : bool;  (** exit taken through a fired Poll rather than Exit *)
  x_pc : term;
  x_epoch : int;  (** clobber-call ordinal the rf is relative to; -1 initial *)
  x_rf : (int * term) list;  (** ascending offset; default entries dropped *)
  x_pregs : (int * term) list;
  x_trace : event list;  (** program order *)
  x_lits : (term * bool) list;  (** sorted path condition *)
}

type limits = {
  max_paths : int;
  max_steps_per_path : int;
  max_total_steps : int;
  max_loop_iters : int;
      (** k-bounded unrolling: abandon a path after this many crossings of
          the same backedge (keeps loop-carried terms tractable) *)
  max_term_nodes : int;
      (** abandon a path when a state term's tree size exceeds this bound
          (terms are shared DAGs; the structural walks are over trees) *)
}

val default_limits : limits

type outcome = {
  exits : exit_state list;
  complete : bool;  (** false when any bound was hit or a path fell off *)
  o_paths : int;
  o_steps : int;
}

(** Execute [prog] (label form: [Jmp]/[Br] carry label ids) from a fresh
    symbolic state with the given initial PC term.  [classify] assigns
    helper kinds (default: everything clobbers); [assume_as_hit] follows
    only the matched-tag fast path of Dag.guarded_address AS guards. *)
val run :
  ?limits:limits ->
  ?classify:(int -> helper_kind) ->
  ?assume_as_hit:bool ->
  init_pc:term ->
  Hir.instr array ->
  outcome

(** {2 Concrete evaluation (test harness)} *)

type env = {
  e_pc : int64;
  e_preg : int -> int64;
  e_rf : int -> int64;
  e_slot : int -> int64;
}

exception Unevaluable of string

(** Evaluate a term under concrete initial state; raises {!Unevaluable}
    on terms denoting memory or helper results. *)
val eval : env -> term -> int64
