(* Region-level optimisation passes for tier-1 (hot region) translations.

   A region is translated as one Dag: the head member's body occupies the
   entry chunk and every other member sits behind a pre-created label,
   with a per-member PC-compare dispatch chunk at each member's end.  The
   passes below run over the flattened instruction stream before register
   allocation; [optimize] chains them in the canonical order.  All passes
   are pure functions of the instruction stream. *)

module Iset : Set.S with type elt = int

(* Rewrite jumps into a dispatch chunk with a direct jump to the member
   entry whenever the guest PC at the jump is statically known.
   [dispatch_labels] are the labels of the PC-compare dispatch chunks;
   [member_entry] maps each member's guest VA to its entry label. *)
val straighten :
  dispatch_labels:Iset.t -> member_entry:(int64 * int) list -> Hir.instr array -> Hir.instr array

(* Remove jumps to the immediately following label. *)
val elide_jumps : Hir.instr array -> Hir.instr array

(* Drop instructions unreachable from the region entry (index 0). *)
val prune_unreachable : Hir.instr array -> Hir.instr array

(* Defer guest-PC increments to the next observation point. *)
val coalesce_inc_pc : Hir.instr array -> Hir.instr array

(* Delete the PC reload on the member/dispatch seam, comparing the
   just-computed branch target directly. *)
val forward_store_pc : Hir.instr array -> Hir.instr array

(* Remove register-file stores overwritten before any possible read. *)
val eliminate_dead_stores : Hir.instr array -> Hir.instr array

(* The full pipeline: straighten -> elide_jumps -> prune_unreachable ->
   coalesce_inc_pc -> forward_store_pc -> eliminate_dead_stores. *)
val optimize :
  dispatch_labels:Iset.t -> member_entry:(int64 * int) list -> Hir.instr array -> Hir.instr array

(* A lightweight CFG over the flattened stream, shared by the dead-store
   pass, register promotion (Promote), and the structural verifier. *)
type cfg = {
  c_starts : int array; (* block start indices, ascending; c_starts.(0) = 0 *)
  c_nb : int; (* number of blocks *)
  c_block_of_idx : int -> int; (* enclosing block of an instruction index *)
  c_block_end : int -> int; (* one past a block's last instruction *)
  c_succs : int -> int list; (* successor blocks *)
}

val build_cfg : Hir.instr array -> cfg
