(* Template translation tier: mine each decode action through the
   Gen/Dag pipeline once per opcode form with decode fields evaluated
   symbolically, then install blocks by patching sentinel holes —
   see template.mli for the soundness model. *)

module Builtins = Adl.Builtins
module Eval = Adl.Eval
module Ir = Ssa.Ir
module Emitter = Ssa.Emitter

(* --- field expressions ------------------------------------------------------ *)

(* An install-time-evaluable computation over decode fields: exactly the
   Fixed arithmetic Gen folds at translate time, reified so one mined
   stream serves every field assignment. *)
type fexpr =
  | Ffield of string
  | Fconst of int64
  | Fbin of Adl.Ast.binop * bool * fexpr * fexpr
  | Funop of Adl.Ast.unop * fexpr
  | Fnorm of int * bool * fexpr
  | Fsel of fexpr * fexpr * fexpr
  | Fbuiltin of string * fexpr list

exception Patch_failure

let rec fe_eval ~field = function
  | Ffield f -> field f
  | Fconst c -> c
  | Fbin (op, signed, a, b) -> Eval.binop op ~signed (fe_eval ~field a) (fe_eval ~field b)
  | Funop (op, a) -> Eval.unop op (fe_eval ~field a)
  | Fnorm (bits, signed, a) ->
    Eval.normalize (Adl.Ast.Tint { bits; signed }) (fe_eval ~field a)
  | Fsel (c, x, y) -> if fe_eval ~field c <> 0L then fe_eval ~field x else fe_eval ~field y
  | Fbuiltin (name, args) -> (
    match Eval.builtin name (List.map (fe_eval ~field) args) with
    | Some v -> v
    | None -> raise Patch_failure)

(* Canonical key: memoizes hole allocation (same expression, same
   sentinel) and anchors the double-mine stream comparison. *)
let rec fe_key = function
  | Ffield f -> "$" ^ f
  | Fconst c -> Printf.sprintf "#%Ld" c
  | Fbin (op, s, a, b) ->
    Printf.sprintf "(%s%b %s %s)" (Ir.string_of_binop op) s (fe_key a) (fe_key b)
  | Funop (op, a) -> Printf.sprintf "(u%d %s)" (Hashtbl.hash op) (fe_key a)
  | Fnorm (bits, s, a) -> Printf.sprintf "(n%d%b %s)" bits s (fe_key a)
  | Fsel (c, x, y) -> Printf.sprintf "(sel %s %s %s)" (fe_key c) (fe_key x) (fe_key y)
  | Fbuiltin (n, args) ->
    Printf.sprintf "(%s %s)" n (String.concat " " (List.map fe_key args))

let rec fe_support acc = function
  | Ffield f -> if List.mem f acc then acc else f :: acc
  | Fconst _ -> acc
  | Fbin (_, _, a, b) -> fe_support (fe_support acc a) b
  | Funop (_, a) | Fnorm (_, _, a) -> fe_support acc a
  | Fsel (a, b, c) -> fe_support (fe_support (fe_support acc a) b) c
  | Fbuiltin (_, args) -> List.fold_left fe_support acc args

(* --- the three-way value domain --------------------------------------------- *)

(* Gen's [Fixed | Dyn] with the middle case: field-dependent but
   install-time evaluable. *)
type 'v tv = Fix of int64 | Fx of fexpr | Dy of 'v

exception Untemplatable of string

(* A field-dependent value is about to steer code *structure*: restart
   mining with its support pinned to witness values. *)
exception Need_pin of string list

let fx_of = function Fix c -> Fconst c | Fx e -> e | Dy _ -> invalid_arg "Template.fx_of"

(* Eagerly folded symbolic combinators (callers guarantee no Dy). *)
let sx_bin op signed a b =
  match (a, b) with
  | Fix x, Fix y -> Fix (Eval.binop op ~signed x y)
  | _ -> Fx (Fbin (op, signed, fx_of a, fx_of b))

let sx_un op = function Fix x -> Fix (Eval.unop op x) | v -> Fx (Funop (op, fx_of v))

let sx_norm ~bits ~signed = function
  | Fix x -> Fix (Eval.normalize (Adl.Ast.Tint { bits; signed }) x)
  | v -> Fx (Fnorm (bits, signed, fx_of v))

(* --- the symbolic evaluator -------------------------------------------------- *)

(* Everything the evaluator needs beyond the emitter; the probe run
   instantiates these with no-ops over [Emitter.null]. *)
type 'v mctx = {
  mem : 'v Emitter.t;
  mmat : 'v tv -> 'v;  (* materialize Fix/Fx (the latter via a hole) *)
  msym_load : bank:int -> fexpr -> 'v tv;  (* rf load at a hole offset *)
  msym_store : bank:int -> fexpr -> 'v tv -> unit;
  mclear : unit -> unit;  (* any rf store / barrier / block boundary *)
}

let teval_inst (c : 'v mctx) ~pinned ~witness ~get ~set ~getvar ~setvar (i : Ir.inst) =
  let open Emitter in
  let em = c.mem in
  let mat v = c.mmat v in
  match i.Ir.desc with
  | Ir.Const v -> set i.Ir.id (Fix v)
  | Ir.Struct f ->
    set i.Ir.id
      (match Hashtbl.find_opt pinned f with Some v -> Fix v | None -> Fx (Ffield f))
  | Ir.Binary (op, signed, a, b) -> (
    match (get a, get b) with
    | ((Fix _ | Fx _) as va), ((Fix _ | Fx _) as vb) -> set i.Ir.id (sx_bin op signed va vb)
    | va, vb -> set i.Ir.id (Dy (em.binary op ~signed (mat va) (mat vb))))
  | Ir.Unary (op, a) -> (
    match get a with
    | (Fix _ | Fx _) as v -> set i.Ir.id (sx_un op v)
    | Dy v -> set i.Ir.id (Dy (em.unary op v)))
  | Ir.Normalize (bits, signed, a) -> (
    match get a with
    | (Fix _ | Fx _) as v -> set i.Ir.id (sx_norm ~bits ~signed v)
    | Dy v -> set i.Ir.id (Dy (em.normalize ~bits ~signed v)))
  | Ir.Select (cnd, t, f) -> (
    match get cnd with
    | Fix x -> set i.Ir.id (get (if x <> 0L then t else f))
    | Fx e -> (
      match (get t, get f) with
      | ((Fix _ | Fx _) as vt), ((Fix _ | Fx _) as vf) ->
        set i.Ir.id (Fx (Fsel (e, fx_of vt, fx_of vf)))
      | vt, vf ->
        (* Cmov's condition operand is value-independent in the lowering,
           so a hole condition is patchable — no pin needed. *)
        set i.Ir.id (Dy (em.select (mat (Fx e)) (mat vt) (mat vf))))
    | Dy vc -> set i.Ir.id (Dy (em.select vc (mat (get t)) (mat (get f)))))
  | Ir.Intrinsic (name, args) -> (
    let vals = List.map get args in
    let all_fix = List.for_all (function Fix _ -> true | _ -> false) vals in
    let no_dy = List.for_all (function Dy _ -> false | _ -> true) vals in
    let pure =
      match Builtins.find name with
      | Some { Builtins.bi_kind = Builtins.Pure; _ } -> true
      | _ -> false
    in
    let emit_dynamic () =
      (* The sign_extend lowering bakes a constant width into [Ext]: a
         hole there would be unpatchable, so pin the width's support. *)
      (match (name, vals) with
      | "sign_extend", [ _; Fx e ] -> raise (Need_pin (fe_support [] e))
      | _ -> ());
      set i.Ir.id (Dy (em.intrinsic name (List.map mat vals)))
    in
    if pure && all_fix then
      match
        Eval.builtin name (List.map (function Fix c -> c | _ -> assert false) vals)
      with
      | Some v -> set i.Ir.id (Fix v)
      | None -> emit_dynamic ()
    else if pure && no_dy then
      (* At least one Fx argument: fold symbolically iff the builtin
         evaluates on the witness (evaluability is structural in
         name/arity, so it then evaluates for every field assignment). *)
      match
        Eval.builtin name (List.map (fun v -> fe_eval ~field:witness (fx_of v)) vals)
      with
      | Some _ -> set i.Ir.id (Fx (Fbuiltin (name, List.map fx_of vals)))
      | None | (exception _) -> emit_dynamic ()
    else emit_dynamic ())
  | Ir.Bank_read (bank, idx) -> (
    match get idx with
    | Fix ix -> set i.Ir.id (Dy (em.load_bankreg ~bank ~index:(Int64.to_int ix)))
    | Fx e -> set i.Ir.id (c.msym_load ~bank e)
    | Dy _ -> raise (Untemplatable "dynamic register-bank index"))
  | Ir.Bank_write (bank, idx, v) -> (
    match get idx with
    | Fix ix ->
      em.store_bankreg ~bank ~index:(Int64.to_int ix) (mat (get v));
      c.mclear ()
    | Fx e -> c.msym_store ~bank e (get v)
    | Dy _ -> raise (Untemplatable "dynamic register-bank index"))
  | Ir.Reg_read slot -> set i.Ir.id (Dy (em.load_reg ~slot))
  | Ir.Reg_write (slot, v) ->
    em.store_reg ~slot (mat (get v));
    c.mclear ()
  | Ir.Var_read v -> set i.Ir.id (getvar v)
  | Ir.Var_write (v, x) -> setvar v (get x)
  | Ir.Mem_read (bits, a) -> set i.Ir.id (Dy (em.mem_read ~bits (mat (get a))))
  | Ir.Mem_write (bits, a, v) ->
    em.mem_write ~bits ~addr:(mat (get a)) ~value:(mat (get v))
  | Ir.Pc_read -> set i.Ir.id (Dy (em.load_pc ()))
  | Ir.Pc_write v -> em.store_pc (mat (get v))
  | Ir.Coproc_read idx -> set i.Ir.id (Dy (em.coproc_read (mat (get idx))))
  | Ir.Coproc_write (idx, v) ->
    em.coproc_write (mat (get idx)) (mat (get v));
    c.mclear ()
  | Ir.Effect (name, args) ->
    em.effect name (List.map (fun a -> mat (get a)) args);
    c.mclear ()
  | Ir.Phi _ -> raise (Untemplatable "phi node reached the template miner")

(* --- strategy 1: fully fixed control flow (mirrors Gen.run_fixed) ------------ *)

let run_tfixed (c : 'v mctx) (action : Ir.action) ~pinned ~witness =
  let env : (Ir.id, 'v tv) Hashtbl.t = Hashtbl.create 64 in
  let vars : (int, 'v tv) Hashtbl.t = Hashtbl.create 8 in
  let get id = try Hashtbl.find env id with Not_found -> Fix 0L in
  let set id v = Hashtbl.replace env id v in
  let getvar v = try Hashtbl.find vars v with Not_found -> Fix 0L in
  let setvar v x = Hashtbl.replace vars v x in
  let fuel = ref 100_000 in
  let cur = ref (Some (Ir.entry_block action)) in
  while !cur <> None do
    let b = Option.get !cur in
    decr fuel;
    if !fuel <= 0 then raise (Untemplatable "fixed loop did not terminate during unrolling");
    List.iter (teval_inst c ~pinned ~witness ~get ~set ~getvar ~setvar) b.Ir.insts;
    match b.Ir.term with
    | Ir.Ret -> cur := None
    | Ir.Jump t -> cur := Some (Ir.find_block action t)
    | Ir.Branch (cnd, t, f) -> (
      match get cnd with
      | Fix v -> cur := Some (Ir.find_block action (if v <> 0L then t else f))
      | Fx e -> raise (Need_pin (fe_support [] e))
      | Dy _ -> raise Emitter.Dynamic_control_flow)
  done

(* --- strategy 2: dynamic control flow (mirrors Gen.run_general) -------------- *)

let run_tgeneral (c : 'v mctx) (action : Ir.action) ~pinned ~witness =
  let open Emitter in
  let em = c.mem in
  let defs = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace defs i.Ir.id i.Ir.desc) b.Ir.insts)
    action.Ir.blocks;
  let var_writes = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.desc with
          | Ir.Var_write (v, x) ->
            Hashtbl.replace var_writes v
              (x :: (try Hashtbl.find var_writes v with Not_found -> []))
          | _ -> ())
        b.Ir.insts)
    action.Ir.blocks;
  (* Context-free constant analysis over the Fix/Fx half of the domain:
     where Gen folds a concrete field value, this folds the expression. *)
  let cf_memo : (Ir.id, unit tv option) Hashtbl.t = Hashtbl.create 64 in
  let rec cf_value depth id : unit tv option =
    if depth > 64 then None
    else
      match Hashtbl.find_opt cf_memo id with
      | Some r -> r
      | None ->
        Hashtbl.replace cf_memo id None (* cycle guard *);
        let r =
          match Hashtbl.find_opt defs id with
          | Some (Ir.Const c) -> Some (Fix c)
          | Some (Ir.Struct f) ->
            Some
              (match Hashtbl.find_opt pinned f with
              | Some v -> Fix v
              | None -> Fx (Ffield f))
          | Some (Ir.Binary (op, signed, a, b)) -> (
            match (cf_value (depth + 1) a, cf_value (depth + 1) b) with
            | Some x, Some y -> Some (sx_bin op signed x y)
            | _ -> None)
          | Some (Ir.Unary (op, a)) -> Option.map (sx_un op) (cf_value (depth + 1) a)
          | Some (Ir.Normalize (bits, signed, a)) ->
            Option.map (sx_norm ~bits ~signed) (cf_value (depth + 1) a)
          | Some (Ir.Select (cnd, t, f)) -> (
            match cf_value (depth + 1) cnd with
            | Some (Fix x) -> cf_value (depth + 1) (if x <> 0L then t else f)
            | Some (Fx e) -> (
              match (cf_value (depth + 1) t, cf_value (depth + 1) f) with
              | Some vt, Some vf -> Some (Fx (Fsel (e, fx_of vt, fx_of vf)))
              | _ -> None)
            | _ -> None)
          | Some (Ir.Var_read v) -> cf_var (depth + 1) v
          | _ -> None
        in
        Hashtbl.replace cf_memo id r;
        r
  and cf_var depth v =
    match Hashtbl.find_opt var_writes v with
    | Some (w :: ws) -> (
      match cf_value depth w with
      | Some cv when List.for_all (fun w' -> cf_value depth w' = Some cv) ws -> Some cv
      | _ -> None)
    | _ -> None
  in
  let def_block = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace def_block i.Ir.id b.Ir.bid) b.Ir.insts)
    action.Ir.blocks;
  let cross = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let check id =
        match Hashtbl.find_opt def_block id with
        | Some d when d <> b.Ir.bid -> Hashtbl.replace cross id ()
        | _ -> ()
      in
      List.iter (fun i -> List.iter check (Ir.operands i.Ir.desc)) b.Ir.insts;
      match b.Ir.term with Ir.Branch (cnd, _, _) -> check cnd | _ -> ())
    action.Ir.blocks;
  let val_temps = Hashtbl.create 16 in
  let temp_of_val id =
    match Hashtbl.find_opt val_temps id with
    | Some t -> t
    | None ->
      let t = em.new_temp () in
      Hashtbl.replace val_temps id t;
      t
  in
  let var_temps = Hashtbl.create 8 in
  let temp_of_var v =
    match Hashtbl.find_opt var_temps v with
    | Some t -> t
    | None ->
      let t = em.new_temp () in
      Hashtbl.replace var_temps v t;
      t
  in
  let labels = Hashtbl.create 8 in
  List.iter (fun b -> Hashtbl.replace labels b.Ir.bid (em.create_block ())) action.Ir.blocks;
  let exit_label = em.create_block () in
  let label bid = Hashtbl.find labels bid in
  em.jump (label (Ir.entry_block action).Ir.bid);
  c.mclear ();
  List.iter
    (fun b ->
      em.set_block (label b.Ir.bid);
      c.mclear ();
      let env = Hashtbl.create 32 in
      let get id =
        match Hashtbl.find_opt env id with
        | Some v -> v
        | None ->
          if Hashtbl.mem def_block id then Dy (em.read_temp (temp_of_val id)) else Fix 0L
      in
      let set id v =
        Hashtbl.replace env id v;
        if Hashtbl.mem cross id then em.write_temp (temp_of_val id) (c.mmat v)
      in
      let getvar v =
        match cf_var 0 v with
        | Some (Fix cv) -> Fix cv
        | Some (Fx e) -> Fx e
        | Some (Dy ()) | None -> Dy (em.read_temp (temp_of_var v))
      in
      let setvar v x = em.write_temp (temp_of_var v) (c.mmat x) in
      List.iter (teval_inst c ~pinned ~witness ~get ~set ~getvar ~setvar) b.Ir.insts;
      (match b.Ir.term with
      | Ir.Ret -> em.jump exit_label
      | Ir.Jump t -> em.jump (label t)
      | Ir.Branch (cnd, t, f) -> (
        match get cnd with
        | Fix v -> em.jump (label (if v <> 0L then t else f))
        | Fx e -> raise (Need_pin (fe_support [] e))
        | Dy d -> em.branch d (label t) (label f)));
      c.mclear ())
    action.Ir.blocks;
  em.set_block exit_label;
  c.mclear ()

(* Probe with the null emitter (pins included) to pick the strategy. *)
let probe_ctx : unit mctx =
  {
    mem = Emitter.null;
    mmat = (fun _ -> ());
    msym_load = (fun ~bank:_ _ -> Dy ());
    msym_store = (fun ~bank:_ _ _ -> ());
    mclear = (fun () -> ());
  }

let has_tfixed action ~pinned ~witness =
  try
    run_tfixed probe_ctx action ~pinned ~witness;
    true
  with Emitter.Dynamic_control_flow -> false

(* --- fragments, mining, the table -------------------------------------------- *)

type frag = {
  f_name : string;
  f_pre : Hir.instr array;  (* vreg form, holes unpatched *)
  f_post : Hir.instr array;  (* allocated + dead-filtered, holes unpatched *)
  f_n_slots : int;
  f_vregs : int;
  f_labels : int;
  f_h64 : (int64, fexpr) Hashtbl.t;  (* sentinel constant -> expression *)
  f_hoff : (int, int * fexpr) Hashtbl.t;  (* sentinel rf offset -> bank, index *)
  f_n_guest : int;
  f_n_host : int;  (* pre-regalloc length: the pipeline-equivalent size *)
}

let frag_n_guest f = f.f_n_guest
let frag_n_host f = f.f_n_host

type variant = { v_pins : (string * int64) list; v_frag : frag }

type form = { mutable fo_variants : variant list; mutable fo_dead : string option }

type t = {
  t_config : mmu_on:bool -> Dag.config;
  t_bank_offset : bank:int -> index:int -> int;
  t_rf_bytes : int;
  t_forms : (string * bool * bool, form) Hashtbl.t;  (* name, ends_block, mmu *)
}

let create ~config ~rf_bytes ~insn_size =
  ignore insn_size;
  {
    t_config = config;
    t_bank_offset = (config ~mmu_on:false).Dag.bank_offset;
    t_rf_bytes = rf_bytes;
    t_forms = Hashtbl.create 64;
  }

let variant_cap = 64
let pin_cap = 16

(* Sentinel bases.  Both 64-bit bases are below 2^62, so
   [Int64.to_int] round-trips them exactly through the Inc_pc collapse;
   offset bases are far above any real register-file offset. *)
let magic64_base = 0x3E57_0000_0000_0000L
let magic64_base' = 0x3E58_0000_0000_0000L
let magic64_top = 0x3E59_0000_0000_0000L
let magicoff_base = 0x4000_0000
let magicoff_base' = 0x4800_0000

(* One symbolic pipeline run of [action]; returns the emitted stream and
   the hole tables.  Raises Need_pin / Untemplatable /
   Dag.Unsupported_lowering. *)
let mine_once t ~action ~inc_pc ~mmu_on ~pinned ~witness ~base64 ~baseoff =
  let dag = Dag.create (t.t_config ~mmu_on) in
  let em = Dag.emitter dag in
  let h64 : (int64, fexpr) Hashtbl.t = Hashtbl.create 8 in
  let h64m : (string, int64) Hashtbl.t = Hashtbl.create 8 in
  let hoff : (int, int * fexpr) Hashtbl.t = Hashtbl.create 8 in
  let hoffm : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let sym : (string, Dag.node) Hashtbl.t = Hashtbl.create 8 in
  let next64 = ref 0 and nextoff = ref 0 in
  let magic_of e =
    let k = fe_key e in
    match Hashtbl.find_opt h64m k with
    | Some m -> m
    | None ->
      let m = Int64.add base64 (Int64.of_int !next64) in
      incr next64;
      Hashtbl.replace h64m k m;
      Hashtbl.replace h64 m e;
      m
  in
  let offmagic_of ~bank e =
    let k = string_of_int bank ^ ":" ^ fe_key e in
    match Hashtbl.find_opt hoffm k with
    | Some m -> m
    | None ->
      let m = baseoff + !nextoff in
      incr nextoff;
      Hashtbl.replace hoffm k m;
      Hashtbl.replace hoff m (bank, e);
      m
  in
  let mmat = function
    | Fix c ->
      if c >= magic64_base && c < magic64_top then
        raise (Untemplatable "guest constant inside the sentinel range");
      em.Emitter.const c
    | Fx e -> em.Emitter.const (magic_of e)
    | Dy v -> v
  in
  let clear_sym () = Hashtbl.reset sym in
  let msym_load ~bank e =
    let k = string_of_int bank ^ ":" ^ fe_key e in
    match Hashtbl.find_opt sym k with
    | Some n -> Dy n
    | None ->
      let d = Dag.fresh_vreg dag in
      Dag.raw dag (Hir.Ldrf (d, offmagic_of ~bank e));
      let n = Dag.done_node dag d in
      Hashtbl.replace sym k n;
      Dy n
  in
  let msym_store ~bank e v =
    let ov = Dag.force dag (match v with Dy n -> n | other -> mmat other) in
    Dag.rf_barrier dag;
    clear_sym ();
    Dag.raw dag (Hir.Strf (offmagic_of ~bank e, ov))
  in
  let ctx = { mem = em; mmat; msym_load; msym_store; mclear = clear_sym } in
  if has_tfixed action ~pinned ~witness then run_tfixed ctx action ~pinned ~witness
  else run_tgeneral ctx action ~pinned ~witness;
  (match inc_pc with Some n -> em.Emitter.inc_pc n | None -> ());
  (Dag.finish dag, Dag.vreg_count dag, Dag.label_count dag, h64, hoff)

(* Canonicalize a mined stream for the double-mine comparison: replace
   every hole with a fixed placeholder and list the holes (position,
   kind, expression key) separately, so streams mined under different
   sentinel bases compare equal iff they are the same template. *)
let canon (stream : Hir.instr array) h64 hoff =
  let descr = ref [] in
  let arr =
    Array.mapi
      (fun k i ->
        let i =
          Hir.map_operands
            (fun o ->
              match o with
              | Hir.Imm m when Hashtbl.mem h64 m ->
                descr := (k, "i64", fe_key (Hashtbl.find h64 m)) :: !descr;
                Hir.Imm 0L
              | o -> o)
            i
        in
        match i with
        | Hir.Ldrf (d, off) when Hashtbl.mem hoff off ->
          let b, e = Hashtbl.find hoff off in
          descr := (k, Printf.sprintf "ld%d" b, fe_key e) :: !descr;
          Hir.Ldrf (d, -1)
        | Hir.Strf (off, v) when Hashtbl.mem hoff off ->
          let b, e = Hashtbl.find hoff off in
          descr := (k, Printf.sprintf "st%d" b, fe_key e) :: !descr;
          Hir.Strf (-1, v)
        | Hir.Inc_pc n when Hashtbl.mem h64 (Int64.of_int n) ->
          descr := (k, "ipc", fe_key (Hashtbl.find h64 (Int64.of_int n))) :: !descr;
          Hir.Inc_pc (-1)
        | i -> i)
      stream
  in
  (arr, List.rev !descr)

(* Mine one variant for this instance, pinning fields as structure
   demands; the instance's own field function is the witness. *)
let mine_variant t ~action ~name ~inc_pc ~mmu_on ~witness =
  let pinned : (string, int64) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.replace pinned "__el" (witness "__el");
  let rec attempt tries =
    if tries > pin_cap then raise (Untemplatable "pin budget exceeded")
    else
      match
        mine_once t ~action ~inc_pc ~mmu_on ~pinned ~witness ~base64:magic64_base
          ~baseoff:magicoff_base
      with
      | exception Need_pin fields ->
        let fresh = List.filter (fun f -> not (Hashtbl.mem pinned f)) fields in
        if fresh = [] then raise (Untemplatable "pin made no progress")
        else begin
          List.iter (fun f -> Hashtbl.replace pinned f (witness f)) fresh;
          attempt (tries + 1)
        end
      | pre, vregs, labels, h64, hoff ->
        (* Re-mine under the alternate sentinel bases: the canonical
           streams (and allocations) must agree, which rejects sentinel
           collisions and any emission or regalloc nondeterminism. *)
        let pre', _, _, h64', hoff' =
          match
            mine_once t ~action ~inc_pc ~mmu_on ~pinned ~witness ~base64:magic64_base'
              ~baseoff:magicoff_base'
          with
          | r -> r
          | exception (Need_pin _ | Untemplatable _) ->
            raise (Untemplatable "nondeterministic mining")
        in
        let ra = Regalloc.run pre in
        let ra' = Regalloc.run pre' in
        let live (r : Regalloc.result) =
          let keep = ref [] in
          Array.iteri
            (fun k i -> if not r.Regalloc.dead.(k) then keep := i :: !keep)
            r.Regalloc.instrs;
          Array.of_list (List.rev !keep)
        in
        let post = live ra and post' = live ra' in
        if
          canon pre h64 hoff <> canon pre' h64' hoff'
          || canon post h64 hoff <> canon post' h64' hoff'
          || ra.Regalloc.n_slots <> ra'.Regalloc.n_slots
        then raise (Untemplatable "sentinel collision or nondeterministic emission");
        let pins =
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) pinned [])
        in
        {
          v_pins = pins;
          v_frag =
            {
              f_name = name;
              f_pre = pre;
              f_post = post;
              f_n_slots = ra.Regalloc.n_slots;
              f_vregs = vregs;
              f_labels = labels;
              f_h64 = h64;
              f_hoff = hoff;
              f_n_guest = 1;
              f_n_host = Array.length pre;
            };
        }
  in
  attempt 0

type lookup = Hit of frag | Mined of frag | Miss of string

let fragment t ~action ~name ~inc_pc ~mmu_on ~field =
  let key = (name, inc_pc = None, mmu_on) in
  let form =
    match Hashtbl.find_opt t.t_forms key with
    | Some f -> f
    | None ->
      let f = { fo_variants = []; fo_dead = None } in
      Hashtbl.replace t.t_forms key f;
      f
  in
  match form.fo_dead with
  | Some r -> Miss r
  | None -> (
    let matches v = List.for_all (fun (f, c) -> field f = c) v.v_pins in
    match List.find_opt matches form.fo_variants with
    | Some v -> Hit v.v_frag
    | None ->
      if List.length form.fo_variants >= variant_cap then Miss "variant budget exceeded"
      else begin
        match mine_variant t ~action ~name ~inc_pc ~mmu_on ~witness:field with
        | v ->
          form.fo_variants <- form.fo_variants @ [ v ];
          Mined v.v_frag
        | exception Untemplatable r ->
          form.fo_dead <- Some r;
          Miss r
        | exception Dag.Unsupported_lowering what ->
          let r = "unsupported lowering: " ^ what in
          form.fo_dead <- Some r;
          Miss r
        | exception Emitter.Dynamic_control_flow ->
          let r = "dynamic control flow escaped the probe" in
          form.fo_dead <- Some r;
          Miss r
      end)

(* --- install-time patching and stitching -------------------------------------- *)

let patch_frag t frag ~field =
  let val64 m = Option.map (fe_eval ~field) (Hashtbl.find_opt frag.f_h64 m) in
  let off m =
    match Hashtbl.find_opt frag.f_hoff m with
    | None -> None
    | Some (bank, e) ->
      let ix = Int64.to_int (fe_eval ~field e) in
      let o = t.t_bank_offset ~bank ~index:ix in
      if o < 0 || o > t.t_rf_bytes - 8 then raise Patch_failure;
      Some o
  in
  let sub i =
    let i =
      Hir.map_operands
        (fun o ->
          match o with
          | Hir.Imm m -> ( match val64 m with Some v -> Hir.Imm v | None -> o)
          | o -> o)
        i
    in
    match i with
    | Hir.Ldrf (d, m) -> ( match off m with Some o -> Hir.Ldrf (d, o) | None -> i)
    | Hir.Strf (m, v) -> ( match off m with Some o -> Hir.Strf (o, v) | None -> i)
    | Hir.Inc_pc n -> (
      match val64 (Int64.of_int n) with
      | Some v -> Hir.Inc_pc (Int64.to_int v)
      | None -> i)
    | i -> i
  in
  (Array.map sub frag.f_pre, Array.map sub frag.f_post)

let assemble t items =
  match
    let pre_acc = ref [] and post_acc = ref [] in
    let vbase = ref 0 and lbase = ref 0 and slots = ref 0 in
    List.iter
      (fun (frag, field) ->
        let pre, post = patch_frag t frag ~field in
        let vb = !vbase and lb = !lbase in
        let relv i =
          Hir.map_operands (function Hir.Vreg v -> Hir.Vreg (v + vb) | o -> o) i
        in
        let rell i = Hir.map_labels (fun l -> l + lb) i in
        Array.iter (fun i -> pre_acc := rell (relv i) :: !pre_acc) pre;
        Array.iter (fun i -> post_acc := rell i :: !post_acc) post;
        vbase := vb + frag.f_vregs;
        lbase := lb + frag.f_labels;
        if frag.f_n_slots > !slots then slots := frag.f_n_slots)
      items;
    pre_acc := Hir.Exit 0 :: !pre_acc;
    post_acc := Hir.Exit 0 :: !post_acc;
    let post = Array.of_list (List.rev !post_acc) in
    let ra =
      {
        Regalloc.instrs = post;
        dead = Array.make (Array.length post) false;
        n_slots = !slots;
        n_spilled = 0;
        n_dead = 0;
      }
    in
    (Array.of_list (List.rev !pre_acc), ra)
  with
  | r -> Some r
  | exception Patch_failure -> None
  | exception Division_by_zero -> None

(* --- table reporting ----------------------------------------------------------- *)

type form_report = {
  fr_name : string;
  fr_mmu : bool;
  fr_variants : int;
  fr_pins : int;
  fr_host_instrs : int;
  fr_holes : int;
  fr_dead : string option;
}

let report t =
  Hashtbl.fold
    (fun (name, _ends_block, mmu) fo acc ->
      let max_over f = List.fold_left (fun m v -> max m (f v)) 0 fo.fo_variants in
      {
        fr_name = name;
        fr_mmu = mmu;
        fr_variants = List.length fo.fo_variants;
        fr_pins = max_over (fun v -> List.length v.v_pins);
        fr_host_instrs = max_over (fun v -> Array.length v.v_frag.f_post);
        fr_holes =
          max_over (fun v ->
              Hashtbl.length v.v_frag.f_h64 + Hashtbl.length v.v_frag.f_hoff);
        fr_dead = fo.fo_dead;
      }
      :: acc)
    t.t_forms []
  |> List.sort compare

let variant_count t =
  Hashtbl.fold (fun _ fo acc -> acc + List.length fo.fo_variants) t.t_forms 0

let dead_count t =
  Hashtbl.fold (fun _ fo acc -> acc + (if fo.fo_dead = None then 0 else 1)) t.t_forms 0
