(* Register allocation (paper Sec. 2.3.3): a forward pass discovers live
   ranges, ranges crossing loop back-edges are extended, then a fast
   linear scan maps virtual registers onto the physical pool, spilling the
   furthest-ending interval under pressure.  Dead instructions (pure, with
   an unused destination) are marked so the encoder skips them, as the
   paper describes. *)

open Hir

(* Physical register pool: the simulated host has 16 GPRs; r15 is the
   dedicated guest-PC register, rbp-equivalent is the register-file base,
   r12..r14 are reserved as spill scratch.  That leaves 11 allocatable. *)
let num_allocatable = 11

type result = {
  instrs : instr array; (* operands are Preg/Imm/Slot only *)
  dead : bool array; (* marked dead: encoder skips *)
  n_slots : int;
  n_spilled : int;
  n_dead : int;
}

type interval = {
  vreg : int;
  mutable istart : int;
  mutable iend : int;
  mutable uses : int;
}

let analyze (instrs : instr array) =
  let tbl : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch idx kind op =
    match op with
    | Vreg v ->
      let it =
        match Hashtbl.find_opt tbl v with
        | Some it -> it
        | None ->
          let it = { vreg = v; istart = idx; iend = idx; uses = 0 } in
          Hashtbl.replace tbl v it;
          it
      in
      it.istart <- min it.istart idx;
      it.iend <- max it.iend idx;
      if kind = `Use then it.uses <- it.uses + 1
    | Preg _ | Imm _ | Slot _ -> ()
  in
  Array.iteri
    (fun idx i ->
      List.iter (touch idx `Use) (sources i);
      match dest i with Some d -> touch idx `Def d | None -> ())
    instrs;
  (* Extend ranges across backward branches.  Only virtual registers
     actually live at the branch target need to survive the whole loop —
     a value defined and consumed within one iteration keeps its short
     range, so loop bodies (tier-1 regions especially) don't spill
     everything that merely sits inside the loop span.  Liveness is a
     standard backward fixpoint over label-delimited chunks. *)
  let n = Array.length instrs in
  let label_idx = Hashtbl.create 8 in
  Array.iteri (fun idx i -> match i with Label l -> Hashtbl.replace label_idx l idx | _ -> ()) instrs;
  let backedges = ref [] in
  Array.iteri
    (fun idx i ->
      let check l =
        match Hashtbl.find_opt label_idx l with
        | Some target when target < idx -> backedges := (target, idx) :: !backedges
        | _ -> ()
      in
      match i with Jmp l -> check l | Br (_, a, b) -> check a; check b | _ -> ())
    instrs;
  if !backedges <> [] then begin
    let module Iset = Set.Make (Int) in
    let is_terminator = function Jmp _ | Br _ | Exit _ -> true | _ -> false in
    let start_set = ref (Iset.singleton 0) in
    Array.iteri
      (fun i ins ->
        (match ins with Label _ -> start_set := Iset.add i !start_set | _ -> ());
        if is_terminator ins && i + 1 < n then start_set := Iset.add (i + 1) !start_set)
      instrs;
    let starts = Array.of_list (Iset.elements !start_set) in
    let nb = Array.length starts in
    let block_of_idx i =
      let lo = ref 0 and hi = ref (nb - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if starts.(mid) <= i then lo := mid else hi := mid - 1
      done;
      !lo
    in
    let block_end b = if b + 1 < nb then starts.(b + 1) else n in
    let succs b =
      let e = block_end b in
      match instrs.(e - 1) with
      | Jmp l -> [ block_of_idx (Hashtbl.find label_idx l) ]
      | Br (_, t, f) ->
        [ block_of_idx (Hashtbl.find label_idx t); block_of_idx (Hashtbl.find label_idx f) ]
      | Exit _ -> []
      | _ -> if b + 1 < nb then [ b + 1 ] else []
    in
    let vregs_of ops =
      List.filter_map (function Vreg v -> Some v | _ -> None) ops
    in
    let transfer b out =
      let live = ref out in
      for i = block_end b - 1 downto starts.(b) do
        (match dest instrs.(i) with
        | Some (Vreg v) -> live := Iset.remove v !live
        | _ -> ());
        List.iter (fun v -> live := Iset.add v !live) (vregs_of (sources instrs.(i)))
      done;
      !live
    in
    let live_in = Array.make nb Iset.empty in
    let changed = ref true in
    while !changed do
      changed := false;
      for b = nb - 1 downto 0 do
        let out =
          List.fold_left (fun acc s -> Iset.union acc live_in.(s)) Iset.empty (succs b)
        in
        let inew = transfer b out in
        if not (Iset.equal inew live_in.(b)) then begin
          live_in.(b) <- inew;
          changed := true
        end
      done
    done;
    List.iter
      (fun (target, branch) ->
        Iset.iter
          (fun v ->
            match Hashtbl.find_opt tbl v with
            | Some it ->
              it.istart <- min it.istart target;
              it.iend <- max it.iend branch
            | None -> ())
          live_in.(block_of_idx target))
      !backedges
  end;
  tbl

let run (instrs : instr array) : result =
  let intervals = analyze instrs in
  (* Dead marking: pure instructions whose destination vreg is never used. *)
  let dead = Array.make (Array.length instrs) false in
  let n_dead = ref 0 in
  Array.iteri
    (fun idx i ->
      if pure i then
        match dest i with
        | Some (Vreg v) -> (
          match Hashtbl.find_opt intervals v with
          | Some it when it.uses = 0 ->
            dead.(idx) <- true;
            incr n_dead
          | _ -> ())
        | _ -> ())
    instrs;
  (* Linear scan over intervals sorted by start. *)
  let sorted =
    Hashtbl.fold (fun _ it acc -> it :: acc) intervals []
    |> List.sort (fun a b -> compare a.istart b.istart)
  in
  let assignment : (int, operand) Hashtbl.t = Hashtbl.create 64 in
  let free = ref (List.init num_allocatable (fun i -> i)) in
  let active : interval list ref = ref [] in
  let n_slots = ref 0 and n_spilled = ref 0 in
  let expire current =
    let expired, live = List.partition (fun it -> it.iend < current) !active in
    active := live;
    List.iter
      (fun it ->
        match Hashtbl.find_opt assignment it.vreg with
        | Some (Preg r) -> free := r :: !free
        | _ -> ())
      expired
  in
  List.iter
    (fun it ->
      expire it.istart;
      match !free with
      | r :: rest ->
        free := rest;
        Hashtbl.replace assignment it.vreg (Preg r);
        active := it :: !active
      | [] ->
        (* Spill the interval ending furthest in the future. *)
        let victim =
          List.fold_left (fun acc c -> if c.iend > acc.iend then c else acc) it !active
        in
        incr n_spilled;
        if victim != it then begin
          (* Steal the victim's register. *)
          (match Hashtbl.find_opt assignment victim.vreg with
          | Some (Preg r) ->
            Hashtbl.replace assignment it.vreg (Preg r);
            active := it :: List.filter (fun c -> c != victim) !active
          | _ -> assert false);
          let slot = !n_slots in
          incr n_slots;
          Hashtbl.replace assignment victim.vreg (Slot slot)
        end
        else begin
          let slot = !n_slots in
          incr n_slots;
          Hashtbl.replace assignment it.vreg (Slot slot)
        end)
    sorted;
  let rewrite op =
    match op with
    | Vreg v -> (
      match Hashtbl.find_opt assignment v with
      | Some o -> o
      | None -> Preg 0 (* defined but never used; instruction is dead *))
    | o -> o
  in
  let out = Array.map (map_operands rewrite) instrs in
  { instrs = out; dead; n_slots = !n_slots; n_spilled = !n_spilled; n_dead = !n_dead }
