(** Instruction encoding (paper Sec. 2.3.4): allocated low-level IR is
    lowered to the byte-level machine code of the simulated host, dead
    instructions are skipped, and a final pass patches jump targets —
    which are only known once every instruction has been emitted and
    therefore sized.

    The executor's instruction fetch is {!decode_program}, which parses
    the bytes back once per translation (the analogue of the host CPU's
    decoded-uop cache). *)

exception Encode_error of { index : int; offset : int; msg : string }
(** [index] is the instruction index at fault (the stream index when
    encoding, the decoded instruction count when decoding; [-1] when no
    single instruction is at fault, e.g. a dangling jump target) and
    [offset] the byte offset into the encoded stream.  A printer is
    registered. *)

val encode : Regalloc.result -> bytes
(** Encode an allocated stream (dead instructions skipped) and patch
    jumps; returns the machine-code bytes. *)

val encode_stream : Hir.instr array -> bytes
(** Encode a label-form stream as-is, with no dead mask.  This is the
    same pure lowering {!encode} applies after dead-skipping; Reloc's
    determinism audit uses it to re-encode a decoded program and check
    byte identity. *)

type program = {
  code : Hir.instr array;  (** jump targets rewritten to indices *)
  offsets : int array;  (** byte offset of each instruction in the stream *)
  byte_size : int;
  n_slots : int;
  wb_map : (Hir.operand * int) array;
      (** the translation's precise-state writeback map ([Hir.Wbmap]),
          hoisted out of the stream at decode time; [[||]] when the
          translation has no promoted registers *)
}

val decode_program : ?n_slots:int -> bytes -> program
