(** Instruction encoding (paper Sec. 2.3.4): allocated low-level IR is
    lowered to the byte-level machine code of the simulated host, dead
    instructions are skipped, and a final pass patches jump targets —
    which are only known once every instruction has been emitted and
    therefore sized.

    The executor's instruction fetch is {!decode_program}, which parses
    the bytes back once per translation (the analogue of the host CPU's
    decoded-uop cache). *)

exception Encode_error of string

(** Encode an allocated stream (dead instructions skipped) and patch
    jumps; returns the machine-code bytes. *)
val encode : Regalloc.result -> bytes

type program = {
  code : Hir.instr array;  (** jump targets rewritten to indices *)
  byte_size : int;
  n_slots : int;
  wb_map : (Hir.operand * int) array;
      (** the translation's precise-state writeback map ([Hir.Wbmap]),
          hoisted out of the stream at decode time; [[||]] when the
          translation has no promoted registers *)
}

val decode_program : ?n_slots:int -> bytes -> program
