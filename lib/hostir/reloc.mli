(** Relocation-cleanliness analysis: the static proof that an encoded
    translation can be persisted and reused across boots and instances.

    Over the encoded program (byte stream + decoded instruction array)
    the analyzer classifies every operand and control transfer as
    relocatable or pinned: inter-translation transfers must go through
    numbered chain/exit sites, no absolute host addresses may be baked
    into immediates, helper references must be stable symbol ids
    ({!Effects.symbol_name}), and [Wbmap]/slot/frame references must be
    translation-relative.  A companion determinism audit checks that
    encoding is a pure function of its input (decode → re-encode byte
    identity, and re-encoding the same {!Regalloc.result} reproduces the
    stream), since a content-keyed persistent cache is unsound
    otherwise.  Clean programs receive a {!certificate} consumed by the
    AOT cache ([lib/core/aotcache.ml]). *)

type finding_class =
  | Abs_host_addr  (** absolute host address in a memory-address immediate *)
  | Unnumbered_exit  (** control leaves without a numbered chain/exit site *)
  | Env_immediate  (** environment-relative reference out of bounds *)
  | Nondet_encoding  (** encoding is not a pure function of the program *)
  | Helper_by_addr  (** helper reference outside the stable symbol table *)

val class_name : finding_class -> string
(** The stable names: ["abs-host-addr"], ["unnumbered-exit"],
    ["env-immediate"], ["nondet-encoding"], ["helper-by-addr"]. *)

type finding = {
  f_class : finding_class;
  f_index : int;  (** instruction index; [-1] when not instruction-specific *)
  f_offset : int;  (** byte offset into the encoded stream *)
  f_msg : string;
}

val finding_to_string : finding -> string

(** What the installer environment provides; everything a clean
    translation may reference relative to. *)
type env = {
  n_exits : int;  (** highest numbered chain/exit slot the installer binds *)
  n_helpers : int;  (** helper symbol table size *)
  n_slots : int;  (** frame slots allocated for this translation *)
  rf_bytes : int;  (** guest register file size in bytes *)
}

val host_window_lo : int64
val host_window_hi : int64
(** The reserved simulated-host VA window; a memory-access address
    immediate inside it is a leaked host pointer ([abs-host-addr]).
    Data immediates are exempt — INT64_MAX and large double bit
    patterns overlap the window numerically but pin nothing. *)

val in_host_window : int64 -> bool

type site_kind = S_exit | S_poll

(** Relocation table entry: a numbered site the installer re-binds when
    the translation is loaded into a different boot's cache. *)
type site = { s_kind : site_kind; s_index : int; s_offset : int; s_slot : int }

type certificate = {
  c_hash : int64;  (** FNV-1a over the encoded bytes: the content key *)
  c_byte_size : int;
  c_n_slots : int;
  c_n_exits : int;
  c_sites : site array;  (** the relocation table *)
  c_helpers : int list;  (** stable helper symbol ids referenced *)
}

val hash64 : bytes -> int64
(** FNV-1a 64-bit content hash. *)

val analyze : env -> Encode.program -> finding list * site array * int list
(** Classify every operand and control transfer; returns the findings,
    the relocation sites, and the referenced helper ids (sorted). *)

val reencode : Encode.program -> bytes
(** Re-encode a decoded (index-form) program by synthesizing labels at
    branch-target indices; byte-identical to the original stream iff the
    stream is the encoder's canonical output. *)

val audit_roundtrip : Encode.program -> bytes -> finding option
(** Decode → re-encode byte-identity audit against the original bytes. *)

val audit_determinism : Regalloc.result -> bytes -> finding option
(** Re-encode the allocated stream and check byte identity — encoding
    must be a pure function with no hidden per-run state. *)

val certify :
  env:env -> ?ra:Regalloc.result -> bytes -> (certificate, finding list) result
(** Full certification: decode, {!analyze}, {!audit_roundtrip}, and
    (when the allocated stream is at hand) {!audit_determinism}.  [Ok]
    carries the certificate the AOT cache persists; [Error] the findings
    that make the translation unsafe to persist. *)
