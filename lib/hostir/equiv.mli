(** Translation validation: symbolic equivalence of an optimized HostIR
    program against a reference emission rebuilt from the same decode.

    Both programs are executed by {!Symexec} from a common initial state;
    exit states are matched by path condition and compared on exit slot,
    PC, register-file image (promoted registers equated through the Wbmap
    writeback), host pregs, and the ordered store/call trace.  Every
    divergence is a named {!finding} carrying both term trees. *)

(** One decoded guest instruction, as the engine translated it. *)
type item = {
  it_action : Ssa.Ir.action;
  it_field : string -> int64;
  it_inc_pc : int option;
}

(** What the engine knew about one region member at translation time. *)
type member_ref = {
  mb_va : int64;
  mb_items : item list;
  mb_undef : bool;  (** decode failed/empty: member body is a bare Exit 0 *)
  mb_targets : int64 list;  (** dispatch targets, in the engine's heat order *)
}

type finding = { f_name : string; f_detail : string }

type outcome = {
  ok : bool;
  complete : bool;  (** both runs explored every path within the limits *)
  findings : finding list;
  o_paths : int;
  o_steps : int;
}

(** Reference emission for a tier-0 block: per-instruction unoptimized
    segments concatenated (vregs/labels relocated) plus the trailing
    [Exit 0] the engine appends. *)
val block_reference : config:Dag.config -> item list -> Hir.instr array

(** Reference emission for a tier-1 region: member bodies behind entry
    labels with the engine's Poll prologue and PC-compare dispatch
    skeleton re-created verbatim — but with none of the region passes or
    promotion applied. *)
val region_reference : config:Dag.config -> member_ref list -> Hir.instr array

(** Compare two label-form programs from a common initial state. *)
val check :
  ?limits:Symexec.limits ->
  ?classify:(int -> Symexec.helper_kind) ->
  ?assume_as_hit:bool ->
  init_pc:Symexec.term ->
  opt:Hir.instr array ->
  reference:Hir.instr array ->
  unit ->
  outcome

(** [check] against {!block_reference} of [items]. *)
val check_block :
  ?limits:Symexec.limits ->
  ?classify:(int -> Symexec.helper_kind) ->
  ?assume_as_hit:bool ->
  config:Dag.config ->
  init_pc:Symexec.term ->
  opt:Hir.instr array ->
  item list ->
  outcome

(** [check] against {!region_reference} of [members]. *)
val check_region :
  ?limits:Symexec.limits ->
  ?classify:(int -> Symexec.helper_kind) ->
  ?assume_as_hit:bool ->
  config:Dag.config ->
  init_pc:Symexec.term ->
  opt:Hir.instr array ->
  member_ref list ->
  outcome
