(* Post-register-allocation invariant checks on the low-level host IR.

   The encoder assumes - without checking - that register allocation
   left no virtual registers behind, that spill slots fit in the
   translation frame, and that dead-marking is sound.  This module makes
   those assumptions machine-checked: the engine can run it on every
   translation in a debug configuration, and `captive_run lint` sweeps
   it across whole guest models. *)

open Hir

type violation = {
  v_index : int option; (* instruction index in the stream, if any *)
  v_msg : string;
}

exception Invalid of string * violation list

let string_of_violation v =
  match v.v_index with
  | Some i -> Printf.sprintf "[%d]: %s" i v.v_msg
  | None -> v.v_msg

let report ~what violations =
  Printf.sprintf "HostIR verification failed for %s:\n%s" what
    (String.concat "\n" (List.map (fun v -> "  " ^ string_of_violation v) violations))

(* Self-locating CI logs (like Mem.Bus_error): an escaped [Invalid]
   prints the full report — the [what] string carries guest PA, region
   id, and pass name as formatted by the raising site. *)
let () =
  Printexc.register_printer (function
    | Invalid (what, violations) -> Some (report ~what violations)
    | _ -> None)

(* The simulated host has 16 GPRs; allocation hands out
   [0, Regalloc.num_allocatable); the registers above that are reserved
   (spill scratch, address-space tag, register-file base, guest PC) and
   may appear only from explicit backend emission. *)
let num_host_regs = 16

(* [original], when given, is the pre-allocation stream the result was
   produced from; it enables the dead-marking soundness check (a dead
   instruction's destination vreg must not be a source of any live
   instruction). *)
let check ?original (r : Regalloc.result) : violation list =
  let violations = ref [] in
  let add ?index fmt =
    Printf.ksprintf (fun msg -> violations := { v_index = index; v_msg = msg } :: !violations) fmt
  in
  if Array.length r.Regalloc.dead <> Array.length r.Regalloc.instrs then
    add "dead map has %d entries for %d instructions"
      (Array.length r.Regalloc.dead) (Array.length r.Regalloc.instrs);
  (* Labels present in the stream, for branch-target resolution. *)
  let labels = Hashtbl.create 16 in
  Array.iter
    (fun i -> match i with Label l -> Hashtbl.replace labels l () | _ -> ())
    r.Regalloc.instrs;
  let pregs_used = Hashtbl.create 16 in
  Array.iteri
    (fun idx i ->
      let check_operand o =
        match o with
        | Vreg v -> add ~index:idx "virtual register %%v%d survived allocation" v
        | Slot s ->
          if s < 0 || s >= r.Regalloc.n_slots then
            add ~index:idx "spill slot %d outside frame of %d slots" s r.Regalloc.n_slots
        | Preg p ->
          if p < 0 || p >= num_host_regs then
            add ~index:idx "physical register %%r%d outside the host register file" p
          else if p < Regalloc.num_allocatable then Hashtbl.replace pregs_used p ()
        | Imm _ -> ()
      in
      ignore (map_operands (fun o -> check_operand o; o) i);
      let check_target l =
        if not (Hashtbl.mem labels l) then add ~index:idx "branch to missing label L%d" l
      in
      match i with
      | Jmp l -> check_target l
      | Br (_, t, f) ->
        check_target t;
        check_target f
      | _ -> ())
    r.Regalloc.instrs;
  if Hashtbl.length pregs_used > Regalloc.num_allocatable then
    add "%d distinct allocatable registers in use, pool has %d"
      (Hashtbl.length pregs_used) Regalloc.num_allocatable;
  (match original with
  | None -> ()
  | Some (orig : instr array) ->
    if Array.length orig <> Array.length r.Regalloc.instrs then
      add "original stream has %d instructions, result has %d"
        (Array.length orig) (Array.length r.Regalloc.instrs)
    else begin
      (* Dead-marking soundness: collect every vreg sourced by a live
         instruction; a dead instruction defining one of them would lose
         a value the program still needs. *)
      let live_sources = Hashtbl.create 64 in
      Array.iteri
        (fun idx i ->
          if not r.Regalloc.dead.(idx) then
            List.iter
              (fun o -> match o with Vreg v -> Hashtbl.replace live_sources v () | _ -> ())
              (sources i))
        orig;
      Array.iteri
        (fun idx i ->
          if r.Regalloc.dead.(idx) then begin
            if not (pure i) then add ~index:idx "impure instruction marked dead";
            match dest i with
            | Some (Vreg v) when Hashtbl.mem live_sources v ->
              add ~index:idx "dead instruction's destination %%v%d is used by a live instruction" v
            | _ -> ()
          end)
        orig
    end);
  List.rev !violations

let check_exn ?(what = "translation") ?original (r : Regalloc.result) =
  match check ?original r with
  | [] -> ()
  | violations -> raise (Invalid (what, violations))

(* ------------------------------------------------------------------ *)
(* Precise-state writeback-map checking (pre-allocation stream).

   A promoted region caches register-file offsets in vregs; the machine
   observes the register file at helper calls, faults ([Mem_ld]/
   [Mem_st]), [Poll] exits and [Exit]s.  Helper calls must be preceded
   by explicit flushes; the other points are covered by the stream's
   [Wbmap], which the executor applies before the state escapes.

   The forward may-analysis over the region CFG (dirty / stale facts
   per promoted vreg) lives in the shared dataflow framework
   ([Absint.check_wb]); this is the thin violation-shaped front door.
   [classify] makes helpers that cannot observe the register file
   (pure softfloat) transparent to the discipline; by default every
   helper is a barrier, which is what the promoter emits unless told
   otherwise. *)

let check_wb ?classify ~(promoted : (int * int) list) (instrs : instr array) :
    violation list =
  List.map
    (fun f -> { v_index = f.Absint.f_index; v_msg = f.Absint.f_msg })
    (Absint.check_wb ?classify ~promoted instrs)

let check_wb_exn ?(what = "region") ?classify ~promoted instrs =
  match check_wb ?classify ~promoted instrs with
  | [] -> ()
  | violations -> raise (Invalid (what, violations))
