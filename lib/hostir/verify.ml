(* Post-register-allocation invariant checks on the low-level host IR.

   The encoder assumes - without checking - that register allocation
   left no virtual registers behind, that spill slots fit in the
   translation frame, and that dead-marking is sound.  This module makes
   those assumptions machine-checked: the engine can run it on every
   translation in a debug configuration, and `captive_run lint` sweeps
   it across whole guest models. *)

open Hir

type violation = {
  v_index : int option; (* instruction index in the stream, if any *)
  v_msg : string;
}

exception Invalid of string * violation list

let string_of_violation v =
  match v.v_index with
  | Some i -> Printf.sprintf "[%d]: %s" i v.v_msg
  | None -> v.v_msg

let report ~what violations =
  Printf.sprintf "HostIR verification failed for %s:\n%s" what
    (String.concat "\n" (List.map (fun v -> "  " ^ string_of_violation v) violations))

(* Self-locating CI logs (like Mem.Bus_error): an escaped [Invalid]
   prints the full report — the [what] string carries guest PA, region
   id, and pass name as formatted by the raising site. *)
let () =
  Printexc.register_printer (function
    | Invalid (what, violations) -> Some (report ~what violations)
    | _ -> None)

(* The simulated host has 16 GPRs; allocation hands out
   [0, Regalloc.num_allocatable); the registers above that are reserved
   (spill scratch, address-space tag, register-file base, guest PC) and
   may appear only from explicit backend emission. *)
let num_host_regs = 16

(* [original], when given, is the pre-allocation stream the result was
   produced from; it enables the dead-marking soundness check (a dead
   instruction's destination vreg must not be a source of any live
   instruction). *)
let check ?original (r : Regalloc.result) : violation list =
  let violations = ref [] in
  let add ?index fmt =
    Printf.ksprintf (fun msg -> violations := { v_index = index; v_msg = msg } :: !violations) fmt
  in
  if Array.length r.Regalloc.dead <> Array.length r.Regalloc.instrs then
    add "dead map has %d entries for %d instructions"
      (Array.length r.Regalloc.dead) (Array.length r.Regalloc.instrs);
  (* Labels present in the stream, for branch-target resolution. *)
  let labels = Hashtbl.create 16 in
  Array.iter
    (fun i -> match i with Label l -> Hashtbl.replace labels l () | _ -> ())
    r.Regalloc.instrs;
  let pregs_used = Hashtbl.create 16 in
  Array.iteri
    (fun idx i ->
      let check_operand o =
        match o with
        | Vreg v -> add ~index:idx "virtual register %%v%d survived allocation" v
        | Slot s ->
          if s < 0 || s >= r.Regalloc.n_slots then
            add ~index:idx "spill slot %d outside frame of %d slots" s r.Regalloc.n_slots
        | Preg p ->
          if p < 0 || p >= num_host_regs then
            add ~index:idx "physical register %%r%d outside the host register file" p
          else if p < Regalloc.num_allocatable then Hashtbl.replace pregs_used p ()
        | Imm _ -> ()
      in
      ignore (map_operands (fun o -> check_operand o; o) i);
      let check_target l =
        if not (Hashtbl.mem labels l) then add ~index:idx "branch to missing label L%d" l
      in
      match i with
      | Jmp l -> check_target l
      | Br (_, t, f) ->
        check_target t;
        check_target f
      | _ -> ())
    r.Regalloc.instrs;
  if Hashtbl.length pregs_used > Regalloc.num_allocatable then
    add "%d distinct allocatable registers in use, pool has %d"
      (Hashtbl.length pregs_used) Regalloc.num_allocatable;
  (match original with
  | None -> ()
  | Some (orig : instr array) ->
    if Array.length orig <> Array.length r.Regalloc.instrs then
      add "original stream has %d instructions, result has %d"
        (Array.length orig) (Array.length r.Regalloc.instrs)
    else begin
      (* Dead-marking soundness: collect every vreg sourced by a live
         instruction; a dead instruction defining one of them would lose
         a value the program still needs. *)
      let live_sources = Hashtbl.create 64 in
      Array.iteri
        (fun idx i ->
          if not r.Regalloc.dead.(idx) then
            List.iter
              (fun o -> match o with Vreg v -> Hashtbl.replace live_sources v () | _ -> ())
              (sources i))
        orig;
      Array.iteri
        (fun idx i ->
          if r.Regalloc.dead.(idx) then begin
            if not (pure i) then add ~index:idx "impure instruction marked dead";
            match dest i with
            | Some (Vreg v) when Hashtbl.mem live_sources v ->
              add ~index:idx "dead instruction's destination %%v%d is used by a live instruction" v
            | _ -> ()
          end)
        orig
    end);
  List.rev !violations

let check_exn ?(what = "translation") ?original (r : Regalloc.result) =
  match check ?original r with
  | [] -> ()
  | violations -> raise (Invalid (what, violations))

(* ------------------------------------------------------------------ *)
(* Precise-state writeback-map checking (pre-allocation stream).

   A promoted region caches register-file offsets in vregs; the machine
   observes the register file at helper calls, faults ([Mem_ld]/
   [Mem_st]), [Poll] exits and [Exit]s.  Helper calls must be preceded
   by explicit flushes; the other points are covered by the stream's
   [Wbmap], which the executor applies before the state escapes.  This
   checker runs a forward may-analysis over the region CFG tracking two
   facts per promoted vreg:

   - dirty: the vreg holds a newer value than its register-file slot
     (set by any definition, cleared by a write-back or a reload);
   - stale: the slot may hold a newer value than the vreg (set by a
     helper call, cleared by a reload or a redefinition).

   and rejects streams where a fault point, safepoint or exit is
   reachable with a dirty vreg missing its writeback entry, a helper
   call is reachable with any dirty vreg, a stale vreg is used or
   written back, or the [Wbmap] itself names a non-promoted vreg or the
   wrong offset. *)

module Is = Set.Make (Int)

let check_wb ~(promoted : (int * int) list) (instrs : instr array) :
    violation list =
  let violations = ref [] in
  let add ?index fmt =
    Printf.ksprintf (fun msg -> violations := { v_index = index; v_msg = msg } :: !violations) fmt
  in
  let off_of_pv = Hashtbl.create 8 and pv_of_off = Hashtbl.create 8 in
  List.iter
    (fun (pv, off) ->
      Hashtbl.replace off_of_pv pv off;
      Hashtbl.replace pv_of_off off pv)
    promoted;
  let all_pvs = List.fold_left (fun s (pv, _) -> Is.add pv s) Is.empty promoted in
  (* The stream's writeback map, checked for well-formedness. *)
  let wb_covered = Hashtbl.create 8 in
  let n_maps = ref 0 in
  Array.iteri
    (fun idx ins ->
      match ins with
      | Wbmap m ->
        incr n_maps;
        if !n_maps > 1 then add ~index:idx "multiple writeback maps in one stream";
        Array.iter
          (fun (op, off) ->
            match op with
            | Vreg pv when Hashtbl.find_opt off_of_pv pv = Some off ->
              Hashtbl.replace wb_covered pv ()
            | Vreg pv ->
              add ~index:idx
                "stale writeback entry: %%v%d -> 0x%x does not match a promoted register"
                pv off
            | _ ->
              add ~index:idx "writeback entry for non-virtual operand %s"
                (string_of_operand op))
          m
      | _ -> ())
    instrs;
  let covered pv = Hashtbl.mem wb_covered pv in
  if promoted = [] then List.rev !violations
  else begin
    let cfg = Region.build_cfg instrs in
    let nb = cfg.Region.c_nb in
    let in_dirty = Array.make nb Is.empty and in_stale = Array.make nb Is.empty in
    (* Transfer over one block; [report] enables violation emission on
       the final sweep (the fixpoint iterations stay silent). *)
    let flow ~report b (dirty0, stale0) =
      let dirty = ref dirty0 and stale = ref stale0 in
      let add ?index fmt =
        if report then add ?index fmt
        else Printf.ksprintf (fun _ -> ()) fmt
      in
      let check_escape idx what =
        Is.iter
          (fun pv ->
            if not (covered pv) then
              add ~index:idx
                "%s reachable while %%v%d (rf 0x%x) is dirty with no writeback entry"
                what pv (Hashtbl.find off_of_pv pv))
          !dirty;
        Is.iter
          (fun pv ->
            if covered pv then
              add ~index:idx
                "%s reachable while %%v%d (rf 0x%x) is stale: its writeback entry would clobber newer state"
                what pv (Hashtbl.find off_of_pv pv))
          !stale
      in
      for idx = cfg.Region.c_starts.(b) to cfg.Region.c_block_end b - 1 do
        let ins = instrs.(idx) in
        (* A use of a stale vreg reads a value the register file has
           since overtaken. *)
        List.iter
          (fun o ->
            match o with
            | Vreg v when Is.mem v !stale ->
              add ~index:idx "use of stale promoted register %%v%d" v
            | _ -> ())
          (match ins with Wbmap _ -> [] | _ -> sources ins);
        (match ins with
         | Ldrf (d, off) when Hashtbl.mem pv_of_off off ->
           let pv = Hashtbl.find pv_of_off off in
           (match d with
            | Vreg v when v = pv ->
              dirty := Is.remove pv !dirty;
              stale := Is.remove pv !stale
            | _ ->
              if Is.mem pv !dirty then
                add ~index:idx
                  "read of promoted rf offset 0x%x bypasses dirty cache register %%v%d"
                  off pv)
         | Strf (off, s) when Hashtbl.mem pv_of_off off ->
           let pv = Hashtbl.find pv_of_off off in
           (match s with
            | Vreg v when v = pv -> dirty := Is.remove pv !dirty
            | _ ->
              add ~index:idx
                "write to promoted rf offset 0x%x bypasses cache register %%v%d"
                off pv)
         | Call _ ->
           Is.iter
             (fun pv ->
               add ~index:idx
                 "helper call reachable while %%v%d (rf 0x%x) is dirty"
                 pv (Hashtbl.find off_of_pv pv))
             !dirty;
           (* Helpers may rewrite the register file: every cached value
              is stale until reloaded. *)
           dirty := Is.empty;
           stale := all_pvs
         | Mem_ld _ | Mem_st _ -> check_escape idx "faulting memory access"
         | Poll _ -> check_escape idx "safepoint"
         | Exit _ -> check_escape idx "region exit"
         | _ -> ());
        (match ins with
         | Ldrf (Vreg v, off)
           when Hashtbl.find_opt off_of_pv v = Some off -> ()
         | _ ->
           (match dest ins with
            | Some (Vreg d) when Is.mem d all_pvs ->
              (* A redefinition makes the vreg the authoritative (dirty)
                 value for its slot. *)
              dirty := Is.add d !dirty;
              stale := Is.remove d !stale
            | _ -> ()))
      done;
      (!dirty, !stale)
    in
    (* Worklist fixpoint with union join (may-dirty, may-stale). *)
    let work = Queue.create () in
    Queue.add 0 work;
    let queued = Array.make nb false in
    queued.(0) <- true;
    while not (Queue.is_empty work) do
      let b = Queue.pop work in
      queued.(b) <- false;
      let out_d, out_s = flow ~report:false b (in_dirty.(b), in_stale.(b)) in
      List.iter
        (fun s ->
          let d' = Is.union in_dirty.(s) out_d and s' = Is.union in_stale.(s) out_s in
          if not (Is.equal d' in_dirty.(s) && Is.equal s' in_stale.(s)) then begin
            in_dirty.(s) <- d';
            in_stale.(s) <- s';
            if not queued.(s) then begin
              queued.(s) <- true;
              Queue.add s work
            end
          end)
        (cfg.Region.c_succs b)
    done;
    for b = 0 to nb - 1 do
      ignore (flow ~report:true b (in_dirty.(b), in_stale.(b)))
    done;
    List.rev !violations
  end

let check_wb_exn ?(what = "region") ~promoted instrs =
  match check_wb ~promoted instrs with
  | [] -> ()
  | violations -> raise (Invalid (what, violations))
