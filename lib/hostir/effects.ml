(* One source of truth for how helper calls affect guest state.

   The helper table layout is fixed across both guest engines (lib/core
   re-exports these indices), so the classification can live here where
   all three consumers reach it: Symexec's call tracing, Promote's call
   barriers, and Absint's transfer functions.  Engine-specific helpers
   occupy indices >= [first_free]. *)

type helper_kind =
  | C_pure (* deterministic value of its arguments; not traced *)
  | C_read (* reads environment, writes no guest state (coproc_read) *)
  | C_as_switch (* address-space switch: writes the AS tag preg *)
  | C_event (* externally visible event; rf/pc untouched *)
  | C_clobber (* may rewrite rf and pc (exceptions, coproc writes) *)

let kind_to_string = function
  | C_pure -> "pure"
  | C_read -> "read"
  | C_as_switch -> "as-switch"
  | C_event -> "event"
  | C_clobber -> "clobber"

(* Fixed helper indices shared by both engines. *)
let h_coproc_read = 0
let h_coproc_write = 1
let h_take_exception = 2
let h_eret = 3
let h_tlb_flush = 4
let h_tlb_flush_page = 5
let h_halt = 6
let h_wfi = 7
let h_barrier = 8
let h_as_switch = 9
let h_softmmu_fill_read = 10
let h_softmmu_fill_write = 11
let first_softfloat = 12

(* Softfloat helpers are pure intrinsic evaluation; coproc_read reads
   environment only; the address-space switch writes the AS tag preg;
   halt/wfi/barrier and softmmu fills are externally visible events that
   leave guest rf/pc alone; everything else (coproc_write, exceptions,
   eret, TLB flushes) may rewrite both. *)
let classify h =
  if h = h_coproc_read then C_read
  else if h = h_as_switch then C_as_switch
  else if h >= first_softfloat then C_pure
  else if
    h = h_halt || h = h_wfi || h = h_barrier || h = h_softmmu_fill_read
    || h = h_softmmu_fill_write
  then C_event
  else C_clobber

(* Effect summary consumed by the analyzer: what a call may touch beyond
   its explicit operands.  [s_escapes] records helpers that can leave the
   executor without running the ordinary exit path (h_halt raises
   Powered_off out of Exec.run before any writeback flush), so promoted
   state must be clean across them exactly as across clobbers. *)
type summary = {
  s_kind : helper_kind;
  s_writes_rf : bool;
  s_writes_pc : bool;
  s_writes_as_tag : bool;
  s_observes_rf : bool; (* environment may read the register file *)
  s_escapes : bool;
}

let summarize h =
  let k = classify h in
  {
    s_kind = k;
    s_writes_rf = k = C_clobber;
    s_writes_pc = k = C_clobber;
    s_writes_as_tag = k = C_as_switch;
    s_observes_rf = (match k with C_pure -> false | _ -> true);
    s_escapes = (match k with C_pure -> false | _ -> true);
  }

(* A call is transparent to promoted-register discipline only when it can
   neither observe the register file nor escape the translation: pure
   softfloat helpers.  Everything else is a writeback barrier. *)
let barrier h = (summarize h).s_observes_rf || (summarize h).s_escapes

(* Stable symbol name for a helper index.  Encoded translations reference
   helpers by table index; the names below are the stable identities those
   indices stand for, so relocation certificates and findings can name a
   helper without depending on any per-boot table address. *)
let symbol_name h =
  match h with
  | _ when h = h_coproc_read -> "coproc_read"
  | _ when h = h_coproc_write -> "coproc_write"
  | _ when h = h_take_exception -> "take_exception"
  | _ when h = h_eret -> "eret"
  | _ when h = h_tlb_flush -> "tlb_flush"
  | _ when h = h_tlb_flush_page -> "tlb_flush_page"
  | _ when h = h_halt -> "halt"
  | _ when h = h_wfi -> "wfi"
  | _ when h = h_barrier -> "barrier"
  | _ when h = h_as_switch -> "as_switch"
  | _ when h = h_softmmu_fill_read -> "softmmu_fill_read"
  | _ when h = h_softmmu_fill_write -> "softmmu_fill_write"
  | _ when h >= first_softfloat -> Printf.sprintf "softfloat+%d" (h - first_softfloat)
  | _ -> Printf.sprintf "helper#%d" h
