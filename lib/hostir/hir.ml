(* The low-level host IR (paper Sec. 2.3.2, Fig. 10): "effectively x86
   machine instructions, but with virtual register operands in place of
   physical registers".

   Three-address form; any source operand may be an immediate.  After
   register allocation, virtual registers are replaced by physical
   registers or spill slots. *)

type operand =
  | Vreg of int (* virtual, before allocation *)
  | Preg of int (* physical host register *)
  | Imm of int64
  | Slot of int (* spill slot in the translation frame *)

type cond = Ceq | Cne | Cult | Cule | Cugt | Cuge | Cslt | Csle | Csgt | Csge

type aluop = Aadd | Asub | Aand | Aor | Axor | Ashl | Ashr | Asar | Amul

type bit1op =
  | Bclz32
  | Bclz64
  | Bpopcnt
  | Bswap16
  | Bswap32
  | Bswap64
  | Brbit32
  | Brbit64

type bit2op = Bror32 | Bror64

type fp2op =
  | Fadd64 | Fsub64 | Fmul64 | Fdiv64 | Fmin64 | Fmax64
  | Fadd32 | Fsub32 | Fmul32 | Fdiv32 | Fmin32 | Fmax32

type fp1op =
  | Fsqrt64 | Fsqrt32
  | Fcvt_32_64 (* f32 -> f64 *)
  | Fcvt_64_32
  | Fcvt_64_s64 (* f64 -> signed int64, truncating *)
  | Fcvt_64_u64
  | Fcvt_32_s32
  | Fcvt_s64_64 (* signed int64 -> f64 *)
  | Fcvt_u64_64
  | Fcvt_s32_32
  | Fcvt_s64_32

type instr =
  | Mov of operand * operand (* dst, src *)
  | Alu of aluop * operand * operand * operand (* dst, a, b *)
  | Mulhi of bool * operand * operand * operand (* signed, dst, a, b *)
  | Divrem of bool * bool * operand * operand * operand
    (* signed, want-remainder, dst, a, b; ARM-style guarded divide *)
  | Setcc of cond * operand * operand * operand (* dst = (a cond b) *)
  | Cmov of operand * operand * operand * operand (* dst = c <> 0 ? a : b *)
  | Ext of bool * int * operand * operand (* signed, bits, dst, src *)
  | Neg of operand * operand
  | Not of operand * operand
  | Bit1 of bit1op * operand * operand
  | Bit2 of bit2op * operand * operand * operand
  | Fp2 of fp2op * operand * operand * operand
  | Fp1 of fp1op * operand * operand
  | Fcmp_flags of int * operand * operand * operand (* width 32/64; NZCV nibble *)
  | Flags_add of int * operand * operand * operand * operand (* width, dst, a, b, cin *)
  | Flags_logic of int * operand * operand
  | Ldrf of operand * int (* load from guest register file at byte offset *)
  | Strf of int * operand
  | Load_pc of operand
  | Store_pc of operand
  | Inc_pc of int
  | Mem_ld of int * operand * operand (* width bits, dst, addr *)
  | Mem_st of int * operand * operand (* width bits, addr, value *)
  | Call of int * operand array * operand option (* helper index, args, result *)
  | Label of int
  | Jmp of int
  | Br of operand * int * int (* condition value, then-label, else-label *)
  | Exit of int (* exit via chain slot n *)
  | Poll of int
      (* region safepoint: exit via chain slot n when an interrupt is
         pending, the translation regime changed (poison register), or the
         run loop's cycle/block budget is exhausted; otherwise fall through *)
  | Wbmap of (operand * int) array
      (* precise-state writeback map of a promoted region: (host operand,
         register-file byte offset) pairs the executor applies before any
         point that observes the register file mid-region — fault
         delivery, a [Poll] exit, an [Exit].  Placed after the last exit
         so it is never executed in sequence, but its operands keep the
         promoted registers live (and allocated) across the whole
         translation, which is exactly the range a fault can occur in. *)

(* Host scratch register holding the region-poison flag.  Zeroed by the
   engine on every dispatch; set non-zero by helpers whose side effects
   invalidate the assumptions a translated region was formed under
   (exception entry/return, MMU regime changes, TLB flushes, SMC page
   invalidation).  Checked by [Poll]. *)
let region_poison_preg = 13

let string_of_operand = function
  | Vreg v -> Printf.sprintf "%%v%d" v
  | Preg r -> Printf.sprintf "%%r%d" r
  | Imm i -> Printf.sprintf "$%Ld" i
  | Slot s -> Printf.sprintf "[slot%d]" s

let string_of_alu = function
  | Aadd -> "add" | Asub -> "sub" | Aand -> "and" | Aor -> "or" | Axor -> "xor"
  | Ashl -> "shl" | Ashr -> "shr" | Asar -> "sar" | Amul -> "imul"

let string_of_cond = function
  | Ceq -> "e" | Cne -> "ne" | Cult -> "b" | Cule -> "be" | Cugt -> "a" | Cuge -> "ae"
  | Cslt -> "l" | Csle -> "le" | Csgt -> "g" | Csge -> "ge"

let to_string (i : instr) =
  let o = string_of_operand in
  match i with
  | Mov (d, s) -> Printf.sprintf "mov %s, %s" (o d) (o s)
  | Alu (op, d, a, b) -> Printf.sprintf "%s %s, %s, %s" (string_of_alu op) (o d) (o a) (o b)
  | Mulhi (s, d, a, b) -> Printf.sprintf "%s %s, %s, %s" (if s then "imulh" else "mulh") (o d) (o a) (o b)
  | Divrem (s, r, d, a, b) ->
    Printf.sprintf "%s%s %s, %s, %s" (if s then "i" else "") (if r then "rem" else "div") (o d) (o a) (o b)
  | Setcc (c, d, a, b) -> Printf.sprintf "set%s %s, %s, %s" (string_of_cond c) (o d) (o a) (o b)
  | Cmov (d, c, a, b) -> Printf.sprintf "cmov %s, %s ? %s : %s" (o d) (o c) (o a) (o b)
  | Ext (s, bits, d, src) -> Printf.sprintf "%s%d %s, %s" (if s then "movsx" else "movzx") bits (o d) (o src)
  | Neg (d, s) -> Printf.sprintf "neg %s, %s" (o d) (o s)
  | Not (d, s) -> Printf.sprintf "not %s, %s" (o d) (o s)
  | Bit1 (_, d, s) -> Printf.sprintf "bit1 %s, %s" (o d) (o s)
  | Bit2 (_, d, a, b) -> Printf.sprintf "bit2 %s, %s, %s" (o d) (o a) (o b)
  | Fp2 (_, d, a, b) -> Printf.sprintf "fp2 %s, %s, %s" (o d) (o a) (o b)
  | Fp1 (_, d, s) -> Printf.sprintf "fp1 %s, %s" (o d) (o s)
  | Fcmp_flags (w, d, a, b) -> Printf.sprintf "fcmp%d %s, %s, %s" w (o d) (o a) (o b)
  | Flags_add (w, d, a, b, c) -> Printf.sprintf "flags_add%d %s, %s, %s, %s" w (o d) (o a) (o b) (o c)
  | Flags_logic (w, d, s) -> Printf.sprintf "flags_logic%d %s, %s" w (o d) (o s)
  | Ldrf (d, off) -> Printf.sprintf "mov %s, 0x%x(%%rbp)" (o d) off
  | Strf (off, s) -> Printf.sprintf "mov 0x%x(%%rbp), %s" off (o s)
  | Load_pc d -> Printf.sprintf "mov %s, %%r15" (o d)
  | Store_pc s -> Printf.sprintf "mov %%r15, %s" (o s)
  | Inc_pc n -> Printf.sprintf "add $%d, %%r15" n
  | Mem_ld (w, d, a) -> Printf.sprintf "ld%d %s, (%s)" w (o d) (o a)
  | Mem_st (w, a, v) -> Printf.sprintf "st%d (%s), %s" w (o a) (o v)
  | Call (h, args, ret) ->
    Printf.sprintf "call helper%d(%s)%s" h
      (String.concat ", " (Array.to_list (Array.map o args)))
      (match ret with Some r -> " -> " ^ o r | None -> "")
  | Label l -> Printf.sprintf "L%d:" l
  | Jmp l -> Printf.sprintf "jmp L%d" l
  | Br (c, t, f) -> Printf.sprintf "br %s, L%d, L%d" (o c) t f
  | Exit slot -> Printf.sprintf "exit (chain slot %d)" slot
  | Poll slot -> Printf.sprintf "poll (chain slot %d)" slot
  | Wbmap m ->
    Printf.sprintf "wbmap {%s}"
      (String.concat ", "
         (Array.to_list (Array.map (fun (op, off) -> Printf.sprintf "%s -> 0x%x" (o op) off) m)))

(* Operand accessors used by the register allocator. *)
let sources = function
  | Mov (_, s) | Ext (_, _, _, s) | Neg (_, s) | Not (_, s) | Bit1 (_, _, s) | Fp1 (_, _, s)
  | Flags_logic (_, _, s) ->
    [ s ]
  | Alu (_, _, a, b)
  | Mulhi (_, _, a, b)
  | Divrem (_, _, _, a, b)
  | Setcc (_, _, a, b)
  | Bit2 (_, _, a, b)
  | Fp2 (_, _, a, b)
  | Fcmp_flags (_, _, a, b) ->
    [ a; b ]
  | Mem_ld (_, _, a) -> [ a ]
  | Cmov (_, c, a, b) -> [ c; a; b ]
  | Flags_add (_, _, a, b, c) -> [ a; b; c ]
  | Strf (_, s) | Store_pc s -> [ s ]
  | Mem_st (_, a, v) -> [ a; v ]
  | Call (_, args, _) -> Array.to_list args
  | Br (c, _, _) -> [ c ]
  | Wbmap m -> Array.to_list (Array.map fst m)
  | Ldrf _ | Load_pc _ | Inc_pc _ | Label _ | Jmp _ | Exit _ | Poll _ -> []

let dest = function
  | Mov (d, _)
  | Alu (_, d, _, _)
  | Mulhi (_, d, _, _)
  | Divrem (_, _, d, _, _)
  | Setcc (_, d, _, _)
  | Cmov (d, _, _, _)
  | Ext (_, _, d, _)
  | Neg (d, _)
  | Not (d, _)
  | Bit1 (_, d, _)
  | Bit2 (_, d, _, _)
  | Fp2 (_, d, _, _)
  | Fp1 (_, d, _)
  | Fcmp_flags (_, d, _, _)
  | Flags_add (_, d, _, _, _)
  | Flags_logic (_, d, _)
  | Ldrf (d, _)
  | Load_pc d
  | Mem_ld (_, d, _) ->
    Some d
  | Call (_, _, ret) -> ret
  | Strf _ | Store_pc _ | Inc_pc _ | Mem_st _ | Label _ | Jmp _ | Br _ | Exit _ | Poll _
  | Wbmap _ ->
    None

(* Instructions with no side effect beyond their destination: removable when
   the destination is never used. *)
let pure = function
  | Mov _ | Alu _ | Mulhi _ | Divrem _ | Setcc _ | Cmov _ | Ext _ | Neg _ | Not _ | Bit1 _
  | Bit2 _ | Fp2 _ | Fp1 _ | Fcmp_flags _ | Flags_add _ | Flags_logic _ | Ldrf _ | Load_pc _ ->
    true
  | Strf _ | Store_pc _ | Inc_pc _ | Mem_ld _ | Mem_st _ | Call _ | Label _ | Jmp _ | Br _
  | Exit _ | Poll _ | Wbmap _ ->
    false

let map_operands f (i : instr) : instr =
  match i with
  | Mov (d, s) -> Mov (f d, f s)
  | Alu (op, d, a, b) -> Alu (op, f d, f a, f b)
  | Mulhi (s, d, a, b) -> Mulhi (s, f d, f a, f b)
  | Divrem (s, r, d, a, b) -> Divrem (s, r, f d, f a, f b)
  | Setcc (c, d, a, b) -> Setcc (c, f d, f a, f b)
  | Cmov (d, c, a, b) -> Cmov (f d, f c, f a, f b)
  | Ext (s, w, d, src) -> Ext (s, w, f d, f src)
  | Neg (d, s) -> Neg (f d, f s)
  | Not (d, s) -> Not (f d, f s)
  | Bit1 (op, d, s) -> Bit1 (op, f d, f s)
  | Bit2 (op, d, a, b) -> Bit2 (op, f d, f a, f b)
  | Fp2 (op, d, a, b) -> Fp2 (op, f d, f a, f b)
  | Fp1 (op, d, s) -> Fp1 (op, f d, f s)
  | Fcmp_flags (w, d, a, b) -> Fcmp_flags (w, f d, f a, f b)
  | Flags_add (w, d, a, b, c) -> Flags_add (w, f d, f a, f b, f c)
  | Flags_logic (w, d, s) -> Flags_logic (w, f d, f s)
  | Ldrf (d, off) -> Ldrf (f d, off)
  | Strf (off, s) -> Strf (off, f s)
  | Load_pc d -> Load_pc (f d)
  | Store_pc s -> Store_pc (f s)
  | Inc_pc n -> Inc_pc n
  | Mem_ld (w, d, a) -> Mem_ld (w, f d, f a)
  | Mem_st (w, a, v) -> Mem_st (w, f a, f v)
  | Call (h, args, ret) -> Call (h, Array.map f args, Option.map f ret)
  | Label l -> Label l
  | Jmp l -> Jmp l
  | Br (c, t, fl) -> Br (f c, t, fl)
  | Exit s -> Exit s
  | Poll s -> Poll s
  | Wbmap m -> Wbmap (Array.map (fun (op, off) -> (f op, off)) m)

(* Like [map_operands] but leaving the destination (and the writeback
   map, whose operands must stay the authoritative promoted registers)
   untouched: the substitution primitive for copy propagation. *)
let map_sources f (i : instr) : instr =
  match i with
  | Mov (d, s) -> Mov (d, f s)
  | Alu (op, d, a, b) -> Alu (op, d, f a, f b)
  | Mulhi (s, d, a, b) -> Mulhi (s, d, f a, f b)
  | Divrem (s, r, d, a, b) -> Divrem (s, r, d, f a, f b)
  | Setcc (c, d, a, b) -> Setcc (c, d, f a, f b)
  | Cmov (d, c, a, b) -> Cmov (d, f c, f a, f b)
  | Ext (s, w, d, src) -> Ext (s, w, d, f src)
  | Neg (d, s) -> Neg (d, f s)
  | Not (d, s) -> Not (d, f s)
  | Bit1 (op, d, s) -> Bit1 (op, d, f s)
  | Bit2 (op, d, a, b) -> Bit2 (op, d, f a, f b)
  | Fp2 (op, d, a, b) -> Fp2 (op, d, f a, f b)
  | Fp1 (op, d, s) -> Fp1 (op, d, f s)
  | Fcmp_flags (w, d, a, b) -> Fcmp_flags (w, d, f a, f b)
  | Flags_add (w, d, a, b, c) -> Flags_add (w, d, f a, f b, f c)
  | Flags_logic (w, d, s) -> Flags_logic (w, d, f s)
  | Strf (off, s) -> Strf (off, f s)
  | Store_pc s -> Store_pc (f s)
  | Mem_ld (w, d, a) -> Mem_ld (w, d, f a)
  | Mem_st (w, a, v) -> Mem_st (w, f a, f v)
  | Call (h, args, ret) -> Call (h, Array.map f args, ret)
  | Br (c, t, fl) -> Br (f c, t, fl)
  | Ldrf _ | Load_pc _ | Inc_pc _ | Label _ | Jmp _ | Exit _ | Poll _ | Wbmap _ -> i

(* Apply [f] to every label id (definitions and branch targets), for
   relocating concatenated instruction streams. *)
let map_labels f (i : instr) : instr =
  match i with
  | Label l -> Label (f l)
  | Jmp l -> Jmp (f l)
  | Br (c, t, fl) -> Br (c, f t, f fl)
  | _ -> i
