(* Bounded symbolic execution of HostIR over a bitvector term domain.

   This is the engine behind translation validation (Equiv): a HostIR
   program in label form (Jmp/Br carry label ids, Label markers present)
   is executed over symbolic 64-bit terms instead of concrete values.
   Every path through the program up to configurable bounds is explored;
   each path yields an [exit_state] capturing the exit slot, the symbolic
   PC, the guest register file image, the host pregs, and the ordered
   trace of memory stores and helper calls.  Two programs are equivalent
   (up to the bounds) when their exit states match path-by-path.

   Terms are built exclusively through smart constructors that constant
   fold with exactly the semantics of the concrete executor (Exec) and
   normalize aggressively:

     - associative/commutative chains (add, and, or, xor, mul) are
       flattened, constants folded, operands sorted structurally, and
       rebuilt left-associated with the folded constant outermost;
     - mask identities ([x land 0xFF] -> zext8) and nested
       sign/zero-extension collapses track effective widths;
     - shift amounts are canonicalized mod 64, subtraction of a constant
       becomes addition of its negation (add-chain canonicalization);
     - comparisons fold on reflexivity and order their operands.

   Because both the optimized and the reference program are normalized by
   the same rules, syntactic equality of the resulting terms is the
   equivalence check -- there is no solver.  The normalization must
   therefore subsume every identity the optimizer (Promote.canonicalize,
   copy propagation, rf forwarding, alias-aware load/store elimination)
   exploits; see DESIGN.md "Translation validation" for the argument and
   the known incompletenesses. *)

open Hir
module Bits = Dbt_util.Bits
open Softfloat

(* ------------------------------------------------------------------ *)
(* Terms                                                              *)
(* ------------------------------------------------------------------ *)

type atom =
  | A_rf of int (* initial register-file qword at byte offset *)
  | A_preg of int (* initial host GPR *)
  | A_pc (* initial guest PC *)
  | A_slot of int (* initial translation-frame slot *)

(* How a helper call affects symbolic state; the shared classification
   lives in Effects (one source of truth with Promote and Absint). *)
type helper_kind = Effects.helper_kind =
  | C_pure (* deterministic value of its arguments; not traced *)
  | C_read (* reads environment, writes nothing (coproc_read) *)
  | C_as_switch (* address-space switch: writes the AS tag preg *)
  | C_event (* externally visible event; rf/pc untouched *)
  | C_clobber (* may rewrite rf and pc (exceptions, coproc writes) *)

type term =
  | Const of int64
  | Atom of atom
  | TAlu of aluop * term * term
  | TMulhi of bool * term * term
  | TDivrem of bool * bool * term * term (* signed, want_rem *)
  | TCmp of cond * term * term (* 0/1 *)
  | TIte of term * term * term
  | TExt of bool * int * term (* signed, bits *)
  | TNeg of term
  | TNot of term
  | TBit1 of bit1op * term
  | TBit2 of bit2op * term * term
  | TFp2 of fp2op * term * term
  | TFp1 of fp1op * term
  | TFcmp of int * term * term
  | TFlagsAdd of int * term * term * term
  | TFlagsLogic of int * term
  | TLoad of int * term * int
    (* width, address, trace position of the most recent event that could
       have written this address (0 = initial memory) *)
  | TCallRet of int (* result of traced call, by per-path call ordinal *)
  | THelperVal of int * term list (* pure helper applied to arguments *)
  | TRfAfter of int * int (* rf qword after clobber-call ordinal, offset *)
  | TPcAfter of int (* pc after clobber-call ordinal *)
  | TAsTag of int (* AS tag after as-switch-call ordinal *)
  | TPollFired of int (* did poll site #n fire on this path? *)

(* ------------------------------------------------------------------ *)
(* Concrete folds (must mirror Exec exactly)                          *)
(* ------------------------------------------------------------------ *)

let alu_fold op a b =
  match op with
  | Aadd -> Int64.add a b
  | Asub -> Int64.sub a b
  | Aand -> Int64.logand a b
  | Aor -> Int64.logor a b
  | Axor -> Int64.logxor a b
  | Ashl -> Bits.shl a (Int64.to_int (Int64.logand b 63L))
  | Ashr -> Bits.shr a (Int64.to_int (Int64.logand b 63L))
  | Asar -> Bits.sar a (Int64.to_int (Int64.logand b 63L))
  | Amul -> Int64.mul a b

let mulhi_fold signed a b =
  let hi, _ = Sf_core.mul64_wide a b in
  let hi = if signed && a < 0L then Int64.sub hi b else hi in
  if signed && b < 0L then Int64.sub hi a else hi

let divrem_fold signed want_rem a b =
  if b = 0L then if want_rem then a else 0L
  else if signed then if want_rem then Int64.rem a b else Int64.div a b
  else if want_rem then Int64.unsigned_rem a b
  else Int64.unsigned_div a b

let bit1_fold op v =
  match op with
  | Bclz32 -> Int64.of_int (Bits.clz ~width:32 (Bits.zero_extend v ~width:32))
  | Bclz64 -> Int64.of_int (Bits.clz v)
  | Bpopcnt -> Int64.of_int (Bits.popcount v)
  | Bswap16 -> Bits.byte_swap v ~width:16
  | Bswap32 -> Bits.byte_swap (Bits.zero_extend v ~width:32) ~width:32
  | Bswap64 -> Bits.byte_swap v ~width:64
  | Brbit32 -> Bits.bit_reverse (Bits.zero_extend v ~width:32) ~width:32
  | Brbit64 -> Bits.bit_reverse v ~width:64

let bit2_fold op a b =
  match op with
  | Bror32 ->
    Bits.rotate_right (Bits.zero_extend a ~width:32) (Int64.to_int (Int64.logand b 31L)) ~width:32
  | Bror64 -> Bits.rotate_right a (Int64.to_int (Int64.logand b 63L)) ~width:64

let ext_fold signed bits v =
  if signed then Bits.sign_extend v ~width:bits else Bits.zero_extend v ~width:bits

(* ------------------------------------------------------------------ *)
(* Smart constructors / normalization                                 *)
(* ------------------------------------------------------------------ *)

let ac_ident = function
  | Aadd | Aor | Axor -> 0L
  | Aand -> -1L
  | Amul -> 1L
  | _ -> assert false

let ac_absorb = function
  | Aand -> Some 0L
  | Aor -> Some (-1L)
  | Amul -> Some 0L
  | _ -> None

(* Flatten nested applications of the same AC operator into a leaf list. *)
let rec ac_leaves op t acc =
  match t with
  | TAlu (o, a, b) when o = op -> ac_leaves op a (ac_leaves op b acc)
  | _ -> t :: acc

let rec t_ext signed bits t =
  if bits >= 64 then t
  else
    match t with
    | Const c -> Const (ext_fold signed bits c)
    | TExt (_, w2, y) when bits <= w2 -> t_ext signed bits y
    | TExt (s2, w2, _) when bits > w2 && ((not s2) || signed) ->
      (* a wider extension of an already-extended value is the identity:
         after zext to w2 < bits both zext and sext leave the high bits
         zero; after sext to w2 a wider sext re-replicates the sign *)
      t
    | TCmp _ when (not signed) || bits > 1 -> t (* comparisons are 0/1 *)
    | _ -> TExt (signed, bits, t)

and t_alu op a b =
  match op with
  | Aadd | Aand | Aor | Axor | Amul -> (
    let leaves = ac_leaves op a (ac_leaves op b []) in
    let cval =
      List.fold_left
        (fun acc t -> match t with Const c -> alu_fold op acc c | _ -> acc)
        (ac_ident op) leaves
    in
    match ac_absorb op with
    | Some z when cval = z -> Const z
    | _ -> (
      let rest = List.filter (function Const _ -> false | _ -> true) leaves in
      let rest = List.sort compare rest in
      let rest =
        match op with
        | Aand | Aor ->
          (* idempotent: keep one of each run of equal leaves *)
          let rec dedup = function
            | x :: y :: tl when x = y -> dedup (y :: tl)
            | x :: tl -> x :: dedup tl
            | [] -> []
          in
          dedup rest
        | Axor ->
          (* involutive: equal pairs cancel *)
          let rec cancel = function
            | x :: y :: tl when x = y -> cancel tl
            | x :: tl -> x :: cancel tl
            | [] -> []
          in
          cancel rest
        | _ -> rest
      in
      match rest with
      | [] -> Const cval
      | hd :: tl -> (
        let core = List.fold_left (fun acc t -> TAlu (op, acc, t)) hd tl in
        if cval = ac_ident op then core
        else
          match (op, cval) with
          | Aand, 0xFFL -> t_ext false 8 core
          | Aand, 0xFFFFL -> t_ext false 16 core
          | Aand, 0xFFFF_FFFFL -> t_ext false 32 core
          | _ -> TAlu (op, core, Const cval))))
  | Asub -> (
    match (a, b) with
    | Const x, Const y -> Const (Int64.sub x y)
    | _, Const c -> t_alu Aadd a (Const (Int64.neg c))
    | _ when a = b -> Const 0L
    | _ -> TAlu (Asub, a, b))
  | Ashl | Ashr | Asar -> (
    match (a, b) with
    | Const x, Const y -> Const (alu_fold op x y)
    | _, Const c ->
      let c = Int64.logand c 63L in
      if c = 0L then a else TAlu (op, a, Const c)
    | _ -> TAlu (op, a, b))

let cond_refl = function
  | Ceq | Cule | Cuge | Csle | Csge -> 1L
  | Cne | Cult | Cugt | Cslt | Csgt -> 0L

let t_setcc c a b =
  match (a, b) with
  | Const x, Const y -> Const (if Exec.cond_holds c x y then 1L else 0L)
  | _ when a = b -> Const (cond_refl c)
  | _ -> (
    match c with
    | Ceq | Cne ->
      (* commutative: constant to the right, else structural order *)
      let a, b =
        match (a, b) with
        | Const _, _ -> (b, a)
        | _, Const _ -> (a, b)
        | _ -> if compare a b <= 0 then (a, b) else (b, a)
      in
      TCmp (c, a, b)
    | _ -> TCmp (c, a, b))

let t_cmov c a b =
  match c with
  | Const v -> if v <> 0L then a else b
  | _ -> if a = b then a else TIte (c, a, b)

let t_neg = function
  | Const c -> Const (Int64.neg c)
  | TNeg x -> x
  | t -> TNeg t

let t_not = function
  | Const c -> Const (Int64.lognot c)
  | TNot x -> x
  | t -> TNot t

let t_mulhi s a b =
  match (a, b) with Const x, Const y -> Const (mulhi_fold s x y) | _ -> TMulhi (s, a, b)

let t_divrem s r a b =
  match (a, b) with
  | Const x, Const y -> Const (divrem_fold s r x y)
  | _, Const 0L -> if r then a else Const 0L (* Exec: division by zero -> rem = a, div = 0 *)
  | _ -> TDivrem (s, r, a, b)

let t_bit1 op = function Const v -> Const (bit1_fold op v) | t -> TBit1 (op, t)

let t_bit2 op a b =
  match (a, b) with Const x, Const y -> Const (bit2_fold op x y) | _ -> TBit2 (op, a, b)

let t_fp2 op a b =
  match (a, b) with Const x, Const y -> Const (Exec.exec_fp2 op x y) | _ -> TFp2 (op, a, b)

let t_fp1 op = function Const v -> Const (Exec.exec_fp1 op v) | t -> TFp1 (op, t)

let t_fcmp w a b =
  match (a, b) with Const x, Const y -> Const (Exec.fcmp_nzcv w x y) | _ -> TFcmp (w, a, b)

let t_flags_add w a b cin =
  match (a, b, cin) with
  | Const x, Const y, Const ci ->
    let r, carry, ovf = Bits.add_with_carry ~width:w x y (ci <> 0L) in
    Const (Exec.flags_nzcv ~width:w r carry ovf)
  | _ -> TFlagsAdd (w, a, b, cin)

let t_flags_logic w = function
  | Const r -> Const (Exec.flags_nzcv ~width:w r false false)
  | t -> TFlagsLogic (w, t)

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let alu_name = function
  | Aadd -> "add"
  | Asub -> "sub"
  | Aand -> "and"
  | Aor -> "or"
  | Axor -> "xor"
  | Ashl -> "shl"
  | Ashr -> "shr"
  | Asar -> "sar"
  | Amul -> "mul"

let cond_name = function
  | Ceq -> "eq"
  | Cne -> "ne"
  | Cult -> "ult"
  | Cule -> "ule"
  | Cugt -> "ugt"
  | Cuge -> "uge"
  | Cslt -> "slt"
  | Csle -> "sle"
  | Csgt -> "sgt"
  | Csge -> "sge"

let rec to_string t =
  match t with
  | Const c -> Printf.sprintf "0x%Lx" c
  | Atom (A_rf off) -> Printf.sprintf "rf[0x%x]" off
  | Atom (A_preg r) -> Printf.sprintf "r%d" r
  | Atom A_pc -> "pc0"
  | Atom (A_slot s) -> Printf.sprintf "slot%d" s
  | TAlu (op, a, b) -> Printf.sprintf "(%s %s %s)" (alu_name op) (to_string a) (to_string b)
  | TMulhi (s, a, b) ->
    Printf.sprintf "(%s %s %s)" (if s then "smulh" else "umulh") (to_string a) (to_string b)
  | TDivrem (s, r, a, b) ->
    Printf.sprintf "(%s%s %s %s)"
      (if s then "s" else "u")
      (if r then "rem" else "div")
      (to_string a) (to_string b)
  | TCmp (c, a, b) -> Printf.sprintf "(%s %s %s)" (cond_name c) (to_string a) (to_string b)
  | TIte (c, a, b) -> Printf.sprintf "(ite %s %s %s)" (to_string c) (to_string a) (to_string b)
  | TExt (s, w, x) -> Printf.sprintf "(%sext%d %s)" (if s then "s" else "z") w (to_string x)
  | TNeg x -> Printf.sprintf "(neg %s)" (to_string x)
  | TNot x -> Printf.sprintf "(not %s)" (to_string x)
  | TBit1 (_, x) -> Printf.sprintf "(bit1 %s)" (to_string x)
  | TBit2 (_, a, b) -> Printf.sprintf "(bit2 %s %s)" (to_string a) (to_string b)
  | TFp2 (_, a, b) -> Printf.sprintf "(fp2 %s %s)" (to_string a) (to_string b)
  | TFp1 (_, x) -> Printf.sprintf "(fp1 %s)" (to_string x)
  | TFcmp (w, a, b) -> Printf.sprintf "(fcmp%d %s %s)" w (to_string a) (to_string b)
  | TFlagsAdd (w, a, b, c) ->
    Printf.sprintf "(flags_add%d %s %s %s)" w (to_string a) (to_string b) (to_string c)
  | TFlagsLogic (w, s) -> Printf.sprintf "(flags_logic%d %s)" w (to_string s)
  | TLoad (w, a, p) -> Printf.sprintf "(ld%d %s @%d)" w (to_string a) p
  | TCallRet i -> Printf.sprintf "call#%d" i
  | THelperVal (h, args) ->
    Printf.sprintf "(helper%d%s)" h
      (String.concat "" (List.map (fun a -> " " ^ to_string a) args))
  | TRfAfter (i, off) -> Printf.sprintf "rf[0x%x]@call#%d" off i
  | TPcAfter i -> Printf.sprintf "pc@call#%d" i
  | TAsTag i -> Printf.sprintf "astag@call#%d" i
  | TPollFired i -> Printf.sprintf "poll#%d" i

(* ------------------------------------------------------------------ *)
(* Concrete evaluation (for the soundness test harness)               *)
(* ------------------------------------------------------------------ *)

type env = {
  e_pc : int64;
  e_preg : int -> int64;
  e_rf : int -> int64;
  e_slot : int -> int64;
}

exception Unevaluable of string

let rec eval env t =
  match t with
  | Const c -> c
  | Atom A_pc -> env.e_pc
  | Atom (A_preg r) -> env.e_preg r
  | Atom (A_rf off) -> env.e_rf off
  | Atom (A_slot s) -> env.e_slot s
  | TAlu (op, a, b) -> alu_fold op (eval env a) (eval env b)
  | TMulhi (s, a, b) -> mulhi_fold s (eval env a) (eval env b)
  | TDivrem (s, r, a, b) -> divrem_fold s r (eval env a) (eval env b)
  | TCmp (c, a, b) -> if Exec.cond_holds c (eval env a) (eval env b) then 1L else 0L
  | TIte (c, a, b) -> if eval env c <> 0L then eval env a else eval env b
  | TExt (s, w, x) -> ext_fold s w (eval env x)
  | TNeg x -> Int64.neg (eval env x)
  | TNot x -> Int64.lognot (eval env x)
  | TBit1 (op, x) -> bit1_fold op (eval env x)
  | TBit2 (op, a, b) -> bit2_fold op (eval env a) (eval env b)
  | TFp2 (op, a, b) -> Exec.exec_fp2 op (eval env a) (eval env b)
  | TFp1 (op, x) -> Exec.exec_fp1 op (eval env x)
  | TFcmp (w, a, b) -> Exec.fcmp_nzcv w (eval env a) (eval env b)
  | TFlagsAdd (w, a, b, c) ->
    let r, carry, ovf = Bits.add_with_carry ~width:w (eval env a) (eval env b) (eval env c <> 0L) in
    Exec.flags_nzcv ~width:w r carry ovf
  | TFlagsLogic (w, s) -> Exec.flags_nzcv ~width:w (eval env s) false false
  | TPollFired _ -> 0L (* the harness runs with poll budgets that never fire *)
  | TLoad _ | TCallRet _ | THelperVal _ | TRfAfter _ | TPcAfter _ | TAsTag _ ->
    raise (Unevaluable (to_string t))

(* ------------------------------------------------------------------ *)
(* Substitution (path-condition rewriting)                            *)
(* ------------------------------------------------------------------ *)

(* Replace term [x] with constant [c] everywhere in [t], re-normalizing
   through the smart constructors.  Used when a branch pins a term to a
   constant (e.g. a dispatch compare pinning the symbolic PC): downstream
   computation then folds identically on both programs. *)
let rec subst x c t =
  if t = x then Const c
  else
    match t with
    | Const _ | Atom _ | TCallRet _ | TRfAfter _ | TPcAfter _ | TAsTag _ | TPollFired _ -> t
    | TAlu (op, a, b) -> t_alu op (subst x c a) (subst x c b)
    | TMulhi (s, a, b) -> t_mulhi s (subst x c a) (subst x c b)
    | TDivrem (s, r, a, b) -> t_divrem s r (subst x c a) (subst x c b)
    | TCmp (cc, a, b) -> t_setcc cc (subst x c a) (subst x c b)
    | TIte (cc, a, b) -> t_cmov (subst x c cc) (subst x c a) (subst x c b)
    | TExt (s, w, y) -> t_ext s w (subst x c y)
    | TNeg y -> t_neg (subst x c y)
    | TNot y -> t_not (subst x c y)
    | TBit1 (op, y) -> t_bit1 op (subst x c y)
    | TBit2 (op, a, b) -> t_bit2 op (subst x c a) (subst x c b)
    | TFp2 (op, a, b) -> t_fp2 op (subst x c a) (subst x c b)
    | TFp1 (op, y) -> t_fp1 op (subst x c y)
    | TFcmp (w, a, b) -> t_fcmp w (subst x c a) (subst x c b)
    | TFlagsAdd (w, a, b, ci) -> t_flags_add w (subst x c a) (subst x c b) (subst x c ci)
    | TFlagsLogic (w, s) -> t_flags_logic w (subst x c s)
    | TLoad (w, a, p) -> TLoad (w, subst x c a, p)
    | THelperVal (h, args) -> THelperVal (h, List.map (subst x c) args)

let apply_rw rw t = List.fold_left (fun t (x, c) -> subst x c t) t rw

(* ------------------------------------------------------------------ *)
(* Symbolic state                                                     *)
(* ------------------------------------------------------------------ *)

module Imap = Map.Make (Int)

type event =
  | E_store of { s_width : int; s_addr : term; s_value : term; s_pc : term }
  | E_call of {
      c_helper : int;
      c_kind : helper_kind;
      c_args : term list;
      c_pc : term;
      c_rf : (int * term) list; (* canonicalized rf snapshot at the call *)
      c_epoch : int;
    }

type exit_state = {
  x_slot : int;
  x_poll : bool; (* exit taken through a fired Poll rather than Exit *)
  x_pc : term;
  x_epoch : int; (* clobber-call ordinal the rf is relative to; -1 initial *)
  x_rf : (int * term) list; (* ascending offset; default-valued entries dropped *)
  x_pregs : (int * term) list;
  x_trace : event list; (* program order *)
  x_lits : (term * bool) list; (* sorted path condition: the path's identity *)
}

type limits = {
  max_paths : int;
  max_steps_per_path : int;
  max_total_steps : int;
  max_loop_iters : int;
      (* k-bounded unrolling: a path that crosses the same backedge more
         than this many times is abandoned (complete=false). *)
  max_term_nodes : int;
      (* abandon a path when a term stored into its state exceeds this
         tree size.  Terms are DAGs in memory, but normalization and the
         structural equality the equivalence check rests on walk them as
         trees; repeated self-combination (x' = f(x, x) chains, loop
         iterations) makes that walk exponential without this cap. *)
}

(* Every step is O(max_term_nodes) in the worst case, so the step and
   term budgets multiply; these defaults keep a pathological program
   (loop-carried term growth, e.g. chained xor/bit2 over loads) under a
   second while leaving real tier-0 blocks and early region iterations
   far inside the bounds. *)
let default_limits =
  {
    max_paths = 256;
    max_steps_per_path = 20_000;
    max_total_steps = 100_000;
    max_loop_iters = 4;
    max_term_nodes = 4_096;
  }

(* Per-step tracing for debugging validator stalls (SYMEXEC_TRACE=1). *)
let trace_steps = lazy (Sys.getenv_opt "SYMEXEC_TRACE" <> None)

(* Path abandoned because a state term outgrew [max_term_nodes]. *)
exception Blowup

(* Walk up to [budget] tree nodes of [t]; raise {!Blowup} if the walk
   doesn't finish.  O(budget) even on exponentially-shared DAGs. *)
let check_size budget t =
  let rec go budget t =
    if budget <= 0 then raise Blowup
    else
      match t with
      | Const _ | Atom _ | TCallRet _ | TRfAfter _ | TPcAfter _ | TAsTag _ | TPollFired _ ->
        budget - 1
      | TNeg s | TNot s | TBit1 (_, s) | TFp1 (_, s) | TFlagsLogic (_, s) | TExt (_, _, s)
      | TLoad (_, s, _) ->
        go (budget - 1) s
      | TAlu (_, a, b)
      | TMulhi (_, a, b)
      | TDivrem (_, _, a, b)
      | TCmp (_, a, b)
      | TBit2 (_, a, b)
      | TFp2 (_, a, b)
      | TFcmp (_, a, b) ->
        go (go (budget - 1) a) b
      | TIte (a, b, c) | TFlagsAdd (_, a, b, c) -> go (go (go (budget - 1) a) b) c
      | THelperVal (_, args) -> List.fold_left go (budget - 1) args
  in
  ignore (go budget t)

type outcome = { exits : exit_state list; complete : bool; o_paths : int; o_steps : int }

type path = {
  p_idx : int;
  p_vregs : term Imap.t;
  p_pregs : term Imap.t;
  p_slots : term Imap.t;
  p_rf : term Imap.t;
  p_epoch : int;
  p_pc : term;
  p_trace : event list; (* reversed *)
  p_ntrace : int;
  p_calls : int; (* traced-call ordinal counter *)
  p_polls : int; (* poll-site ordinal counter *)
  p_lits : (term * bool) list;
  p_rw : (term * int64) list; (* rewrites implied by the path condition *)
  p_steps : int;
  p_back : int Imap.t; (* backedge-target index -> times taken (k-bounding) *)
}

let rw_event x c = function
  | E_store s ->
    E_store
      { s with s_addr = subst x c s.s_addr; s_value = subst x c s.s_value; s_pc = subst x c s.s_pc }
  | E_call cl ->
    E_call
      {
        cl with
        c_args = List.map (subst x c) cl.c_args;
        c_pc = subst x c cl.c_pc;
        c_rf = List.map (fun (o, t) -> (o, subst x c t)) cl.c_rf;
      }

let add_rewrite p x c =
  match x with
  | Const _ -> p
  | _ ->
    let sb = subst x c in
    {
      p with
      p_vregs = Imap.map sb p.p_vregs;
      p_pregs = Imap.map sb p.p_pregs;
      p_slots = Imap.map sb p.p_slots;
      p_rf = Imap.map sb p.p_rf;
      p_pc = sb p.p_pc;
      p_trace = List.map (rw_event x c) p.p_trace;
      p_rw = p.p_rw @ [ (x, c) ];
    }

(* Record a path literal; equality literals additionally rewrite the term
   to its pinned constant throughout the state so that later computation
   normalizes identically on both programs being compared. *)
let with_lit p t b =
  let p = { p with p_lits = (t, b) :: p.p_lits } in
  match (t, b) with
  | TCmp (Ceq, x, Const c), true | TCmp (Cne, x, Const c), false -> add_rewrite p x c
  | TCmp (Ceq, Const c, x), true | TCmp (Cne, Const c, x), false -> add_rewrite p x c
  | _ -> p

(* ------------------------------------------------------------------ *)
(* Memory log                                                         *)
(* ------------------------------------------------------------------ *)

(* Decompose an address into (symbolic base, constant byte displacement);
   normalization guarantees a folded Const sits rightmost in add chains. *)
let addr_base t =
  match t with
  | Const c -> (None, c)
  | TAlu (Aadd, x, Const c) -> (Some x, c)
  | _ -> (Some t, 0L)

let ranges_disjoint o1 w1 o2 w2 =
  let e1 = Int64.add o1 (Int64.of_int (w1 / 8)) in
  let e2 = Int64.add o2 (Int64.of_int (w2 / 8)) in
  Int64.compare e1 o2 <= 0 || Int64.compare e2 o1 <= 0

let provably_disjoint a1 w1 a2 w2 =
  match (addr_base a1, addr_base a2) with
  | (None, o1), (None, o2) -> ranges_disjoint o1 w1 o2 w2
  | (Some b1, o1), (Some b2, o2) when b1 = b2 -> ranges_disjoint o1 w1 o2 w2
  | _ -> false

(* Resolve a load against the store log: forward an exact-match store,
   skip provably-disjoint stores and non-clobbering calls, and otherwise
   produce an opaque [TLoad] pinned to the blocking event's position. *)
let mem_load p w addr =
  let rec scan evs pos =
    match evs with
    | [] -> TLoad (w, addr, 0)
    | E_store s :: rest ->
      if s.s_width = w && s.s_addr = addr then s.s_value
      else if provably_disjoint addr w s.s_addr s.s_width then scan rest (pos - 1)
      else TLoad (w, addr, pos)
    | E_call c :: rest -> if c.c_kind = C_clobber then TLoad (w, addr, pos) else scan rest (pos - 1)
  in
  scan p.p_trace p.p_ntrace

(* ------------------------------------------------------------------ *)
(* State reads / writes                                               *)
(* ------------------------------------------------------------------ *)

let rf_default p off =
  apply_rw p.p_rw (if p.p_epoch < 0 then Atom (A_rf off) else TRfAfter (p.p_epoch, off))

let rf_rd p off = match Imap.find_opt off p.p_rf with Some t -> t | None -> rf_default p off

let rd p (o : operand) =
  match o with
  | Imm v -> Const v
  | Vreg v -> (
    match Imap.find_opt v p.p_vregs with
    | Some t -> t
    (* Uninitialized generator variables read as 0 (Gen's Fixed 0L default);
       the concrete executor's vreg file is likewise zero-initialized. *)
    | None -> Const 0L)
  | Preg r -> (
    match Imap.find_opt r p.p_pregs with Some t -> t | None -> apply_rw p.p_rw (Atom (A_preg r)))
  | Slot s -> (
    match Imap.find_opt s p.p_slots with Some t -> t | None -> apply_rw p.p_rw (Atom (A_slot s)))

let wr p (o : operand) t =
  match o with
  | Vreg v -> { p with p_vregs = Imap.add v t p.p_vregs }
  | Preg r -> { p with p_pregs = Imap.add r t p.p_pregs }
  | Slot s -> { p with p_slots = Imap.add s t p.p_slots }
  | Imm _ -> invalid_arg "Symexec: write to immediate"

let canon_rf p =
  Imap.fold (fun off t acc -> if t = rf_default p off then acc else (off, t) :: acc) p.p_rf []
  |> List.rev

let canon_pregs p =
  Imap.fold
    (fun r t acc -> if t = apply_rw p.p_rw (Atom (A_preg r)) then acc else (r, t) :: acc)
    p.p_pregs []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* The executor                                                       *)
(* ------------------------------------------------------------------ *)

(* Recognize the address-space guard from Dag.guarded_address: a Cne
   compare whose operand is [addr >> 47].  Under [assume_as_hit] the
   validator follows only the matched-tag fast path (the slow path calls
   the as-switch helper and re-runs the same masked access, so validating
   it adds nothing but paths). *)
let is_as_guard t =
  let shift47 = function TAlu ((Ashr | Asar), _, Const 47L) -> true | _ -> false in
  match t with TCmp (Cne, a, b) -> shift47 a || shift47 b | _ -> false

let run ?(limits = default_limits) ?(classify = fun _ -> C_clobber) ?(assume_as_hit = true)
    ~init_pc (prog : instr array) : outcome =
  let n = Array.length prog in
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun i ins ->
      match ins with
      | Label l -> if not (Hashtbl.mem labels l) then Hashtbl.add labels l i
      | _ -> ())
    prog;
  let wb = Array.fold_left (fun acc ins -> match ins with Wbmap m -> m | _ -> acc) [||] prog in
  let exits = ref [] in
  let complete = ref true in
  let steps = ref 0 in
  let paths_started = ref 1 in
  let pending = ref [] in
  let apply_wb p =
    Array.fold_left (fun p (o, off) -> { p with p_rf = Imap.add off (rd p o) p.p_rf }) p wb
  in
  let finish p slot ~poll =
    let p = apply_wb p in
    exits :=
      {
        x_slot = slot;
        x_poll = poll;
        x_pc = p.p_pc;
        x_epoch = p.p_epoch;
        x_rf = canon_rf p;
        x_pregs = canon_pregs p;
        x_trace = List.rev p.p_trace;
        x_lits = List.sort compare p.p_lits;
      }
      :: !exits
  in
  let rec drive p =
    if p.p_steps > limits.max_steps_per_path || !steps > limits.max_total_steps then
      complete := false
    else if p.p_idx >= n || p.p_idx < 0 then complete := false (* fell off the program *)
    else begin
      incr steps;
      if Lazy.force trace_steps then
        Printf.eprintf "symexec: step %d idx %d: %s\n%!" !steps p.p_idx
          (Hir.to_string prog.(p.p_idx));
      let p = { p with p_steps = p.p_steps + 1 } in
      let next = p.p_idx + 1 in
      let guard t =
        check_size limits.max_term_nodes t;
        t
      in
      let assign d t = drive { (wr p d (guard (apply_rw p.p_rw t))) with p_idx = next } in
      (* Control transfer to instruction [i]; backward edges are
         k-bounded so loop-carried terms stay tractable. *)
      let jump p i =
        if i <= p.p_idx then begin
          let c = match Imap.find_opt i p.p_back with Some c -> c | None -> 0 in
          if c + 1 > limits.max_loop_iters then complete := false
          else drive { p with p_idx = i; p_back = Imap.add i (c + 1) p.p_back }
        end
        else drive { p with p_idx = i }
      in
      match prog.(p.p_idx) with
      | Label _ | Wbmap _ -> drive { p with p_idx = next }
      | Mov (d, s) -> assign d (rd p s)
      | Alu (op, d, a, b) -> assign d (t_alu op (rd p a) (rd p b))
      | Mulhi (s, d, a, b) -> assign d (t_mulhi s (rd p a) (rd p b))
      | Divrem (s, r, d, a, b) -> assign d (t_divrem s r (rd p a) (rd p b))
      | Setcc (c, d, a, b) -> assign d (t_setcc c (rd p a) (rd p b))
      | Cmov (d, c, a, b) -> assign d (t_cmov (rd p c) (rd p a) (rd p b))
      | Ext (s, w, d, src) -> assign d (t_ext s w (rd p src))
      | Neg (d, s) -> assign d (t_neg (rd p s))
      | Not (d, s) -> assign d (t_not (rd p s))
      | Bit1 (op, d, s) -> assign d (t_bit1 op (rd p s))
      | Bit2 (op, d, a, b) -> assign d (t_bit2 op (rd p a) (rd p b))
      | Fp2 (op, d, a, b) -> assign d (t_fp2 op (rd p a) (rd p b))
      | Fp1 (op, d, s) -> assign d (t_fp1 op (rd p s))
      | Fcmp_flags (w, d, a, b) -> assign d (t_fcmp w (rd p a) (rd p b))
      | Flags_add (w, d, a, b, c) -> assign d (t_flags_add w (rd p a) (rd p b) (rd p c))
      | Flags_logic (w, d, s) -> assign d (t_flags_logic w (rd p s))
      | Ldrf (d, off) -> assign d (rf_rd p off)
      | Strf (off, s) -> drive { p with p_rf = Imap.add off (guard (rd p s)) p.p_rf; p_idx = next }
      | Load_pc d -> assign d p.p_pc
      | Store_pc s -> drive { p with p_pc = guard (rd p s); p_idx = next }
      | Inc_pc k ->
        let pc = guard (apply_rw p.p_rw (t_alu Aadd p.p_pc (Const (Int64.of_int k)))) in
        drive { p with p_pc = pc; p_idx = next }
      | Mem_ld (w, d, a) -> assign d (mem_load p w (rd p a))
      | Mem_st (w, a, v) ->
        let addr = rd p a in
        let value = if w >= 64 then rd p v else t_ext false w (rd p v) in
        let ev = E_store { s_width = w; s_addr = addr; s_value = value; s_pc = p.p_pc } in
        drive { p with p_trace = ev :: p.p_trace; p_ntrace = p.p_ntrace + 1; p_idx = next }
      | Call (h, args, ret) -> (
        let kind = classify h in
        let argts = Array.to_list (Array.map (rd p) args) in
        match kind with
        | C_pure -> (
          let v = THelperVal (h, argts) in
          match ret with Some d -> assign d v | None -> drive { p with p_idx = next })
        | _ -> (
          let ord = p.p_calls in
          let ev =
            E_call
              {
                c_helper = h;
                c_kind = kind;
                c_args = argts;
                c_pc = p.p_pc;
                c_rf = canon_rf p;
                c_epoch = p.p_epoch;
              }
          in
          let p =
            { p with p_trace = ev :: p.p_trace; p_ntrace = p.p_ntrace + 1; p_calls = ord + 1 }
          in
          let p =
            match kind with
            | C_clobber -> { p with p_rf = Imap.empty; p_epoch = ord; p_pc = TPcAfter ord }
            | C_as_switch -> { p with p_pregs = Imap.add Dag.as_tag_preg (TAsTag ord) p.p_pregs }
            | _ -> p
          in
          let next = p.p_idx + 1 in
          match ret with
          | Some d -> drive { (wr p d (TCallRet ord)) with p_idx = next }
          | None -> drive { p with p_idx = next }))
      | Jmp l -> (
        match Hashtbl.find_opt labels l with
        | Some i -> jump p i
        | None -> complete := false)
      | Br (c, t, f) -> (
        let goto p b =
          match Hashtbl.find_opt labels (if b then t else f) with
          | Some i -> jump p i
          | None -> complete := false
        in
        let cv = rd p c in
        match cv with
        | Const v -> goto p (v <> 0L)
        | _ -> (
          match List.find_opt (fun (t', _) -> t' = cv) p.p_lits with
          | Some (_, b) -> goto p b
          | None ->
            if assume_as_hit && is_as_guard cv then goto (with_lit p cv false) false
            else begin
              if !paths_started < limits.max_paths then begin
                incr paths_started;
                pending := with_lit { p with p_idx = p.p_idx } cv false :: !pending
                (* the stashed path re-executes the Br, now resolved by its lit *)
              end
              else complete := false;
              goto (with_lit p cv true) true
            end))
      | Exit slot -> finish p slot ~poll:false
      | Poll slot ->
        let k = p.p_polls in
        let t = TPollFired k in
        finish (with_lit p t true) slot ~poll:true;
        drive (with_lit { p with p_polls = k + 1; p_idx = next } t false)
    end
  in
  let initial =
    {
      p_idx = 0;
      p_vregs = Imap.empty;
      p_pregs = Imap.empty;
      p_slots = Imap.empty;
      p_rf = Imap.empty;
      p_epoch = -1;
      p_pc = init_pc;
      p_trace = [];
      p_ntrace = 0;
      p_calls = 0;
      p_polls = 0;
      p_lits = [];
      p_rw = [];
      p_steps = 0;
      p_back = Imap.empty;
    }
  in
  pending := [ initial ];
  let rec drain () =
    match !pending with
    | [] -> ()
    | p :: rest ->
      pending := rest;
      (try drive p with Blowup -> complete := false);
      drain ()
  in
  drain ();
  { exits = List.rev !exits; complete = !complete; o_paths = !paths_started; o_steps = !steps }
