(** The invocation DAG builder (paper Sec. 2.3.2, Fig. 9).

    Generator functions call into this backend; pure operations build
    DAG nodes lazily, and operations with runtime side effects collapse
    the trees rooted at their inputs into low-level IR immediately
    (feed-forward emission).  Node memoization turns repeated subtrees
    (e.g. two reads of the same guest register within a block) into
    shared IR - the "weak form of tree pattern matching on demand" the
    paper describes, including the PC-increment specialization of
    Fig. 9(d). *)

(** How an intrinsic is lowered: inline host instructions, or a call to
    the numbered helper (the hardware-FP vs softfloat-helper choice). *)
type lowering = L_inline | L_helper of int

type config = {
  bank_offset : bank:int -> index:int -> int;  (** guest register file layout *)
  slot_offset : int -> int;
  lower_intrinsic : string -> lowering;
  effect_helper : string -> int;
  coproc_read_helper : int;
  coproc_write_helper : int;
  split_va_check : bool;
      (** Sec. 2.7.5: for 64-bit guests, memory accesses check whether
          the guest VA crosses the host address-space split; on a regime
          change a helper switches page-table sets (with PCIDs), and the
          VA is masked into the lower half. *)
  as_switch_helper : int;  (** helper performing the page-table-set switch *)
}

(** The dedicated host register holding the current address-space tag
    (the value of va >> 47 for the active page-table set). *)
val as_tag_preg : int

(** A lazily-built pure DAG node; the value type flowing through the
    {!Ssa.Emitter.t} this backend provides. *)
type node

(** A DAG build in progress for one translation. *)
type t

val create : config -> t

(** Host condition code for a comparison binop.
    @raise Invalid_argument on a non-comparison operator. *)
val cond_of_binop : Adl.Ast.binop -> bool -> Hir.cond

(** Raised when an intrinsic (or a dynamic-width [sign_extend]) has no
    inline lowering and no helper was configured for it. *)
exception Unsupported_lowering of string

(** The {!Ssa.Emitter.t} interface over this DAG: pure operations build
    memoized nodes, effectful operations force their operand trees to
    host IR at the program point (hazard and barrier management
    included). *)
val emitter : t -> node Ssa.Emitter.t

(** Append a raw instruction (prologue/epilogue/exits, emitted by the
    engine). *)
val raw : t -> Hir.instr -> unit

(** Allocate a fresh virtual register for raw instruction sequences
    (the engine's region dispatch code). *)
val fresh_vreg : t -> Hir.operand

(** Force a node to its operand at the current program point (the
    template miner materializes hole values eagerly). *)
val force : t -> node -> Hir.operand

(** Wrap an operand produced outside the emitter back into a node (the
    mem_read/coproc_read pattern; used by the template miner for
    register-file loads whose offset is a hole). *)
val done_node : t -> Hir.operand -> node

(** Hazard every pending register-file load and drop all rf memo
    entries: a store whose rf offset is unknown at mine time may alias
    any of them. *)
val rf_barrier : t -> unit

(** Flatten the chunks into the final instruction stream. *)
val finish : t -> Hir.instr array

(** Number of virtual registers allocated so far. *)
val vreg_count : t -> int

(** Number of instructions emitted so far. *)
val instr_count : t -> int

(** Number of labels allocated so far (for relocating streams). *)
val label_count : t -> int
