(* Forward abstract interpretation over label-form HostIR streams (the
   translate-time proof layer under the engine's dynamic validators).

   The value domain is the same product used by the SSA-level analysis
   (Ssa.Absint): *known-bits* (each of the 64 bits known-0, known-1 or
   unknown) crossed with an *unsigned interval* [lo, hi], the two halves
   refining each other on construction.  Here it is applied below the
   SSA layer, to the flattened instruction streams the engine actually
   allocates and encodes — tier-0 blocks and tier-1 regions, before or
   after register allocation — where facts invisible to the SSA pass
   materialize: region flattening pins guest-PC increments, promotion
   turns register-file traffic into vreg dataflow, and dispatch chunks
   compare values the block translator produced as opaque temporaries.

   The abstract state maps each storage location the executor models —
   vregs, host GPRs, spill slots, register-file qwords at static byte
   offsets, and the dedicated PC register — to a value; absent entries
   mean "any 64-bit value".  Every transfer function over-approximates
   the concrete executor (Exec) exactly: shift amounts mask to 6 bits
   (5 for 32-bit rotates), division by zero yields the ARM-style
   quotient 0 / remainder a, Setcc produces {0,1}, the flags ops
   produce NZCV nibbles.  Helper calls are interpreted through the
   shared effect classification (Effects): clobber helpers havoc the
   register file and the PC, every non-pure helper havocs the reserved
   scratch registers, and faulting memory accesses havoc the register
   file and PC because the fault handler observes (and the guest's
   abort path may rewrite) both before a Retry.

   Three consumers:
   - [check_translation]: the static obligation checker (rf-offset
     bounds and alignment, spill-frame bounds, promoted-register
     discipline and writeback coverage — the latter subsuming the
     verifier's previous ad-hoc fixpoint, which now delegates here);
   - [simplify]: the O4 `absint-simplify` region pass (fold branches
     with known conditions, rewrite fully-known results to constants,
     drop redundant masks and extensions, strength-reduce divisions,
     and delete cross-block dead vreg definitions);
   - the engine's per-translation analysis hook, which runs the checker
     over every translation it produces when [analyze_translations] is
     set. *)

open Hir
module Bits = Dbt_util.Bits

(* --- the abstract value ---------------------------------------------------- *)

(* Invariants of [V] (established by [make]):
   - zeros land ones = 0
   - ones <=u lo <=u hi <=u lognot zeros (all comparisons unsigned) *)
type av = { zeros : int64; ones : int64; lo : int64; hi : int64 }
type value = Bot | V of av

let umin a b = if Bits.ule a b then a else b
let umax a b = if Bits.ule a b then b else a

(* Number of significant bits of an unsigned value. *)
let sigbits v = 64 - Bits.clz v

let make zeros ones lo hi =
  if Int64.logand zeros ones <> 0L then Bot
  else begin
    (* Mutual refinement of the two halves, to a fixed point: interval
       bounds clamp to what the bits allow, and the interval's high
       bound forces leading known-zeros. *)
    let zeros = ref zeros and lo = ref (umax lo ones) and hi = ref (umin hi (Int64.lognot zeros)) in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let z = Int64.lognot (Bits.mask (sigbits !hi)) in
      if Int64.logand z (Int64.lognot !zeros) <> 0L then begin
        zeros := Int64.logor !zeros z;
        continue_ := true
      end;
      let hi' = umin !hi (Int64.lognot !zeros) in
      if hi' <> !hi then begin
        hi := hi';
        continue_ := true
      end
    done;
    if Int64.logand !zeros ones <> 0L then Bot
    else if Bits.ult !hi !lo then Bot
    else V { zeros = !zeros; ones; lo = !lo; hi = !hi }
  end

let bot = Bot
let top = make 0L 0L 0L (-1L)
let const c = make (Int64.lognot c) c c c
let range lo hi = make 0L 0L lo hi
let of_width w = if w >= 64 then top else if w <= 0 then const 0L else range 0L (Bits.mask w)
let is_bot v = v = Bot
let is_top v = v = top

let is_const = function
  | Bot -> None
  | V { lo; hi; _ } -> if lo = hi then Some lo else None

let contains v c =
  match v with
  | Bot -> false
  | V { zeros; ones; lo; hi } ->
    Int64.logand c zeros = 0L
    && Int64.logand c ones = ones
    && Bits.ule lo c && Bits.ule c hi

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | V a, V b ->
    make (Int64.logand a.zeros b.zeros) (Int64.logand a.ones b.ones) (umin a.lo b.lo)
      (umax a.hi b.hi)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
    make (Int64.logor a.zeros b.zeros) (Int64.logor a.ones b.ones) (umax a.lo b.lo)
      (umin a.hi b.hi)

(* Smallest all-ones value >=u v: the widening ladder. *)
let next_mask v = if v = 0L then 0L else Bits.mask (sigbits v)

(* [widen old new_] over-approximates [join old new_] and guarantees
   convergence: the interval's hi climbs the 2^k-1 ladder and lo drops
   straight to 0, while the known-bits half just intersects (finite
   height, no widening needed). *)
let widen a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | V a, V b ->
    let lo = if Bits.ult b.lo a.lo then 0L else a.lo in
    let hi = if Bits.ult a.hi b.hi then next_mask b.hi else a.hi in
    make (Int64.logand a.zeros b.zeros) (Int64.logand a.ones b.ones) lo hi

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | V a, V b ->
    Int64.logand b.zeros (Int64.lognot a.zeros) = 0L
    && Int64.logand b.ones (Int64.lognot a.ones) = 0L
    && Bits.ule b.lo a.lo && Bits.ule a.hi b.hi

let value_to_string = function
  | Bot -> "bot"
  | V { zeros; ones; lo; hi } ->
    if lo = hi then Printf.sprintf "{%Lu}" lo
    else
      Printf.sprintf "[%Lu,%Lu]%s" lo hi
        (if zeros = Int64.lognot (Bits.mask (sigbits hi)) && ones = 0L then ""
         else Printf.sprintf " bits(z=%Lx,o=%Lx)" zeros ones)

(* --- value transfer functions ---------------------------------------------- *)

let bool_unknown = make (Int64.lognot 1L) 0L 0L 1L
let of_bool b = const (if b then 1L else 0L)

(* Decide a comparison from the interval/bits halves; [None] = unknown.
   Unsigned conditions decide from the interval directly; the signed
   ones only when both operands are provably non-negative (bit 63
   known-zero), where the orders coincide. *)
let decide_cond (c : cond) a b =
  match (a, b) with
  | Bot, _ | _, Bot -> None
  | V va, V vb -> (
    let disjoint =
      Bits.ult va.hi vb.lo || Bits.ult vb.hi va.lo
      || Int64.logand va.ones vb.zeros <> 0L
      || Int64.logand va.zeros vb.ones <> 0L
    in
    let nonneg v = Bits.bit v.zeros 63 in
    let signed_ok = nonneg va && nonneg vb in
    let ult () = if Bits.ult va.hi vb.lo then Some true else if Bits.ule vb.hi va.lo then Some false else None in
    let ule () = if Bits.ule va.hi vb.lo then Some true else if Bits.ult vb.hi va.lo then Some false else None in
    let ugt () = if Bits.ult vb.hi va.lo then Some true else if Bits.ule va.hi vb.lo then Some false else None in
    let uge () = if Bits.ule vb.hi va.lo then Some true else if Bits.ult va.hi vb.lo then Some false else None in
    match c with
    | Ceq -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> Some (x = y)
      | _ -> if disjoint then Some false else None)
    | Cne -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> Some (x <> y)
      | _ -> if disjoint then Some true else None)
    | Cult -> ult ()
    | Cule -> ule ()
    | Cugt -> ugt ()
    | Cuge -> uge ()
    | Cslt -> if signed_ok then ult () else None
    | Csle -> if signed_ok then ule () else None
    | Csgt -> if signed_ok then ugt () else None
    | Csge -> if signed_ok then uge () else None)

(* ALU transfer, matching Exec exactly: shift amounts mask to 6 bits. *)
let alu (op : aluop) a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V va, V vb -> (
    match (is_const a, is_const b) with
    | Some x, Some y ->
      const
        (match op with
        | Aadd -> Int64.add x y
        | Asub -> Int64.sub x y
        | Aand -> Int64.logand x y
        | Aor -> Int64.logor x y
        | Axor -> Int64.logxor x y
        | Ashl -> Bits.shl x (Int64.to_int (Int64.logand y 63L))
        | Ashr -> Bits.shr x (Int64.to_int (Int64.logand y 63L))
        | Asar -> Bits.sar x (Int64.to_int (Int64.logand y 63L))
        | Amul -> Int64.mul x y)
    | _ -> (
      match op with
      | Aadd ->
        let lo = Int64.add va.lo vb.lo and hi = Int64.add va.hi vb.hi in
        if Bits.ult lo va.lo || Bits.ult hi va.hi then top else range lo hi
      | Asub ->
        if Bits.ule vb.hi va.lo then range (Int64.sub va.lo vb.hi) (Int64.sub va.hi vb.lo)
        else top
      | Aand ->
        make (Int64.logor va.zeros vb.zeros) (Int64.logand va.ones vb.ones) 0L
          (umin va.hi vb.hi)
      | Aor ->
        make (Int64.logand va.zeros vb.zeros) (Int64.logor va.ones vb.ones)
          (umax va.lo vb.lo)
          (Bits.mask (max (sigbits va.hi) (sigbits vb.hi)))
      | Axor ->
        make
          (Int64.logor (Int64.logand va.zeros vb.zeros) (Int64.logand va.ones vb.ones))
          (Int64.logor (Int64.logand va.zeros vb.ones) (Int64.logand va.ones vb.zeros))
          0L
          (Bits.mask (max (sigbits va.hi) (sigbits vb.hi)))
      | Ashl -> (
        match is_const b with
        | Some k ->
          let k = Int64.to_int (Int64.logand k 63L) in
          let zeros = Int64.logor (Int64.shift_left va.zeros k) (Bits.mask k) in
          let ones = Int64.shift_left va.ones k in
          if va.hi = 0L || sigbits va.hi + k <= 64 then
            make zeros ones (Bits.shl va.lo k) (Bits.shl va.hi k)
          else make zeros ones 0L (-1L)
        | None -> top)
      | Ashr -> (
        match is_const b with
        | Some k ->
          let k = Int64.to_int (Int64.logand k 63L) in
          let zeros =
            Int64.logor (Bits.shr va.zeros k)
              (if k = 0 then 0L else Int64.shift_left (Bits.mask k) (64 - k))
          in
          make zeros (Bits.shr va.ones k) (Bits.shr va.lo k) (Bits.shr va.hi k)
        | None ->
          (* Any logical right shift shrinks the value unsignedly. *)
          range 0L va.hi)
      | Asar -> (
        match is_const b with
        | Some k when Bits.bit va.zeros 63 ->
          (* Provably non-negative: arithmetic = logical shift. *)
          let k = Int64.to_int (Int64.logand k 63L) in
          let zeros =
            Int64.logor (Bits.shr va.zeros k)
              (if k = 0 then 0L else Int64.shift_left (Bits.mask k) (64 - k))
          in
          make zeros (Bits.shr va.ones k) (Bits.shr va.lo k) (Bits.shr va.hi k)
        | _ when Bits.bit va.zeros 63 -> range 0L va.hi
        | _ -> top)
      | Amul ->
        if Bits.ule va.hi 0xFFFFFFFFL && Bits.ule vb.hi 0xFFFFFFFFL then
          range (Int64.mul va.lo vb.lo) (Int64.mul va.hi vb.hi)
        else top))

let mulhi ~signed a b =
  match (is_const a, is_const b) with
  | Some x, Some y ->
    let hi, _ = Softfloat.Sf_core.mul64_wide x y in
    let hi = if signed && x < 0L then Int64.sub hi y else hi in
    let hi = if signed && y < 0L then Int64.sub hi x else hi in
    const hi
  | _ -> if is_bot a || is_bot b then Bot else top

let divrem ~signed ~want_rem a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V va, V vb -> (
    match (is_const a, is_const b) with
    | Some x, Some y ->
      (* ARM-style guarded divide: b = 0 yields rem = a, div = 0. *)
      const
        (if y = 0L then if want_rem then x else 0L
         else if signed then if want_rem then Int64.rem x y else Int64.div x y
         else if want_rem then Int64.unsigned_rem x y
         else Int64.unsigned_div x y)
    | _ ->
      if signed then top
      else if want_rem then
        (* urem a b <=u a always, and < b when b <> 0. *)
        range 0L (if contains b 0L then va.hi else umin va.hi (Int64.sub vb.hi 1L))
      else
        (* udiv a b <=u a for b >= 1; b = 0 yields 0. *)
        range 0L va.hi)

let cmov c a b =
  if is_bot c then Bot
  else
    match is_const c with
    | Some 0L -> b
    | Some _ -> a
    | None -> if not (contains c 0L) then a else join a b

(* Zero/sign extension of the low [bits] bits, matching
   Bits.zero_extend / Bits.sign_extend. *)
let normalize ~bits ~signed a =
  match a with
  | Bot -> Bot
  | V va ->
    if bits >= 64 then a
    else if not signed then begin
      let m = Bits.mask bits in
      if Bits.ule va.hi m then a
      else make (Int64.logor va.zeros (Int64.lognot m)) (Int64.logand va.ones m) 0L m
    end
    else begin
      let m = Bits.mask bits in
      if Bits.bit va.zeros (bits - 1) then begin
        (* Sign bit known clear: sext = zext of the low bits. *)
        if Bits.ule va.hi (Bits.mask (bits - 1)) then a
        else
          make
            (Int64.logor (Int64.logand va.zeros m) (Int64.lognot m))
            (Int64.logand va.ones m) 0L
            (Bits.mask (bits - 1))
      end
      else if Bits.bit va.ones (bits - 1) then
        (* Sign bit known set: the high bits all become ones. *)
        make (Int64.logand va.zeros m)
          (Int64.logor (Int64.logand va.ones m) (Int64.lognot m))
          0L (-1L)
      else
        make
          (Int64.logand va.zeros (Bits.mask (bits - 1)))
          (Int64.logand va.ones (Bits.mask (bits - 1)))
          0L (-1L)
    end

let neg a =
  match is_const a with
  | Some x -> const (Int64.neg x)
  | None -> if is_bot a then Bot else top

let not_ a =
  match a with
  | Bot -> Bot
  | V va -> make va.ones va.zeros (Int64.lognot va.hi) (Int64.lognot va.lo)

let bit1 (op : bit1op) a =
  match is_const a with
  | Some v ->
    const
      (match op with
      | Bclz32 -> Int64.of_int (Bits.clz ~width:32 (Bits.zero_extend v ~width:32))
      | Bclz64 -> Int64.of_int (Bits.clz v)
      | Bpopcnt -> Int64.of_int (Bits.popcount v)
      | Bswap16 -> Bits.byte_swap v ~width:16
      | Bswap32 -> Bits.byte_swap (Bits.zero_extend v ~width:32) ~width:32
      | Bswap64 -> Bits.byte_swap v ~width:64
      | Brbit32 -> Bits.bit_reverse (Bits.zero_extend v ~width:32) ~width:32
      | Brbit64 -> Bits.bit_reverse v ~width:64)
  | None ->
    if is_bot a then Bot
    else (
      match op with
      | Bclz32 -> range 0L 32L
      | Bclz64 -> range 0L 64L
      | Bpopcnt -> range 0L 64L
      | Bswap16 -> of_width 16
      | Bswap32 | Brbit32 -> of_width 32
      | Bswap64 | Brbit64 -> top)

let bit2 (op : bit2op) a b =
  match (is_const a, is_const b) with
  | Some x, Some y ->
    const
      (match op with
      | Bror32 ->
        Bits.rotate_right (Bits.zero_extend x ~width:32) (Int64.to_int (Int64.logand y 31L)) ~width:32
      | Bror64 -> Bits.rotate_right x (Int64.to_int (Int64.logand y 63L)) ~width:64)
  | _ ->
    if is_bot a || is_bot b then Bot
    else (match op with Bror32 -> of_width 32 | Bror64 -> top)

(* NZCV nibbles.  Fcmp produces one of {lt=8, eq=6, gt=2, unordered=3};
   Flags_logic sets N|Z only (mutually exclusive: {0, 4, 8}). *)
let fcmp_value = make (Int64.lognot 15L) 0L 2L 8L
let flags_add_value = make (Int64.lognot 15L) 0L 0L 15L
let flags_logic_value = make (Int64.lognot 12L) 0L 0L 8L
let setcc (c : cond) a b =
  match decide_cond c a b with Some r -> of_bool r | None -> bool_unknown

(* --- abstract state -------------------------------------------------------- *)

module Imap = Map.Make (Int)

(* Absent entries are implicitly top, so joins only keep keys known on
   both sides and havocs are deletions. *)
type state = {
  s_vregs : value Imap.t;
  s_pregs : value Imap.t;
  s_slots : value Imap.t;
  s_rf : value Imap.t; (* register-file qwords, by byte offset *)
  s_pc : value;
}

let state_top =
  { s_vregs = Imap.empty; s_pregs = Imap.empty; s_slots = Imap.empty; s_rf = Imap.empty; s_pc = top }

let map_combine f a b =
  Imap.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y ->
        let v = f x y in
        if is_top v then None else Some v
      | _ -> None)
    a b

let state_join a b =
  {
    s_vregs = map_combine join a.s_vregs b.s_vregs;
    s_pregs = map_combine join a.s_pregs b.s_pregs;
    s_slots = map_combine join a.s_slots b.s_slots;
    s_rf = map_combine join a.s_rf b.s_rf;
    s_pc = join a.s_pc b.s_pc;
  }

let state_widen a b =
  {
    s_vregs = map_combine widen a.s_vregs b.s_vregs;
    s_pregs = map_combine widen a.s_pregs b.s_pregs;
    s_slots = map_combine widen a.s_slots b.s_slots;
    s_rf = map_combine widen a.s_rf b.s_rf;
    s_pc = widen a.s_pc b.s_pc;
  }

let state_equal a b =
  Imap.equal ( = ) a.s_vregs b.s_vregs
  && Imap.equal ( = ) a.s_pregs b.s_pregs
  && Imap.equal ( = ) a.s_slots b.s_slots
  && Imap.equal ( = ) a.s_rf b.s_rf
  && a.s_pc = b.s_pc

let read (s : state) (o : operand) : value =
  let get m k = match Imap.find_opt k m with Some v -> v | None -> top in
  match o with
  | Imm c -> const c
  | Vreg v -> get s.s_vregs v
  | Preg p -> get s.s_pregs p
  | Slot k -> get s.s_slots k

let write (s : state) (o : operand) (v : value) : state =
  let set m k = if is_top v then Imap.remove k m else Imap.add k v m in
  match o with
  | Vreg r -> { s with s_vregs = set s.s_vregs r }
  | Preg r -> { s with s_pregs = set s.s_pregs r }
  | Slot k -> { s with s_slots = set s.s_slots k }
  | Imm _ -> s

let rf_read (s : state) off = match Imap.find_opt off s.s_rf with Some v -> v | None -> top

(* An 8-byte store at [off] overwrites every qword entry it overlaps;
   only an exactly-aligned entry keeps a fact. *)
let rf_write (s : state) off v =
  let rf = Imap.filter (fun o _ -> o <= off - 8 || o >= off + 8) s.s_rf in
  { s with s_rf = (if is_top v then rf else Imap.add off v rf) }

(* A faulting access hands control to the fault handler, which observes
   the register file and PC and — through the guest's own abort path —
   may rewrite both before a Retry resumes the same instruction. *)
let havoc_fault (s : state) = { s with s_rf = Imap.empty; s_pc = top }

(* Reserved host registers (spill scratch, AS tag, poison flag, rf base)
   may be rewritten by any traced helper; allocatable registers and
   vregs are helper-invariant (the same model Symexec validates). *)
let havoc_reserved_pregs (s : state) =
  { s with s_pregs = Imap.filter (fun p _ -> p < Regalloc.num_allocatable) s.s_pregs }

let transfer ~(classify : int -> Effects.helper_kind) (s : state) (ins : instr) : state =
  match ins with
  | Mov (d, src) -> write s d (read s src)
  | Alu (op, d, a, b) -> write s d (alu op (read s a) (read s b))
  | Mulhi (signed, d, a, b) -> write s d (mulhi ~signed (read s a) (read s b))
  | Divrem (signed, want_rem, d, a, b) ->
    write s d (divrem ~signed ~want_rem (read s a) (read s b))
  | Setcc (c, d, a, b) -> write s d (setcc c (read s a) (read s b))
  | Cmov (d, c, a, b) -> write s d (cmov (read s c) (read s a) (read s b))
  | Ext (signed, bits, d, src) -> write s d (normalize ~bits ~signed (read s src))
  | Neg (d, src) -> write s d (neg (read s src))
  | Not (d, src) -> write s d (not_ (read s src))
  | Bit1 (op, d, src) -> write s d (bit1 op (read s src))
  | Bit2 (op, d, a, b) -> write s d (bit2 op (read s a) (read s b))
  | Fp2 (_, d, _, _) | Fp1 (_, d, _) -> write s d top
  | Fcmp_flags (_, d, _, _) -> write s d fcmp_value
  | Flags_add (_, d, _, _, _) -> write s d flags_add_value
  | Flags_logic (_, d, _) -> write s d flags_logic_value
  | Ldrf (d, off) -> write s d (rf_read s off)
  | Strf (off, src) -> rf_write s off (read s src)
  | Load_pc d -> write s d s.s_pc
  | Store_pc src -> { s with s_pc = read s src }
  | Inc_pc n -> { s with s_pc = alu Aadd s.s_pc (const (Int64.of_int n)) }
  | Mem_ld (_, d, _) -> write (havoc_fault s) d top
  | Mem_st _ -> havoc_fault s
  | Call (h, _, ret) ->
    let k = classify h in
    if k = Effects.C_pure then (match ret with Some d -> write s d top | None -> s)
    else begin
      let s = havoc_reserved_pregs s in
      let s = if k = Effects.C_clobber then { s with s_rf = Imap.empty; s_pc = top } else s in
      match ret with Some d -> write s d top | None -> s
    end
  | Label _ | Jmp _ | Br _ | Exit _ | Poll _ | Wbmap _ -> s

(* --- CFG fixpoint ---------------------------------------------------------- *)

let default_classify : int -> Effects.helper_kind = fun _ -> Effects.C_clobber

type facts = {
  f_instrs : instr array;
  f_cfg : Region.cfg;
  f_entry : state option array; (* per-block entry state; None = unreachable *)
  f_classify : int -> Effects.helper_kind;
}

(* Depth-first order and loop heads (targets of back edges). *)
let loop_heads (cfg : Region.cfg) =
  let nb = cfg.Region.c_nb in
  let visited = Array.make nb false and on_stack = Array.make nb false in
  let heads = Array.make nb false in
  let rec dfs b =
    visited.(b) <- true;
    on_stack.(b) <- true;
    List.iter
      (fun s -> if not visited.(s) then dfs s else if on_stack.(s) then heads.(s) <- true)
      (cfg.Region.c_succs b);
    on_stack.(b) <- false
  in
  if nb > 0 then dfs 0;
  heads

let flow_block ~classify (instrs : instr array) (cfg : Region.cfg) b (s : state) : state =
  let s = ref s in
  for idx = cfg.Region.c_starts.(b) to cfg.Region.c_block_end b - 1 do
    s := transfer ~classify !s instrs.(idx)
  done;
  !s

let analyze ?(classify = default_classify) ?(entry = state_top) (instrs : instr array) : facts =
  let cfg = Region.build_cfg instrs in
  let nb = cfg.Region.c_nb in
  let heads = loop_heads cfg in
  let in_s : state option array = Array.make nb None in
  if nb > 0 then in_s.(0) <- Some entry;
  let queued = Array.make nb false in
  let work = Queue.create () in
  if nb > 0 then begin
    Queue.add 0 work;
    queued.(0) <- true
  end;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    queued.(b) <- false;
    match in_s.(b) with
    | None -> ()
    | Some s ->
      let out = flow_block ~classify instrs cfg b s in
      List.iter
        (fun succ ->
          let merged =
            match in_s.(succ) with
            | None -> out
            | Some old -> if heads.(succ) then state_widen old out else state_join old out
          in
          let changed = match in_s.(succ) with None -> true | Some old -> not (state_equal old merged) in
          if changed then begin
            in_s.(succ) <- Some merged;
            if not queued.(succ) then begin
              queued.(succ) <- true;
              Queue.add succ work
            end
          end)
        (cfg.Region.c_succs b)
  done;
  { f_instrs = instrs; f_cfg = cfg; f_entry = in_s; f_classify = classify }

(* Walk every reachable instruction in [facts], calling [f idx state ins]
   with the abstract state immediately before the instruction. *)
let iter_facts (facts : facts) f =
  let cfg = facts.f_cfg in
  for b = 0 to cfg.Region.c_nb - 1 do
    match facts.f_entry.(b) with
    | None -> ()
    | Some s0 ->
      let s = ref s0 in
      for idx = cfg.Region.c_starts.(b) to cfg.Region.c_block_end b - 1 do
        f idx !s facts.f_instrs.(idx);
        s := transfer ~classify:facts.f_classify !s facts.f_instrs.(idx)
      done
  done

(* --- obligation checking --------------------------------------------------- *)

(* The register file is 8 KiB of qwords; an 8-byte access at [off] is
   in-bounds iff 0 <= off <= 8192 - 8, and the translators only emit
   naturally aligned slots. *)
let rf_bytes = 8192

type obligation =
  | Ob_rf_oob (* Ldrf/Strf/Wbmap offset outside the register file *)
  | Ob_rf_align (* register-file offset not 8-byte aligned *)
  | Ob_frame_oob (* spill-slot index outside the allocated frame *)
  | Ob_dirty_call (* helper call reachable with a dirty promoted vreg *)
  | Ob_wb_coverage (* escape reachable with an uncovered dirty vreg *)
  | Ob_stale_use (* use/writeback of a possibly-overtaken promoted vreg *)
  | Ob_wb_shape (* malformed writeback map *)

let obligation_name = function
  | Ob_rf_oob -> "rf-oob"
  | Ob_rf_align -> "rf-align"
  | Ob_frame_oob -> "frame-oob"
  | Ob_dirty_call -> "dirty-across-call"
  | Ob_wb_coverage -> "wb-coverage"
  | Ob_stale_use -> "stale-use"
  | Ob_wb_shape -> "wb-shape"

type finding = {
  f_index : int option; (* instruction index in the stream, if any *)
  f_class : obligation;
  f_msg : string;
}

let finding_to_string f =
  match f.f_index with
  | Some i -> Printf.sprintf "[%d] %s: %s" i (obligation_name f.f_class) f.f_msg
  | None -> Printf.sprintf "%s: %s" (obligation_name f.f_class) f.f_msg

module Is = Set.Make (Int)

(* Register-file bounds and alignment: offsets are static, so the facts
   are immediate — but stating them as checked obligations means the
   encoder's 8-byte rf accesses can never read or write outside the
   8 KiB file no matter what the translators emitted. *)
let check_rf_bounds (instrs : instr array) : finding list =
  let findings = ref [] in
  let add idx cls fmt =
    Printf.ksprintf (fun msg -> findings := { f_index = Some idx; f_class = cls; f_msg = msg } :: !findings) fmt
  in
  let check_off idx off =
    if off < 0 || off > rf_bytes - 8 then
      add idx Ob_rf_oob "register-file access at 0x%x outside the %d-byte file" off rf_bytes
    else if off land 7 <> 0 then
      add idx Ob_rf_align "register-file access at 0x%x is not 8-byte aligned" off
  in
  Array.iteri
    (fun idx ins ->
      match ins with
      | Ldrf (_, off) | Strf (off, _) -> check_off idx off
      | Wbmap m -> Array.iter (fun (_, off) -> check_off idx off) m
      | _ -> ())
    instrs;
  List.rev !findings

(* Spill-frame bounds on a post-allocation stream. *)
let check_frame ~n_slots (instrs : instr array) : finding list =
  let findings = ref [] in
  Array.iteri
    (fun idx ins ->
      ignore
        (map_operands
           (fun o ->
             (match o with
             | Slot s when s < 0 || s >= n_slots ->
               findings :=
                 {
                   f_index = Some idx;
                   f_class = Ob_frame_oob;
                   f_msg = Printf.sprintf "spill slot %d outside frame of %d slots" s n_slots;
                 }
                 :: !findings
             | _ -> ());
             o)
           ins))
    instrs;
  List.rev !findings

(* Promoted-register discipline: the forward may-analysis over dirty
   (vreg newer than its rf slot) and stale (slot possibly newer than the
   vreg) promoted registers, run on the region CFG.  This subsumes the
   verifier's previous ad-hoc fixpoint — Verify.check_wb delegates here
   — and is classification-aware: helpers that cannot observe the
   register file (pure softfloat) are transparent to the discipline. *)
let check_wb ?(classify = default_classify) ~(promoted : (int * int) list)
    (instrs : instr array) : finding list =
  let findings = ref [] in
  let add ?index cls fmt =
    Printf.ksprintf (fun msg -> findings := { f_index = index; f_class = cls; f_msg = msg } :: !findings) fmt
  in
  let off_of_pv = Hashtbl.create 8 and pv_of_off = Hashtbl.create 8 in
  List.iter
    (fun (pv, off) ->
      Hashtbl.replace off_of_pv pv off;
      Hashtbl.replace pv_of_off off pv)
    promoted;
  let all_pvs = List.fold_left (fun s (pv, _) -> Is.add pv s) Is.empty promoted in
  (* The stream's writeback map, checked for well-formedness. *)
  let wb_covered = Hashtbl.create 8 in
  let n_maps = ref 0 in
  Array.iteri
    (fun idx ins ->
      match ins with
      | Wbmap m ->
        incr n_maps;
        if !n_maps > 1 then add ~index:idx Ob_wb_shape "multiple writeback maps in one stream";
        Array.iter
          (fun (op, off) ->
            match op with
            | Vreg pv when Hashtbl.find_opt off_of_pv pv = Some off ->
              Hashtbl.replace wb_covered pv ()
            | Vreg pv ->
              add ~index:idx Ob_wb_shape
                "stale writeback entry: %%v%d -> 0x%x does not match a promoted register" pv off
            | _ ->
              add ~index:idx Ob_wb_shape "writeback entry for non-virtual operand %s"
                (string_of_operand op))
          m
      | _ -> ())
    instrs;
  let covered pv = Hashtbl.mem wb_covered pv in
  if promoted = [] then List.rev !findings
  else begin
    let cfg = Region.build_cfg instrs in
    let nb = cfg.Region.c_nb in
    let in_dirty = Array.make nb Is.empty and in_stale = Array.make nb Is.empty in
    (* Transfer over one block; [report] enables finding emission on the
       final sweep (the fixpoint iterations stay silent). *)
    let flow ~report b (dirty0, stale0) =
      let dirty = ref dirty0 and stale = ref stale0 in
      let add ?index cls fmt =
        if report then add ?index cls fmt else Printf.ksprintf (fun _ -> ()) fmt
      in
      let check_escape idx what =
        Is.iter
          (fun pv ->
            if not (covered pv) then
              add ~index:idx Ob_wb_coverage
                "%s reachable while %%v%d (rf 0x%x) is dirty with no writeback entry" what pv
                (Hashtbl.find off_of_pv pv))
          !dirty;
        Is.iter
          (fun pv ->
            if covered pv then
              add ~index:idx Ob_stale_use
                "%s reachable while %%v%d (rf 0x%x) is stale: its writeback entry would clobber newer state"
                what pv (Hashtbl.find off_of_pv pv))
          !stale
      in
      for idx = cfg.Region.c_starts.(b) to cfg.Region.c_block_end b - 1 do
        let ins = instrs.(idx) in
        (* A use of a stale vreg reads a value the register file has
           since overtaken. *)
        List.iter
          (fun o ->
            match o with
            | Vreg v when Is.mem v !stale ->
              add ~index:idx Ob_stale_use "use of stale promoted register %%v%d" v
            | _ -> ())
          (match ins with Wbmap _ -> [] | _ -> sources ins);
        (match ins with
        | Ldrf (d, off) when Hashtbl.mem pv_of_off off ->
          let pv = Hashtbl.find pv_of_off off in
          (match d with
          | Vreg v when v = pv ->
            dirty := Is.remove pv !dirty;
            stale := Is.remove pv !stale
          | _ ->
            if Is.mem pv !dirty then
              add ~index:idx Ob_wb_coverage
                "read of promoted rf offset 0x%x bypasses dirty cache register %%v%d" off pv)
        | Strf (off, s) when Hashtbl.mem pv_of_off off ->
          let pv = Hashtbl.find pv_of_off off in
          (match s with
          | Vreg v when v = pv -> dirty := Is.remove pv !dirty
          | _ ->
            add ~index:idx Ob_wb_coverage
              "write to promoted rf offset 0x%x bypasses cache register %%v%d" off pv)
        | Call (h, _, _) when classify h <> Effects.C_pure ->
          Is.iter
            (fun pv ->
              add ~index:idx Ob_dirty_call "helper call reachable while %%v%d (rf 0x%x) is dirty"
                pv (Hashtbl.find off_of_pv pv))
            !dirty;
          (* Helpers may rewrite the register file: every cached value
             is stale until reloaded. *)
          dirty := Is.empty;
          stale := all_pvs
        | Call _ -> () (* pure: cannot observe or write the register file *)
        | Mem_ld _ | Mem_st _ -> check_escape idx "faulting memory access"
        | Poll _ -> check_escape idx "safepoint"
        | Exit _ -> check_escape idx "region exit"
        | _ -> ());
        (match ins with
        | Ldrf (Vreg v, off) when Hashtbl.find_opt off_of_pv v = Some off -> ()
        | _ -> (
          match dest ins with
          | Some (Vreg d) when Is.mem d all_pvs ->
            (* A redefinition makes the vreg the authoritative (dirty)
               value for its slot. *)
            dirty := Is.add d !dirty;
            stale := Is.remove d !stale
          | _ -> ()))
      done;
      (!dirty, !stale)
    in
    (* Worklist fixpoint with union join (may-dirty, may-stale). *)
    let work = Queue.create () in
    Queue.add 0 work;
    let queued = Array.make nb false in
    queued.(0) <- true;
    while not (Queue.is_empty work) do
      let b = Queue.pop work in
      queued.(b) <- false;
      let out_d, out_s = flow ~report:false b (in_dirty.(b), in_stale.(b)) in
      List.iter
        (fun s ->
          let d' = Is.union in_dirty.(s) out_d and s' = Is.union in_stale.(s) out_s in
          if not (Is.equal d' in_dirty.(s) && Is.equal s' in_stale.(s)) then begin
            in_dirty.(s) <- d';
            in_stale.(s) <- s';
            if not queued.(s) then begin
              queued.(s) <- true;
              Queue.add s work
            end
          end)
        (cfg.Region.c_succs b)
    done;
    for b = 0 to nb - 1 do
      ignore (flow ~report:true b (in_dirty.(b), in_stale.(b)))
    done;
    List.rev !findings
  end

(* The full obligation suite for one translation.  [promoted] enables
   the writeback discipline (tier-1 promoted regions); [n_slots] enables
   frame-bound checking (post-allocation streams). *)
let check_translation ?(classify = default_classify) ?(promoted = []) ?n_slots
    (instrs : instr array) : finding list =
  let rf = check_rf_bounds instrs in
  let frame = match n_slots with Some n -> check_frame ~n_slots:n instrs | None -> [] in
  let wb = check_wb ~classify ~promoted instrs in
  rf @ frame @ wb

(* --- the absint-simplify region pass --------------------------------------- *)

type simplify_stats = {
  mutable branches_folded : int; (* Br with a decided condition -> Jmp *)
  mutable consts_folded : int; (* pure results proved constant -> Mov Imm *)
  mutable masks_dropped : int; (* redundant And masks / extensions elided *)
  mutable divs_reduced : int; (* unsigned div/rem by 2^k strength-reduced *)
  mutable dead_deleted : int; (* cross-block dead vreg definitions removed *)
}

let empty_simplify_stats () =
  { branches_folded = 0; consts_folded = 0; masks_dropped = 0; divs_reduced = 0; dead_deleted = 0 }

let add_simplify_stats a b =
  {
    branches_folded = a.branches_folded + b.branches_folded;
    consts_folded = a.consts_folded + b.consts_folded;
    masks_dropped = a.masks_dropped + b.masks_dropped;
    divs_reduced = a.divs_reduced + b.divs_reduced;
    dead_deleted = a.dead_deleted + b.dead_deleted;
  }

let is_pow2 v = v <> 0L && Int64.logand v (Int64.sub v 1L) = 0L

(* Cross-block liveness DCE over vregs.  Deletable: pure instructions
   defining a vreg that is dead at the definition point — which catches
   values redefined before use across block boundaries, invisible to the
   allocator's never-used marking.  Vregs named by a writeback map are
   pinned live everywhere: the executor reads them at any fault point,
   not just where the stream mentions them. *)
let dead_code (instrs : instr array) stats : instr array =
  let pinned =
    Array.fold_left
      (fun acc ins ->
        match ins with
        | Wbmap m ->
          Array.fold_left
            (fun acc (o, _) -> match o with Vreg v -> Is.add v acc | _ -> acc)
            acc m
        | _ -> acc)
      Is.empty instrs
  in
  let cfg = Region.build_cfg instrs in
  let nb = cfg.Region.c_nb in
  (* Predecessor lists for the backward fixpoint. *)
  let preds = Array.make nb [] in
  for b = 0 to nb - 1 do
    List.iter (fun s -> preds.(s) <- b :: preds.(s)) (cfg.Region.c_succs b)
  done;
  let live_in = Array.make nb Is.empty in
  let vregs_of_sources ins =
    List.fold_left
      (fun acc o -> match o with Vreg v -> Is.add v acc | _ -> acc)
      Is.empty (sources ins)
  in
  let flow_back b live_out =
    let live = ref live_out in
    for idx = cfg.Region.c_block_end b - 1 downto cfg.Region.c_starts.(b) do
      let ins = instrs.(idx) in
      (match dest ins with
      | Some (Vreg d) when not (Is.mem d pinned) -> live := Is.remove d !live
      | _ -> ());
      live := Is.union !live (vregs_of_sources ins)
    done;
    !live
  in
  let work = Queue.create () in
  let queued = Array.make nb false in
  for b = 0 to nb - 1 do
    Queue.add b work;
    queued.(b) <- true
  done;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    queued.(b) <- false;
    let live_out =
      List.fold_left (fun acc s -> Is.union acc live_in.(s)) Is.empty (cfg.Region.c_succs b)
    in
    let l = flow_back b live_out in
    if not (Is.equal l live_in.(b)) then begin
      live_in.(b) <- l;
      List.iter
        (fun p ->
          if not queued.(p) then begin
            queued.(p) <- true;
            Queue.add p work
          end)
        preds.(b)
    end
  done;
  (* Final sweep: delete pure definitions of dead, unpinned vregs. *)
  let keep = Array.make (Array.length instrs) true in
  for b = 0 to nb - 1 do
    let live =
      ref
        (List.fold_left (fun acc s -> Is.union acc live_in.(s)) Is.empty (cfg.Region.c_succs b))
    in
    for idx = cfg.Region.c_block_end b - 1 downto cfg.Region.c_starts.(b) do
      let ins = instrs.(idx) in
      (match (pure ins, dest ins) with
      | true, Some (Vreg d) when (not (Is.mem d pinned)) && not (Is.mem d !live) ->
        keep.(idx) <- false;
        stats.dead_deleted <- stats.dead_deleted + 1
      | _ -> ());
      if keep.(idx) then begin
        (match dest ins with
        | Some (Vreg d) when not (Is.mem d pinned) -> live := Is.remove d !live
        | _ -> ());
        live := Is.union !live (vregs_of_sources ins)
      end
    done
  done;
  let out = ref [] in
  Array.iteri (fun idx ins -> if keep.(idx) then out := ins :: !out) instrs;
  Array.of_list (List.rev !out)

(* Unreachable-block pruning that preserves the writeback map, which by
   construction sits in a block no execution path reaches (after the
   last exit) but must survive: its operands keep the promoted
   registers live and the executor applies it at fault points. *)
let prune_unreachable_keep_wb (instrs : instr array) : instr array =
  let cfg = Region.build_cfg instrs in
  let nb = cfg.Region.c_nb in
  let reach = Array.make nb false in
  let rec dfs b =
    if not reach.(b) then begin
      reach.(b) <- true;
      List.iter dfs (cfg.Region.c_succs b)
    end
  in
  if nb > 0 then dfs 0;
  let out = ref [] in
  Array.iteri
    (fun idx ins ->
      match ins with
      | Wbmap _ -> out := ins :: !out
      | _ -> if reach.(cfg.Region.c_block_of_idx idx) then out := ins :: !out)
    instrs;
  Array.of_list (List.rev !out)

(* The O4 absint-simplify pass: runs on the flattened, promoted region
   stream before register allocation.  Rewrites are fact-driven and
   per-instruction, so the promoted-register discipline (rechecked by
   the engine after this pass) is preserved: constants replace sources,
   never the identity of a definition's destination. *)
let simplify ?(classify = default_classify) (instrs : instr array) :
    instr array * simplify_stats =
  let stats = empty_simplify_stats () in
  let facts = analyze ~classify instrs in
  let out = Array.copy instrs in
  iter_facts facts (fun idx s ins ->
      let folded =
        (* Constant folding first: a pure result the facts pin to a
           single value becomes an immediate move (Divrem-by-constant
           folds are the big win — an integer divide priced at tens of
           cycles becomes a register move). *)
        match ins with
        | Mov (_, Imm _) -> None
        | _ when pure ins -> (
          match dest ins with
          | Some d -> (
            match is_const (read (transfer ~classify s ins) d) with
            | Some c ->
              stats.consts_folded <- stats.consts_folded + 1;
              Some (Mov (d, Imm c))
            | _ -> None)
          | None -> None)
        | _ -> None
      in
      let reduced =
        match folded with
        | Some _ -> folded
        | None -> (
          match ins with
          | Br (c, t, f) -> (
            match is_const (read s c) with
            | Some 0L ->
              stats.branches_folded <- stats.branches_folded + 1;
              Some (Jmp f)
            | Some _ ->
              stats.branches_folded <- stats.branches_folded + 1;
              Some (Jmp t)
            | None ->
              if not (contains (read s c) 0L) then begin
                stats.branches_folded <- stats.branches_folded + 1;
                Some (Jmp t)
              end
              else None)
          | Alu (Aand, d, a, Imm m) when leq (read s a) (meet (read s a) (make (Int64.lognot m) 0L 0L m)) ->
            (* Every possibly-set bit of [a] survives the mask. *)
            stats.masks_dropped <- stats.masks_dropped + 1;
            Some (Mov (d, a))
          | Ext (false, bits, d, src)
            when bits < 64 && leq (read s src) (meet (read s src) (of_width bits)) ->
            stats.masks_dropped <- stats.masks_dropped + 1;
            Some (Mov (d, src))
          | Ext (true, bits, d, src)
            when bits < 64
                 && leq (read s src) (meet (read s src) (of_width (bits - 1))) ->
            (* Value provably fits below the sign bit: sext = identity. *)
            stats.masks_dropped <- stats.masks_dropped + 1;
            Some (Mov (d, src))
          | Divrem (false, false, d, a, Imm k) when is_pow2 k ->
            stats.divs_reduced <- stats.divs_reduced + 1;
            Some (Alu (Ashr, d, a, Imm (Int64.of_int (Bits.ctz k))))
          | Divrem (false, true, d, a, Imm k) when is_pow2 k ->
            stats.divs_reduced <- stats.divs_reduced + 1;
            Some (Alu (Aand, d, a, Imm (Int64.sub k 1L)))
          | _ -> None)
      in
      match reduced with Some ins' -> out.(idx) <- ins' | None -> ());
  let out = dead_code out stats in
  let out = prune_unreachable_keep_wb out in
  (out, stats)
