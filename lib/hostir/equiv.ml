(* Translation validation: symbolic equivalence of the optimized HostIR
   program against a reference emission.

   The reference is rebuilt from the same decode the engine translated:
   every guest instruction is lowered through Ssa.Gen into its own fresh
   Dag (no cross-instruction memoization, no region passes, no
   promotion), the per-instruction segments are concatenated with vreg
   and label relocation, and — for regions — the engine's member/dispatch
   skeleton is re-created verbatim around the member bodies.  Both
   programs are then executed by Symexec from a common initial symbolic
   state and their exit states compared path-by-path:

     - exit slot and symbolic PC;
     - the guest register file image, with promoted registers equated
       through the Wbmap writeback Symexec applies at every exit;
     - the ordered trace of memory stores (width, address term, stored
       value, guest PC at the store) — order is compared exactly, which
       is sound because the optimizer never deletes or reorders Mem_st;
     - the ordered trace of helper calls (helper id, arguments, guest PC
       and rf snapshot at the call).

   Any mismatch is reported as a named finding carrying both term trees;
   a finding is a real miscompile (or a validator incompleteness — see
   DESIGN.md "Translation validation" for the known ones). *)

open Hir
module S = Symexec

type item = {
  it_action : Ssa.Ir.action;
  it_field : string -> int64;
  it_inc_pc : int option;
}

(* What the engine knew about one region member at translation time:
   enough to re-create the emission skeleton. *)
type member_ref = {
  mb_va : int64;
  mb_items : item list;
  mb_undef : bool; (* decode failed / empty: member body is a bare Exit 0 *)
  mb_targets : int64 list; (* dispatch targets, in the engine's heat order *)
}

type finding = { f_name : string; f_detail : string }

type outcome = {
  ok : bool;
  complete : bool; (* both runs explored every path within the limits *)
  findings : finding list;
  o_paths : int;
  o_steps : int;
}

(* ------------------------------------------------------------------ *)
(* Reference emission                                                 *)
(* ------------------------------------------------------------------ *)

(* One segment per decoded instruction, each from a fresh Dag. *)
let segments ~config items =
  Ssa.Gen.translate_isolated
    ~fresh:(fun () ->
      let d = Dag.create config in
      (Dag.emitter d, fun () -> (Dag.finish d, Dag.vreg_count d, Dag.label_count d)))
    (List.map (fun it -> (it.it_action, it.it_field, it.it_inc_pc)) items)

(* Append a segment to [out] with its vregs and labels relocated above
   everything emitted so far; returns the new (vbase, lbase). *)
let emit_relocated out ~vbase ~lbase (instrs, nv, nl) =
  Array.iter
    (fun ins ->
      let ins = map_operands (function Vreg v -> Vreg (v + vbase) | o -> o) ins in
      out := map_labels (fun l -> l + lbase) ins :: !out)
    instrs;
  (vbase + nv, lbase + nl)

let block_reference ~config items : instr array =
  let out = ref [] in
  let vb = ref 0 and lb = ref 0 in
  List.iter
    (fun seg ->
      let vb', lb' = emit_relocated out ~vbase:!vb ~lbase:!lb seg in
      vb := vb';
      lb := lb')
    (segments ~config items);
  out := Exit 0 :: !out;
  Array.of_list (List.rev !out)

let region_reference ~config (members : member_ref list) : instr array =
  let msegs = List.map (fun m -> (m, segments ~config m.mb_items)) members in
  (* Body vregs/labels first; skeleton ids are allocated above them all. *)
  let body_v, body_l =
    List.fold_left
      (fun (v, l) (_, segs) ->
        List.fold_left (fun (v, l) (_, nv, nl) -> (v + nv, l + nl)) (v, l) segs)
      (0, 0) msegs
  in
  let next_v = ref body_v and next_l = ref body_l in
  let fresh_l () =
    let l = !next_l in
    incr next_l;
    l
  in
  let fresh_v () =
    let v = !next_v in
    incr next_v;
    Vreg v
  in
  let entry = List.map (fun m -> (m.mb_va, fresh_l ())) members in
  let entry_of va = List.assoc_opt va entry in
  let out = ref [] in
  let push i = out := i :: !out in
  let vb = ref 0 and lb = ref 0 in
  List.iteri
    (fun mi (m, segs) ->
      push (Label (List.assoc m.mb_va entry));
      push (Poll 0);
      if m.mb_undef || segs = [] then push (Exit 0)
      else begin
        List.iter
          (fun seg ->
            let vb', lb' = emit_relocated out ~vbase:!vb ~lbase:!lb seg in
            vb := vb';
            lb := lb')
          segs;
        (* the engine's member/dispatch seam: a jump into the dispatch
           chunk, then a PC compare per in-region target in heat order *)
        let l_d = fresh_l () in
        push (Jmp l_d);
        push (Label l_d);
        let targets =
          List.filter_map (fun va -> Option.map (fun l -> (va, l)) (entry_of va)) m.mb_targets
        in
        let pc = fresh_v () in
        if targets <> [] then push (Load_pc pc);
        List.iter
          (fun (va_t, lt) ->
            let c = fresh_v () in
            push (Setcc (Ceq, c, pc, Imm va_t));
            let l_next = fresh_l () in
            push (Br (c, lt, l_next));
            push (Label l_next))
          targets;
        push (Exit (mi + 1))
      end)
    msegs;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-run timing/size diagnostics for debugging validator cost
   (EQUIV_DEBUG=1); output goes to stderr. *)
let debug = lazy (Sys.getenv_opt "EQUIV_DEBUG" <> None)

let lits_str lits =
  String.concat ", "
    (List.map (fun (t, b) -> Printf.sprintf "%s=%b" (S.to_string t) b) lits)

let pair_str a b = Printf.sprintf "optimized:  %s\n  reference:  %s" a b

let check ?(limits = S.default_limits) ?classify ?(assume_as_hit = true) ~init_pc
    ~(opt : instr array) ~(reference : instr array) () : outcome =
  let run what prog =
    let t0 = Sys.time () in
    let r = S.run ~limits ?classify ~assume_as_hit ~init_pc prog in
    if Lazy.force debug then
      Printf.eprintf "equiv: %s %d instrs: steps=%d paths=%d exits=%d complete=%b (%.2fs cpu)\n%!"
        what (Array.length prog) r.S.o_steps r.S.o_paths (List.length r.S.exits) r.S.complete
        (Sys.time () -. t0);
    r
  in
  let ro = run "optimized" opt in
  let rr = run "reference" reference in
  let both_complete = ro.S.complete && rr.S.complete in
  let findings = ref [] in
  let add name detail = findings := { f_name = name; f_detail = detail } :: !findings in
  let addt name what a b = add name (Printf.sprintf "%s\n  %s" what (pair_str a b)) in
  let cmp_terms name what ta tb =
    if ta <> tb then addt name what (S.to_string ta) (S.to_string tb)
  in
  let cmp_rf name what la lb =
    let rec go la lb =
      match (la, lb) with
      | [], [] -> ()
      | (o, t) :: tla, (o', t') :: tlb when o = o' ->
        cmp_terms name (Printf.sprintf "%s rf[0x%x]" what o) t t';
        go tla tlb
      | (o, t) :: tla, ((o', _) :: _ as lb) when o < o' ->
        addt name (Printf.sprintf "%s rf[0x%x]" what o) (S.to_string t) "<initial>";
        go tla lb
      | (o, t) :: tla, [] ->
        addt name (Printf.sprintf "%s rf[0x%x]" what o) (S.to_string t) "<initial>";
        go tla []
      | la, (o', t') :: tlb ->
        addt name (Printf.sprintf "%s rf[0x%x]" what o') "<initial>" (S.to_string t');
        go la tlb
    in
    go la lb
  in
  let cmp_event ctx i (a : S.event) (b : S.event) =
    let what field = Printf.sprintf "%s, trace event %d: %s" ctx i field in
    match (a, b) with
    | ( S.E_store { s_width = wa; s_addr = aa; s_value = va; s_pc = pa },
        S.E_store { s_width = wb; s_addr = ab; s_value = vb; s_pc = pb } ) ->
      if wa <> wb then addt "store-width" (what "store width") (string_of_int wa) (string_of_int wb);
      cmp_terms "store-addr" (what "store address") aa ab;
      cmp_terms "store-value" (what "stored value") va vb;
      cmp_terms "store-pc" (what "guest PC at store") pa pb
    | ( S.E_call { c_helper = ha; c_kind = _; c_args = aa; c_pc = pa; c_rf = fa; c_epoch = ea },
        S.E_call { c_helper = hb; c_kind = _; c_args = ab; c_pc = pb; c_rf = fb; c_epoch = eb } ) ->
      if ha <> hb then addt "call-helper" (what "helper id") (string_of_int ha) (string_of_int hb);
      if List.length aa <> List.length ab then
        addt "call-args" (what "argument count")
          (string_of_int (List.length aa))
          (string_of_int (List.length ab))
      else
        List.iteri
          (fun k (ta, tb) -> cmp_terms "call-args" (what (Printf.sprintf "argument %d" k)) ta tb)
          (List.combine aa ab);
      cmp_terms "call-pc" (what "guest PC at call") pa pb;
      if ea <> eb then addt "call-epoch" (what "rf epoch") (string_of_int ea) (string_of_int eb);
      cmp_rf "call-rf" (what "rf at call") fa fb
    | _ ->
      addt "trace-kind" (what "event kind")
        (match a with S.E_store _ -> "store" | S.E_call _ -> "call")
        (match b with S.E_store _ -> "store" | S.E_call _ -> "call")
  in
  let cmp_exit (o : S.exit_state) (r : S.exit_state) =
    let ctx = Printf.sprintf "path [%s]" (lits_str o.S.x_lits) in
    if o.S.x_slot <> r.S.x_slot || o.S.x_poll <> r.S.x_poll then
      addt "exit-slot"
        (Printf.sprintf "%s: exit slot" ctx)
        (Printf.sprintf "%d%s" o.S.x_slot (if o.S.x_poll then " (poll)" else ""))
        (Printf.sprintf "%d%s" r.S.x_slot (if r.S.x_poll then " (poll)" else ""));
    cmp_terms "pc-mismatch" (Printf.sprintf "%s: exit PC" ctx) o.S.x_pc r.S.x_pc;
    if o.S.x_epoch <> r.S.x_epoch then
      addt "rf-epoch"
        (Printf.sprintf "%s: rf epoch" ctx)
        (string_of_int o.S.x_epoch) (string_of_int r.S.x_epoch);
    cmp_rf "rf-mismatch" (Printf.sprintf "%s: exit" ctx) o.S.x_rf r.S.x_rf;
    let rec cmp_pregs la lb =
      match (la, lb) with
      | [], [] -> ()
      | (g, t) :: tla, (g', t') :: tlb when g = g' ->
        cmp_terms "preg-mismatch" (Printf.sprintf "%s: host r%d" ctx g) t t';
        cmp_pregs tla tlb
      | (g, t) :: tla, ((g', _) :: _ as lb) when g < g' ->
        addt "preg-mismatch" (Printf.sprintf "%s: host r%d" ctx g) (S.to_string t) "<initial>";
        cmp_pregs tla lb
      | (g, t) :: tla, [] ->
        addt "preg-mismatch" (Printf.sprintf "%s: host r%d" ctx g) (S.to_string t) "<initial>";
        cmp_pregs tla []
      | la, (g', t') :: tlb ->
        addt "preg-mismatch" (Printf.sprintf "%s: host r%d" ctx g') "<initial>" (S.to_string t');
        cmp_pregs la tlb
    in
    cmp_pregs o.S.x_pregs r.S.x_pregs;
    let no = List.length o.S.x_trace and nr = List.length r.S.x_trace in
    if no <> nr then
      addt "trace-length"
        (Printf.sprintf "%s: memory/call trace length" ctx)
        (string_of_int no) (string_of_int nr)
    else List.iteri (fun i (a, b) -> cmp_event ctx i a b) (List.combine o.S.x_trace r.S.x_trace)
  in
  (* Exit states are matched by their sorted path condition: two programs
     that agree fork on the same normalized terms, so equal paths carry
     equal literal sets.  Unmatched paths are findings only when both
     runs were complete (a bounded run legitimately misses paths). *)
  let key (x : S.exit_state) = x.S.x_lits in
  let sorted ex = List.sort (fun a b -> compare (key a) (key b)) ex in
  let unmatched side (x : S.exit_state) =
    if both_complete then
      add "exit-unmatched"
        (Printf.sprintf "%s-only exit path (slot %d) under condition [%s]" side x.S.x_slot
           (lits_str x.S.x_lits))
  in
  let rec walk lo lr =
    match (lo, lr) with
    | [], [] -> ()
    | o :: tlo, [] ->
      unmatched "optimized" o;
      walk tlo []
    | [], r :: tlr ->
      unmatched "reference" r;
      walk [] tlr
    | o :: tlo, r :: tlr ->
      let c = compare (key o) (key r) in
      if c = 0 then begin
        cmp_exit o r;
        walk tlo tlr
      end
      else if c < 0 then begin
        unmatched "optimized" o;
        walk tlo lr
      end
      else begin
        unmatched "reference" r;
        walk lo tlr
      end
  in
  walk (sorted ro.S.exits) (sorted rr.S.exits);
  let findings = List.rev !findings in
  {
    ok = findings = [];
    complete = both_complete;
    findings;
    o_paths = ro.S.o_paths + rr.S.o_paths;
    o_steps = ro.S.o_steps + rr.S.o_steps;
  }

(* Convenience wrappers tying the oracle to the comparison. *)

let check_block ?limits ?classify ?assume_as_hit ~config ~init_pc ~opt items : outcome =
  check ?limits ?classify ?assume_as_hit ~init_pc ~opt
    ~reference:(block_reference ~config items) ()

let check_region ?limits ?classify ?assume_as_hit ~config ~init_pc ~opt members : outcome =
  check ?limits ?classify ?assume_as_hit ~init_pc ~opt
    ~reference:(region_reference ~config members) ()
