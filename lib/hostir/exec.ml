(* Execution of encoded host machine code against the HVM.

   Decoded programs (Encode.program) are interpreted with per-instruction
   cycle charging from Hvm.Cost.  Host page faults raised by the MMU are
   delivered to the engine-installed fault handler; [Retry] re-executes
   the faulting instruction once the handler has populated the host page
   tables, [Mmio_*] completes the access by device emulation, and guest
   exceptions simply propagate as OCaml exceptions to the engine's run
   loop. *)

open Hir
module Machine = Hvm.Machine
module Cost = Hvm.Cost

type fault_response =
  | Retry
  | Mmio_value of int64 (* a load serviced by device emulation *)
  | Mmio_done (* a store serviced by device emulation *)

type ctx = {
  machine : Machine.t;
  regfile : Bytes.t; (* guest register file (lives in HVM memory space) *)
  mutable pc : int64; (* the dedicated guest-PC host register (r15) *)
  helpers : helper array;
  fault_handler : ctx -> Machine.access -> int64 -> bits:int -> value:int64 option -> fault_response;
  regs : int64 array; (* host GPRs *)
  mutable slots : int64 array; (* current translation frame *)
  (* region safepoint budgets, set by the engine before entering a
     tier-1 region translation; [Poll] exits when either is exhausted *)
  mutable poll_deadline : int; (* machine-cycle ceiling (run's max_cycles) *)
  mutable poll_budget : int; (* remaining block executions (run's max_blocks) *)
  (* Precise-state writeback map of the running translation ([Hir.Wbmap],
     installed from [Encode.program.wb_map] on entry): dirty promoted
     guest registers flushed to the register file before anything outside
     the translation can observe it — fault delivery, a [Poll] exit, an
     [Exit].  [||] for translations without promotion. *)
  mutable wb_map : (operand * int) array;
  (* statistics *)
  mutable instrs_executed : int;
  mutable rf_loads : int; (* dynamic register-file reads ([Ldrf]) *)
  mutable rf_stores : int; (* dynamic register-file writes ([Strf] + writebacks) *)
}

and helper = {
  fn : ctx -> int64 array -> int64;
  cost : int; (* charged in addition to the call overhead *)
}

let create ~machine ~helpers ~fault_handler =
  {
    machine;
    regfile = Bytes.make 8192 '\000';
    pc = 0L;
    helpers;
    fault_handler;
    regs = Array.make 16 0L;
    slots = [||];
    poll_deadline = max_int;
    poll_budget = max_int;
    wb_map = [||];
    instrs_executed = 0;
    rf_loads = 0;
    rf_stores = 0;
  }

let rf_read ctx off = Bytes.get_int64_le ctx.regfile off
let rf_write ctx off v = Bytes.set_int64_le ctx.regfile off v

(* Operand access; spill-slot traffic costs an extra L1 access. *)
let rd ctx = function
  | Preg r -> ctx.regs.(r)
  | Imm v -> v
  | Slot s ->
    Machine.charge ctx.machine 1;
    ctx.slots.(s)
  | Vreg _ -> invalid_arg "executor: virtual register"

let wr ctx o v =
  match o with
  | Preg r -> ctx.regs.(r) <- v
  | Slot s ->
    Machine.charge ctx.machine 1;
    ctx.slots.(s) <- v
  | Imm _ | Vreg _ -> invalid_arg "executor: bad destination"

module Bits = Dbt_util.Bits
open Softfloat

let flags = Sf_types.new_flags ()

let exec_fp2 op a b =
  match op with
  | Fadd64 -> F64.add flags a b
  | Fsub64 -> F64.sub flags a b
  | Fmul64 -> F64.mul flags a b
  | Fdiv64 -> F64.div flags a b
  | Fmin64 -> F64.min_ flags a b
  | Fmax64 -> F64.max_ flags a b
  | Fadd32 -> F32.add flags (Bits.zero_extend a ~width:32) (Bits.zero_extend b ~width:32)
  | Fsub32 -> F32.sub flags (Bits.zero_extend a ~width:32) (Bits.zero_extend b ~width:32)
  | Fmul32 -> F32.mul flags (Bits.zero_extend a ~width:32) (Bits.zero_extend b ~width:32)
  | Fdiv32 -> F32.div flags (Bits.zero_extend a ~width:32) (Bits.zero_extend b ~width:32)
  | Fmin32 -> F32.min_ flags (Bits.zero_extend a ~width:32) (Bits.zero_extend b ~width:32)
  | Fmax32 -> F32.max_ flags (Bits.zero_extend a ~width:32) (Bits.zero_extend b ~width:32)

(* The simulated host FPU: square root has x86 NaN-sign semantics (the
   engine emits the paper's inline fix-up); everything else follows the
   shared softfloat propagation rules. *)
let exec_fp1 op s =
  match op with
  | Fsqrt64 -> F64.sqrt ~style:Sf_types.X86_nan flags s
  | Fsqrt32 -> F32.sqrt ~style:Sf_types.X86_nan flags (Bits.zero_extend s ~width:32)
  | Fcvt_32_64 -> F32.to_f64 flags (Bits.zero_extend s ~width:32)
  | Fcvt_64_32 -> F64.to_f32 flags s
  | Fcvt_64_s64 -> F64.to_int64 flags s
  | Fcvt_64_u64 -> Sf_core.to_uint64 Sf_core.f64_fmt flags s
  | Fcvt_32_s32 -> (
    let v = F32.to_int64 flags (Bits.zero_extend s ~width:32) in
    let v = if v > 2147483647L then 2147483647L else if v < -2147483648L then -2147483648L else v in
    Bits.zero_extend v ~width:32)
  | Fcvt_s64_64 -> F64.of_int64 flags s
  | Fcvt_u64_64 -> F64.of_uint64 flags s
  | Fcvt_s32_32 -> F32.of_int64 flags (Bits.sign_extend s ~width:32)
  | Fcvt_s64_32 -> F32.of_int64 flags s

let fcmp_nzcv w a b =
  let c =
    if w = 64 then F64.compare_ flags a b
    else F32.compare_ flags (Bits.zero_extend a ~width:32) (Bits.zero_extend b ~width:32)
  in
  match c with
  | Sf_core.Cmp_lt -> 8L
  | Sf_core.Cmp_eq -> 6L
  | Sf_core.Cmp_gt -> 2L
  | Sf_core.Cmp_unordered -> 3L

let flags_nzcv ~width r c v =
  let n = if Bits.bit r (width - 1) then 8L else 0L in
  let z = if Bits.zero_extend r ~width = 0L then 4L else 0L in
  Int64.logor (Int64.logor n z) (Int64.logor (if c then 2L else 0L) (if v then 1L else 0L))

let cond_holds c a b =
  match c with
  | Ceq -> a = b
  | Cne -> a <> b
  | Cult -> Bits.ult a b
  | Cule -> Bits.ule a b
  | Cugt -> Bits.ult b a
  | Cuge -> Bits.ule b a
  | Cslt -> a < b
  | Csle -> a <= b
  | Csgt -> a > b
  | Csge -> a >= b

let instr_cost = function
  | Mov _ | Neg _ | Not _ | Bit1 _ | Bit2 _ | Setcc _ | Cmov _ | Ext _ -> Cost.mov
  | Alu (Amul, _, _, _) -> Cost.int_mul
  | Alu _ -> Cost.alu
  | Mulhi _ -> Cost.int_mul
  | Divrem _ -> Cost.int_div
  | Fp2 ((Fdiv64 | Fdiv32), _, _, _) -> Cost.fp_div
  | Fp2 _ -> Cost.fp
  | Fp1 ((Fsqrt64 | Fsqrt32), _, _) -> Cost.fp_sqrt
  | Fp1 _ -> Cost.fp
  | Fcmp_flags _ -> Cost.fp + 2
  | Flags_add _ -> 2
  | Flags_logic _ -> 1
  | Ldrf _ | Strf _ -> 1 (* register-file access: L1-resident, pipelined *)
  | Load_pc _ | Store_pc _ | Inc_pc _ -> Cost.mov
  | Mem_ld _ | Mem_st _ -> 0 (* charged inside the MMU model *)
  | Call _ -> Cost.helper_call_overhead
  | Jmp _ -> Cost.branch
  | Br _ -> Cost.branch
  | Exit _ -> 0
  (* never executed in sequence; each applied entry charges like a Strf *)
  | Wbmap _ -> 0
  (* free, like the run loop's own irq_pending check at block boundaries:
     a single host flag test folded into the dispatch branch *)
  | Poll _ -> 0
  | Label _ -> 0

(* Flush dirty promoted guest registers to the register file: the
   precise-state step before the world outside the translation (fault
   handler, engine dispatcher) reads it.  Each entry costs one cycle,
   like the [Strf] it stands in for (spilled entries charge their slot
   read on top, via [rd]). *)
let apply_wb ctx =
  let map = ctx.wb_map in
  for i = 0 to Array.length map - 1 do
    let o, off = map.(i) in
    Machine.charge ctx.machine 1;
    ctx.rf_stores <- ctx.rf_stores + 1;
    rf_write ctx off (rd ctx o)
  done

(* Run a decoded program; returns the chain-slot id of the exit taken. *)
let run (ctx : ctx) (p : Encode.program) : int =
  let m = ctx.machine in
  if Array.length ctx.slots < p.Encode.n_slots then ctx.slots <- Array.make p.Encode.n_slots 0L;
  ctx.wb_map <- p.Encode.wb_map;
  let code = p.Encode.code in
  let n = Array.length code in
  let idx = ref 0 in
  let result = ref (-1) in
  while !result < 0 && !idx < n do
    let i = code.(!idx) in
    Machine.charge m (instr_cost i);
    ctx.instrs_executed <- ctx.instrs_executed + 1;
    let next = ref (!idx + 1) in
    (try
       (match i with
       | Label _ -> ()
       | Mov (d, s) -> wr ctx d (rd ctx s)
       | Alu (op, d, a, b) ->
         let a = rd ctx a and b = rd ctx b in
         let v =
           match op with
           | Aadd -> Int64.add a b
           | Asub -> Int64.sub a b
           | Aand -> Int64.logand a b
           | Aor -> Int64.logor a b
           | Axor -> Int64.logxor a b
           | Ashl -> Bits.shl a (Int64.to_int (Int64.logand b 63L))
           | Ashr -> Bits.shr a (Int64.to_int (Int64.logand b 63L))
           | Asar -> Bits.sar a (Int64.to_int (Int64.logand b 63L))
           | Amul -> Int64.mul a b
         in
         wr ctx d v
       | Mulhi (signed, d, a, b) ->
         let a = rd ctx a and b = rd ctx b in
         let hi, _ = Sf_core.mul64_wide a b in
         let hi = if signed && a < 0L then Int64.sub hi b else hi in
         let hi = if signed && b < 0L then Int64.sub hi a else hi in
         wr ctx d hi
       | Divrem (signed, want_rem, d, a, b) ->
         let a = rd ctx a and b = rd ctx b in
         let v =
           if b = 0L then if want_rem then a else 0L
           else if signed then if want_rem then Int64.rem a b else Int64.div a b
           else if want_rem then Int64.unsigned_rem a b
           else Int64.unsigned_div a b
         in
         wr ctx d v
       | Setcc (c, d, a, b) -> wr ctx d (if cond_holds c (rd ctx a) (rd ctx b) then 1L else 0L)
       | Cmov (d, c, a, b) -> wr ctx d (if rd ctx c <> 0L then rd ctx a else rd ctx b)
       | Ext (signed, bits, d, s) ->
         let v = rd ctx s in
         wr ctx d (if signed then Bits.sign_extend v ~width:bits else Bits.zero_extend v ~width:bits)
       | Neg (d, s) -> wr ctx d (Int64.neg (rd ctx s))
       | Not (d, s) -> wr ctx d (Int64.lognot (rd ctx s))
       | Bit1 (op, d, s) ->
         let v = rd ctx s in
         let r =
           match op with
           | Bclz32 -> Int64.of_int (Bits.clz ~width:32 (Bits.zero_extend v ~width:32))
           | Bclz64 -> Int64.of_int (Bits.clz v)
           | Bpopcnt -> Int64.of_int (Bits.popcount v)
           | Bswap16 -> Bits.byte_swap v ~width:16
           | Bswap32 -> Bits.byte_swap (Bits.zero_extend v ~width:32) ~width:32
           | Bswap64 -> Bits.byte_swap v ~width:64
           | Brbit32 -> Bits.bit_reverse (Bits.zero_extend v ~width:32) ~width:32
           | Brbit64 -> Bits.bit_reverse v ~width:64
         in
         wr ctx d r
       | Bit2 (op, d, a, b) ->
         let a = rd ctx a and b = rd ctx b in
         let r =
           match op with
           | Bror32 ->
             Bits.rotate_right (Bits.zero_extend a ~width:32)
               (Int64.to_int (Int64.logand b 31L)) ~width:32
           | Bror64 -> Bits.rotate_right a (Int64.to_int (Int64.logand b 63L)) ~width:64
         in
         wr ctx d r
       | Fp2 (op, d, a, b) -> wr ctx d (exec_fp2 op (rd ctx a) (rd ctx b))
       | Fp1 (op, d, s) -> wr ctx d (exec_fp1 op (rd ctx s))
       | Fcmp_flags (w, d, a, b) -> wr ctx d (fcmp_nzcv w (rd ctx a) (rd ctx b))
       | Flags_add (w, d, a, b, c) ->
         let a = rd ctx a and b = rd ctx b and cin = rd ctx c in
         let r, carry, ovf = Bits.add_with_carry ~width:w a b (cin <> 0L) in
         wr ctx d (flags_nzcv ~width:w r carry ovf)
       | Flags_logic (w, d, s) ->
         let r = rd ctx s in
         wr ctx d (flags_nzcv ~width:w r false false)
       | Ldrf (d, off) ->
         ctx.rf_loads <- ctx.rf_loads + 1;
         wr ctx d (rf_read ctx off)
       | Strf (off, s) ->
         ctx.rf_stores <- ctx.rf_stores + 1;
         rf_write ctx off (rd ctx s)
       | Load_pc d -> wr ctx d ctx.pc
       | Store_pc s -> ctx.pc <- rd ctx s
       | Inc_pc n -> ctx.pc <- Int64.add ctx.pc (Int64.of_int n)
       | Mem_ld (w, d, a) -> wr ctx d (Machine.mem_read m ~bits:w (rd ctx a))
       | Mem_st (w, a, v) -> Machine.mem_write m ~bits:w (rd ctx a) (rd ctx v)
       | Call (h, args, ret) ->
         let helper = ctx.helpers.(h) in
         Machine.charge m helper.cost;
         let vals = Array.map (rd ctx) args in
         let r = helper.fn ctx vals in
         (match ret with Some dst -> wr ctx dst r | None -> ())
       | Jmp t -> next := t
       | Br (c, t, f) -> next := (if rd ctx c <> 0L then t else f)
       | Exit slot ->
         apply_wb ctx;
         result := slot
       | Poll slot ->
         if
           ctx.regs.(region_poison_preg) <> 0L
           || ctx.poll_budget <= 0
           || m.Machine.cycles >= ctx.poll_deadline
           || Machine.irq_pending m
         then begin
           apply_wb ctx;
           result := slot
         end
         else ctx.poll_budget <- ctx.poll_budget - 1
       | Wbmap _ -> () (* unreachable by construction: placed after the last exit *));
       idx := !next
     with Machine.Host_fault { va; access } -> (
       m.Machine.faults <- m.Machine.faults + 1;
       Machine.charge m Cost.fault_roundtrip;
       (* Precise state: the fault handler (and, through it, the guest's
          own abort handlers) reads the register file — flush dirty
          promoted registers before it looks. *)
       apply_wb ctx;
       let bits, value =
         match i with
         | Mem_ld (w, _, _) -> (w, None)
         | Mem_st (w, _, v) -> (w, Some (rd ctx v))
         | _ -> (0, None)
       in
       match ctx.fault_handler ctx access va ~bits ~value with
       | Retry -> () (* re-execute the same instruction *)
       | Mmio_value v -> (
         match i with
         | Mem_ld (_, d, _) ->
           wr ctx d v;
           idx := !idx + 1
         | _ -> invalid_arg "Mmio_value for a non-load")
       | Mmio_done -> idx := !idx + 1))
  done;
  if !result < 0 then invalid_arg "translation fell off the end without an exit";
  !result
