(** Region-scoped guest-register promotion and alias-aware memory
    redundancy elimination.

    Runs after the {!Region} passes and before register allocation, on
    the flattened instruction stream of a tier-1 region:

    - the hottest register-file byte offsets are cached in dedicated
      vregs for the region's whole lifetime, with helper calls as full
      write-back/reload barriers and a {!Hir.Wbmap} giving the executor
      a precise-state writeback map for faults, [Poll] exits and
      [Exit]s;
    - copy propagation cleans up the rewrite residue so promoted loads
      become genuinely free after dead-code marking;
    - store-to-load forwarding and redundant-load elimination remove
      guest memory accesses whose value is already in a host register,
      with conservative alias killing. *)

type stats = {
  promoted : int;  (** register-file offsets promoted to vregs *)
  wb_entries : int;  (** dirty promoted offsets in the writeback map *)
  loads_rewritten : int;  (** interior [Ldrf]s turned into moves *)
  stores_rewritten : int;  (** interior [Strf]s turned into moves *)
  copies_propagated : int;  (** source operands substituted by copy-prop *)
  rf_loads_forwarded : int;  (** [Ldrf]s satisfied by an earlier rf access *)
  loads_elided : int;  (** [Mem_ld]s satisfied by a previous load *)
  stores_forwarded : int;  (** [Mem_ld]s satisfied by a previous store *)
}

val empty_stats : stats
val add_stats : stats -> stats -> stats

(** [run ?max_regs ?classify instrs] rewrites a region stream; returns
    the new stream, the promotion list as [(vreg, register-file byte
    offset)] pairs, and the pass statistics.  [max_regs] (default 4)
    bounds the number of promoted offsets so register pressure stays
    below the host's allocatable set.  [classify] (default: every
    helper is a clobber) lets calls to helpers that cannot observe the
    register file ({!Effects.C_pure}) skip the write-back/reload
    barrier. *)
val run :
  ?max_regs:int ->
  ?classify:(int -> Effects.helper_kind) ->
  Hir.instr array ->
  Hir.instr array * (int * int) list * stats
