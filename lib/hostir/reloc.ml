(* Relocation-cleanliness analysis: the static proof that an encoded
   translation can be persisted and reused across boots and instances.

   The ROADMAP's AOT-cache item is blocked on exactly this property: a
   byte stream is relocatable iff nothing in it depends on where *this
   boot* happened to place things.  Concretely, over the encoded program
   (byte stream + decoded [Hir.instr] array) we require:

   - all inter-translation control transfers go through numbered chain /
     exit sites ([Exit]/[Poll] slots, re-bound by the installer) — no
     control path may leave the translation any other way;
   - no absolute host addresses baked into immediates (the simulated
     host reserves a virtual-address window for its own structures; a
     guest value can never legitimately land there);
   - helper references are by stable symbol id into the helper table
     ({!Effects.symbol_name}), never by table position outside it;
   - [Wbmap]/slot/frame references are translation-relative: frame slots
     within the translation's own frame, register-file offsets within
     the architectural file, host registers within the register file of
     the simulated host;
   - the encoding itself is deterministic — a persistent cache keyed by
     content is unsound if encoding isn't a pure function of its input,
     so a decoded program must re-encode to the identical bytes
     (canonical immediate widths, label-free byte stream) and a second
     encode of the same [Regalloc.result] must reproduce the stream.

   Each violated requirement is a named finding; a clean program gets a
   certificate: content hash, frame/site shape, the relocation table of
   chain/exit sites (byte offset -> slot) and the referenced helper
   symbols.  [lib/core/aotcache.ml] persists certified translations
   keyed by (content hash, MMU regime, opt config) and re-runs
   certification on load, rejecting anything flagged here. *)

open Hir

type finding_class =
  | Abs_host_addr (* absolute host address in an immediate *)
  | Unnumbered_exit (* control leaves without a numbered chain/exit site *)
  | Env_immediate (* environment-relative reference out of bounds *)
  | Nondet_encoding (* encoding is not a pure function of the program *)
  | Helper_by_addr (* helper reference outside the stable symbol table *)

let class_name = function
  | Abs_host_addr -> "abs-host-addr"
  | Unnumbered_exit -> "unnumbered-exit"
  | Env_immediate -> "env-immediate"
  | Nondet_encoding -> "nondet-encoding"
  | Helper_by_addr -> "helper-by-addr"

type finding = {
  f_class : finding_class;
  f_index : int; (* instruction index; -1 when not instruction-specific *)
  f_offset : int; (* byte offset into the encoded stream *)
  f_msg : string;
}

let finding_to_string f =
  Printf.sprintf "%s at instr %d (byte %d): %s" (class_name f.f_class) f.f_index f.f_offset
    f.f_msg

(* What the installer environment provides; everything a clean
   translation may reference relative to. *)
type env = {
  n_exits : int; (* highest numbered chain/exit slot the installer binds *)
  n_helpers : int; (* helper symbol table size *)
  n_slots : int; (* frame slots allocated for this translation *)
  rf_bytes : int; (* guest register file size in bytes *)
}

(* The simulated host parks its own structures (code cache, helper
   thunks, dispatcher) in a reserved VA window well above any canonical
   guest address, mirroring Captive's split-VA layout (paper Sec. 3.3):
   guest low-half VAs stay under 2^47 and high-half VAs have the top
   bits set, so no guest *address* can legitimately land in the window.
   The check applies to address positions (memory-access base operands)
   only — plain data immediates like INT64_MAX or large double bit
   patterns overlap the window numerically but pin nothing; a window
   value is a leaked host pointer exactly when it is dereferenced. *)
let host_window_lo = 0x7F00_0000_0000_0000L
let host_window_hi = 0x7FFF_FFFF_FFFF_FFFFL

let in_host_window v =
  Int64.unsigned_compare v host_window_lo >= 0
  && Int64.unsigned_compare v host_window_hi <= 0

(* Relocation table entry: a numbered site the installer re-binds when
   the translation is loaded into a different boot's cache. *)
type site_kind = S_exit | S_poll

type site = { s_kind : site_kind; s_index : int; s_offset : int; s_slot : int }

type certificate = {
  c_hash : int64; (* FNV-1a over the encoded bytes: the content key *)
  c_byte_size : int;
  c_n_slots : int;
  c_n_exits : int;
  c_sites : site array; (* the relocation table *)
  c_helpers : int list; (* stable helper symbol ids referenced *)
}

(* FNV-1a 64-bit content hash (same construction the MMU sanitizer uses
   for code-cache coherence). *)
let hash64 (b : bytes) : int64 =
  let h = ref 0xCBF2_9CE4_8422_2325L in
  for i = 0 to Bytes.length b - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Bytes.get_uint8 b i))) 0x1_0000_0001B3L
  done;
  !h

(* --- operand / control-transfer classification -------------------------------- *)

let analyze (env : env) (p : Encode.program) : finding list * site array * int list =
  let n = Array.length p.Encode.code in
  let findings = ref [] in
  let sites = ref [] in
  let helpers = ref [] in
  let add idx cls msg =
    let offset = if idx >= 0 && idx < n then p.Encode.offsets.(idx) else p.Encode.byte_size in
    findings := { f_class = cls; f_index = idx; f_offset = offset; f_msg = msg } :: !findings
  in
  let check_rf_off idx what off =
    if off < 0 || off + 8 > env.rf_bytes then
      add idx Env_immediate
        (Printf.sprintf "%s offset %d outside the %d-byte register file" what off env.rf_bytes)
    else if off land 7 <> 0 then
      add idx Env_immediate (Printf.sprintf "misaligned %s offset %d" what off)
  in
  let check_operand idx o =
    match o with
    | Preg r ->
      if r < 0 || r > 15 then
        add idx Env_immediate (Printf.sprintf "host register r%d outside the 16-register file" r)
    | Slot s ->
      if s >= env.n_slots then
        add idx Env_immediate
          (Printf.sprintf "frame slot %d outside the %d-slot translation frame" s env.n_slots)
    | Imm _ -> ()
    | Vreg v -> add idx Env_immediate (Printf.sprintf "unallocated vreg %%v%d" v)
  in
  let check_addr idx o =
    match o with
    | Imm v when in_host_window v ->
      add idx Abs_host_addr
        (Printf.sprintf "address immediate %#Lx inside the reserved host window" v)
    | _ -> ()
  in
  let check_slot idx slot =
    (* Slot 0 is the dispatcher bail, always bound; slots 1..n_exits are
       the numbered per-exit chain sites the installer re-binds. *)
    if slot < 0 || slot > env.n_exits then
      add idx Unnumbered_exit
        (Printf.sprintf "chain slot %d outside the %d numbered exit sites" slot env.n_exits)
  in
  Array.iteri
    (fun idx i ->
      (match i with
      | Ldrf (_, off) -> check_rf_off idx "register-file load" off
      | Strf (off, _) -> check_rf_off idx "register-file store" off
      | Mem_ld (_, _, a) -> check_addr idx a
      | Mem_st (_, a, _) -> check_addr idx a
      | Wbmap m -> Array.iter (fun (_, off) -> check_rf_off idx "writeback" off) m
      | Call (h, _, _) ->
        if h < 0 || h >= env.n_helpers then
          add idx Helper_by_addr
            (Printf.sprintf "helper reference %d outside the %d-entry symbol table" h
               env.n_helpers)
        else if not (List.mem h !helpers) then helpers := h :: !helpers
      | Exit slot ->
        check_slot idx slot;
        sites := { s_kind = S_exit; s_index = idx; s_offset = p.Encode.offsets.(idx); s_slot = slot }
                 :: !sites
      | Poll slot ->
        check_slot idx slot;
        sites := { s_kind = S_poll; s_index = idx; s_offset = p.Encode.offsets.(idx); s_slot = slot }
                 :: !sites
      | _ -> ());
      (match i with
      | Wbmap m -> Array.iter (fun (o, _) -> check_operand idx o) m
      | _ -> ());
      List.iter (check_operand idx) (sources i);
      match dest i with Some d -> check_operand idx d | None -> ())
    p.Encode.code;
  (* Control-transfer closure: every path reachable from entry must end
     at a numbered site.  Falling past the last instruction (or a jump
     target rewritten to [n] by the decoder) leaves the translation with
     no site for the installer to re-bind. *)
  let reachable = Array.make (n + 1) false in
  let work = ref [] in
  let push t =
    if t >= 0 && t <= n && not reachable.(t) then begin
      reachable.(t) <- true;
      work := t :: !work
    end
  in
  push 0;
  while !work <> [] do
    match !work with
    | [] -> ()
    | idx :: rest ->
      work := rest;
      if idx < n then (
        match p.Encode.code.(idx) with
        | Jmp t -> push t
        | Br (_, t, f) ->
          push t;
          push f
        | Exit _ -> ()
        | _ -> push (idx + 1))
  done;
  if reachable.(n) then
    add (n - 1) Unnumbered_exit "control can fall off the end of the translation";
  Array.iteri
    (fun idx r ->
      if r && idx < n then
        match p.Encode.code.(idx) with
        | Jmp t when t = n -> add idx Unnumbered_exit "jump past the end of the translation"
        | Br (_, t, f) when t = n || f = n ->
          add idx Unnumbered_exit "branch past the end of the translation"
        | _ -> ())
    reachable;
  (List.rev !findings, Array.of_list (List.rev !sites), List.sort compare !helpers)

(* --- determinism audits --------------------------------------------------------- *)

(* Index form -> label form: synthesize a label at every branch-target
   index (including [n] for jumps to the very end — labels emit no
   bytes, so placement is byte-neutral). *)
let labelize (p : Encode.program) : instr array =
  let n = Array.length p.Encode.code in
  let is_target = Array.make (n + 1) false in
  Array.iter
    (function
      | Jmp t -> is_target.(t) <- true
      | Br (_, t, f) ->
        is_target.(t) <- true;
        is_target.(f) <- true
      | _ -> ())
    p.Encode.code;
  let out = ref [] in
  for idx = n downto 0 do
    if idx < n then
      out :=
        (match p.Encode.code.(idx) with
        | Jmp t -> Jmp t
        | Br (c, t, f) -> Br (c, t, f)
        | i -> i)
        :: !out;
    if is_target.(idx) then out := Label idx :: !out
  done;
  Array.of_list !out

(* Re-encode a decoded program; byte-identical to the original stream
   iff the stream is the encoder's canonical output. *)
let reencode (p : Encode.program) : bytes = Encode.encode_stream (labelize p)

let first_diff a b =
  let la = Bytes.length a and lb = Bytes.length b in
  let n = min la lb in
  let rec go i = if i < n && Bytes.get a i = Bytes.get b i then go (i + 1) else i in
  go 0

(* The cache key is the content hash, so the encoding must be a pure
   function of the program: decode -> re-encode must reproduce the
   stream bit-for-bit (canonical immediate widths, no label residue). *)
let audit_roundtrip (p : Encode.program) (code : bytes) : finding option =
  match reencode p with
  | exception Encode.Encode_error { index; offset; msg } ->
    Some
      { f_class = Nondet_encoding;
        f_index = index;
        f_offset = offset;
        f_msg = "re-encode failed: " ^ msg
      }
  | code' ->
    if Bytes.equal code code' then None
    else
      let off = first_diff code code' in
      Some
        { f_class = Nondet_encoding;
          f_index = -1;
          f_offset = off;
          f_msg =
            Printf.sprintf "decode/re-encode differs at byte %d (%d vs %d bytes total)" off
              (Bytes.length code) (Bytes.length code')
        }

(* Second leg of the audit: encoding the same allocated stream again
   must reproduce the bytes (no hidden per-run state in the encoder). *)
let audit_determinism (ra : Regalloc.result) (code : bytes) : finding option =
  match Encode.encode ra with
  | exception Encode.Encode_error { index; offset; msg } ->
    Some
      { f_class = Nondet_encoding;
        f_index = index;
        f_offset = offset;
        f_msg = "re-encode of the allocated stream failed: " ^ msg
      }
  | code' ->
    if Bytes.equal code code' then None
    else
      Some
        { f_class = Nondet_encoding;
          f_index = -1;
          f_offset = first_diff code code';
          f_msg = "encoding the same allocated stream twice differs"
        }

(* --- certification -------------------------------------------------------------- *)

let certify ~(env : env) ?(ra : Regalloc.result option) (code : bytes) :
    (certificate, finding list) result =
  match Encode.decode_program ~n_slots:env.n_slots code with
  | exception Encode.Encode_error { index; offset; msg } ->
    Error
      [ { f_class = Nondet_encoding;
          f_index = index;
          f_offset = offset;
          f_msg = "undecodable byte stream: " ^ msg
        }
      ]
  | p ->
    let findings, sites, helpers = analyze env p in
    let findings =
      findings
      @ (match audit_roundtrip p code with Some f -> [ f ] | None -> [])
      @
      match ra with
      | Some ra -> ( match audit_determinism ra code with Some f -> [ f ] | None -> [])
      | None -> []
    in
    if findings <> [] then Error findings
    else
      Ok
        {
          c_hash = hash64 code;
          c_byte_size = Bytes.length code;
          c_n_slots = env.n_slots;
          c_n_exits = env.n_exits;
          c_sites = sites;
          c_helpers = helpers;
        }
