(** Post-register-allocation invariant checks on the low-level host IR.

    Verifies what the encoder silently assumes: operands are
    Preg/Imm/Slot only (no virtual register survived allocation), spill
    slot indices fit the [n_slots] frame, physical register indices fit
    the host register file and the allocatable pool is not
    over-subscribed, branch targets resolve to labels present in the
    stream, and (given the pre-allocation stream) dead-marking is sound:
    no live instruction sources a dead instruction's destination. *)

type violation = {
  v_index : int option;  (** instruction index in the stream, if any *)
  v_msg : string;
}

exception Invalid of string * violation list

val string_of_violation : violation -> string
val report : what:string -> violation list -> string

(** All violations in the allocation result; [[]] means well-formed.
    @param original the pre-allocation stream, enabling the
    dead-marking soundness check. *)
val check : ?original:Hir.instr array -> Regalloc.result -> violation list

(** @raise Invalid (labelled [what]) if {!check} is non-empty. *)
val check_exn : ?what:string -> ?original:Hir.instr array -> Regalloc.result -> unit

(** Precise-state writeback-map checking for promoted regions, on the
    pre-allocation stream.  [promoted] is the [(vreg, register-file
    byte offset)] promotion list.  Rejects streams where a faulting
    memory access, safepoint or exit is reachable while a dirty
    promoted vreg has no matching {!Hir.Wbmap} entry; a helper call is
    reachable with any dirty promoted vreg (calls need explicit
    flushes); a stale promoted vreg (possibly overtaken by a helper's
    register-file write) is used, written back, or covered by the map
    at an escape point; a promoted offset is accessed around its cache
    register; or the map itself names a non-promoted vreg or the wrong
    offset.

    The dirty/stale may-analysis is {!Absint.check_wb}; [classify]
    makes helpers that cannot observe the register file ([C_pure])
    transparent to the discipline, and defaults to treating every
    helper as a barrier. *)
val check_wb :
  ?classify:(int -> Effects.helper_kind) ->
  promoted:(int * int) list ->
  Hir.instr array ->
  violation list

(** @raise Invalid (labelled [what], default ["region"]) if
    {!check_wb} is non-empty. *)
val check_wb_exn :
  ?what:string ->
  ?classify:(int -> Effects.helper_kind) ->
  promoted:(int * int) list ->
  Hir.instr array ->
  unit
