(** Post-register-allocation invariant checks on the low-level host IR.

    Verifies what the encoder silently assumes: operands are
    Preg/Imm/Slot only (no virtual register survived allocation), spill
    slot indices fit the [n_slots] frame, physical register indices fit
    the host register file and the allocatable pool is not
    over-subscribed, branch targets resolve to labels present in the
    stream, and (given the pre-allocation stream) dead-marking is sound:
    no live instruction sources a dead instruction's destination. *)

type violation = {
  v_index : int option;  (** instruction index in the stream, if any *)
  v_msg : string;
}

exception Invalid of string * violation list

val string_of_violation : violation -> string
val report : what:string -> violation list -> string

(** All violations in the allocation result; [[]] means well-formed.
    @param original the pre-allocation stream, enabling the
    dead-marking soundness check. *)
val check : ?original:Hir.instr array -> Regalloc.result -> violation list

(** @raise Invalid (labelled [what]) if {!check} is non-empty. *)
val check_exn : ?what:string -> ?original:Hir.instr array -> Regalloc.result -> unit
