(* Instruction encoding (paper Sec. 2.3.4): the allocated low-level IR is
   lowered into the byte-level machine code of the simulated host, dead
   instructions are skipped, and a final pass patches jump targets, whose
   values are only known once every instruction has been emitted and
   therefore sized.

   Encoding format (one instruction):
     opcode:u8 [subop:u8] operands...
   Operand: tag:u8 then payload - 0:preg(u8) 1:imm8(i8) 2:imm32(i32)
   3:imm64(i64) 4:slot(u16).  Jump targets are 32-bit byte offsets,
   patched after emission. *)

open Hir

(* [index] is the instruction index (stream index when encoding, decoded
   instruction count when decoding; -1 when no instruction is at fault) and
   [offset] the byte offset into the encoded stream. *)
exception Encode_error of { index : int; offset : int; msg : string }

let () =
  Printexc.register_printer (function
    | Encode_error { index; offset; msg } ->
      Some (Printf.sprintf "Hostir.Encode.Encode_error(instr %d, byte %d: %s)" index offset msg)
    | _ -> None)

let opcode = function
  | Mov _ -> 0x01
  | Alu _ -> 0x02
  | Mulhi _ -> 0x03
  | Divrem _ -> 0x04
  | Setcc _ -> 0x05
  | Cmov _ -> 0x06
  | Ext _ -> 0x07
  | Neg _ -> 0x08
  | Not _ -> 0x09
  | Bit1 _ -> 0x0A
  | Bit2 _ -> 0x0B
  | Fp2 _ -> 0x0C
  | Fp1 _ -> 0x0D
  | Fcmp_flags _ -> 0x0E
  | Flags_add _ -> 0x0F
  | Flags_logic _ -> 0x10
  | Ldrf _ -> 0x11
  | Strf _ -> 0x12
  | Load_pc _ -> 0x13
  | Store_pc _ -> 0x14
  | Inc_pc _ -> 0x15
  | Mem_ld _ -> 0x16
  | Mem_st _ -> 0x17
  | Call _ -> 0x18
  | Jmp _ -> 0x19
  | Br _ -> 0x1A
  | Exit _ -> 0x1B
  | Poll _ -> 0x1C
  | Wbmap _ -> 0x1D
  | Label _ -> 0x00 (* never encoded *)

let alu_code = function
  | Aadd -> 0 | Asub -> 1 | Aand -> 2 | Aor -> 3 | Axor -> 4 | Ashl -> 5 | Ashr -> 6
  | Asar -> 7 | Amul -> 8

let alu_of_code = [| Aadd; Asub; Aand; Aor; Axor; Ashl; Ashr; Asar; Amul |]

let cond_code = function
  | Ceq -> 0 | Cne -> 1 | Cult -> 2 | Cule -> 3 | Cugt -> 4 | Cuge -> 5 | Cslt -> 6
  | Csle -> 7 | Csgt -> 8 | Csge -> 9

let cond_of_code = [| Ceq; Cne; Cult; Cule; Cugt; Cuge; Cslt; Csle; Csgt; Csge |]

let bit1_code = function
  | Bclz32 -> 0 | Bclz64 -> 1 | Bpopcnt -> 2 | Bswap16 -> 3 | Bswap32 -> 4 | Bswap64 -> 5
  | Brbit32 -> 6 | Brbit64 -> 7

let bit1_of_code = [| Bclz32; Bclz64; Bpopcnt; Bswap16; Bswap32; Bswap64; Brbit32; Brbit64 |]

let bit2_code = function Bror32 -> 0 | Bror64 -> 1
let bit2_of_code = [| Bror32; Bror64 |]

let fp2_code = function
  | Fadd64 -> 0 | Fsub64 -> 1 | Fmul64 -> 2 | Fdiv64 -> 3 | Fmin64 -> 4 | Fmax64 -> 5
  | Fadd32 -> 6 | Fsub32 -> 7 | Fmul32 -> 8 | Fdiv32 -> 9 | Fmin32 -> 10 | Fmax32 -> 11

let fp2_of_code =
  [| Fadd64; Fsub64; Fmul64; Fdiv64; Fmin64; Fmax64; Fadd32; Fsub32; Fmul32; Fdiv32; Fmin32; Fmax32 |]

let fp1_code = function
  | Fsqrt64 -> 0 | Fsqrt32 -> 1 | Fcvt_32_64 -> 2 | Fcvt_64_32 -> 3 | Fcvt_64_s64 -> 4
  | Fcvt_64_u64 -> 5 | Fcvt_32_s32 -> 6 | Fcvt_s64_64 -> 7 | Fcvt_u64_64 -> 8
  | Fcvt_s32_32 -> 9 | Fcvt_s64_32 -> 10

let fp1_of_code =
  [| Fsqrt64; Fsqrt32; Fcvt_32_64; Fcvt_64_32; Fcvt_64_s64; Fcvt_64_u64; Fcvt_32_s32;
     Fcvt_s64_64; Fcvt_u64_64; Fcvt_s32_32; Fcvt_s64_32 |]

(* --- emission ----------------------------------------------------------------- *)

type encoder = {
  buf : Buffer.t;
  mutable patches : (int * int) list; (* buffer position, label *)
  labels : (int, int) Hashtbl.t; (* label -> byte offset *)
  mutable cur : int; (* stream index of the instruction being emitted *)
}

let u8 e v = Buffer.add_uint8 e.buf (v land 0xFF)
let u16 e v = Buffer.add_uint16_le e.buf (v land 0xFFFF)
let i32 e v = Buffer.add_int32_le e.buf (Int32.of_int v)
let i64 e v = Buffer.add_int64_le e.buf v

let operand e = function
  | Preg r ->
    u8 e 0;
    u8 e r
  | Imm v when v >= -128L && v < 128L ->
    u8 e 1;
    u8 e (Int64.to_int v land 0xFF)
  | Imm v when v >= Int64.of_int32 Int32.min_int && v <= Int64.of_int32 Int32.max_int ->
    u8 e 2;
    Buffer.add_int32_le e.buf (Int64.to_int32 v)
  | Imm v ->
    u8 e 3;
    i64 e v
  | Slot s ->
    u8 e 4;
    u16 e s
  | Vreg v ->
    raise
      (Encode_error
         { index = e.cur;
           offset = Buffer.length e.buf;
           msg = Printf.sprintf "unallocated vreg %%v%d reached the encoder" v })

let target e l =
  e.patches <- (Buffer.length e.buf, l) :: e.patches;
  i32 e 0

let encode_instr e (i : instr) =
  match i with
  | Label l -> Hashtbl.replace e.labels l (Buffer.length e.buf)
  | _ -> (
    u8 e (opcode i);
    match i with
    | Mov (d, s) ->
      operand e d;
      operand e s
    | Alu (op, d, a, b) ->
      u8 e (alu_code op);
      operand e d;
      operand e a;
      operand e b
    | Mulhi (s, d, a, b) ->
      u8 e (if s then 1 else 0);
      operand e d;
      operand e a;
      operand e b
    | Divrem (s, r, d, a, b) ->
      u8 e ((if s then 1 else 0) lor if r then 2 else 0);
      operand e d;
      operand e a;
      operand e b
    | Setcc (c, d, a, b) ->
      u8 e (cond_code c);
      operand e d;
      operand e a;
      operand e b
    | Cmov (d, c, a, b) ->
      operand e d;
      operand e c;
      operand e a;
      operand e b
    | Ext (s, bits, d, src) ->
      u8 e ((if s then 0x80 else 0) lor bits);
      operand e d;
      operand e src
    | Neg (d, s) ->
      operand e d;
      operand e s
    | Not (d, s) ->
      operand e d;
      operand e s
    | Bit1 (op, d, s) ->
      u8 e (bit1_code op);
      operand e d;
      operand e s
    | Bit2 (op, d, a, b) ->
      u8 e (bit2_code op);
      operand e d;
      operand e a;
      operand e b
    | Fp2 (op, d, a, b) ->
      u8 e (fp2_code op);
      operand e d;
      operand e a;
      operand e b
    | Fp1 (op, d, s) ->
      u8 e (fp1_code op);
      operand e d;
      operand e s
    | Fcmp_flags (w, d, a, b) ->
      u8 e w;
      operand e d;
      operand e a;
      operand e b
    | Flags_add (w, d, a, b, c) ->
      u8 e w;
      operand e d;
      operand e a;
      operand e b;
      operand e c
    | Flags_logic (w, d, s) ->
      u8 e w;
      operand e d;
      operand e s
    | Ldrf (d, off) ->
      operand e d;
      i32 e off
    | Strf (off, s) ->
      i32 e off;
      operand e s
    | Load_pc d -> operand e d
    | Store_pc s -> operand e s
    | Inc_pc n -> i32 e n
    | Mem_ld (w, d, a) ->
      u8 e w;
      operand e d;
      operand e a
    | Mem_st (w, a, v) ->
      u8 e w;
      operand e a;
      operand e v
    | Call (h, args, ret) ->
      u16 e h;
      u8 e (Array.length args);
      Array.iter (operand e) args;
      (match ret with
      | Some r ->
        u8 e 1;
        operand e r
      | None -> u8 e 0)
    | Jmp l -> target e l
    | Br (c, t, f) ->
      operand e c;
      target e t;
      target e f
    | Exit slot -> u16 e slot
    | Poll slot -> u16 e slot
    | Wbmap m ->
      u16 e (Array.length m);
      Array.iter
        (fun (o, off) ->
          operand e o;
          i32 e off)
        m
    | Label _ -> assert false)

let patch_and_finish e =
  let code = Buffer.to_bytes e.buf in
  (* Patch pass: fill in jump targets. *)
  List.iter
    (fun (pos, l) ->
      match Hashtbl.find_opt e.labels l with
      | Some off -> Bytes.set_int32_le code pos (Int32.of_int off)
      | None ->
        raise
          (Encode_error
             { index = -1; offset = pos; msg = Printf.sprintf "undefined label L%d" l }))
    e.patches;
  code

(* Encode an allocated instruction stream; dead instructions are skipped.
   Returns the machine-code bytes. *)
let encode (ra : Regalloc.result) : bytes =
  let e = { buf = Buffer.create 256; patches = []; labels = Hashtbl.create 8; cur = -1 } in
  Array.iteri
    (fun idx i ->
      if not ra.Regalloc.dead.(idx) then begin
        e.cur <- idx;
        encode_instr e i
      end)
    ra.Regalloc.instrs;
  patch_and_finish e

(* Encode a label-form stream as-is (no dead mask).  This is the same pure
   lowering [encode] applies after dead-skipping; Reloc's determinism audit
   uses it to re-encode a decoded program and check byte identity. *)
let encode_stream (instrs : instr array) : bytes =
  let e = { buf = Buffer.create 256; patches = []; labels = Hashtbl.create 8; cur = -1 } in
  Array.iteri
    (fun idx i ->
      e.cur <- idx;
      encode_instr e i)
    instrs;
  patch_and_finish e

(* --- decoding (the executor's instruction fetch) -------------------------------- *)

type program = {
  code : instr array; (* Jmp/Br targets rewritten to instruction indices *)
  offsets : int array; (* byte offset of each instruction in the stream *)
  byte_size : int;
  n_slots : int;
  wb_map : (operand * int) array;
  (* the translation's precise-state writeback map ([Wbmap]), hoisted out
     of the stream at decode time so the executor installs it once per
     entry instead of scanning; [||] for translations without promotion *)
}

let decode_program ?(n_slots = 0) (code : bytes) : program =
  let pos = ref 0 in
  let len = Bytes.length code in
  let n_decoded = ref 0 in
  let err offset msg = raise (Encode_error { index = !n_decoded; offset; msg }) in
  let u8 () =
    let v = Bytes.get_uint8 code !pos in
    incr pos;
    v
  in
  let u16 () =
    let v = Bytes.get_uint16_le code !pos in
    pos := !pos + 2;
    v
  in
  let i32 () =
    let v = Int32.to_int (Bytes.get_int32_le code !pos) in
    pos := !pos + 4;
    v
  in
  let i64 () =
    let v = Bytes.get_int64_le code !pos in
    pos := !pos + 8;
    v
  in
  let operand () =
    match u8 () with
    | 0 -> Preg (u8 ())
    | 1 ->
      let v = u8 () in
      Imm (Int64.of_int (if v >= 128 then v - 256 else v))
    | 2 -> Imm (Int64.of_int (i32 ()))
    | 3 -> Imm (i64 ())
    | 4 -> Slot (u16 ())
    | t -> err (!pos - 1) (Printf.sprintf "bad operand tag %d" t)
  in
  let instrs = ref [] in
  let offsets = ref [] in
  while !pos < len do
    let start = !pos in
    let op = u8 () in
    let i =
      match op with
      | 0x01 -> let d = operand () in Mov (d, operand ())
      | 0x02 ->
        let sub = u8 () in
        let d = operand () in
        let a = operand () in
        Alu (alu_of_code.(sub), d, a, operand ())
      | 0x03 ->
        let sub = u8 () in
        let d = operand () in
        let a = operand () in
        Mulhi (sub land 1 <> 0, d, a, operand ())
      | 0x04 ->
        let sub = u8 () in
        let d = operand () in
        let a = operand () in
        Divrem (sub land 1 <> 0, sub land 2 <> 0, d, a, operand ())
      | 0x05 ->
        let sub = u8 () in
        let d = operand () in
        let a = operand () in
        Setcc (cond_of_code.(sub), d, a, operand ())
      | 0x06 ->
        let d = operand () in
        let c = operand () in
        let a = operand () in
        Cmov (d, c, a, operand ())
      | 0x07 ->
        let sub = u8 () in
        let d = operand () in
        Ext (sub land 0x80 <> 0, sub land 0x7F, d, operand ())
      | 0x08 -> let d = operand () in Neg (d, operand ())
      | 0x09 -> let d = operand () in Not (d, operand ())
      | 0x0A ->
        let sub = u8 () in
        let d = operand () in
        Bit1 (bit1_of_code.(sub), d, operand ())
      | 0x0B ->
        let sub = u8 () in
        let d = operand () in
        let a = operand () in
        Bit2 (bit2_of_code.(sub), d, a, operand ())
      | 0x0C ->
        let sub = u8 () in
        let d = operand () in
        let a = operand () in
        Fp2 (fp2_of_code.(sub), d, a, operand ())
      | 0x0D ->
        let sub = u8 () in
        let d = operand () in
        Fp1 (fp1_of_code.(sub), d, operand ())
      | 0x0E ->
        let w = u8 () in
        let d = operand () in
        let a = operand () in
        Fcmp_flags (w, d, a, operand ())
      | 0x0F ->
        let w = u8 () in
        let d = operand () in
        let a = operand () in
        let b = operand () in
        Flags_add (w, d, a, b, operand ())
      | 0x10 ->
        let w = u8 () in
        let d = operand () in
        Flags_logic (w, d, operand ())
      | 0x11 -> let d = operand () in Ldrf (d, i32 ())
      | 0x12 -> let off = i32 () in Strf (off, operand ())
      | 0x13 -> Load_pc (operand ())
      | 0x14 -> Store_pc (operand ())
      | 0x15 -> Inc_pc (i32 ())
      | 0x16 ->
        let w = u8 () in
        let d = operand () in
        Mem_ld (w, d, operand ())
      | 0x17 ->
        let w = u8 () in
        let a = operand () in
        Mem_st (w, a, operand ())
      | 0x18 ->
        let h = u16 () in
        let n = u8 () in
        let args = Array.init n (fun _ -> operand ()) in
        let has_ret = u8 () in
        Call (h, args, if has_ret = 1 then Some (operand ()) else None)
      | 0x19 -> Jmp (i32 ())
      | 0x1A ->
        let c = operand () in
        let t = i32 () in
        Br (c, t, i32 ())
      | 0x1B -> Exit (u16 ())
      | 0x1C -> Poll (u16 ())
      | 0x1D ->
        let n = u16 () in
        Wbmap
          (Array.init n (fun _ ->
               let o = operand () in
               let off = i32 () in
               (o, off)))
      | _ -> err start (Printf.sprintf "bad opcode %#x" op)
    in
    instrs := i :: !instrs;
    offsets := start :: !offsets;
    incr n_decoded
  done;
  let instrs = Array.of_list (List.rev !instrs) in
  let offsets = Array.of_list (List.rev !offsets) in
  (* Map byte offsets in jump targets back to instruction indices. *)
  let index_of_offset = Hashtbl.create 32 in
  Array.iteri (fun idx off -> Hashtbl.replace index_of_offset off idx) offsets;
  let fix_target off =
    if off = len then Array.length instrs (* jump to end = fall off *)
    else
      match Hashtbl.find_opt index_of_offset off with
      | Some idx -> idx
      | None ->
        raise
          (Encode_error
             { index = -1; offset = off; msg = "jump into the middle of an instruction" })
  in
  let code =
    Array.map
      (function
        | Jmp t -> Jmp (fix_target t)
        | Br (c, t, f) -> Br (c, fix_target t, fix_target f)
        | i -> i)
      instrs
  in
  let wb_map =
    Array.fold_left (fun acc i -> match i with Wbmap m -> m | _ -> acc) [||] code
  in
  { code; offsets; byte_size = len; n_slots; wb_map }
