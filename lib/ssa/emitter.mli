(** The backend interface used by generator functions (the paper's
    dbt_emitter, Fig. 7).

    Backends produce values of abstract type ['v]; labels and
    temporaries are small integers allocated by the backend.  The
    Captive backend implements this over an invocation DAG that
    collapses to low-level IR; the QEMU-style backend emits IR
    directly. *)

type 'v t = {
  const : int64 -> 'v;
  binary : Adl.Ast.binop -> signed:bool -> 'v -> 'v -> 'v;
  unary : Adl.Ast.unop -> 'v -> 'v;
  normalize : bits:int -> signed:bool -> 'v -> 'v;
  select : 'v -> 'v -> 'v -> 'v;
  intrinsic : string -> 'v list -> 'v;
  load_bankreg : bank:int -> index:int -> 'v;
  store_bankreg : bank:int -> index:int -> 'v -> unit;
  load_reg : slot:int -> 'v;
  store_reg : slot:int -> 'v -> unit;
  load_pc : unit -> 'v;
  store_pc : 'v -> unit;
  inc_pc : int -> unit;
  mem_read : bits:int -> 'v -> 'v;
  mem_write : bits:int -> addr:'v -> value:'v -> unit;
  coproc_read : 'v -> 'v;
  coproc_write : 'v -> 'v -> unit;
  effect : string -> 'v list -> unit;
  (* Control flow, used when an instruction has dynamic internal control
     flow (e.g. conditional branches testing guest flags). *)
  create_block : unit -> int;
  jump : int -> unit;
  branch : 'v -> int -> int -> unit;
  set_block : int -> unit;
  (* Temporaries carrying values across dynamic blocks. *)
  new_temp : unit -> int;
  read_temp : int -> 'v;
  write_temp : int -> 'v -> unit;
}

(** Raised by {!null}'s [branch] (and by generators probing with it) when
    an instruction's control flow depends on a runtime value. *)
exception Dynamic_control_flow

(** A backend that emits nothing; used to probe whether an instruction's
    control flow is entirely fixed before committing to a translation
    strategy. *)
val null : unit t
