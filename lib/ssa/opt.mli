(** The offline optimization passes of the paper's Fig. 5, gated by
    optimization level O1-O4 and iterated to a fixed point.

    Inlining (O1-4 in the paper) is performed during SSA construction and
    is therefore always active.  Passes and their gating:

    - O1: dead code elimination, unreachable block elimination, control
      flow simplification, block merging, dead variable elimination
    - O2: + jump threading
    - O3: + constant folding, value propagation (width analysis, masking
      and arithmetic identities), load coalescing, dead write
      elimination, absint-simplify (abstract-interpretation driven
      folding over the {!Absint} known-bits/interval domain)
    - O4: + PHI analysis/elimination (cross-block variable promotion for
      unique reaching definitions) *)

(** Width information supplied by the architecture: decode-field widths,
    register bank/slot element widths and bounds.  A re-export of
    {!Absint.ctx}, consumed by value propagation, absint-simplify and
    the lint-time validator. *)
type context = Absint.ctx = {
  field_widths : (string * int) list;
  bank_widths : (int * int) list;
  slot_widths : (int * int) list;
  bank_counts : (int * int) list;
  slot_indices : int list;
}

val no_context : context

(** Rewrite every use of one value id to another (exposed for tooling).
    @raise Invalid_argument (naming the action) when [to_] is undefined,
    produces no value, or equals [from]. *)
val replace_uses : Ir.action -> from:Ir.id -> to_:Ir.id -> unit

type pass = { pname : string; level : int; run : context -> Ir.action -> bool }

(** The registered passes, in execution order. *)
val passes : pass list

(** Run an explicit pass list to a fixed point.  With [verify], the
    {!Verify} checker runs on the freshly-built IR and again after every
    pass application that reported a change, so an invariant-breaking
    pass raises {!Verify.Invalid} attributed to that pass by name.
    A pass escaping with a bare exception is re-raised as
    [Invalid_argument] naming the pass and action, and failure to reach
    a fixed point within the iteration budget is an error.  Exposed so
    tools and tests can inject their own (e.g. deliberately broken)
    passes. *)
val run_passes : ?ctx:context -> ?verify:bool -> pass list -> Ir.action -> unit

(** Optimize the action in place at the given level (1-4).
    @param verify check SSA well-formedness after every pass (default
    false; the production JIT path leaves it off). *)
val optimize : ?ctx:context -> ?verify:bool -> level:int -> Ir.action -> unit
